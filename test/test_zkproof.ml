open Zkflow_zkvm
open Zkflow_zkproof
open Asm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small but representative guest: reads words, branches, stores,
   loads, hashes memory with the accelerator, commits results. *)
let demo_guest =
  assemble
    [
      (* sum input words until a zero sentinel; store each to memory *)
      li s9 5000;
      li s10 0;
      label "loop";
      read_word t0;
      beq t0 zero "donesum";
      add s10 s10 t0;
      sw t0 s9 0;
      addi s9 s9 1;
      j "loop";
      label "donesum";
      commit s10;
      (* hash the stored words *)
      li t1 5000;
      sub t2 s9 t1;
      sha ~src:t1 ~words:t2 ~dst:s11;
      li s11 6000;
      li t1 5000;
      sub t2 s9 t1;
      sha ~src:t1 ~words:t2 ~dst:s11;
      li a0 6000;
      li a1 8;
      call "gl_commit_words";
      halt 0;
      Guestlib.commit_words_fn;
    ]

let demo_input = [| 10; 20; 30; 40; 0 |]

let prove_demo () =
  match Prove.prove demo_guest ~input:demo_input with
  | Ok (receipt, run) -> (receipt, run)
  | Error e -> Alcotest.fail ("prove failed: " ^ e)

let test_prove_verify_roundtrip () =
  let receipt, run = prove_demo () in
  check_int "sum committed" 100 run.Machine.journal.(0);
  (match Verify.verify ~program:demo_guest receipt with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("verify failed: " ^ e));
  check_bool "check" true (Verify.check ~program:demo_guest receipt)

let test_commit_cache_reprove_identical () =
  (* Re-proving the same traced run must hit the phase-1 commitment
     cache and still produce a byte-identical receipt; a different run
     must miss. *)
  Prove.clear_commit_cache ();
  let run =
    Machine.run ~trace:true demo_guest ~input:demo_input
  in
  let c_hits = Zkflow_obs.Metric.counter "zkproof.commit_cache.hits" in
  let c_misses = Zkflow_obs.Metric.counter "zkproof.commit_cache.misses" in
  Zkflow_obs.Obs.reset ();
  Zkflow_obs.Obs.enable ();
  Fun.protect ~finally:Zkflow_obs.Obs.disable (fun () ->
      let r1 = Result.get_ok (Prove.prove_result demo_guest run) in
      let r2 = Result.get_ok (Prove.prove_result demo_guest run) in
      check_bool "identical receipts" true
        (Receipt.encode r1 = Receipt.encode r2);
      check_int "one miss" 1 (Zkflow_obs.Metric.value c_misses);
      check_int "one hit" 1 (Zkflow_obs.Metric.value c_hits);
      (* different params still hit (phase 1 is parameter-independent)
         and the receipt still verifies *)
      let r3 =
        Result.get_ok
          (Prove.prove_result ~params:(Params.make ~queries:8) demo_guest run)
      in
      check_int "params change still hits" 2 (Zkflow_obs.Metric.value c_hits);
      check_bool "cached-commit receipt verifies" true
        (Verify.check ~program:demo_guest r3);
      (* a recomputed (physically distinct) run misses *)
      let run' = Machine.run ~trace:true demo_guest ~input:demo_input in
      let r4 = Result.get_ok (Prove.prove_result demo_guest run') in
      check_int "fresh arrays miss" 2 (Zkflow_obs.Metric.value c_misses);
      check_bool "same receipt bytes" true (Receipt.encode r1 = Receipt.encode r4));
  Prove.clear_commit_cache ()

let test_sort_with_perm_consistent () =
  let entry ~addr ~time ~write ~value = { Trace.addr; time; write; value } in
  let rng = Zkflow_util.Rng.create 7L in
  (* Distinct [time] per entry mirrors real traces, where (addr, time,
     write) is unique; [mem_order] ignores [value], so duplicate keys
     would make the plain (unstable) sort's tie order unspecified. *)
  let log =
    Array.init 64 (fun i ->
        entry
          ~addr:(Zkflow_util.Rng.int rng 8)
          ~time:i
          ~write:(Zkflow_util.Rng.bool rng)
          ~value:(Zkflow_util.Rng.int rng 100))
  in
  let sorted, perm = Memcheck.sort_with_perm log in
  check_int "perm length" (Array.length log) (Array.length perm);
  Array.iteri
    (fun j i ->
      check_bool (Printf.sprintf "sorted.(%d) = log.(perm.(%d))" j j) true
        (sorted.(j) = log.(i)))
    perm;
  (* same multiset and same encoded leaves as the plain sort *)
  let plain = Memcheck.sort log in
  Alcotest.(check (list string))
    "same leaf bytes"
    (Array.to_list (Array.map (fun e -> Bytes.to_string (Trace.encode_mem e)) plain))
    (Array.to_list (Array.map (fun e -> Bytes.to_string (Trace.encode_mem e)) sorted))

let test_verify_rejects_wrong_program () =
  let receipt, _ = prove_demo () in
  let other = assemble [ li t0 1; halt 0 ] in
  check_bool "wrong program" false (Verify.check ~program:other receipt)

let test_verify_rejects_tampered_journal () =
  let receipt, _ = prove_demo () in
  let claim = receipt.Receipt.claim in
  let journal = Array.copy claim.Receipt.journal in
  journal.(0) <- journal.(0) + 1;
  let tampered = { receipt with Receipt.claim = { claim with Receipt.journal } } in
  check_bool "tampered journal" false (Verify.check ~program:demo_guest tampered)

let test_verify_rejects_tampered_exit_code () =
  let receipt, _ = prove_demo () in
  let claim = receipt.Receipt.claim in
  let tampered =
    { receipt with Receipt.claim = { claim with Receipt.exit_code = 1 } }
  in
  check_bool "tampered exit" false (Verify.check ~program:demo_guest tampered)

let test_verify_rejects_tampered_root () =
  let receipt, _ = prove_demo () in
  let seal = receipt.Receipt.seal in
  let tampered =
    {
      receipt with
      Receipt.seal =
        { seal with Receipt.root_rows = Zkflow_hash.Digest32.hash_string "evil" };
    }
  in
  check_bool "tampered root" false (Verify.check ~program:demo_guest tampered)

let test_verify_rejects_tampered_opening () =
  let receipt, _ = prove_demo () in
  let seal = receipt.Receipt.seal in
  let steps = Array.copy seal.Receipt.steps in
  let s0 = steps.(0) in
  let leaf = Bytes.copy s0.Receipt.row.Receipt.leaf in
  Bytes.set leaf 0 (Char.chr (Char.code (Bytes.get leaf 0) lxor 1));
  steps.(0) <-
    { s0 with Receipt.row = { s0.Receipt.row with Receipt.leaf = leaf } };
  let tampered = { receipt with Receipt.seal = { seal with Receipt.steps = steps } } in
  check_bool "tampered leaf" false (Verify.check ~program:demo_guest tampered)

let test_verify_rejects_truncated_checks () =
  let receipt, _ = prove_demo () in
  let seal = receipt.Receipt.seal in
  let tampered =
    { receipt with Receipt.seal = { seal with Receipt.steps = [||] } }
  in
  check_bool "no steps" false (Verify.check ~program:demo_guest tampered)

let test_receipt_encode_decode () =
  let receipt, _ = prove_demo () in
  let b = Receipt.encode receipt in
  match Receipt.decode b with
  | Error e -> Alcotest.fail e
  | Ok receipt' ->
    check_bool "decoded verifies" true (Verify.check ~program:demo_guest receipt');
    check_int "size accounting" (Bytes.length b) (Receipt.size receipt)

let test_receipt_decode_garbage () =
  check_bool "garbage" true (Result.is_error (Receipt.decode (Bytes.of_string "nonsense")));
  let receipt, _ = prove_demo () in
  let b = Receipt.encode receipt in
  let cut = Bytes.sub b 0 (Bytes.length b / 2) in
  check_bool "truncated" true (Result.is_error (Receipt.decode cut))

let test_prove_rejects_nonzero_exit () =
  let guest = assemble [ halt 3 ] in
  match Prove.prove guest ~input:[||] with
  | Ok _ -> Alcotest.fail "expected refusal"
  | Error e ->
    check_bool "mentions exit" true
      (String.length e > 0 && String.sub e 0 5 = "prove")

let test_prove_rejects_trap () =
  let guest = assemble [ read_word t0; halt 0 ] in
  match Prove.prove guest ~input:[||] with
  | Ok _ -> Alcotest.fail "expected trap error"
  | Error e -> check_bool "mentions trap" true (String.length e > 0)

let test_prove_rejects_untraced_run () =
  let guest = assemble [ halt 0 ] in
  let run = Machine.run guest ~input:[||] in
  check_bool "untraced" true (Result.is_error (Prove.prove_result guest run))

let test_params_respected () =
  let params = Params.make ~queries:8 in
  match Prove.prove ~params demo_guest ~input:demo_input with
  | Error e -> Alcotest.fail e
  | Ok (receipt, _) ->
    check_int "step checks" 8 (Array.length receipt.Receipt.seal.Receipt.steps);
    check_bool "verifies" true (Verify.check ~program:demo_guest receipt)

let test_seal_smaller_with_fewer_queries () =
  let size q =
    match Prove.prove ~params:(Params.make ~queries:q) demo_guest ~input:demo_input with
    | Ok (r, _) -> Receipt.seal_size r
    | Error e -> Alcotest.fail e
  in
  check_bool "8 < 48 queries" true (size 8 < size 48)

let test_journal_size () =
  let receipt, _ = prove_demo () in
  (* 1 sum word + 8 digest words *)
  check_int "journal bytes" 36 (Receipt.journal_size receipt)

(* ---- minimal traces ---- *)

let test_minimal_guest_proves () =
  (* Smallest possible guest: one halt ecall → 3 rows (li, li, ecall). *)
  let guest = assemble [ halt 0 ] in
  match Prove.prove guest ~input:[||] with
  | Error e -> Alcotest.fail e
  | Ok (receipt, run) ->
    check_int "rows" run.Machine.cycles receipt.Receipt.seal.Receipt.n_rows;
    check_bool "verifies" true (Verify.check ~program:guest receipt)

let test_sha_only_guest_proves () =
  (* Exercises multi-block SHA rows inside the argument. *)
  let guest =
    assemble
      [
        li s9 100;
        li t0 77;
        sw t0 s9 0;
        li t4 20;
        sha ~src:s9 ~words:t4 ~dst:s10;
        halt 0;
      ]
  in
  match Prove.prove guest ~input:[||] with
  | Error e -> Alcotest.fail e
  | Ok (receipt, _) ->
    check_bool "verifies" true (Verify.check ~program:guest receipt)

(* ---- wrap ---- *)

let vkey = Wrap.setup ~seed:(Bytes.of_string "test-setup-seed")

let test_wrap_roundtrip () =
  let receipt, _ = prove_demo () in
  match Wrap.wrap vkey ~program:demo_guest receipt with
  | Error e -> Alcotest.fail e
  | Ok w ->
    check_int "constant size" Wrap.proof_size (Bytes.length w.Wrap.seal256);
    check_bool "verifies" true (Wrap.verify vkey w)

let test_wrap_rejects_bad_inner () =
  let receipt, _ = prove_demo () in
  let claim = receipt.Receipt.claim in
  let tampered =
    { receipt with Receipt.claim = { claim with Receipt.exit_code = 1 } }
  in
  check_bool "bad inner" true
    (Result.is_error (Wrap.wrap vkey ~program:demo_guest tampered))

let test_wrap_rejects_tampering () =
  let receipt, _ = prove_demo () in
  match Wrap.wrap vkey ~program:demo_guest receipt with
  | Error e -> Alcotest.fail e
  | Ok w ->
    let journal = Array.copy w.Wrap.journal in
    journal.(0) <- journal.(0) + 1;
    check_bool "journal tamper" false (Wrap.verify vkey { w with Wrap.journal });
    let seal = Bytes.copy w.Wrap.seal256 in
    Bytes.set seal 0 '\255';
    check_bool "seal tamper" false (Wrap.verify vkey { w with Wrap.seal256 = seal });
    let other_key = Wrap.setup ~seed:(Bytes.of_string "other") in
    check_bool "wrong key" false (Wrap.verify other_key w)

let test_wrap_encode_decode () =
  let receipt, _ = prove_demo () in
  match Wrap.wrap vkey ~program:demo_guest receipt with
  | Error e -> Alcotest.fail e
  | Ok w -> (
    match Wrap.decode (Wrap.encode w) with
    | Error e -> Alcotest.fail e
    | Ok w' -> check_bool "decoded verifies" true (Wrap.verify vkey w'))

(* ---- scaling sanity (Table 1 / Fig 4 shape at tiny scale) ---- *)

let hashing_guest n =
  ( assemble
      [
        li a0 1000;
        li a1 n;
        call "gl_read_words";
        li s9 1000;
        li t4 n;
        sha ~src:s9 ~words:t4 ~dst:s10;
        li s10 3000;
        li t4 n;
        sha ~src:s9 ~words:t4 ~dst:s10;
        li a0 3000;
        li a1 8;
        call "gl_commit_words";
        halt 0;
        Guestlib.read_words_fn;
        Guestlib.commit_words_fn;
      ],
    Array.init n (fun i -> i * 7) )

let test_receipt_grows_sublinearly () =
  (* Seal growth is O(log n) per opening: going 16× on input size must
     far less than 16× the seal. *)
  let size n =
    let guest, input = hashing_guest n in
    match Prove.prove guest ~input with
    | Ok (r, _) -> (Receipt.seal_size r, r.Receipt.seal.Receipt.n_rows)
    | Error e -> Alcotest.fail e
  in
  let s1, n1 = size 32 in
  let s2, n2 = size 512 in
  check_bool "rows grew ~16x" true (n2 > 10 * n1);
  check_bool "seal sublinear" true (float_of_int s2 < 3.0 *. float_of_int s1)

(* ---- memcheck unit tests ---- *)

let entry ~addr ~time ~write ~value = { Trace.addr; time; write; value }

let test_memcheck_sort_order () =
  let log =
    [|
      entry ~addr:5 ~time:2 ~write:true ~value:1;
      entry ~addr:3 ~time:9 ~write:false ~value:0;
      entry ~addr:5 ~time:2 ~write:false ~value:7;
      entry ~addr:3 ~time:1 ~write:true ~value:4;
    |]
  in
  let sorted = Memcheck.sort log in
  (* (3,1,W) (3,9,R) (5,2,R) (5,2,W): reads precede the same-cycle write *)
  Alcotest.(check (list (triple int int bool)))
    "order"
    [ (3, 1, true); (3, 9, false); (5, 2, false); (5, 2, true) ]
    (Array.to_list (Array.map (fun e -> (e.Trace.addr, e.Trace.time, e.Trace.write)) sorted))

let test_memcheck_adjacent_rules () =
  let ok = function Ok () -> true | Error _ -> false in
  (* write after anything: fine *)
  check_bool "write ok" true
    (ok (Memcheck.check_adjacent (entry ~addr:1 ~time:0 ~write:false ~value:0)
           (entry ~addr:1 ~time:1 ~write:true ~value:9)));
  (* read sees previous value *)
  check_bool "read match" true
    (ok (Memcheck.check_adjacent (entry ~addr:1 ~time:0 ~write:true ~value:9)
           (entry ~addr:1 ~time:1 ~write:false ~value:9)));
  check_bool "read mismatch" false
    (ok (Memcheck.check_adjacent (entry ~addr:1 ~time:0 ~write:true ~value:9)
           (entry ~addr:1 ~time:1 ~write:false ~value:8)));
  (* fresh address read must see 0 *)
  check_bool "fresh zero" true
    (ok (Memcheck.check_adjacent (entry ~addr:1 ~time:5 ~write:true ~value:9)
           (entry ~addr:2 ~time:0 ~write:false ~value:0)));
  check_bool "fresh nonzero" false
    (ok (Memcheck.check_adjacent (entry ~addr:1 ~time:5 ~write:true ~value:9)
           (entry ~addr:2 ~time:0 ~write:false ~value:3)));
  (* disorder rejected *)
  check_bool "out of order" false
    (ok (Memcheck.check_adjacent (entry ~addr:2 ~time:0 ~write:false ~value:0)
           (entry ~addr:1 ~time:0 ~write:false ~value:0)));
  check_bool "first read nonzero" false (ok (Memcheck.check_first (entry ~addr:0 ~time:0 ~write:false ~value:1)));
  check_bool "first write any" true (ok (Memcheck.check_first (entry ~addr:0 ~time:0 ~write:true ~value:1)))

let test_memcheck_products_multiset () =
  let rng = Zkflow_util.Rng.create 0xabcL in
  let alpha = Zkflow_field.Fp2.random rng and beta = Zkflow_field.Fp2.random rng in
  let log =
    Array.init 20 (fun i ->
        entry ~addr:(i mod 5) ~time:i ~write:(i mod 3 = 0)
          ~value:(i * 1000003 land 0xffffffff))
  in
  let zt = Memcheck.products ~alpha ~beta log in
  let zs = Memcheck.products ~alpha ~beta (Memcheck.sort log) in
  check_bool "final products equal (permutation)" true
    (Zkflow_field.Fp2.equal zt.(19) zs.(19));
  (* changing one value breaks equality *)
  let forged = Memcheck.sort log in
  forged.(7) <- { (forged.(7)) with Trace.value = forged.(7).Trace.value + 1 };
  let zf = Memcheck.products ~alpha ~beta forged in
  check_bool "forged multiset detected" false
    (Zkflow_field.Fp2.equal zt.(19) zf.(19))

(* ---- receipt mutation fuzzing ---- *)

let test_receipt_mutation_fuzz () =
  let receipt, _ = prove_demo () in
  let encoded = Receipt.encode receipt in
  let rng = Zkflow_util.Rng.create 0xf077L in
  let crashes = ref 0 and accepted = ref 0 in
  for _ = 1 to 120 do
    let b = Bytes.copy encoded in
    let pos = Zkflow_util.Rng.int rng (Bytes.length b) in
    let bit = 1 lsl Zkflow_util.Rng.int rng 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor bit));
    match Receipt.decode b with
    | exception _ -> incr crashes
    | Error _ -> ()
    | Ok mutated ->
      if Bytes.equal (Receipt.encode mutated) encoded then ()
      else if Verify.check ~program:demo_guest mutated then incr accepted
  done;
  check_int "decoder never crashes" 0 !crashes;
  check_int "no mutated receipt verifies" 0 !accepted

(* ---- Params.soundness_bits ---- *)

let check_float = Alcotest.(check (float 1e-9))

let test_soundness_bits_formula () =
  (* -queries · log2(1 - bad_fraction): the escape probability of a
     prover who corrupted a [bad_fraction] of positions, in bits. With
     bad_fraction = 1/n this is exactly the (1 - 1/n)^queries bound. *)
  let bits q f = Params.soundness_bits ~bad_fraction:f (Params.make ~queries:q) in
  check_float "48 queries @ 5%" (-48. *. Float.log2 0.95) (bits 48 0.05);
  check_float "default convention is 5%"
    (bits Params.(default.queries) 0.05)
    (Params.soundness_bits Params.default);
  (* at 50% corruption each query halves the escape probability:
     exactly one bit per query *)
  check_float "one bit per query at 50%" 10. (bits 10 0.5);
  check_float "linear in queries" (2. *. bits 16 0.05) (bits 32 0.05)

let test_soundness_bits_monotone () =
  check_bool "more queries, more bits" true
    (Params.soundness_bits (Params.make ~queries:96)
    > Params.soundness_bits (Params.make ~queries:48));
  check_bool "positive" true (Params.soundness_bits (Params.make ~queries:1) > 0.)

let test_soundness_bits_rejects_bad_fraction () =
  let rejects f =
    match Params.soundness_bits ~bad_fraction:f Params.default with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "0 rejected" true (rejects 0.);
  check_bool "1 rejected" true (rejects 1.);
  check_bool "negative rejected" true (rejects (-0.1));
  check_bool "interior accepted" false (rejects 0.5)

let () =
  Alcotest.run "zkflow_zkproof"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "prove/verify" `Quick test_prove_verify_roundtrip;
          Alcotest.test_case "minimal guest" `Quick test_minimal_guest_proves;
          Alcotest.test_case "sha-heavy guest" `Quick test_sha_only_guest_proves;
          Alcotest.test_case "params respected" `Quick test_params_respected;
          Alcotest.test_case "fewer queries, smaller seal" `Quick test_seal_smaller_with_fewer_queries;
          Alcotest.test_case "commit cache re-prove" `Quick test_commit_cache_reprove_identical;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "wrong program" `Quick test_verify_rejects_wrong_program;
          Alcotest.test_case "tampered journal" `Quick test_verify_rejects_tampered_journal;
          Alcotest.test_case "tampered exit code" `Quick test_verify_rejects_tampered_exit_code;
          Alcotest.test_case "tampered root" `Quick test_verify_rejects_tampered_root;
          Alcotest.test_case "tampered opening" `Quick test_verify_rejects_tampered_opening;
          Alcotest.test_case "truncated checks" `Quick test_verify_rejects_truncated_checks;
        ] );
      ( "prover-guards",
        [
          Alcotest.test_case "nonzero exit refused" `Quick test_prove_rejects_nonzero_exit;
          Alcotest.test_case "trap refused" `Quick test_prove_rejects_trap;
          Alcotest.test_case "untraced run refused" `Quick test_prove_rejects_untraced_run;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "receipt roundtrip" `Quick test_receipt_encode_decode;
          Alcotest.test_case "garbage rejected" `Quick test_receipt_decode_garbage;
          Alcotest.test_case "journal size" `Quick test_journal_size;
        ] );
      ( "wrap",
        [
          Alcotest.test_case "roundtrip" `Quick test_wrap_roundtrip;
          Alcotest.test_case "bad inner refused" `Quick test_wrap_rejects_bad_inner;
          Alcotest.test_case "tampering rejected" `Quick test_wrap_rejects_tampering;
          Alcotest.test_case "encode/decode" `Quick test_wrap_encode_decode;
        ] );
      ( "params",
        [
          Alcotest.test_case "soundness_bits formula" `Quick
            test_soundness_bits_formula;
          Alcotest.test_case "soundness_bits monotone" `Quick
            test_soundness_bits_monotone;
          Alcotest.test_case "bad_fraction domain" `Quick
            test_soundness_bits_rejects_bad_fraction;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "seal sublinear in trace" `Quick test_receipt_grows_sublinearly;
        ] );
      ( "memcheck",
        [
          Alcotest.test_case "sort order" `Quick test_memcheck_sort_order;
          Alcotest.test_case "sort_with_perm" `Quick test_sort_with_perm_consistent;
          Alcotest.test_case "adjacency rules" `Quick test_memcheck_adjacent_rules;
          Alcotest.test_case "grand products" `Quick test_memcheck_products_multiset;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "receipt mutations" `Slow test_receipt_mutation_fuzz ] );
    ]
