(* SLO burn-rate engine tests over synthetic event logs.

   The contract under test: an alert fires only when BOTH windows of a
   pair burn past the threshold (the short window is the de-bounce),
   windows clamp to the log's own span so a 40-second chaos run still
   registers a massive burn on its "1 h" window, and every firing
   alert names the causal keys of the bad events behind it. Plus the
   data plumbing around the engine: glob matching on event kinds, spec
   parsing from JSON, the fault-marker -> expected-objective map the
   chaos harness asserts with, and the /slo endpoint schema. *)

module Event = Zkflow_obs.Event
module Jsonx = Zkflow_util.Jsonx
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ev ?router ?epoch ?round ~ts track kind =
  { Event.ts_ns = ts; track; kind; router; epoch; round; query = None; attrs = [] }

(* seconds -> the recorder's ns timestamps *)
let s n = n * 1_000_000_000

(* ---- glob matching on event kinds ---- *)

let test_kind_matches () =
  let yes p k = check_bool (p ^ " ~ " ^ k) true (Slo.kind_matches p k) in
  let no p k = check_bool (p ^ " !~ " ^ k) false (Slo.kind_matches p k) in
  yes "board.publish" "board.publish";
  no "board.publish" "board.publish2";
  no "board.publish" "board";
  yes "*" "anything.at.all";
  yes "*" "";
  (* prefix glob is anchored at the start *)
  yes "prover.*" "prover.round.done";
  yes "prover.*" "prover.";
  no "prover.*" "xprover.round.done";
  (* suffix glob is anchored at the end *)
  yes "*.accept" "verifier.query.accept";
  no "*.accept" "verifier.accepted";
  (* a middle glob must consume at least the text around it *)
  yes "verifier.*.accept" "verifier.round.accept";
  yes "verifier.*.accept" "verifier.x.y.accept";
  no "verifier.*.accept" "verifier.accept";
  no "verifier.*.accept" "verifier.round.reject"

(* ---- burn math and firing over synthetic logs ---- *)

let coverage_spec =
  {
    Slo.slo_name = "test-coverage";
    good = [ "board.publish" ];
    bad = [ "prover.gap.open" ];
    target = 0.999;
    windows = Slo.default_windows;
  }

let find_alert name alerts =
  match List.find_opt (fun a -> a.Slo.spec.Slo.slo_name = name) alerts with
  | Some a -> a
  | None -> Alcotest.fail ("no alert named " ^ name)

let test_clean_log_burns_nothing () =
  let events =
    List.init 10 (fun i -> ev ~router:(i mod 2) ~epoch:i ~ts:(s (i * 4)) "board" "board.publish")
  in
  let a = find_alert "test-coverage" (Slo.evaluate ~specs:[ coverage_spec ] events) in
  check_int "good" 10 a.Slo.good_count;
  check_int "bad" 0 a.Slo.bad_count;
  check_bool "not firing" false a.Slo.firing;
  List.iter
    (fun we ->
      check_bool (we.Slo.window.Slo.w_name ^ " long burn 0") true (we.Slo.long_burn = 0.);
      check_bool (we.Slo.window.Slo.w_name ^ " short burn 0") true (we.Slo.short_burn = 0.))
    a.Slo.window_evals;
  check_bool "nothing firing" true (Slo.firing_names (Slo.evaluate ~specs:[ coverage_spec ] events) = [])

(* One dropped export among 9 publishes inside a 40-second log: both
   the "1 h" and the "5 m" window clamp to those 40 seconds, the bad
   fraction is 0.1 against a 0.001 budget — burn 100, far past both
   thresholds. This is the clamping property: short chaos runs still
   register. *)
let test_one_gap_fires_with_causal_keys () =
  let events =
    List.init 9 (fun i -> ev ~router:(i mod 2) ~epoch:i ~ts:(s (i * 4)) "board" "board.publish")
    @ [ ev ~router:1 ~epoch:3 ~ts:(s 38) "prover" "prover.gap.open" ]
  in
  let a = find_alert "test-coverage" (Slo.evaluate ~specs:[ coverage_spec ] events) in
  check_int "good" 9 a.Slo.good_count;
  check_int "bad" 1 a.Slo.bad_count;
  check_bool "firing" true a.Slo.firing;
  List.iter
    (fun we ->
      check_bool (we.Slo.window.Slo.w_name ^ " fires") true we.Slo.w_firing;
      check_bool "burn = bad_fraction / budget" true (abs_float (we.Slo.long_burn -. 100.) < 1e-6))
    a.Slo.window_evals;
  (* the alert names the export that opened the gap *)
  match a.Slo.causes with
  | [ c ] ->
    Alcotest.(check string) "cause kind" "prover.gap.open" c.Slo.cause_kind;
    Alcotest.(check (option int)) "cause router" (Some 1) c.Slo.cause_router;
    Alcotest.(check (option int)) "cause epoch" (Some 3) c.Slo.cause_epoch
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 cause, got %d" (List.length cs))

(* The de-bounce: a gap that opened half an hour ago in a long healthy
   log burns the long window but not the short one — no alert. The
   short window is what makes alerts stop firing after the cause
   does. *)
let test_old_fault_does_not_fire () =
  let goods =
    List.init 21 (fun i -> ev ~epoch:i ~ts:(s (i * 100)) "board" "board.publish")
  in
  let events = ev ~epoch:0 ~ts:(s 1) "prover" "prover.gap.open" :: goods in
  let a = find_alert "test-coverage" (Slo.evaluate ~specs:[ coverage_spec ] events) in
  check_bool "not firing" false a.Slo.firing;
  let fast =
    match List.find_opt (fun we -> we.Slo.window.Slo.w_name = "fast") a.Slo.window_evals with
    | Some we -> we
    | None -> Alcotest.fail "no fast window"
  in
  (* the long window saw the bad event, the 5-minute short one did not *)
  check_bool "long window burns past threshold" true
    (fast.Slo.long_burn >= fast.Slo.window.Slo.burn_threshold);
  check_bool "short window clean" true (fast.Slo.short_burn = 0.);
  check_bool "pair gated on both" false fast.Slo.w_firing

let test_empty_log () =
  let alerts = Slo.evaluate [] in
  check_int "every default spec evaluated" 6 (List.length alerts);
  check_bool "nothing fires on silence" true (Slo.firing alerts = [])

(* ---- fault markers -> expected objectives ---- *)

let test_expected_for () =
  let fault kind = ev ~ts:(s 1) "fault" kind in
  Alcotest.(check (list string)) "all surfaces, sorted + deduped"
    [ "board-integrity"; "coverage"; "prover-restarts" ]
    (Slo.expected_for
       [
         fault "fault.drop";
         fault "fault.delay";
         fault "fault.duplicate";
         fault "fault.crash";
         ev ~ts:(s 2) "board" "board.publish";
       ]);
  Alcotest.(check (list string)) "delay alone maps to coverage" [ "coverage" ]
    (Slo.expected_for [ fault "fault.delay" ]);
  Alcotest.(check (list string)) "clean log expects nothing" []
    (Slo.expected_for [ ev ~ts:(s 1) "board" "board.publish" ])

(* ---- spec parsing ---- *)

let write_temp text =
  let path = Filename.temp_file "zkflow-slo" ".json" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

let test_load_specs_defaults () =
  let path = write_temp {|[{"name":"custom","good":["a.*"],"bad":["a.err"]}]|} in
  match Slo.load_specs path with
  | Error e -> Alcotest.fail e
  | Ok [ spec ] ->
    Alcotest.(check string) "name" "custom" spec.Slo.slo_name;
    check_bool "target defaults" true (spec.Slo.target = 0.999);
    check_int "default windows" 2 (List.length spec.Slo.windows)
  | Ok ss -> Alcotest.fail (Printf.sprintf "expected 1 spec, got %d" (List.length ss))

let test_load_specs_explicit_windows () =
  let path =
    write_temp
      {|[{"name":"w","good":["g"],"bad":["b"],"target":0.99,
          "windows":[{"name":"only","long_s":60,"short_s":10,"burn":2.5}]}]|}
  in
  match Slo.load_specs path with
  | Error e -> Alcotest.fail e
  | Ok [ spec ] -> (
    check_bool "target" true (spec.Slo.target = 0.99);
    match spec.Slo.windows with
    | [ w ] ->
      Alcotest.(check string) "window name" "only" w.Slo.w_name;
      check_bool "long_s" true (w.Slo.long_s = 60.);
      check_bool "burn" true (w.Slo.burn_threshold = 2.5)
    | ws -> Alcotest.fail (Printf.sprintf "expected 1 window, got %d" (List.length ws)))
  | Ok ss -> Alcotest.fail (Printf.sprintf "expected 1 spec, got %d" (List.length ss))

let test_load_specs_rejects () =
  let fails ~needle text =
    let path = write_temp text in
    match Slo.load_specs path with
    | Ok _ -> Alcotest.fail ("accepted bad specs: " ^ text)
    | Error e ->
      let contains =
        let nh = String.length e and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub e i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      check_bool (Printf.sprintf "%S in %S" needle e) true contains
  in
  fails ~needle:"target" {|[{"name":"x","good":["g"],"bad":["b"],"target":1.5}]|};
  fails ~needle:"good" {|[{"name":"x","bad":["b"]}]|};
  fails ~needle:"long_s" {|[{"name":"x","good":["g"],"bad":["b"],"windows":[{"name":"w"}]}]|};
  fails ~needle:"array" {|{"name":"x"}|};
  match Slo.load_specs "/nonexistent/specs.json" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error e -> check_bool "missing file named" true (String.length e > 0)

(* ---- the /slo endpoint schema ---- *)

let test_to_json_schema () =
  let firing_events =
    List.init 9 (fun i -> ev ~epoch:i ~ts:(s (i * 4)) "board" "board.publish")
    @ [ ev ~router:1 ~epoch:3 ~ts:(s 38) "prover" "prover.gap.open" ]
  in
  let alerts = Slo.evaluate firing_events in
  let v =
    match Jsonx.parse (Jsonx.to_string (Slo.to_json alerts)) with
    | Ok v -> v
    | Error e -> Alcotest.fail ("slo json does not parse: " ^ e)
  in
  check_bool "schema" true
    (Jsonx.member "schema" v = Some (Jsonx.Str "zkflow-slo/v1"));
  check_bool "not ok" true (Jsonx.member "ok" v = Some (Jsonx.Bool false));
  (match Jsonx.member "firing" v with
  | Some (Jsonx.Arr names) ->
    check_bool "coverage listed firing" true (List.mem (Jsonx.Str "coverage") names)
  | _ -> Alcotest.fail "no firing list");
  (match Jsonx.member "alerts" v with
  | Some (Jsonx.Arr alerts) -> check_int "one alert per default spec" 6 (List.length alerts)
  | _ -> Alcotest.fail "no alerts list");
  (* and a clean log is ok: true with an empty firing list *)
  let clean = List.init 4 (fun i -> ev ~epoch:i ~ts:(s i) "board" "board.publish") in
  match Jsonx.parse (Jsonx.to_string (Slo.to_json (Slo.evaluate clean))) with
  | Ok v ->
    check_bool "ok" true (Jsonx.member "ok" v = Some (Jsonx.Bool true));
    check_bool "firing empty" true (Jsonx.member "firing" v = Some (Jsonx.Arr []))
  | Error e -> Alcotest.fail ("clean slo json does not parse: " ^ e)

let () =
  Alcotest.run "zkflow_slo"
    [
      ( "glob",
        [ Alcotest.test_case "kind_matches anchoring" `Quick test_kind_matches ] );
      ( "burn",
        [
          Alcotest.test_case "clean log burns nothing" `Quick
            test_clean_log_burns_nothing;
          Alcotest.test_case "one gap fires both windows with causes" `Quick
            test_one_gap_fires_with_causal_keys;
          Alcotest.test_case "old fault: long burns, short de-bounces" `Quick
            test_old_fault_does_not_fire;
          Alcotest.test_case "empty log" `Quick test_empty_log;
        ] );
      ( "chaos-contract",
        [ Alcotest.test_case "fault markers map to objectives" `Quick test_expected_for ] );
      ( "specs",
        [
          Alcotest.test_case "defaults fill in" `Quick test_load_specs_defaults;
          Alcotest.test_case "explicit windows parse" `Quick
            test_load_specs_explicit_windows;
          Alcotest.test_case "malformed specs rejected" `Quick test_load_specs_rejects;
        ] );
      ( "endpoint",
        [ Alcotest.test_case "/slo schema" `Quick test_to_json_schema ] );
    ]
