(* Static analyzer: every defect class caught on a bad guest and absent
   from the corrected one; the built-in guests and the prover gate. *)

module A = Zkflow_analysis
module Finding = Zkflow_analysis.Finding
module Isa = Zkflow_zkvm.Isa
module Trace = Zkflow_zkvm.Trace
module Program = Zkflow_zkvm.Program
module Zirc = Zkflow_lang.Zirc
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze instrs = A.check_instrs (Array.of_list instrs)

let has ~severity r pass =
  let pool =
    match severity with `Error -> Finding.errors r | `Warning -> Finding.warnings r
  in
  List.exists (fun f -> f.Finding.pass = pass) pool

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The terminal-halt idiom every assembled path ends with. *)
let halt_seq = Isa.[ Lui (11, 0); Lui (10, 0); Ecall ]

(* ---- ZR0 defect classes ---- *)

let test_uninit_register () =
  let bad = analyze (Isa.Alu (ADD, 5, 6, 0) :: halt_seq) in
  check_bool "uninit read flagged" true (has ~severity:`Error bad "uninit");
  let good = analyze (Isa.Lui (6, 7) :: Isa.Alu (ADD, 5, 6, 0) :: halt_seq) in
  check_bool "initialized read ok" true (Finding.ok good)

let test_oob_store () =
  let bad = analyze (Isa.Lui (5, Trace.ram_limit) :: Isa.Sw (0, 5, 0) :: halt_seq) in
  check_bool "store past RAM flagged" true (has ~severity:`Error bad "membounds");
  let good =
    analyze (Isa.Lui (5, Trace.ram_limit - 1) :: Isa.Sw (0, 5, 0) :: halt_seq)
  in
  check_bool "last word ok" true (Finding.ok good)

let test_oob_load_via_offset () =
  (* constant propagation must fold base+imm *)
  let bad =
    analyze (Isa.Lui (5, Trace.ram_limit - 1) :: Isa.Lw (6, 5, 1) :: halt_seq)
  in
  check_bool "folded address flagged" true (has ~severity:`Error bad "membounds")

let test_unreachable_block () =
  let bad = analyze (Isa.Jal (0, 3) :: Isa.Lui (5, 1) :: Isa.Lui (5, 2) :: halt_seq) in
  check_bool "dead code warned" true (has ~severity:`Warning bad "unreachable");
  check_bool "warning does not gate" true (Finding.ok bad);
  let good = analyze (Isa.Lui (5, 1) :: halt_seq) in
  check_bool "no dead code, no warning" false (has ~severity:`Warning good "unreachable")

let test_fall_off_end () =
  let bad = analyze [ Isa.Lui (5, 1) ] in
  check_bool "fall-off flagged" true (has ~severity:`Error bad "control");
  let good = analyze (Isa.Lui (5, 1) :: halt_seq) in
  check_bool "terminal halt ok" true (Finding.ok good)

let test_wild_jump () =
  let bad = analyze (Isa.Jal (0, 999) :: halt_seq) in
  check_bool "out-of-program jump flagged" true (has ~severity:`Error bad "control")

let test_ecall_protocol () =
  let bad = analyze (Isa.Lui (10, 9) :: Isa.Ecall :: halt_seq) in
  check_bool "unknown ecall flagged" true (has ~severity:`Error bad "ecall");
  let good = analyze (Isa.Lui (11, 1) :: Isa.Lui (10, 4) :: Isa.Ecall :: halt_seq) in
  check_bool "debug ecall ok" true (Finding.ok good);
  let uninit_arg = analyze (Isa.Lui (10, 4) :: Isa.Ecall :: halt_seq) in
  check_bool "uninit ecall argument flagged" true
    (has ~severity:`Error uninit_arg "uninit")

let test_unbounded_loop () =
  let bad =
    analyze
      (Isa.Lui (5, 10) :: Isa.Alui (ADD, 5, 5, -1) :: Isa.Branch (BNE, 5, 0, 1)
      :: halt_seq)
  in
  (match bad.Finding.cycle_bound with
   | Finding.Unbounded headers -> check_bool "loop header" true (List.mem 1 headers)
   | Finding.Bounded _ -> Alcotest.fail "loop not detected");
  let good = analyze (Isa.Lui (5, 1) :: halt_seq) in
  match good.Finding.cycle_bound with
  | Finding.Bounded n -> check_int "straight-line bound" 4 n
  | Finding.Unbounded _ -> Alcotest.fail "acyclic program reported unbounded"

let test_sha_cycle_weight () =
  let r =
    analyze
      (Isa.Lui (11, 0x100) :: Isa.Lui (12, 16) :: Isa.Lui (13, 0x200)
      :: Isa.Lui (10, 3) :: Isa.Ecall :: halt_seq)
  in
  match r.Finding.cycle_bound with
  | Finding.Bounded n ->
    check_int "sha rows counted" (8 + Trace.sha_block_count 16) n
  | Finding.Unbounded _ -> Alcotest.fail "acyclic program reported unbounded"

let test_call_return_precision () =
  (* a loop counter in a callee-crossing register must not be flagged:
     calls are function-local edges, not merges across call sites *)
  let items =
    Isa.
      [
        (* main *)
        Lui (5, 0);               (* 0: t0 := 0 *)
        Jal (1, 6);               (* 1: call helper *)
        Alui (ADD, 5, 5, 1);      (* 2: t0 += 1 (uses t0 across the call) *)
        Lui (11, 0);              (* 3 *)
        Lui (10, 0);              (* 4 *)
        Ecall;                    (* 5: halt *)
        (* helper at 6 *)
        Lui (6, 1);               (* 6 *)
        Jalr (0, 1, 0);           (* 7: return *)
      ]
  in
  let r = analyze items in
  check_bool "no false uninit across call" true (Finding.ok r)

let test_malformed_register () =
  let bad = analyze (Isa.Alu (ADD, 40, 0, 0) :: halt_seq) in
  check_bool "register out of range" true (has ~severity:`Error bad "wellformed")

(* ---- Zirc lint ---- *)

let zirc_check prog = A.check_zirc prog

let test_zirc_use_before_assign () =
  let bad =
    Zirc.
      [
        If (Input_avail, [ Let ("y", Int 1) ], []);
        Commit (Var "y");
        Halt (Int 0);
      ]
  in
  check_bool "use-before-assign flagged" true
    (has ~severity:`Error (zirc_check bad) "zirc-assign");
  let good =
    Zirc.
      [
        Let ("y", Int 0);
        If (Input_avail, [ Set ("y", Int 1) ], []);
        Commit (Var "y");
        Halt (Int 0);
      ]
  in
  check_bool "assigned on all paths ok" true (Finding.ok (zirc_check good))

let test_zirc_depth () =
  let rec deep n = if n = 0 then Zirc.Int 1 else Zirc.Bin (Add, Int 1, deep (n - 1)) in
  let bad = Zirc.[ Commit (deep 7); Halt (Int 0) ] in
  check_bool "8-register expression flagged" true
    (has ~severity:`Error (zirc_check bad) "zirc-depth");
  let good = Zirc.[ Commit (deep 6); Halt (Int 0) ] in
  check_bool "7-register expression ok" true (Finding.ok (zirc_check good))

let test_zirc_dead_store_and_divzero () =
  let p =
    Zirc.
      [
        Let ("x", Int 1);
        Commit (Var "x");
        Set ("x", Bin (Divu, Var "x", Int 0));
        Halt (Int 0);
      ]
  in
  let r = zirc_check p in
  check_bool "dead store warned" true (has ~severity:`Warning r "zirc-dead");
  check_bool "division by zero warned" true (has ~severity:`Warning r "zirc-divzero");
  check_bool "warnings do not gate" true (Finding.ok r)

let test_zirc_scope () =
  let dup = Zirc.[ Let ("x", Int 1); Let ("x", Int 2); Halt (Int 0) ] in
  check_bool "shadowing flagged" true
    (has ~severity:`Error (zirc_check dup) "zirc-scope");
  let undecl = Zirc.[ Commit (Var "ghost"); Halt (Int 0) ] in
  check_bool "undeclared flagged" true
    (has ~severity:`Error (zirc_check undecl) "zirc-scope")

let test_zirc_reserved_store () =
  let bad = Zirc.[ Store (Int Zirc.locals_base, Int 1); Halt (Int 0) ] in
  check_bool "write into locals region flagged" true
    (has ~severity:`Error (zirc_check bad) "zirc-membounds")

(* ---- built-in guests ---- *)

let test_builtin_guests_clean () =
  let agg = A.check ~subject:"aggregation" (Lazy.force Guests.aggregation_program) in
  check_bool "aggregation guest has no defects" true (Finding.ok agg);
  let q = A.check ~subject:"query" (Lazy.force Guests.query_program) in
  check_bool "query guest has no defects" true (Finding.ok q);
  (* both carry data-dependent loops: the bound must be honest *)
  (match agg.Finding.cycle_bound with
   | Finding.Unbounded (_ :: _) -> ()
   | _ -> Alcotest.fail "aggregation guest should report unbounded loops");
  (* the unused gl_copy_words runtime helper is dead code: warned, not
     gated *)
  check_bool "dead helper warned" true (has ~severity:`Warning agg "unreachable")

let test_report_json () =
  let r = analyze (Isa.Alu (ADD, 5, 6, 0) :: halt_seq) in
  let js = Finding.report_json r in
  check_bool "json has pass" true (contains ~sub:"\"pass\":\"uninit\"" js);
  check_bool "json has severity" true (contains ~sub:"\"severity\":\"error\"" js)

(* ---- the prover gate ---- *)

let defective_program =
  lazy (Program.of_instrs (Array.of_list (Isa.Alu (ADD, 5, 6, 0) :: halt_seq)))

let test_gate_refuses () =
  Unix.putenv "ZKFLOW_NO_ANALYZE" "";
  match
    Prover_service.prove_custom (Lazy.force defective_program) ~input:[||]
  with
  | Ok _ -> Alcotest.fail "defective guest was proved"
  | Error msg ->
    check_bool "mentions analysis" true (contains ~sub:"static analysis" msg);
    check_bool "mentions override" true (contains ~sub:"ZKFLOW_NO_ANALYZE" msg)

let test_gate_override () =
  Unix.putenv "ZKFLOW_NO_ANALYZE" "1";
  let result =
    Prover_service.prove_custom (Lazy.force defective_program) ~input:[||]
  in
  Unix.putenv "ZKFLOW_NO_ANALYZE" "";
  match result with
  | Ok (receipt, run) ->
    check_int "ran to completion" 0 run.Zkflow_zkvm.Machine.exit_code;
    let program = Lazy.force defective_program in
    (match Zkflow_zkproof.Verify.verify ~program receipt with
     | Ok () -> ()
     | Error e -> Alcotest.fail ("receipt does not verify: " ^ e))
  | Error e -> Alcotest.fail ("override did not bypass the gate: " ^ e)

let test_gate_passes_clean_guest () =
  Unix.putenv "ZKFLOW_NO_ANALYZE" "";
  let clean = Program.of_instrs (Array.of_list (Isa.Lui (5, 1) :: halt_seq)) in
  match Prover_service.prove_custom clean ~input:[||] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("clean guest refused: " ^ e)

let () =
  Alcotest.run "zkflow_analysis"
    [
      ( "zr0",
        [
          Alcotest.test_case "uninit register" `Quick test_uninit_register;
          Alcotest.test_case "oob store" `Quick test_oob_store;
          Alcotest.test_case "oob load via offset" `Quick test_oob_load_via_offset;
          Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
          Alcotest.test_case "fall off end" `Quick test_fall_off_end;
          Alcotest.test_case "wild jump" `Quick test_wild_jump;
          Alcotest.test_case "ecall protocol" `Quick test_ecall_protocol;
          Alcotest.test_case "unbounded loop" `Quick test_unbounded_loop;
          Alcotest.test_case "sha cycle weight" `Quick test_sha_cycle_weight;
          Alcotest.test_case "call/return precision" `Quick test_call_return_precision;
          Alcotest.test_case "malformed register" `Quick test_malformed_register;
        ] );
      ( "zirc",
        [
          Alcotest.test_case "use before assign" `Quick test_zirc_use_before_assign;
          Alcotest.test_case "expression depth" `Quick test_zirc_depth;
          Alcotest.test_case "dead store, div zero" `Quick test_zirc_dead_store_and_divzero;
          Alcotest.test_case "scope" `Quick test_zirc_scope;
          Alcotest.test_case "reserved region store" `Quick test_zirc_reserved_store;
        ] );
      ( "guests",
        [
          Alcotest.test_case "built-ins are clean" `Quick test_builtin_guests_clean;
          Alcotest.test_case "report json" `Quick test_report_json;
        ] );
      ( "gate",
        [
          Alcotest.test_case "refuses defective" `Quick test_gate_refuses;
          Alcotest.test_case "env override" `Slow test_gate_override;
          Alcotest.test_case "passes clean" `Slow test_gate_passes_clean_guest;
        ] );
    ]
