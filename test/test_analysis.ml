(* Static analyzer: every defect class caught on a bad guest and absent
   from the corrected one; the built-in guests and the prover gate. *)

module A = Zkflow_analysis
module Finding = Zkflow_analysis.Finding
module Isa = Zkflow_zkvm.Isa
module Trace = Zkflow_zkvm.Trace
module Program = Zkflow_zkvm.Program
module Zirc = Zkflow_lang.Zirc
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze instrs = A.check_instrs (Array.of_list instrs)

let has ~severity r pass =
  let pool =
    match severity with `Error -> Finding.errors r | `Warning -> Finding.warnings r
  in
  List.exists (fun f -> f.Finding.pass = pass) pool

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The terminal-halt idiom every assembled path ends with. *)
let halt_seq = Isa.[ Lui (11, 0); Lui (10, 0); Ecall ]

(* ---- ZR0 defect classes ---- *)

let test_uninit_register () =
  let bad = analyze (Isa.Alu (ADD, 5, 6, 0) :: halt_seq) in
  check_bool "uninit read flagged" true (has ~severity:`Error bad "uninit");
  let good = analyze (Isa.Lui (6, 7) :: Isa.Alu (ADD, 5, 6, 0) :: halt_seq) in
  check_bool "initialized read ok" true (Finding.ok good)

let test_oob_store () =
  let bad = analyze (Isa.Lui (5, Trace.ram_limit) :: Isa.Sw (0, 5, 0) :: halt_seq) in
  check_bool "store past RAM flagged" true (has ~severity:`Error bad "membounds");
  let good =
    analyze (Isa.Lui (5, Trace.ram_limit - 1) :: Isa.Sw (0, 5, 0) :: halt_seq)
  in
  check_bool "last word ok" true (Finding.ok good)

let test_oob_load_via_offset () =
  (* constant propagation must fold base+imm *)
  let bad =
    analyze (Isa.Lui (5, Trace.ram_limit - 1) :: Isa.Lw (6, 5, 1) :: halt_seq)
  in
  check_bool "folded address flagged" true (has ~severity:`Error bad "membounds")

let test_unreachable_block () =
  let bad = analyze (Isa.Jal (0, 3) :: Isa.Lui (5, 1) :: Isa.Lui (5, 2) :: halt_seq) in
  check_bool "dead code warned" true (has ~severity:`Warning bad "unreachable");
  check_bool "warning does not gate" true (Finding.ok bad);
  let good = analyze (Isa.Lui (5, 1) :: halt_seq) in
  check_bool "no dead code, no warning" false (has ~severity:`Warning good "unreachable")

let test_fall_off_end () =
  let bad = analyze [ Isa.Lui (5, 1) ] in
  check_bool "fall-off flagged" true (has ~severity:`Error bad "control");
  let good = analyze (Isa.Lui (5, 1) :: halt_seq) in
  check_bool "terminal halt ok" true (Finding.ok good)

let test_wild_jump () =
  let bad = analyze (Isa.Jal (0, 999) :: halt_seq) in
  check_bool "out-of-program jump flagged" true (has ~severity:`Error bad "control")

let test_ecall_protocol () =
  let bad = analyze (Isa.Lui (10, 9) :: Isa.Ecall :: halt_seq) in
  check_bool "unknown ecall flagged" true (has ~severity:`Error bad "ecall");
  let good = analyze (Isa.Lui (11, 1) :: Isa.Lui (10, 4) :: Isa.Ecall :: halt_seq) in
  check_bool "debug ecall ok" true (Finding.ok good);
  let uninit_arg = analyze (Isa.Lui (10, 4) :: Isa.Ecall :: halt_seq) in
  check_bool "uninit ecall argument flagged" true
    (has ~severity:`Error uninit_arg "uninit")

let test_unbounded_loop () =
  (* a loop whose bound depends on input (the limit comes from an
     ecall) cannot be proven and must stay Unbounded with its header *)
  let bad =
    analyze
      (Isa.Lui (10, 1) :: Isa.Ecall                     (* a0 := read_word *)
      :: Isa.Lui (5, 0)                                 (* i := 0 *)
      :: Isa.Alui (ADD, 5, 5, 1)                        (* 3: i += 1 *)
      :: Isa.Branch (BNE, 5, 10, 3)                     (* while i <> a0 *)
      :: halt_seq)
  in
  (match bad.Finding.cycle_bound with
   | Finding.Unbounded headers -> check_bool "loop header" true (List.mem 3 headers)
   | Finding.Bounded _ -> Alcotest.fail "data-dependent loop not detected");
  let good = analyze (Isa.Lui (5, 1) :: halt_seq) in
  match good.Finding.cycle_bound with
  | Finding.Bounded n -> check_int "straight-line bound" 4 n
  | Finding.Unbounded _ -> Alcotest.fail "acyclic program reported unbounded"

let test_counted_loop_bound () =
  (* a constant countdown loop now gets a *proven* bound: the interval
     domain resolves init=10, step=-1, limit=0 exactly. The machine
     takes 24 cycles; the bound must dominate it without being wild. *)
  let prog =
    Isa.Lui (5, 10) :: Isa.Alui (ADD, 5, 5, -1) :: Isa.Branch (BNE, 5, 0, 1)
    :: halt_seq
  in
  let r = analyze prog in
  check_bool "counted loop is clean" true (Finding.ok r);
  match r.Finding.cycle_bound with
  | Finding.Bounded n ->
    let cycles =
      (Zkflow_zkvm.Machine.run (Program.of_instrs (Array.of_list prog)) ~input:[||])
        .Zkflow_zkvm.Machine.cycles
    in
    check_bool "bound dominates execution" true (n >= cycles);
    check_bool "bound is tight-ish" true (n <= 3 * cycles + 8)
  | Finding.Unbounded _ -> Alcotest.fail "constant loop should be bounded"

let test_sha_cycle_weight () =
  let r =
    analyze
      (Isa.Lui (11, 0x100) :: Isa.Lui (12, 16) :: Isa.Lui (13, 0x200)
      :: Isa.Lui (10, 3) :: Isa.Ecall :: halt_seq)
  in
  match r.Finding.cycle_bound with
  | Finding.Bounded n ->
    check_int "sha rows counted" (8 + Trace.sha_block_count 16) n
  | Finding.Unbounded _ -> Alcotest.fail "acyclic program reported unbounded"

let test_call_return_precision () =
  (* a loop counter in a callee-crossing register must not be flagged:
     calls are function-local edges, not merges across call sites *)
  let items =
    Isa.
      [
        (* main *)
        Lui (5, 0);               (* 0: t0 := 0 *)
        Jal (1, 6);               (* 1: call helper *)
        Alui (ADD, 5, 5, 1);      (* 2: t0 += 1 (uses t0 across the call) *)
        Lui (11, 0);              (* 3 *)
        Lui (10, 0);              (* 4 *)
        Ecall;                    (* 5: halt *)
        (* helper at 6 *)
        Lui (6, 1);               (* 6 *)
        Jalr (0, 1, 0);           (* 7: return *)
      ]
  in
  let r = analyze items in
  check_bool "no false uninit across call" true (Finding.ok r)

let test_malformed_register () =
  let bad = analyze (Isa.Alu (ADD, 40, 0, 0) :: halt_seq) in
  check_bool "register out of range" true (has ~severity:`Error bad "wellformed")

(* ---- Zirc lint ---- *)

let zirc_check prog = A.check_zirc prog

let test_zirc_use_before_assign () =
  let bad =
    Zirc.
      [
        If (Input_avail, [ Let ("y", Int 1) ], []);
        Commit (Var "y");
        Halt (Int 0);
      ]
  in
  check_bool "use-before-assign flagged" true
    (has ~severity:`Error (zirc_check bad) "zirc-assign");
  let good =
    Zirc.
      [
        Let ("y", Int 0);
        If (Input_avail, [ Set ("y", Int 1) ], []);
        Commit (Var "y");
        Halt (Int 0);
      ]
  in
  check_bool "assigned on all paths ok" true (Finding.ok (zirc_check good))

let test_zirc_depth () =
  let rec deep n = if n = 0 then Zirc.Int 1 else Zirc.Bin (Add, Int 1, deep (n - 1)) in
  let bad = Zirc.[ Commit (deep 7); Halt (Int 0) ] in
  check_bool "8-register expression flagged" true
    (has ~severity:`Error (zirc_check bad) "zirc-depth");
  let good = Zirc.[ Commit (deep 6); Halt (Int 0) ] in
  check_bool "7-register expression ok" true (Finding.ok (zirc_check good))

let test_zirc_dead_store_and_divzero () =
  let p =
    Zirc.
      [
        Let ("x", Int 1);
        Commit (Var "x");
        Set ("x", Bin (Divu, Var "x", Int 0));
        Halt (Int 0);
      ]
  in
  let r = zirc_check p in
  check_bool "dead store warned" true (has ~severity:`Warning r "zirc-dead");
  check_bool "division by zero warned" true (has ~severity:`Warning r "zirc-divzero");
  check_bool "warnings do not gate" true (Finding.ok r)

let test_zirc_scope () =
  let dup = Zirc.[ Let ("x", Int 1); Let ("x", Int 2); Halt (Int 0) ] in
  check_bool "shadowing flagged" true
    (has ~severity:`Error (zirc_check dup) "zirc-scope");
  let undecl = Zirc.[ Commit (Var "ghost"); Halt (Int 0) ] in
  check_bool "undeclared flagged" true
    (has ~severity:`Error (zirc_check undecl) "zirc-scope")

let test_zirc_reserved_store () =
  let bad = Zirc.[ Store (Int Zirc.locals_base, Int 1); Halt (Int 0) ] in
  check_bool "write into locals region flagged" true
    (has ~severity:`Error (zirc_check bad) "zirc-membounds")

(* ---- built-in guests ---- *)

let test_builtin_guests_clean () =
  let agg = A.check ~subject:"aggregation" (Lazy.force Guests.aggregation_program) in
  check_bool "aggregation guest has no defects" true (Finding.ok agg);
  let q = A.check ~subject:"query" (Lazy.force Guests.query_program) in
  check_bool "query guest has no defects" true (Finding.ok q);
  (* both carry data-dependent loops: the bound must be honest *)
  (match agg.Finding.cycle_bound with
   | Finding.Unbounded (_ :: _) -> ()
   | _ -> Alcotest.fail "aggregation guest should report unbounded loops");
  (* the unused gl_copy_words runtime helper is dead code: warned, not
     gated *)
  check_bool "dead helper warned" true (has ~severity:`Warning agg "unreachable")

let test_report_json () =
  let r = analyze (Isa.Alu (ADD, 5, 6, 0) :: halt_seq) in
  let js = Finding.report_json r in
  check_bool "json has pass" true (contains ~sub:"\"pass\":\"uninit\"" js);
  check_bool "json has severity" true (contains ~sub:"\"severity\":\"error\"" js)

(* ---- the prover gate ---- *)

let defective_program =
  lazy (Program.of_instrs (Array.of_list (Isa.Alu (ADD, 5, 6, 0) :: halt_seq)))

let test_gate_refuses () =
  Unix.putenv "ZKFLOW_NO_ANALYZE" "";
  match
    Prover_service.prove_custom (Lazy.force defective_program) ~input:[||]
  with
  | Ok _ -> Alcotest.fail "defective guest was proved"
  | Error msg ->
    check_bool "mentions analysis" true (contains ~sub:"static analysis" msg);
    check_bool "mentions override" true (contains ~sub:"ZKFLOW_NO_ANALYZE" msg)

let test_gate_override () =
  Unix.putenv "ZKFLOW_NO_ANALYZE" "1";
  let result =
    Prover_service.prove_custom (Lazy.force defective_program) ~input:[||]
  in
  Unix.putenv "ZKFLOW_NO_ANALYZE" "";
  match result with
  | Ok (receipt, run) ->
    check_int "ran to completion" 0 run.Zkflow_zkvm.Machine.exit_code;
    let program = Lazy.force defective_program in
    (match Zkflow_zkproof.Verify.verify ~program receipt with
     | Ok () -> ()
     | Error e -> Alcotest.fail ("receipt does not verify: " ^ e))
  | Error e -> Alcotest.fail ("override did not bypass the gate: " ^ e)

let test_gate_passes_clean_guest () =
  Unix.putenv "ZKFLOW_NO_ANALYZE" "";
  let clean = Program.of_instrs (Array.of_list (Isa.Lui (5, 1) :: halt_seq)) in
  match Prover_service.prove_custom clean ~input:[||] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("clean guest refused: " ^ e)

(* ---- parser positions and pragmas ---- *)

let parse_err src =
  match Zkflow_lang.Zirc_parse.parse src with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e -> e

let test_parse_positions () =
  (* first column of a fresh line *)
  check_bool "line 2 col 1" true (contains ~sub:"2:1" (parse_err "let x = 1;\n@"));
  (* tabs advance one column each *)
  check_bool "tab columns" true (contains ~sub:"1:3" (parse_err "\t\t@"));
  (* CRLF endings: \r is plain whitespace, lines don't double-count *)
  check_bool "crlf line 3" true
    (contains ~sub:"3:1" (parse_err "let x = 1;\r\nlet y = 2;\r\n@"));
  (* an error on the last character of a line *)
  check_bool "end of line" true (contains ~sub:"1:9" (parse_err "let x = @\n"))

let test_trusted_pragma () =
  let src = "//@ trusted\nlet x = read_word();\ncommit(x);\nhalt(0);" in
  (match Zkflow_lang.Zirc_parse.parse_positioned src with
  | Error e -> Alcotest.fail e
  | Ok (_, ps) ->
    check_bool "first stmt trusted" true
      (List.hd ps).Zkflow_lang.Zirc_parse.trusted;
    check_bool "second stmt not" false
      (List.nth ps 1).Zkflow_lang.Zirc_parse.trusted);
  match Zkflow_lang.Zirc_parse.parse "//@ nonsense\nhalt(0);" with
  | Ok _ -> Alcotest.fail "unknown pragma accepted"
  | Error e -> check_bool "names the pragma" true (contains ~sub:"nonsense" e)

(* ---- interval domain ---- *)

let test_interval_ops () =
  let module I = A.Interval in
  let r = I.alu Isa.ADD (I.range 0 10) (I.const 5) in
  check_bool "add shifts bounds" true
    (I.contains r 5 && I.contains r 15 && not (I.contains r 16));
  (* singleton arguments follow machine semantics exactly *)
  check_int "divu by zero" 0xffff_ffff (I.alu_eval Isa.DIVU 7 0);
  check_bool "divu by zero lifted" true
    (I.is_const (I.alu Isa.DIVU (I.const 7) (I.const 0)) = Some 0xffff_ffff);
  check_int "remu by zero" 7 (I.alu_eval Isa.REMU 7 0);
  (* strided values keep their congruence through scaling *)
  let idx = I.alu Isa.MUL (I.range 0 100) (I.const 8) in
  check_bool "stride 8" true (I.contains idx 16 && not (I.contains idx 12));
  (* widening jumps past thresholds instead of inching *)
  let w = I.widen (I.range 0 1) (I.range 0 2) in
  check_bool "widen is extensive" true (w.I.hi >= 2 && w.I.lo = 0);
  (* branch refinement cuts infeasible edges *)
  match I.refine_branch Isa.BLTU (I.const 5) (I.const 3) ~taken:true with
  | None -> ()
  | Some _ -> Alcotest.fail "5 <u 3 cannot be taken"

(* ---- finding order, dedupe, sarif ---- *)

let test_normalize_sorts_dedupes () =
  let at line col pass =
    Finding.error ~loc:(Finding.Src { line; col }) ~pass "m"
  in
  let a = at 1 5 "a" and b = at 2 1 "b" in
  let n = Finding.normalize [ b; a; b; a ] in
  check_int "deduped" 2 (List.length n);
  check_bool "position-sorted" true (List.hd n = a);
  (* pc findings sort after source findings, stably by pass *)
  let p = Finding.error ~loc:(Finding.Pc 0) ~pass:"z" "m" in
  check_bool "src before pc" true (List.hd (Finding.normalize [ p; a ]) = a)

let test_sarif_smoke () =
  let clean = analyze halt_seq in
  let dirty = analyze (Isa.Alu (Isa.ADD, 5, 6, 7) :: halt_seq) in
  let s = Finding.sarif_json [ clean; dirty ] in
  check_bool "sarif version" true (contains ~sub:"\"2.1.0\"" s);
  check_bool "driver name" true (contains ~sub:"zkflow-audit" s);
  check_bool "uninit rule listed" true (contains ~sub:"uninit" s)

(* ---- taint ---- *)

let audit_src src =
  match Zkflow_lang.Zirc_parse.parse_positioned src with
  | Error e -> Alcotest.fail e
  | Ok (prog, ps) -> A.audit_zirc ~subject:"test" ~positions:ps prog

let test_taint_journal () =
  let r = audit_src "let x = read_word();\ncommit(x);\nhalt(0);" in
  check_bool "unvalidated commit flagged" true (has ~severity:`Error r "taint-journal")

let test_taint_addr () =
  let r = audit_src "let x = read_word();\nlet y = mem[x];\ncommit(y);\nhalt(0);" in
  check_bool "input-derived address flagged" true
    (has ~severity:`Error r "taint-addr")

let test_taint_laundered () =
  let r =
    audit_src
      "let x = read_word();\nif x < 100 { commit(x); } else { halt(1); }\nhalt(0);"
  in
  check_bool "comparison launders" false (has ~severity:`Error r "taint-journal")

let test_trusted_suppression () =
  (* a trusted source is demoted to Checked at the read... *)
  let src = "//@ trusted\nlet x = read_word();\ncommit(x);\nhalt(0);" in
  (match Zkflow_lang.Zirc_parse.parse_positioned src with
  | Error e -> Alcotest.fail e
  | Ok (prog, ps) ->
    let findings, _ = A.Taint.check_zirc ~positions:ps prog in
    check_int "trusted source commits clean" 0 (List.length findings));
  (* ...while a trusted sink has its finding suppressed and counted *)
  let src = "let x = read_word();\n//@ trusted\ncommit(x);\nhalt(0);" in
  match Zkflow_lang.Zirc_parse.parse_positioned src with
  | Error e -> Alcotest.fail e
  | Ok (prog, ps) ->
    let findings, suppressed = A.Taint.check_zirc ~positions:ps prog in
    check_int "no findings" 0 (List.length findings);
    check_bool "suppression counted" true (suppressed >= 1)

let test_audit_drops_compiler_unreachable () =
  let r = audit_src "halt(0);\ncommit(1);" in
  check_bool "source-level dead code reported" true
    (has ~severity:`Warning r "zirc-unreachable");
  check_bool "lowering artifacts dropped" false
    (List.exists (fun f -> f.Finding.pass = "unreachable") r.Finding.findings)

(* ---- the example guests, verbatim and mutated ---- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* The test binary runs from _build/default/test; find the examples by
   walking up (works both from the build tree and the source tree). *)
let example name =
  let rec up d fuel =
    let cand = Filename.concat (Filename.concat d "examples") name in
    if Sys.file_exists cand then cand
    else if fuel = 0 then Alcotest.fail ("cannot locate examples/" ^ name)
    else up (Filename.dirname d) (fuel - 1)
  in
  up (Sys.getcwd ()) 6

let replace ~sub ~by s =
  let n = String.length sub in
  let rec go i =
    if i + n > String.length s then Alcotest.fail ("mutation target absent: " ^ sub)
    else if String.sub s i n = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
    else go (i + 1)
  in
  go 0

let examples = [ "loss_audit.zirc"; "traffic_totals.zirc" ]

let test_examples_audit_clean () =
  List.iter
    (fun path ->
      let r = audit_src (read_file (example path)) in
      check_int (path ^ " has no findings") 0 (List.length r.Finding.findings))
    examples

let test_example_mutants_rejected () =
  List.iter
    (fun path ->
      let src = read_file (example path) in
      (* drop the in-guest root check: the committed region is now
         unvalidated input *)
      let no_check =
        replace ~sub:"if cmp8(0x200000, 0x200) { } else { halt(1); }" ~by:"" src
      in
      check_bool (path ^ " taint mutant flagged") true
        (has ~severity:`Error (audit_src no_check) "taint-journal");
      (* move the root buffer past the end of guest RAM *)
      let oob = replace ~sub:"read_words(0x200, 8);" ~by:"read_words(0x10000000, 8);" src in
      check_bool (path ^ " membounds mutant flagged") true
        (has ~severity:`Error (audit_src oob) "zirc-membounds"))
    examples

(* ---- gate budget ---- *)

let test_gate_budget () =
  let prog = Program.of_instrs (Array.of_list halt_seq) in
  (match A.gate ~subject:"tiny guest" prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match A.gate ~subject:"tiny guest" ~budget:2 prog with
  | Ok () -> Alcotest.fail "expected a budget refusal"
  | Error e ->
    check_bool "names the bound" true (contains ~sub:"cycle bound" e);
    check_bool "names the override" true (contains ~sub:"ZKFLOW_NO_ANALYZE" e)

let () =
  Alcotest.run "zkflow_analysis"
    [
      ( "zr0",
        [
          Alcotest.test_case "uninit register" `Quick test_uninit_register;
          Alcotest.test_case "oob store" `Quick test_oob_store;
          Alcotest.test_case "oob load via offset" `Quick test_oob_load_via_offset;
          Alcotest.test_case "unreachable block" `Quick test_unreachable_block;
          Alcotest.test_case "fall off end" `Quick test_fall_off_end;
          Alcotest.test_case "wild jump" `Quick test_wild_jump;
          Alcotest.test_case "ecall protocol" `Quick test_ecall_protocol;
          Alcotest.test_case "unbounded loop" `Quick test_unbounded_loop;
          Alcotest.test_case "counted loop bound" `Quick test_counted_loop_bound;
          Alcotest.test_case "sha cycle weight" `Quick test_sha_cycle_weight;
          Alcotest.test_case "call/return precision" `Quick test_call_return_precision;
          Alcotest.test_case "malformed register" `Quick test_malformed_register;
        ] );
      ( "zirc",
        [
          Alcotest.test_case "use before assign" `Quick test_zirc_use_before_assign;
          Alcotest.test_case "expression depth" `Quick test_zirc_depth;
          Alcotest.test_case "dead store, div zero" `Quick test_zirc_dead_store_and_divzero;
          Alcotest.test_case "scope" `Quick test_zirc_scope;
          Alcotest.test_case "reserved region store" `Quick test_zirc_reserved_store;
        ] );
      ( "guests",
        [
          Alcotest.test_case "built-ins are clean" `Quick test_builtin_guests_clean;
          Alcotest.test_case "report json" `Quick test_report_json;
        ] );
      ( "parser",
        [
          Alcotest.test_case "error positions" `Quick test_parse_positions;
          Alcotest.test_case "trusted pragma" `Quick test_trusted_pragma;
        ] );
      ( "interval",
        [ Alcotest.test_case "domain operations" `Quick test_interval_ops ] );
      ( "findings",
        [
          Alcotest.test_case "normalize sorts and dedupes" `Quick
            test_normalize_sorts_dedupes;
          Alcotest.test_case "sarif smoke" `Quick test_sarif_smoke;
        ] );
      ( "taint",
        [
          Alcotest.test_case "journal sink" `Quick test_taint_journal;
          Alcotest.test_case "address sink" `Quick test_taint_addr;
          Alcotest.test_case "comparison launders" `Quick test_taint_laundered;
          Alcotest.test_case "trusted suppression" `Quick test_trusted_suppression;
          Alcotest.test_case "compiler dead code dropped" `Quick
            test_audit_drops_compiler_unreachable;
        ] );
      ( "examples",
        [
          Alcotest.test_case "audit clean" `Quick test_examples_audit_clean;
          Alcotest.test_case "mutants rejected" `Quick test_example_mutants_rejected;
        ] );
      ( "gate",
        [
          Alcotest.test_case "refuses defective" `Quick test_gate_refuses;
          Alcotest.test_case "budget refusal" `Quick test_gate_budget;
          Alcotest.test_case "env override" `Slow test_gate_override;
          Alcotest.test_case "passes clean" `Slow test_gate_passes_clean_guest;
        ] );
    ]
