open Zkflow_zkvm
open Asm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?(input = [||]) ?trace ?max_cycles items =
  Machine.run ?trace ?max_cycles (assemble items) ~input

(* Run a fragment that leaves its result in a0, then commits and halts. *)
let eval ?(input = [||]) items =
  let r = run ~input (items @ [ commit a0; halt 0 ]) in
  check_int "exit code" 0 r.Machine.exit_code;
  r.Machine.journal.(0)

(* ---- ALU semantics ---- *)

let test_add_wraps () =
  check_int "wrap" 0 (eval [ li t0 0xffffffff; addi t0 t0 1; mv a0 t0 ]);
  check_int "plain" 7 (eval [ li t0 3; li t1 4; add a0 t0 t1 ])

let test_sub_wraps () =
  check_int "borrow" 0xffffffff (eval [ li t0 0; li t1 1; sub a0 t0 t1 ])

let test_mul_truncates () =
  (* 0x10000 * 0x10000 = 2^32 → 0 in 32 bits *)
  check_int "2^32" 0 (eval [ li t0 0x10000; mul a0 t0 t0 ]);
  check_int "small" 56088 (eval [ li t0 123; li t1 456; mul a0 t0 t1 ])

let test_bitops () =
  check_int "and" 0b1000 (eval [ li t0 0b1100; li t1 0b1010; and_ a0 t0 t1 ]);
  check_int "or" 0b1110 (eval [ li t0 0b1100; li t1 0b1010; or_ a0 t0 t1 ]);
  check_int "xor" 0b0110 (eval [ li t0 0b1100; li t1 0b1010; xor a0 t0 t1 ])

let test_shifts () =
  check_int "sll" 0x80000000 (eval [ li t0 1; li t1 31; sll a0 t0 t1 ]);
  check_int "sll drops" 0 (eval [ li t0 2; li t1 31; sll a0 t0 t1 ]);
  check_int "srl" 1 (eval [ li t0 0x80000000; li t1 31; srl a0 t0 t1 ]);
  (* arithmetic shift keeps the sign bit *)
  check_int "sra" 0xffffffff (eval [ li t0 0x80000000; li t1 31; sra a0 t0 t1 ]);
  check_int "sra positive" 0x20000000 (eval [ li t0 0x40000000; li t1 1; sra a0 t0 t1 ]);
  (* shift amount uses low 5 bits *)
  check_int "shamt mod 32" 2 (eval [ li t0 1; li t1 33; sll a0 t0 t1 ])

let test_slt_signed_vs_unsigned () =
  (* -1 (0xffffffff) < 1 signed, but not unsigned *)
  check_int "slt" 1 (eval [ li t0 0xffffffff; li t1 1; slt a0 t0 t1 ]);
  check_int "sltu" 0 (eval [ li t0 0xffffffff; li t1 1; sltu a0 t0 t1 ]);
  check_int "slti" 1 (eval [ li t0 0xffffffff; slti a0 t0 1 ]);
  check_int "sltiu" 0 (eval [ li t0 0xffffffff; sltiu a0 t0 1 ])

let test_x0_hardwired () =
  check_int "write discarded" 0 (eval [ li zero 42; mv a0 zero ]);
  check_int "add to x0 discarded" 0 (eval [ li t0 7; add zero t0 t0; mv a0 zero ])

(* ---- Memory ---- *)

let test_memory_roundtrip () =
  check_int "load after store" 99
    (eval [ li t0 1000; li t1 99; sw t1 t0 0; lw a0 t0 0 ])

let test_memory_zero_initialised () =
  check_int "fresh read" 0 (eval [ li t0 12345; lw a0 t0 0 ])

let test_memory_offsets () =
  check_int "offset addressing" 5
    (eval [ li t0 2000; li t1 5; sw t1 t0 3; addi t0 t0 3; lw a0 t0 0 ])

(* ---- Control flow ---- *)

let test_branch_taken_and_not () =
  check_int "beq taken" 1
    (eval [ li t0 5; li t1 5; beq t0 t1 "yes"; li a0 0; halt 0; label "yes"; li a0 1 ]);
  check_int "bne not taken" 0
    (eval [ li t0 5; li t1 5; bne t0 t1 "yes"; li a0 0; j "end"; label "yes"; li a0 1; label "end" ])

let test_signed_branches () =
  check_int "blt signed" 1
    (eval [ li t0 0xffffffff; li t1 0; blt t0 t1 "yes"; li a0 0; j "end"; label "yes"; li a0 1; label "end" ]);
  check_int "bltu unsigned" 0
    (eval [ li t0 0xffffffff; li t1 0; bltu t0 t1 "yes"; li a0 0; j "end"; label "yes"; li a0 1; label "end" ])

let test_loop_sum () =
  (* sum 1..10 = 55 *)
  check_int "loop" 55
    (eval
       [
         li t0 10; li a0 0;
         label "loop";
         beq t0 zero "done";
         add a0 a0 t0;
         addi t0 t0 (-1);
         j "loop";
         label "done";
       ])

let test_call_ret () =
  check_int "function call" 42
    (eval
       [
         li a0 21;
         call "double";
         j "end";
         label "double";
         add a0 a0 a0;
         ret;
         label "end";
       ])

(* ---- Host calls ---- *)

let test_read_and_commit () =
  let r =
    run ~input:[| 11; 22; 33 |]
      [ read_word t0; read_word t1; add t2 t0 t1; commit t2; commit t0; halt 0 ]
  in
  Alcotest.(check (array int)) "journal" [| 33; 11 |] r.Machine.journal

let test_input_avail () =
  check_int "avail" 3 (eval ~input:[| 1; 2; 3 |] [ input_avail a0 ]);
  check_int "avail after read" 2
    (eval ~input:[| 1; 2; 3 |] [ read_word t0; input_avail a0 ])

let test_exit_code () =
  let r = run [ halt 7 ] in
  check_int "code" 7 r.Machine.exit_code

let test_debug_collects () =
  let r = run [ li t0 5; debug t0; li t0 6; debug t0; halt 0 ] in
  Alcotest.(check (list int)) "debug" [ 5; 6 ] r.Machine.debug

let test_journal_bytes () =
  let b = Machine.journal_bytes [| 0x01020304; 0xffffffff |] in
  Alcotest.(check string) "big-endian words" "\x01\x02\x03\x04\xff\xff\xff\xff"
    (Bytes.to_string b)

(* ---- Traps ---- *)

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let expect_trap ?input ?max_cycles items substring =
  match run ?input ?max_cycles items with
  | exception Machine.Trap { reason; _ } ->
    check_bool
      (Printf.sprintf "reason %S contains %S" reason substring)
      true
      (contains_substring reason substring)
  | _ -> Alcotest.fail "expected trap"

let test_trap_read_past_input () =
  expect_trap ~input:[||] [ read_word t0; halt 0 ] "input"

let test_trap_pc_out_of_range () =
  expect_trap [ li t0 1 ] "pc"

let test_trap_bad_ram_address () =
  expect_trap [ li t0 0x7fffffff; lw a0 t0 0; halt 0 ] "RAM"

let test_trap_unknown_ecall () =
  expect_trap [ li a0 99; ecall; halt 0 ] "ecall"

let test_trap_cycle_limit () =
  expect_trap ~max_cycles:100 [ label "spin"; j "spin" ] "cycle limit"

(* ---- SHA accelerator ---- *)

let store_input_words ~base n =
  (* read n words from input into memory at [base]. *)
  [ li a0 base; li a1 n; call "gl_read_words" ]

let sha_guest n =
  (* hash n input words, commit the 8 digest words *)
  store_input_words ~base:1000 n
  @ [
      li s9 1000; li s10 2000;
      li t4 n;
      sha ~src:s9 ~words:t4 ~dst:s10;
      li a0 2000; li a1 8; call "gl_commit_words";
      halt 0;
      Guestlib.read_words_fn;
      Guestlib.commit_words_fn;
    ]

let host_digest_of_words ws =
  let b = Bytes.create (4 * Array.length ws) in
  Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) ws;
  Zkflow_hash.Sha256.digest b

let test_sha_matches_host n () =
  let rng = Zkflow_util.Rng.create (Int64.of_int (1000 + n)) in
  let input = Array.init n (fun _ -> Int64.to_int (Zkflow_util.Rng.next_int64 rng) land 0xffffffff) in
  let r = run ~input (sha_guest n) in
  let got = Guestlib.digest_of_words r.Machine.journal in
  Alcotest.(check string)
    (Printf.sprintf "sha of %d words" n)
    (Zkflow_util.Hexcodec.encode (host_digest_of_words input))
    (Zkflow_util.Hexcodec.encode got)

let test_sha_cycle_cost () =
  (* Block arithmetic: a message of n words takes ⌈(4n + 9) / 64⌉
     compression blocks, each one trace row. 13 words → 1 block;
     14, 15, 16 words → 2 blocks. *)
  let cycles n =
    let r = run ~input:(Array.make n 7) (sha_guest n) in
    r.Machine.cycles
  in
  let c13 = cycles 13 and c14 = cycles 14 in
  let c15 = cycles 15 and c16 = cycles 16 in
  let per_word = c16 - c15 in
  check_int "same block count, uniform word cost" per_word (c15 - c14);
  check_int "block boundary adds one row" (per_word + 1) (c14 - c13)

(* ---- Guestlib: leaf hashes + merkle root vs host tree ---- *)

let merkle_guest ~entries_words n =
  (* read n 8-word entries, compute leaf hashes, then the root;
     commit the root. *)
  [
    li a0 4000; li a1 entries_words; call "gl_read_words";
    li a0 4000; li a1 n; li a2 20000; li a3 30000; call "gl_leaf_hashes";
    li a0 20000; li a1 n; call "gl_merkle_root";
    li a0 20000; li a1 8; call "gl_commit_words";
    halt 0;
    Guestlib.all_fns;
  ]

let test_merkle_root_matches_host n () =
  let rng = Zkflow_util.Rng.create (Int64.of_int (77 + n)) in
  let entries =
    Array.init n (fun _ ->
        Array.init 8 (fun _ -> Int64.to_int (Zkflow_util.Rng.next_int64 rng) land 0xffffffff))
  in
  let input = Array.concat (Array.to_list entries) in
  let r = run ~input (merkle_guest ~entries_words:(8 * n) n) in
  let got = Guestlib.digest_of_words r.Machine.journal in
  let host_leaves =
    Array.map
      (fun e ->
        let b = Bytes.create 32 in
        Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) e;
        b)
      entries
  in
  let expected = Zkflow_merkle.Tree.root (Zkflow_merkle.Tree.of_leaves host_leaves) in
  Alcotest.(check string)
    (Printf.sprintf "root over %d entries" n)
    (Zkflow_hash.Digest32.to_hex expected)
    (Zkflow_util.Hexcodec.encode got)

(* ---- Trace invariants ---- *)

let traced_result () =
  run ~trace:true ~input:[| 5; 9 |]
    [
      read_word t0;
      read_word t1;
      add t2 t0 t1;
      li t3 100;
      sw t2 t3 0;
      lw t4 t3 0;
      commit t4;
      li s9 100; li t5 1;
      sha ~src:s9 ~words:t5 ~dst:s10;
      halt 0;
    ]

let test_trace_row_count_equals_cycles () =
  let r = traced_result () in
  check_int "rows = cycles" r.Machine.cycles (Array.length r.Machine.rows)

let test_trace_rows_are_contiguous () =
  let r = traced_result () in
  Array.iteri
    (fun i row ->
      check_int "cycle" i row.Trace.cycle;
      if i < Array.length r.Machine.rows - 1 then
        check_int "next_pc chains" r.Machine.rows.(i + 1).Trace.pc row.Trace.next_pc)
    r.Machine.rows

let test_trace_memlog_partition () =
  (* Every access-log entry is owned by exactly one row, in order. *)
  let r = traced_result () in
  let pos = ref 0 in
  Array.iter
    (fun row ->
      check_int "mem_pos" !pos row.Trace.mem_pos;
      for k = !pos to !pos + row.Trace.mem_count - 1 do
        check_int "entry time" row.Trace.cycle r.Machine.memlog.(k).Trace.time
      done;
      pos := !pos + row.Trace.mem_count)
    r.Machine.rows;
  check_int "log fully covered" (Array.length r.Machine.memlog) !pos

let test_trace_last_row_self_loop () =
  let r = traced_result () in
  let last = r.Machine.rows.(Array.length r.Machine.rows - 1) in
  check_int "halt self-loop" last.Trace.pc last.Trace.next_pc

let test_trace_row_serialization_roundtrip () =
  let r = traced_result () in
  Array.iter
    (fun row ->
      match Trace.decode_row (Trace.encode_row row) with
      | Ok row' -> check_bool "roundtrip" true (Trace.equal_row row row')
      | Error e -> Alcotest.fail e)
    r.Machine.rows

let test_trace_mem_serialization_roundtrip () =
  let r = traced_result () in
  Array.iter
    (fun e ->
      match Trace.decode_mem (Trace.encode_mem e) with
      | Ok e' -> check_bool "roundtrip" true (e = e')
      | Error msg -> Alcotest.fail msg)
    r.Machine.memlog

let test_trace_off_is_empty () =
  let r = run ~input:[| 1 |] [ read_word t0; halt 0 ] in
  check_int "no rows" 0 (Array.length r.Machine.rows);
  check_int "no memlog" 0 (Array.length r.Machine.memlog)

let test_trace_register_reads_logged () =
  let r = run ~trace:true [ li t0 3; li t1 4; add t2 t0 t1; halt 0 ] in
  (* add row owns: read t0 (=3), read t1 (=4), write t2 (=7). *)
  let row = r.Machine.rows.(2) in
  check_int "3 accesses" 3 row.Trace.mem_count;
  let e k = r.Machine.memlog.(row.Trace.mem_pos + k) in
  check_int "rs1 value" 3 (e 0).Trace.value;
  check_bool "rs1 is read" false (e 0).Trace.write;
  check_int "rs2 value" 4 (e 1).Trace.value;
  check_int "rd value" 7 (e 2).Trace.value;
  check_bool "rd is write" true (e 2).Trace.write;
  check_int "rd addr" (Trace.reg_base + 7) (e 2).Trace.addr

(* ---- Program / image ids ---- *)

let test_image_id_sensitive () =
  let p1 = assemble [ li t0 1; halt 0 ] in
  let p2 = assemble [ li t0 2; halt 0 ] in
  check_bool "different programs, different ids" false
    (Zkflow_hash.Digest32.equal (Program.image_id p1) (Program.image_id p2))

let test_image_id_stable () =
  let p1 = assemble [ li t0 1; halt 0 ] in
  let p2 = assemble [ li t0 1; halt 0 ] in
  check_bool "same program, same id" true
    (Zkflow_hash.Digest32.equal (Program.image_id p1) (Program.image_id p2))

let test_assemble_rejects_bad_labels () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Asm.assemble: duplicate label \"x\"") (fun () ->
      ignore (assemble [ label "x"; label "x"; halt 0 ]));
  Alcotest.check_raises "undefined"
    (Invalid_argument "Asm.assemble: undefined label \"nowhere\"") (fun () ->
      ignore (assemble [ j "nowhere" ]))

let prop_alu_reference =
  (* Cross-check the machine's ALU against a direct OCaml model. *)
  QCheck.Test.make ~name:"alu matches reference" ~count:300
    QCheck.(triple (int_bound 12) (int_bound 0xfffffff) (int_bound 0xfffffff))
    (fun (opn, x, y) ->
      let ops =
        [| Isa.ADD; SUB; MUL; AND; OR; XOR; SLL; SRL; SRA; SLT; SLTU; DIVU; REMU |]
      in
      let op = ops.(opn) in
      let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
      let expected =
        match op with
        | ADD -> (x + y) land 0xffffffff
        | SUB -> (x - y) land 0xffffffff
        | MUL -> Int64.(to_int (logand (mul (of_int x) (of_int y)) 0xFFFFFFFFL))
        | AND -> x land y
        | OR -> x lor y
        | XOR -> x lxor y
        | SLL -> (x lsl (y land 31)) land 0xffffffff
        | SRL -> x lsr (y land 31)
        | SRA -> (signed x asr (y land 31)) land 0xffffffff
        | SLT -> if signed x < signed y then 1 else 0
        | SLTU -> if x < y then 1 else 0
        | DIVU -> if y = 0 then 0xffffffff else x / y
        | REMU -> if y = 0 then x else x mod y
      in
      let alu_item op =
        let f =
          match (op : Isa.alu) with
          | ADD -> add | SUB -> sub | MUL -> mul | AND -> and_ | OR -> or_
          | XOR -> xor | SLL -> sll | SRL -> srl | SRA -> sra
          | SLT -> slt | SLTU -> sltu | DIVU -> divu | REMU -> remu
        in
        f a0 t0 t1
      in
      let p = assemble [ li t0 x; li t1 y; alu_item op; commit a0; halt 0 ] in
      let r = Machine.run p ~input:[||] in
      r.Machine.journal.(0) = expected)

(* encode/decode: the round-trip property over the full instruction
   space, plus the regression the property would have caught — Alu rs1
   used to be packed into 5 bits of a shared byte, collapsing distinct
   instructions (and image IDs) whenever rs1 >= 8. *)

let gen_instr : Isa.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let imm =
    frequency
      [
        (4, int_range (-0x8000_0000) 0xffff_ffff);
        (1, oneofl [ 0; 1; -1; 0xffff_ffff; -0x8000_0000 ]);
      ]
  in
  let alu =
    oneofl
      Isa.[ ADD; SUB; MUL; AND; OR; XOR; SLL; SRL; SRA; SLT; SLTU; DIVU; REMU ]
  in
  let br = oneofl Isa.[ BEQ; BNE; BLT; BGE; BLTU; BGEU ] in
  oneof
    [
      map (fun ((op, rd), (rs1, rs2)) -> Isa.Alu (op, rd, rs1, rs2))
        (pair (pair alu reg) (pair reg reg));
      map (fun ((op, rd), (rs1, imm)) -> Isa.Alui (op, rd, rs1, imm))
        (pair (pair alu reg) (pair reg imm));
      map (fun (rd, imm) -> Isa.Lui (rd, imm)) (pair reg imm);
      map (fun ((rd, rs1), imm) -> Isa.Lw (rd, rs1, imm)) (pair (pair reg reg) imm);
      map (fun ((rs2, rs1), imm) -> Isa.Sw (rs2, rs1, imm)) (pair (pair reg reg) imm);
      map (fun ((op, rs1), (rs2, tgt)) -> Isa.Branch (op, rs1, rs2, tgt))
        (pair (pair br reg) (pair reg imm));
      map (fun (rd, tgt) -> Isa.Jal (rd, tgt)) (pair reg imm);
      map (fun ((rd, rs1), imm) -> Isa.Jalr (rd, rs1, imm)) (pair (pair reg reg) imm);
      return Isa.Ecall;
    ]

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"decode inverts encode" ~count:2000
    (QCheck.make ~print:(Format.asprintf "%a" Isa.pp) gen_instr)
    (fun i ->
      match Isa.decode (Isa.encode i) with
      | Ok j -> j = i
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_alu_encoding_injective () =
  (* rs1 = 8 and rs2 = 8 swapped must produce different encodings *)
  let a = Isa.encode (Isa.Alu (ADD, 1, 8, 0)) in
  let b = Isa.encode (Isa.Alu (ADD, 1, 0, 8)) in
  Alcotest.(check bool) "rs1/rs2 distinguished" false (Bytes.equal a b);
  (* ... and so must image IDs of programs differing only there *)
  let p rs1 rs2 = Program.of_instrs [| Isa.Alu (ADD, 1, rs1, rs2); Isa.Ecall |] in
  Alcotest.(check bool) "image ids distinct" false
    (Zkflow_hash.Digest32.equal
       (Program.image_id (p 8 0))
       (Program.image_id (p 0 8)))

let test_decode_rejects_garbage () =
  let bad b = match Isa.decode b with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "short input" true (bad (Bytes.create 5));
  Alcotest.(check bool) "opcode 0" true (bad (Bytes.make 12 '\000'));
  Alcotest.(check bool) "unknown opcode" true (bad (Bytes.make 12 '\255'));
  (* a register field past 31 *)
  let b = Isa.encode (Isa.Lui (0, 0)) in
  Bytes.set b 1 (Char.chr 40);
  Alcotest.(check bool) "register out of range" true (bad b)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "zkflow_zkvm"
    [
      ( "alu",
        [
          Alcotest.test_case "add wraps" `Quick test_add_wraps;
          Alcotest.test_case "sub wraps" `Quick test_sub_wraps;
          Alcotest.test_case "mul truncates" `Quick test_mul_truncates;
          Alcotest.test_case "bitops" `Quick test_bitops;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "slt signed/unsigned" `Quick test_slt_signed_vs_unsigned;
          Alcotest.test_case "x0 hardwired" `Quick test_x0_hardwired;
          q prop_alu_reference;
        ] );
      ( "memory",
        [
          Alcotest.test_case "roundtrip" `Quick test_memory_roundtrip;
          Alcotest.test_case "zero initialised" `Quick test_memory_zero_initialised;
          Alcotest.test_case "offsets" `Quick test_memory_offsets;
        ] );
      ( "control",
        [
          Alcotest.test_case "branches" `Quick test_branch_taken_and_not;
          Alcotest.test_case "signed branches" `Quick test_signed_branches;
          Alcotest.test_case "loop" `Quick test_loop_sum;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
        ] );
      ( "host",
        [
          Alcotest.test_case "read/commit" `Quick test_read_and_commit;
          Alcotest.test_case "input_avail" `Quick test_input_avail;
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "debug" `Quick test_debug_collects;
          Alcotest.test_case "journal bytes" `Quick test_journal_bytes;
        ] );
      ( "traps",
        [
          Alcotest.test_case "read past input" `Quick test_trap_read_past_input;
          Alcotest.test_case "pc out of range" `Quick test_trap_pc_out_of_range;
          Alcotest.test_case "bad RAM address" `Quick test_trap_bad_ram_address;
          Alcotest.test_case "unknown ecall" `Quick test_trap_unknown_ecall;
          Alcotest.test_case "cycle limit" `Quick test_trap_cycle_limit;
        ] );
      ( "sha",
        [
          Alcotest.test_case "0 words" `Quick (test_sha_matches_host 0);
          Alcotest.test_case "1 word" `Quick (test_sha_matches_host 1);
          Alcotest.test_case "11 words" `Quick (test_sha_matches_host 11);
          Alcotest.test_case "13 words" `Quick (test_sha_matches_host 13);
          Alcotest.test_case "14 words (boundary)" `Quick (test_sha_matches_host 14);
          Alcotest.test_case "16 words" `Quick (test_sha_matches_host 16);
          Alcotest.test_case "33 words" `Quick (test_sha_matches_host 33);
          Alcotest.test_case "cycle cost" `Quick test_sha_cycle_cost;
        ] );
      ( "guestlib",
        [
          Alcotest.test_case "merkle root n=1" `Quick (test_merkle_root_matches_host 1);
          Alcotest.test_case "merkle root n=2" `Quick (test_merkle_root_matches_host 2);
          Alcotest.test_case "merkle root n=3" `Quick (test_merkle_root_matches_host 3);
          Alcotest.test_case "merkle root n=7" `Quick (test_merkle_root_matches_host 7);
          Alcotest.test_case "merkle root n=8" `Quick (test_merkle_root_matches_host 8);
          Alcotest.test_case "merkle root n=13" `Quick (test_merkle_root_matches_host 13);
        ] );
      ( "trace",
        [
          Alcotest.test_case "rows = cycles" `Quick test_trace_row_count_equals_cycles;
          Alcotest.test_case "contiguous" `Quick test_trace_rows_are_contiguous;
          Alcotest.test_case "memlog partition" `Quick test_trace_memlog_partition;
          Alcotest.test_case "halt self-loop" `Quick test_trace_last_row_self_loop;
          Alcotest.test_case "row serialization" `Quick test_trace_row_serialization_roundtrip;
          Alcotest.test_case "mem serialization" `Quick test_trace_mem_serialization_roundtrip;
          Alcotest.test_case "trace off" `Quick test_trace_off_is_empty;
          Alcotest.test_case "register accesses" `Quick test_trace_register_reads_logged;
        ] );
      ( "program",
        [
          Alcotest.test_case "image id sensitive" `Quick test_image_id_sensitive;
          Alcotest.test_case "image id stable" `Quick test_image_id_stable;
          Alcotest.test_case "label validation" `Quick test_assemble_rejects_bad_labels;
          Alcotest.test_case "alu encoding injective" `Quick test_alu_encoding_injective;
          Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects_garbage;
          q prop_encode_decode_roundtrip;
        ] );
    ]
