(* End-to-end CLI tests: drive the installed binary the way a user
   (or the CI smoke job) does. Covers the flight-recorder workflow —
   simulate/prove/verify with --events, then monitor and trace-check
   over the recorded log — plus the failure-mode contracts: stats on
   missing/corrupt state is a one-line error with a nonzero exit, and
   bench-diff exits nonzero exactly when a regression is present. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* This test lives in _build/default/test and the binary in
   _build/default/bin; resolve it relative to the running executable
   so the path holds under both `dune runtest` and `dune exec`. *)
let zkflow =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) Filename.parent_dir_name)
    (Filename.concat "bin" "zkflow.exe")

let run args =
  let cmd = Printf.sprintf "%s %s 2>&1" zkflow (String.concat " " args) in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "zkflow-cli-%d-%d" (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d

let write_text path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* ---- stats failure modes ---- *)

let test_stats_missing_state () =
  let dir = fresh_dir () in
  let code, out = run [ "stats"; "--dir"; dir ] in
  check_int "nonzero exit" 1 code;
  check_bool "one-line error" true (List.length (String.split_on_char '\n' (String.trim out)) = 1);
  check_bool "says error" true (contains ~needle:"error:" out);
  check_bool "no backtrace" false (contains ~needle:"Raised" out)

let test_stats_corrupt_service () =
  let dir = fresh_dir () in
  let code, _ = run [ "simulate"; "--dir"; dir; "--flows"; "4"; "--rate"; "50"; "--duration"; "1500" ] in
  check_int "simulate ok" 0 code;
  write_text (Filename.concat dir "service.bin") "garbage, not wire format";
  let code, out = run [ "stats"; "--dir"; dir ] in
  check_int "nonzero exit" 1 code;
  check_bool "names the file" true (contains ~needle:"service.bin" out);
  check_bool "diagnosis, not backtrace" true (contains ~needle:"corrupt state" out);
  check_bool "no backtrace" false (contains ~needle:"Raised" out)

(* ---- the flight-recorder workflow ---- *)

let test_events_workflow () =
  let dir = fresh_dir () in
  let events = Filename.concat dir "events.jsonl" in
  let code, out =
    run
      [ "simulate"; "--dir"; dir; "--events"; events; "--flows"; "6"; "--rate";
        "80"; "--duration"; "2000"; "--routers"; "3" ]
  in
  check_int ("simulate: " ^ out) 0 code;
  let code, out =
    run [ "prove"; "--dir"; dir; "--events"; events; "--queries"; "8"; "--src"; "10.0.0.1" ]
  in
  check_int ("prove: " ^ out) 0 code;
  let code, out = run [ "verify"; "--dir"; dir; "--events"; events ] in
  check_int ("verify: " ^ out) 0 code;
  (* the log validates: schema, monotone tracks, causality *)
  let code, out = run [ "trace-check"; "--events"; events ] in
  check_int ("trace-check: " ^ out) 0 code;
  (* the health report sees a clean pipeline *)
  let code, out = run [ "monitor"; "--dir"; dir; "--strict" ] in
  check_int ("monitor: " ^ out) 0 code;
  check_bool "healthy" true (contains ~needle:"health: OK" out);
  check_bool "no rejects" true (contains ~needle:"rejects: none" out);
  check_bool "latency percentiles" true (contains ~needle:"p99" out);
  (* machine-readable report parses and agrees *)
  let code, out = run [ "monitor"; "--dir"; dir; "--json" ] in
  check_int "monitor --json exit" 0 code;
  (match Zkflow_util.Jsonx.parse (String.trim out) with
  | Error e -> Alcotest.fail ("monitor json does not parse: " ^ e)
  | Ok v ->
    check_bool "healthy in json" true
      (Zkflow_util.Jsonx.member "healthy" v = Some (Zkflow_util.Jsonx.Bool true)));
  (* stats works and surfaces percentiles *)
  let code, out = run [ "stats"; "--dir"; dir ] in
  check_int ("stats: " ^ out) 0 code;
  check_bool "round cycle percentiles" true (contains ~needle:"round cycles: p50" out);
  check_bool "soundness bits surfaced" true (contains ~needle:"soundness bits" out)

let test_monitor_missing_log () =
  let dir = fresh_dir () in
  let code, out = run [ "monitor"; "--dir"; dir ] in
  check_int "nonzero exit" 1 code;
  check_bool "points at --events" true (contains ~needle:"--events" out)

(* ---- chaos ---- *)

let chaos_flags = [ "--routers"; "2"; "--flows"; "6"; "--rate"; "25"; "--duration"; "9000" ]

let test_chaos_crash_plan_stays_healthy () =
  let dir = fresh_dir () in
  let plan = Filename.concat dir "plan.json" in
  write_text plan
    {|{"seed": 1, "name": "cli-crash",
       "faults": [{"kind": "crash", "site": "agg.pre_checkpoint", "hits": 1}]}|};
  let code, out =
    run ([ "chaos"; "--dir"; dir; "--plan"; plan; "--json" ] @ chaos_flags)
  in
  check_int ("chaos: " ^ out) 0 code;
  (match Zkflow_util.Jsonx.parse (String.trim out) with
  | Error e -> Alcotest.fail ("chaos json does not parse: " ^ e)
  | Ok v ->
    let bool_field k = Zkflow_util.Jsonx.member k v = Some (Zkflow_util.Jsonx.Bool true) in
    check_bool "safety_ok" true (bool_field "safety_ok");
    check_bool "liveness_ok" true (bool_field "liveness_ok");
    check_bool "root bit-identical to twin" true
      (Zkflow_util.Jsonx.member "final_root" v = Zkflow_util.Jsonx.member "twin_root" v);
    check_bool "status complete" true
      (Zkflow_util.Jsonx.member "status" v = Some (Zkflow_util.Jsonx.Str "complete")));
  (* injected crashes and the recovery are chaos, not ill health *)
  let code, out = run [ "monitor"; "--dir"; dir; "--strict" ] in
  check_int ("monitor --strict: " ^ out) 0 code;
  check_bool "healthy" true (contains ~needle:"health: OK" out);
  check_bool "reports the crash" true (contains ~needle:"crashes: 1 injected" out)

let test_chaos_dropped_export_fails_strict_monitor () =
  let dir = fresh_dir () in
  let plan = Filename.concat dir "plan.json" in
  write_text plan
    {|{"seed": 4, "name": "cli-drop",
       "faults": [{"kind": "drop", "router": 1, "epoch": 0}]}|};
  let code, out = run ([ "chaos"; "--dir"; dir; "--plan"; plan ] @ chaos_flags) in
  (* explicit degradation is a successful chaos run... *)
  check_int ("chaos: " ^ out) 0 code;
  check_bool "degraded verdict" true (contains ~needle:"degraded" out);
  check_bool "gap names the export" true (contains ~needle:"r1/e0" out);
  (* ...but a gap past the grace window fails the strict health gate *)
  let code, out = run [ "monitor"; "--dir"; dir; "--strict" ] in
  check_int "strict monitor fails" 1 code;
  check_bool "says degraded" true (contains ~needle:"DEGRADED" out);
  (* inside the grace window the same gap is tolerated *)
  let code, _ = run [ "monitor"; "--dir"; dir; "--gap-grace"; "99" ] in
  check_int "lenient monitor exit" 0 code

(* ---- the live telemetry plane: slo, watch, monitor trends ---- *)

(* One recorded pipeline (events + time-series) feeds all three
   surfaces: the strict SLO verdict must pass on a clean run, every
   watch --probe endpoint must serve its schema from the artifacts,
   and the monitor trend must surface the round-latency time-series. *)
let test_telemetry_plane_clean_run () =
  let dir = fresh_dir () in
  let events = Filename.concat dir "events.jsonl" in
  let timeseries = Filename.concat dir "timeseries.jsonl" in
  (* Enough flows that the aggregation round outlasts several 100 ms
     sampler ticks: the round-latency trend legitimately has too few
     frames to compare windows when prove finishes in ~2 ticks (a
     6-flow round does, on a fast machine, and the trend is null). *)
  let code, out =
    run
      [ "simulate"; "--dir"; dir; "--events"; events; "--flows"; "60"; "--rate";
        "60"; "--duration"; "2000"; "--routers"; "2" ]
  in
  check_int ("simulate: " ^ out) 0 code;
  let code, out =
    run
      [ "prove"; "--dir"; dir; "--events"; events; "--timeseries"; timeseries;
        "--queries"; "8" ]
  in
  check_int ("prove: " ^ out) 0 code;
  check_bool "time-series written" true (Sys.file_exists timeseries);
  (* clean run: every objective met, strict exits 0 *)
  let code, out = run [ "slo"; "--dir"; dir; "--strict" ] in
  check_int ("slo --strict: " ^ out) 0 code;
  check_bool "all objectives met" true (contains ~needle:"all objectives met" out);
  let code, out = run [ "slo"; "--dir"; dir; "--json" ] in
  check_int "slo --json exit" 0 code;
  (match Zkflow_util.Jsonx.parse (String.trim out) with
  | Error e -> Alcotest.fail ("slo json does not parse: " ^ e)
  | Ok v ->
    check_bool "slo schema" true
      (Zkflow_util.Jsonx.member "schema" v
      = Some (Zkflow_util.Jsonx.Str "zkflow-slo/v1"));
    check_bool "ok" true
      (Zkflow_util.Jsonx.member "ok" v = Some (Zkflow_util.Jsonx.Bool true)));
  (* every endpoint probes schema-valid from the artifacts *)
  let code, out = run [ "watch"; "--dir"; dir; "--probe"; "/healthz" ] in
  check_int ("watch /healthz: " ^ out) 0 code;
  (match Zkflow_util.Jsonx.parse (String.trim out) with
  | Error e -> Alcotest.fail ("healthz does not parse: " ^ e)
  | Ok v ->
    check_bool "healthz schema" true
      (Zkflow_util.Jsonx.member "schema" v
      = Some (Zkflow_util.Jsonx.Str "zkflow-healthz/v1"));
    check_bool "healthy" true
      (Zkflow_util.Jsonx.member "healthy" v = Some (Zkflow_util.Jsonx.Bool true)));
  let code, out = run [ "watch"; "--dir"; dir; "--probe"; "/slo" ] in
  check_int ("watch /slo: " ^ out) 0 code;
  check_bool "slo endpoint schema" true (contains ~needle:"zkflow-slo/v1" out);
  let code, out = run [ "watch"; "--dir"; dir; "--probe"; "/metrics" ] in
  check_int ("watch /metrics: " ^ out) 0 code;
  check_bool "prometheus names" true (contains ~needle:"zkflow_" out);
  check_bool "timeseries gauges" true (contains ~needle:"zkflow_timeseries_frames" out);
  (* an unknown path is a failed probe, not a silent 404 body *)
  let code, out = run [ "watch"; "--dir"; dir; "--probe"; "/nope" ] in
  check_int "unknown path fails the probe" 1 code;
  check_bool "names the status" true (contains ~needle:"404" out);
  (* the monitor trend reads the conventional DIR/timeseries.jsonl *)
  let code, out = run [ "monitor"; "--dir"; dir; "--json" ] in
  check_int ("monitor --json: " ^ out) 0 code;
  match Zkflow_util.Jsonx.parse (String.trim out) with
  | Error e -> Alcotest.fail ("monitor json does not parse: " ^ e)
  | Ok v -> (
    match Zkflow_util.Jsonx.member "round_latency_trend" v with
    | Some trend ->
      check_bool "trend names the metric" true
        (Zkflow_util.Jsonx.member "metric" trend
        = Some (Zkflow_util.Jsonx.Str "prover.round_ns"))
    | None -> Alcotest.fail "no round_latency_trend in monitor json")

(* The other half of the chaos contract: an injected drop must trip
   the coverage objective, and the strict verdict must say so with a
   nonzero exit. *)
let test_slo_strict_flags_chaos_drop () =
  let dir = fresh_dir () in
  let plan = Filename.concat dir "plan.json" in
  write_text plan
    {|{"seed": 4, "name": "cli-slo-drop",
       "faults": [{"kind": "drop", "router": 1, "epoch": 0}]}|};
  let code, out = run ([ "chaos"; "--dir"; dir; "--plan"; plan ] @ chaos_flags) in
  check_int ("chaos: " ^ out) 0 code;
  check_bool "chaos verdict names the slo" true (contains ~needle:"coverage" out);
  let code, out = run [ "slo"; "--dir"; dir; "--strict" ] in
  check_int "strict slo fails" 1 code;
  check_bool "coverage fired" true (contains ~needle:"coverage" out);
  check_bool "says firing" true (contains ~needle:"firing" out);
  (* without --strict the same verdict is informational *)
  let code, out = run [ "slo"; "--dir"; dir ] in
  check_int "non-strict exit" 0 code;
  check_bool "still reports FIRING" true (contains ~needle:"FIRING" out)

(* ---- bench-diff ---- *)

let old_bench =
  {|{"env":{},"rows":[
     {"records":100,"agg_prove_s":1.0,"agg_cycles":5000,
      "phases":{"merkle":{"count":3,"total_s":0.4}},"pool":{"utilization":0.5}},
     {"records":200,"agg_prove_s":2.0,"agg_cycles":9000,
      "phases":{"merkle":{"count":3,"total_s":0.8}}}]}|}

let regressed_bench =
  {|{"env":{},"rows":[
     {"records":100,"agg_prove_s":1.6,"agg_cycles":5000,
      "phases":{"merkle":{"count":3,"total_s":0.4}},"pool":{"utilization":0.5}},
     {"records":200,"agg_prove_s":2.0,"agg_cycles":9000,
      "phases":{"merkle":{"count":3,"total_s":0.8}}}]}|}

let test_bench_diff_regression () =
  let dir = fresh_dir () in
  let old_f = Filename.concat dir "old.json" in
  let new_f = Filename.concat dir "new.json" in
  write_text old_f old_bench;
  write_text new_f regressed_bench;
  let code, out = run [ "bench-diff"; old_f; new_f ] in
  check_int "regression exits nonzero" 1 code;
  check_bool "names the field" true (contains ~needle:"agg_prove_s" out);
  check_bool "names the row" true (contains ~needle:"records=100" out);
  (* identical artifacts pass, and so does the regressed one at a
     threshold above the slowdown *)
  let code, _ = run [ "bench-diff"; old_f; old_f ] in
  check_int "identity passes" 0 code;
  let code, _ = run [ "bench-diff"; old_f; new_f; "--threshold"; "0.8" ] in
  check_int "loose threshold passes" 0 code

let test_bench_diff_json () =
  let dir = fresh_dir () in
  let old_f = Filename.concat dir "old.json" in
  write_text old_f old_bench;
  let code, out = run [ "bench-diff"; old_f; old_f; "--json" ] in
  check_int "exit" 0 code;
  match Zkflow_util.Jsonx.parse (String.trim out) with
  | Error e -> Alcotest.fail ("bench-diff json does not parse: " ^ e)
  | Ok v ->
    check_bool "ok flag" true
      (Zkflow_util.Jsonx.member "ok" v = Some (Zkflow_util.Jsonx.Bool true))

(* ---- report ---- *)

(* Two matrix cells; the 256-byte wrap cell trades verify-anywhere for
   size, so both sit on the frontier. *)
let matrix_fixture =
  {|{"schema":"zkflow-bench-matrix/v1",
     "env":{"git_commit":"abc1234","git_dirty":false,"hostname":"fixture"},
     "rows":[
       {"backend":"receipt","queries":16,"records":48,"routers":2,"jobs":1,
        "agg_cycles":12000,"exec_s":0.01,"prove_s":1.0,"verify_s":0.014,
        "proof_bytes":110000,"journal_bytes":904,"receipt_bytes":110904,
        "soundness_bits":1.18,
        "phases":{"stark.prove":{"count":2,"total_s":0.7}}},
       {"backend":"wrap","queries":16,"records":48,"routers":2,"jobs":1,
        "agg_cycles":12000,"exec_s":0.01,"prove_s":1.1,"verify_s":0.001,
        "proof_bytes":256,"journal_bytes":904,"receipt_bytes":1410,
        "soundness_bits":1.18,
        "phases":{"stark.prove":{"count":2,"total_s":0.7}}}]}|}

let test_report_markdown () =
  let dir = fresh_dir () in
  let f = Filename.concat dir "BENCH_matrix.json" in
  write_text f matrix_fixture;
  let code, out = run [ "report"; f ] in
  check_int ("report: " ^ out) 0 code;
  check_bool "matrix table" true (contains ~needle:"## Matrix" out);
  check_bool "frontier table" true (contains ~needle:"## Pareto frontier" out);
  check_bool "provenance line" true (contains ~needle:"git_commit=abc1234" out);
  check_bool "soundness column" true (contains ~needle:"soundness (bits)" out);
  (* --markdown is the default spelled out *)
  let code, out2 = run [ "report"; f; "--markdown" ] in
  check_int "explicit --markdown" 0 code;
  check_bool "same rendering" true (out = out2)

let test_report_json () =
  let dir = fresh_dir () in
  let f = Filename.concat dir "BENCH_matrix.json" in
  write_text f matrix_fixture;
  let code, out = run [ "report"; f; "--json" ] in
  check_int ("report --json: " ^ out) 0 code;
  match Zkflow_util.Jsonx.parse (String.trim out) with
  | Error e -> Alcotest.fail ("report json does not parse: " ^ e)
  | Ok v ->
    (match Zkflow_util.Jsonx.member "cells" v with
    | Some (Zkflow_util.Jsonx.Num n) -> check_int "cells" 2 (int_of_float n)
    | _ -> Alcotest.fail "no cells count");
    (match Zkflow_util.Jsonx.member "frontier" v with
    | Some (Zkflow_util.Jsonx.Arr keys) ->
      (* both fixture cells trade off prove time vs proof bytes *)
      check_int "both cells on frontier" 2 (List.length keys)
    | _ -> Alcotest.fail "no frontier list")

let test_report_missing_input () =
  let dir = fresh_dir () in
  let f = Filename.concat dir "nope.json" in
  let code, out = run [ "report"; f ] in
  check_int "nonzero exit" 1 code;
  check_bool "one-line error" true
    (List.length (String.split_on_char '\n' (String.trim out)) = 1);
  check_bool "names the file" true (contains ~needle:"nope.json" out);
  check_bool "no backtrace" false (contains ~needle:"Raised" out)

let test_report_corrupt_input () =
  let dir = fresh_dir () in
  let f = Filename.concat dir "broken.json" in
  write_text f "{\"rows\": [truncated";
  let code, out = run [ "report"; f ] in
  check_int "nonzero exit" 1 code;
  check_bool "one-line error" true
    (List.length (String.split_on_char '\n' (String.trim out)) = 1);
  check_bool "says corrupt" true (contains ~needle:"corrupt artifact" out);
  (* valid JSON that is not a matrix artifact is diagnosed, not rendered *)
  let g = Filename.concat dir "other.json" in
  write_text g {|{"env":{},"sweep":[{"records":10,"agg_prove_s":1.0}]}|};
  let code, out = run [ "report"; g ] in
  check_int "wrong-schema exit" 1 code;
  check_bool "points at the schema" true (contains ~needle:"rows" out)

let test_report_flag_conflict () =
  let dir = fresh_dir () in
  let f = Filename.concat dir "BENCH_matrix.json" in
  write_text f matrix_fixture;
  let code, out = run [ "report"; f; "--json"; "--markdown" ] in
  check_int "nonzero exit" 1 code;
  check_bool "says mutually exclusive" true (contains ~needle:"mutually exclusive" out)

let () =
  Alcotest.run "zkflow_cli"
    [
      ( "stats",
        [
          Alcotest.test_case "missing state is a one-line error" `Quick
            test_stats_missing_state;
          Alcotest.test_case "corrupt service.bin is a one-line error" `Quick
            test_stats_corrupt_service;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "simulate/prove/verify -> monitor" `Quick
            test_events_workflow;
          Alcotest.test_case "monitor without a log" `Quick test_monitor_missing_log;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crash plan: verified, root matches twin, healthy" `Slow
            test_chaos_crash_plan_stays_healthy;
          Alcotest.test_case "dropped export: degraded + strict monitor fails" `Slow
            test_chaos_dropped_export_fails_strict_monitor;
        ] );
      ( "telemetry-plane",
        [
          Alcotest.test_case "clean run: slo, watch probes, monitor trend" `Quick
            test_telemetry_plane_clean_run;
          Alcotest.test_case "chaos drop trips the strict slo verdict" `Slow
            test_slo_strict_flags_chaos_drop;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "regression detection and thresholds" `Quick
            test_bench_diff_regression;
          Alcotest.test_case "json output" `Quick test_bench_diff_json;
        ] );
      ( "report",
        [
          Alcotest.test_case "renders markdown with frontier" `Quick
            test_report_markdown;
          Alcotest.test_case "json output" `Quick test_report_json;
          Alcotest.test_case "missing input is a one-line error" `Quick
            test_report_missing_input;
          Alcotest.test_case "corrupt input is a one-line error" `Quick
            test_report_corrupt_input;
          Alcotest.test_case "--json/--markdown conflict" `Quick
            test_report_flag_conflict;
        ] );
    ]
