open Zkflow_store
module Record = Zkflow_netflow.Record
module Gen = Zkflow_netflow.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let rng () = Zkflow_util.Rng.create 99L

let sample_records ?(router_id = 0) n =
  Gen.records (rng ()) Gen.default_profile ~router_id ~count:n

(* ---- Codec ---- *)

let test_codec_roundtrip () =
  let r =
    Record.make
      ~key:(sample_records 1).(0).Record.key
      ~first_ts:123 ~last_ts:456 ~router_id:7
      { Record.packets = 1; bytes = 2; hop_count = 3; losses = 4 }
  in
  match Codec.record_of_row (Codec.record_to_row r) with
  | Error e -> Alcotest.fail e
  | Ok r' ->
    check_int "first_ts" 123 r'.Record.first_ts;
    check_int "last_ts" 456 r'.Record.last_ts;
    check_int "router" 7 r'.Record.router_id;
    check_int "losses" 4 r'.Record.metrics.Record.losses

let test_codec_rejects_garbage () =
  check_bool "garbage" true (Result.is_error (Codec.record_of_row (Bytes.of_string "xx")))

(* ---- Table ---- *)

let test_table_append_get () =
  let t = Table.create ~name:"t" in
  let i0 = Table.append t (Bytes.of_string "a") in
  let i1 = Table.append t (Bytes.of_string "b") in
  check_int "seq 0" 0 i0;
  check_int "seq 1" 1 i1;
  Alcotest.(check (option bytes)) "get" (Some (Bytes.of_string "b")) (Table.get t 1);
  Alcotest.(check (option bytes)) "oob" None (Table.get t 2);
  check_int "length" 2 (Table.length t)

let test_table_growth () =
  let t = Table.create ~name:"t" in
  for i = 0 to 999 do
    ignore (Table.append t (Bytes.of_string (string_of_int i)))
  done;
  check_int "length" 1000 (Table.length t);
  Alcotest.(check (option bytes)) "late row" (Some (Bytes.of_string "999")) (Table.get t 999)

let test_table_rows_isolated () =
  let t = Table.create ~name:"t" in
  let row = Bytes.of_string "orig" in
  ignore (Table.append t row);
  Bytes.set row 0 'X';
  Alcotest.(check (option bytes)) "copied on append" (Some (Bytes.of_string "orig"))
    (Table.get t 0)

let test_table_overwrite_hook () =
  let t = Table.create ~name:"t" in
  ignore (Table.append t (Bytes.of_string "good"));
  Table.unsafe_overwrite t 0 (Bytes.of_string "evil");
  Alcotest.(check (option bytes)) "overwritten" (Some (Bytes.of_string "evil"))
    (Table.get t 0);
  Alcotest.check_raises "oob" (Invalid_argument "Table.unsafe_overwrite: out of range")
    (fun () -> Table.unsafe_overwrite t 5 Bytes.empty)

(* ---- Epoch ---- *)

let test_epoch_boundaries () =
  let p = Epoch.default in
  check_int "t=0" 0 (Epoch.of_ts p 0);
  check_int "t=4999" 0 (Epoch.of_ts p 4999);
  check_int "t=5000" 1 (Epoch.of_ts p 5000);
  check_int "start" 5000 (Epoch.start_ms p 1);
  check_int "end" 10000 (Epoch.end_ms p 1)

let test_epoch_validation () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Epoch.make: interval must be positive") (fun () ->
      ignore (Epoch.make ~interval_ms:0))

(* ---- Wal ---- *)

let with_tmp f =
  let path = Filename.temp_file "zkflow_wal" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_wal_roundtrip () =
  with_tmp (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w (Bytes.of_string "one");
      Wal.append w (Bytes.of_string "two");
      Wal.close w;
      match Wal.replay path with
      | Ok [ a; b ] ->
        Alcotest.(check bytes) "row 1" (Bytes.of_string "one") a;
        Alcotest.(check bytes) "row 2" (Bytes.of_string "two") b
      | Ok l -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length l))
      | Error e -> Alcotest.fail e)

let test_wal_missing_file () =
  match Wal.replay "/tmp/zkflow-definitely-not-here.log" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "expected empty replay"

let test_wal_torn_tail_dropped () =
  with_tmp (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w (Bytes.of_string "intact");
      Wal.close w;
      (* Simulate a crash mid-append: a header promising more bytes than exist. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00\x00\xFFpartial";
      close_out oc;
      match Wal.replay path with
      | Ok [ a ] -> Alcotest.(check bytes) "intact survives" (Bytes.of_string "intact") a
      | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length l))
      | Error e -> Alcotest.fail e)

let test_wal_torn_tree_snapshot_row () =
  (* Checkpoint rows carry a Merkle node snapshot; a crash mid-append
     of the next row must leave the persisted snapshot restorable. *)
  with_tmp (fun path ->
      Sys.remove path;
      let module Tree = Zkflow_merkle.Tree in
      let tree =
        Tree.of_leaves
          (Array.init 11 (fun i -> Bytes.of_string (Printf.sprintf "entry-%d" i)))
      in
      let w = Wal.open_log path in
      Wal.append w (Tree.to_snapshot tree);
      Wal.close w;
      (* torn second row: header promises more bytes than exist *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\x00\x00\x01\x00half-a-snapshot";
      close_out oc;
      match Wal.replay path with
      | Ok [ row ] -> (
        match Tree.of_snapshot row with
        | Ok tree' ->
          check_int "size restored" (Tree.size tree) (Tree.size tree');
          check_bool "root restored" true
            (Zkflow_hash.Digest32.equal (Tree.root tree) (Tree.root tree'));
          (* a snapshot torn *inside* the row payload must be refused
             rather than silently adopted as a smaller tree *)
          check_bool "truncated payload rejected" true
            (Result.is_error
               (Tree.of_snapshot (Bytes.sub row 0 (Bytes.length row - 7))))
        | Error e -> Alcotest.fail e)
      | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length l))
      | Error e -> Alcotest.fail e)

(* A log's row boundaries: byte offsets at which a replay prefix is
   whole. Truncating anywhere else must yield exactly the rows that
   fit entirely before the cut. *)
let intact_prefix rows cut =
  let rec go acc off = function
    | [] -> List.rev acc
    | r :: rest ->
      let off' = off + 4 + Bytes.length r in
      if off' <= cut then go (r :: acc) off' rest else List.rev acc
  in
  go [] 0 rows

let framed_prefix rows cut =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      let n = Bytes.length r in
      Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
      Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (n land 0xff));
      Buffer.add_bytes buf r)
    rows;
  String.sub (Buffer.contents buf) 0 cut

let replay_equals path expect =
  match Wal.replay path with
  | Error e -> Alcotest.fail e
  | Ok got ->
    List.length got = List.length expect
    && List.for_all2 Bytes.equal got expect

(* Satellite (c): crash anywhere — truncate a valid log at EVERY byte
   offset — and replay returns exactly the intact prefix, never an
   error, never a phantom row. *)
let test_wal_truncate_every_offset () =
  with_tmp (fun path ->
      let rows =
        [ Bytes.empty; Bytes.of_string "a"; Bytes.of_string "row-two";
          Bytes.make 300 'x'; Bytes.of_string "tail" ]
      in
      let total = List.fold_left (fun a r -> a + 4 + Bytes.length r) 0 rows in
      for cut = 0 to total do
        let oc = open_out_bin path in
        output_string oc (framed_prefix rows cut);
        close_out oc;
        Alcotest.(check bool)
          (Printf.sprintf "cut at %d" cut)
          true
          (replay_equals path (intact_prefix rows cut))
      done)

let qcheck_wal_torn_tail =
  QCheck.Test.make ~count:100 ~name:"torn tail keeps exactly the intact prefix"
    QCheck.(
      pair
        (small_list (string_of_size Gen.(int_bound 40)))
        (float_bound_exclusive 1.0))
    (fun (strs, frac) ->
      let rows = List.map Bytes.of_string strs in
      let total = List.fold_left (fun a r -> a + 4 + Bytes.length r) 0 rows in
      let cut = int_of_float (frac *. float_of_int (total + 1)) in
      let path = Filename.temp_file "zkflow_wal_qc" ".log" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin path in
          output_string oc (framed_prefix rows cut);
          close_out oc;
          replay_equals path (intact_prefix rows cut)))

let test_wal_abandon_loses_unsynced_tail () =
  with_tmp (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      Wal.append w (Bytes.of_string "durable");
      Wal.sync w;
      Wal.append w (Bytes.of_string "in flight");
      (* the process dies: buffered rows never reach the disk *)
      Wal.abandon w;
      match Wal.replay path with
      | Ok [ a ] -> Alcotest.(check bytes) "synced row survives" (Bytes.of_string "durable") a
      | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length l))
      | Error e -> Alcotest.fail e)

let test_wal_rewrite_compacts () =
  with_tmp (fun path ->
      Sys.remove path;
      let w = Wal.open_log path in
      List.iter (Wal.append w) [ Bytes.of_string "keep"; Bytes.of_string "drop" ];
      Wal.close w;
      Wal.rewrite path [ Bytes.of_string "keep" ];
      (match Wal.replay path with
       | Ok [ a ] -> Alcotest.(check bytes) "compacted" (Bytes.of_string "keep") a
       | _ -> Alcotest.fail "expected exactly the kept row");
      check_bool "no temp residue" false (Sys.file_exists (path ^ ".tmp")))

let test_write_file_atomic () =
  with_tmp (fun path ->
      Wal.write_file_atomic path (Bytes.of_string "first");
      Wal.write_file_atomic path (Bytes.of_string "second");
      let ic = open_in_bin path in
      let got = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "last write wins" "second" got;
      check_bool "no temp residue" false (Sys.file_exists (path ^ ".tmp")))

(* ---- Db ---- *)

let test_db_window_partitioning () =
  let db = Db.create ~epoch:Epoch.default () in
  let records = sample_records ~router_id:1 3 in
  (* place records in different epochs via last_ts *)
  let stamped =
    Array.mapi
      (fun i r ->
        Record.make ~key:r.Record.key ~first_ts:0 ~last_ts:(i * 5000) ~router_id:1
          r.Record.metrics)
      records
  in
  Array.iter (Db.insert db) stamped;
  check_int "epoch 0" 1 (Array.length (Db.window db ~router_id:1 ~epoch:0));
  check_int "epoch 1" 1 (Array.length (Db.window db ~router_id:1 ~epoch:1));
  check_int "epoch 2" 1 (Array.length (Db.window db ~router_id:1 ~epoch:2));
  check_int "missing window" 0 (Array.length (Db.window db ~router_id:9 ~epoch:0));
  Alcotest.(check (list int)) "routers" [ 1 ] (Db.routers db);
  Alcotest.(check (list int)) "epochs" [ 0; 1; 2 ] (Db.epochs db);
  check_int "total" 3 (Db.record_count db)

let test_db_insertion_order_preserved () =
  let db = Db.create ~epoch:Epoch.default () in
  let records = sample_records ~router_id:0 10 in
  Array.iter (Db.insert db) records;
  let w = Db.window db ~router_id:0 ~epoch:0 in
  check_int "count" 10 (Array.length w);
  Array.iteri
    (fun i r ->
      check_bool "order" true
        (Zkflow_netflow.Flowkey.equal r.Record.key records.(i).Record.key))
    w

let test_db_tamper () =
  let db = Db.create ~epoch:Epoch.default () in
  Array.iter (Db.insert db) (sample_records ~router_id:0 5);
  let before = (Db.window db ~router_id:0 ~epoch:0).(2).Record.metrics.Record.losses in
  (match
     Db.tamper db ~router_id:0 ~epoch:0 ~pos:2 (fun r ->
         Record.make ~key:r.Record.key ~router_id:0
           { r.Record.metrics with Record.losses = before + 100 })
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_int "mutated" (before + 100)
    (Db.window db ~router_id:0 ~epoch:0).(2).Record.metrics.Record.losses;
  check_bool "bad window" true
    (Result.is_error (Db.tamper db ~router_id:5 ~epoch:0 ~pos:0 Fun.id));
  check_bool "bad pos" true
    (Result.is_error (Db.tamper db ~router_id:0 ~epoch:0 ~pos:99 Fun.id))

let test_db_wal_recovery () =
  with_tmp (fun path ->
      Sys.remove path;
      let db = Db.create ~wal_path:path ~epoch:Epoch.default () in
      let records = sample_records ~router_id:2 20 in
      Array.iter (Db.insert db) records;
      Db.sync db;
      match Db.recover ~wal_path:path ~epoch:Epoch.default with
      | Error e -> Alcotest.fail e
      | Ok db' ->
        check_int "recovered count" 20 (Db.record_count db');
        let w = Db.window db' ~router_id:2 ~epoch:0 in
        check_bool "first key survives" true
          (Zkflow_netflow.Flowkey.equal w.(0).Record.key records.(0).Record.key))

let () =
  Alcotest.run "zkflow_store"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        ] );
      ( "table",
        [
          Alcotest.test_case "append/get" `Quick test_table_append_get;
          Alcotest.test_case "growth" `Quick test_table_growth;
          Alcotest.test_case "rows isolated" `Quick test_table_rows_isolated;
          Alcotest.test_case "overwrite hook" `Quick test_table_overwrite_hook;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "boundaries" `Quick test_epoch_boundaries;
          Alcotest.test_case "validation" `Quick test_epoch_validation;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "missing file" `Quick test_wal_missing_file;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail_dropped;
          Alcotest.test_case "truncate at every offset" `Quick
            test_wal_truncate_every_offset;
          QCheck_alcotest.to_alcotest qcheck_wal_torn_tail;
          Alcotest.test_case "abandon loses unsynced tail" `Quick
            test_wal_abandon_loses_unsynced_tail;
          Alcotest.test_case "rewrite compacts" `Quick test_wal_rewrite_compacts;
          Alcotest.test_case "torn tree snapshot row" `Quick test_wal_torn_tree_snapshot_row;
          Alcotest.test_case "write_file_atomic" `Quick test_write_file_atomic;
        ] );
      ( "db",
        [
          Alcotest.test_case "window partitioning" `Quick test_db_window_partitioning;
          Alcotest.test_case "insertion order" `Quick test_db_insertion_order_preserved;
          Alcotest.test_case "tamper hook" `Quick test_db_tamper;
          Alcotest.test_case "wal recovery" `Quick test_db_wal_recovery;
        ] );
    ]
