(* The resident daemon: bounded ingest with reject-newest shedding and
   at-most-once windows, watermark-driven deterministic rounds,
   crash/kill + supervised restart with bit-identical roots, the
   circuit breaker flipping publication failures into degraded rounds
   + heal, late-arrival gap journalling, graceful drain (including a
   crash mid-drain), memoized query proofs, and the /healthz
   verdict. *)

module D = Zkflow_hash.Digest32
module Record = Zkflow_netflow.Record
module Gen = Zkflow_netflow.Gen
module Db = Zkflow_store.Db
module Board = Zkflow_commitlog.Board
module Fault = Zkflow_fault.Fault
module Rng = Zkflow_util.Rng
module Obs = Zkflow_obs.Obs
module Event = Zkflow_obs.Event
module Httpd = Zkflow_obs.Httpd
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let params = Zkflow_zkproof.Params.make ~queries:8

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_tmp f =
  let path = Filename.temp_file "zkflow_daemon" ".wal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () ->
      Sys.remove path;
      f path)

let with_plan plan f =
  Fault.install plan;
  Fun.protect ~finally:Fault.clear f

let plan ?(seed = 0) ?(name = "test") faults = { Fault.seed; name; faults }

(* Deterministic daemon config: no real sleeping in retry backoff. *)
let cfg =
  {
    Daemon.default_config with
    retry_sleep = (fun (_ : float) -> ());
    queue_capacity = 16;
  }

(* One router's window export for an epoch: seeded records re-stamped
   into the epoch's 5-second window, exactly like a router batching
   its flow log. *)
let window_records ~router_id ~epoch ~count ~seed =
  let records =
    Gen.records
      (Rng.create (Int64.of_int (seed + (1000 * router_id) + epoch)))
      Gen.default_profile ~router_id ~count
  in
  Array.to_list records
  |> List.map (fun rc ->
         Record.make ~key:rc.Record.key ~first_ts:(epoch * 5000)
           ~last_ts:((epoch * 5000) + 100) ~router_id rc.Record.metrics)

let fresh_daemon ?(config = cfg) ?paused ~ckpt () =
  let db = Db.create ~epoch:Zkflow_store.Epoch.default () in
  let board = Board.create () in
  match
    Daemon.create ~config ~proof_params:params ?paused ~db ~board
      ~ckpt_path:ckpt ()
  with
  | Error e -> Alcotest.fail ("daemon create: " ^ e)
  | Ok (d, restored) -> (d, db, board, restored)

let covered_rounds service =
  List.map2
    (fun (c : Prover_service.coverage) (r : Aggregate.round) ->
      {
        Verifier_client.epoch = c.Prover_service.epoch;
        routers = c.Prover_service.routers;
        degraded = c.Prover_service.degraded;
        heal = c.Prover_service.heal;
        receipt = r.Aggregate.receipt;
      })
    (Prover_service.coverage service)
    (Prover_service.rounds service)

let check_verified ?(complete = true) d board =
  let service = Daemon.service d in
  match
    Verifier_client.verify_coverage ~board
      ~gaps:(Prover_service.open_gaps service)
      (covered_rounds service)
  with
  | Error e -> Alcotest.fail ("coverage rejected: " ^ e)
  | Ok report ->
    check_bool "coverage complete" complete report.Verifier_client.complete

let submit_ok d ~router_id ~epoch records =
  match Daemon.submit d ~router_id ~epoch records with
  | Daemon.Accepted -> ()
  | _ -> Alcotest.fail "submit not accepted"

let settle d =
  match Daemon.await_idle d with
  | `Idle -> ()
  | `Crashed site -> Alcotest.fail ("unexpected crash at " ^ site)

(* A fixed two-router, two-epoch submission schedule; returns the
   final root. *)
let drive_schedule d =
  for epoch = 0 to 1 do
    for router_id = 0 to 1 do
      submit_ok d ~router_id ~epoch
        (window_records ~router_id ~epoch ~count:3 ~seed:7)
    done;
    Daemon.advance d ~epoch;
    settle d
  done;
  (match Daemon.drain d with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("drain: " ^ e));
  Daemon.root_hex d

(* ---- ingest → rounds → drain, query memo ---- *)

let test_ingest_prove_drain () =
  with_tmp (fun ckpt ->
      let d, _db, board, restored = fresh_daemon ~ckpt () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          check_int "fresh start" 0 restored;
          let root = drive_schedule d in
          check_bool "non-empty root" true (root <> D.to_hex D.zero);
          let c = Daemon.counters d in
          check_int "accepted" 4 c.Daemon.accepted;
          check_int "shed" 0 c.Daemon.shed;
          check_int "rounds" 2 c.Daemon.rounds;
          check_bool "bounded depth" true
            (c.Daemon.max_depth <= cfg.Daemon.queue_capacity);
          check_verified d board;
          (* intake is closed after drain *)
          check_bool "intake closed" true
            (Daemon.submit d ~router_id:0 ~epoch:9
               (window_records ~router_id:0 ~epoch:9 ~count:1 ~seed:7)
            = Daemon.Closed);
          (* query memo: identical query is a cache hit with the same
             proof *)
          let q =
            {
              Guests.predicate = Guests.match_any;
              op = Guests.Sum;
              metric = Guests.Packets;
            }
          in
          (match (Daemon.query d q, Daemon.query d q) with
          | Ok (r1, false), Ok (r2, true) ->
            check_int "same result" r1.Query.journal.Guests.result
              r2.Query.journal.Guests.result
          | Ok (_, c1), Ok (_, c2) ->
            Alcotest.failf "memo flags: first cached=%b second cached=%b" c1 c2
          | Error e, _ | _, Error e -> Alcotest.fail e);
          (* multi-flow memo *)
          let clog = Prover_service.clog (Daemon.service d) in
          let entries = Clog.entries clog in
          let keys =
            [ entries.(0).Clog.key; entries.(1).Clog.key ]
          in
          (match
             ( Daemon.query_flows d ~metric:Guests.Bytes keys,
               Daemon.query_flows d ~metric:Guests.Bytes keys )
           with
          | Ok (f1, false), Ok (f2, true) ->
            check_int "same total" f1.Query.total f2.Query.total
          | Ok _, Ok _ -> Alcotest.fail "flows memo flags wrong"
          | Error e, _ | _, Error e -> Alcotest.fail e);
          let c = Daemon.counters d in
          check_int "memo hits" 2 c.Daemon.memo_hits;
          check_int "memo misses" 2 c.Daemon.memo_misses))

(* ---- reject-newest shedding, at-most-once windows ---- *)

let test_shed_and_duplicate () =
  with_tmp (fun ckpt ->
      let config = { cfg with Daemon.queue_capacity = 2 } in
      let d, _db, board, _ = fresh_daemon ~config ~paused:true ~ckpt () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          let w r e = window_records ~router_id:r ~epoch:e ~count:2 ~seed:11 in
          Obs.with_enabled (fun () ->
              check_bool "first accepted" true
                (Daemon.submit d ~router_id:0 ~epoch:0 (w 0 0) = Daemon.Accepted);
              check_bool "second accepted" true
                (Daemon.submit d ~router_id:1 ~epoch:0 (w 1 0) = Daemon.Accepted);
              (* queue full: newest is rejected *)
              check_bool "third shed" true
                (Daemon.submit d ~router_id:0 ~epoch:1 (w 0 1) = Daemon.Shed);
              (* an accepted window can never be double-ingested *)
              check_bool "duplicate rejected" true
                (Daemon.submit d ~router_id:0 ~epoch:0 (w 0 0) = Daemon.Duplicate);
              let shed_events =
                List.filter
                  (fun (e : Event.t) -> e.kind = "daemon.ingest.shed")
                  (Event.events ())
              in
              check_int "one shed event" 1 (List.length shed_events));
          let c = Daemon.counters d in
          check_int "accepted" 2 c.Daemon.accepted;
          check_int "shed" 1 c.Daemon.shed;
          check_int "duplicates" 1 c.Daemon.duplicates;
          check_bool "depth bounded by capacity" true (c.Daemon.max_depth <= 2);
          (* release the worker; the shed window can be resubmitted *)
          Daemon.unpause d;
          Daemon.advance d ~epoch:0;
          settle d;
          check_bool "resubmission accepted" true
            (Daemon.submit d ~router_id:0 ~epoch:1 (w 0 1) = Daemon.Accepted);
          Daemon.advance d ~epoch:1;
          (match Daemon.drain d with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("drain: " ^ e));
          let c = Daemon.counters d in
          check_int "both epochs proved" 2 c.Daemon.rounds;
          check_verified d board))

(* ---- crash → supervised restart → bit-identical root ---- *)

let test_crash_restart_bit_identical () =
  with_tmp (fun ckpt_twin ->
      with_tmp (fun ckpt ->
          (* the uninterrupted twin *)
          let twin, _, _, _ = fresh_daemon ~ckpt:ckpt_twin () in
          let twin_root =
            Fun.protect
              ~finally:(fun () -> Daemon.stop twin)
              (fun () -> drive_schedule twin)
          in
          (* same schedule, killed by the first round's checkpoint *)
          let d, _db, board, _ = fresh_daemon ~ckpt () in
          Fun.protect
            ~finally:(fun () -> Daemon.stop d)
            (fun () ->
              with_plan
                (plan [ Fault.Crash_at { site = "agg.pre_checkpoint"; hits = 1 } ])
                (fun () ->
                  for router_id = 0 to 1 do
                    submit_ok d ~router_id ~epoch:0
                      (window_records ~router_id ~epoch:0 ~count:3 ~seed:7)
                  done;
                  Daemon.advance d ~epoch:0;
                  (match Daemon.await_idle d with
                  | `Crashed "agg.pre_checkpoint" -> ()
                  | `Crashed site -> Alcotest.fail ("wrong site: " ^ site)
                  | `Idle -> Alcotest.fail "expected a crash");
                  (* while down: unhealthy, intake closed *)
                  let h = Daemon.health d in
                  check_bool "unhealthy while crashed" false h.Daemon.healthy;
                  check_bool "submit while down" true
                    (Daemon.submit d ~router_id:0 ~epoch:1
                       (window_records ~router_id:0 ~epoch:1 ~count:3 ~seed:7)
                    = Daemon.Closed);
                  match Daemon.restart d with
                  | Error e -> Alcotest.fail ("restart: " ^ e)
                  | Ok restored ->
                    (* the crash hit before the first synced row *)
                    check_int "nothing restored" 0 restored;
                    settle d);
              (* finish the schedule clean *)
              for router_id = 0 to 1 do
                submit_ok d ~router_id ~epoch:1
                  (window_records ~router_id ~epoch:1 ~count:3 ~seed:7)
              done;
              Daemon.advance d ~epoch:1;
              (match Daemon.drain d with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("drain: " ^ e));
              check_string "root bit-identical to twin" twin_root
                (Daemon.root_hex d);
              check_verified d board)))

(* ---- kill -9 mid-drain, restart, drain completes ---- *)

let test_kill_during_drain () =
  with_tmp (fun ckpt_twin ->
      with_tmp (fun ckpt ->
          let twin, _, _, _ = fresh_daemon ~ckpt:ckpt_twin () in
          let twin_root =
            Fun.protect
              ~finally:(fun () -> Daemon.stop twin)
              (fun () ->
                for router_id = 0 to 1 do
                  submit_ok twin ~router_id ~epoch:0
                    (window_records ~router_id ~epoch:0 ~count:3 ~seed:3)
                done;
                ignore (Daemon.drain twin);
                Daemon.root_hex twin)
          in
          let d, _db, board, _ = fresh_daemon ~ckpt () in
          Fun.protect
            ~finally:(fun () -> Daemon.stop d)
            (fun () ->
              (* records queued but watermark never advanced: the round
                 only happens inside the drain *)
              for router_id = 0 to 1 do
                submit_ok d ~router_id ~epoch:0
                  (window_records ~router_id ~epoch:0 ~count:3 ~seed:3)
              done;
              settle d;
              with_plan
                (plan [ Fault.Crash_at { site = "agg.pre_prove"; hits = 1 } ])
                (fun () ->
                  match Daemon.drain d with
                  | Ok () -> Alcotest.fail "drain should crash"
                  | Error _ ->
                    check_bool "crashed" true (Daemon.crashed d <> None));
              (match Daemon.restart d with
              | Error e -> Alcotest.fail ("restart: " ^ e)
              | Ok _ -> ());
              (match Daemon.drain d with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("second drain: " ^ e));
              check_string "root matches twin" twin_root (Daemon.root_hex d);
              check_verified d board)))

(* ---- circuit breaker: publish failures degrade, then heal ---- *)

let test_breaker_degrades_then_heals () =
  with_tmp (fun ckpt ->
      let config =
        {
          cfg with
          Daemon.retry_attempts = 2;
          breaker_threshold = 1;
          breaker_cooldown = 1;
        }
      in
      let d, _db, board, _ = fresh_daemon ~config ~ckpt () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          with_plan
            (plan [ Fault.Flaky { site = "daemon.publish"; failures = 100 } ])
            (fun () ->
              submit_ok d ~router_id:0 ~epoch:0
                (window_records ~router_id:0 ~epoch:0 ~count:3 ~seed:5);
              Daemon.advance d ~epoch:0;
              settle d;
              (* publication exhausted its retries: breaker open, the
                 epoch went down the degraded path as an open gap *)
              let c = Daemon.counters d in
              check_bool "breaker opened" true (c.Daemon.breaker_opens >= 1);
              Alcotest.(check (list (pair int int)))
                "gap journalled" [ (0, 0) ]
                (Prover_service.open_gaps (Daemon.service d)));
          (* the edge recovers: half-open probe succeeds, heal folds
             the gap in *)
          Daemon.advance d ~epoch:0;
          settle d;
          let c = Daemon.counters d in
          check_string "breaker closed again" "closed" c.Daemon.breaker;
          check_int "one heal round" 1 c.Daemon.heal_rounds;
          Alcotest.(check (list (pair int int)))
            "no open gaps" []
            (Prover_service.open_gaps (Daemon.service d));
          check_verified d board))

(* ---- late-arriving export: note_gap + heal (publish:false) ---- *)

let test_late_arrival_heals () =
  with_tmp (fun ckpt ->
      let config = { cfg with Daemon.publish = false } in
      let d, db, board, _ = fresh_daemon ~config ~ckpt () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          submit_ok d ~router_id:0 ~epoch:0
            (window_records ~router_id:0 ~epoch:0 ~count:3 ~seed:9);
          settle d;
          (* the harness plays router: publish r0's window, round runs *)
          (match
             Board.publish board (Db.window db ~router_id:0 ~epoch:0)
               ~router_id:0 ~epoch:0
           with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e);
          Daemon.advance d ~epoch:0;
          settle d;
          check_int "round ran" 1 (Daemon.counters d).Daemon.rounds;
          (* router 1's export arrives after the round: journalled as a
             gap, not silently absorbed *)
          submit_ok d ~router_id:1 ~epoch:0
            (window_records ~router_id:1 ~epoch:0 ~count:3 ~seed:9);
          settle d;
          Alcotest.(check (list (pair int int)))
            "late export journalled" [ (1, 0) ]
            (Prover_service.open_gaps (Daemon.service d));
          (* it publishes; a poke triggers the heal *)
          (match
             Board.publish board (Db.window db ~router_id:1 ~epoch:0)
               ~router_id:1 ~epoch:0
           with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e);
          Daemon.advance d ~epoch:0;
          settle d;
          check_int "healed" 1 (Daemon.counters d).Daemon.heal_rounds;
          Alcotest.(check (list (pair int int)))
            "gap closed" []
            (Prover_service.open_gaps (Daemon.service d));
          check_verified d board))

(* ---- stop + fresh create resumes from the checkpoint WAL ---- *)

let test_resume_across_restart () =
  with_tmp (fun ckpt ->
      let db = Db.create ~epoch:Zkflow_store.Epoch.default () in
      let board = Board.create () in
      let mk () =
        match
          Daemon.create ~config:cfg ~proof_params:params ~db ~board
            ~ckpt_path:ckpt ()
        with
        | Error e -> Alcotest.fail ("daemon create: " ^ e)
        | Ok (d, restored) -> (d, restored)
      in
      let d, _ = mk () in
      let root =
        Fun.protect
          ~finally:(fun () -> Daemon.stop d)
          (fun () -> drive_schedule d)
      in
      (* a new process over the same state: rounds come back from the
         WAL, nothing is re-proved, the root is bit-identical *)
      let d2, restored = mk () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d2)
        (fun () ->
          check_int "both rounds restored" 2 restored;
          (match Daemon.drain d2 with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("drain: " ^ e));
          check_int "nothing re-proved" 0 (Daemon.counters d2).Daemon.rounds;
          check_string "root preserved" root (Daemon.root_hex d2)))

(* ---- the HTTP plane over a live daemon ---- *)

let test_handler_endpoints () =
  with_tmp (fun ckpt ->
      let d, _db, _board, _ = fresh_daemon ~ckpt () in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          ignore (drive_schedule d);
          let h = Daemon.handler d in
          let get target = Watch.probe h target in
          let status = get "/status" in
          check_int "status 200" 200 status.Httpd.status;
          check_bool "status has root" true
            (contains ~needle:(Daemon.root_hex d)
               status.Httpd.body);
          let healthz = get "/healthz" in
          check_int "healthz 200 when healthy" 200 healthz.Httpd.status;
          let q = get "/query?op=sum&metric=packets" in
          check_int "query 200" 200 q.Httpd.status;
          check_bool "query result present" true
            (contains ~needle:{|"result":|} q.Httpd.body);
          let q2 = get "/query?op=sum&metric=packets" in
          check_bool "second query cached" true
            (contains ~needle:{|"cached":true|} q2.Httpd.body);
          let f = get "/flows?metric=bytes&first=2" in
          check_int "flows 200" 200 f.Httpd.status;
          check_bool "flows rows present" true
            (contains ~needle:{|"rows":|} f.Httpd.body);
          let bad = get "/query?src=notanip" in
          check_int "bad query 400" 400 bad.Httpd.status;
          let slo = get "/slo" in
          check_int "slo 200" 200 slo.Httpd.status))

let () =
  Alcotest.run "zkflow_daemon"
    [
      ( "daemon",
        [
          Alcotest.test_case "ingest, prove, drain, query memo" `Quick
            test_ingest_prove_drain;
          Alcotest.test_case "reject-newest shed + duplicate windows" `Quick
            test_shed_and_duplicate;
          Alcotest.test_case "crash, restart, bit-identical root" `Quick
            test_crash_restart_bit_identical;
          Alcotest.test_case "kill -9 mid-drain" `Quick test_kill_during_drain;
          Alcotest.test_case "breaker: degrade then heal" `Quick
            test_breaker_degrades_then_heals;
          Alcotest.test_case "late export: note_gap + heal" `Quick
            test_late_arrival_heals;
          Alcotest.test_case "resume across process restart" `Quick
            test_resume_across_restart;
          Alcotest.test_case "HTTP plane endpoints" `Quick
            test_handler_endpoints;
        ] );
    ]
