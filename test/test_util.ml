open Zkflow_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Bytesx ---- *)

let test_u32_roundtrip () =
  let b = Bytes.create 8 in
  Bytesx.set_u32_be b 0 0xdeadbeefl;
  Bytesx.set_u32_be b 4 1l;
  Alcotest.(check int32) "word 0" 0xdeadbeefl (Bytesx.get_u32_be b 0);
  Alcotest.(check int32) "word 1" 1l (Bytesx.get_u32_be b 4)

let test_u64_roundtrip () =
  let b = Bytes.create 8 in
  Bytesx.set_u64_be b 0 0x0123456789abcdefL;
  Alcotest.(check int64) "u64" 0x0123456789abcdefL (Bytesx.get_u64_be b 0)

let test_u16_roundtrip () =
  let b = Bytes.create 2 in
  Bytesx.set_u16_be b 0 0xbeef;
  check_int "u16" 0xbeef (Bytesx.get_u16_be b 0)

let test_be_byte_order () =
  let b = Bytes.create 4 in
  Bytesx.set_u32_be b 0 0x01020304l;
  check_int "msb first" 1 (Char.code (Bytes.get b 0));
  check_int "lsb last" 4 (Char.code (Bytes.get b 3))

let test_concat () =
  let got = Bytesx.concat [ Bytes.of_string "ab"; Bytes.empty; Bytes.of_string "c" ] in
  check_string "concat" "abc" (Bytes.to_string got)

let test_ct_equal () =
  let a = Bytes.of_string "secret" and b = Bytes.of_string "secret" in
  check_bool "equal" true (Bytesx.equal_constant_time a b);
  check_bool "diff content" false
    (Bytesx.equal_constant_time a (Bytes.of_string "secreT"));
  check_bool "diff length" false
    (Bytesx.equal_constant_time a (Bytes.of_string "secret!"))

let test_xor () =
  let a = Bytes.of_string "\x0f\xf0" and b = Bytes.of_string "\xff\xff" in
  check_string "xor" "\xf0\x0f" (Bytes.to_string (Bytesx.xor a b));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Bytesx.xor: length mismatch") (fun () ->
      ignore (Bytesx.xor a (Bytes.of_string "x")))

let test_int32_list_roundtrip () =
  let ws = [ 0l; 1l; -1l; 0x7fffffffl; Int32.min_int ] in
  Alcotest.(check (list int32)) "roundtrip" ws
    (Bytesx.to_int32_list (Bytesx.of_int32_list ws))

(* ---- Hexcodec ---- *)

let test_hex_encode () =
  check_string "encode" "00ff10" (Hexcodec.encode (Bytes.of_string "\x00\xff\x10"))

let test_hex_decode () =
  (match Hexcodec.decode "00ff10" with
   | Ok b -> check_string "decode" "\x00\xff\x10" (Bytes.to_string b)
   | Error e -> Alcotest.fail e);
  (match Hexcodec.decode "ABCD" with
   | Ok b -> check_string "uppercase" "\xab\xcd" (Bytes.to_string b)
   | Error e -> Alcotest.fail e)

let test_hex_reject () =
  check_bool "odd length" true (Result.is_error (Hexcodec.decode "abc"));
  check_bool "bad char" true (Result.is_error (Hexcodec.decode "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Hexcodec.decode_exn (Hexcodec.encode b)))

(* ---- Varint ---- *)

let varint_roundtrip v =
  let buf = Buffer.create 10 in
  Varint.write buf v;
  let b = Buffer.to_bytes buf in
  let got, off = Varint.read b 0 in
  got = v && off = Bytes.length b && Varint.size v = Bytes.length b

let test_varint_known () =
  let encode v =
    let buf = Buffer.create 10 in
    Varint.write buf v;
    Hexcodec.encode (Buffer.to_bytes buf)
  in
  check_string "0" "00" (encode 0);
  check_string "127" "7f" (encode 127);
  check_string "128" "8001" (encode 128);
  check_string "300" "ac02" (encode 300)

let test_varint_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Varint.write: negative")
    (fun () -> Varint.write (Buffer.create 1) (-1))

let test_varint_truncated () =
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.read: truncated")
    (fun () -> ignore (Varint.read (Bytes.of_string "\x80") 0))

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(map abs int)
    varint_roundtrip

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let base = Rng.create 7L in
  let child = Rng.split base in
  check_bool "distinct streams"
    (Rng.next_int64 base <> Rng.next_int64 child)
    true

let test_rng_int_bounds () =
  let r = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 2L in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.5 in
    check_bool "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_zipf_skew () =
  (* Rank 1 must dominate for s = 1.2: basic sanity on the CDF. *)
  let r = Rng.create 3L in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Rng.zipf r ~n:100 ~s:1.2 in
    counts.(k - 1) <- counts.(k - 1) + 1
  done;
  check_bool "rank1 > rank2" true (counts.(0) > counts.(1));
  check_bool "rank1 > 10%" true (counts.(0) > 2000);
  check_bool "all ranks valid" true (Array.for_all (fun c -> c >= 0) counts)

let test_rng_exponential_mean () =
  let r = Rng.create 4L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 2.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_rng_bytes_len () =
  let r = Rng.create 5L in
  check_int "len 0" 0 (Bytes.length (Rng.bytes r 0));
  check_int "len 7" 7 (Bytes.length (Rng.bytes r 7));
  check_int "len 32" 32 (Bytes.length (Rng.bytes r 32))

let test_rng_shuffle_permutation () =
  let r = Rng.create 6L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

(* ---- Sorted ---- *)

let cmp = Int.compare

let test_sorted_is_sorted () =
  check_bool "empty" true (Sorted.is_sorted ~cmp [||]);
  check_bool "single" true (Sorted.is_sorted ~cmp [| 3 |]);
  check_bool "yes" true (Sorted.is_sorted ~cmp [| 1; 2; 2; 5 |]);
  check_bool "no" false (Sorted.is_sorted ~cmp [| 2; 1 |])

let test_sorted_bsearch () =
  let a = [| 1; 3; 5; 7; 9 |] in
  Alcotest.(check (option int)) "hit" (Some 2) (Sorted.bsearch ~cmp a 5);
  Alcotest.(check (option int)) "miss" None (Sorted.bsearch ~cmp a 4);
  Alcotest.(check (option int)) "first" (Some 0) (Sorted.bsearch ~cmp a 1);
  Alcotest.(check (option int)) "last" (Some 4) (Sorted.bsearch ~cmp a 9)

let test_sorted_lower_bound () =
  let a = [| 10; 20; 30 |] in
  check_int "below" 0 (Sorted.lower_bound ~cmp a 5);
  check_int "exact" 1 (Sorted.lower_bound ~cmp a 20);
  check_int "between" 2 (Sorted.lower_bound ~cmp a 25);
  check_int "above" 3 (Sorted.lower_bound ~cmp a 99)

let test_merge_uniq () =
  let got =
    Sorted.merge_uniq ~cmp ~combine:(fun a b -> a + b) [| 1; 3; 5 |] [| 2; 3; 6 |]
  in
  Alcotest.(check (array int)) "merged" [| 1; 2; 6; 5; 6 |] got

let prop_merge_sorted =
  QCheck.Test.make ~name:"merge_uniq keeps sortedness" ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let dedup l = List.sort_uniq compare l |> Array.of_list in
      let merged =
        Sorted.merge_uniq ~cmp ~combine:(fun a _ -> a) (dedup xs) (dedup ys)
      in
      Sorted.is_sorted ~cmp merged)

(* ---- Wire ---- *)

let test_wire_roundtrip () =
  let w = Wire.writer () in
  Wire.w_int w 42;
  Wire.w_bool w true;
  Wire.w_bytes w (Bytes.of_string "hello");
  Wire.w_string w "world";
  Wire.w_list w (Wire.w_int w) [ 1; 2; 3 ];
  Wire.w_array w (Wire.w_int w) [| 7; 8 |];
  let b = Wire.contents w in
  match
    Wire.decode b (fun r ->
        let i = Wire.r_int r in
        let flag = Wire.r_bool r in
        let by = Wire.r_bytes r in
        let s = Wire.r_string r in
        let l = Wire.r_list r (fun () -> Wire.r_int r) in
        let a = Wire.r_array r (fun () -> Wire.r_int r) in
        (i, flag, by, s, l, a))
  with
  | Error e -> Alcotest.fail e
  | Ok (i, flag, by, s, l, a) ->
    check_int "int" 42 i;
    check_bool "bool" true flag;
    check_string "bytes" "hello" (Bytes.to_string by);
    check_string "string" "world" s;
    Alcotest.(check (list int)) "list" [ 1; 2; 3 ] l;
    Alcotest.(check (array int)) "array" [| 7; 8 |] a

let test_wire_rejects_malformed () =
  let enc f =
    let w = Wire.writer () in
    f w;
    Wire.contents w
  in
  (* trailing bytes *)
  let b = enc (fun w -> Wire.w_int w 1; Wire.w_int w 2) in
  check_bool "trailing" true
    (Result.is_error (Wire.decode b (fun r -> Wire.r_int r)));
  (* truncated bytes payload *)
  let b = enc (fun w -> Wire.w_bytes w (Bytes.make 40 'x')) in
  let cut = Bytes.sub b 0 10 in
  check_bool "truncated" true
    (Result.is_error (Wire.decode cut (fun r -> Wire.r_bytes r)));
  (* bool out of range *)
  let b = enc (fun w -> Wire.w_int w 7) in
  check_bool "bad bool" true (Result.is_error (Wire.decode b (fun r -> Wire.r_bool r)));
  (* implausible count *)
  let b = enc (fun w -> Wire.w_int w 1_000_000) in
  check_bool "huge list" true
    (Result.is_error (Wire.decode b (fun r -> Wire.r_list r (fun () -> Wire.r_int r))))

let prop_wire_fuzz_no_crash =
  QCheck.Test.make ~name:"wire decode never raises" ~count:300
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s ->
      match
        Wire.decode (Bytes.of_string s) (fun r ->
            let _ = Wire.r_int r in
            let _ = Wire.r_bytes r in
            Wire.r_list r (fun () -> Wire.r_int r))
      with
      | Ok _ | Error _ -> true)

(* ---- Jsonx ---- *)

let test_jsonx_escape_specials () =
  check_string "quote+backslash" "a\\\"b\\\\c" (Jsonx.escape "a\"b\\c");
  check_string "newline tab" "\\n\\t\\r" (Jsonx.escape "\n\t\r");
  check_string "control" "\\u0001" (Jsonx.escape "\x01");
  check_string "quoted" "\"x\"" (Jsonx.quote "x")

let test_jsonx_parse_basics () =
  let ok s v =
    match Jsonx.parse s with
    | Ok got -> check_bool ("parse " ^ s) true (got = v)
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ok "null" Jsonx.Null;
  ok " [1, 2.5, -3e2] " (Jsonx.Arr [ Jsonx.Num 1.; Jsonx.Num 2.5; Jsonx.Num (-300.) ]);
  ok "{\"a\":true,\"b\":[{}]}"
    (Jsonx.Obj [ ("a", Jsonx.Bool true); ("b", Jsonx.Arr [ Jsonx.Obj [] ]) ]);
  ok "\"\\u0041\\n\"" (Jsonx.Str "A\n");
  List.iter
    (fun s -> check_bool ("reject " ^ s) true (Result.is_error (Jsonx.parse s)))
    [ ""; "{"; "[1,]"; "nul"; "1 2"; "\"\x01\""; "\"unterminated" ]

(* The escaping helper shared by lint --json, stats --json, and the
   trace exporter: any OCaml string must survive quote -> parse
   byte-for-byte, so no emitter can produce output a JSON consumer
   rejects. *)
let prop_jsonx_quote_roundtrip =
  QCheck.Test.make ~name:"Jsonx.quote output parses back to the input" ~count:500
    QCheck.(string_of_size Gen.(0 -- 120))
    (fun s -> Jsonx.parse (Jsonx.quote s) = Ok (Jsonx.Str s))

let prop_jsonx_obj_roundtrip =
  QCheck.Test.make ~name:"Jsonx.to_string output is valid JSON" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 40)) (list_of_size Gen.(0 -- 8) small_int))
    (fun (s, ints) ->
      let v =
        Jsonx.Obj
          [
            ("name", Jsonx.Str s);
            ("xs", Jsonx.Arr (List.map (fun i -> Jsonx.Num (float_of_int i)) ints));
            ("ok", Jsonx.Bool true);
            ("none", Jsonx.Null);
          ]
      in
      Jsonx.parse (Jsonx.to_string v) = Ok v)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "zkflow_util"
    [
      ( "bytesx",
        [
          Alcotest.test_case "u32 roundtrip" `Quick test_u32_roundtrip;
          Alcotest.test_case "u64 roundtrip" `Quick test_u64_roundtrip;
          Alcotest.test_case "u16 roundtrip" `Quick test_u16_roundtrip;
          Alcotest.test_case "big-endian order" `Quick test_be_byte_order;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "constant-time equal" `Quick test_ct_equal;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "int32 list roundtrip" `Quick test_int32_list_roundtrip;
        ] );
      ( "hexcodec",
        [
          Alcotest.test_case "encode" `Quick test_hex_encode;
          Alcotest.test_case "decode" `Quick test_hex_decode;
          Alcotest.test_case "reject malformed" `Quick test_hex_reject;
          q prop_hex_roundtrip;
        ] );
      ( "varint",
        [
          Alcotest.test_case "known encodings" `Quick test_varint_known;
          Alcotest.test_case "rejects negative" `Quick test_varint_negative;
          Alcotest.test_case "rejects truncated" `Quick test_varint_truncated;
          q prop_varint_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_len;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "sorted",
        [
          Alcotest.test_case "is_sorted" `Quick test_sorted_is_sorted;
          Alcotest.test_case "bsearch" `Quick test_sorted_bsearch;
          Alcotest.test_case "lower_bound" `Quick test_sorted_lower_bound;
          Alcotest.test_case "merge_uniq" `Quick test_merge_uniq;
          q prop_merge_sorted;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_wire_rejects_malformed;
          q prop_wire_fuzz_no_crash;
        ] );
      ( "jsonx",
        [
          Alcotest.test_case "escape specials" `Quick test_jsonx_escape_specials;
          Alcotest.test_case "parse basics" `Quick test_jsonx_parse_basics;
          q prop_jsonx_quote_roundtrip;
          q prop_jsonx_obj_roundtrip;
        ] );
    ]
