(* The benchmark-matrix report pipeline and the bench-diff rules it
   leans on, tested on hand-built artifacts: Pareto-frontier membership
   (dominance semantics, report rendering), artifact parsing failure
   modes, and Bench_diff's full configuration-key matching — a grid
   change must read as coverage notes, never as a false regression —
   plus the [min_s] noise floor, the inverted [_bits] direction, and
   the env provenance cross-checks. *)

module Jsonx = Zkflow_util.Jsonx
module Matrix = Zkflow_core.Matrix
module Bench_diff = Zkflow_core.Bench_diff

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- fixtures ---------------------------------------------------- *)

(* One matrix row with the full configuration key and every measured
   field the report parser requires. *)
let row ?(backend = "receipt") ?(queries = 16) ?(records = 48) ?(routers = 2)
    ?(jobs = 1) ?(prove_s = 1.0) ?(verify_s = 0.01) ?(proof_bytes = 1000.)
    ?(bits = 1.0) ?(phases = [ ("stark.prove", 0.7); ("merkle.build", 0.2) ]) ()
    =
  Jsonx.Obj
    [
      ("backend", Jsonx.Str backend);
      ("queries", Jsonx.Num (float_of_int queries));
      ("records", Jsonx.Num (float_of_int records));
      ("routers", Jsonx.Num (float_of_int routers));
      ("jobs", Jsonx.Num (float_of_int jobs));
      ("agg_cycles", Jsonx.Num 12000.);
      ("exec_s", Jsonx.Num 0.01);
      ("prove_s", Jsonx.Num prove_s);
      ("verify_s", Jsonx.Num verify_s);
      ("proof_bytes", Jsonx.Num proof_bytes);
      ("journal_bytes", Jsonx.Num 904.);
      ("receipt_bytes", Jsonx.Num (proof_bytes +. 904.));
      ("soundness_bits", Jsonx.Num bits);
      ( "phases",
        Jsonx.Obj
          (List.map
             (fun (name, s) ->
               ( name,
                 Jsonx.Obj [ ("count", Jsonx.Num 1.); ("total_s", Jsonx.Num s) ]
               ))
             phases) );
      ("pool", Jsonx.Obj [ ("utilization", Jsonx.Num 0.5) ]);
    ]

let artifact ?(env = []) rows =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "zkflow-bench-matrix/v1");
      ("env", Jsonx.Obj env);
      ("rows", Jsonx.Arr rows);
    ]

let parse_rows doc =
  match Matrix.rows_of_artifact doc with
  | Ok rows -> rows
  | Error e -> Alcotest.failf "fixture does not parse: %s" e

(* ---- Pareto dominance -------------------------------------------- *)

(* The hand-built frontier fixture: five cells with membership decided
   by inspection.
     a: 1.0s / 1000B / 1.0 bits   — frontier
     b: 2.0s / 2000B / 1.0 bits   — dominated by [a] on two axes
     c: 2.0s /  256B / 1.0 bits   — frontier (cheapest bytes)
     d: 0.5s / 5000B / 4.0 bits   — frontier (fastest, most sound)
     e: 1.5s / 1500B / 0.5 bits   — dominated by [a] on all three *)
let frontier_fixture =
  artifact
    [
      row ~queries:8 ~prove_s:1.0 ~proof_bytes:1000. ~bits:1.0 ();
      row ~queries:16 ~prove_s:2.0 ~proof_bytes:2000. ~bits:1.0 ();
      row ~backend:"wrap" ~queries:16 ~prove_s:2.0 ~proof_bytes:256. ~bits:1.0
        ();
      row ~queries:48 ~prove_s:0.5 ~proof_bytes:5000. ~bits:4.0 ();
      row ~queries:24 ~prove_s:1.5 ~proof_bytes:1500. ~bits:0.5 ();
    ]

let test_dominates () =
  match parse_rows frontier_fixture with
  | [ a; b; _c; d; e ] ->
    check_bool "a dominates b" true (Matrix.dominates a b);
    check_bool "a dominates e" true (Matrix.dominates a e);
    check_bool "b does not dominate a" false (Matrix.dominates b a);
    (* trade-offs dominate in neither direction *)
    check_bool "a vs d" false (Matrix.dominates a d);
    check_bool "d vs a" false (Matrix.dominates d a);
    (* a row never dominates itself: nothing is strictly better *)
    check_bool "irreflexive" false (Matrix.dominates a a)
  | _ -> Alcotest.fail "fixture should have 5 rows"

let test_equal_rows_neither_dominates () =
  let doc =
    artifact [ row ~jobs:1 (); row ~jobs:2 () ]
    (* identical measurements, different config *)
  in
  match parse_rows doc with
  | [ a; b ] ->
    check_bool "a vs b" false (Matrix.dominates a b);
    check_bool "b vs a" false (Matrix.dominates b a);
    (* ...so both survive on the frontier *)
    let f = Matrix.frontier [ a; b ] in
    check_bool "both on frontier" true (List.for_all snd f)
  | _ -> Alcotest.fail "fixture should have 2 rows"

let test_frontier_membership () =
  let rows = parse_rows frontier_fixture in
  let flags = List.map snd (Matrix.frontier rows) in
  Alcotest.(check (list bool))
    "membership a..e" [ true; false; true; true; false ] flags

let test_frontier_singleton () =
  let rows = parse_rows (artifact [ row () ]) in
  Alcotest.(check (list bool)) "alone on frontier" [ true ]
    (List.map snd (Matrix.frontier rows))

(* ---- report rendering -------------------------------------------- *)

let test_report_markdown_frontier_table () =
  match Matrix.report_markdown frontier_fixture with
  | Error e -> Alcotest.failf "render failed: %s" e
  | Ok md ->
    check_bool "has matrix section" true (contains ~needle:"## Matrix" md);
    check_bool "has frontier section" true
      (contains ~needle:"## Pareto frontier" md);
    check_bool "counts dominated cells" true
      (contains ~needle:"2 of 5 cells are dominated" md);
    (* the dominated wrap-free cell is absent from the frontier table:
       only three frontier rows render after the frontier header *)
    let after =
      let marker = "## Pareto frontier" in
      let rec find i =
        if i + String.length marker > String.length md then md
        else if String.sub md i (String.length marker) = marker then
          String.sub md i (String.length md - i)
        else find (i + 1)
      in
      find 0
    in
    check_bool "frontier table keeps the 256B wrap cell" true
      (contains ~needle:"| wrap | 16 |" after);
    check_bool "frontier table drops the dominated 2000B cell" false
      (contains ~needle:"| receipt | 16 |" after)

let test_report_json_frontier_keys () =
  match Matrix.report_json frontier_fixture with
  | Error e -> Alcotest.failf "render failed: %s" e
  | Ok doc -> (
    (match Jsonx.member "cells" doc with
    | Some (Jsonx.Num n) -> check_int "cells" 5 (int_of_float n)
    | _ -> Alcotest.fail "no cells count");
    match Jsonx.member "frontier" doc with
    | Some (Jsonx.Arr keys) ->
      check_int "3 frontier cells" 3 (List.length keys);
      check_bool "names the wrap cell" true
        (List.mem
           (Jsonx.Str "backend=wrap queries=16 records=48 routers=2 jobs=1")
           keys)
    | _ -> Alcotest.fail "no frontier key list")

let test_rows_of_artifact_failures () =
  let err doc =
    match Matrix.rows_of_artifact doc with
    | Error e -> e
    | Ok _ -> Alcotest.fail "expected parse error"
  in
  check_bool "not an artifact" true
    (contains ~needle:"no \"rows\" array" (err (Jsonx.Obj [ ("x", Jsonx.Num 1.) ])));
  check_bool "empty rows" true
    (contains ~needle:"empty" (err (artifact [])));
  (* a row missing a measured field names the field *)
  let truncated =
    match row () with
    | Jsonx.Obj members ->
      Jsonx.Obj (List.filter (fun (k, _) -> k <> "soundness_bits") members)
    | _ -> assert false
  in
  check_bool "missing field named" true
    (contains ~needle:"soundness_bits" (err (artifact [ truncated ])))

(* ---- Bench_diff: configuration-key matching ---------------------- *)

let diff_exn ?threshold ?min_s old_json new_json =
  match Bench_diff.diff ?threshold ?min_s ~old_json ~new_json () with
  | Ok r -> r
  | Error e -> Alcotest.failf "diff failed: %s" e

let test_row_key_axes () =
  let key doc = Option.get (Bench_diff.row_key doc) in
  check_string "fig4 rows keep their single-axis key" "records=100"
    (key (Jsonx.Obj [ ("records", Jsonx.Num 100.); ("agg_prove_s", Jsonx.Num 1.) ]));
  check_string "par rows keep their single-axis key" "jobs=4"
    (key (Jsonx.Obj [ ("jobs", Jsonx.Num 4.); ("speedup", Jsonx.Num 2.) ]));
  check_string "matrix rows use the full configuration"
    "backend=wrap queries=16 records=48 routers=2 jobs=2"
    (key (row ~backend:"wrap" ~queries:16 ~records:48 ~routers:2 ~jobs:2 ()));
  Alcotest.(check (option string))
    "axis-free rows have no key" None
    (Bench_diff.row_key (Jsonx.Obj [ ("speedup", Jsonx.Num 2.) ]))

let test_matrix_rows_matched_by_config () =
  (* same grid, one cell's prove time regressed: the regression names
     that cell's full key and nothing else *)
  let old_doc =
    artifact [ row ~queries:8 ~prove_s:1.0 (); row ~queries:16 ~prove_s:1.0 () ]
  in
  let new_doc =
    artifact [ row ~queries:8 ~prove_s:1.0 (); row ~queries:16 ~prove_s:2.0 () ]
  in
  let r = diff_exn old_doc new_doc in
  check_bool "regressed" false (Bench_diff.ok r);
  check_int "one regression" 1 (List.length r.Bench_diff.regressions);
  let c = List.hd r.Bench_diff.regressions in
  check_string "full config key"
    "backend=receipt queries=16 records=48 routers=2 jobs=1" c.Bench_diff.key;
  check_string "field" "prove_s" c.Bench_diff.field

let test_mismatched_grids_are_notes () =
  (* the NEW artifact dropped the queries=8 cell and added queries=48:
     coverage drift on both sides, zero regressions *)
  let old_doc = artifact [ row ~queries:8 (); row ~queries:16 () ] in
  let new_doc = artifact [ row ~queries:16 (); row ~queries:48 () ] in
  let r = diff_exn old_doc new_doc in
  check_bool "no false regressions" true (Bench_diff.ok r);
  check_bool "dropped cell noted" true
    (List.exists
       (fun n -> contains ~needle:"queries=8" n && contains ~needle:"missing in NEW" n)
       r.Bench_diff.notes);
  check_bool "added cell noted" true
    (List.exists
       (fun n -> contains ~needle:"queries=48" n && contains ~needle:"only in NEW" n)
       r.Bench_diff.notes)

let test_backend_distinguishes_rows () =
  (* identical scale and queries, different backend: these are
     different cells, so a wrap-only slowdown never bills to receipt *)
  let old_doc =
    artifact [ row ~backend:"receipt" ~prove_s:1.0 (); row ~backend:"wrap" ~prove_s:1.0 () ]
  in
  let new_doc =
    artifact [ row ~backend:"receipt" ~prove_s:1.0 (); row ~backend:"wrap" ~prove_s:3.0 () ]
  in
  let r = diff_exn old_doc new_doc in
  check_int "one regression" 1 (List.length r.Bench_diff.regressions);
  check_bool "bills the wrap cell" true
    (contains ~needle:"backend=wrap" (List.hd r.Bench_diff.regressions).Bench_diff.key)

(* ---- Bench_diff: min_s floor, one-side fields, _bits direction --- *)

let timing_rows v = artifact [ row ~verify_s:v () ]

let test_min_s_floor_boundary () =
  (* both sides under the floor: a 10x blowup on microsecond noise is
     not a regression *)
  let r = diff_exn ~min_s:0.05 (timing_rows 0.004) (timing_rows 0.04) in
  check_bool "sub-floor noise ignored" true (Bench_diff.ok r);
  (* the new value landing exactly on the floor re-arms the check *)
  let r = diff_exn ~min_s:0.05 (timing_rows 0.004) (timing_rows 0.05) in
  check_bool "at-floor value counted" false (Bench_diff.ok r);
  (* either side at/above the floor is enough: a timing that fell from
     above the floor to almost nothing still reads as an improvement *)
  let r = diff_exn ~min_s:0.05 (timing_rows 0.2) (timing_rows 0.002) in
  check_bool "still ok" true (Bench_diff.ok r);
  check_int "improvement recorded" 1 (List.length r.Bench_diff.improvements)

let test_one_side_field_is_note () =
  let base = row () in
  let with_extra =
    match base with
    | Jsonx.Obj members -> Jsonx.Obj (("wrap_s", Jsonx.Num 0.2) :: members)
    | _ -> assert false
  in
  let r = diff_exn (artifact [ with_extra ]) (artifact [ base ]) in
  check_bool "no regression" true (Bench_diff.ok r);
  check_bool "field drop noted" true
    (List.exists (fun n -> contains ~needle:"wrap_s" n) r.Bench_diff.notes)

let test_bits_direction_inverted () =
  (* losing soundness bits is the regression... *)
  let r = diff_exn (artifact [ row ~bits:3.55 () ]) (artifact [ row ~bits:0.59 () ]) in
  check_bool "fewer bits regresses" false (Bench_diff.ok r);
  check_bool "names soundness_bits" true
    (List.exists
       (fun c -> c.Bench_diff.field = "soundness_bits")
       r.Bench_diff.regressions);
  (* ...and gaining them is the improvement, unlike every cost field *)
  let r = diff_exn (artifact [ row ~bits:0.59 () ]) (artifact [ row ~bits:3.55 () ]) in
  check_bool "more bits ok" true (Bench_diff.ok r);
  check_bool "counted as improvement" true
    (List.exists
       (fun c -> c.Bench_diff.field = "soundness_bits")
       r.Bench_diff.improvements)

(* ---- Bench_diff: env provenance notes ---------------------------- *)

let env ~commit ~dirty ~host =
  [
    ("git_commit", Jsonx.Str commit);
    ("git_dirty", Jsonx.Bool dirty);
    ("hostname", Jsonx.Str host);
    ("quick", Jsonx.Bool true);
  ]

let test_env_provenance_notes () =
  let a = artifact ~env:(env ~commit:"aaa1111" ~dirty:false ~host:"ci-1") [ row () ] in
  let b = artifact ~env:(env ~commit:"bbb2222" ~dirty:true ~host:"dev-2") [ row () ] in
  let r = diff_exn a b in
  (* provenance drift is caveat, not failure *)
  check_bool "still ok" true (Bench_diff.ok r);
  let has needle =
    List.exists (fun n -> contains ~needle n) r.Bench_diff.notes
  in
  check_bool "cross-commit note" true (has "cross-commit");
  check_bool "cross-machine note" true (has "cross-machine");
  check_bool "dirty NEW tree note" true (has "NEW artifact was produced from a dirty tree");
  (* same provenance: none of those notes *)
  let r = diff_exn a a in
  check_int "no provenance notes" 0 (List.length r.Bench_diff.notes)

let test_quick_flag_mismatch_note () =
  let quick = artifact ~env:(env ~commit:"aaa" ~dirty:false ~host:"h") [ row () ] in
  let full =
    artifact
      ~env:
        [
          ("git_commit", Jsonx.Str "aaa");
          ("git_dirty", Jsonx.Bool false);
          ("hostname", Jsonx.Str "h");
          ("quick", Jsonx.Bool false);
        ]
      [ row () ]
  in
  let r = diff_exn quick full in
  check_bool "quick mismatch noted" true
    (List.exists (fun n -> contains ~needle:"quick-mode" n) r.Bench_diff.notes)

(* ---- live grid sanity -------------------------------------------- *)

let test_default_grids_shape () =
  let quick = Matrix.default_grid ~quick:true in
  let full = Matrix.default_grid ~quick:false in
  (* the acceptance floor for the CI quick grid *)
  check_bool ">=2 backends" true (List.length quick.Matrix.backends >= 2);
  check_bool ">=3 queries" true (List.length quick.Matrix.queries >= 3);
  check_bool ">=3 scales" true (List.length quick.Matrix.scales >= 3);
  check_bool "full widens the sweep" true
    (List.length full.Matrix.queries > List.length quick.Matrix.queries)

let test_env_provenance_fields () =
  let fields = Matrix.env_provenance () in
  let has k = List.mem_assoc k fields in
  check_bool "git_commit" true (has "git_commit");
  check_bool "git_dirty" true (has "git_dirty");
  check_bool "hostname" true (has "hostname");
  (match List.assoc "git_dirty" fields with
  | Jsonx.Bool _ -> ()
  | _ -> Alcotest.fail "git_dirty should be a bool");
  match List.assoc "git_commit" fields with
  | Jsonx.Str s -> check_bool "non-empty commit" true (String.length s > 0)
  | _ -> Alcotest.fail "git_commit should be a string"

(* A tiny live run through the real prover: 1 backend pair × 1 queries
   × 1 scale, checking the measured invariants the report relies on. *)
let test_run_tiny_grid () =
  let grid =
    {
      Matrix.backends = [ Matrix.Receipt; Matrix.Wrap ];
      queries = [ 8 ];
      scales = [ { Matrix.records = 12; routers = 2; jobs = 1 } ];
    }
  in
  match Matrix.run grid with
  | Error e -> Alcotest.failf "run failed: %s" e
  | Ok cells -> (
    check_int "2 cells" 2 (List.length cells);
    let find b = List.find (fun c -> c.Matrix.backend = b) cells in
    let receipt = find Matrix.Receipt and wrap = find Matrix.Wrap in
    check_int "wrap proof is the constant 256B seal" 256 wrap.Matrix.proof_bytes;
    check_bool "receipt proof is larger" true
      (receipt.Matrix.proof_bytes > wrap.Matrix.proof_bytes);
    check_bool "same guest, same cycles" true
      (receipt.Matrix.cycles = wrap.Matrix.cycles);
    check_bool "wrap pays its cost on top of the inner prove" true
      (wrap.Matrix.prove_s >= receipt.Matrix.prove_s);
    check_bool "wrap inherits the inner soundness" true
      (receipt.Matrix.soundness_bits = wrap.Matrix.soundness_bits);
    check_bool "spans recorded" true (receipt.Matrix.phases <> []);
    (* the artifact the run writes parses back through the report path *)
    let doc =
      Matrix.to_json ~env:(Jsonx.Obj (Matrix.env_provenance ())) cells
    in
    match Matrix.report_markdown doc with
    | Error e -> Alcotest.failf "live artifact does not render: %s" e
    | Ok md -> check_bool "renders the matrix" true (contains ~needle:"## Matrix" md))

let () =
  Alcotest.run "zkflow_matrix"
    [
      ( "frontier",
        [
          Alcotest.test_case "dominance semantics" `Quick test_dominates;
          Alcotest.test_case "equal rows co-exist" `Quick
            test_equal_rows_neither_dominates;
          Alcotest.test_case "membership on the hand-built fixture" `Quick
            test_frontier_membership;
          Alcotest.test_case "singleton" `Quick test_frontier_singleton;
        ] );
      ( "report",
        [
          Alcotest.test_case "markdown frontier table" `Quick
            test_report_markdown_frontier_table;
          Alcotest.test_case "json frontier keys" `Quick
            test_report_json_frontier_keys;
          Alcotest.test_case "artifact parse failures" `Quick
            test_rows_of_artifact_failures;
        ] );
      ( "bench-diff keys",
        [
          Alcotest.test_case "row_key per artifact kind" `Quick test_row_key_axes;
          Alcotest.test_case "matrix rows matched by full config" `Quick
            test_matrix_rows_matched_by_config;
          Alcotest.test_case "grid changes are notes, not regressions" `Quick
            test_mismatched_grids_are_notes;
          Alcotest.test_case "backend separates otherwise-equal rows" `Quick
            test_backend_distinguishes_rows;
        ] );
      ( "bench-diff rules",
        [
          Alcotest.test_case "min_s floor boundary" `Quick test_min_s_floor_boundary;
          Alcotest.test_case "one-side field is a note" `Quick
            test_one_side_field_is_note;
          Alcotest.test_case "_bits direction inverted" `Quick
            test_bits_direction_inverted;
          Alcotest.test_case "env provenance notes" `Quick test_env_provenance_notes;
          Alcotest.test_case "quick-flag mismatch note" `Quick
            test_quick_flag_mismatch_note;
        ] );
      ( "grid",
        [
          Alcotest.test_case "default grid shape" `Quick test_default_grids_shape;
          Alcotest.test_case "env provenance fields" `Quick
            test_env_provenance_fields;
          Alcotest.test_case "tiny live run" `Slow test_run_tiny_grid;
        ] );
    ]
