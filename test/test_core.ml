module D = Zkflow_hash.Digest32
module Record = Zkflow_netflow.Record
module Flowkey = Zkflow_netflow.Flowkey
module Gen = Zkflow_netflow.Gen
module Export = Zkflow_netflow.Export
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let digest = Alcotest.testable D.pp D.equal
let rng seed = Zkflow_util.Rng.create (Int64.of_int seed)

let batch ?(seed = 1) ?(router_id = 0) n =
  Gen.records (rng seed) Gen.default_profile ~router_id ~count:n

let committed records = (Export.batch_hash records, records)

(* fast proving params for tests *)
let params = Zkflow_zkproof.Params.make ~queries:8

(* ---- Clog ---- *)

let test_clog_empty () =
  check_int "length" 0 (Clog.length Clog.empty);
  Alcotest.check digest "stable empty root" Clog.empty_root (Clog.root Clog.empty)

let test_clog_apply_batch_sums () =
  let records = batch 5 in
  let clog = Clog.apply_batch Clog.empty records in
  check_int "5 flows" 5 (Clog.length clog);
  (* same batch again: same flows, doubled metrics *)
  let clog2 = Clog.apply_batch clog records in
  check_int "still 5 flows" 5 (Clog.length clog2);
  (match Clog.find clog2 records.(0).Record.key with
   | Some (_, e) ->
     check_int "doubled" (2 * records.(0).Record.metrics.Record.packets)
       e.Clog.metrics.Record.packets
   | None -> Alcotest.fail "flow missing")

let test_clog_order_stable_across_rounds () =
  let clog1 = Clog.apply_batch Clog.empty (batch ~seed:1 3) in
  let clog2 = Clog.apply_batch clog1 (batch ~seed:2 3) in
  let e1 = Clog.entries clog1 and e2 = Clog.entries clog2 in
  for i = 0 to 2 do
    check_bool "prefix preserved" true (Flowkey.equal e1.(i).Clog.key e2.(i).Clog.key)
  done

let test_clog_matches_guest_encoding () =
  let records = batch 3 in
  let clog = Clog.apply_batch Clog.empty records in
  Array.iter
    (fun e ->
      check_int "entry is 8 words" 8 (Array.length (Clog.entry_words e));
      match Clog.entry_of_words (Clog.entry_words e) with
      | Ok e' -> check_bool "roundtrip" true (Flowkey.equal e.Clog.key e'.Clog.key)
      | Error msg -> Alcotest.fail msg)
    (Clog.entries clog)

let test_clog_rejects_duplicates () =
  let e = { Clog.key = (batch 1).(0).Record.key; metrics = Record.zero_metrics } in
  check_bool "dup rejected" true (Result.is_error (Clog.of_entries [| e; e |]))

(* ---- Aggregation guest: execution only (fast) ---- *)

let test_agg_execute_matches_reference () =
  let b0 = batch ~seed:1 ~router_id:0 10 and b1 = batch ~seed:2 ~router_id:1 10 in
  let batches = [ committed b0; committed b1 ] in
  match Aggregate.execute ~prev:Clog.empty batches with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_aggregation_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      let expected = Clog.apply_batch Clog.empty (Array.append b0 b1) in
      Alcotest.check digest "new root" (Clog.root expected) j.Guests.new_root;
      check_int "entry count" (Clog.length expected) j.Guests.entry_count;
      Alcotest.check digest "prev root" Clog.empty_root j.Guests.prev_root)

let test_agg_execute_overlapping_flows () =
  (* Same flows at two routers: metrics must sum, not duplicate. *)
  let b0 = batch ~seed:7 ~router_id:0 8 in
  let b1 =
    Array.map
      (fun r -> Record.make ~key:r.Record.key ~router_id:1 r.Record.metrics)
      b0
  in
  match Aggregate.execute ~prev:Clog.empty [ committed b0; committed b1 ] with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_aggregation_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      check_int "8 flows, not 16" 8 j.Guests.entry_count;
      let expected = Clog.apply_batch Clog.empty (Array.append b0 b1) in
      Alcotest.check digest "root" (Clog.root expected) j.Guests.new_root)

let test_agg_execute_chained_rounds () =
  let b0 = batch ~seed:1 5 in
  let r1 = Clog.apply_batch Clog.empty b0 in
  let b1 = batch ~seed:9 5 in
  match Aggregate.execute ~prev:r1 [ committed b1 ] with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_aggregation_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      Alcotest.check digest "prev root links" (Clog.root r1) j.Guests.prev_root;
      let expected = Clog.apply_batch r1 b1 in
      Alcotest.check digest "new root" (Clog.root expected) j.Guests.new_root)

let test_agg_rejects_tampered_batch () =
  let records = batch 6 in
  let claimed = Export.batch_hash records in
  let tampered = Array.copy records in
  tampered.(2) <-
    Record.make ~key:tampered.(2).Record.key
      { tampered.(2).Record.metrics with Record.losses = 0 };
  match Aggregate.execute ~prev:Clog.empty [ (claimed, tampered) ] with
  | Error e ->
    check_bool "mentions commitment" true
      (String.length e > 0 && String.sub e 0 11 = "aggregation")
  | Ok _ -> Alcotest.fail "tampered batch accepted"

let test_agg_rejects_wrong_prev_root () =
  (* Claim a prev state whose root doesn't match the entries. *)
  let clog = Clog.apply_batch Clog.empty (batch 3) in
  let input = Guests.aggregation_input ~prev:clog ~batches:[ committed (batch ~seed:5 2) ] in
  (* corrupt the claimed prev root (words 1..9) *)
  input.(1) <- input.(1) lxor 1;
  let program = Lazy.force Guests.aggregation_program in
  let run = Zkflow_zkvm.Machine.run program ~input in
  check_int "halt 1" 1 run.Zkflow_zkvm.Machine.exit_code

let test_agg_journal_leaf_digests () =
  let b = batch 4 in
  match Aggregate.execute ~prev:Clog.empty [ committed b ] with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_aggregation_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      let expected = Clog.apply_batch Clog.empty b in
      let host = Array.map Clog.leaf_digest (Clog.entries expected) in
      check_int "count" (Array.length host) (Array.length j.Guests.leaf_digests);
      Array.iteri
        (fun i _ -> Alcotest.check digest "leaf digest" host.(i) j.Guests.leaf_digests.(i))
        j.Guests.leaf_digests)

let test_agg_empty_round () =
  (* No routers at all: state unchanged, empty root committed. *)
  match Aggregate.execute ~prev:Clog.empty [] with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_aggregation_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      check_int "no entries" 0 j.Guests.entry_count;
      Alcotest.check digest "empty root" Clog.empty_root j.Guests.new_root)

(* ---- Aggregation: full prove/verify round ---- *)

let test_agg_prove_round_verifies () =
  let batches = [ committed (batch ~seed:1 6); committed (batch ~seed:2 ~router_id:1 6) ] in
  match Aggregate.prove_round ~params ~prev:Clog.empty batches with
  | Error e -> Alcotest.fail e
  | Ok round ->
    check_bool "receipt verifies" true
      (Zkflow_zkproof.Verify.check
         ~program:(Lazy.force Guests.aggregation_program)
         round.Aggregate.receipt);
    check_int "clog grew" 12 (Clog.length round.Aggregate.clog)

let test_agg_prove_partitioned_equivalent () =
  let batches =
    List.init 4 (fun i -> committed (batch ~seed:(10 + i) ~router_id:i 4))
  in
  match Aggregate.prove_round ~params ~prev:Clog.empty batches with
  | Error e -> Alcotest.fail e
  | Ok mono -> (
    match Aggregate.prove_partitioned ~params ~prev:Clog.empty ~partitions:2 batches with
    | Error e -> Alcotest.fail e
    | Ok parts ->
      let last = List.nth parts (List.length parts - 1) in
      Alcotest.check digest "same final root"
        (Clog.root mono.Aggregate.clog)
        (Clog.root last.Aggregate.clog))

let test_agg_sharded_partition () =
  let records = batch ~seed:77 24 in
  match
    Aggregate.prove_sharded ~params ~prev_shards:(Array.make 3 Clog.empty)
      ~shards:3 records
  with
  | Error e -> Alcotest.fail e
  | Ok rounds ->
    check_int "3 shards" 3 (Array.length rounds);
    let total =
      Array.fold_left (fun acc r -> acc + Clog.length r.Aggregate.clog) 0 rounds
    in
    check_int "no flow lost or duplicated" 24 total;
    (* fan-out query over shards = query over the union *)
    let q = { Guests.predicate = Guests.match_any; op = Guests.Sum; metric = Guests.Losses } in
    let shard_sum =
      Array.fold_left
        (fun acc r -> acc + fst (Query.reference r.Aggregate.clog q))
        0 rounds
    in
    let union = Clog.apply_batch Clog.empty records in
    check_int "fan-out sum" (fst (Query.reference union q)) shard_sum;
    (* a flow's records always land in the same shard *)
    Array.iter
      (fun r ->
        Array.iter
          (fun (e : Clog.entry) ->
            let hits =
              Array.fold_left
                (fun acc r' ->
                  if Option.is_some (Clog.find r'.Aggregate.clog e.Clog.key) then acc + 1
                  else acc)
                0 rounds
            in
            check_int "flow in exactly one shard" 1 hits)
          (Clog.entries r.Aggregate.clog))
      rounds

(* ---- Query guest ---- *)

let sample_clog () =
  let b = batch ~seed:3 10 in
  (Clog.apply_batch Clog.empty b, b)

let test_query_execute_sum_hops () =
  let clog, b = sample_clog () in
  let key = b.(0).Record.key in
  let q =
    Query.sum_hops_between ~src:key.Flowkey.src_ip ~dst:key.Flowkey.dst_ip
  in
  match Query.execute ~clog q with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_query_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      let expected, matches = Query.reference clog q in
      check_int "result" expected j.Guests.result;
      check_int "matches" matches j.Guests.matches;
      check_bool "at least one match" true (j.Guests.matches >= 1))

let test_query_ops () =
  let clog, _ = sample_clog () in
  List.iter
    (fun op ->
      let q = { Guests.predicate = Guests.match_any; op; metric = Guests.Packets } in
      match Query.execute ~clog q with
      | Error e -> Alcotest.fail e
      | Ok run -> (
        match Guests.parse_query_journal run.Zkflow_zkvm.Machine.journal with
        | Error e -> Alcotest.fail e
        | Ok j ->
          let expected, _ = Query.reference clog q in
          check_int "guest = host" expected j.Guests.result))
    [ Guests.Sum; Guests.Count; Guests.Max; Guests.Min ]

let test_query_metrics () =
  let clog, _ = sample_clog () in
  List.iter
    (fun metric ->
      let q = { Guests.predicate = Guests.match_any; op = Guests.Sum; metric } in
      match Query.execute ~clog q with
      | Error e -> Alcotest.fail e
      | Ok run -> (
        match Guests.parse_query_journal run.Zkflow_zkvm.Machine.journal with
        | Error e -> Alcotest.fail e
        | Ok j ->
          let expected, _ = Query.reference clog q in
          check_int "guest = host" expected j.Guests.result))
    [ Guests.Packets; Guests.Bytes; Guests.Hops; Guests.Losses ]

let test_query_no_matches () =
  let clog, _ = sample_clog () in
  let q =
    {
      Guests.predicate = { Guests.match_any with Guests.proto = Some 99 };
      op = Guests.Sum;
      metric = Guests.Packets;
    }
  in
  match Query.execute ~clog q with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_query_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      check_int "zero result" 0 j.Guests.result;
      check_int "zero matches" 0 j.Guests.matches)

let test_query_exact_flow () =
  let clog, b = sample_clog () in
  let q = Query.loss_of_flow b.(4).Record.key in
  match Query.execute ~clog q with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_query_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      check_int "one match" 1 j.Guests.matches;
      check_int "loss value" b.(4).Record.metrics.Record.losses j.Guests.result)

let test_query_rejects_wrong_root () =
  let clog, _ = sample_clog () in
  let q = Query.flow_count in
  let input = Guests.query_input ~clog q in
  input.(3) <- input.(3) lxor 1;
  let program = Lazy.force Guests.query_program in
  let run = Zkflow_zkvm.Machine.run program ~input in
  check_int "halt 1" 1 run.Zkflow_zkvm.Machine.exit_code

let test_query_rejects_bad_params () =
  let clog, _ = sample_clog () in
  let input = Guests.query_input ~clog Query.flow_count in
  (* op word is at position (1 + 8 + 8m + 8) *)
  let m = Clog.length clog in
  input.(1 + 8 + (8 * m) + 8) <- 17;
  let program = Lazy.force Guests.query_program in
  let run = Zkflow_zkvm.Machine.run program ~input in
  check_int "halt 5" 5 run.Zkflow_zkvm.Machine.exit_code

let test_query_prove_verifies () =
  let clog, b = sample_clog () in
  let key = b.(0).Record.key in
  let q = Query.sum_hops_between ~src:key.Flowkey.src_ip ~dst:key.Flowkey.dst_ip in
  match Query.prove ~params ~clog q with
  | Error e -> Alcotest.fail e
  | Ok row ->
    check_bool "receipt verifies" true
      (Zkflow_zkproof.Verify.check
         ~program:(Lazy.force Guests.query_program)
         row.Query.receipt);
    Alcotest.check digest "root in journal" (Clog.root clog) row.Query.journal.Guests.root

let test_query_empty_clog () =
  let q = Query.flow_count in
  match Query.execute ~clog:Clog.empty q with
  | Error e -> Alcotest.fail e
  | Ok run -> (
    match Guests.parse_query_journal run.Zkflow_zkvm.Machine.journal with
    | Error e -> Alcotest.fail e
    | Ok j ->
      check_int "zero" 0 j.Guests.result;
      Alcotest.check digest "empty root" Clog.empty_root j.Guests.root)

(* ---- verifiable sketch ---- *)

let test_vsketch_host_semantics () =
  let s = Vsketch.create () in
  let keys = Array.map (fun r -> r.Record.key) (batch ~seed:42 20) in
  Array.iteri (fun i k -> Vsketch.add s ~count:(10 * (i + 1)) k) keys;
  Array.iteri
    (fun i k ->
      check_bool "never underestimates" true (Vsketch.estimate s k >= 10 * (i + 1)))
    keys;
  (* untouched key estimates small (whp zero with 20 keys in 4x1024) *)
  let ghost = (batch ~seed:4242 1).(0).Record.key in
  check_bool "ghost small" true (Vsketch.estimate s ghost < 50)

let test_vsketch_guest_matches_host () =
  let s = Vsketch.create () in
  let keys = Array.map (fun r -> r.Record.key) (batch ~seed:43 10) in
  Array.iter (fun k -> Vsketch.add s ~count:7 k) keys;
  (* interpreter path: cheap full agreement check for several keys *)
  Array.iter
    (fun k ->
      match
        Zkflow_lang.Zirc.interpret Vsketch.query_program ~input:(Vsketch.query_input s k)
      with
      | Error e -> Alcotest.fail e
      | Ok o ->
        check_int "guest estimate" (Vsketch.estimate s k)
          o.Zkflow_lang.Zirc.journal.(12))
    keys

let test_vsketch_prove_verify () =
  let s = Vsketch.create () in
  let keys = Array.map (fun r -> r.Record.key) (batch ~seed:44 5) in
  Array.iter (fun k -> Vsketch.add s ~count:100 k) keys;
  match Vsketch.prove ~params s keys.(2) with
  | Error e -> Alcotest.fail e
  | Ok (receipt, attested) -> (
    check_int "attested estimate" (Vsketch.estimate s keys.(2)) attested.Vsketch.estimate;
    match Vsketch.verify ~expected_commitment:(Vsketch.commitment s) receipt with
    | Error e -> Alcotest.fail e
    | Ok a ->
      check_bool "key in journal" true (Flowkey.equal a.Vsketch.key keys.(2));
      (* wrong commitment rejected *)
      check_bool "wrong commitment" true
        (Result.is_error
           (Vsketch.verify ~expected_commitment:(D.hash_string "other") receipt)))

let test_vsketch_tamper_detected () =
  let s = Vsketch.create () in
  Array.iter (fun r -> Vsketch.add s r.Record.key) (batch ~seed:45 8);
  let key = (batch ~seed:45 8).(0).Record.key in
  let input = Vsketch.query_input s key in
  (* cheat: zero a cell after committing *)
  input.(8 + 100) <- input.(8 + 100) lxor 0xff;
  match Zkflow_lang.Zirc.compile Vsketch.query_program with
  | Error e -> Alcotest.fail e
  | Ok program ->
    let run = Zkflow_zkvm.Machine.run program ~input in
    check_int "halt 1" 1 run.Zkflow_zkvm.Machine.exit_code

(* ---- Clog incremental maintenance (differential) ---- *)

let test_clog_incremental_matches_rebuild () =
  (* Chained batches with overlapping flows: the incremental tree of
     apply_batch must be bit-identical to the from-scratch arm at
     every round. *)
  let rebuild = ref Clog.empty and incr = ref Clog.empty in
  for round = 0 to 5 do
    (* alternate seeds so some rounds update, some append, some both *)
    let b = batch ~seed:(round mod 3) (10 + round) in
    rebuild := Clog.apply_batch_rebuild !rebuild b;
    incr := Clog.apply_batch !incr b;
    Alcotest.check digest
      (Printf.sprintf "round %d" round)
      (Clog.root !rebuild) (Clog.root !incr);
    check_int "lengths agree" (Clog.length !rebuild) (Clog.length !incr)
  done

let test_clog_empty_batch () =
  let c = Clog.apply_batch Clog.empty (batch 5) in
  let c' = Clog.apply_batch c [||] in
  Alcotest.check digest "empty batch keeps root" (Clog.root c) (Clog.root c');
  check_int "length unchanged" (Clog.length c) (Clog.length c')

let test_clog_words_layout () =
  let c = Clog.apply_batch Clog.empty (batch 7) in
  let ws = Clog.words c in
  let entries = Clog.entries c in
  check_int "8 words per entry" (8 * Array.length entries) (Array.length ws);
  Array.iteri
    (fun i e ->
      let ew = Clog.entry_words e in
      for j = 0 to 7 do
        check_int (Printf.sprintf "entry %d word %d" i j) ew.(j) ws.((8 * i) + j)
      done)
    entries

let test_clog_snapshot_restore () =
  let c = Clog.apply_batch Clog.empty (batch 9) in
  let es = Clog.entries c in
  (match Clog.of_entries_with_snapshot es ~snapshot:(Clog.tree_snapshot c) with
  | Error e -> Alcotest.fail e
  | Ok c' ->
    Alcotest.check digest "restored root" (Clog.root c) (Clog.root c');
    (* the restored state must keep chaining incrementally *)
    let b = batch ~seed:2 6 in
    Alcotest.check digest "chains after restore"
      (Clog.root (Clog.apply_batch c b))
      (Clog.root (Clog.apply_batch c' b)));
  (* leaf-count mismatch and malformed snapshots are rejected *)
  check_bool "count mismatch" true
    (Result.is_error
       (Clog.of_entries_with_snapshot (Array.sub es 0 3)
          ~snapshot:(Clog.tree_snapshot c)));
  check_bool "garbage snapshot" true
    (Result.is_error
       (Clog.of_entries_with_snapshot es ~snapshot:(Bytes.of_string "junk")))

let prop_clog_incremental_differential =
  QCheck.Test.make ~name:"apply_batch = rebuild = of_entries over random rounds"
    ~count:40
    QCheck.(pair (int_range 0 9999) (int_range 1 5))
    (fun (seed, rounds) ->
      let r = rng seed in
      let rebuild = ref Clog.empty and incr = ref Clog.empty in
      let ok = ref true in
      for _ = 1 to rounds do
        (* occasional empty batch; otherwise a mixed insert/update one *)
        let n = Zkflow_util.Rng.int r 30 in
        let b = Gen.records r Gen.default_profile ~router_id:0 ~count:n in
        rebuild := Clog.apply_batch_rebuild !rebuild b;
        incr := Clog.apply_batch !incr b;
        ok :=
          !ok
          && D.equal (Clog.root !rebuild) (Clog.root !incr)
          && D.equal (Clog.root !incr)
               (Clog.root (Result.get_ok (Clog.of_entries (Clog.entries !incr))))
      done;
      !ok)

let () =
  Alcotest.run "zkflow_core"
    [
      ( "clog",
        [
          Alcotest.test_case "empty" `Quick test_clog_empty;
          Alcotest.test_case "apply batch sums" `Quick test_clog_apply_batch_sums;
          Alcotest.test_case "order stable" `Quick test_clog_order_stable_across_rounds;
          Alcotest.test_case "guest encoding" `Quick test_clog_matches_guest_encoding;
          Alcotest.test_case "rejects duplicates" `Quick test_clog_rejects_duplicates;
          Alcotest.test_case "incremental = rebuild" `Quick test_clog_incremental_matches_rebuild;
          Alcotest.test_case "empty batch" `Quick test_clog_empty_batch;
          Alcotest.test_case "words layout" `Quick test_clog_words_layout;
          Alcotest.test_case "snapshot restore" `Quick test_clog_snapshot_restore;
          QCheck_alcotest.to_alcotest prop_clog_incremental_differential;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "matches reference" `Quick test_agg_execute_matches_reference;
          Alcotest.test_case "overlapping flows" `Quick test_agg_execute_overlapping_flows;
          Alcotest.test_case "chained rounds" `Quick test_agg_execute_chained_rounds;
          Alcotest.test_case "rejects tampered batch" `Quick test_agg_rejects_tampered_batch;
          Alcotest.test_case "rejects wrong prev root" `Quick test_agg_rejects_wrong_prev_root;
          Alcotest.test_case "journal leaf digests" `Quick test_agg_journal_leaf_digests;
          Alcotest.test_case "empty round" `Quick test_agg_empty_round;
          Alcotest.test_case "prove round verifies" `Slow test_agg_prove_round_verifies;
          Alcotest.test_case "partitioned equivalent" `Slow test_agg_prove_partitioned_equivalent;
          Alcotest.test_case "sharded partition" `Slow test_agg_sharded_partition;
        ] );
      ( "query",
        [
          Alcotest.test_case "sum hops" `Quick test_query_execute_sum_hops;
          Alcotest.test_case "all ops" `Quick test_query_ops;
          Alcotest.test_case "all metrics" `Quick test_query_metrics;
          Alcotest.test_case "no matches" `Quick test_query_no_matches;
          Alcotest.test_case "exact flow" `Quick test_query_exact_flow;
          Alcotest.test_case "rejects wrong root" `Quick test_query_rejects_wrong_root;
          Alcotest.test_case "rejects bad params" `Quick test_query_rejects_bad_params;
          Alcotest.test_case "prove verifies" `Slow test_query_prove_verifies;
          Alcotest.test_case "empty clog" `Quick test_query_empty_clog;
        ] );
      ( "vsketch",
        [
          Alcotest.test_case "host semantics" `Quick test_vsketch_host_semantics;
          Alcotest.test_case "guest matches host" `Quick test_vsketch_guest_matches_host;
          Alcotest.test_case "prove/verify" `Slow test_vsketch_prove_verify;
          Alcotest.test_case "tamper detected" `Quick test_vsketch_tamper_detected;
        ] );
    ]
