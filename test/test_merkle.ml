open Zkflow_merkle
module D = Zkflow_hash.Digest32

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let digest = Alcotest.testable D.pp D.equal
let leaves n = Array.init n (fun i -> Bytes.of_string (Printf.sprintf "leaf-%d" i))

(* ---- Tree ---- *)

let test_tree_deterministic_root () =
  let t1 = Tree.of_leaves (leaves 5) and t2 = Tree.of_leaves (leaves 5) in
  Alcotest.check digest "same root" (Tree.root t1) (Tree.root t2)

let test_tree_root_depends_on_content () =
  let a = Tree.of_leaves (leaves 4) in
  let modified = leaves 4 in
  modified.(2) <- Bytes.of_string "tampered";
  let b = Tree.of_leaves modified in
  check_bool "root changes" false (D.equal (Tree.root a) (Tree.root b))

let test_tree_root_depends_on_order () =
  let l = leaves 4 in
  let swapped = Array.copy l in
  swapped.(0) <- l.(1);
  swapped.(1) <- l.(0);
  check_bool "order matters" false
    (D.equal (Tree.root (Tree.of_leaves l)) (Tree.root (Tree.of_leaves swapped)))

let test_tree_sizes_and_depth () =
  check_int "size 1 depth" 0 (Tree.depth (Tree.of_leaves (leaves 1)));
  check_int "size 2 depth" 1 (Tree.depth (Tree.of_leaves (leaves 2)));
  check_int "size 3 depth" 2 (Tree.depth (Tree.of_leaves (leaves 3)));
  check_int "size 5 depth" 3 (Tree.depth (Tree.of_leaves (leaves 5)));
  check_int "size recorded" 5 (Tree.size (Tree.of_leaves (leaves 5)))

let test_tree_padding_distinguishes_sizes () =
  (* A 3-leaf tree must not equal the 4-leaf tree whose 4th leaf is the
     padding value's preimage-less digest... they share digests only if
     the 4th real leaf hash equals the padding digest, which leaf
     domain separation prevents for real data. *)
  let t3 = Tree.of_leaves (leaves 3) and t4 = Tree.of_leaves (leaves 4) in
  check_bool "3 vs 4 leaves" false (D.equal (Tree.root t3) (Tree.root t4))

let test_tree_two_leaf_root_is_combine () =
  let l = leaves 2 in
  let expected = D.combine (Tree.leaf_hash l.(0)) (Tree.leaf_hash l.(1)) in
  Alcotest.check digest "combine rule" expected (Tree.root (Tree.of_leaves l))

let test_tree_root_of_leaf_hashes_agrees () =
  for n = 1 to 17 do
    let hs = Array.map Tree.leaf_hash (leaves n) in
    Alcotest.check digest
      (Printf.sprintf "n=%d" n)
      (Tree.root (Tree.of_leaf_hashes hs))
      (Tree.root_of_leaf_hashes hs)
  done

let test_tree_leaf_accessor () =
  let t = Tree.of_leaves (leaves 3) in
  Alcotest.check digest "leaf 0" (Tree.leaf_hash (Bytes.of_string "leaf-0")) (Tree.leaf t 0);
  Alcotest.check_raises "oob" (Invalid_argument "Tree.leaf: index out of range")
    (fun () -> ignore (Tree.leaf t 3))

(* ---- Proof ---- *)

let test_proof_roundtrip_all_indices () =
  List.iter
    (fun n ->
      let data = leaves n in
      let t = Tree.of_leaves data in
      for i = 0 to n - 1 do
        let p = Tree.prove t i in
        check_bool
          (Printf.sprintf "n=%d i=%d" n i)
          true
          (Proof.verify ~root:(Tree.root t) ~leaf_hash:(Tree.leaf t i) p);
        check_bool "verify_data" true
          (Proof.verify_data ~root:(Tree.root t) data.(i) p)
      done)
    [ 1; 2; 3; 4; 7; 8; 9; 16; 33 ]

let test_proof_rejects_wrong_leaf () =
  let t = Tree.of_leaves (leaves 8) in
  let p = Tree.prove t 3 in
  check_bool "wrong leaf" false
    (Proof.verify ~root:(Tree.root t) ~leaf_hash:(Tree.leaf t 4) p)

let test_proof_rejects_wrong_root () =
  let t = Tree.of_leaves (leaves 8) and t2 = Tree.of_leaves (leaves 9) in
  let p = Tree.prove t 3 in
  check_bool "wrong root" false
    (Proof.verify ~root:(Tree.root t2) ~leaf_hash:(Tree.leaf t 3) p)

let test_proof_rejects_tampered_sibling () =
  let t = Tree.of_leaves (leaves 8) in
  let p = Tree.prove t 5 in
  let tampered =
    { p with Proof.siblings = Array.map Fun.id p.Proof.siblings }
  in
  tampered.Proof.siblings.(1) <- D.hash_string "evil";
  check_bool "tampered path" false
    (Proof.verify ~root:(Tree.root t) ~leaf_hash:(Tree.leaf t 5) tampered)

let test_proof_encode_decode () =
  let t = Tree.of_leaves (leaves 10) in
  let p = Tree.prove t 7 in
  let b = Proof.encode p in
  match Proof.decode b 0 with
  | Error e -> Alcotest.fail e
  | Ok (p', off) ->
    check_int "consumed all" (Bytes.length b) off;
    check_int "index" p.Proof.index p'.Proof.index;
    check_bool "verifies" true
      (Proof.verify ~root:(Tree.root t) ~leaf_hash:(Tree.leaf t 7) p')

let test_proof_decode_truncated () =
  let t = Tree.of_leaves (leaves 10) in
  let b = Proof.encode (Tree.prove t 7) in
  let cut = Bytes.sub b 0 (Bytes.length b - 5) in
  check_bool "truncated rejected" true (Result.is_error (Proof.decode cut 0))

let prop_proof_sound_random_trees =
  QCheck.Test.make ~name:"proofs verify on random trees" ~count:50
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Zkflow_util.Rng.create (Int64.of_int seed) in
      let data = Array.init n (fun _ -> Zkflow_util.Rng.bytes rng 20) in
      let t = Tree.of_leaves data in
      let i = seed mod n in
      Proof.verify_data ~root:(Tree.root t) data.(i) (Tree.prove t i))

(* ---- Multiproof ---- *)

let test_multiproof_basic () =
  let t = Tree.of_leaves (leaves 16) in
  let idx = [ 1; 5; 6; 12 ] in
  let mp = Multiproof.prove t idx in
  let lh = Array.of_list (List.map (Tree.leaf t) idx) in
  check_bool "verifies" true (Multiproof.verify ~root:(Tree.root t) mp lh)

let test_multiproof_all_leaves_needs_no_helpers () =
  let t = Tree.of_leaves (leaves 8) in
  let idx = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let mp = Multiproof.prove t idx in
  check_int "no helpers" 0 (Multiproof.helper_count mp);
  let lh = Array.of_list (List.map (Tree.leaf t) idx) in
  check_bool "verifies" true (Multiproof.verify ~root:(Tree.root t) mp lh)

let test_multiproof_smaller_than_individual () =
  let t = Tree.of_leaves (leaves 64) in
  let idx = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let mp = Multiproof.prove t idx in
  let individual = List.length idx * Tree.depth t in
  check_bool "dedup effective" true (Multiproof.helper_count mp < individual)

let test_multiproof_rejects_wrong_leaf () =
  let t = Tree.of_leaves (leaves 16) in
  let idx = [ 2; 9 ] in
  let mp = Multiproof.prove t idx in
  let lh = [| Tree.leaf t 2; Tree.leaf t 10 |] in
  check_bool "wrong leaf" false (Multiproof.verify ~root:(Tree.root t) mp lh)

let test_multiproof_rejects_count_mismatch () =
  let t = Tree.of_leaves (leaves 16) in
  let mp = Multiproof.prove t [ 2; 9 ] in
  check_bool "count mismatch" false
    (Multiproof.verify ~root:(Tree.root t) mp [| Tree.leaf t 2 |])

let test_multiproof_input_validation () =
  let t = Tree.of_leaves (leaves 8) in
  Alcotest.check_raises "empty" (Invalid_argument "Multiproof.prove: empty index set")
    (fun () -> ignore (Multiproof.prove t []));
  Alcotest.check_raises "dup" (Invalid_argument "Multiproof.prove: duplicate indices")
    (fun () -> ignore (Multiproof.prove t [ 1; 1 ]));
  Alcotest.check_raises "oob" (Invalid_argument "Multiproof.prove: index out of range")
    (fun () -> ignore (Multiproof.prove t [ 8 ]))

let test_multiproof_encode_decode () =
  let t = Tree.of_leaves (leaves 20) in
  let mp = Multiproof.prove t [ 0; 7; 19 ] in
  let b = Multiproof.encode mp in
  match Multiproof.decode b 0 with
  | Error e -> Alcotest.fail e
  | Ok (mp', off) ->
    check_int "consumed" (Bytes.length b) off;
    let lh = Array.of_list (List.map (Tree.leaf t) [ 0; 7; 19 ]) in
    check_bool "verifies" true (Multiproof.verify ~root:(Tree.root t) mp' lh)

let prop_multiproof_random_subsets =
  QCheck.Test.make ~name:"multiproof on random subsets" ~count:60
    QCheck.(pair (int_range 1 50) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Zkflow_util.Rng.create (Int64.of_int seed) in
      let data = Array.init n (fun _ -> Zkflow_util.Rng.bytes rng 16) in
      let t = Tree.of_leaves data in
      let k = 1 + Zkflow_util.Rng.int rng n in
      let all = Array.init n Fun.id in
      Zkflow_util.Rng.shuffle rng all;
      let idx = Array.to_list (Array.sub all 0 k) in
      let mp = Multiproof.prove t idx in
      let lh =
        Array.of_list (List.map (Tree.leaf t) (Multiproof.indices mp))
      in
      Multiproof.verify ~root:(Tree.root t) mp lh)

(* ---- Smt ---- *)

let kv i = (Bytes.of_string (Printf.sprintf "flow-%d" i), Bytes.of_string (Printf.sprintf "val-%d" i))

let test_smt_empty_root_stable () =
  Alcotest.check digest "fresh trees agree" (Smt.root (Smt.create ())) Smt.empty_root

let test_smt_set_find () =
  let t = Smt.create () in
  let k, v = kv 1 in
  Smt.set t ~key:k v;
  Alcotest.(check (option bytes)) "found" (Some v) (Smt.find t ~key:k);
  Alcotest.(check (option bytes)) "other key absent" None
    (Smt.find t ~key:(Bytes.of_string "other"))

let test_smt_overwrite () =
  let t = Smt.create () in
  let k, v = kv 1 in
  Smt.set t ~key:k v;
  let r1 = Smt.root t in
  Smt.set t ~key:k (Bytes.of_string "new");
  check_bool "root changed" false (D.equal r1 (Smt.root t));
  Alcotest.(check (option bytes)) "new value" (Some (Bytes.of_string "new"))
    (Smt.find t ~key:k);
  check_int "cardinal 1" 1 (Smt.cardinal t)

let test_smt_remove_restores_root () =
  let t = Smt.create () in
  let k, v = kv 1 in
  Smt.set t ~key:k v;
  Smt.remove t ~key:k;
  Alcotest.check digest "back to empty" Smt.empty_root (Smt.root t);
  check_int "cardinal 0" 0 (Smt.cardinal t)

let test_smt_order_independence () =
  let t1 = Smt.create () and t2 = Smt.create () in
  let pairs = List.init 20 kv in
  List.iter (fun (k, v) -> Smt.set t1 ~key:k v) pairs;
  List.iter (fun (k, v) -> Smt.set t2 ~key:k v) (List.rev pairs);
  Alcotest.check digest "same root" (Smt.root t1) (Smt.root t2)

let test_smt_membership_proof () =
  let t = Smt.create () in
  List.iter (fun (k, v) -> Smt.set t ~key:k v) (List.init 10 kv);
  let k, v = kv 3 in
  let p = Smt.prove t ~key:k in
  check_bool "member" true (Smt.verify_member ~root:(Smt.root t) ~key:k ~value:v p);
  check_bool "wrong value" false
    (Smt.verify_member ~root:(Smt.root t) ~key:k ~value:(Bytes.of_string "x") p);
  check_bool "not absent" false (Smt.verify_absent ~root:(Smt.root t) ~key:k p)

let test_smt_non_membership_proof () =
  let t = Smt.create () in
  List.iter (fun (k, v) -> Smt.set t ~key:k v) (List.init 10 kv);
  let ghost = Bytes.of_string "no-such-flow" in
  let p = Smt.prove t ~key:ghost in
  check_bool "absent" true (Smt.verify_absent ~root:(Smt.root t) ~key:ghost p);
  check_bool "not member" false
    (Smt.verify_member ~root:(Smt.root t) ~key:ghost ~value:(Bytes.of_string "v") p)

let test_smt_proof_bound_to_key () =
  let t = Smt.create () in
  let k1, v1 = kv 1 and k2, _ = kv 2 in
  Smt.set t ~key:k1 v1;
  let p = Smt.prove t ~key:k1 in
  check_bool "key mismatch rejected" false
    (Smt.verify_member ~root:(Smt.root t) ~key:k2 ~value:v1 p)

let test_smt_stale_proof_fails_after_update () =
  let t = Smt.create () in
  let k1, v1 = kv 1 and k2, v2 = kv 2 in
  Smt.set t ~key:k1 v1;
  let p = Smt.prove t ~key:k1 in
  let old_root = Smt.root t in
  Smt.set t ~key:k2 v2;
  check_bool "valid against old root" true
    (Smt.verify_member ~root:old_root ~key:k1 ~value:v1 p);
  (* The sibling path changed with overwhelming probability; the stale
     proof must not verify against the new root unless paths are
     disjoint — re-prove instead. *)
  let fresh = Smt.prove t ~key:k1 in
  check_bool "fresh proof works" true
    (Smt.verify_member ~root:(Smt.root t) ~key:k1 ~value:v1 fresh)

let test_smt_fold () =
  let t = Smt.create () in
  List.iter (fun (k, v) -> Smt.set t ~key:k v) (List.init 5 kv);
  let n = Smt.fold (fun _ _ acc -> acc + 1) t 0 in
  check_int "visits all" 5 n

let prop_smt_insert_remove_roundtrip =
  QCheck.Test.make ~name:"insert+remove returns to prior root" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Zkflow_util.Rng.create (Int64.of_int seed) in
      let t = Smt.create () in
      for i = 0 to 9 do
        let k, v = kv i in
        ignore (Zkflow_util.Rng.int rng 2);
        Smt.set t ~key:k v
      done;
      let r = Smt.root t in
      let k = Bytes.of_string "transient" in
      Smt.set t ~key:k (Zkflow_util.Rng.bytes rng 8);
      Smt.remove t ~key:k;
      D.equal r (Smt.root t))

(* ---- Incremental ---- *)

let lh i = Tree.leaf_hash (Bytes.of_string (Printf.sprintf "leaf-%d" i))
let lh' tag i = Tree.leaf_hash (Bytes.of_string (Printf.sprintf "%s-%d" tag i))
let scratch_root hs = Tree.root (Tree.of_leaf_hashes hs)

let test_incr_matches_scratch () =
  List.iter
    (fun n ->
      let hs = Array.init n lh in
      let inc = Incremental.of_tree (Tree.of_leaf_hashes hs) in
      let hs' = Array.copy hs in
      let rec upd i =
        if i < n then begin
          hs'.(i) <- lh' "upd" i;
          Incremental.set_leaf inc i hs'.(i);
          upd (i + 3)
        end
      in
      upd 0;
      Alcotest.check digest
        (Printf.sprintf "n=%d" n)
        (scratch_root hs') (Incremental.root inc))
    [ 1; 2; 3; 4; 5; 8; 9; 16; 17; 33; 64; 100 ]

let test_incr_append_growth () =
  (* Appends crossing several power-of-two boundaries; root checked
     against a from-scratch build after every single append. *)
  let inc = Incremental.create () in
  let acc = ref [] in
  for i = 0 to 40 do
    Incremental.append inc (lh i);
    acc := lh i :: !acc;
    let hs = Array.of_list (List.rev !acc) in
    Alcotest.check digest
      (Printf.sprintf "size %d" (i + 1))
      (scratch_root hs) (Incremental.root inc)
  done

let test_incr_mixed_batch () =
  let n = 20 in
  let hs = Array.init n lh in
  let inc = Incremental.of_tree (Tree.of_leaf_hashes hs) in
  (* empty flush is a no-op *)
  Alcotest.check digest "empty batch" (scratch_root hs) (Incremental.root inc);
  let expect = Array.append (Array.copy hs) (Array.init 13 (lh' "new")) in
  expect.(2) <- lh' "upd" 2;
  expect.(19) <- lh' "upd" 19;
  Incremental.set_leaf inc 2 expect.(2);
  Incremental.set_leaf inc 19 expect.(19);
  for i = 0 to 12 do
    Incremental.append inc expect.(n + i)
  done;
  Alcotest.check digest "mixed batch" (scratch_root expect) (Incremental.root inc);
  (* redundant write of the same digest is a no-op *)
  Incremental.set_leaf inc 2 expect.(2);
  Alcotest.check digest "idempotent set" (scratch_root expect) (Incremental.root inc)

let test_incr_commit_immutable () =
  let hs = Array.init 10 lh in
  let inc = Incremental.of_tree (Tree.of_leaf_hashes hs) in
  Incremental.set_leaf inc 3 (lh' "x" 3);
  let t1 = Incremental.commit inc in
  let r1 = Tree.root t1 in
  (* keep mutating after commit: the committed tree must not move *)
  Incremental.set_leaf inc 7 (lh' "y" 7);
  Incremental.append inc (lh' "z" 0);
  ignore (Incremental.root inc);
  Alcotest.check digest "committed tree unchanged" r1 (Tree.root t1);
  check_bool "proof from committed tree" true
    (Proof.verify ~root:r1 ~leaf_hash:(Tree.leaf t1 3) (Tree.prove t1 3));
  check_bool "incremental moved on" false (D.equal r1 (Incremental.root inc))

let test_incr_stats () =
  let n = 64 in
  let inc = Incremental.of_tree (Tree.of_leaf_hashes (Array.init n lh)) in
  Incremental.set_leaf inc 0 (lh' "u" 0);
  ignore (Incremental.root inc);
  let s = Incremental.last_stats inc in
  (* one dirty leaf in a 64-leaf tree: exactly the 6 root-path nodes *)
  check_int "rehashed = depth" 6 s.Incremental.rehashed;
  check_bool "reused > 0" true (s.Incremental.reused > 0)

let test_snapshot_roundtrip () =
  List.iter
    (fun n ->
      let t = Tree.of_leaves (leaves n) in
      match Tree.of_snapshot (Tree.to_snapshot t) with
      | Error e -> Alcotest.fail e
      | Ok t' ->
        check_int "size" (Tree.size t) (Tree.size t');
        Alcotest.check digest "root" (Tree.root t) (Tree.root t');
        check_bool "proof from restored tree" true
          (Proof.verify ~root:(Tree.root t)
             ~leaf_hash:(Tree.leaf t' 0)
             (Tree.prove t' 0)))
    [ 1; 2; 3; 5; 8; 13 ]

let test_snapshot_rejects_garbage () =
  let b = Tree.to_snapshot (Tree.of_leaves (leaves 5)) in
  check_bool "truncated" true
    (Result.is_error (Tree.of_snapshot (Bytes.sub b 0 (Bytes.length b - 1))));
  check_bool "extended" true
    (Result.is_error (Tree.of_snapshot (Bytes.cat b (Bytes.of_string "x"))));
  check_bool "empty" true (Result.is_error (Tree.of_snapshot Bytes.empty))

let prop_incr_random_ops =
  QCheck.Test.make ~name:"incremental = scratch under random op sequences"
    ~count:60
    QCheck.(pair (int_range 0 24) (int_range 0 100_000))
    (fun (n0, seed) ->
      let rng = Zkflow_util.Rng.create (Int64.of_int seed) in
      let model = ref (Array.init n0 lh) in
      let inc = Incremental.of_tree (Tree.of_leaf_hashes !model) in
      let ok = ref true in
      for s = 0 to 29 do
        let h = Tree.leaf_hash (Zkflow_util.Rng.bytes rng 16) in
        let m = Array.length !model in
        if m = 0 || Zkflow_util.Rng.int rng 3 = 0 then begin
          model := Array.append !model [| h |];
          Incremental.append inc h
        end
        else begin
          let i = Zkflow_util.Rng.int rng m in
          !model.(i) <- h;
          Incremental.set_leaf inc i h
        end;
        (* flush at irregular points so batches of varying shape merge *)
        if s mod 7 = 0 then
          ok :=
            !ok
            && D.equal (Tree.root (Tree.of_leaf_hashes !model)) (Incremental.root inc)
      done;
      !ok
      && D.equal (Tree.root (Tree.of_leaf_hashes !model)) (Incremental.root inc))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "zkflow_merkle"
    [
      ( "tree",
        [
          Alcotest.test_case "deterministic root" `Quick test_tree_deterministic_root;
          Alcotest.test_case "content-sensitive" `Quick test_tree_root_depends_on_content;
          Alcotest.test_case "order-sensitive" `Quick test_tree_root_depends_on_order;
          Alcotest.test_case "sizes and depth" `Quick test_tree_sizes_and_depth;
          Alcotest.test_case "padding" `Quick test_tree_padding_distinguishes_sizes;
          Alcotest.test_case "two-leaf combine" `Quick test_tree_two_leaf_root_is_combine;
          Alcotest.test_case "root_of_leaf_hashes" `Quick test_tree_root_of_leaf_hashes_agrees;
          Alcotest.test_case "leaf accessor" `Quick test_tree_leaf_accessor;
        ] );
      ( "proof",
        [
          Alcotest.test_case "roundtrip all indices" `Quick test_proof_roundtrip_all_indices;
          Alcotest.test_case "rejects wrong leaf" `Quick test_proof_rejects_wrong_leaf;
          Alcotest.test_case "rejects wrong root" `Quick test_proof_rejects_wrong_root;
          Alcotest.test_case "rejects tampered path" `Quick test_proof_rejects_tampered_sibling;
          Alcotest.test_case "encode/decode" `Quick test_proof_encode_decode;
          Alcotest.test_case "decode truncated" `Quick test_proof_decode_truncated;
          q prop_proof_sound_random_trees;
        ] );
      ( "multiproof",
        [
          Alcotest.test_case "basic" `Quick test_multiproof_basic;
          Alcotest.test_case "all leaves, no helpers" `Quick test_multiproof_all_leaves_needs_no_helpers;
          Alcotest.test_case "dedup vs individual" `Quick test_multiproof_smaller_than_individual;
          Alcotest.test_case "rejects wrong leaf" `Quick test_multiproof_rejects_wrong_leaf;
          Alcotest.test_case "rejects count mismatch" `Quick test_multiproof_rejects_count_mismatch;
          Alcotest.test_case "input validation" `Quick test_multiproof_input_validation;
          Alcotest.test_case "encode/decode" `Quick test_multiproof_encode_decode;
          q prop_multiproof_random_subsets;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "dirty updates match scratch" `Quick test_incr_matches_scratch;
          Alcotest.test_case "append growth" `Quick test_incr_append_growth;
          Alcotest.test_case "mixed batch + idempotence" `Quick test_incr_mixed_batch;
          Alcotest.test_case "commit immutability" `Quick test_incr_commit_immutable;
          Alcotest.test_case "rehash stats" `Quick test_incr_stats;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "snapshot rejects garbage" `Quick test_snapshot_rejects_garbage;
          q prop_incr_random_ops;
        ] );
      ( "smt",
        [
          Alcotest.test_case "empty root stable" `Quick test_smt_empty_root_stable;
          Alcotest.test_case "set/find" `Quick test_smt_set_find;
          Alcotest.test_case "overwrite" `Quick test_smt_overwrite;
          Alcotest.test_case "remove restores root" `Quick test_smt_remove_restores_root;
          Alcotest.test_case "order independence" `Quick test_smt_order_independence;
          Alcotest.test_case "membership proof" `Quick test_smt_membership_proof;
          Alcotest.test_case "non-membership proof" `Quick test_smt_non_membership_proof;
          Alcotest.test_case "proof bound to key" `Quick test_smt_proof_bound_to_key;
          Alcotest.test_case "stale proof semantics" `Quick test_smt_stale_proof_fails_after_update;
          Alcotest.test_case "fold" `Quick test_smt_fold;
          q prop_smt_insert_remove_roundtrip;
        ] );
    ]
