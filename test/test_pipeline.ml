(* End-to-end pipeline tests: service + board + client, and the
   adversarial scenarios of Section 5 / Figure 3. *)

module D = Zkflow_hash.Digest32
module Record = Zkflow_netflow.Record
module Gen = Zkflow_netflow.Gen
module Db = Zkflow_store.Db
module Board = Zkflow_commitlog.Board
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let digest = Alcotest.testable D.pp D.equal
let params = Zkflow_zkproof.Params.make ~queries:8

let deployment () = Zkflow.deploy ~proof_params:params ()

let load_epoch db ~epoch ~routers ~per_router ~seed =
  for r = 0 to routers - 1 do
    let records =
      Gen.records
        (Zkflow_util.Rng.create (Int64.of_int (seed + (1000 * r) + epoch)))
        Gen.default_profile ~router_id:r ~count:per_router
    in
    Array.iter
      (fun rc ->
        Db.insert db
          (Record.make ~key:rc.Record.key ~first_ts:(epoch * 5000)
             ~last_ts:((epoch * 5000) + 100) ~router_id:r rc.Record.metrics))
      records
  done

let test_service_single_epoch () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:4 ~per_router:3 ~seed:1;
  (match Prover_service.publish_epoch d.Zkflow.service ~epoch:0 with
   | Ok r ->
     check_int "4 commitments" 4 (List.length r.Prover_service.published);
     check_int "none skipped" 0 (List.length r.Prover_service.skipped)
   | Error e -> Alcotest.fail e);
  match Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0 with
  | Error e -> Alcotest.fail e
  | Ok round ->
    check_int "12 flows" 12 (Clog.length round.Aggregate.clog);
    Alcotest.check digest "service state"
      (Clog.root round.Aggregate.clog)
      (Prover_service.latest_root d.Zkflow.service)

let test_service_multi_epoch_chain () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:3 ~seed:2;
  load_epoch d.Zkflow.db ~epoch:1 ~routers:2 ~per_router:3 ~seed:3;
  let run epoch =
    match Prover_service.publish_epoch d.Zkflow.service ~epoch with
    | Error e -> Alcotest.fail e
    | Ok _ -> (
      match Prover_service.aggregate_epoch d.Zkflow.service ~epoch with
      | Error e -> Alcotest.fail e
      | Ok r -> r)
  in
  let r0 = run 0 in
  let r1 = run 1 in
  Alcotest.check digest "rounds chain"
    r0.Aggregate.journal.Guests.new_root r1.Aggregate.journal.Guests.prev_root;
  check_int "history" 2 (List.length (Prover_service.rounds d.Zkflow.service))

let test_service_requires_published_commitments () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:2 ~seed:4;
  match Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0 with
  | Error e -> check_bool "mentions commitment" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "aggregated without published commitments"

let test_client_verifies_full_chain () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:3 ~seed:5;
  load_epoch d.Zkflow.db ~epoch:1 ~routers:2 ~per_router:3 ~seed:6;
  let rounds =
    List.map
      (fun epoch ->
        ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch));
        match Prover_service.aggregate_epoch d.Zkflow.service ~epoch with
        | Ok r -> (epoch, r.Aggregate.receipt)
        | Error e -> Alcotest.fail e)
      [ 0; 1 ]
  in
  match Verifier_client.verify_chain ~board:d.Zkflow.board rounds with
  | Error e -> Alcotest.fail e
  | Ok chain ->
    check_int "2 rounds" 2 chain.Verifier_client.round_count;
    Alcotest.check digest "final root"
      (Prover_service.latest_root d.Zkflow.service)
      chain.Verifier_client.final_root

let test_client_query_roundtrip () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:4 ~seed:7;
  ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch:0));
  let round = Result.get_ok (Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0) in
  match Prover_service.query d.Zkflow.service Query.flow_count with
  | Error e -> Alcotest.fail e
  | Ok row -> (
    match
      Verifier_client.verify_query
        ~expected_root:round.Aggregate.journal.Guests.new_root row.Query.receipt
    with
    | Error e -> Alcotest.fail e
    | Ok j -> check_int "count = clog size" (Clog.length round.Aggregate.clog) j.Guests.result)

let test_client_rejects_unpublished_router () =
  (* A round whose guest consumed a digest that was never on the board:
     simulate by verifying against a different board. *)
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:2 ~seed:8;
  ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch:0));
  let round = Result.get_ok (Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0) in
  let empty_board = Board.create () in
  match
    Verifier_client.verify_round ~board:empty_board ~epoch:0 round.Aggregate.receipt
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted digests absent from the board"

let test_client_sla_predicate () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:4 ~seed:9;
  ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch:0));
  let round = Result.get_ok (Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0) in
  let q =
    { Guests.predicate = Guests.match_any; op = Guests.Sum; metric = Guests.Losses }
  in
  let row = Result.get_ok (Prover_service.query d.Zkflow.service q) in
  match
    Verifier_client.check_sla
      ~expected_root:round.Aggregate.journal.Guests.new_root row.Query.receipt
      ~predicate:(fun ~result ~matches -> matches > 0 && result >= 0)
  with
  | Ok verdict -> check_bool "sla evaluated" true verdict
  | Error e -> Alcotest.fail e

let test_client_historical_query () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:3 ~seed:20;
  load_epoch d.Zkflow.db ~epoch:1 ~routers:2 ~per_router:3 ~seed:21;
  let rounds =
    List.map
      (fun epoch ->
        ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch));
        Result.get_ok (Prover_service.aggregate_epoch d.Zkflow.service ~epoch))
      [ 0; 1 ]
  in
  let round0 = List.nth rounds 0 in
  (* query against the historical (round 0) state *)
  match Prover_service.query_at d.Zkflow.service ~round:0 Query.flow_count with
  | Error e -> Alcotest.fail e
  | Ok row -> (
    match
      Verifier_client.verify_query
        ~expected_root:round0.Aggregate.journal.Guests.new_root row.Query.receipt
    with
    | Error e -> Alcotest.fail e
    | Ok j ->
      check_int "round-0 flow count" (Clog.length round0.Aggregate.clog) j.Guests.result;
      (* and it must NOT verify against the latest root *)
      check_bool "stale vs latest rejected" true
        (Result.is_error
           (Verifier_client.verify_query
              ~expected_root:(Prover_service.latest_root d.Zkflow.service)
              row.Query.receipt));
      check_bool "missing round" true
        (Result.is_error
           (Prover_service.query_at d.Zkflow.service ~round:9 Query.flow_count)))

let test_service_save_load () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:3 ~seed:30;
  load_epoch d.Zkflow.db ~epoch:1 ~routers:2 ~per_router:3 ~seed:31;
  ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch:0));
  ignore (Result.get_ok (Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0));
  let saved = Prover_service.save d.Zkflow.service in
  (* "restart": a fresh service resumes from the snapshot and continues
     with epoch 1, chaining from the restored root *)
  match Prover_service.load ~proof_params:params ~db:d.Zkflow.db ~board:d.Zkflow.board saved with
  | Error e -> Alcotest.fail e
  | Ok restored ->
    Alcotest.check digest "state restored"
      (Prover_service.latest_root d.Zkflow.service)
      (Prover_service.latest_root restored);
    check_int "history restored" 1 (List.length (Prover_service.rounds restored));
    ignore (Result.get_ok (Prover_service.publish_epoch restored ~epoch:1));
    let r1 = Result.get_ok (Prover_service.aggregate_epoch restored ~epoch:1) in
    (* the whole chain (old round from snapshot + new round) verifies *)
    let receipts =
      List.mapi (fun i r -> (i, r.Aggregate.receipt)) (Prover_service.rounds restored)
    in
    ignore r1;
    (match Verifier_client.verify_chain ~board:d.Zkflow.board receipts with
     | Ok chain -> check_int "2 rounds verified" 2 chain.Verifier_client.round_count
     | Error e -> Alcotest.fail e);
    (* malformed snapshots rejected *)
    let garbage = Bytes.of_string "not a snapshot" in
    check_bool "garbage rejected" true
      (Result.is_error
         (Prover_service.load ~db:d.Zkflow.db ~board:d.Zkflow.board garbage))

let test_selective_disclosure () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:5 ~seed:40;
  ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch:0));
  let round = Result.get_ok (Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0) in
  let root = round.Aggregate.journal.Guests.new_root in
  let entries = Clog.entries round.Aggregate.clog in
  let keys = [ entries.(1).Clog.key; entries.(7).Clog.key ] in
  match Prover_service.disclose d.Zkflow.service ~keys with
  | Error e -> Alcotest.fail e
  | Ok disclosure -> (
    match Verifier_client.verify_disclosure ~expected_root:root disclosure with
    | Error e -> Alcotest.fail e
    | Ok verified ->
      check_int "two entries" 2 (List.length verified);
      check_bool "right flows" true
        (List.for_all
           (fun (e : Clog.entry) ->
             List.exists (Zkflow_netflow.Flowkey.equal e.Clog.key) keys)
           verified);
      (* doctored metric rejected *)
      let forged =
        {
          disclosure with
          Prover_service.entries =
            List.map
              (fun (e : Clog.entry) ->
                { e with Clog.metrics = { e.Clog.metrics with Record.losses = 0 } })
              disclosure.Prover_service.entries;
        }
      in
      check_bool "forged entries rejected" true
        (Result.is_error (Verifier_client.verify_disclosure ~expected_root:root forged));
      (* unknown flow refused *)
      let ghost =
        (Gen.records (Zkflow_util.Rng.create 999L) Gen.default_profile ~router_id:9
           ~count:1).(0)
          .Record.key
      in
      check_bool "absent flow refused" true
        (Result.is_error (Prover_service.disclose d.Zkflow.service ~keys:[ ghost ])))

let test_query_flows_batched () =
  let d = deployment () in
  load_epoch d.Zkflow.db ~epoch:0 ~routers:2 ~per_router:6 ~seed:41;
  ignore (Result.get_ok (Prover_service.publish_epoch d.Zkflow.service ~epoch:0));
  let round = Result.get_ok (Prover_service.aggregate_epoch d.Zkflow.service ~epoch:0) in
  let root = round.Aggregate.journal.Guests.new_root in
  let entries = Clog.entries round.Aggregate.clog in
  let keys = [ entries.(0).Clog.key; entries.(3).Clog.key; entries.(5).Clog.key ] in
  match Prover_service.query_flows d.Zkflow.service ~metric:Guests.Packets keys with
  | Error e -> Alcotest.fail e
  | Ok flows -> (
    Alcotest.check digest "answered against the round root" root flows.Query.root;
    check_int "three rows" 3 (List.length flows.Query.rows);
    match Verifier_client.verify_flows ~expected_root:root flows with
    | Error e -> Alcotest.fail e
    | Ok rows ->
      List.iter
        (fun (r : Query.flow_row) ->
          check_int
            (Printf.sprintf "value of row %d" r.Query.index)
            r.Query.entry.Clog.metrics.Record.packets r.Query.value)
        rows;
      (* tampered value rejected: bump one row's value and total *)
      let forged_rows =
        List.map
          (fun (r : Query.flow_row) ->
            if r.Query.index = (List.hd rows).Query.index then
              { r with Query.value = r.Query.value + 1 }
            else r)
          flows.Query.rows
      in
      check_bool "forged value rejected" true
        (Result.is_error
           (Verifier_client.verify_flows ~expected_root:root
              { flows with Query.rows = forged_rows; total = flows.Query.total + 1 }));
      (* wrong total alone rejected *)
      check_bool "forged total rejected" true
        (Result.is_error
           (Verifier_client.verify_flows ~expected_root:root
              { flows with Query.total = flows.Query.total + 1 }));
      (* a different root does not authenticate *)
      check_bool "wrong root rejected" true
        (Result.is_error
           (Verifier_client.verify_flows ~expected_root:Clog.empty_root flows));
      (* duplicate and absent keys refused at proving time *)
      check_bool "duplicate keys refused" true
        (Result.is_error
           (Prover_service.query_flows d.Zkflow.service ~metric:Guests.Packets
              [ entries.(0).Clog.key; entries.(0).Clog.key ]));
      let ghost =
        (Gen.records (Zkflow_util.Rng.create 998L) Gen.default_profile ~router_id:9
           ~count:1).(0)
          .Record.key
      in
      check_bool "absent key refused" true
        (Result.is_error
           (Prover_service.query_flows d.Zkflow.service ~metric:Guests.Packets
              [ ghost ]));
      check_bool "empty keys refused" true
        (Result.is_error
           (Prover_service.query_flows d.Zkflow.service ~metric:Guests.Packets [])))

(* ---- simulate_and_prove (the quickstart path) ---- *)

let test_simulation_end_to_end () =
  match Zkflow.simulate_and_prove ~routers:3 ~flows:10 ~rate_pps:100.0 ~duration_ms:2000 () with
  | Error e -> Alcotest.fail e
  | Ok sim ->
    check_bool "made packets" true (sim.Zkflow.packets > 50);
    check_bool "made records" true (sim.Zkflow.records > 0);
    check_bool "proved rounds" true (List.length sim.Zkflow.rounds >= 1);
    (match Zkflow.verify_simulation sim with
     | Ok chain ->
       check_int "all rounds verified" (List.length sim.Zkflow.rounds)
         chain.Verifier_client.round_count
     | Error e -> Alcotest.fail e)

(* ---- tamper scenarios ---- *)

let test_all_tampering_detected () =
  List.iter
    (fun o ->
      check_bool
        (Printf.sprintf "%s detected" o.Tamper.scenario)
        true o.Tamper.detected)
    (Tamper.all ())

let () =
  Alcotest.run "zkflow_pipeline"
    [
      ( "service",
        [
          Alcotest.test_case "single epoch" `Quick test_service_single_epoch;
          Alcotest.test_case "multi-epoch chain" `Quick test_service_multi_epoch_chain;
          Alcotest.test_case "requires published commitments" `Quick
            test_service_requires_published_commitments;
        ] );
      ( "client",
        [
          Alcotest.test_case "verifies full chain" `Quick test_client_verifies_full_chain;
          Alcotest.test_case "query roundtrip" `Quick test_client_query_roundtrip;
          Alcotest.test_case "rejects unpublished router" `Quick
            test_client_rejects_unpublished_router;
          Alcotest.test_case "sla predicate" `Quick test_client_sla_predicate;
          Alcotest.test_case "historical query" `Quick test_client_historical_query;
          Alcotest.test_case "save/load" `Quick test_service_save_load;
          Alcotest.test_case "selective disclosure" `Quick test_selective_disclosure;
          Alcotest.test_case "batched flows query" `Quick test_query_flows_batched;
        ] );
      ( "simulation",
        [ Alcotest.test_case "end to end" `Slow test_simulation_end_to_end ] );
      ( "tamper",
        [ Alcotest.test_case "all scenarios detected" `Slow test_all_tampering_detected ] );
    ]
