(* Telemetry subsystem tests.

   The load-bearing property is the differential one: proving with
   telemetry enabled yields bit-identical receipts and CLog roots to
   proving with it disabled — observation never changes what is
   proven. The rest covers the metric/span primitives, the exporters
   (parsed back through Jsonx so escaping bugs fail here, not in
   Perfetto), and the restored-round marker of the service state. *)

module Obs = Zkflow_obs.Obs
module Metric = Zkflow_obs.Metric
module Span = Zkflow_obs.Span
module Export = Zkflow_obs.Export
module Jsonx = Zkflow_util.Jsonx
module D = Zkflow_hash.Digest32
module Gen = Zkflow_netflow.Gen
module Export_nf = Zkflow_netflow.Export
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let digest = Alcotest.testable D.pp D.equal
let params = Zkflow_zkproof.Params.make ~queries:8

(* ---- differential: telemetry never changes proof outputs ---- *)

let bench_batches () =
  let rng = Zkflow_util.Rng.create 0x0b5e7L in
  let records = Gen.records rng Gen.default_profile ~router_id:0 ~count:16 in
  [ (Export_nf.batch_hash records, records) ]

let prove_once () =
  match Aggregate.prove_round ~params ~prev:Clog.empty (bench_batches ()) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_differential_receipts () =
  Obs.disable ();
  let off = prove_once () in
  let on = Obs.with_enabled prove_once in
  check_bool "receipt bit-identical" true
    (Zkflow_zkproof.Receipt.encode off.Aggregate.receipt
    = Zkflow_zkproof.Receipt.encode on.Aggregate.receipt);
  Alcotest.check digest "clog root identical" (Clog.root off.Aggregate.clog)
    (Clog.root on.Aggregate.clog);
  Alcotest.check digest "journal new_root identical"
    off.Aggregate.journal.Guests.new_root on.Aggregate.journal.Guests.new_root;
  check_int "cycles identical" off.Aggregate.cycles on.Aggregate.cycles

(* ---- metric primitives ---- *)

let test_counter_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Metric.counter "test.noop" in
  Metric.add c 41;
  check_int "disabled add ignored" 0 (Metric.value c);
  check_int "disabled span start is 0" 0 (Span.start ())

let test_counter_multidomain () =
  Obs.with_enabled (fun () ->
      let c = Metric.counter "test.multidomain" in
      let workers =
        Array.init 3 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 1000 do
                  Metric.add c 1
                done))
      in
      Array.iter Domain.join workers;
      Metric.add c 5;
      check_int "cells sum across domains" 3005 (Metric.value c))

let test_histogram_buckets () =
  Obs.with_enabled (fun () ->
      let h = Metric.histogram "test.hist" in
      List.iter (Metric.observe h) [ 1; 2; 3; 1000; 0 ];
      let s = Metric.snapshot h in
      check_int "count" 5 s.Metric.count;
      check_int "sum" 1006 s.Metric.sum;
      check_int "max" 1000 s.Metric.max_value;
      (* cumulative: the last bucket holds everything *)
      match List.rev s.Metric.buckets with
      | (_, n) :: _ -> check_int "cumulative tail" 5 n
      | [] -> Alcotest.fail "no buckets")

let test_reset_zeroes () =
  Obs.with_enabled (fun () ->
      let c = Metric.counter "test.reset" in
      Metric.add c 7;
      ignore (Span.with_span "test.reset_span" (fun () -> ()));
      Obs.reset ();
      check_int "counter zeroed" 0 (Metric.value c);
      check_int "spans dropped" 0 (List.length (Span.events ())))

(* ---- spans: nesting and parent reconstruction ---- *)

let test_span_parents () =
  Obs.with_enabled (fun () ->
      Span.with_span "outer" (fun () ->
          Span.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1))));
  let events = Span.events () in
  check_int "two spans" 2 (List.length events);
  let outer_idx, inner =
    match events with
    | [ a; b ] when a.Span.name = "outer" -> (0, b)
    | [ a; b ] when b.Span.name = "outer" -> (1, a)
    | _ -> Alcotest.fail "expected outer+inner"
  in
  check_int "inner's parent is outer" outer_idx inner.Span.parent

let test_span_totals () =
  Obs.with_enabled (fun () ->
      Span.with_span "t" (fun () -> ());
      Span.with_span "t" (fun () -> ()));
  match List.assoc_opt "t" (Span.totals ()) with
  | Some (count, total_ns) ->
    check_int "count" 2 count;
    check_bool "total >= 0" true (total_ns >= 0)
  | None -> Alcotest.fail "span total missing"

(* ---- exporters ---- *)

(* Force a real pool: on a single-core box the default is jobs=1 and
   every region would take the sequential path, leaving no pool.region
   span to assert on. *)
let with_jobs j f =
  let module Pool = Zkflow_parallel.Pool in
  let saved = Pool.jobs () in
  Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

let run_traced_round () =
  with_jobs 2 (fun () ->
      Obs.reset ();
      Obs.enable ();
      let r = prove_once () in
      Obs.disable ();
      r)

let test_trace_json_schema () =
  ignore (run_traced_round ());
  let trace = Export.trace_json () in
  let v =
    match Jsonx.parse trace with
    | Ok v -> v
    | Error e -> Alcotest.fail ("trace does not parse: " ^ e)
  in
  let events =
    match v with Jsonx.Arr l -> l | _ -> Alcotest.fail "trace not an array"
  in
  check_bool "has events" true (events <> []);
  let names = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          check_bool (Printf.sprintf "event has %S" k) true
            (Jsonx.member k e <> None))
        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
      match Jsonx.member "name" e with
      | Some (Jsonx.Str n) -> Hashtbl.replace names n ()
      | _ -> Alcotest.fail "name not a string")
    events;
  check_bool "at least 5 distinct span names" true (Hashtbl.length names >= 5);
  (* the acceptance spans: zkvm + merkle + parallel + proof layers *)
  List.iter
    (fun n ->
      check_bool (n ^ " present") true (Hashtbl.mem names n))
    [ "zkvm.run"; "merkle.build"; "pool.region"; "zkproof.prove"; "agg.round" ]

let test_stats_json_parses () =
  ignore (run_traced_round ());
  (match Jsonx.parse (Export.stats_json ()) with
  | Ok (Jsonx.Obj fields) ->
    List.iter
      (fun k -> check_bool (k ^ " present") true (List.mem_assoc k fields))
      [ "counters"; "histograms"; "spans" ]
  | Ok _ -> Alcotest.fail "stats not an object"
  | Error e -> Alcotest.fail ("stats does not parse: " ^ e));
  (* the headline counters moved *)
  let counters = Metric.counters () in
  List.iter
    (fun name ->
      match List.assoc_opt name counters with
      | Some v -> check_bool (name ^ " > 0") true (v > 0)
      | None -> Alcotest.fail (name ^ " not registered"))
    [ "sha256.compressions"; "merkle.nodes_hashed"; "zkvm.cycles" ]

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_prometheus_mentions_metrics () =
  ignore (run_traced_round ());
  let text = Export.prometheus () in
  List.iter
    (fun needle ->
      check_bool (needle ^ " in prometheus dump") true (contains ~needle text))
    [ "zkflow_sha256_compressions"; "zkflow_span_seconds_total" ]

(* ---- restored marker through save/load ---- *)

let test_restored_round_marker () =
  Obs.disable ();
  let d = Zkflow.deploy ~proof_params:params () in
  let rng = Zkflow_util.Rng.create 77L in
  let records = Gen.records rng Gen.default_profile ~router_id:0 ~count:6 in
  Array.iter (fun r -> Zkflow_store.Db.insert d.Zkflow.db r) records;
  let epoch = List.hd (Zkflow_store.Db.epochs d.Zkflow.db) in
  (match Prover_service.publish_epoch d.Zkflow.service ~epoch with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let round =
    match Prover_service.aggregate_epoch d.Zkflow.service ~epoch with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  check_bool "fresh round not restored" false round.Aggregate.restored;
  let bytes = Prover_service.save d.Zkflow.service in
  let loaded =
    match
      Prover_service.load ~proof_params:params ~db:d.Zkflow.db
        ~board:d.Zkflow.board bytes
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (match Prover_service.rounds loaded with
  | [ r ] ->
    check_bool "loaded round restored" true r.Aggregate.restored;
    Alcotest.check digest "loaded root" (Clog.root round.Aggregate.clog)
      (Clog.root r.Aggregate.clog)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 round, got %d" (List.length rs)));
  (match Prover_service.summaries loaded with
  | [ s ] ->
    check_bool "summary restored flag" true s.Prover_service.restored;
    check_int "summary entries" (Clog.length round.Aggregate.clog)
      s.Prover_service.entries
  | _ -> Alcotest.fail "expected 1 summary");
  match Jsonx.parse (Prover_service.summary_json loaded) with
  | Ok v ->
    check_bool "summary_json has rounds" true (Jsonx.member "rounds" v <> None)
  | Error e -> Alcotest.fail ("summary_json does not parse: " ^ e)

let () =
  Alcotest.run "zkflow_obs"
    [
      ( "differential",
        [
          Alcotest.test_case "receipts identical on/off" `Quick
            test_differential_receipts;
        ] );
      ( "metric",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_counter_disabled_noop;
          Alcotest.test_case "counter sums across domains" `Quick
            test_counter_multidomain;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "reset zeroes" `Quick test_reset_zeroes;
        ] );
      ( "span",
        [
          Alcotest.test_case "parent reconstruction" `Quick test_span_parents;
          Alcotest.test_case "totals" `Quick test_span_totals;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace_event schema" `Quick test_trace_json_schema;
          Alcotest.test_case "stats json" `Quick test_stats_json_parses;
          Alcotest.test_case "prometheus" `Quick test_prometheus_mentions_metrics;
        ] );
      ( "service",
        [
          Alcotest.test_case "restored marker survives save/load" `Quick
            test_restored_round_marker;
        ] );
    ]
