(* Telemetry subsystem tests.

   The load-bearing property is the differential one: proving with
   telemetry enabled yields bit-identical receipts and CLog roots to
   proving with it disabled — observation never changes what is
   proven. The rest covers the metric/span primitives, the exporters
   (parsed back through Jsonx so escaping bugs fail here, not in
   Perfetto), and the restored-round marker of the service state. *)

module Obs = Zkflow_obs.Obs
module Metric = Zkflow_obs.Metric
module Span = Zkflow_obs.Span
module Export = Zkflow_obs.Export
module Jsonx = Zkflow_util.Jsonx
module D = Zkflow_hash.Digest32
module Gen = Zkflow_netflow.Gen
module Export_nf = Zkflow_netflow.Export
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let digest = Alcotest.testable D.pp D.equal
let params = Zkflow_zkproof.Params.make ~queries:8

(* ---- differential: telemetry never changes proof outputs ---- *)

let bench_batches () =
  let rng = Zkflow_util.Rng.create 0x0b5e7L in
  let records = Gen.records rng Gen.default_profile ~router_id:0 ~count:16 in
  [ (Export_nf.batch_hash records, records) ]

let prove_once () =
  match Aggregate.prove_round ~params ~prev:Clog.empty (bench_batches ()) with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_differential_receipts () =
  Obs.disable ();
  let off = prove_once () in
  let on = Obs.with_enabled prove_once in
  check_bool "receipt bit-identical" true
    (Zkflow_zkproof.Receipt.encode off.Aggregate.receipt
    = Zkflow_zkproof.Receipt.encode on.Aggregate.receipt);
  Alcotest.check digest "clog root identical" (Clog.root off.Aggregate.clog)
    (Clog.root on.Aggregate.clog);
  Alcotest.check digest "journal new_root identical"
    off.Aggregate.journal.Guests.new_root on.Aggregate.journal.Guests.new_root;
  check_int "cycles identical" off.Aggregate.cycles on.Aggregate.cycles

(* ---- metric primitives ---- *)

let test_counter_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  let c = Metric.counter "test.noop" in
  Metric.add c 41;
  check_int "disabled add ignored" 0 (Metric.value c);
  check_int "disabled span start is 0" 0 (Span.start ())

let test_counter_multidomain () =
  Obs.with_enabled (fun () ->
      let c = Metric.counter "test.multidomain" in
      let workers =
        Array.init 3 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 1000 do
                  Metric.add c 1
                done))
      in
      Array.iter Domain.join workers;
      Metric.add c 5;
      check_int "cells sum across domains" 3005 (Metric.value c))

let test_histogram_buckets () =
  Obs.with_enabled (fun () ->
      let h = Metric.histogram "test.hist" in
      List.iter (Metric.observe h) [ 1; 2; 3; 1000; 0 ];
      let s = Metric.snapshot h in
      check_int "count" 5 s.Metric.count;
      check_int "sum" 1006 s.Metric.sum;
      check_int "max" 1000 s.Metric.max_value;
      (* cumulative: the last bucket holds everything *)
      match List.rev s.Metric.buckets with
      | (_, n) :: _ -> check_int "cumulative tail" 5 n
      | [] -> Alcotest.fail "no buckets")

let test_reset_zeroes () =
  Obs.with_enabled (fun () ->
      let c = Metric.counter "test.reset" in
      Metric.add c 7;
      ignore (Span.with_span "test.reset_span" (fun () -> ()));
      Obs.reset ();
      check_int "counter zeroed" 0 (Metric.value c);
      check_int "spans dropped" 0 (List.length (Span.events ())))

(* ---- percentiles from log2 buckets ---- *)

let test_percentile () =
  let s = Metric.snapshot_of_values (List.init 100 (fun i -> i + 1)) in
  check_int "count" 100 s.Metric.count;
  (* values 1..100: rank 50 lands in the [32,63] bucket, whose le
     bound is the reported (upper-bound) percentile *)
  check_int "p50 upper bound" 63 (Metric.percentile s 0.50);
  (* the tail bucket's bound exceeds the max, so the max wins *)
  check_int "p99 capped at max" 100 (Metric.percentile s 0.99);
  check_int "p100 is max" 100 (Metric.percentile s 1.0);
  check_int "q clamped below" 1 (Metric.percentile s (-3.0));
  let single = Metric.snapshot_of_values [ 7 ] in
  check_int "single value" 7 (Metric.percentile single 0.5);
  let empty = Metric.snapshot_of_values [] in
  check_int "empty is 0" 0 (Metric.percentile empty 0.5)

let test_percentile_all_equal () =
  (* every observation in one bucket: the cap at the observed max makes
     the estimate exact, not an upper bound *)
  let s = Metric.snapshot_of_values (List.init 10 (fun _ -> 16)) in
  check_int "count" 10 s.Metric.count;
  check_int "p50 exact" 16 (Metric.percentile s 0.50);
  check_int "p99 exact" 16 (Metric.percentile s 0.99)

let test_sub_snapshot_window () =
  (* a window delta between two cumulative snapshots: only what came
     after the older snapshot counts *)
  let older = Metric.snapshot_of_values [ 1; 2; 4 ] in
  let newer = Metric.snapshot_of_values [ 1; 2; 4; 100; 200 ] in
  let d = Metric.sub_snapshot newer older in
  check_int "window count" 2 d.Metric.count;
  check_int "window sum" 300 d.Metric.sum;
  (* the delta's max is the lifetime max — an upper bound *)
  check_int "window max" 200 d.Metric.max_value;
  (* 100 lands in [64,128): the bucket bound is the p50 estimate *)
  check_int "window p50" 127 (Metric.percentile d 0.50);
  check_int "window p100 capped at max" 200 (Metric.percentile d 1.0);
  (* subtracting a snapshot from itself is an empty window *)
  let zero = Metric.sub_snapshot newer newer in
  check_int "self-delta count" 0 zero.Metric.count;
  check_int "self-delta percentile" 0 (Metric.percentile zero 0.5)

(* ---- events: the pipeline flight recorder ---- *)

module Event = Zkflow_obs.Event

let test_event_disabled_noop () =
  Obs.reset ();
  Obs.disable ();
  Event.emit ~track:"test" "test.noop";
  check_int "disabled emit ignored" 0 (List.length (Event.events ()))

let test_event_fields () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Event.emit ~router:2 ~epoch:5 ~round:1 ~track:"prover" "prover.round.done"
        ~attrs:[ ("cycles", Jsonx.Num 42.) ]);
  match Event.events () with
  | [ e ] ->
    Alcotest.(check string) "track" "prover" e.Event.track;
    Alcotest.(check string) "kind" "prover.round.done" e.Event.kind;
    Alcotest.(check (option int)) "router" (Some 2) e.Event.router;
    Alcotest.(check (option int)) "epoch" (Some 5) e.Event.epoch;
    Alcotest.(check (option int)) "round" (Some 1) e.Event.round;
    Alcotest.(check (option int)) "query" None e.Event.query;
    check_bool "ts positive" true (e.Event.ts_ns > 0);
    check_bool "attr kept" true
      (List.assoc_opt "cycles" e.Event.attrs = Some (Jsonx.Num 42.))
  | evs -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length evs))

let test_event_ring_drops_oldest () =
  Obs.reset ();
  let saved = Event.capacity () in
  Event.set_capacity 4;
  Fun.protect
    ~finally:(fun () -> Event.set_capacity saved)
    (fun () ->
      Obs.with_enabled (fun () ->
          for i = 0 to 5 do
            Event.emit ~epoch:i ~track:"test" "test.tick"
          done);
      let evs = Event.events () in
      check_int "ring holds capacity" 4 (List.length evs);
      check_int "two dropped" 2 (Event.dropped ());
      match evs with
      | first :: _ ->
        Alcotest.(check (option int)) "oldest surviving epoch" (Some 2)
          first.Event.epoch
      | [] -> Alcotest.fail "empty ring")

let test_event_json_roundtrip () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      Event.emit ~router:1 ~epoch:3 ~track:"board" "board.publish"
        ~attrs:[ ("batch", Jsonx.Str "ab\"cd\n"); ("records", Jsonx.Num 8.) ]);
  let e = List.hd (Event.events ()) in
  let line = Jsonx.to_string (Event.to_json e) in
  match Event.parse_line line with
  | Error err -> Alcotest.fail ("round-trip parse failed: " ^ err)
  | Ok e' ->
    check_bool "round-trips" true (e = e');
    (* flush produces the same line (plus newline) and clears the ring *)
    let buf = Buffer.create 128 in
    Event.flush (Buffer.add_string buf);
    Alcotest.(check string) "flush line" (line ^ "\n") (Buffer.contents buf);
    check_int "flushed ring empty" 0 (List.length (Event.events ()))

(* ---- prometheus quantiles ---- *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_prometheus_quantiles () =
  Obs.with_enabled (fun () ->
      let h = Metric.histogram "test.quant" in
      List.iter (Metric.observe h) [ 1; 10; 100 ]);
  let text = Export.prometheus () in
  List.iter
    (fun needle ->
      check_bool (needle ^ " in prometheus dump") true (contains ~needle text))
    [ "quantile=\"0.5\""; "quantile=\"0.95\""; "quantile=\"0.99\"" ]

(* ---- time-series: the frame ring and its window queries ---- *)

module Timeseries = Zkflow_obs.Timeseries

let test_timeseries_wraparound () =
  Obs.reset ();
  Timeseries.reset ();
  let saved = Timeseries.capacity () in
  Timeseries.set_capacity 4;
  Fun.protect
    ~finally:(fun () ->
      Timeseries.set_capacity saved;
      Obs.disable ())
    (fun () ->
      Obs.enable ();
      let c = Metric.counter "test.ts.work" in
      let h = Metric.histogram "test.ts.lat" in
      for i = 1 to 8 do
        Metric.add c 10;
        Metric.observe h (i * i);
        ignore (Timeseries.sample ())
      done;
      let fs = Timeseries.frames () in
      check_int "ring holds capacity" 4 (List.length fs);
      check_int "four evicted" 4 (Timeseries.dropped ());
      (* seq keeps counting across eviction: the survivors are the
         last four samples *)
      (match (fs, List.rev fs) with
      | first :: _, last :: _ ->
        check_int "oldest surviving seq" 4 first.Timeseries.seq;
        check_int "newest seq" 7 last.Timeseries.seq
      | _ -> Alcotest.fail "empty ring");
      (* window queries straddle the wrap: the counter rose 30 across
         the 4 surviving frames (3 deltas of 10) *)
      (match Timeseries.rate "test.ts.work" ~last:4 fs with
      | Some r -> check_bool "positive rate" true (r > 0.)
      | None -> Alcotest.fail "no rate over surviving frames");
      (* asking for more frames than survive clamps, not fails *)
      check_bool "oversized window clamps" true
        (Timeseries.rate "test.ts.work" ~last:100 fs <> None);
      (* the histogram window sees only the post-wrap observations:
         i=6,7,8 (between the first surviving frame and the last) *)
      (match Timeseries.window_percentiles "test.ts.lat" ~last:4 fs with
      | Some (count, p50, _, p99) ->
        check_int "window observation count" 3 count;
        (* 36 and 49 share the [32,64) bucket: p50 is its bound *)
        check_int "window p50" 63 p50;
        (* p99 rank is 64's bucket, capped at the observed max *)
        check_int "window p99" 64 p99
      | None -> Alcotest.fail "no window percentiles");
      (* a single frame is no window *)
      Timeseries.reset ();
      ignore (Timeseries.sample ());
      check_bool "one frame, no rate" true
        (Timeseries.rate "test.ts.work" ~last:4 (Timeseries.frames ()) = None))

(* ---- JSONL loaders: round-trip and torn-tail tolerance ---- *)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let temp_path suffix =
  let path = Filename.temp_file "zkflow-obs" suffix in
  path

(* A crash mid-flush tears the final line at an arbitrary byte. Every
   cut point inside the last line must yield the decodable prefix plus
   a note — never an error, never silent loss of the intact lines. *)
let test_event_load_torn_tail () =
  Obs.reset ();
  Obs.with_enabled (fun () ->
      for i = 0 to 2 do
        Event.emit ~epoch:i ~track:"test" "test.tick"
      done);
  let path = temp_path ".jsonl" in
  Event.write_jsonl path;
  let full = read_file path in
  (* intact file: all three events, no note *)
  (match Event.load_jsonl path with
  | Ok (evs, None) -> check_int "intact load" 3 (List.length evs)
  | Ok (_, Some note) -> Alcotest.fail ("unexpected note on intact file: " ^ note)
  | Error e -> Alcotest.fail e);
  let len = String.length full in
  let last_start = String.rindex_from full (len - 2) '\n' + 1 in
  (* cut at the line boundary: a clean two-event log *)
  write_file path (String.sub full 0 last_start);
  (match Event.load_jsonl path with
  | Ok (evs, None) -> check_int "boundary cut" 2 (List.length evs)
  | Ok (_, Some note) -> Alcotest.fail ("boundary cut is not torn: " ^ note)
  | Error e -> Alcotest.fail e);
  (* every mid-line cut: prefix plus a truncated_tail note *)
  for cut = last_start + 1 to len - 2 do
    write_file path (String.sub full 0 cut);
    match Event.load_jsonl path with
    | Ok (evs, Some _) ->
      check_int (Printf.sprintf "torn at byte %d keeps the prefix" cut) 2
        (List.length evs)
    | Ok (_, None) ->
      Alcotest.fail (Printf.sprintf "torn at byte %d: no truncation note" cut)
    | Error e -> Alcotest.fail (Printf.sprintf "torn at byte %d rejected: %s" cut e)
  done;
  (* a torn tail followed only by blank lines is still just a tail *)
  write_file path (String.sub full 0 (len - 2) ^ "\n\n");
  (match Event.load_jsonl path with
  | Ok (evs, Some _) -> check_int "tail before blanks" 2 (List.length evs)
  | Ok (_, None) -> Alcotest.fail "no note for torn tail before blanks"
  | Error e -> Alcotest.fail e);
  (* corruption mid-file — intact events after the bad line — is an
     error that names the line, not a tail to shrug off *)
  (match String.split_on_char '\n' full with
  | [ l0; _; l2; _ ] ->
    write_file path (l0 ^ "\n{torn" ^ "\n" ^ l2 ^ "\n");
    (match Event.load_jsonl path with
    | Ok _ -> Alcotest.fail "mid-file corruption accepted"
    | Error e -> check_bool "names line 2" true (contains ~needle:":2:" e))
  | _ -> Alcotest.fail "expected 3 lines");
  Sys.remove path

let test_timeseries_load_roundtrip_and_torn_tail () =
  Obs.reset ();
  Timeseries.reset ();
  Obs.with_enabled (fun () ->
      let c = Metric.counter "test.ts.persist" in
      for _ = 1 to 3 do
        Metric.add c 5;
        ignore (Timeseries.sample ())
      done);
  let path = temp_path ".jsonl" in
  Timeseries.write_jsonl path;
  (* the ring is left untouched by export *)
  check_int "ring intact after write" 3 (List.length (Timeseries.frames ()));
  let live = Timeseries.frames () in
  (match Timeseries.load_jsonl path with
  | Ok (fs, None) ->
    check_int "frames round-trip" 3 (List.length fs);
    List.iter2
      (fun (a : Timeseries.frame) (b : Timeseries.frame) ->
        check_int "seq" a.Timeseries.seq b.Timeseries.seq;
        check_int "ts_ns" a.Timeseries.ts_ns b.Timeseries.ts_ns;
        check_bool "counters" true (a.Timeseries.counters = b.Timeseries.counters);
        check_bool "histograms" true (a.Timeseries.histograms = b.Timeseries.histograms))
      live fs;
    (* loaded series answer window queries the same way live ones do *)
    check_bool "loaded rate" true
      (Timeseries.rate "test.ts.persist" ~last:3 fs
      = Timeseries.rate "test.ts.persist" ~last:3 live)
  | Ok (_, Some note) -> Alcotest.fail ("unexpected note: " ^ note)
  | Error e -> Alcotest.fail e);
  (* same torn-tail discipline as the event log *)
  let full = read_file path in
  write_file path (String.sub full 0 (String.length full - 2));
  (match Timeseries.load_jsonl path with
  | Ok (fs, Some _) -> check_int "torn tail keeps prefix" 2 (List.length fs)
  | Ok (_, None) -> Alcotest.fail "no truncation note"
  | Error e -> Alcotest.fail e);
  Sys.remove path

(* ---- the embedded HTTP server ---- *)

module Httpd = Zkflow_obs.Httpd

let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 1024 in
      let rec go () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      in
      go ();
      Buffer.contents buf)

let test_httpd_roundtrip () =
  let handler (req : Httpd.request) =
    match req.path with
    | "/ping" -> Some { Httpd.status = 200; content_type = "text/plain"; body = "pong" }
    | "/echo" ->
      let v = Option.value ~default:"?" (Httpd.param req "msg") in
      Some { Httpd.status = 200; content_type = "text/plain"; body = "echo:" ^ v }
    | "/boom" -> failwith "kaboom"
    | _ -> None
  in
  match Httpd.start ~port:0 handler with
  | Error e -> Alcotest.fail ("httpd start: " ^ e)
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Httpd.stop srv)
      (fun () ->
        let port = Httpd.port srv in
        check_bool "ephemeral port bound" true (port > 0);
        let resp = http_get ~port "/ping" in
        check_bool "status 200" true (contains ~needle:"HTTP/1.0 200" resp);
        check_bool "body served" true (contains ~needle:"pong" resp);
        check_bool "connection closed" true (contains ~needle:"Connection: close" resp);
        (* a query string is split off the path before routing ... *)
        check_bool "query string split from path" true
          (contains ~needle:"HTTP/1.0 200" (http_get ~port "/ping?x=1"));
        (* ... and delivered to the handler, percent-decoded *)
        check_bool "params decoded" true
          (contains ~needle:"echo:a b&c"
             (http_get ~port "/echo?msg=a+b%26c&other=1"));
        (* unknown path: JSON 404 naming the path *)
        let resp = http_get ~port "/nope" in
        check_bool "404" true (contains ~needle:"HTTP/1.0 404" resp);
        check_bool "404 names the path" true (contains ~needle:{|"/nope"|} resp);
        (* a handler exception becomes a JSON 500, never a crash *)
        let resp = http_get ~port "/boom" in
        check_bool "500 on handler raise" true (contains ~needle:"HTTP/1.0 500" resp);
        check_bool "500 carries detail" true (contains ~needle:"kaboom" resp);
        (* the server survived all of the above *)
        check_bool "still serving" true
          (contains ~needle:"HTTP/1.0 200" (http_get ~port "/ping")))

let test_httpd_request_of_target () =
  let req = Httpd.request_of_target "/query?src=10.0.0.1&op=sum&flag" in
  check_string "path" "/query" req.Httpd.path;
  check_string "src" "10.0.0.1" (Option.get (Httpd.param req "src"));
  check_string "op" "sum" (Option.get (Httpd.param req "op"));
  check_string "bare key" "" (Option.get (Httpd.param req "flag"));
  check_bool "missing key" true (Httpd.param req "nope" = None);
  let req = Httpd.request_of_target "/plain" in
  check_string "no query path" "/plain" req.Httpd.path;
  check_bool "no query params" true (req.Httpd.params = []);
  let req = Httpd.request_of_target "/x?a=%2Fv%41l+1" in
  check_string "percent decoding" "/vAl 1" (Option.get (Httpd.param req "a"))

(* Past the connection cap the server sheds with an immediate 503 from
   the accept thread — it never parks a request thread. A connection
   that connects but never sends its request holds its handler slot,
   which is exactly how a slowloris would pin threads. *)
let test_httpd_saturation () =
  (* a handler that blocks until we release it, so one in-flight
     request provably occupies the single slot *)
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let release = ref false in
  let entered = ref false in
  let handler (req : Httpd.request) =
    match req.Httpd.path with
    | "/slow" ->
      Mutex.lock gate_m;
      entered := true;
      Condition.broadcast gate_c;
      while not !release do
        Condition.wait gate_c gate_m
      done;
      Mutex.unlock gate_m;
      Some { Httpd.status = 200; content_type = "text/plain"; body = "slow" }
    | _ -> None
  in
  match Httpd.start ~port:0 ~max_conns:1 handler with
  | Error e -> Alcotest.fail ("httpd start: " ^ e)
  | Ok srv ->
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock gate_m;
        release := true;
        Condition.broadcast gate_c;
        Mutex.unlock gate_m;
        Httpd.stop srv)
      (fun () ->
        let port = Httpd.port srv in
        (* occupy the single slot from a background thread *)
        let holder = Thread.create (fun () -> http_get ~port "/slow") () in
        Mutex.lock gate_m;
        while not !entered do
          Condition.wait gate_c gate_m
        done;
        Mutex.unlock gate_m;
        (* second connection is shed immediately with a 503 *)
        let resp = http_get ~port "/anything" in
        check_bool "503 on saturation" true
          (contains ~needle:"HTTP/1.0 503" resp);
        check_bool "503 says saturated" true
          (contains ~needle:"saturated" resp);
        (* release the slot; the server recovers *)
        Mutex.lock gate_m;
        release := true;
        Condition.broadcast gate_c;
        Mutex.unlock gate_m;
        let held = Thread.join holder in
        ignore held;
        check_bool "slot freed, serving again" true
          (contains ~needle:"HTTP/1.0 404" (http_get ~port "/after")))

(* A client that connects and stalls without finishing its request
   headers gets a 408 once the read deadline expires — the handler
   thread is not pinned forever. *)
let test_httpd_read_deadline () =
  let handler (_ : Httpd.request) =
    Some { Httpd.status = 200; content_type = "text/plain"; body = "ok" }
  in
  match Httpd.start ~port:0 ~read_timeout_s:0.2 handler with
  | Error e -> Alcotest.fail ("httpd start: " ^ e)
  | Ok srv ->
    Fun.protect
      ~finally:(fun () -> Httpd.stop srv)
      (fun () ->
        let port = Httpd.port srv in
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            (* send a partial request line and stall *)
            let partial = "GET /st" in
            ignore (Unix.write_substring sock partial 0 (String.length partial));
            let buf = Buffer.create 128 in
            let chunk = Bytes.create 256 in
            let rec drain () =
              match Unix.read sock chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
            in
            drain ();
            let resp = Buffer.contents buf in
            check_bool "408 on stalled client" true
              (contains ~needle:"HTTP/1.0 408" resp));
        (* a prompt client is still served *)
        check_bool "prompt client unaffected" true
          (contains ~needle:"HTTP/1.0 200" (http_get ~port "/fast")))

(* ---- monitor: health reports from synthetic event logs ---- *)

let ev ?router ?epoch ?round ?(attrs = []) ~ts track kind =
  { Event.ts_ns = ts; track; kind; router; epoch; round; query = None; attrs }

let test_monitor_lag_and_gaps () =
  let events =
    [
      (* router 0 publishes epochs 0,1,2; router 1 publishes 0 then 2
         (gap at 1); router 2 stops after epoch 0 (lag 2) *)
      ev ~router:0 ~epoch:0 ~ts:1 "router.0" "board.publish";
      ev ~router:1 ~epoch:0 ~ts:2 "router.1" "board.publish";
      ev ~router:2 ~epoch:0 ~ts:3 "router.2" "board.publish";
      ev ~router:0 ~epoch:1 ~ts:4 "router.0" "board.publish";
      ev ~router:0 ~epoch:2 ~ts:5 "router.0" "board.publish";
      ev ~router:1 ~epoch:2 ~ts:6 "router.1" "board.publish";
      (* a replay must NOT count as a publication *)
      ev ~router:2 ~epoch:1 ~ts:7 "board" "board.replay";
    ]
  in
  let r = Monitor.build events in
  Alcotest.(check (list int)) "epochs" [ 0; 1; 2 ] r.Monitor.epochs;
  (match r.Monitor.routers with
  | [ r0; r1; r2 ] ->
    check_int "r0 lag" 0 r0.Monitor.lag;
    Alcotest.(check (list int)) "r0 no gaps" [] r0.Monitor.missed;
    check_int "r1 lag" 0 r1.Monitor.lag;
    Alcotest.(check (list int)) "r1 gap at epoch 1" [ 1 ] r1.Monitor.missed;
    check_int "r2 lag" 2 r2.Monitor.lag;
    Alcotest.(check (option int)) "r2 last epoch" (Some 0) r2.Monitor.last_epoch
  | rs -> Alcotest.fail (Printf.sprintf "expected 3 routers, got %d" (List.length rs)));
  check_bool "degraded" false (Monitor.healthy r)

let test_monitor_rounds_and_rejects () =
  let ms n = n * 1_000_000 in
  let events =
    [
      ev ~router:0 ~epoch:0 ~ts:1 "router.0" "board.publish";
      ev ~epoch:0 ~round:0 ~ts:(ms 10) "prover" "prover.round.start"
        ~attrs:[ ("queue_depth", Jsonx.Num 2.) ];
      ev ~epoch:0 ~round:0 ~ts:(ms 30) "prover" "prover.round.done"
        ~attrs:[ ("prove_ns", Jsonx.Num (float_of_int (ms 15))) ];
      ev ~epoch:1 ~round:1 ~ts:(ms 40) "prover" "prover.round.start"
        ~attrs:[ ("queue_depth", Jsonx.Num 1.) ];
      ev ~epoch:1 ~round:1 ~ts:(ms 45) "prover" "prover.round.error"
        ~attrs:[ ("detail", Jsonx.Str "router 1 has no published commitment") ];
      ev ~epoch:0 ~round:0 ~ts:(ms 50) "verifier" "verifier.round.accept";
      ev ~epoch:1 ~round:1 ~ts:(ms 60) "verifier" "verifier.reject"
        ~attrs:[ ("check", Jsonx.Str "digest_match") ];
      ev ~epoch:1 ~round:1 ~ts:(ms 61) "verifier" "verifier.reject"
        ~attrs:[ ("check", Jsonx.Str "digest_match") ];
      ev ~ts:(ms 62) "verifier" "verifier.reject"
        ~attrs:[ ("check", Jsonx.Str "query.root") ];
    ]
  in
  let r = Monitor.build events in
  check_int "started" 2 r.Monitor.rounds_started;
  check_int "done" 1 r.Monitor.rounds_done;
  check_int "error" 1 r.Monitor.rounds_error;
  check_int "accepts" 1 r.Monitor.verifier_accepts;
  Alcotest.(check (list (pair string int)))
    "rejects by cause"
    [ ("digest_match", 2); ("query.root", 1) ]
    r.Monitor.verifier_rejects;
  check_int "max queue depth" 2 r.Monitor.max_queue_depth;
  (match r.Monitor.round_latency with
  | Some l ->
    check_int "one completed round measured" 1 l.Monitor.count;
    check_bool "p50 bounds 20ms" true (l.Monitor.p50_ns >= ms 20)
  | None -> Alcotest.fail "no round latency");
  check_bool "degraded" false (Monitor.healthy r);
  (* report serializes *)
  match Jsonx.parse (Jsonx.to_string (Monitor.to_json r)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("monitor json: " ^ e)

(* ---- spans: nesting and parent reconstruction ---- *)

let test_span_parents () =
  Obs.with_enabled (fun () ->
      Span.with_span "outer" (fun () ->
          Span.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1))));
  let events = Span.events () in
  check_int "two spans" 2 (List.length events);
  let outer_idx, inner =
    match events with
    | [ a; b ] when a.Span.name = "outer" -> (0, b)
    | [ a; b ] when b.Span.name = "outer" -> (1, a)
    | _ -> Alcotest.fail "expected outer+inner"
  in
  check_int "inner's parent is outer" outer_idx inner.Span.parent

let test_span_totals () =
  Obs.with_enabled (fun () ->
      Span.with_span "t" (fun () -> ());
      Span.with_span "t" (fun () -> ()));
  match List.assoc_opt "t" (Span.totals ()) with
  | Some (count, total_ns) ->
    check_int "count" 2 count;
    check_bool "total >= 0" true (total_ns >= 0)
  | None -> Alcotest.fail "span total missing"

(* ---- exporters ---- *)

(* Force a real pool: on a single-core box the default is jobs=1 and
   every region would take the sequential path, leaving no pool.region
   span to assert on. *)
let with_jobs j f =
  let module Pool = Zkflow_parallel.Pool in
  let saved = Pool.jobs () in
  Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

let run_traced_round () =
  with_jobs 2 (fun () ->
      Obs.reset ();
      Obs.enable ();
      let r = prove_once () in
      Obs.disable ();
      r)

let test_trace_json_schema () =
  ignore (run_traced_round ());
  let trace = Export.trace_json () in
  let v =
    match Jsonx.parse trace with
    | Ok v -> v
    | Error e -> Alcotest.fail ("trace does not parse: " ^ e)
  in
  let events =
    match v with Jsonx.Arr l -> l | _ -> Alcotest.fail "trace not an array"
  in
  check_bool "has events" true (events <> []);
  let names = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          check_bool (Printf.sprintf "event has %S" k) true
            (Jsonx.member k e <> None))
        [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
      match Jsonx.member "name" e with
      | Some (Jsonx.Str n) -> Hashtbl.replace names n ()
      | _ -> Alcotest.fail "name not a string")
    events;
  check_bool "at least 5 distinct span names" true (Hashtbl.length names >= 5);
  (* the acceptance spans: zkvm + merkle + parallel + proof layers *)
  List.iter
    (fun n ->
      check_bool (n ^ " present") true (Hashtbl.mem names n))
    [ "zkvm.run"; "merkle.build"; "pool.region"; "zkproof.prove"; "agg.round" ]

let test_stats_json_parses () =
  ignore (run_traced_round ());
  (match Jsonx.parse (Export.stats_json ()) with
  | Ok (Jsonx.Obj fields) ->
    List.iter
      (fun k -> check_bool (k ^ " present") true (List.mem_assoc k fields))
      [ "counters"; "histograms"; "spans" ]
  | Ok _ -> Alcotest.fail "stats not an object"
  | Error e -> Alcotest.fail ("stats does not parse: " ^ e));
  (* the headline counters moved *)
  let counters = Metric.counters () in
  List.iter
    (fun name ->
      match List.assoc_opt name counters with
      | Some v -> check_bool (name ^ " > 0") true (v > 0)
      | None -> Alcotest.fail (name ^ " not registered"))
    [ "sha256.compressions"; "merkle.nodes_hashed"; "zkvm.cycles" ]

let test_prometheus_mentions_metrics () =
  ignore (run_traced_round ());
  let text = Export.prometheus () in
  List.iter
    (fun needle ->
      check_bool (needle ^ " in prometheus dump") true (contains ~needle text))
    [ "zkflow_sha256_compressions"; "zkflow_span_seconds_total" ]

(* ---- differential: the event log never changes proof outputs ---- *)

(* A full pipeline pass — insert, publish, aggregate, query — run
   twice from the same seed: once with the flight recorder off, once
   on. Receipts, roots, and journals must be bit-identical; only the
   event log differs. *)
let pipeline_pass () =
  let d = Zkflow.deploy ~proof_params:params () in
  let rng = Zkflow_util.Rng.create 0xf11e5L in
  let records = Gen.records rng Gen.default_profile ~router_id:0 ~count:6 in
  Array.iter (fun r -> Zkflow_store.Db.insert d.Zkflow.db r) records;
  let epoch = List.hd (Zkflow_store.Db.epochs d.Zkflow.db) in
  (match Prover_service.publish_epoch d.Zkflow.service ~epoch with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let round =
    match Prover_service.aggregate_epoch d.Zkflow.service ~epoch with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let row =
    match Prover_service.query d.Zkflow.service Query.flow_count with
    | Ok row -> row
    | Error e -> Alcotest.fail e
  in
  (round, row)

let test_differential_pipeline_events () =
  Obs.reset ();
  Obs.disable ();
  let off_round, off_q = pipeline_pass () in
  check_int "no events while disabled" 0 (List.length (Event.events ()));
  let on_round, on_q = Obs.with_enabled pipeline_pass in
  check_bool "round receipt bit-identical" true
    (Zkflow_zkproof.Receipt.encode off_round.Aggregate.receipt
    = Zkflow_zkproof.Receipt.encode on_round.Aggregate.receipt);
  Alcotest.check digest "clog root identical"
    (Clog.root off_round.Aggregate.clog)
    (Clog.root on_round.Aggregate.clog);
  Alcotest.check digest "journal root identical"
    off_round.Aggregate.journal.Guests.new_root
    on_round.Aggregate.journal.Guests.new_root;
  check_bool "query receipt bit-identical" true
    (Zkflow_zkproof.Receipt.encode off_q.Query.receipt
    = Zkflow_zkproof.Receipt.encode on_q.Query.receipt);
  (* and the enabled run actually recorded the pipeline story *)
  let kinds =
    List.sort_uniq String.compare
      (List.map (fun e -> e.Event.kind) (Event.events ()))
  in
  List.iter
    (fun k -> check_bool (k ^ " recorded") true (List.mem k kinds))
    [ "board.publish"; "store.window"; "prover.round.start"; "prover.round.done";
      "prover.query.done" ]

let test_tamper_reject_event () =
  Obs.reset ();
  let outcome = Obs.with_enabled Tamper.forge_query_state in
  check_bool "tamper detected" true outcome.Tamper.detected;
  let rejects =
    List.filter (fun e -> e.Event.kind = "verifier.reject") (Event.events ())
  in
  check_bool "rejection recorded" true (rejects <> []);
  check_bool "cause named" true
    (List.exists
       (fun e -> List.assoc_opt "check" e.Event.attrs = Some (Jsonx.Str "query.root"))
       rejects);
  (* the health report surfaces it by cause *)
  let r = Monitor.build (Event.events ()) in
  check_bool "monitor counts the rejection" true
    (List.assoc_opt "query.root" r.Monitor.verifier_rejects = Some 1);
  check_bool "monitor reports degraded" false (Monitor.healthy r)

(* ---- restored marker through save/load ---- *)

let test_restored_round_marker () =
  Obs.disable ();
  let d = Zkflow.deploy ~proof_params:params () in
  let rng = Zkflow_util.Rng.create 77L in
  let records = Gen.records rng Gen.default_profile ~router_id:0 ~count:6 in
  Array.iter (fun r -> Zkflow_store.Db.insert d.Zkflow.db r) records;
  let epoch = List.hd (Zkflow_store.Db.epochs d.Zkflow.db) in
  (match Prover_service.publish_epoch d.Zkflow.service ~epoch with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let round =
    match Prover_service.aggregate_epoch d.Zkflow.service ~epoch with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  check_bool "fresh round not restored" false round.Aggregate.restored;
  let bytes = Prover_service.save d.Zkflow.service in
  let loaded =
    match
      Prover_service.load ~proof_params:params ~db:d.Zkflow.db
        ~board:d.Zkflow.board bytes
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  (match Prover_service.rounds loaded with
  | [ r ] ->
    check_bool "loaded round restored" true r.Aggregate.restored;
    Alcotest.check digest "loaded root" (Clog.root round.Aggregate.clog)
      (Clog.root r.Aggregate.clog)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 round, got %d" (List.length rs)));
  (match Prover_service.summaries loaded with
  | [ s ] ->
    check_bool "summary restored flag" true s.Prover_service.restored;
    check_int "summary entries" (Clog.length round.Aggregate.clog)
      s.Prover_service.entries
  | _ -> Alcotest.fail "expected 1 summary");
  match Jsonx.parse (Prover_service.summary_json loaded) with
  | Ok v ->
    check_bool "summary_json has rounds" true (Jsonx.member "rounds" v <> None)
  | Error e -> Alcotest.fail ("summary_json does not parse: " ^ e)

let () =
  Alcotest.run "zkflow_obs"
    [
      ( "differential",
        [
          Alcotest.test_case "receipts identical on/off" `Quick
            test_differential_receipts;
          Alcotest.test_case "pipeline identical with event log" `Quick
            test_differential_pipeline_events;
          Alcotest.test_case "tamper rejection reaches the flight log" `Quick
            test_tamper_reject_event;
        ] );
      ( "metric",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_counter_disabled_noop;
          Alcotest.test_case "counter sums across domains" `Quick
            test_counter_multidomain;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "reset zeroes" `Quick test_reset_zeroes;
          Alcotest.test_case "percentiles from log2 buckets" `Quick test_percentile;
          Alcotest.test_case "percentile of equal values is exact" `Quick
            test_percentile_all_equal;
          Alcotest.test_case "sub_snapshot window delta" `Quick
            test_sub_snapshot_window;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "window queries straddle ring wrap" `Quick
            test_timeseries_wraparound;
          Alcotest.test_case "jsonl round-trip and torn tail" `Quick
            test_timeseries_load_roundtrip_and_torn_tail;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "event log torn at every byte offset" `Quick
            test_event_load_torn_tail;
        ] );
      ( "httpd",
        [
          Alcotest.test_case "GET round-trip, 404, handler raise" `Quick
            test_httpd_roundtrip;
          Alcotest.test_case "request target parsing" `Quick
            test_httpd_request_of_target;
          Alcotest.test_case "503 past the connection cap" `Quick
            test_httpd_saturation;
          Alcotest.test_case "408 on stalled client" `Quick
            test_httpd_read_deadline;
        ] );
      ( "event",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_event_disabled_noop;
          Alcotest.test_case "fields and attrs" `Quick test_event_fields;
          Alcotest.test_case "ring drops oldest" `Quick test_event_ring_drops_oldest;
          Alcotest.test_case "json round-trip and flush" `Quick
            test_event_json_roundtrip;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "lag and gap detection" `Quick test_monitor_lag_and_gaps;
          Alcotest.test_case "rounds, latency, rejects by cause" `Quick
            test_monitor_rounds_and_rejects;
        ] );
      ( "span",
        [
          Alcotest.test_case "parent reconstruction" `Quick test_span_parents;
          Alcotest.test_case "totals" `Quick test_span_totals;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace_event schema" `Quick test_trace_json_schema;
          Alcotest.test_case "stats json" `Quick test_stats_json_parses;
          Alcotest.test_case "prometheus" `Quick test_prometheus_mentions_metrics;
          Alcotest.test_case "prometheus quantiles" `Quick test_prometheus_quantiles;
        ] );
      ( "service",
        [
          Alcotest.test_case "restored marker survives save/load" `Quick
            test_restored_round_marker;
        ] );
    ]
