open Zkflow_lang
module Machine = Zkflow_zkvm.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Differential runner: a Zirc program must behave identically under
   the reference interpreter and compiled onto the zkVM. *)
let run_both ?(input = [||]) program =
  let interp =
    match Zirc.interpret program ~input with
    | Ok o -> o
    | Error e -> Alcotest.fail ("interp: " ^ e)
  in
  let compiled =
    match Zirc.compile program with
    | Ok p -> p
    | Error e -> Alcotest.fail ("compile: " ^ e)
  in
  let machine = Machine.run compiled ~input in
  Alcotest.(check (array int))
    "journals agree" interp.Zirc.journal machine.Machine.journal;
  Alcotest.(check (list int)) "debug agree" interp.Zirc.debug machine.Machine.debug;
  check_int "exit codes agree" interp.Zirc.exit_code machine.Machine.exit_code;
  interp

let test_arithmetic () =
  let p =
    Zirc.
      [
        Let ("a", Int 1000);
        Let ("b", Int 77);
        Commit (Bin (Add, Var "a", Var "b"));
        Commit (Bin (Sub, Var "b", Var "a"));        (* wraps *)
        Commit (Bin (Mul, Var "a", Var "a"));
        Commit (Bin (Xor, Var "a", Var "b"));
        Commit (Bin (Shl, Var "b", Int 4));
        Commit (Bin (Shr, Var "a", Int 3));
      ]
  in
  let o = run_both p in
  check_int "add" 1077 o.Zirc.journal.(0);
  check_int "sub wraps" ((77 - 1000) land 0xffffffff) o.Zirc.journal.(1)

let test_comparisons () =
  let p =
    Zirc.
      [
        Let ("x", Int 5);
        Let ("big", Int 0xffffffff);
        Commit (Bin (Lt, Var "x", Int 6));
        Commit (Bin (Lt, Var "big", Var "x"));  (* unsigned: big > x *)
        Commit (Bin (Slt, Var "big", Var "x")); (* signed: -1 < 5 *)
        Commit (Bin (Eq, Var "x", Int 5));
        Commit (Bin (Neq, Var "x", Int 5));
        Commit (Bin (Le, Var "x", Int 5));
        Commit (Bin (Ge, Var "x", Int 6));
        Commit (Bin (Gt, Var "x", Int 4));
      ]
  in
  let o = run_both p in
  Alcotest.(check (array int)) "truth table" [| 1; 0; 1; 1; 0; 1; 0; 1 |] o.Zirc.journal

let test_control_flow () =
  (* sum of 1..10 via while; plus an if on the result *)
  let p =
    Zirc.
      [
        Let ("i", Int 10);
        Let ("acc", Int 0);
        While
          ( Bin (Gt, Var "i", Int 0),
            [ Set ("acc", Bin (Add, Var "acc", Var "i"));
              Set ("i", Bin (Sub, Var "i", Int 1)) ] );
        If
          ( Bin (Eq, Var "acc", Int 55),
            [ Commit (Int 1) ],
            [ Commit (Int 0) ] );
        Commit (Var "acc");
      ]
  in
  let o = run_both p in
  check_int "correct branch" 1 o.Zirc.journal.(0);
  check_int "sum" 55 o.Zirc.journal.(1)

let test_memory () =
  let p =
    Zirc.
      [
        Let ("base", Int 5000);
        Store (Var "base", Int 42);
        Store (Bin (Add, Var "base", Int 1), Int 43);
        Commit (Load (Var "base"));
        Commit (Load (Bin (Add, Var "base", Int 1)));
        Commit (Load (Int 99999));  (* untouched memory reads 0 *)
      ]
  in
  let o = run_both p in
  Alcotest.(check (array int)) "memory" [| 42; 43; 0 |] o.Zirc.journal

let test_io () =
  let p =
    Zirc.
      [
        Commit Input_avail;
        Let ("x", Read_word);
        Let ("y", Read_word);
        Commit (Bin (Add, Var "x", Var "y"));
        Read_words { dst = Int 100; count = Int 3 };
        Commit_words { src = Int 100; count = Int 3 };
        Commit Input_avail;
        Debug (Var "x");
      ]
  in
  let o = run_both ~input:[| 7; 8; 100; 200; 300 |] p in
  Alcotest.(check (array int)) "io" [| 5; 15; 100; 200; 300; 0 |] o.Zirc.journal

let test_sha_builtin_matches_host () =
  let p =
    Zirc.
      [
        Read_words { dst = Int 100; count = Int 5 };
        Sha { src = Int 100; words = Int 5; dst = Int 200 };
        Commit_words { src = Int 200; count = Int 8 };
      ]
  in
  let input = [| 1; 2; 3; 4; 5 |] in
  let o = run_both ~input p in
  let b = Bytes.create 20 in
  Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) input;
  let expected = Zkflow_zkvm.Guestlib.words_of_digest (Zkflow_hash.Sha256.digest b) in
  Alcotest.(check (array int)) "sha matches host" expected o.Zirc.journal

let test_merkle_builtins_match_host () =
  let n = 5 in
  let rng = Zkflow_util.Rng.create 11L in
  let entries =
    Array.init n (fun _ -> Array.init 8 (fun _ -> Zkflow_util.Rng.int rng 0xffff))
  in
  let input = Array.concat (Array.to_list entries) in
  let p =
    Zirc.
      [
        Read_words { dst = Int 1000; count = Int (8 * n) };
        Leaf_hashes { entries = Int 1000; count = Int n; out = Int 5000; scratch = Int 300 };
        Merkle_root { leaves = Int 5000; count = Int n };
        Commit_words { src = Int 5000; count = Int 8 };
      ]
  in
  let o = run_both ~input p in
  let leaves =
    Array.map
      (fun e ->
        let b = Bytes.create 32 in
        Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) e;
        b)
      entries
  in
  let expected =
    Zkflow_zkvm.Guestlib.words_of_digest
      (Zkflow_hash.Digest32.unsafe_to_bytes
         (Zkflow_merkle.Tree.root (Zkflow_merkle.Tree.of_leaves leaves)))
  in
  Alcotest.(check (array int)) "root matches host tree" expected o.Zirc.journal

let test_cmp8_with_live_registers () =
  (* Cmp8 as the right operand of an addition: the spill path. *)
  let p =
    Zirc.
      [
        Read_words { dst = Int 100; count = Int 8 };
        Read_words { dst = Int 200; count = Int 8 };
        Let ("r", Bin (Add, Int 10, Cmp8 (Int 100, Int 200)));
        Commit (Var "r");
        Let ("r2", Bin (Add, Int 20, Cmp8 (Int 100, Int 100)));
        Commit (Var "r2");
      ]
  in
  let input = Array.append (Array.make 8 1) (Array.make 8 2) in
  let o = run_both ~input p in
  check_int "unequal digests" 10 o.Zirc.journal.(0);
  check_int "equal digests" 21 o.Zirc.journal.(1)

let test_halt_code () =
  let o = run_both Zirc.[ Commit (Int 1); Halt (Int 7); Commit (Int 2) ] in
  check_int "exit" 7 o.Zirc.exit_code;
  check_int "stops at halt" 1 (Array.length o.Zirc.journal)

let test_compile_errors () =
  let is_err p = Result.is_error (Zirc.compile p) in
  check_bool "undefined var" true (is_err Zirc.[ Commit (Var "ghost") ]);
  check_bool "duplicate let" true
    (is_err Zirc.[ Let ("x", Int 1); Let ("x", Int 2) ]);
  check_bool "set before let" true (is_err Zirc.[ Set ("x", Int 1) ]);
  (* depth 8 expression: ((((((((1+1)+1)+1)... right-nested *)
  let rec deep n = if n = 0 then Zirc.Int 1 else Zirc.Bin (Zirc.Add, Zirc.Int 1, deep (n - 1)) in
  check_bool "too deep" true (is_err Zirc.[ Commit (deep 8) ]);
  check_bool "depth 6 ok" false (is_err Zirc.[ Commit (deep 6) ])

let test_interp_guards () =
  check_bool "read past input" true
    (Result.is_error (Zirc.interpret Zirc.[ Commit Read_word ] ~input:[||]));
  check_bool "fuel" true
    (Result.is_error
       (Zirc.interpret ~fuel:1000 Zirc.[ While (Int 1, []) ] ~input:[||]))

(* A complete custom verifiable query written in Zirc: count CLog
   entries whose loss rate exceeds 1% (losses*100 > packets), with the
   in-guest Merkle-root authentication — then prove and verify it. *)
let loss_rate_query =
  Zirc.
    [
      (* input: m, claimed root (8 words), m 8-word entries *)
      Let ("m", Read_word);
      Read_words { dst = Int 0x200; count = Int 8 };
      Read_words { dst = Int 0x100000; count = Bin (Mul, Var "m", Int 8) };
      (* authenticate the entries against the claimed root *)
      Leaf_hashes
        { entries = Int 0x100000; count = Var "m"; out = Int 0x200000; scratch = Int 0x400 };
      Merkle_root { leaves = Int 0x200000; count = Var "m" };
      If (Cmp8 (Int 0x200000, Int 0x200), [], [ Halt (Int 1) ]);
      Commit_words { src = Int 0x200; count = Int 8 };
      (* scan: count entries with losses*100 > packets *)
      Let ("i", Int 0);
      Let ("violations", Int 0);
      Let ("base", Int 0);
      While
        ( Bin (Lt, Var "i", Var "m"),
          [
            Set ("base", Bin (Add, Int 0x100000, Bin (Mul, Var "i", Int 8)));
            If
              ( Bin
                  ( Gt,
                    Bin (Mul, Load (Bin (Add, Var "base", Int 7)), Int 100),
                    Load (Bin (Add, Var "base", Int 4)) ),
                [ Set ("violations", Bin (Add, Var "violations", Int 1)) ],
                [] );
            Set ("i", Bin (Add, Var "i", Int 1));
          ] );
      Commit (Var "violations");
    ]

let test_custom_query_proves () =
  let records =
    Zkflow_netflow.Gen.records (Zkflow_util.Rng.create 3L)
      Zkflow_netflow.Gen.default_profile ~router_id:0 ~count:8
  in
  let clog = Zkflow_core.Clog.apply_batch Zkflow_core.Clog.empty records in
  let m = Zkflow_core.Clog.length clog in
  let input =
    Array.concat
      [
        [| m |];
        Zkflow_zkvm.Guestlib.words_of_digest
          (Zkflow_hash.Digest32.to_bytes (Zkflow_core.Clog.root clog));
        Zkflow_core.Clog.words clog;
      ]
  in
  (* host truth *)
  let expected =
    Array.fold_left
      (fun acc (e : Zkflow_core.Clog.entry) ->
        let mtr = e.Zkflow_core.Clog.metrics in
        if mtr.Zkflow_netflow.Record.losses * 100 > mtr.Zkflow_netflow.Record.packets
        then acc + 1
        else acc)
      0 (Zkflow_core.Clog.entries clog)
  in
  (* interpreter and zkVM agree *)
  let o = run_both ~input loss_rate_query in
  check_int "violations" expected o.Zirc.journal.(8);
  (* and the compiled guest proves + verifies like any built-in *)
  let program =
    match Zirc.compile loss_rate_query with Ok p -> p | Error e -> Alcotest.fail e
  in
  let params = Zkflow_zkproof.Params.make ~queries:8 in
  match Zkflow_zkproof.Prove.prove ~params program ~input with
  | Error e -> Alcotest.fail e
  | Ok (receipt, _) ->
    check_bool "custom query receipt verifies" true
      (Zkflow_zkproof.Verify.check ~program receipt);
    (* tampering with an entry must be caught by the in-guest root check *)
    let bad = Array.copy input in
    bad.(9 + 4) <- bad.(9 + 4) + 1;
    let run = Machine.run program ~input:bad in
    check_int "tamper -> halt 1" 1 run.Machine.exit_code

(* ---- concrete syntax ---- *)

let parse_ok src =
  match Zirc_parse.parse src with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_parse_basics () =
  let p =
    parse_ok
      {| // sum 1..n from input
         let n = read_word();
         let acc = 0;
         while n > 0 { acc = acc + n; n = n - 1; }
         commit(acc); |}
  in
  let o = run_both ~input:[| 10 |] p in
  check_int "sum" 55 o.Zirc.journal.(0)

let test_parse_precedence () =
  (* 2 + 3 * 4 == 14, (2+3)*4 = 20; shifts bind looser than +, & looser
     than shifts, comparison loosest *)
  let p =
    parse_ok
      {| commit(2 + 3 * 4);
         commit((2 + 3) * 4);
         commit(1 << 2 + 1);
         commit(0xff & 3 << 2);
         commit(1 + 1 == 2); |}
  in
  let o = run_both p in
  Alcotest.(check (array int)) "precedence" [| 14; 20; 8; 12; 1 |] o.Zirc.journal

let test_division () =
  let p =
    parse_ok
      {| commit(100 / 7);
         commit(100 % 7);
         commit(5 / 0);      // RISC-V M: all-ones
         commit(5 % 0);      // RISC-V M: dividend
         // division enables direct rate queries: 4.5% loss in permille
         commit(45 * 1000 / 1000 * 1000 / 1000); |}
  in
  let o = run_both p in
  Alcotest.(check (array int)) "div/rem" [| 14; 2; 0xffffffff; 5; 45 |] o.Zirc.journal

let test_parse_hex_and_mem () =
  let p =
    parse_ok
      {| mem[0x10] = 7;
         mem[0x10 + 1] = mem[0x10] * 2;
         commit(mem[0x11]); |}
  in
  let o = run_both p in
  check_int "hex mem" 14 o.Zirc.journal.(0)

let test_parse_if_else () =
  let p =
    parse_ok
      {| let x = read_word();
         if x <s 0 { commit(1); } else { commit(0); }
         if x == 5 { commit(42); } |}
  in
  let o = run_both ~input:[| 0xffffffff |] p in
  Alcotest.(check (array int)) "signed branch" [| 1 |] o.Zirc.journal

let test_parse_builtin_stmts () =
  let p =
    parse_ok
      {| read_words(100, input_avail());
         sha(100, 3, 200);
         commit_words(200, 8); |}
  in
  let input = [| 5; 6; 7 |] in
  let o = run_both ~input p in
  let b = Bytes.create 12 in
  Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) input;
  Alcotest.(check (array int)) "sha via syntax"
    (Zkflow_zkvm.Guestlib.words_of_digest (Zkflow_hash.Sha256.digest b))
    o.Zirc.journal

let test_parse_errors () =
  let bad src = check_bool src true (Result.is_error (Zirc_parse.parse src)) in
  bad "let = 3;";
  bad "commit(1)";           (* missing semicolon *)
  bad "frobnicate(1);";      (* unknown builtin *)
  bad "cmp8(1);";            (* wrong arity *)
  bad "let x = (1 + ;";
  bad "while 1 { commit(1);"; (* unterminated block *)
  bad "let x = 99999999999999999999;";
  bad "let x = 3 $ 4;";
  (* error positions are reported *)
  match Zirc_parse.parse "let x = 1;\nbroken!" with
  | Error e -> check_bool "has position" true (String.length e > 0 && String.contains e '2')
  | Ok _ -> Alcotest.fail "expected parse error"

let test_parse_positions () =
  let src = "let x = 1;\nwhile x < 3 {\n  x = x + 1;\n}\ncommit(x);\nhalt(0);\n" in
  match Zirc_parse.parse_positioned src with
  | Error e -> Alcotest.fail e
  | Ok (prog, positions) ->
    check_int "statement count" 4 (List.length prog);
    check_int "position count" 4 (List.length positions);
    let pos i =
      let p = List.nth positions i in
      (p.Zirc_parse.pos.Zirc_parse.line, p.Zirc_parse.pos.Zirc_parse.col)
    in
    Alcotest.(check (pair int int)) "let" (1, 1) (pos 0);
    Alcotest.(check (pair int int)) "while" (2, 1) (pos 1);
    Alcotest.(check (pair int int)) "commit" (5, 1) (pos 2);
    Alcotest.(check (pair int int)) "halt" (6, 1) (pos 3);
    (* the while carries its body's positions as a sub-block *)
    match (List.nth positions 1).Zirc_parse.sub with
    | [ [ body ] ] ->
      Alcotest.(check (pair int int)) "loop body" (3, 3)
        (body.Zirc_parse.pos.Zirc_parse.line, body.Zirc_parse.pos.Zirc_parse.col)
    | _ -> Alcotest.fail "while should carry exactly one sub-block"

let test_parse_error_position () =
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match Zirc_parse.parse "let x 1;" with
   | Error e ->
     check_bool "line:col reported" true (contains ~sub:"1:7" e);
     check_bool "expected token named" true (contains ~sub:"expected \"=\"" e)
   | Ok _ -> Alcotest.fail "expected parse error");
  match Zirc_parse.parse "let x = 1;\nlet y = ;" with
  | Error e -> check_bool "second line reported" true (contains ~sub:"2:9" e)
  | Ok _ -> Alcotest.fail "expected parse error"

let test_parse_file_roundtrip () =
  let path = Filename.temp_file "zirc" ".zirc" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "commit(123);";
      close_out oc;
      match Zirc_parse.parse_file path with
      | Ok p ->
        let o = run_both p in
        check_int "from file" 123 o.Zirc.journal.(0)
      | Error e -> Alcotest.fail e);
  check_bool "missing file" true (Result.is_error (Zirc_parse.parse_file "/no/such.zirc"))

(* Differential fuzzing: random expression trees must agree between
   the interpreter and the compiled zkVM code. *)
let expr_gen =
  let open QCheck.Gen in
  let ops =
    [| Zirc.Add; Sub; Mul; Divu; Remu; And; Or; Xor; Shl; Shr; Eq; Neq; Lt; Le; Gt; Ge; Slt |]
  in
  let rec gen depth =
    if depth = 0 then map (fun n -> Zirc.Int n) (int_bound 0xffffff)
    else
      frequency
        [
          (1, map (fun n -> Zirc.Int n) (int_bound 0xffffff));
          ( 3,
            map3
              (fun o a b -> Zirc.Bin (ops.(o), a, b))
              (int_bound (Array.length ops - 1))
              (gen (depth - 1))
              (gen (depth - 1)) );
        ]
  in
  gen 3

let prop_random_exprs =
  QCheck.Test.make ~name:"compiled = interpreted on random expressions" ~count:60
    (QCheck.make expr_gen)
    (fun e ->
      let p = Zirc.[ Commit e ] in
      match (Zirc.interpret p ~input:[||], Zirc.compile p) with
      | Ok o, Ok prog ->
        let run = Machine.run prog ~input:[||] in
        run.Machine.journal = o.Zirc.journal
      | Error _, _ | _, Error _ -> false)

let () =
  Alcotest.run "zkflow_lang"
    [
      ( "zirc",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "io" `Quick test_io;
          Alcotest.test_case "sha builtin" `Quick test_sha_builtin_matches_host;
          Alcotest.test_case "merkle builtins" `Quick test_merkle_builtins_match_host;
          Alcotest.test_case "cmp8 spilling" `Quick test_cmp8_with_live_registers;
          Alcotest.test_case "halt code" `Quick test_halt_code;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
          Alcotest.test_case "interp guards" `Quick test_interp_guards;
          Alcotest.test_case "custom query proves" `Slow test_custom_query_proves;
          QCheck_alcotest.to_alcotest prop_random_exprs;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "hex and mem" `Quick test_parse_hex_and_mem;
          Alcotest.test_case "if/else" `Quick test_parse_if_else;
          Alcotest.test_case "builtin statements" `Quick test_parse_builtin_stmts;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "statement positions" `Quick test_parse_positions;
          Alcotest.test_case "error positions" `Quick test_parse_error_position;
          Alcotest.test_case "file roundtrip" `Quick test_parse_file_roundtrip;
        ] );
    ]
