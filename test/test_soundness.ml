(* Differential analyzer-vs-VM soundness fuzzer.

   The analyzer's contract (Finding.report): when a report has no
   Error findings, [proven_safe] set, and a [Bounded n] cycle bound,
   the only traps the machine may raise are input exhaustion and the
   cycle limit — and [n] dominates the cycle count of every execution.
   So, given [n] input words (one read costs at least one cycle) and a
   cycle allowance above [n], [Machine.run] must terminate without
   trapping, in at most [n] cycles.

   Programs come from two generators, run through the same property:

   - [gen_provable]: register inits, constant-address loads/stores,
     host calls following the ecall protocol, and counted countdown
     loops — the shapes the interval domain is supposed to prove.
     Most samples are analyzer-clean, so the property bites.
   - [gen_noise]: unconstrained instruction soup. Almost all samples
     are rejected by the analyzer (making the property vacuous), but
     any sample the analyzer wrongly blesses would be exactly the
     soundness bug this harness exists to catch.

   A final sanity check asserts the provable generator actually
   produces a healthy fraction of analyzer-clean programs, so the
   property tests cannot silently go vacuous. *)

module Isa = Zkflow_zkvm.Isa
module Machine = Zkflow_zkvm.Machine
module Program = Zkflow_zkvm.Program
module Finding = Zkflow_analysis.Finding

let analyze prog = Zkflow_analysis.Zr0_checks.analyze (Array.of_list prog)

(* Analyzer-clean: nothing to report, every access proven, bound found. *)
let clean_bound (r : Finding.report) =
  match (Finding.errors r, r.Finding.proven_safe, r.Finding.cycle_bound) with
  | [], true, Finding.Bounded n -> Some n
  | _ -> None

let pp_prog prog =
  String.concat "; "
    (List.mapi (fun i x -> Printf.sprintf "%d:%s" i (Format.asprintf "%a" Isa.pp x)) prog)

(* ---- generators ---- *)

(* Scratch registers t0..s4 (5..12); 13 is reserved for loop counters
   so a loop body can't clobber its own induction variable. *)
let g_reg = QCheck.Gen.int_range 5 12

let g_alu =
  QCheck.Gen.oneofl
    Isa.[ ADD; SUB; MUL; AND; OR; XOR; SLL; SRL; SRA; SLT; SLTU; DIVU; REMU ]

(* One generated "step" is a short instruction sequence that keeps the
   machine state well-defined: ALU over scratch registers, constant
   addresses only, ecalls with the number loaded immediately before. *)
let g_step : Isa.t list QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      ( 4,
        map
          (fun (op, (rd, (r1, r2))) -> [ Isa.Alu (op, rd, r1, r2) ])
          (pair g_alu (pair g_reg (pair g_reg g_reg))) );
      ( 4,
        map
          (fun (op, (rd, (r1, imm))) -> [ Isa.Alui (op, rd, r1, imm) ])
          (pair g_alu
             (pair g_reg (pair g_reg (int_range (-0x8000) 0xffff)))) );
      ( 2,
        map
          (fun (rd, imm) -> [ Isa.Lui (rd, imm) ])
          (pair g_reg (int_range 0 0xffff_ffff)) );
      (* store-then-load through a constant word address *)
      ( 2,
        map
          (fun (rs, (rd, addr)) -> [ Isa.Sw (rs, 0, addr); Isa.Lw (rd, 0, addr) ])
          (pair g_reg (pair g_reg (int_range 0 0xfff))) );
      (* read one input word into a scratch register *)
      ( 2,
        map
          (fun rd -> [ Isa.Lui (10, 1); Isa.Ecall; Isa.Alu (Isa.ADD, rd, 10, 0) ])
          g_reg );
      (* poll input_avail *)
      ( 1,
        map
          (fun rd -> [ Isa.Lui (10, 5); Isa.Ecall; Isa.Alu (Isa.ADD, rd, 10, 0) ])
          g_reg );
      (* commit a scratch register *)
      ( 1,
        map
          (fun rs ->
            [ Isa.Alu (Isa.ADD, 11, rs, 0); Isa.Lui (10, 2); Isa.Ecall ])
          g_reg );
      (* debug-print a constant *)
      ( 1,
        map
          (fun v -> [ Isa.Lui (11, v); Isa.Lui (10, 4); Isa.Ecall ])
          (int_range 0 0xffff) );
    ]

let halt_seq = Isa.[ Lui (11, 0); Lui (10, 0); Ecall ]

(* Initialise every register a step might read. *)
let prologue =
  List.concat_map (fun r -> [ Isa.Lui (r, r * 1111) ]) [ 5; 6; 7; 8; 9; 10; 11; 12 ]

(* li cnt C; body; cnt -= 1; bne cnt, x0 -> top of body. *)
let wrap_loop ~at body trips =
  let body = List.concat body in
  [ Isa.Lui (13, trips) ]
  @ body
  @ [
      Isa.Alui (Isa.ADD, 13, 13, -1);
      Isa.Branch (Isa.BNE, 13, 0, at + 1);
    ]

let gen_provable : Isa.t list QCheck.Gen.t =
  let open QCheck.Gen in
  pair
    (pair (list_size (int_range 0 4) g_step) (list_size (int_range 0 4) g_step))
    (pair (option (pair (list_size (int_range 1 3) g_step) (int_range 1 20)))
       (list_size (int_range 0 3) g_step))
  >|= fun ((pre, mid), (loop, post)) ->
  let pre_part = prologue @ List.concat pre @ List.concat mid in
  let looped =
    match loop with
    | None -> pre_part
    | Some (body, trips) ->
      pre_part @ wrap_loop ~at:(List.length pre_part) body trips
  in
  looped @ List.concat post @ halt_seq

(* Unconstrained soup (targets small so branches usually land in the
   program); the analyzer should reject nearly all of it. *)
let gen_noise : Isa.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let instr =
    oneof
      [
        map
          (fun (op, (rd, (r1, r2))) -> Isa.Alu (op, rd, r1, r2))
          (pair g_alu (pair reg (pair reg reg)));
        map
          (fun (op, (rd, (r1, imm))) -> Isa.Alui (op, rd, r1, imm))
          (pair g_alu (pair reg (pair reg (int_range (-0x8000) 0xffff))));
        map (fun (rd, imm) -> Isa.Lui (rd, imm)) (pair reg (int_range 0 0xffff));
        map
          (fun ((rd, r1), imm) -> Isa.Lw (rd, r1, imm))
          (pair (pair reg reg) (int_range 0 0xffff));
        map
          (fun ((rs2, r1), imm) -> Isa.Sw (rs2, r1, imm))
          (pair (pair reg reg) (int_range 0 0xffff));
        map
          (fun ((op, r1), (r2, tgt)) -> Isa.Branch (op, r1, r2, tgt))
          (pair
             (pair (oneofl Isa.[ BEQ; BNE; BLT; BGE; BLTU; BGEU ]) reg)
             (pair reg (int_range 0 40)));
        map (fun (rd, tgt) -> Isa.Jal (rd, tgt)) (pair reg (int_range 0 40));
        map
          (fun ((rd, r1), imm) -> Isa.Jalr (rd, r1, imm))
          (pair (pair reg reg) (int_range 0 40));
        return Isa.Ecall;
      ]
  in
  list_size (int_range 1 30) instr >|= fun body -> body @ halt_seq

(* ---- the differential property ---- *)

let max_checked_bound = 1_000_000

let soundness_prop prog =
  match clean_bound (analyze prog) with
  | None -> true (* analyzer rejected (or could not bound): vacuous *)
  | Some bound when bound > max_checked_bound -> true
  | Some bound -> (
    (* Cycles dominate reads, so [bound] words can never run dry. *)
    let input = Array.init bound (fun i -> (i * 2654435761) land 0xffff) in
    let program = Program.of_instrs (Array.of_list prog) in
    match Machine.run program ~max_cycles:(bound + 1) ~input with
    | r ->
      if r.Machine.cycles > bound then
        QCheck.Test.fail_reportf
          "bound unsound: proved %d cycles, machine ran %d\n%s" bound
          r.Machine.cycles (pp_prog prog)
      else true
    | exception Machine.Trap { cycle; pc; reason } ->
      QCheck.Test.fail_reportf
        "analyzer-clean program trapped at pc %d cycle %d: %s\n%s" pc cycle
        reason (pp_prog prog))

let arb gen = QCheck.make ~print:pp_prog gen

let prop_provable_sound =
  QCheck.Test.make ~name:"analyzer-clean implies no trap, cycles <= bound"
    ~count:500 (arb gen_provable) soundness_prop

let prop_noise_sound =
  QCheck.Test.make ~name:"noise: anything blessed must also run clean"
    ~count:300 (arb gen_noise) soundness_prop

(* The property above is vacuous on rejected programs — make sure the
   provable generator actually exercises it. *)
let test_not_vacuous () =
  let st = Random.State.make [| 0xbeef |] in
  let total = 200 in
  let clean = ref 0 in
  for _ = 1 to total do
    let prog = QCheck.Gen.generate1 ~rand:st gen_provable in
    match clean_bound (analyze prog) with
    | Some _ -> incr clean
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough analyzer-clean samples (%d/%d)" !clean total)
    true
    (!clean * 2 >= total)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "zkflow_soundness"
    [
      ( "differential",
        [
          q prop_provable_sound;
          q prop_noise_sound;
          Alcotest.test_case "fuzzer is not vacuous" `Quick test_not_vacuous;
        ] );
    ]
