(* Fault injection + crash consistency: plan codecs, crash/fail hooks,
   retry backoff determinism, kill/resume at every catalogued crash
   site (final root bit-identical to the uninterrupted twin — the
   ISSUE's acceptance assertion), storage corruption recovery,
   degraded rounds with gap journal + heal, coverage verification, and
   one full Chaos.run cycle. *)

module D = Zkflow_hash.Digest32
module Record = Zkflow_netflow.Record
module Gen = Zkflow_netflow.Gen
module Db = Zkflow_store.Db
module Wal = Zkflow_store.Wal
module Board = Zkflow_commitlog.Board
module Fault = Zkflow_fault.Fault
module Rng = Zkflow_util.Rng
open Zkflow_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let digest = Alcotest.testable D.pp D.equal
let params = Zkflow_zkproof.Params.make ~queries:8

let with_tmp f =
  let path = Filename.temp_file "zkflow_fault" ".wal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () ->
      Sys.remove path;
      f path)

(* Every test that arms hooks must disarm on the way out, or a failing
   assertion would leak crashes into unrelated tests. *)
let with_plan plan f =
  Fault.install plan;
  Fun.protect ~finally:Fault.clear f

let plan ?(seed = 0) ?(name = "test") faults = { Fault.seed; name; faults }

(* ---- plan codec ---- *)

let sample_plan =
  plan ~seed:42 ~name:"kitchen-sink"
    [
      Fault.Drop { router = 1; epoch = 0 };
      Fault.Delay { router = 2; epoch = 1 };
      Fault.Duplicate { router = 0; epoch = 0 };
      Fault.Crash_at { site = "agg.pre_checkpoint"; hits = 2 };
      Fault.Flaky { site = "agg.fetch"; failures = 3 };
      Fault.Torn_write { target = "checkpoint"; drop_bytes = 7 };
      Fault.Bit_flip { target = "checkpoint" };
      Fault.Flood { windows = 9; capacity = 4 };
    ]

let test_plan_json_roundtrip () =
  match Fault.plan_of_string (Fault.plan_to_string sample_plan) with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check_bool "roundtrip" true (p = sample_plan);
    check_int "seed" 42 p.Fault.seed;
    check_string "name" "kitchen-sink" p.Fault.name

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_plan_rejects_garbage () =
  check_bool "not json" true (Result.is_error (Fault.plan_of_string "]["));
  check_bool "wrong shape" true
    (Result.is_error (Fault.plan_of_string {|{"seed": "nope"}|}))

let test_plan_file_roundtrip () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc (Fault.plan_to_string sample_plan);
      close_out oc;
      match Fault.load_plan path with
      | Ok p -> check_bool "loaded" true (p = sample_plan)
      | Error e -> Alcotest.fail e)

let test_random_plan_deterministic () =
  let a = Fault.random_plan ~routers:3 ~epochs:3 ~seed:7 () in
  let b = Fault.random_plan ~routers:3 ~epochs:3 ~seed:7 () in
  let c = Fault.random_plan ~routers:3 ~epochs:3 ~seed:8 () in
  check_bool "same seed, same plan" true (a = b);
  check_bool "different seed, different plan" true (a <> c);
  check_bool "nonempty" true (a.Fault.faults <> [])

let kind_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun r e -> Fault.Drop { router = r; epoch = e }) (int_bound 7) (int_bound 7);
        map2 (fun r e -> Fault.Delay { router = r; epoch = e }) (int_bound 7) (int_bound 7);
        map2
          (fun r e -> Fault.Duplicate { router = r; epoch = e })
          (int_bound 7) (int_bound 7);
        map2
          (fun site h -> Fault.Crash_at { site; hits = h + 1 })
          (oneofl Fault.crash_site_catalogue)
          (int_bound 3);
        map2
          (fun site f -> Fault.Flaky { site; failures = f + 1 })
          (oneofl [ "agg.fetch"; "store.read" ])
          (int_bound 4);
        map
          (fun n -> Fault.Torn_write { target = "checkpoint"; drop_bytes = n + 1 })
          (int_bound 64);
        return (Fault.Bit_flip { target = "checkpoint" });
      ])

let plan_arb =
  QCheck.make
    ~print:(fun p -> Fault.plan_to_string p)
    QCheck.Gen.(
      map2
        (fun seed faults -> { Fault.seed; name = "qc"; faults })
        (int_bound 10_000)
        (list_size (int_bound 8) kind_gen))

let qcheck_plan_roundtrip =
  QCheck.Test.make ~count:200 ~name:"plan json roundtrip" plan_arb (fun p ->
      Fault.plan_of_string (Fault.plan_to_string p) = Ok p)

(* ---- crash/fail hooks ---- *)

let test_crashpoint_countdown () =
  with_plan (plan [ Fault.Crash_at { site = "t.site"; hits = 2 } ]) (fun () ->
      check_bool "armed" true (Fault.armed ());
      Fault.crashpoint "t.site";
      Fault.crashpoint "t.other";
      (try
         Fault.crashpoint "t.site";
         Alcotest.fail "second pass should crash"
       with Fault.Crash site -> check_string "payload is site" "t.site" site);
      (* disarm-before-raise: the site never fires twice *)
      Fault.crashpoint "t.site");
  check_bool "cleared" false (Fault.armed ());
  Fault.crashpoint "t.site"

let test_failpoint_budget () =
  with_plan (plan [ Fault.Flaky { site = "t.flaky"; failures = 2 } ]) (fun () ->
      check_bool "fail 1" true (Result.is_error (Fault.failpoint "t.flaky"));
      check_bool "fail 2" true (Result.is_error (Fault.failpoint "t.flaky"));
      check_bool "then ok" true (Fault.failpoint "t.flaky" = Ok ());
      check_bool "other sites ok" true (Fault.failpoint "t.other" = Ok ()))

let test_retry_recovers_and_is_deterministic () =
  let run () =
    let sleeps = ref [] in
    let calls = ref 0 in
    with_plan (plan [ Fault.Flaky { site = "t.retry"; failures = 3 } ]) (fun () ->
        let r =
          Fault.Retry.with_backoff
            ~sleep:(fun s -> sleeps := s :: !sleeps)
            ~rng:(Rng.create 5L) ~label:"t.retry"
            (fun () ->
              incr calls;
              Result.map (fun () -> "done") (Fault.failpoint "t.retry"))
        in
        (r, !calls, List.rev !sleeps))
  in
  let r1, calls1, sleeps1 = run () in
  let r2, calls2, sleeps2 = run () in
  check_bool "recovered" true (r1 = Ok "done");
  check_int "3 failures + 1 success" 4 calls1;
  check_int "one sleep per retry" 3 (List.length sleeps1);
  check_bool "jitter bounded" true
    (List.for_all (fun s -> s >= 0.0 && s <= 0.05) sleeps1);
  check_bool "same seed, same schedule" true (calls1 = calls2 && sleeps1 = sleeps2);
  check_bool "same result" true (r1 = r2)

let test_retry_exhaustion () =
  with_plan (plan [ Fault.Flaky { site = "t.dead"; failures = 99 } ]) (fun () ->
      match
        Fault.Retry.with_backoff ~max_attempts:3 ~rng:(Rng.create 1L)
          ~label:"t.dead" (fun () -> Fault.failpoint "t.dead")
      with
      | Ok () -> Alcotest.fail "should exhaust"
      | Error e -> check_bool "error names the label" true (contains ~needle:"t.dead" e))

let test_retry_zero_attempt_budget () =
  (* A budget of zero attempts is a caller bug, not a quiet no-op. *)
  match
    Fault.Retry.with_backoff ~max_attempts:0 ~rng:(Rng.create 1L) ~label:"t.zero"
      (fun () -> Ok ())
  with
  | exception Invalid_argument _ -> ()
  | Ok () -> Alcotest.fail "zero-attempt budget must not succeed"
  | Error e -> Alcotest.fail ("expected Invalid_argument, got Error " ^ e)

let test_retry_exhaustion_surfaces_last_error () =
  (* The error the caller sees is the edge's own last failure, with the
     give-up count appended — not a generic retry message. *)
  let attempt = ref 0 in
  match
    Fault.Retry.with_backoff ~max_attempts:3 ~rng:(Rng.create 2L) ~label:"t.last"
      (fun () ->
        incr attempt;
        Error (Printf.sprintf "edge failure #%d" !attempt))
  with
  | Ok () -> Alcotest.fail "should exhaust"
  | Error e ->
    check_bool "carries the last underlying error" true
      (contains ~needle:"edge failure #3" e);
    check_bool "reports the attempt budget" true
      (contains ~needle:"gave up after 3 attempts" e)

let test_retry_backoff_ceiling () =
  (* Many retries with a tiny cap: every jittered sleep must stay under
     [max_ms], however far the exponential doubling has run. *)
  let sleeps = ref [] in
  (match
     Fault.Retry.with_backoff ~max_attempts:12 ~base_ms:1. ~max_ms:4.
       ~sleep:(fun s -> sleeps := s :: !sleeps)
       ~rng:(Rng.create 7L) ~label:"t.ceiling"
       (fun () -> Error "always down")
   with
  | Ok () -> Alcotest.fail "should exhaust"
  | Error _ -> ());
  check_int "one sleep per non-final attempt" 11 (List.length !sleeps);
  check_bool "all sleeps under the 4ms cap" true
    (List.for_all (fun s -> s >= 0. && s <= 0.004) !sleeps)

(* ---- crash/resume: bit-identical roots at every catalogued site ---- *)

let load_epoch db ~epoch ~routers ~per_router ~seed =
  for r = 0 to routers - 1 do
    let records =
      Gen.records
        (Rng.create (Int64.of_int (seed + (1000 * r) + epoch)))
        Gen.default_profile ~router_id:r ~count:per_router
    in
    Array.iter
      (fun rc ->
        Db.insert db
          (Record.make ~key:rc.Record.key ~first_ts:(epoch * 5000)
             ~last_ts:((epoch * 5000) + 100) ~router_id:r rc.Record.metrics))
      records
  done

let fresh_world ~seed =
  let db = Db.create ~epoch:Zkflow_store.Epoch.default () in
  load_epoch db ~epoch:0 ~routers:2 ~per_router:3 ~seed;
  load_epoch db ~epoch:1 ~routers:2 ~per_router:3 ~seed:(seed + 100);
  let board = Board.create () in
  (db, board, Prover_service.create ~proof_params:params ~db ~board ())

(* Publish + aggregate the epochs in order, restarting from the
   checkpoint journal every time an armed crash site kills us. *)
let drive_with_restarts ~db ~board ~path service epochs =
  let resumes = ref 0 in
  let rec go service epochs =
    match epochs with
    | [] -> service
    | e :: rest -> (
      match
        (try
           ignore (Result.get_ok (Prover_service.publish_epoch service ~epoch:e));
           ignore (Result.get_ok (Prover_service.aggregate_epoch service ~epoch:e));
           `Done
         with Fault.Crash _ -> `Crashed)
      with
      | `Done -> go service rest
      | `Crashed ->
        Prover_service.abandon service;
        incr resumes;
        if !resumes > 10 then Alcotest.fail "restart budget exhausted";
        let service', _restored =
          Result.get_ok (Prover_service.resume ~proof_params:params ~db ~board ~path ())
        in
        let covered = Prover_service.covered_epochs service' in
        go service' (List.filter (fun e -> not (List.mem e covered)) (e :: rest)))
  in
  let final = go service epochs in
  (final, !resumes)

let twin_root ~seed =
  let _, _, twin = fresh_world ~seed in
  ignore (Result.get_ok (Prover_service.publish_epoch twin ~epoch:0));
  ignore (Result.get_ok (Prover_service.aggregate_epoch twin ~epoch:0));
  ignore (Result.get_ok (Prover_service.publish_epoch twin ~epoch:1));
  ignore (Result.get_ok (Prover_service.aggregate_epoch twin ~epoch:1));
  Prover_service.latest_root twin

let test_kill_resume_every_site () =
  let expected = twin_root ~seed:60 in
  List.iter
    (fun site ->
      with_tmp (fun path ->
          let db, board, service = fresh_world ~seed:60 in
          Prover_service.with_checkpoints service ~path;
          with_plan (plan [ Fault.Crash_at { site; hits = 2 } ]) (fun () ->
              let final, resumes =
                drive_with_restarts ~db ~board ~path service [ 0; 1 ]
              in
              check_bool (site ^ ": crashed at least once") true (resumes >= 1);
              check_int (site ^ ": both rounds present") 2
                (List.length (Prover_service.rounds final));
              Alcotest.check digest (site ^ ": root bit-identical to twin") expected
                (Prover_service.latest_root final);
              (* and the resumed history verifies end to end *)
              let receipts =
                List.mapi
                  (fun i (r : Aggregate.round) -> (i, r.Aggregate.receipt))
                  (Prover_service.rounds final)
              in
              match Verifier_client.verify_chain ~board receipts with
              | Ok chain ->
                Alcotest.check digest (site ^ ": chain root") expected
                  chain.Verifier_client.final_root
              | Error e -> Alcotest.fail (site ^ ": " ^ e))))
    Fault.crash_site_catalogue

(* ---- storage corruption of the checkpoint journal ---- *)

let checkpointed_two_rounds ~seed path =
  let db, board, service = fresh_world ~seed in
  Prover_service.with_checkpoints service ~path;
  ignore (Result.get_ok (Prover_service.publish_epoch service ~epoch:0));
  ignore (Result.get_ok (Prover_service.aggregate_epoch service ~epoch:0));
  ignore (Result.get_ok (Prover_service.publish_epoch service ~epoch:1));
  ignore (Result.get_ok (Prover_service.aggregate_epoch service ~epoch:1));
  let root = Prover_service.latest_root service in
  Prover_service.abandon service;
  (db, board, root)

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let truncate_tail path n =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = max 0 (len - n) in
  let contents = really_input_string ic keep in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let flip_bit path ~at =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  Bytes.set contents at (Char.chr (Char.code (Bytes.get contents at) lxor 0x10));
  let oc = open_out_bin path in
  output_bytes oc contents;
  close_out oc

let recover_and_check ~db ~board ~path ~expected_root ~expected_restored =
  match Prover_service.resume ~proof_params:params ~db ~board ~path () with
  | Error e -> Alcotest.fail e
  | Ok (service, restored) ->
    check_int "rounds restored" expected_restored restored;
    (* the destroyed suffix is simply re-proved, bit-identically *)
    List.iter
      (fun e ->
        if not (List.mem e (Prover_service.covered_epochs service)) then (
          ignore (Result.get_ok (Prover_service.publish_epoch service ~epoch:e));
          ignore (Result.get_ok (Prover_service.aggregate_epoch service ~epoch:e))))
      [ 0; 1 ];
    Alcotest.check digest "root recovered" expected_root
      (Prover_service.latest_root service)

let test_torn_checkpoint_tail () =
  with_tmp (fun path ->
      let db, board, root = checkpointed_two_rounds ~seed:70 path in
      (* a partial flush frozen at the instant of death: the second row
         loses its tail, replay keeps exactly the intact prefix *)
      truncate_tail path 9;
      recover_and_check ~db ~board ~path ~expected_root:root ~expected_restored:1)

let test_bitflip_checkpoint_row () =
  with_tmp (fun path ->
      let db, board, root = checkpointed_two_rounds ~seed:71 path in
      (* flip one bit inside the last row's payload: the frame is
         intact but the checksum fails, so resume drops the row and
         compacts the file to the good prefix *)
      let size = file_size path in
      flip_bit path ~at:(size - 5);
      recover_and_check ~db ~board ~path ~expected_root:root ~expected_restored:1;
      (* the compacted file now replays clean: only intact rows left *)
      check_int "compacted to good prefix + re-proved round" 2
        (List.length (Result.get_ok (Wal.replay path))))

let test_bitflip_first_row_drops_everything () =
  with_tmp (fun path ->
      let db, board, root = checkpointed_two_rounds ~seed:72 path in
      (* corruption in row 1 invalidates the whole prefix: resume
         starts from scratch and re-proves both rounds *)
      flip_bit path ~at:40;
      recover_and_check ~db ~board ~path ~expected_root:root ~expected_restored:0)

(* ---- degraded rounds, gap journal, heal ---- *)

let degraded_world () =
  let db = Db.create ~epoch:Zkflow_store.Epoch.default () in
  load_epoch db ~epoch:0 ~routers:3 ~per_router:3 ~seed:80;
  let board = Board.create () in
  (db, board, Prover_service.create ~proof_params:params ~db ~board ())

let publish_router board db ~router_id ~epoch =
  Result.get_ok (Board.publish board (Db.window db ~router_id ~epoch) ~router_id ~epoch)

let covered_rounds service =
  List.map2
    (fun (c : Prover_service.coverage) (r : Aggregate.round) ->
      {
        Verifier_client.epoch = c.Prover_service.epoch;
        routers = c.Prover_service.routers;
        degraded = c.Prover_service.degraded;
        heal = c.Prover_service.heal;
        receipt = r.Aggregate.receipt;
      })
    (Prover_service.coverage service)
    (Prover_service.rounds service)

let test_degraded_round_then_heal () =
  let db, board, service = degraded_world () in
  (* router 2 is late: only 0 and 1 made the deadline *)
  ignore (publish_router board db ~router_id:0 ~epoch:0);
  ignore (publish_router board db ~router_id:1 ~epoch:0);
  (match Prover_service.aggregate_available service ~epoch:0 with
   | Ok (Prover_service.Degraded (_, [ gap ])) ->
     check_int "gap router" 2 gap.Prover_service.router_id;
     check_int "gap epoch" 0 gap.Prover_service.epoch;
     check_bool "gap open" true (gap.Prover_service.healed_round = None)
   | Ok _ -> Alcotest.fail "expected a degraded round with one gap"
   | Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair int int)))
    "gap journal names the absentee" [ (2, 0) ]
    (Prover_service.open_gaps service);
  check_bool "nothing healable yet" false (Prover_service.heal_pending service);
  (* the straggler finally publishes; a heal round folds it in *)
  ignore (publish_router board db ~router_id:2 ~epoch:0);
  check_bool "healable now" true (Prover_service.heal_pending service);
  (match Prover_service.heal service with
   | Ok [ _ ] -> ()
   | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 heal round, got %d" (List.length l))
   | Error e -> Alcotest.fail e);
  check_int "no open gaps" 0 (List.length (Prover_service.open_gaps service));
  (match Prover_service.gaps service with
   | [ g ] -> check_bool "healed by round 1" true (g.Prover_service.healed_round = Some 1)
   | _ -> Alcotest.fail "expected exactly one journal entry");
  (match Prover_service.coverage service with
   | [ c0; c1 ] ->
     check_bool "round 0 degraded" true c0.Prover_service.degraded;
     check_bool "round 1 is a heal" true c1.Prover_service.heal;
     Alcotest.(check (list int)) "heal covers the straggler" [ 2 ]
       c1.Prover_service.routers
   | _ -> Alcotest.fail "expected two coverage entries");
  (* the whole degraded-then-healed history verifies from public data *)
  match Verifier_client.verify_coverage ~board ~gaps:[] (covered_rounds service) with
  | Error e -> Alcotest.fail e
  | Ok report ->
    check_bool "complete" true report.Verifier_client.complete;
    check_int "two rounds" 2 report.Verifier_client.round_count;
    Alcotest.check digest "final root" (Prover_service.latest_root service)
      report.Verifier_client.final_root

let test_skipped_round_when_nothing_published () =
  let _, _, service = degraded_world () in
  match Prover_service.aggregate_available service ~epoch:0 with
  | Ok (Prover_service.Skipped gaps) ->
    check_int "all three named" 3 (List.length gaps);
    check_int "no round ran" 0 (List.length (Prover_service.rounds service));
    check_int "journal has them" 3 (List.length (Prover_service.open_gaps service))
  | Ok _ -> Alcotest.fail "expected Skipped"
  | Error e -> Alcotest.fail e

let test_coverage_rejects_silent_loss () =
  let db, board, service = degraded_world () in
  ignore (publish_router board db ~router_id:0 ~epoch:0);
  ignore (publish_router board db ~router_id:1 ~epoch:0);
  (match Prover_service.aggregate_available service ~epoch:0 with
   | Ok (Prover_service.Degraded _) -> ()
   | _ -> Alcotest.fail "expected degraded round");
  (* router 2's commitment appears on the board but the history neither
     covers it nor declares the gap: silent loss, rejected *)
  ignore (publish_router board db ~router_id:2 ~epoch:0);
  (match Verifier_client.verify_coverage ~board ~gaps:[] (covered_rounds service) with
   | Ok _ -> Alcotest.fail "silent loss accepted"
   | Error e ->
     check_bool "names the loss" true (contains ~needle:"neither covered" e));
  (* declaring it as an open gap makes the same history acceptable *)
  match
    Verifier_client.verify_coverage ~board ~gaps:[ (2, 0) ] (covered_rounds service)
  with
  | Ok report -> check_bool "incomplete but verified" false report.Verifier_client.complete
  | Error e -> Alcotest.fail e

let test_coverage_rejects_gap_covered_overlap () =
  let db, board, service = degraded_world () in
  ignore (publish_router board db ~router_id:0 ~epoch:0);
  ignore (publish_router board db ~router_id:1 ~epoch:0);
  (match Prover_service.aggregate_available service ~epoch:0 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (* claiming router 0 both covered and an open gap is a contradiction *)
  match
    Verifier_client.verify_coverage ~board
      ~gaps:[ (0, 0); (2, 0) ]
      (covered_rounds service)
  with
  | Ok _ -> Alcotest.fail "contradictory claim accepted"
  | Error _ -> ()

(* ---- idempotent publication ---- *)

let test_publish_epoch_idempotent () =
  let db, board, service = degraded_world () in
  (* router 1 already made it to the board (e.g. before a crash) *)
  ignore (publish_router board db ~router_id:1 ~epoch:0);
  (match Prover_service.publish_epoch service ~epoch:0 with
   | Ok r ->
     check_int "two fresh" 2 (List.length r.Prover_service.published);
     Alcotest.(check (list int)) "one skipped" [ 1 ] r.Prover_service.skipped
   | Error e -> Alcotest.fail e);
  (* running the whole epoch again is a no-op, not a board rejection *)
  match Prover_service.publish_epoch service ~epoch:0 with
  | Ok r ->
    check_int "nothing fresh" 0 (List.length r.Prover_service.published);
    check_int "all skipped" 3 (List.length r.Prover_service.skipped)
  | Error e -> Alcotest.fail e

(* ---- save/load carries coverage + gap journal ---- *)

let test_save_load_preserves_gaps () =
  let db, board, service = degraded_world () in
  ignore (publish_router board db ~router_id:0 ~epoch:0);
  ignore (publish_router board db ~router_id:1 ~epoch:0);
  ignore (Result.get_ok (Prover_service.aggregate_available service ~epoch:0));
  let saved = Prover_service.save service in
  match Prover_service.load ~proof_params:params ~db ~board saved with
  | Error e -> Alcotest.fail e
  | Ok restored ->
    Alcotest.check digest "root survives" (Prover_service.latest_root service)
      (Prover_service.latest_root restored);
    Alcotest.(check (list (pair int int)))
      "open gaps survive" [ (2, 0) ]
      (Prover_service.open_gaps restored);
    check_bool "coverage survives" true
      (Prover_service.coverage restored = Prover_service.coverage service);
    (* and the restored service can still heal *)
    ignore (publish_router board db ~router_id:2 ~epoch:0);
    (match Prover_service.heal restored with
     | Ok [ _ ] -> check_int "healed" 0 (List.length (Prover_service.open_gaps restored))
     | Ok _ -> Alcotest.fail "expected one heal round"
     | Error e -> Alcotest.fail e)

(* ---- the full chaos cycle ---- *)

let chaos_config =
  {
    Chaos.default_config with
    Chaos.routers = 2;
    flows = 6;
    rate_pps = 25.0;
    duration_ms = 9_000;
  }

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "zkflow-fault-%d-%d" (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d

let test_chaos_run_crash_storm () =
  let p =
    plan ~seed:3 ~name:"crash-storm"
      [
        Fault.Crash_at { site = "agg.pre_prove"; hits = 1 };
        Fault.Crash_at { site = "ckpt.pre_sync"; hits = 2 };
        Fault.Crash_at { site = "agg.post_checkpoint"; hits = 2 };
        Fault.Torn_write { target = "checkpoint"; drop_bytes = 5 };
      ]
  in
  match Chaos.run ~dir:(fresh_dir ()) ~config:chaos_config ~plan:p () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_bool "crashed" true (r.Chaos.crashes >= 3);
    check_bool "resumed" true (r.Chaos.resumes >= 1);
    check_bool "safety" true r.Chaos.safety_ok;
    check_bool "liveness" true r.Chaos.liveness_ok;
    check_string "root bit-identical to twin" r.Chaos.twin_root r.Chaos.final_root;
    check_bool "complete" true (r.Chaos.status = Chaos.Complete)

let test_chaos_run_dropped_export_degrades_explicitly () =
  let p = plan ~seed:4 ~name:"dropped-export" [ Fault.Drop { router = 1; epoch = 0 } ] in
  match Chaos.run ~dir:(fresh_dir ()) ~config:chaos_config ~plan:p () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_bool "safety" true r.Chaos.safety_ok;
    check_bool "liveness: loss is explicit" true r.Chaos.liveness_ok;
    check_bool "gap names the destroyed export" true
      (List.mem (1, 0) r.Chaos.open_gaps);
    check_bool "degraded status" true (r.Chaos.status = Chaos.Degraded);
    check_string "root still bit-identical to twin" r.Chaos.twin_root r.Chaos.final_root

let test_chaos_daemon_twin () =
  (* Daemon-mode chaos: worker kills, a harness-side publish kill, a
     held export healed during the drain, and an overload burst — the
     resident daemon's final root must still be bit-identical to the
     uninterrupted *batch* twin over the same records. *)
  let p =
    plan ~seed:5 ~name:"daemon-storm"
      [
        Fault.Crash_at { site = "agg.pre_checkpoint"; hits = 1 };
        Fault.Crash_at { site = "board.publish"; hits = 1 };
        Fault.Delay { router = 1; epoch = 0 };
        Fault.Flood { windows = 6; capacity = 3 };
      ]
  in
  match Chaos.run_daemon ~dir:(fresh_dir ()) ~config:chaos_config ~plan:p () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let b = r.Chaos.base in
    check_bool "crashed at both kill sites" true (b.Chaos.crashes >= 2);
    check_bool "resumed" true (b.Chaos.resumes >= 1);
    check_bool "safety" true b.Chaos.safety_ok;
    check_bool "liveness" true b.Chaos.liveness_ok;
    check_string "root bit-identical to batch twin" b.Chaos.twin_root
      b.Chaos.final_root;
    check_bool "held export healed" true (b.Chaos.heal_rounds >= 1);
    check_bool "complete after heal" true (b.Chaos.status = Chaos.Complete);
    check_bool "every window admitted" true (r.Chaos.accepted >= r.Chaos.submitted - r.Chaos.duplicates && r.Chaos.submitted > 0);
    check_bool "drained" true (r.Chaos.drains >= 1);
    check_int "flood shed exactly past capacity" 3 r.Chaos.flood_shed;
    check_bool "flood verdict" true r.Chaos.flood_ok

let () =
  Alcotest.run "zkflow_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "json roundtrip" `Quick test_plan_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_plan_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick test_plan_file_roundtrip;
          Alcotest.test_case "random plan deterministic" `Quick
            test_random_plan_deterministic;
          QCheck_alcotest.to_alcotest qcheck_plan_roundtrip;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "crashpoint countdown" `Quick test_crashpoint_countdown;
          Alcotest.test_case "failpoint budget" `Quick test_failpoint_budget;
          Alcotest.test_case "retry recovers deterministically" `Quick
            test_retry_recovers_and_is_deterministic;
          Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
          Alcotest.test_case "retry zero-attempt budget" `Quick
            test_retry_zero_attempt_budget;
          Alcotest.test_case "retry exhaustion surfaces last error" `Quick
            test_retry_exhaustion_surfaces_last_error;
          Alcotest.test_case "retry backoff ceiling" `Quick test_retry_backoff_ceiling;
        ] );
      ( "crash-resume",
        [
          Alcotest.test_case "kill/resume at every site, root bit-identical" `Slow
            test_kill_resume_every_site;
          Alcotest.test_case "torn checkpoint tail" `Quick test_torn_checkpoint_tail;
          Alcotest.test_case "bit-flipped checkpoint row" `Quick
            test_bitflip_checkpoint_row;
          Alcotest.test_case "bit-flipped first row" `Quick
            test_bitflip_first_row_drops_everything;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "degraded round then heal" `Quick
            test_degraded_round_then_heal;
          Alcotest.test_case "skipped round" `Quick
            test_skipped_round_when_nothing_published;
          Alcotest.test_case "silent loss rejected" `Quick
            test_coverage_rejects_silent_loss;
          Alcotest.test_case "gap/covered overlap rejected" `Quick
            test_coverage_rejects_gap_covered_overlap;
        ] );
      ( "idempotency",
        [ Alcotest.test_case "publish_epoch" `Quick test_publish_epoch_idempotent ] );
      ( "persistence",
        [ Alcotest.test_case "save/load keeps gap journal" `Quick
            test_save_load_preserves_gaps ] );
      ( "chaos",
        [
          Alcotest.test_case "crash storm: safety + liveness" `Slow
            test_chaos_run_crash_storm;
          Alcotest.test_case "dropped export degrades explicitly" `Slow
            test_chaos_run_dropped_export_degrades_explicitly;
          Alcotest.test_case "daemon-mode: kills + held export + flood" `Slow
            test_chaos_daemon_twin;
        ] );
    ]
