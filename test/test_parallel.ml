(* Differential tests for the Domain work pool: every parallel hot
   path must be bit-identical to the sequential one across job
   counts, including empty and non-power-of-two inputs. *)

module Pool = Zkflow_parallel.Pool
module Tree = Zkflow_merkle.Tree
module D = Zkflow_hash.Digest32
module Gen = Zkflow_netflow.Gen
module Export = Zkflow_netflow.Export
open Zkflow_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let digest = Alcotest.testable D.pp D.equal
let job_sweep = [ 1; 2; 4 ]

let with_jobs j f =
  let saved = Pool.jobs () in
  Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

(* ---- pool mechanics ---- *)

let test_parallel_for_covers_range () =
  List.iter
    (fun j ->
      with_jobs j (fun () ->
          let n = 10_000 in
          let hits = Array.make n 0 in
          Pool.parallel_for ~min_chunk:16 n (fun lo hi ->
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          check_bool
            (Printf.sprintf "jobs=%d every index exactly once" j)
            true
            (Array.for_all (fun c -> c = 1) hits)))
    job_sweep

let test_init_and_map_array () =
  List.iter
    (fun j ->
      with_jobs j (fun () ->
          let a = Pool.init_array ~min_chunk:8 1000 (fun i -> (i * 7) mod 31 ) in
          check_bool "init_array" true (a = Array.init 1000 (fun i -> (i * 7) mod 31));
          let doubled = Pool.map_array ~min_chunk:8 (fun x -> 2 * x) a in
          check_bool "map_array" true (doubled = Array.map (fun x -> 2 * x) a);
          check_int "empty init" 0 (Array.length (Pool.init_array 0 (fun i -> i)))))
    job_sweep

let test_exception_propagates () =
  with_jobs 4 (fun () ->
      Alcotest.check_raises "body exception re-raised" (Failure "boom") (fun () ->
          Pool.parallel_for ~min_chunk:1 64 (fun lo _hi ->
              if lo >= 32 then failwith "boom")))

let test_nested_regions_degrade () =
  with_jobs 4 (fun () ->
      let n = 64 in
      let out = Array.make (n * n) 0 in
      Pool.parallel_for ~min_chunk:1 n (fun lo hi ->
          for i = lo to hi - 1 do
            (* Nested region: must run sequentially, not deadlock. *)
            Pool.parallel_for ~min_chunk:1 n (fun lo2 hi2 ->
                for k = lo2 to hi2 - 1 do
                  out.((i * n) + k) <- i + k
                done)
          done);
      check_bool "nested result" true
        (Array.for_all Fun.id (Array.init (n * n) (fun x -> out.(x) = (x / n) + (x mod n)))))

let test_set_jobs_clamps () =
  with_jobs 3 (fun () ->
      Pool.set_jobs 0;
      check_int "clamped to 1" 1 (Pool.jobs ());
      Pool.set_jobs 2;
      check_int "takes effect" 2 (Pool.jobs ()))

(* ---- edge cases observed through the pool telemetry ---- *)

module Obs = Zkflow_obs.Obs

let run_region n = Pool.parallel_for ~min_chunk:1 n (fun _ _ -> ())

(* set_jobs between regions tears the pool down and rebuilds it at the
   new size; the spawned-domains counter proves the rebuild actually
   happened (and that an unchanged size does NOT rebuild). *)
let test_set_jobs_rebuilds_pool () =
  with_jobs 1 (fun () ->
      Obs.with_enabled (fun () ->
          Pool.set_jobs 3;
          run_region 1000;
          let after_first = (Pool.stats ()).Pool.spawned_domains in
          check_int "3-job pool spawned 2 workers" 2 after_first;
          run_region 1000;
          check_int "same size: no respawn" after_first
            (Pool.stats ()).Pool.spawned_domains;
          Pool.set_jobs 2;
          run_region 1000;
          check_int "rebuild at 2 jobs spawned 1 more" (after_first + 1)
            (Pool.stats ()).Pool.spawned_domains))

(* Nested regions must degrade to the sequential path, and the
   dedicated counter must say so — that counter is how a trace reader
   distinguishes "pool saturated" from "parallelism disabled". *)
let test_nested_seq_counter () =
  with_jobs 4 (fun () ->
      Obs.with_enabled (fun () ->
          Pool.parallel_for ~min_chunk:1 64 (fun lo hi ->
              for _ = lo to hi - 1 do
                Pool.parallel_for ~min_chunk:1 64 (fun _ _ -> ())
              done);
          let s = Pool.stats () in
          check_int "outer pooled region" 1 s.Pool.regions;
          check_int "every inner region degraded" 64 s.Pool.nested_seq;
          check_bool "no top-level sequential fallback" true
            (s.Pool.seq_regions = 0)))

(* A chunk that raises still counts as an executed task, so the
   accounting stays consistent: tasks == chunk count of every drained
   region even on the error path. *)
let test_exception_keeps_counters_consistent () =
  with_jobs 4 (fun () ->
      Obs.with_enabled (fun () ->
          (try
             Pool.parallel_for ~min_chunk:1 64 (fun lo _hi ->
                 if lo >= 32 then failwith "boom")
           with Failure _ -> ());
          let s = Pool.stats () in
          check_int "one region drained" 1 s.Pool.regions;
          let h = Zkflow_obs.Metric.histogram "pool.region_chunks" in
          let snap = Zkflow_obs.Metric.snapshot h in
          check_int "one region observed" 1 snap.Zkflow_obs.Metric.count;
          check_int "tasks == chunks despite exceptions"
            snap.Zkflow_obs.Metric.sum s.Pool.tasks;
          check_bool "busy time recorded" true (s.Pool.busy_ns >= 0)))

(* ---- next_pow2 overflow guard ---- *)

let test_next_pow2 () =
  List.iter
    (fun (n, want) -> check_int (Printf.sprintf "next_pow2 %d" n) want (Tree.next_pow2 n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (5, 8); (1024, 1024); (1025, 2048) ];
  check_bool "max_int/2 still closes" true (Tree.next_pow2 (max_int / 2) > 0);
  Alcotest.check_raises "overflow guarded"
    (Invalid_argument "Tree.next_pow2: leaf count exceeds max_int / 2") (fun () ->
      ignore (Tree.next_pow2 ((max_int / 2) + 1)))

(* ---- differential: Merkle ---- *)

let tree_sizes = [ 0; 1; 2; 3; 7; 100; 257; 1024; 5000 ]

let leaf_data n = Array.init n (fun i -> Bytes.of_string (Printf.sprintf "par-%d" i))

let test_tree_roots_match_sequential () =
  List.iter
    (fun n ->
      let data = leaf_data n in
      let hs = Array.map Tree.leaf_hash data in
      let base_tree = with_jobs 1 (fun () -> Tree.root (Tree.of_leaf_hashes hs)) in
      let base_leaves = with_jobs 1 (fun () -> Tree.root (Tree.of_leaves data)) in
      let base_fast = with_jobs 1 (fun () -> Tree.root_of_leaf_hashes hs) in
      List.iter
        (fun j ->
          with_jobs j (fun () ->
              let tag f = Printf.sprintf "n=%d jobs=%d %s" n j f in
              Alcotest.check digest (tag "of_leaf_hashes") base_tree
                (Tree.root (Tree.of_leaf_hashes hs));
              Alcotest.check digest (tag "of_leaves") base_leaves
                (Tree.root (Tree.of_leaves data));
              Alcotest.check digest (tag "root_of_leaf_hashes") base_fast
                (Tree.root_of_leaf_hashes hs)))
        job_sweep)
    tree_sizes

let test_clog_root_matches_sequential () =
  List.iter
    (fun n ->
      let rng = Zkflow_util.Rng.create (Int64.of_int (77 + n)) in
      let records = Gen.records rng Gen.default_profile ~router_id:0 ~count:n in
      let base =
        with_jobs 1 (fun () -> Clog.root (Clog.apply_batch Clog.empty records))
      in
      List.iter
        (fun j ->
          with_jobs j (fun () ->
              Alcotest.check digest
                (Printf.sprintf "clog n=%d jobs=%d" n j)
                base
                (Clog.root (Clog.apply_batch Clog.empty records))))
        job_sweep)
    [ 0; 1; 33; 600 ]

(* ---- differential: sharded aggregation ---- *)

let test_prove_sharded_matches_sequential () =
  let rng = Zkflow_util.Rng.create 0xdeadL in
  let records = Gen.records rng Gen.default_profile ~router_id:0 ~count:24 in
  let shards = 2 in
  let params = Zkflow_zkproof.Params.make ~queries:4 in
  let run () =
    match
      Aggregate.prove_sharded ~params ~prev_shards:(Array.make shards Clog.empty)
        ~shards records
    with
    | Ok rounds -> rounds
    | Error e -> Alcotest.fail e
  in
  let base = with_jobs 1 run in
  List.iter
    (fun j ->
      with_jobs j (fun () ->
          let rounds = run () in
          check_int (Printf.sprintf "jobs=%d shard count" j) shards
            (Array.length rounds);
          Array.iteri
            (fun i (r : Aggregate.round) ->
              let b = base.(i) in
              let tag s = Printf.sprintf "jobs=%d shard=%d %s" j i s in
              check_bool (tag "receipt bit-identical") true
                (r.Aggregate.receipt = b.Aggregate.receipt);
              Alcotest.check digest (tag "journal new_root")
                b.Aggregate.journal.Guests.new_root r.Aggregate.journal.Guests.new_root;
              Alcotest.check digest (tag "clog root") (Clog.root b.Aggregate.clog)
                (Clog.root r.Aggregate.clog))
            rounds))
    job_sweep

(* ---- property: random trees agree across job counts ---- *)

let prop_tree_parallel_equals_sequential =
  QCheck.Test.make ~name:"parallel merkle == sequential merkle" ~count:30
    QCheck.(pair (int_range 0 600) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Zkflow_util.Rng.create (Int64.of_int seed) in
      let data = Array.init n (fun _ -> Zkflow_util.Rng.bytes rng 24) in
      let seq = with_jobs 1 (fun () -> Tree.root (Tree.of_leaves data)) in
      let par = with_jobs 3 (fun () -> Tree.root (Tree.of_leaves data)) in
      D.equal seq par)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "zkflow_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers_range;
          Alcotest.test_case "init/map array" `Quick test_init_and_map_array;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "nested regions degrade" `Quick test_nested_regions_degrade;
          Alcotest.test_case "set_jobs clamps" `Quick test_set_jobs_clamps;
          Alcotest.test_case "set_jobs rebuilds pool" `Quick test_set_jobs_rebuilds_pool;
          Alcotest.test_case "nested-seq counter" `Quick test_nested_seq_counter;
          Alcotest.test_case "exception keeps counters consistent" `Quick
            test_exception_keeps_counters_consistent;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "next_pow2 guard" `Quick test_next_pow2;
          Alcotest.test_case "roots match sequential" `Quick test_tree_roots_match_sequential;
          Alcotest.test_case "clog root matches" `Quick test_clog_root_matches_sequential;
          q prop_tree_parallel_equals_sequential;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "prove_sharded differential" `Slow
            test_prove_sharded_matches_sequential;
        ] );
    ]
