module Gen = Zkflow_netflow.Gen
module Record = Zkflow_netflow.Record
open Zkflow_commitlog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let rng () = Zkflow_util.Rng.create 123L
let batch ?(router_id = 0) n = Gen.records (rng ()) Gen.default_profile ~router_id ~count:n

(* ---- Commitment ---- *)

let test_commitment_matches () =
  let records = batch 10 in
  let c, _ =
    Commitment.of_batch ~prev_chain:Zkflow_hash.Chain.genesis ~router_id:0 ~epoch:0 records
  in
  check_bool "matches original" true (Commitment.matches c records)

let test_commitment_detects_edit () =
  let records = batch 10 in
  let c, _ =
    Commitment.of_batch ~prev_chain:Zkflow_hash.Chain.genesis ~router_id:0 ~epoch:0 records
  in
  let tampered = Array.copy records in
  tampered.(3) <-
    Record.make ~key:tampered.(3).Record.key
      { tampered.(3).Record.metrics with Record.losses = 0 };
  check_bool "edit detected" false (Commitment.matches c tampered)

let test_commitment_detects_truncation () =
  let records = batch 10 in
  let c, _ =
    Commitment.of_batch ~prev_chain:Zkflow_hash.Chain.genesis ~router_id:0 ~epoch:0 records
  in
  check_bool "truncation detected" false (Commitment.matches c (Array.sub records 0 9))

let test_commitment_chain_binds_order () =
  let b1 = batch 3 in
  let b2 =
    Gen.records (Zkflow_util.Rng.create 456L) Gen.default_profile ~router_id:0 ~count:3
  in
  let _, chain_a =
    Commitment.of_batch ~prev_chain:Zkflow_hash.Chain.genesis ~router_id:0 ~epoch:0 b1
  in
  let ca2, _ = Commitment.of_batch ~prev_chain:chain_a ~router_id:0 ~epoch:1 b2 in
  let _, chain_b =
    Commitment.of_batch ~prev_chain:Zkflow_hash.Chain.genesis ~router_id:0 ~epoch:0 b2
  in
  let cb2, _ = Commitment.of_batch ~prev_chain:chain_b ~router_id:0 ~epoch:1 b1 in
  check_bool "different histories, different heads" false
    (Zkflow_hash.Digest32.equal ca2.Commitment.chain cb2.Commitment.chain)

(* ---- Board ---- *)

let test_board_publish_lookup () =
  let board = Board.create () in
  let records = batch 5 in
  (match Board.publish board records ~router_id:2 ~epoch:0 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  match Board.lookup board ~router_id:2 ~epoch:0 with
  | Some c -> check_bool "matches" true (Commitment.matches c records)
  | None -> Alcotest.fail "lookup failed"

let test_board_rejects_rewrite () =
  let board = Board.create () in
  ignore (Board.publish board (batch 5) ~router_id:0 ~epoch:0);
  check_bool "double publish rejected" true
    (Result.is_error (Board.publish board (batch 5) ~router_id:0 ~epoch:0));
  check_bool "past epoch rejected" true
    (Result.is_error (Board.publish board (batch 5) ~router_id:0 ~epoch:0))

let test_board_epoch_monotonic () =
  let board = Board.create () in
  ignore (Board.publish board (batch 1) ~router_id:0 ~epoch:5);
  check_bool "older epoch rejected" true
    (Result.is_error (Board.publish board (batch 1) ~router_id:0 ~epoch:3));
  check_bool "newer epoch ok" true
    (Result.is_ok (Board.publish board (batch 1) ~router_id:0 ~epoch:6))

let test_board_chains_per_router () =
  let board = Board.create () in
  ignore (Board.publish board (batch 1) ~router_id:0 ~epoch:0);
  let head0 = Board.chain_head board ~router_id:0 in
  ignore (Board.publish board (batch 1) ~router_id:1 ~epoch:0);
  check_bool "router 0 unaffected" true
    (Zkflow_hash.Digest32.equal head0 (Board.chain_head board ~router_id:0));
  ignore (Board.publish board (batch 1) ~router_id:0 ~epoch:1);
  check_bool "router 0 advanced" false
    (Zkflow_hash.Digest32.equal head0 (Board.chain_head board ~router_id:0));
  Alcotest.(check (list int)) "routers" [ 0; 1 ] (Board.routers board);
  check_int "router 0 history" 2 (List.length (Board.commitments board ~router_id:0))

(* ---- Board export/replay round-trip (property) ---- *)

(* Arbitrary publication schedules: raw (router, epoch, count) triples
   are normalized into the valid subsequence a real deployment would
   produce (strictly increasing epochs per router), published via
   digests, exported, and replayed through [import] (which drives
   [publish_digest]). The replayed board must be observationally equal
   — same export text, same chain heads — and the publications the
   normalization dropped must be exactly the ones the board rejects. *)
let normalize_schedule triples =
  let last = Hashtbl.create 8 in
  List.filter
    (fun (router_id, epoch, _) ->
      match Hashtbl.find_opt last router_id with
      | Some prev when epoch <= prev -> false
      | _ ->
        Hashtbl.replace last router_id epoch;
        true)
    triples

let schedule_digest ~router_id ~epoch =
  Zkflow_hash.Digest32.hash_string (Printf.sprintf "pub-%d-%d" router_id epoch)

let publish_schedule board =
  List.iter (fun (router_id, epoch, record_count) ->
      match
        Board.publish_digest board
          ~batch:(schedule_digest ~router_id ~epoch)
          ~record_count ~router_id ~epoch
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("valid publication rejected: " ^ e))

let prop_board_export_roundtrip =
  QCheck.Test.make ~name:"export/import replay is observationally equal" ~count:100
    QCheck.(
      list_of_size Gen.(0 -- 25)
        (triple (int_bound 3) (int_bound 30) (int_bound 100)))
    (fun triples ->
      let valid = normalize_schedule triples in
      let board = Board.create () in
      publish_schedule board valid;
      let text = Board.export board in
      match Board.import text with
      | Error e -> QCheck.Test.fail_reportf "replay failed: %s" e
      | Ok replayed ->
        Board.export replayed = text
        && List.for_all
             (fun router_id ->
               Zkflow_hash.Digest32.equal
                 (Board.chain_head board ~router_id)
                 (Board.chain_head replayed ~router_id))
             (Board.routers board))

let prop_board_rejects_invalid =
  QCheck.Test.make ~name:"double and out-of-order publications rejected" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 15)
           (triple (int_bound 3) (int_bound 30) (int_bound 100)))
        (pair (int_bound 3) (int_bound 30)))
    (fun (triples, (router_id, epoch)) ->
      let valid = normalize_schedule triples in
      let board = Board.create () in
      publish_schedule board valid;
      let republish ep =
        Board.publish_digest board
          ~batch:(schedule_digest ~router_id ~epoch:ep)
          ~record_count:1 ~router_id ~epoch:ep
      in
      match
        List.rev (List.filter (fun (r, _, _) -> r = router_id) valid)
      with
      | [] ->
        (* No history for this router: any epoch is acceptable. *)
        Result.is_ok (republish epoch)
      | (_, last, _) :: _ ->
        (* Double publication of the last epoch and any out-of-order
           (non-advancing) epoch are both rejected; the next epoch is
           accepted. *)
        Result.is_error (republish last)
        && Result.is_error (republish (min last epoch))
        && Result.is_ok (republish (last + 1)))

(* ---- TEE ---- *)

open Zkflow_tee

let platform = Enclave.platform ~seed:(Bytes.of_string "tee-test-platform")

let test_enclave_attestation_roundtrip () =
  let e = Enclave.launch platform ~code_id:"telemetry-v1" ~init:0 in
  let report = Enclave.attest e ~data:(Bytes.of_string "payload") in
  check_bool "verifies" true
    (Enclave.verify_report
       ~attestation_key:(Enclave.attestation_key platform)
       ~expected_measurement:(Enclave.measurement e)
       report)

let test_enclave_attestation_rejects () =
  let e = Enclave.launch platform ~code_id:"telemetry-v1" ~init:0 in
  let report = Enclave.attest e ~data:(Bytes.of_string "payload") in
  let key = Enclave.attestation_key platform in
  (* wrong code identity *)
  let other = Enclave.launch platform ~code_id:"evil-v1" ~init:0 in
  check_bool "wrong measurement" false
    (Enclave.verify_report ~attestation_key:key
       ~expected_measurement:(Enclave.measurement other) report);
  (* tampered payload *)
  let tampered = { report with Enclave.data = Bytes.of_string "Payload" } in
  check_bool "tampered data" false
    (Enclave.verify_report ~attestation_key:key
       ~expected_measurement:(Enclave.measurement e) tampered);
  (* wrong platform *)
  let rogue = Enclave.platform ~seed:(Bytes.of_string "rogue") in
  check_bool "wrong platform key" false
    (Enclave.verify_report
       ~attestation_key:(Enclave.attestation_key rogue)
       ~expected_measurement:(Enclave.measurement e) report)

let test_enclave_state_isolated () =
  let e = Enclave.launch platform ~code_id:"counter" ~init:10 in
  let out = Enclave.run e (fun s -> (s + 5, s)) in
  check_int "saw old state" 10 out;
  check_int "state updated" 15 (Enclave.run e (fun s -> (s, s)))

let test_enclave_seal_unseal () =
  let e = Enclave.launch platform ~code_id:"sealer" ~init:() in
  let secret = Bytes.of_string "flow counters" in
  let sealed = Enclave.seal e secret in
  check_bool "ciphertext differs" false (Bytes.equal sealed secret);
  (match Enclave.unseal e sealed with
   | Ok pt -> Alcotest.(check bytes) "roundtrip" secret pt
   | Error err -> Alcotest.fail err);
  (* different code identity cannot unseal *)
  let other = Enclave.launch platform ~code_id:"other" ~init:() in
  check_bool "other enclave rejected" true (Result.is_error (Enclave.unseal other sealed));
  (* bit flip detected *)
  let corrupt = Bytes.copy sealed in
  Bytes.set corrupt 40 (Char.chr (Char.code (Bytes.get corrupt 40) lxor 1));
  check_bool "corruption detected" true (Result.is_error (Enclave.unseal e corrupt))

let test_tee_telemetry_end_to_end () =
  let t = Tee_telemetry.deploy platform ~router_ids:[ 0; 1; 2; 3 ] ~code_id:"nf-v1" in
  check_int "one enclave per vantage point" 4 (Tee_telemetry.enclave_count t);
  let records = batch ~router_id:1 5 in
  Array.iter (fun r -> Result.get_ok (Tee_telemetry.ingest t r)) records;
  let key = records.(0).Record.key in
  match Tee_telemetry.flow_report t ~router_id:1 key with
  | Error e -> Alcotest.fail e
  | Ok report ->
    check_bool "attested" true
      (Tee_telemetry.verify_report
         ~attestation_key:(Enclave.attestation_key platform)
         ~expected_measurement:(Tee_telemetry.code_measurement t)
         report);
    (match Tee_telemetry.decode_report_metrics report.Enclave.data with
     | Ok m ->
       check_int "packets" records.(0).Record.metrics.Record.packets m.Record.packets
     | Error e -> Alcotest.fail e)

let test_tee_coverage_gap () =
  let t = Tee_telemetry.deploy platform ~router_ids:[ 0 ] ~code_id:"nf-v1" in
  let stray = (batch ~router_id:7 1).(0) in
  check_bool "uncovered vantage point" true (Result.is_error (Tee_telemetry.ingest t stray));
  check_bool "report for uncovered" true
    (Result.is_error (Tee_telemetry.flow_report t ~router_id:7 stray.Record.key))

let () =
  Alcotest.run "zkflow_commitlog_tee"
    [
      ( "commitment",
        [
          Alcotest.test_case "matches" `Quick test_commitment_matches;
          Alcotest.test_case "detects edit" `Quick test_commitment_detects_edit;
          Alcotest.test_case "detects truncation" `Quick test_commitment_detects_truncation;
          Alcotest.test_case "chain binds order" `Quick test_commitment_chain_binds_order;
        ] );
      ( "board",
        [
          Alcotest.test_case "publish/lookup" `Quick test_board_publish_lookup;
          Alcotest.test_case "rejects rewrite" `Quick test_board_rejects_rewrite;
          Alcotest.test_case "epoch monotonic" `Quick test_board_epoch_monotonic;
          Alcotest.test_case "per-router chains" `Quick test_board_chains_per_router;
          QCheck_alcotest.to_alcotest prop_board_export_roundtrip;
          QCheck_alcotest.to_alcotest prop_board_rejects_invalid;
        ] );
      ( "enclave",
        [
          Alcotest.test_case "attestation roundtrip" `Quick test_enclave_attestation_roundtrip;
          Alcotest.test_case "attestation rejects" `Quick test_enclave_attestation_rejects;
          Alcotest.test_case "state isolated" `Quick test_enclave_state_isolated;
          Alcotest.test_case "seal/unseal" `Quick test_enclave_seal_unseal;
        ] );
      ( "tee-telemetry",
        [
          Alcotest.test_case "end to end" `Quick test_tee_telemetry_end_to_end;
          Alcotest.test_case "coverage gap" `Quick test_tee_coverage_gap;
        ] );
    ]
