(* zkflow command-line interface.

   A file-based workflow mirroring the paper's deployment roles:

     zkflow simulate --dir state   # routers: generate traffic, export
                                   # RLogs (WAL) + publish commitments
     zkflow prove    --dir state   # operator: aggregate every epoch
                                   # under proof; optionally prove a query
     zkflow verify   --dir state   # auditor: verify the receipt chain
                                   # (and query receipt) from public data

   The directory holds: rlogs.wal (private telemetry), board.txt (the
   public bulletin), receipts.bin / query.bin (proof artifacts). *)

module D = Zkflow_hash.Digest32
module Db = Zkflow_store.Db
module Epoch = Zkflow_store.Epoch
module Board = Zkflow_commitlog.Board
module Gen = Zkflow_netflow.Gen
module Ipaddr = Zkflow_netflow.Ipaddr
module Topology = Zkflow_netflow.Topology
module Receipt = Zkflow_zkproof.Receipt
module Wire = Zkflow_util.Wire
module Jsonx = Zkflow_util.Jsonx
module Obs = Zkflow_obs.Obs
open Zkflow_core

let ( let* ) = Result.bind
let ( // ) = Filename.concat

(* All state files land via write-temp-then-rename: a crash mid-write
   (or a concurrent reader) sees either the old complete file or the
   new complete file, never a torn one. *)
let write_file path contents = Zkflow_store.Wal.write_file_atomic path contents

let read_file path =
  if not (Sys.file_exists path) then Error (path ^ ": not found")
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    Ok b
  end

let wal_path dir = dir // "rlogs.wal"
let board_path dir = dir // "board.txt"
let receipts_path dir = dir // "receipts.bin"
let query_path dir = dir // "query.bin"
let service_path dir = dir // "service.bin"
let events_path dir = dir // "events.jsonl"
let timeseries_path dir = dir // "timeseries.jsonl"
let ckpt_path dir = dir // "checkpoints.wal"

let epoch_policy = Epoch.default

(* Flight-recorder wrapper: when [events] names a file, run [f] with
   telemetry enabled and flush the event ring to that file afterwards
   — even when [f] fails, so the log still shows what went wrong.
   [simulate] truncates ([append:false]); later stages append, so one
   state directory accumulates a single causal log across the whole
   simulate -> prove -> verify workflow. *)
let with_events ?(append = false) events f =
  match events with
  | None -> f ()
  | Some path ->
    Obs.reset ();
    Obs.enable ();
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.write_events ~append path)
      f

(* Live telemetry plane: --listen PORT on prove/chaos starts the
   embedded server over the in-process registries (plus the sampler,
   so /metrics has frame gauges) for the duration of the run. *)

(* The embedded server never exits on its own: it serves until the
   process is killed (CI backgrounds it and kills by pid). *)
let rec serve_forever () =
  Thread.delay 3600.;
  serve_forever ()

let start_live_listener port =
  ignore (Zkflow_obs.Timeseries.start ());
  match
    Zkflow_obs.Httpd.start ~port (Watch.handler (Watch.live_source ()))
  with
  | Error e -> Error ("--listen: " ^ e)
  | Ok srv ->
    Printf.printf
      "live telemetry on http://127.0.0.1:%d (/metrics /healthz /slo)\n%!"
      (Zkflow_obs.Httpd.port srv);
    Ok srv

let stop_live_listener srv =
  Zkflow_obs.Httpd.stop srv;
  Zkflow_obs.Timeseries.stop ()

(* ---- simulate ---- *)

let simulate dir routers flows rate duration loss seed =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [
      wal_path dir; board_path dir; receipts_path dir; query_path dir;
      service_path dir; events_path dir; ckpt_path dir;
    ];
  let db = Db.create ~wal_path:(wal_path dir) ~epoch:epoch_policy () in
  let board = Board.create () in
  let rng = Zkflow_util.Rng.create (Int64.of_int seed) in
  let profile = { Gen.default_profile with Gen.flow_count = flows } in
  let keys = Gen.flows rng profile in
  let packets = Gen.packets rng profile ~flows:keys ~rate_pps:rate ~duration_ms:duration in
  let topology =
    Topology.linear
      (List.init routers (fun id ->
           { Zkflow_netflow.Router.id; active_timeout_ms = 60_000; inactive_timeout_ms = 30_000; sampling_interval = 1 }))
  in
  let losses = Array.make routers loss in
  List.iter (Topology.inject topology ~rng ~loss_rate:losses) packets;
  let count = ref 0 in
  List.iter
    (fun (_, records) ->
      List.iter
        (fun r ->
          incr count;
          Db.insert db r)
        records)
    (Topology.flush topology ~now:duration);
  Db.sync db;
  (* routers publish one commitment per epoch *)
  List.iter
    (fun epoch ->
      List.iter
        (fun router_id ->
          let window = Db.window db ~router_id ~epoch in
          match Board.publish board window ~router_id ~epoch with
          | Ok c ->
            Printf.printf "published r%d/e%d: %s (%d records)\n" router_id epoch
              (D.short c.Zkflow_commitlog.Commitment.batch)
              (Array.length window)
          | Error e -> failwith e)
        (Db.routers db))
    (Db.epochs db);
  write_file (board_path dir) (Bytes.of_string (Board.export board));
  Printf.printf "simulated %d packets -> %d records across %d routers\n"
    (List.length packets) !count routers;
  Printf.printf "state written to %s (rlogs.wal, board.txt)\n" dir;
  Ok ()

let simulate dir routers flows rate duration loss seed events =
  with_events ~append:false events (fun () ->
      simulate dir routers flows rate duration loss seed)

(* ---- prove ---- *)

let load_state dir =
  let* db =
    match Db.recover ~wal_path:(wal_path dir) ~epoch:epoch_policy with
    | Ok db -> Ok db
    | Error e -> Error ("recovering store: " ^ e)
  in
  let* board_text = read_file (board_path dir) in
  let* board = Board.import (Bytes.to_string board_text) in
  Ok (db, board)

let encode_rounds rounds =
  let w = Wire.writer () in
  Wire.w_list w
    (fun (epoch, receipt) ->
      Wire.w_int w epoch;
      Wire.w_bytes w (Receipt.encode receipt))
    rounds;
  Wire.contents w

let decode_rounds bytes =
  Wire.decode bytes (fun r ->
      Wire.r_list r (fun () ->
          let epoch = Wire.r_int r in
          let receipt_bytes = Wire.r_bytes r in
          match Receipt.decode receipt_bytes with
          | Ok receipt -> (epoch, receipt)
          | Error e -> raise (Wire.Decode e)))

let parse_query src dst metric op =
  let* predicate =
    let field name = function
      | None -> Ok None
      | Some s -> (
        match Ipaddr.of_string s with
        | Ok ip -> Ok (Some ip)
        | Error e -> Error (name ^ ": " ^ e))
    in
    let* src_ip = field "--src" src in
    let* dst_ip = field "--dst" dst in
    Ok { Guests.match_any with Guests.src_ip; dst_ip }
  in
  let* metric =
    match metric with
    | "packets" -> Ok Guests.Packets
    | "bytes" -> Ok Guests.Bytes
    | "hops" -> Ok Guests.Hops
    | "losses" -> Ok Guests.Losses
    | m -> Error ("unknown metric " ^ m)
  in
  let* op =
    match op with
    | "sum" -> Ok Guests.Sum
    | "count" -> Ok Guests.Count
    | "max" -> Ok Guests.Max
    | "min" -> Ok Guests.Min
    | o -> Error ("unknown op " ^ o)
  in
  Ok { Guests.predicate; op; metric }

(* Custom Zirc query guests all receive the standard CLog statement
   stream: m, the claimed root (8 words), then the m entries — see
   PROTOCOL.md §3.2 and examples/custom_query.ml. *)
let clog_input clog =
  Array.concat
    [
      [| Clog.length clog |];
      Zkflow_zkvm.Guestlib.words_of_digest (D.to_bytes (Clog.root clog));
      Clog.words clog;
    ]

let prove_zirc ~params ~clog path =
  let* program_src = Zkflow_lang.Zirc_parse.parse_file path in
  let* program = Zkflow_lang.Zirc.compile program_src in
  match
    Prover_service.prove_custom ~proof_params:params ~subject:path program
      ~input:(clog_input clog)
  with
  | Error e -> Error ("custom query: " ^ e)
  | Ok (receipt, run) ->
    Printf.printf "custom query %s: %d cycles, journal %s\n" path
      run.Zkflow_zkvm.Machine.cycles
      (String.concat ","
         (List.map string_of_int (Array.to_list run.Zkflow_zkvm.Machine.journal)));
    Ok receipt

let prove_inner dir queries_n src dst metric op zirc =
  let* db, board = load_state dir in
  let params = Zkflow_zkproof.Params.make ~queries:queries_n in
  (* Crash-consistent: every round is journaled to checkpoints.wal
     before it is visible, and an interrupted prove picks up from the
     synced prefix instead of re-proving history. *)
  let* service, restored =
    Prover_service.resume ~proof_params:params ~db ~board ~path:(ckpt_path dir) ()
  in
  if restored > 0 then
    Printf.printf "resumed %d checkpointed round(s) from %s\n" restored
      (ckpt_path dir);
  let covered = Prover_service.covered_epochs service in
  let* () =
    List.fold_left
      (fun acc epoch ->
        let* () = acc in
        if List.mem epoch covered then Ok ()
        else
          let* round = Prover_service.aggregate_epoch service ~epoch in
          Printf.printf "epoch %d: %d flows, %d cycles, proved in %.2fs (%d KB)\n"
            epoch
            (Clog.length round.Aggregate.clog)
            round.Aggregate.cycles round.Aggregate.prove_s
            (Receipt.size round.Aggregate.receipt / 1024);
          Ok ())
      (Ok ()) (Db.epochs db)
  in
  let rounds =
    List.filter_map
      (fun ((cov : Prover_service.coverage), (round : Aggregate.round)) ->
        if cov.Prover_service.heal then None
        else Some (cov.Prover_service.epoch, round.Aggregate.receipt))
      (List.combine (Prover_service.coverage service) (Prover_service.rounds service))
  in
  write_file (receipts_path dir) (encode_rounds rounds);
  write_file (service_path dir) (Prover_service.save service);
  Printf.printf "receipts written to %s\n" (receipts_path dir);
  (* optional built-in query *)
  let* () =
    match (src, dst) with
    | None, None -> Ok ()
    | _ ->
      let* q = parse_query src dst metric op in
      let* row = Prover_service.query service q in
      write_file (query_path dir) (Receipt.encode row.Query.receipt);
      Printf.printf "query proved: result=%d matches=%d -> %s\n"
        row.Query.journal.Guests.result row.Query.journal.Guests.matches
        (query_path dir);
      Ok ()
  in
  (* optional custom (Zirc) query *)
  match zirc with
  | None -> Ok ()
  | Some path ->
    let* receipt = prove_zirc ~params ~clog:(Prover_service.clog service) path in
    write_file (dir // "custom.bin") (Receipt.encode receipt);
    Printf.printf "custom receipt -> %s\n" (dir // "custom.bin");
    Ok ()

let print_phase_totals () =
  match Obs.span_totals_s () with
  | [] -> ()
  | totals ->
    Printf.printf "phase totals:\n";
    List.iter
      (fun (name, (count, s)) -> Printf.printf "  %-24s %6dx %9.3fs\n" name count s)
      totals

let prove dir queries_n src dst metric op zirc trace_out events stats_out
    timeseries listen =
  let recording =
    trace_out <> None || events <> None || stats_out <> None
    || timeseries <> None || listen <> None
  in
  if recording then begin
    Obs.reset ();
    Obs.enable ()
  end;
  let sampling = timeseries <> None || listen <> None in
  if sampling then ignore (Zkflow_obs.Timeseries.start ());
  let* server =
    match listen with
    | None -> Ok None
    | Some port -> Result.map Option.some (start_live_listener port)
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Option.iter Zkflow_obs.Httpd.stop server;
        if sampling then Zkflow_obs.Timeseries.stop ();
        (match timeseries with
        | Some path ->
          Zkflow_obs.Timeseries.write_jsonl path;
          Printf.printf "time-series written to %s (%d frames)\n" path
            (List.length (Zkflow_obs.Timeseries.frames ()))
        | None -> ());
        if recording then begin
          Obs.disable ();
          (match events with
          | Some path -> Obs.write_events ~append:true path
          | None -> ());
          match stats_out with
          | Some path ->
            (* Counter cells survive [Obs.disable] until the next
               reset, so the snapshot still carries the full run. *)
            write_file path (Bytes.of_string (Zkflow_obs.Export.stats_json ()));
            Printf.printf "stats written to %s\n" path
          | None -> ()
        end)
      (fun () -> prove_inner dir queries_n src dst metric op zirc)
  in
  match (result, trace_out) with
  | Ok (), Some path ->
    Obs.write_trace path;
    Printf.printf "trace written to %s (chrome://tracing or ui.perfetto.dev)\n" path;
    print_phase_totals ();
    Ok ()
  | r, _ -> r

(* ---- stats ---- *)

let stats dir json =
  let* db, board = load_state dir in
  let* bytes =
    match read_file (service_path dir) with
    | Ok b -> Ok b
    | Error _ ->
      Error
        (Printf.sprintf "%s: not found (run `zkflow prove --dir %s` first)"
           (service_path dir) dir)
  in
  (* A corrupt state file must be a one-line diagnosis, never a
     backtrace: decode failures are values, and anything the decoder
     did not anticipate is caught here. *)
  let* service =
    match Prover_service.load ~db ~board bytes with
    | Ok s -> Ok s
    | Error e -> Error (Printf.sprintf "%s: corrupt state: %s" (service_path dir) e)
    | exception e ->
      Error
        (Printf.sprintf "%s: corrupt state: %s" (service_path dir)
           (Printexc.to_string e))
  in
  if json then print_endline (Prover_service.summary_json service)
  else begin
    let clog = Prover_service.clog service in
    let summaries = Prover_service.summaries service in
    Printf.printf "%d aggregation round(s); CLog root %s (%d entries)\n"
      (List.length summaries) (D.short (Clog.root clog)) (Clog.length clog);
    let p = Prover_service.proof_params service in
    Printf.printf
      "proof params: %d spot checks/category ≈ %.2f soundness bits (5%% \
       corruption convention, DESIGN.md §5)\n"
      p.Zkflow_zkproof.Params.queries
      (Zkflow_zkproof.Params.soundness_bits p);
    List.iter
      (fun (s : Prover_service.round_summary) ->
        Printf.printf "  round %d: %7d entries, %9d cycles, root %s%s\n" s.index
          s.entries s.cycles
          (String.sub s.root 0 12)
          (if s.restored then " (restored)"
           else Printf.sprintf ", proved in %.2fs" s.prove_s))
      summaries;
    match List.map (fun (s : Prover_service.round_summary) -> s.cycles) summaries with
    | [] -> ()
    | cycles ->
      let snap = Zkflow_obs.Metric.snapshot_of_values cycles in
      let p q = Zkflow_obs.Metric.percentile snap q in
      Printf.printf "  round cycles: p50<=%d p95<=%d p99<=%d max=%d\n" (p 0.50)
        (p 0.95) (p 0.99) snap.Zkflow_obs.Metric.max_value
  end;
  Ok ()

(* ---- trace-check ---- *)

(* Validate a Chrome trace_event file the way a consumer would: parse
   the JSON, require the schema keys on every complete event, and
   demand enough distinct span names that the trace is actually
   informative. *)
(* Validate an event-log JSONL file: every line must decode to an
   event, timestamps must be monotone per track, and causality must
   hold — an epoch the verifier passed judgement on must have been
   seen earlier on some router's track (the commitment the verdict is
   about had to exist first). *)
let events_check path =
  let* events, tail_note = Zkflow_obs.Event.load_jsonl path in
  Option.iter (Printf.eprintf "warning: %s\n") tail_note;
  let last_ts = Hashtbl.create 16 in
  let router_epochs = Hashtbl.create 64 in
  let is_router_track t = String.length t > 7 && String.sub t 0 7 = "router." in
  let rec go i = function
    | [] -> Ok ()
    | (e : Zkflow_obs.Event.t) :: rest ->
      let* () =
        match Hashtbl.find_opt last_ts e.Zkflow_obs.Event.track with
        | Some prev when e.Zkflow_obs.Event.ts_ns < prev ->
          Error
            (Printf.sprintf
               "%s: event %d: timestamp moves backwards on track %S" path i
               e.Zkflow_obs.Event.track)
        | _ ->
          Hashtbl.replace last_ts e.Zkflow_obs.Event.track e.Zkflow_obs.Event.ts_ns;
          Ok ()
      in
      let* () =
        if is_router_track e.Zkflow_obs.Event.track then begin
          Option.iter
            (fun ep -> Hashtbl.replace router_epochs ep ())
            e.Zkflow_obs.Event.epoch;
          Ok ()
        end
        else if e.Zkflow_obs.Event.track = "verifier" then begin
          match e.Zkflow_obs.Event.epoch with
          | Some ep when not (Hashtbl.mem router_epochs ep) ->
            Error
              (Printf.sprintf
                 "%s: event %d: verifier saw epoch %d before any router track did"
                 path i ep)
          | _ -> Ok ()
        end
        else Ok ()
      in
      go (i + 1) rest
  in
  let* () = go 0 events in
  let tracks = Hashtbl.length last_ts in
  Printf.printf "%s: %d event(s) on %d track(s) — ok\n" path (List.length events)
    tracks;
  Ok ()

let trace_check path min_names =
  let* bytes = read_file path in
  let* v = Jsonx.parse (Bytes.to_string bytes) in
  let* events =
    match v with
    | Jsonx.Arr events -> Ok events
    | _ -> Error (path ^ ": expected a top-level JSON array of trace events")
  in
  let required = [ "ph"; "ts"; "pid"; "tid"; "name" ] in
  let names = Hashtbl.create 16 in
  let* () =
    let rec go i = function
      | [] -> Ok ()
      | e :: rest -> (
        match List.find_opt (fun k -> Jsonx.member k e = None) required with
        | Some k -> Error (Printf.sprintf "%s: event %d: missing key %S" path i k)
        | None ->
          (match Jsonx.member "name" e with
          | Some (Jsonx.Str n) -> Hashtbl.replace names n ()
          | _ -> ());
          go (i + 1) rest)
    in
    go 0 events
  in
  let distinct = Hashtbl.length names in
  if distinct < min_names then
    Error
      (Printf.sprintf "%s: only %d distinct span name(s), need >= %d" path
         distinct min_names)
  else begin
    Printf.printf "%s: %d event(s), %d distinct span name(s) — ok\n" path
      (List.length events) distinct;
    Ok ()
  end

(* Assertions over a `prove --stats` snapshot: each --require NAME=MIN
   must name a recorded counter whose value reached MIN. This is how
   the smoke gate proves the incremental Merkle path actually ran
   (e.g. --require merkle.nodes_reused=1), not just that timings
   looked plausible. *)
let counters_check path requires =
  let* bytes = read_file path in
  let* v = Jsonx.parse (Bytes.to_string bytes) in
  let* counters =
    match Jsonx.member "counters" v with
    | Some (Jsonx.Obj members) -> Ok members
    | _ -> Error (path ^ ": no \"counters\" object (expected a prove --stats file)")
  in
  let rec go = function
    | [] ->
      Printf.printf "%s: %d counter(s), %d requirement(s) met — ok\n" path
        (List.length counters) (List.length requires);
      Ok ()
    | req :: rest -> (
      match String.index_opt req '=' with
      | None -> Error (Printf.sprintf "--require %S: expected NAME=MIN" req)
      | Some i -> (
        let name = String.sub req 0 i in
        match int_of_string_opt (String.sub req (i + 1) (String.length req - i - 1)) with
        | None -> Error (Printf.sprintf "--require %S: expected NAME=MIN" req)
        | Some min_v -> (
          match List.assoc_opt name counters with
          | Some (Jsonx.Num f) ->
            let actual = int_of_float f in
            if actual >= min_v then go rest
            else
              Error
                (Printf.sprintf "%s: counter %s = %d, need >= %d" path name actual
                   min_v)
          | _ -> Error (Printf.sprintf "%s: counter %s not recorded" path name))))
  in
  go requires

(* ---- lint ---- *)

module Analysis = Zkflow_analysis

let print_report ~json r =
  if json then print_endline (Analysis.Finding.report_json r)
  else Format.printf "%a@." Analysis.Finding.pp_report r;
  Analysis.Finding.ok r

let parse_error_report path e =
  {
    Analysis.Finding.subject = path;
    instrs = 0;
    blocks = 0;
    findings = [ Analysis.Finding.error ~pass:"parse" "%s" e ];
    cycle_bound = Analysis.Finding.Unbounded [];
    func_bounds = [];
    proven_safe = false;
  }

(* Lint the two built-in guests (assembled ZR0) plus any Zirc sources
   given on the command line; exit nonzero iff any Error-severity
   finding (warnings don't fail the build). *)
let lint json sarif files =
  let reports =
    Analysis.check ~subject:"aggregation guest"
      (Lazy.force Guests.aggregation_program)
    :: Analysis.check ~subject:"query guest" (Lazy.force Guests.query_program)
    :: List.map
         (fun path ->
           match Zkflow_lang.Zirc_parse.parse_file_positioned path with
           | Ok (prog, positions) ->
             Analysis.check_zirc ~subject:path ~positions prog
           | Error e -> parse_error_report path e)
         files
  in
  if sarif then print_endline (Analysis.Finding.sarif_json reports)
  else List.iter (fun r -> ignore (print_report ~json r)) reports;
  if List.for_all Analysis.Finding.ok reports then Ok ()
  else Error "lint: defects found"

(* ---- audit ---- *)

(* Stable identity of a finding across runs: subject, pass and message.
   Positions shift whenever an unrelated line is edited, while the
   message carries the operative detail — so baselines stay quiet
   under refactors that don't change what the analyzer learned. One
   tab-separated line per key; the file diffs cleanly under git. *)
let finding_key subject (f : Analysis.Finding.t) =
  let flat s =
    String.map (fun c -> if c = '\n' || c = '\t' then ' ' else c) s
  in
  Printf.sprintf "%s\t%s\t%s" (flat subject) f.Analysis.Finding.pass
    (flat f.Analysis.Finding.message)

(* Full audit (value analysis + taint) of the built-in guests and/or
   Zirc sources. With --baseline, exit nonzero only on findings whose
   key is absent from the baseline file; without one, exit nonzero on
   any Error-severity finding (as lint does). *)
let audit json sarif baseline update_baseline builtins files =
  let reports =
    (if builtins || files = [] then
       [
         Analysis.audit ~subject:"aggregation guest"
           (Zkflow_zkvm.Program.instrs (Lazy.force Guests.aggregation_program));
         Analysis.audit ~subject:"query guest"
           (Zkflow_zkvm.Program.instrs (Lazy.force Guests.query_program));
       ]
     else [])
    @ List.map
        (fun path ->
          match Zkflow_lang.Zirc_parse.parse_file_positioned path with
          | Ok (prog, positions) ->
            Analysis.audit_zirc ~subject:path ~positions prog
          | Error e -> parse_error_report path e)
        files
  in
  if sarif then print_endline (Analysis.Finding.sarif_json reports)
  else if json then print_endline (Analysis.Finding.reports_json reports)
  else
    List.iter (fun r -> Format.printf "%a@." Analysis.Finding.pp_report r)
      reports;
  let keys =
    List.concat_map
      (fun (r : Analysis.Finding.report) ->
        List.map (finding_key r.Analysis.Finding.subject) r.Analysis.Finding.findings)
      reports
    |> List.sort_uniq String.compare
  in
  match update_baseline with
  | Some path ->
    write_file path
      (Bytes.of_string (String.concat "" (List.map (fun k -> k ^ "\n") keys)));
    Printf.eprintf "audit: wrote %d finding key(s) to %s\n" (List.length keys)
      path;
    Ok ()
  | None -> (
    match baseline with
    | Some path ->
      let* text = read_file path in
      let known = Hashtbl.create 16 in
      String.split_on_char '\n' (Bytes.to_string text)
      |> List.iter (fun l -> if l <> "" then Hashtbl.replace known l ());
      let fresh = List.filter (fun k -> not (Hashtbl.mem known k)) keys in
      if fresh = [] then Ok ()
      else begin
        List.iter (fun k -> Printf.eprintf "audit: new finding: %s\n" k) fresh;
        Error
          (Printf.sprintf "audit: %d finding(s) not in baseline %s"
             (List.length fresh) path)
      end
    | None ->
      if List.for_all Analysis.Finding.ok reports then Ok ()
      else Error "audit: defects found")

(* ---- verify ---- *)

let verify_inner dir zirc =
  let* board_text = read_file (board_path dir) in
  let* board = Board.import (Bytes.to_string board_text) in
  let* receipt_bytes = read_file (receipts_path dir) in
  let* rounds = decode_rounds receipt_bytes in
  let* chain = Verifier_client.verify_chain ~board rounds in
  Printf.printf "verified %d aggregation round(s); final CLog root %s\n"
    chain.Verifier_client.round_count
    (D.to_hex chain.Verifier_client.final_root);
  let* () =
    if Sys.file_exists (query_path dir) then begin
      let* qbytes = read_file (query_path dir) in
      let* receipt = Receipt.decode qbytes in
      let* journal =
        Verifier_client.verify_query ~query:0
          ~expected_root:chain.Verifier_client.final_root receipt
      in
      Printf.printf "verified query receipt: result=%d matches=%d\n"
        journal.Guests.result journal.Guests.matches;
      Ok ()
    end
    else Ok ()
  in
  match zirc with
  | None -> Ok ()
  | Some path ->
    (* The auditor compiles the (public) query source themselves and
       pins the resulting image — they never trust the operator's
       binary. Convention: journal word 0..7 = the root it ran on. *)
    let* src = Zkflow_lang.Zirc_parse.parse_file path in
    let* program = Zkflow_lang.Zirc.compile src in
    let* cbytes = read_file (dir // "custom.bin") in
    let* receipt = Receipt.decode cbytes in
    let* () = Zkflow_zkproof.Verify.verify ~program receipt in
    let journal = receipt.Receipt.claim.Receipt.journal in
    if Array.length journal < 8 then Error "custom receipt: journal too short"
    else begin
      let root =
        D.of_bytes (Zkflow_zkvm.Guestlib.digest_of_words (Array.sub journal 0 8))
      in
      if not (D.equal root chain.Verifier_client.final_root) then
        Error "custom receipt: ran against a different CLog root"
      else begin
        Printf.printf "verified custom query %s: outputs %s\n" path
          (String.concat ","
             (List.map string_of_int (Array.to_list (Array.sub journal 8 (Array.length journal - 8)))));
        Ok ()
      end
    end

let verify dir zirc events =
  with_events ~append:true events (fun () -> verify_inner dir zirc)

(* ---- monitor ---- *)

(* Shared by monitor/slo/watch: load the flight log, surfacing a
   torn-tail note (crash mid-flush) as a warning instead of a hard
   error — the decodable prefix is still a valid log. *)
let load_events_or_hint dir events =
  let path = match events with Some p -> p | None -> events_path dir in
  match Zkflow_obs.Event.load_jsonl path with
  | Ok (evs, tail_note) ->
    Option.iter (Printf.eprintf "warning: %s\n%!") tail_note;
    Ok evs
  | Error e ->
    Error
      (Printf.sprintf
         "%s (run the workflow with --events %s to record a flight log)" e
         (events_path dir))

(* The saved time-series is optional context everywhere: an explicit
   --timeseries FILE must load; the conventional DIR/timeseries.jsonl
   is picked up only when present. *)
let load_frames_opt dir timeseries =
  let path =
    match timeseries with
    | Some p -> Some p
    | None ->
      let p = timeseries_path dir in
      if Sys.file_exists p then Some p else None
  in
  match path with
  | None -> Ok None
  | Some p ->
    let* frames, tail_note = Zkflow_obs.Timeseries.load_jsonl p in
    Option.iter (Printf.eprintf "warning: %s\n%!") tail_note;
    Ok (Some frames)

let monitor dir events timeseries json strict gap_grace =
  let* events = load_events_or_hint dir events in
  let* frames = load_frames_opt dir timeseries in
  (* The saved service state is optional context: without it the
     report is built from the event log alone. *)
  let service =
    match load_state dir with
    | Error _ -> None
    | Ok (db, board) -> (
      match read_file (service_path dir) with
      | Error _ -> None
      | Ok bytes -> (
        match Prover_service.load ~db ~board bytes with
        | Ok s -> Some s
        | Error _ | (exception _) -> None))
  in
  let report = Monitor.build ?service ?frames ~gap_grace events in
  if json then print_endline (Jsonx.to_string (Monitor.to_json report))
  else Format.printf "%a@." Monitor.pp report;
  if strict && not (Monitor.healthy report) then
    Error "monitor: pipeline health degraded"
  else Ok ()

(* ---- slo ---- *)

let load_specs_opt = function
  | None -> Ok Slo.default_specs
  | Some path -> Slo.load_specs path

let slo dir events specs_file json strict =
  let* events = load_events_or_hint dir events in
  let* specs = load_specs_opt specs_file in
  let alerts = Slo.evaluate ~specs events in
  if json then print_endline (Jsonx.to_string (Slo.to_json alerts))
  else Format.printf "%a@." Slo.pp alerts;
  match Slo.firing_names alerts with
  | [] -> Ok ()
  | names when strict ->
    Error (Printf.sprintf "slo: firing: %s" (String.concat ", " names))
  | _ -> Ok ()

(* ---- watch ---- *)

let watch dir events timeseries specs_file listen probe =
  let present p = if Sys.file_exists p then Some p else None in
  let events_file =
    match events with Some p -> Some p | None -> present (events_path dir)
  in
  let ts_file =
    match timeseries with
    | Some p -> Some p
    | None -> present (timeseries_path dir)
  in
  let* specs = load_specs_opt specs_file in
  let handler =
    Watch.handler ~specs
      (Watch.artifact_source ~events_path:events_file ?timeseries_path:ts_file
         ())
  in
  match probe with
  | Some path ->
    let r = Watch.probe handler path in
    print_endline r.Zkflow_obs.Httpd.body;
    if r.Zkflow_obs.Httpd.status < 400 then Ok ()
    else
      Error
        (Printf.sprintf "watch: %s -> HTTP %d" path r.Zkflow_obs.Httpd.status)
  | None ->
    let* srv = Zkflow_obs.Httpd.start ~port:listen handler in
    Printf.printf
      "watch: serving http://127.0.0.1:%d (/metrics /healthz /slo); kill to \
       stop\n%!"
      (Zkflow_obs.Httpd.port srv);
    serve_forever ()

(* ---- chaos ---- *)

let chaos dir seed plan_file routers flows rate duration loss queries
    max_restarts daemon json events listen =
  let events = match events with Some p -> Some p | None -> Some (events_path dir) in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let* server =
    match listen with
    | None -> Ok None
    | Some port -> Result.map Option.some (start_live_listener port)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter stop_live_listener server)
  @@ fun () ->
  with_events ~append:false events (fun () ->
      let module Fault = Zkflow_fault.Fault in
      let* plan =
        match plan_file with
        | Some path -> Fault.load_plan path
        | None -> Ok (Fault.random_plan ~routers ~seed ())
      in
      let config =
        {
          Chaos.routers;
          flows;
          rate_pps = rate;
          duration_ms = duration;
          loss_rate = loss;
          queries;
          max_restarts;
        }
      in
      let verdict report ~flood_ok =
        if report.Chaos.safety_ok && report.Chaos.liveness_ok && flood_ok then
          Ok ()
        else
          Error
            (Printf.sprintf "chaos: %s violated under plan %S"
               (match
                  (report.Chaos.safety_ok, report.Chaos.liveness_ok, flood_ok)
                with
               | false, false, _ -> "safety and liveness"
               | false, true, _ -> "safety"
               | true, false, _ -> "liveness"
               | _ -> "bounded-ingest shedding")
               report.Chaos.plan.Fault.name)
      in
      if daemon then begin
        let* r = Chaos.run_daemon ~dir ~config ~plan () in
        if json then print_endline (Jsonx.to_string (Chaos.daemon_to_json r))
        else Format.printf "%a@." Chaos.pp_daemon r;
        verdict r.Chaos.base ~flood_ok:r.Chaos.flood_ok
      end
      else begin
        let* report = Chaos.run ~dir ~config ~plan () in
        if json then print_endline (Jsonx.to_string (Chaos.to_json report))
        else Format.printf "%a@." Chaos.pp report;
        verdict report ~flood_ok:true
      end)

(* ---- serve: the resident daemon ---- *)

(* [zkflow serve] turns the state directory into a running service:
   the router flow logs recovered from rlogs.wal are replayed through
   the daemon's bounded ingest queue (the daemon publishes to a fresh
   board on the routers' behalf and proves rounds off-path), then the
   process sits behind the embedded HTTP plane answering memoized
   proof-backed queries until SIGTERM/SIGINT, at which point it drains
   — finishes everything in flight — and flushes board, service
   state, events and time-series before exiting 0. A SIGKILL instead
   loses nothing durable: the next [serve] resumes from the v2
   checkpoint WAL and re-proves only the unsynced tail. *)

let serve_stop = Atomic.make false

let serve dir listen queries_n capacity watchdog_ms events =
  let events = match events with Some p -> Some p | None -> Some (events_path dir) in
  let* db_src =
    match Db.recover ~wal_path:(wal_path dir) ~epoch:epoch_policy with
    | Ok db -> Ok db
    | Error e -> Error ("recovering store: " ^ e)
  in
  Atomic.set serve_stop false;
  (* Trap before replay: an early SIGTERM still drains cleanly. *)
  let trap s = Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set serve_stop true)) in
  trap Sys.sigterm;
  trap Sys.sigint;
  with_events ~append:true events @@ fun () ->
  ignore (Zkflow_obs.Timeseries.start ());
  let finish_sampler () =
    Zkflow_obs.Timeseries.stop ();
    Zkflow_obs.Timeseries.write_jsonl (timeseries_path dir)
  in
  let db = Db.create ~epoch:epoch_policy () in
  let board = Board.create () in
  let config =
    {
      Daemon.default_config with
      Daemon.queue_capacity = capacity;
      watchdog_interval_ms = watchdog_ms;
    }
  in
  let* d, restored =
    Daemon.create ~config
      ~proof_params:(Zkflow_zkproof.Params.make ~queries:queries_n)
      ~db ~board ~ckpt_path:(ckpt_path dir) ()
  in
  match Zkflow_obs.Httpd.start ~port:listen (Daemon.handler d) with
  | Error e ->
    Daemon.stop d;
    finish_sampler ();
    Error ("serve: " ^ e)
  | Ok srv ->
    Printf.printf "zkflow serve on http://127.0.0.1:%d (/status /healthz /query /flows /metrics /slo)\n%!"
      (Zkflow_obs.Httpd.port srv);
    (* Replay the recovered flow log through the bounded queue,
       epoch by epoch. [submit_wait] is the backpressure path: the
       replay blocks rather than sheds when it outruns the prover. *)
    let offered = ref 0 in
    List.iter
      (fun epoch ->
        List.iter
          (fun router_id ->
            let recs = Array.to_list (Db.window db_src ~router_id ~epoch) in
            incr offered;
            ignore (Daemon.submit_wait d ~router_id ~epoch recs))
          (Db.routers_for db_src ~epoch);
        Daemon.advance d ~epoch)
      (Db.epochs db_src);
    Printf.printf "replaying %d window(s) over %d epoch(s); %d round(s) restored from checkpoints\n%!"
      !offered
      (List.length (Db.epochs db_src))
      restored;
    (* Resident phase: sit behind the HTTP plane until a signal. A
       worker crash here (only possible with armed fault hooks) goes
       through the same supervised restart a real kill would. *)
    while not (Atomic.get serve_stop) do
      Thread.delay 0.1;
      match Daemon.crashed d with
      | None -> ()
      | Some site ->
        Printf.eprintf "worker crashed at %s; restarting\n%!" site;
        (match Daemon.restart d with
        | Ok n -> Printf.eprintf "restarted: %d round(s) recovered\n%!" n
        | Error e -> Printf.eprintf "restart failed: %s\n%!" e)
    done;
    Printf.printf "signal received: draining\n%!";
    let rec drain_with_retry attempts =
      match Daemon.drain d with
      | Ok () -> Ok ()
      | Error e when attempts > 0 && Daemon.crashed d <> None -> (
        match Daemon.restart d with
        | Ok _ -> drain_with_retry (attempts - 1)
        | Error e' -> Error (e ^ "; restart failed: " ^ e'))
      | Error e -> Error e
    in
    let drained = drain_with_retry 3 in
    Zkflow_obs.Httpd.stop srv;
    let c = Daemon.counters d in
    write_file (board_path dir) (Bytes.of_string (Board.export board));
    write_file (service_path dir) (Prover_service.save (Daemon.service d));
    Daemon.stop d;
    finish_sampler ();
    let* () = drained in
    Printf.printf
      "drained: %d window(s) accepted (%d shed, %d duplicate), %d round(s) (%d heal), root %s\n"
      c.Daemon.accepted c.Daemon.shed c.Daemon.duplicates c.Daemon.rounds
      c.Daemon.heal_rounds
      (String.sub (Daemon.root_hex d) 0 16);
    Printf.printf "state flushed to %s (board.txt, service.bin, events, timeseries)\n" dir;
    Ok ()

(* ---- bench-diff ---- *)

let bench_diff old_path new_path threshold min_s json =
  let parse path =
    let* bytes = read_file path in
    match Jsonx.parse (Bytes.to_string bytes) with
    | Ok v -> Ok v
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
  in
  let* old_json = parse old_path in
  let* new_json = parse new_path in
  let* report = Bench_diff.diff ~threshold ~min_s ~old_json ~new_json () in
  if json then print_endline (Jsonx.to_string (Bench_diff.to_json report))
  else Format.printf "%a@." Bench_diff.pp report;
  if Bench_diff.ok report then Ok ()
  else
    Error
      (Printf.sprintf "bench-diff: %d regression(s) beyond %.0f%%"
         (List.length report.Bench_diff.regressions)
         (threshold *. 100.))

(* ---- report ---- *)

(* Render a BENCH_matrix.json artifact (bench/main.exe -- matrix) into
   the comparative report: the full cost/soundness matrix with Pareto
   frontier marks. Same hardening contract as stats: missing or
   corrupt input is a one-line error and a nonzero exit, never a
   backtrace. *)
let report path json =
  let* bytes = read_file path in
  let* doc =
    match Jsonx.parse (Bytes.to_string bytes) with
    | Ok v -> Ok v
    | Error e -> Error (Printf.sprintf "%s: corrupt artifact: %s" path e)
  in
  let tag r = Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) r in
  if json then begin
    let* v = tag (Matrix.report_json doc) in
    print_endline (Jsonx.to_string v);
    Ok ()
  end
  else begin
    let* md = tag (Matrix.report_markdown doc) in
    print_string md;
    Ok ()
  end

(* ---- cmdliner wiring ---- *)

open Cmdliner

let handle = function
  | Ok () -> 0
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1

let dir_arg =
  Arg.(value & opt string "zkflow-state" & info [ "dir"; "d" ] ~docv:"DIR"
         ~doc:"State directory shared between the subcommands.")

let events_arg =
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
         ~doc:"Record the flight-recorder event log to this JSONL file \
               (conventionally DIR/events.jsonl; simulate truncates, later \
               stages append).")

let listen_arg =
  Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT"
         ~doc:"Serve the live telemetry plane (/metrics, /healthz, /slo) \
               on this loopback port for the duration of the run (0 picks \
               an ephemeral port, printed at startup).")

let specs_arg =
  Arg.(value & opt (some file) None & info [ "specs" ] ~docv:"FILE"
         ~doc:"SLO specs as a JSON array (default: the built-in objectives \
               — coverage, board-integrity, prover-errors, prover-restarts, \
               verifier-acceptance).")

let timeseries_read_arg =
  Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"FILE"
         ~doc:"Saved metric time-series to load (default: \
               DIR/timeseries.jsonl when present).")

let simulate_cmd =
  let routers = Arg.(value & opt int 4 & info [ "routers" ] ~doc:"Vantage points.") in
  let flows = Arg.(value & opt int 30 & info [ "flows" ] ~doc:"Flow population.") in
  let rate = Arg.(value & opt float 200.0 & info [ "rate" ] ~doc:"Packets per second.") in
  let duration = Arg.(value & opt int 4000 & info [ "duration" ] ~doc:"Duration (ms).") in
  let loss = Arg.(value & opt float 0.02 & info [ "loss" ] ~doc:"Per-hop loss rate.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let run dir routers flows rate duration loss seed events =
    handle (simulate dir routers flows rate duration loss seed events)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Generate traffic, export RLogs, publish commitments.")
    Term.(const run $ dir_arg $ routers $ flows $ rate $ duration $ loss $ seed
          $ events_arg)

let prove_cmd =
  let queries =
    Arg.(value & opt int 48 & info [ "queries" ] ~doc:"Proof spot-check count.")
  in
  let src = Arg.(value & opt (some string) None & info [ "src" ] ~doc:"Query src IP filter.") in
  let dst = Arg.(value & opt (some string) None & info [ "dst" ] ~doc:"Query dst IP filter.") in
  let metric =
    Arg.(value & opt string "hops" & info [ "metric" ] ~doc:"packets|bytes|hops|losses.")
  in
  let op = Arg.(value & opt string "sum" & info [ "op" ] ~doc:"sum|count|max|min.") in
  let zirc =
    Arg.(value & opt (some string) None & info [ "zirc" ]
           ~doc:"Custom query: a Zirc source file run against the latest CLog.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record telemetry and write a Chrome trace_event JSON file \
                 (open in chrome://tracing or ui.perfetto.dev).")
  in
  let stats_out =
    Arg.(value & opt (some string) None & info [ "stats" ] ~docv:"FILE"
           ~doc:"Record telemetry and write the counter/histogram/span \
                 snapshot as JSON (checkable with trace-check --counters).")
  in
  let timeseries =
    Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"FILE"
           ~doc:"Sample every counter/histogram plus GC stats on a background \
                 tick and write the frame series to this JSONL file \
                 (conventionally DIR/timeseries.jsonl; enables monitor's \
                 round-latency trend).")
  in
  let run dir queries src dst metric op zirc trace events stats_out timeseries
      listen =
    handle
      (prove dir queries src dst metric op zirc trace events stats_out
         timeseries listen)
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Aggregate every epoch under proof; optionally prove a query.")
    Term.(const run $ dir_arg $ queries $ src $ dst $ metric $ op $ zirc $ trace
          $ events_arg $ stats_out $ timeseries $ listen_arg)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let run dir json = handle (stats dir json) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Summarize the saved prover state: per-round entries, cycles, \
             timings, and whether a round was restored from disk.")
    Term.(const run $ dir_arg $ json)

let trace_check_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Chrome trace_event JSON file to validate.")
  in
  let min_names =
    Arg.(value & opt int 1 & info [ "min-names" ]
           ~doc:"Fail unless the trace has at least this many distinct span names.")
  in
  let events =
    Arg.(value & opt (some file) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Validate a flight-recorder event log: JSONL schema, monotone \
                 timestamps per track, and router-before-verifier causality.")
  in
  let counters =
    Arg.(value & opt (some file) None & info [ "counters" ] ~docv:"FILE"
           ~doc:"Validate a prove --stats snapshot; combine with --require.")
  in
  let requires =
    Arg.(value & opt_all string [] & info [ "require" ] ~docv:"NAME=MIN"
           ~doc:"With --counters: fail unless counter NAME reached MIN \
                 (repeatable).")
  in
  let run file min_names events counters_file requires =
    handle
      (match (file, events, counters_file) with
      | None, None, None ->
        Error "trace-check: give a trace FILE, --events FILE and/or --counters FILE"
      | _ ->
        let* () = match file with Some f -> trace_check f min_names | None -> Ok () in
        let* () = match events with Some e -> events_check e | None -> Ok () in
        (match counters_file with
        | Some c -> counters_check c requires
        | None ->
          if requires = [] then Ok ()
          else Error "trace-check: --require needs --counters FILE"))
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a Chrome trace file, a flight-recorder event log and/or \
             a telemetry counter snapshot.")
    Term.(const run $ file $ min_names $ events $ counters $ requires)

let lint_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let sarif =
    Arg.(value & flag & info [ "sarif" ]
           ~doc:"SARIF 2.1.0 output (one log, one result per finding).")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Zirc source files to lint (the built-in guests are always checked).")
  in
  let run json sarif files = handle (lint json sarif files) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze the built-in guests and any Zirc sources.")
    Term.(const run $ json $ sarif $ files)

let audit_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let sarif =
    Arg.(value & flag & info [ "sarif" ]
           ~doc:"SARIF 2.1.0 output (one log, one result per finding).")
  in
  let baseline =
    Arg.(value & opt (some file) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Fail only on findings absent from this baseline (one \
                 tab-separated subject/pass/message key per line, as written \
                 by --update-baseline).")
  in
  let update_baseline =
    Arg.(value & opt (some string) None & info [ "update-baseline" ]
           ~docv:"FILE"
           ~doc:"Write the current finding keys to FILE and exit 0.")
  in
  let builtins =
    Arg.(value & flag & info [ "builtins" ]
           ~doc:"Audit the built-in guests in addition to the given files \
                 (they are audited by default when no file is given).")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Zirc source files to audit.")
  in
  let run json sarif baseline update builtins files =
    handle (audit json sarif baseline update builtins files)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Full static audit: the lint/value analysis plus taint tracking \
             of untrusted telemetry inputs (sources: input ecalls; sinks: \
             journal commits and memory addresses) and proven per-function \
             cycle bounds.")
    Term.(const run $ json $ sarif $ baseline $ update_baseline $ builtins
          $ files)

let verify_cmd =
  let zirc =
    Arg.(value & opt (some string) None & info [ "zirc" ]
           ~doc:"Verify the custom-query receipt against this Zirc source.")
  in
  let run dir zirc events = handle (verify dir zirc events) in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify the receipt chain (and query) from public data only.")
    Term.(const run $ dir_arg $ zirc $ events_arg)

let monitor_cmd =
  let events =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Event log to replay (default: DIR/events.jsonl).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Exit nonzero when the report is degraded (any rejection, \
                 round error, lagging router, missed epoch, or coverage gap \
                 unhealed past the grace window).")
  in
  let gap_grace =
    Arg.(value & opt int 0 & info [ "gap-grace" ] ~docv:"ROUNDS"
           ~doc:"How many rounds a coverage gap may stay open before it \
                 counts as stale (and fails --strict). Default 0: any open \
                 gap is stale.")
  in
  let run dir events timeseries json strict gap_grace =
    handle (monitor dir events timeseries json strict gap_grace)
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Replay the flight-recorder event log (and saved prover state) \
             into a health report: per-router commitment lag and gaps, round \
             latency percentiles, verifier rejections by cause, degraded \
             rounds and open coverage gaps, service backlog, and — when a \
             saved time-series is available — the round-latency trend.")
    Term.(const run $ dir_arg $ events $ timeseries_read_arg $ json $ strict
          $ gap_grace)

let slo_cmd =
  let events =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Event log to evaluate (default: DIR/events.jsonl).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Exit nonzero when any objective is firing.")
  in
  let run dir events specs json strict = handle (slo dir events specs json strict) in
  Cmd.v
    (Cmd.info "slo"
       ~doc:"Evaluate service-level objectives over the flight-recorder event \
             log with multi-window burn-rate alerting: each objective's bad \
             fraction is judged against its error budget over paired \
             long/short windows, and firing alerts carry the causal keys \
             (router/epoch/round) of the bad events behind them.")
    Term.(const run $ dir_arg $ events $ specs_arg $ json $ strict)

let watch_cmd =
  let events =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Event log to serve (default: DIR/events.jsonl when present).")
  in
  let listen =
    Arg.(value & opt int 9464 & info [ "listen" ] ~docv:"PORT"
           ~doc:"Loopback port to serve on (0 picks an ephemeral port, \
                 printed at startup).")
  in
  let probe =
    Arg.(value & opt (some string) None & info [ "probe" ] ~docv:"PATH"
           ~doc:"Do not serve: print the response body one request to PATH \
                 (e.g. /slo) would get, then exit — nonzero when the \
                 endpoint would error. Lets tests and CI validate endpoint \
                 schemas without binding a port.")
  in
  let run dir events timeseries specs listen probe =
    handle (watch dir events timeseries specs listen probe)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Serve the telemetry plane for a recorded run: /metrics \
             (Prometheus text rebuilt from the saved time-series), /healthz \
             (the monitor report with a top-level verdict) and /slo \
             (burn-rate alerts), re-reading the artifacts on every request. \
             For a live view of a run in progress, use prove/chaos \
             --listen instead.")
    Term.(const run $ dir_arg $ events $ timeseries_read_arg $ specs_arg
          $ listen $ probe)

let chaos_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault-plan seed (ignored with --plan).")
  in
  let plan =
    Arg.(value & opt (some file) None & info [ "plan" ] ~docv:"FILE"
           ~doc:"JSON fault plan to run (default: a random plan from --seed).")
  in
  let routers = Arg.(value & opt int 3 & info [ "routers" ] ~doc:"Vantage points.") in
  let flows = Arg.(value & opt int 8 & info [ "flows" ] ~doc:"Flow population.") in
  let rate = Arg.(value & opt float 30.0 & info [ "rate" ] ~doc:"Packets per second.") in
  let duration =
    Arg.(value & opt int 11_000 & info [ "duration" ] ~doc:"Duration (ms).")
  in
  let loss = Arg.(value & opt float 0.0 & info [ "loss" ] ~doc:"Per-hop loss rate.") in
  let queries =
    Arg.(value & opt int 8 & info [ "queries" ] ~doc:"Proof spot-check count.")
  in
  let max_restarts =
    Arg.(value & opt int 40 & info [ "max-restarts" ]
           ~doc:"Kill/resume budget before the harness gives up.")
  in
  let daemon =
    Arg.(value & flag & info [ "daemon" ]
           ~doc:"Aim the plan at the resident daemon instead of the batch \
                 prover: windows flow through the bounded ingest queue, kills \
                 go through the supervised restart path, and a flood entry \
                 adds an overload burst whose shed count must be exact.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let run dir seed plan routers flows rate duration loss queries max_restarts
      daemon json events listen =
    handle
      (chaos dir seed plan routers flows rate duration loss queries max_restarts
         daemon json events listen)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run one deterministic chaos cycle: simulate traffic, inject the \
             plan's faults (router drops/delays/duplicates, prover crashes, \
             checkpoint corruption), kill and resume the prover, then assert \
             safety (every receipt verifies; the final root is bit-identical \
             to an uninterrupted twin run) and liveness (everything verified \
             or explicitly degraded — never silent loss). With --daemon the \
             same plan runs against the resident daemon's bounded-ingest \
             pipeline. Exits nonzero on any violation.")
    Term.(const run $ dir_arg $ seed $ plan $ routers $ flows $ rate $ duration
          $ loss $ queries $ max_restarts $ daemon $ json $ events_arg
          $ listen_arg)

let serve_cmd =
  let listen =
    Arg.(value & opt int 0 & info [ "listen" ] ~docv:"PORT"
           ~doc:"Loopback port for the query/health plane (0 picks an \
                 ephemeral port, printed at startup).")
  in
  let queries =
    Arg.(value & opt int 8 & info [ "queries" ] ~doc:"Proof spot-check count.")
  in
  let capacity =
    Arg.(value & opt int 64 & info [ "capacity" ]
           ~doc:"Bounded ingest queue depth; windows past it are shed \
                 (rejected explicitly), never buffered without limit.")
  in
  let watchdog_ms =
    Arg.(value & opt int 500 & info [ "watchdog-ms" ]
           ~doc:"Self-check interval for the liveness watchdog that backs \
                 /healthz (0 disables the watchdog thread).")
  in
  let run dir listen queries capacity watchdog_ms events =
    handle (serve dir listen queries capacity watchdog_ms events)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident telemetry daemon over a simulated state \
             directory: replay the recovered flow log through the bounded \
             ingest queue, prove rounds continuously off the ingest path, \
             and answer memoized proof-backed queries over HTTP (/status \
             /healthz /query /flows /metrics /slo) until SIGTERM/SIGINT, \
             then drain and flush all state. A SIGKILL loses nothing \
             durable: the next serve resumes from the checkpoint WAL.")
    Term.(const run $ dir_arg $ listen $ queries $ capacity $ watchdog_ms
          $ events_arg)

let bench_diff_cmd =
  let old_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json"
           ~doc:"Baseline bench artifact.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json"
           ~doc:"Candidate bench artifact.")
  in
  let threshold =
    Arg.(value & opt float 0.25 & info [ "threshold" ]
           ~doc:"Relative slowdown that counts as a regression (0.25 = 25%).")
  in
  let min_s =
    Arg.(value & opt float 0.05 & info [ "min-s" ]
           ~doc:"Ignore timing fields where both sides are below this many \
                 seconds (absolute noise floor; cycle/byte counts are always \
                 compared).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let run old_f new_f threshold min_s json =
    handle (bench_diff old_f new_f threshold min_s json)
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Compare two bench JSON artifacts row by row and exit nonzero on \
             per-phase latency (or cycle/size) regressions beyond the \
             threshold.")
    Term.(const run $ old_file $ new_file $ threshold $ min_s $ json)

let report_cmd =
  let file =
    (* a plain string, not Arg.file: a missing path must take our
       one-line read_file error path, not cmdliner's usage dump *)
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH_matrix.json"
           ~doc:"Matrix artifact written by `bench/main.exe -- matrix`.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Machine-readable report (rows with frontier flags).")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ]
           ~doc:"Markdown report (the default; what REPORT.md is built from).")
  in
  let run file json markdown =
    handle
      (if json && markdown then
         Error "report: --json and --markdown are mutually exclusive"
       else report file json)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a proof-backend benchmark matrix artifact into a \
             comparative cost/soundness report: per-cell prove/verify time, \
             proof bytes and soundness bits across backend × queries × \
             scale, with the Pareto frontier (cells not dominated on time × \
             bytes × soundness).")
    Term.(const run $ file $ json $ markdown)

let () =
  let info =
    Cmd.info "zkflow" ~version:"1.0.0"
      ~doc:"Verifiable network telemetry without special-purpose hardware."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            simulate_cmd; prove_cmd; lint_cmd; audit_cmd; verify_cmd;
            stats_cmd; trace_check_cmd; monitor_cmd; slo_cmd; watch_cmd;
            chaos_cmd; serve_cmd; bench_diff_cmd; report_cmd;
          ]))
