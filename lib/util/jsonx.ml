let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* %.17g is the shortest format that round-trips every float; integral
   values print without a spurious fraction. *)
let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Num f -> num_to_string f
  | Str s -> quote s
  | Arr vs -> "[" ^ String.concat "," (List.map to_string vs) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> quote k ^ ":" ^ to_string v) fields)
    ^ "}"

exception Bad of int * string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Bad (c.pos, msg))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && (match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c ("expected " ^ word)

let hex4 c =
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match c.src.[c.pos] with
      | '0' .. '9' as x -> Char.code x - Char.code '0'
      | 'a' .. 'f' as x -> Char.code x - Char.code 'a' + 10
      | 'A' .. 'F' as x -> Char.code x - Char.code 'A' + 10
      | _ -> fail c "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d;
    c.pos <- c.pos + 1
  done;
  !v

(* Minimal UTF-8 encode: enough to give \uXXXX escapes a byte
   representation; surrogate pairs are not recombined. *)
let add_codepoint b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | None -> fail c "truncated escape"
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' -> add_codepoint b (hex4 c)
        | _ -> fail c "unknown escape"));
      go ()
    | Some ch when Char.code ch < 0x20 -> fail c "raw control character in string"
    | Some ch ->
      Buffer.add_char b ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let consume pred =
    while
      c.pos < String.length c.src && pred c.src.[c.pos]
    do
      c.pos <- c.pos + 1
    done
  in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  let digits0 = c.pos in
  consume (function '0' .. '9' -> true | _ -> false);
  if c.pos = digits0 then fail c "expected digit";
  if peek c = Some '.' then begin
    c.pos <- c.pos + 1;
    let d = c.pos in
    consume (function '0' .. '9' -> true | _ -> false);
    if c.pos = d then fail c "expected fraction digit"
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    c.pos <- c.pos + 1;
    (match peek c with Some ('+' | '-') -> c.pos <- c.pos + 1 | _ -> ());
    let d = c.pos in
    consume (function '0' .. '9' -> true | _ -> false);
    if c.pos = d then fail c "expected exponent digit"
  | _ -> ());
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> f
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length src then
      Error (Printf.sprintf "json: trailing garbage at byte %d" c.pos)
    else Ok v
  | exception Bad (pos, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg pos)

let validate src = Result.map (fun _ -> ()) (parse src)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
