(** Dependency-free JSON emission and validation helpers.

    One escaping implementation shared by every machine-readable
    output in the tree ([zkflow lint --json], [zkflow stats --json],
    the Chrome-trace exporter, the bench JSON artifacts), plus a
    small recursive-descent parser used to {e check} that emitted
    output is well-formed — tests and [zkflow trace-check] parse what
    the emitters print, so an escaping bug fails loudly instead of
    producing a file Perfetto rejects. *)

val escape : string -> string
(** Escape a string for inclusion between JSON double quotes:
    ["\""], ["\\"], and control characters (as [\n]/[\t]/[\uXXXX]).
    Bytes [>= 0x20] other than the two specials pass through
    unchanged, so arbitrary OCaml strings round-trip byte-for-byte
    through {!escape} then {!parse}. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes — a complete
    JSON string literal. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Serialize (compact, no whitespace). [Num] values that are integral
    print without a fraction; NaN/infinity are not representable in
    JSON and will not round-trip. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document (one value, surrounded only by
    whitespace). Strings decode the standard escapes; [\uXXXX] below
    [0x80] decodes to the raw byte, larger code points to their UTF-8
    encoding. Errors carry a byte offset. *)

val validate : string -> (unit, string) result
(** [Ok ()] iff the input is a well-formed JSON document. *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up key [k]; [None] on other values. *)
