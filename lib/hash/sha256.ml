(* FIPS 180-4 SHA-256. State and schedule words are int32: 32-bit
   wrap-around is free and ocamlopt keeps the hot-loop values unboxed;
   a native-int variant with explicit masking measured ~25 % slower. *)

(* One count per 64-byte block; covers every digest in the system since
   all hashing funnels through [compress]. *)
let m_compressions = Zkflow_obs.Metric.counter "sha256.compressions"

let k = [|
  0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l;
  0x3956c25bl; 0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l;
  0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
  0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l;
  0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
  0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
  0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l;
  0xc6e00bf3l; 0xd5a79147l; 0x06ca6351l; 0x14292967l;
  0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
  0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
  0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l;
  0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
  0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l;
  0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl; 0x682e6ff3l;
  0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
  0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
|]

type ctx = {
  h : int32 array;            (* 8 chaining words *)
  block : bytes;              (* 64-byte working block *)
  mutable fill : int;         (* bytes buffered in [block] *)
  mutable total : int64;      (* total message bytes absorbed *)
  mutable finalized : bool;
  w : int32 array;            (* 64-word message schedule, reused *)
}

let init () = {
  h = [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
         0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
  block = Bytes.create 64;
  fill = 0;
  total = 0L;
  finalized = false;
  w = Array.make 64 0l;
}

let reset ctx =
  ctx.h.(0) <- 0x6a09e667l;
  ctx.h.(1) <- 0xbb67ae85l;
  ctx.h.(2) <- 0x3c6ef372l;
  ctx.h.(3) <- 0xa54ff53al;
  ctx.h.(4) <- 0x510e527fl;
  ctx.h.(5) <- 0x9b05688cl;
  ctx.h.(6) <- 0x1f83d9abl;
  ctx.h.(7) <- 0x5be0cd19l;
  ctx.fill <- 0;
  ctx.total <- 0L;
  ctx.finalized <- false

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let compress ctx src pos =
  Zkflow_obs.Metric.add m_compressions 1;
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <- Bytes.get_int32_be src (pos + (4 * i))
  done;
  for i = 16 to 63 do
    let s0 =
      Int32.logxor (rotr w.(i - 15) 7)
        (Int32.logxor (rotr w.(i - 15) 18) (Int32.shift_right_logical w.(i - 15) 3))
    and s1 =
      Int32.logxor (rotr w.(i - 2) 17)
        (Int32.logxor (rotr w.(i - 2) 19) (Int32.shift_right_logical w.(i - 2) 10))
    in
    w.(i) <- Int32.add (Int32.add w.(i - 16) s0) (Int32.add w.(i - 7) s1)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = Int32.logxor (rotr !e 6) (Int32.logxor (rotr !e 11) (rotr !e 25)) in
    let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
    let t1 = Int32.add !hh (Int32.add s1 (Int32.add ch (Int32.add k.(i) w.(i)))) in
    let s0 = Int32.logxor (rotr !a 2) (Int32.logxor (rotr !a 13) (rotr !a 22)) in
    let maj =
      Int32.logxor (Int32.logand !a !b)
        (Int32.logxor (Int32.logand !a !c) (Int32.logand !b !c))
    in
    let t2 = Int32.add s0 maj in
    hh := !g;
    g := !f;
    f := !e;
    e := Int32.add !d t1;
    d := !c;
    c := !b;
    b := !a;
    a := Int32.add t1 t2
  done;
  h.(0) <- Int32.add h.(0) !a;
  h.(1) <- Int32.add h.(1) !b;
  h.(2) <- Int32.add h.(2) !c;
  h.(3) <- Int32.add h.(3) !d;
  h.(4) <- Int32.add h.(4) !e;
  h.(5) <- Int32.add h.(5) !f;
  h.(6) <- Int32.add h.(6) !g;
  h.(7) <- Int32.add h.(7) !hh

let check_live ctx =
  if ctx.finalized then invalid_arg "Sha256: context already finalized"

let update_sub ctx b ~pos ~len =
  check_live ctx;
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha256.update_sub: out of bounds";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and remaining = ref len in
  (* Top up a partially filled block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit b !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let update ctx b = update_sub ctx b ~pos:0 ~len:(Bytes.length b)
let update_string ctx s = update ctx (Bytes.unsafe_of_string s)

let finalize ctx =
  check_live ctx;
  let bitlen = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros to 56 mod 64, then 64-bit big-endian length. *)
  let pad_len =
    let rem = (ctx.fill + 1) mod 64 in
    1 + (if rem <= 56 then 56 - rem else 120 - rem)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  update ctx pad;
  let len_block = Bytes.create 8 in
  Bytes.set_int64_be len_block 0 bitlen;
  update ctx len_block;
  assert (ctx.fill = 0);
  ctx.finalized <- true;
  let out = Bytes.create 32 in
  Array.iteri (fun i w -> Bytes.set_int32_be out (4 * i) w) ctx.h;
  out

let digest b =
  let ctx = init () in
  update ctx b;
  finalize ctx

let digest_string s = digest (Bytes.unsafe_of_string s)

let digest_sub b ~pos ~len =
  let ctx = init () in
  update_sub ctx b ~pos ~len;
  finalize ctx

let digest_concat parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  finalize ctx

let iv =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
     0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

let mask32 = 0xffffffff

let compress_words state block =
  if Array.length state <> 8 then invalid_arg "Sha256.compress_words: state";
  if Array.length block <> 16 then invalid_arg "Sha256.compress_words: block";
  (* Reuse the int32 engine: load the state and block, run one round. *)
  let ctx = init () in
  Array.iteri (fun i s -> ctx.h.(i) <- Int32.of_int (s land mask32)) state;
  let blk = Bytes.create 64 in
  Array.iteri (fun i w -> Bytes.set_int32_be blk (4 * i) (Int32.of_int (w land mask32))) block;
  compress ctx blk 0;
  Array.map (fun w -> Int32.to_int w land mask32) ctx.h
