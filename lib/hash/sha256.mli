(** SHA-256 (FIPS 180-4), implemented from scratch.

    This is the only cryptographic hash in zkflow; it backs log
    commitments, Merkle trees, Fiat–Shamir transcripts and the zkVM's
    SHA accelerator ecall (mirroring RISC Zero's SHA-256 precompile). *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx
(** [init ()] is a fresh context. *)

val reset : ctx -> unit
(** [reset ctx] returns [ctx] to the freshly-initialised state
    (including after [finalize]), so hot loops can hash many messages
    without reallocating the context. *)

val update : ctx -> bytes -> unit
(** [update ctx b] absorbs all of [b]. *)

val update_sub : ctx -> bytes -> pos:int -> len:int -> unit
(** [update_sub ctx b ~pos ~len] absorbs [len] bytes of [b] starting at
    [pos]. *)

val update_string : ctx -> string -> unit
(** [update_string ctx s] absorbs the bytes of [s]. *)

val finalize : ctx -> bytes
(** [finalize ctx] pads, produces the 32-byte digest and invalidates
    [ctx]: further [update]/[finalize] calls raise [Invalid_argument]. *)

val digest : bytes -> bytes
(** [digest b] is the one-shot 32-byte SHA-256 of [b]. *)

val digest_string : string -> bytes
(** [digest_string s] is the one-shot digest of the bytes of [s]. *)

val digest_sub : bytes -> pos:int -> len:int -> bytes
(** [digest_sub b ~pos ~len] hashes a slice without copying it. *)

val digest_concat : bytes list -> bytes
(** [digest_concat parts] hashes the concatenation of [parts] without
    materialising it. *)

val iv : int array
(** The initial 8-word chaining state, as non-negative 32-bit ints. *)

val compress_words : int array -> int array -> int array
(** [compress_words state block] is one raw compression step: [state]
    is 8 words, [block] 16 words, both as non-negative 32-bit ints; the
    result is the new 8-word state. This is the primitive behind the
    zkVM's SHA accelerator ecall — callers are responsible for padding.
    Raises [Invalid_argument] on wrong shapes. *)
