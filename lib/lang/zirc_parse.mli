(** Concrete syntax for {!Zirc}.

    A small C-like surface, one statement per construct:

    {v
    // count entries above a loss threshold
    let m = read_word();
    read_words(0x100000, m * 8);
    let i = 0; let hits = 0;
    while i < m {
      if mem[0x100000 + i*8 + 7] * 100 > mem[0x100000 + i*8 + 4] {
        hits = hits + 1;
      } else { }
      i = i + 1;
    }
    commit(hits);
    v}

    Integers are decimal or 0x-hex; [//] comments to end of line;
    operators follow C precedence ([*] over [+ -] over shifts over
    [& ^ |] over comparisons; [<s] is the signed less-than). Builtins:
    [read_word()], [input_avail()], [cmp8(a,b)] in expressions;
    [commit(e)], [debug(e)], [halt(e)], [sha(src,words,dst)],
    [read_words(dst,n)], [commit_words(src,n)],
    [leaf_hashes(entries,n,out,scratch)], [merkle_root(leaves,n)] as
    statements. *)

type pos = { line : int; col : int }

type stmt_pos = { pos : pos; trusted : bool; sub : stmt_pos list list }
(** Source position of one statement plus those of its nested blocks,
    in the same shape as the AST: [If] carries [[then; else]], [While]
    carries [[body]], leaf statements carry [[]]. [trusted] is set when
    the statement is annotated with a [//@ trusted] pragma on the
    preceding line — the taint pass suppresses untrusted-input findings
    inside such a statement (and counts every use). *)

val parse : string -> (Zirc.program, string) result
(** Parse a full program. Errors carry line/column. *)

val parse_positioned : string -> (Zirc.program * stmt_pos list, string) result
(** Like {!parse}, also returning one {!stmt_pos} per top-level
    statement so tooling (the lint) can point findings at source. *)

val parse_file : string -> (Zirc.program, string) result
(** Read and parse a file. *)

val parse_file_positioned : string -> (Zirc.program * stmt_pos list, string) result
