(* Hand-written lexer + recursive-descent parser for the Zirc surface
   syntax. Kept dependency-free (no menhir) and error-positioned. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string       (* let if else while mem *)
  | PUNCT of string    (* ( ) { } [ ] ; , = *)
  | OP of string       (* + - * & | ^ << >> == != < <= > >= <s *)
  | PRAGMA of string   (* //@ word — annotation for the next statement *)
  | EOF

type lexed = { tok : token; line : int; col : int }
type pos = { line : int; col : int }
type stmt_pos = { pos : pos; trusted : bool; sub : stmt_pos list list }

exception Error of string

let err ~line ~col fmt =
  Format.kasprintf (fun s -> raise (Error (Printf.sprintf "%d:%d: %s" line col s))) fmt

let keywords = [ "let"; "if"; "else"; "while"; "mem" ]

let lex src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let emit tok = out := { tok; line = !line; col = !col } :: !out in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && peek 1 = Some '/' && peek 2 = Some '@' then begin
      (* `//@ word`: an annotation pragma attached to the next
         statement (the only one today is `trusted`, read by the taint
         pass). Anything else on the line is still a comment. *)
      let sline = !line and scol = !col in
      advance 3;
      while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do
        advance 1
      done;
      let start = !i in
      while
        !i < n
        && (let c = src.[!i] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_' || c = '-')
      do
        advance 1
      done;
      let word = String.sub src start (!i - start) in
      if word = "" then err ~line:sline ~col:scol "empty //@ pragma";
      out := { tok = PRAGMA word; line = sline; col = scol } :: !out;
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      let scol = !col and sline = !line in
      while
        !i < n
        && (let c = src.[!i] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '_')
      do
        advance 1
      done;
      let word = String.sub src start (!i - start) in
      let tok = if List.mem word keywords then KW word else IDENT word in
      out := { tok; line = sline; col = scol } :: !out
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      let scol = !col and sline = !line in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then advance 2;
      while
        !i < n
        && (let c = src.[!i] in
            (c >= '0' && c <= '9')
            || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))))
      do
        advance 1
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v when v >= 0 -> out := { tok = INT v; line = sline; col = scol } :: !out
      | _ -> err ~line:sline ~col:scol "bad integer literal %S" text
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<<" | ">>" | "==" | "!=" | "<=" | ">=" | "<s" ->
        emit (OP two);
        advance 2
      | _ -> (
        match c with
        | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' ->
          emit (OP (String.make 1 c));
          advance 1
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '=' ->
          emit (PUNCT (String.make 1 c));
          advance 1
        | _ -> err ~line:!line ~col:!col "unexpected character %C" c)
    end
  done;
  out := { tok = EOF; line = !line; col = !col } :: !out;
  Array.of_list (List.rev !out)

(* ---- parser ---- *)

type parser_state = { toks : lexed array; mutable pos : int }

let cur p = p.toks.(p.pos)
let tok p = (cur p).tok

let perr p fmt =
  let ({ line; col; _ } : lexed) = cur p in
  err ~line ~col fmt

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let token_name = function
  | INT v -> Printf.sprintf "integer %d" v
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW s -> Printf.sprintf "keyword %S" s
  | PUNCT s | OP s -> Printf.sprintf "%S" s
  | PRAGMA s -> Printf.sprintf "pragma \"//@ %s\"" s
  | EOF -> "end of input"

let expect_punct p s =
  match tok p with
  | PUNCT x when x = s -> advance p
  | t -> perr p "expected %S, found %s" s (token_name t)

(* expression builtins: name, arity, constructor *)
let expr_builtin name args =
  match (name, args) with
  | "read_word", [] -> Some Zirc.Read_word
  | "input_avail", [] -> Some Zirc.Input_avail
  | "cmp8", [ a; b ] -> Some (Zirc.Cmp8 (a, b))
  | _ -> None

let rec parse_expr p = parse_cmp p

and parse_cmp p =
  let lhs = parse_bitor p in
  match tok p with
  | OP (("==" | "!=" | "<" | "<=" | ">" | ">=" | "<s") as o) ->
    advance p;
    let rhs = parse_bitor p in
    let op =
      match o with
      | "==" -> Zirc.Eq
      | "!=" -> Zirc.Neq
      | "<" -> Zirc.Lt
      | "<=" -> Zirc.Le
      | ">" -> Zirc.Gt
      | ">=" -> Zirc.Ge
      | _ -> Zirc.Slt
    in
    Zirc.Bin (op, lhs, rhs)
  | _ -> lhs

and parse_bitor p = parse_left p [ ("|", Zirc.Or) ] parse_bitxor
and parse_bitxor p = parse_left p [ ("^", Zirc.Xor) ] parse_bitand
and parse_bitand p = parse_left p [ ("&", Zirc.And) ] parse_shift
and parse_shift p = parse_left p [ ("<<", Zirc.Shl); (">>", Zirc.Shr) ] parse_add
and parse_add p = parse_left p [ ("+", Zirc.Add); ("-", Zirc.Sub) ] parse_mul
and parse_mul p =
  parse_left p [ ("*", Zirc.Mul); ("/", Zirc.Divu); ("%", Zirc.Remu) ] parse_primary

and parse_left p table next =
  let lhs = ref (next p) in
  let continue = ref true in
  while !continue do
    match tok p with
    | OP o when List.mem_assoc o table ->
      advance p;
      let rhs = next p in
      lhs := Zirc.Bin (List.assoc o table, !lhs, rhs)
    | _ -> continue := false
  done;
  !lhs

and parse_args p =
  expect_punct p "(";
  let rec go acc =
    match tok p with
    | PUNCT ")" ->
      advance p;
      List.rev acc
    | _ ->
      let e = parse_expr p in
      (match tok p with
       | PUNCT "," ->
         advance p;
         go (e :: acc)
       | PUNCT ")" ->
         advance p;
         List.rev (e :: acc)
       | _ -> perr p "expected \",\" or \")\" in argument list")
  in
  go []

and parse_primary p =
  match tok p with
  | INT v ->
    advance p;
    Zirc.Int v
  | KW "mem" ->
    advance p;
    expect_punct p "[";
    let e = parse_expr p in
    expect_punct p "]";
    Zirc.Load e
  | PUNCT "(" ->
    advance p;
    let e = parse_expr p in
    expect_punct p ")";
    e
  | IDENT name when (p.toks.(p.pos + 1)).tok = PUNCT "(" -> (
    advance p;
    let args = parse_args p in
    match expr_builtin name args with
    | Some e -> e
    | None -> perr p "unknown function %S (or wrong arity) in expression" name)
  | IDENT name ->
    advance p;
    Zirc.Var name
  | t -> perr p "expected expression, found %s" (token_name t)

let stmt_builtin p name args =
  match (name, args) with
  | "commit", [ e ] -> Zirc.Commit e
  | "debug", [ e ] -> Zirc.Debug e
  | "halt", [ e ] -> Zirc.Halt e
  | "sha", [ src; words; dst ] -> Zirc.Sha { src; words; dst }
  | "read_words", [ dst; count ] -> Zirc.Read_words { dst; count }
  | "commit_words", [ src; count ] -> Zirc.Commit_words { src; count }
  | "leaf_hashes", [ entries; count; out; scratch ] ->
    Zirc.Leaf_hashes { entries; count; out; scratch }
  | "merkle_root", [ leaves; count ] -> Zirc.Merkle_root { leaves; count }
  | _ -> perr p "unknown statement %S (or wrong arity)" name

(* Every statement parser also returns its source position (and those
   of nested blocks) so lint findings can point at the offending
   token; [parse] discards them, [parse_positioned] keeps them. *)
let rec parse_stmt p =
  match tok p with
  | PRAGMA "trusted" ->
    advance p;
    let s, sp = parse_stmt p in
    (s, { sp with trusted = true })
  | PRAGMA other -> perr p "unknown pragma \"//@ %s\" (supported: trusted)" other
  | _ -> parse_plain_stmt p

and parse_plain_stmt p =
  let ({ line; col; _ } : lexed) = cur p in
  let mk sub = { pos = { line; col }; trusted = false; sub } in
  match tok p with
  | KW "let" ->
    advance p;
    let name =
      match tok p with
      | IDENT n ->
        advance p;
        n
      | t -> perr p "expected variable name after let, found %s" (token_name t)
    in
    expect_punct p "=";
    let e = parse_expr p in
    expect_punct p ";";
    (Zirc.Let (name, e), mk [])
  | KW "mem" ->
    advance p;
    expect_punct p "[";
    let addr = parse_expr p in
    expect_punct p "]";
    expect_punct p "=";
    let v = parse_expr p in
    expect_punct p ";";
    (Zirc.Store (addr, v), mk [])
  | KW "if" ->
    advance p;
    let cond = parse_expr p in
    let then_b, then_p = parse_block p in
    let else_b, else_p =
      match tok p with
      | KW "else" ->
        advance p;
        parse_block p
      | _ -> ([], [])
    in
    (Zirc.If (cond, then_b, else_b), mk [ then_p; else_p ])
  | KW "while" ->
    advance p;
    let cond = parse_expr p in
    let body, body_p = parse_block p in
    (Zirc.While (cond, body), mk [ body_p ])
  | IDENT name when (p.toks.(p.pos + 1)).tok = PUNCT "(" ->
    advance p;
    let args = parse_args p in
    let s = stmt_builtin p name args in
    expect_punct p ";";
    (s, mk [])
  | IDENT name ->
    advance p;
    expect_punct p "=";
    let e = parse_expr p in
    expect_punct p ";";
    (Zirc.Set (name, e), mk [])
  | t -> perr p "expected statement, found %s" (token_name t)

and parse_block p =
  expect_punct p "{";
  let rec go acc pacc =
    match tok p with
    | PUNCT "}" ->
      advance p;
      (List.rev acc, List.rev pacc)
    | EOF -> perr p "unterminated block"
    | _ ->
      let s, sp = parse_stmt p in
      go (s :: acc) (sp :: pacc)
  in
  go [] []

let parse_positioned src =
  match
    let p = { toks = lex src; pos = 0 } in
    let rec go acc =
      match tok p with
      | EOF -> List.rev acc
      | _ ->
        let sp = parse_stmt p in
        go (sp :: acc)
    in
    go []
  with
  | pairs -> Ok (List.map fst pairs, List.map snd pairs)
  | exception Error msg -> Error ("zirc parse: " ^ msg)

let parse src = Result.map fst (parse_positioned src)

let read_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | src -> Ok src
  | exception Sys_error msg -> Error msg

let parse_file path = Result.bind (read_file path) parse

let parse_file_positioned path = Result.bind (read_file path) parse_positioned
