(** Monotonic clock, nanosecond resolution.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a C stub that
    returns a tagged int — reading the clock never allocates, which
    is what lets span instrumentation sit on proving hot paths. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed origin (typically boot).
    Strictly non-decreasing; never 0 in practice, which the span
    layer uses as its "disabled" sentinel. *)

val ns_to_s : int -> float
(** Convenience: nanoseconds to seconds. *)

val ns_to_us : int -> float
(** Nanoseconds to (fractional) microseconds — the unit of Chrome
    [trace_event] timestamps. *)
