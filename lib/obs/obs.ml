let on = Control.on
let enable () = Control.set true
let disable () = Control.set false

let reset () =
  Metric.reset_all ();
  Span.reset ();
  Event.reset ();
  Timeseries.reset ()

let with_enabled f =
  reset ();
  enable ();
  Fun.protect ~finally:disable f

let write_trace path =
  let oc = open_out path in
  output_string oc (Export.trace_json ());
  output_char oc '\n';
  close_out oc

let write_events ?append path = Event.write_jsonl ?append path

let span_totals_s () =
  List.map
    (fun (name, (count, total_ns)) -> (name, (count, Clock.ns_to_s total_ns)))
    (Span.totals ())
