(** Hierarchical wall-clock spans.

    A span is opened with {!start} (which returns the raw monotonic
    timestamp as an unboxed [int] — 0 when telemetry is disabled) and
    closed with {!finish}, which records a completed event carrying
    the owning domain's id. Nesting is implicit: spans on the same
    domain that overlap in time render as a stack in Perfetto /
    [chrome://tracing], and {!events} exposes the per-domain parent
    index for programmatic consumers.

    Cost model: [start] is a branch plus (when enabled) one clock
    read; [finish] with [t0 = 0] is a branch. Sites that attach [args]
    should guard on [t0 <> 0] so the list is never allocated on the
    disabled path. *)

type evt = {
  name : string;
  ts_ns : int;    (** monotonic open timestamp *)
  dur_ns : int;
  tid : int;      (** recording domain id *)
  parent : int;   (** index into {!events} of the enclosing span on
                      the same domain, or [-1] at top level *)
  args : (string * int) list;
}

val start : unit -> int
(** Current monotonic time, or [0] while telemetry is disabled. *)

val finish : ?args:(string * int) list -> string -> int -> unit
(** [finish name t0] records a completed span opened at [t0]. A no-op
    when [t0 = 0] or telemetry has been disabled since. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Scoped convenience for non-hot sites; exception-safe. *)

val events : unit -> evt list
(** Completed spans in chronological (open-time) order. *)

val totals : unit -> (string * (int * int)) list
(** Per-name aggregate over {!events}: [(name, (count, total_ns))],
    sorted by name. Nested spans each contribute their full duration
    (a parent's total includes its children). *)

val reset : unit -> unit
