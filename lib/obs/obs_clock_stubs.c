/* Monotonic clock for the telemetry layer.

   Returns nanoseconds since an arbitrary epoch as a tagged OCaml int
   (no allocation, so the external can be [@@noalloc]): 2^62 ns is
   ~146 years of uptime, far beyond any CLOCK_MONOTONIC value. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value zkflow_obs_now_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
