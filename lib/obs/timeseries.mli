(** Periodic metric time-series: the history behind the live plane.

    A {e frame} is one cumulative snapshot of every registered counter
    and histogram plus the GC accounting ([Gc.quick_stat]) at one
    monotonic instant. Frames land in a bounded ring (oldest evicted,
    drop count kept) either from an explicit {!sample} call or from the
    background tick thread ({!start}/{!stop}, default tick
    {!default_interval_ms}).

    Because frames are cumulative, windowed queries are deltas between
    two frames: {!rate} divides a counter delta by the wall-clock span,
    {!window_hist} subtracts histogram snapshots bucket-wise
    ({!Metric.sub_snapshot}) so {!Metric.percentile} answers "p95 over
    the last N frames", not "p95 since process start". That is what
    lets [zkflow monitor] report trends and [zkflow watch] serve live
    gauges.

    Sampling reads the registry without touching the {!Control} gate:
    a sample taken while telemetry is disabled is a frame of frozen
    values, which is exactly what an on/off overhead comparison wants
    to see. The tick thread itself is the only cost telemetry-on adds,
    and the obs-overhead bench row keeps that honest. *)

type frame = {
  seq : int;  (** monotonically increasing sample number *)
  ts_ns : int;  (** {!Clock.now_ns} at sample time *)
  counters : (string * int) list;  (** cumulative, sorted by name *)
  histograms : (string * Metric.histogram_snapshot) list;  (** cumulative *)
  gc_minor_words : float;
  gc_major_words : float;
  gc_compactions : int;
  gc_heap_words : int;
}

val sample : unit -> frame
(** Take one frame now and push it onto the ring. *)

val frames : unit -> frame list
(** Buffered frames, oldest first. *)

val default_interval_ms : int
(** The default sampler tick (100 ms). *)

val start : ?interval_ms:int -> unit -> bool
(** Start the background tick thread; [false] if one is already
    running (it is left untouched). *)

val stop : unit -> unit
(** Stop the tick thread, wait for it, and take one final frame so the
    shutdown state is always in the ring. No-op when not running. *)

val running : unit -> bool

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (drops everything buffered; min capacity 2 — a
    window needs two frames). *)

val dropped : unit -> int
(** Frames evicted since the last {!reset}. *)

val reset : unit -> unit

(** {2 Window queries}

    All take the frame list explicitly (from {!frames} or
    {!load_jsonl}) so saved series query the same way live ones do.
    [last] counts frames; fewer than two available frames means no
    window, hence [None]. *)

val rate : string -> last:int -> frame list -> float option
(** Counter delta per second across the last [last] frames. *)

val window_hist :
  string -> last:int -> frame list -> Metric.histogram_snapshot option
(** Histogram activity within the last [last] frames (cumulative
    snapshots subtracted bucket-wise). *)

val window_percentiles :
  string -> last:int -> frame list -> (int * int * int * int) option
(** [(count, p50, p95, p99)] of {!window_hist}, [None] when the window
    saw no observations. *)

(** {2 JSONL persistence} *)

val to_json : frame -> Zkflow_util.Jsonx.t
val of_json : Zkflow_util.Jsonx.t -> (frame, string) result
val parse_line : string -> (frame, string) result

val write_jsonl : ?append:bool -> string -> unit
(** Write the buffered frames to a file, one JSON object per line
    ([append] defaults to [false]: truncate). The ring is left
    untouched — unlike the event log, a time-series is re-exported
    whole. *)

val load_jsonl : string -> (frame list * string option, string) result
(** Read a frame series back. Same torn-tail tolerance as
    {!Event.load_jsonl}: a truncated final line yields the decodable
    prefix plus a note; corruption mid-file is still an error. *)

val prometheus_gauges : frame list -> string
(** Gauge lines for the [/metrics] endpoint: frame count, series span,
    last sequence number, and the last frame's GC numbers. *)
