type evt = {
  name : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  parent : int;
  args : (string * int) list;
}

(* Recorded at [finish] with parent = -1; the enclosing span is still
   open then, so parents are reconstructed in [events] from interval
   nesting (spans on one domain close LIFO, so a stack sweep over the
   open-time order is exact). *)
let lock = Mutex.create ()
let buf : evt list ref = ref []
let count = ref 0

let start () = if Control.on () then Clock.now_ns () else 0

let finish ?(args = []) name t0 =
  if t0 <> 0 && Control.on () then begin
    let now = Clock.now_ns () in
    let e =
      {
        name;
        ts_ns = t0;
        dur_ns = now - t0;
        tid = (Domain.self () :> int);
        parent = -1;
        args;
      }
    in
    Mutex.lock lock;
    buf := e :: !buf;
    incr count;
    Mutex.unlock lock
  end

let with_span name f =
  let t0 = start () in
  match f () with
  | v ->
    finish name t0;
    v
  | exception e ->
    finish name t0;
    raise e

let events () =
  Mutex.lock lock;
  let l = !buf in
  Mutex.unlock lock;
  let a = Array.of_list l in
  (* Open-time order; on ties the longer (outer) span first. *)
  Array.sort
    (fun a b ->
      match Int.compare a.ts_ns b.ts_ns with
      | 0 -> Int.compare b.dur_ns a.dur_ns
      | c -> c)
    a;
  let stacks : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let out =
    Array.mapi
      (fun i e ->
        let stack =
          match Hashtbl.find_opt stacks e.tid with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.add stacks e.tid s;
            s
        in
        let e_end = e.ts_ns + e.dur_ns in
        let rec pop () =
          match !stack with
          | (_, fin) :: rest when fin <= e.ts_ns ->
            stack := rest;
            pop ()
          | _ -> ()
        in
        pop ();
        let parent =
          match !stack with
          | (pi, fin) :: _ when e_end <= fin -> pi
          | _ -> -1
        in
        stack := (i, e_end) :: !stack;
        { e with parent })
      a
  in
  Array.to_list out

let totals () =
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  Mutex.lock lock;
  let l = !buf in
  Mutex.unlock lock;
  List.iter
    (fun e ->
      let n, t = Option.value (Hashtbl.find_opt tbl e.name) ~default:(0, 0) in
      Hashtbl.replace tbl e.name (n + 1, t + e.dur_ns))
    l;
  Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Mutex.lock lock;
  buf := [];
  count := 0;
  Mutex.unlock lock
