module Jsonx = Zkflow_util.Jsonx

type frame = {
  seq : int;
  ts_ns : int;
  counters : (string * int) list;
  histograms : (string * Metric.histogram_snapshot) list;
  gc_minor_words : float;
  gc_major_words : float;
  gc_compactions : int;
  gc_heap_words : int;
}

(* Bounded frame ring, same eviction discipline as the event ring:
   oldest frames fall off once the ring is full, with the drop count
   kept so window queries can say how much history they lost. *)
let lock = Mutex.create ()
let default_capacity = 512
let buf = ref (Array.make default_capacity None)
let head = ref 0
let len = ref 0
let dropped_count = ref 0
let next_seq = ref 0

let capacity () =
  Mutex.lock lock;
  let n = Array.length !buf in
  Mutex.unlock lock;
  n

let set_capacity n =
  let n = max 2 n in
  Mutex.lock lock;
  buf := Array.make n None;
  head := 0;
  len := 0;
  dropped_count := 0;
  next_seq := 0;
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  Array.fill !buf 0 (Array.length !buf) None;
  head := 0;
  len := 0;
  dropped_count := 0;
  next_seq := 0;
  Mutex.unlock lock

let dropped () =
  Mutex.lock lock;
  let d = !dropped_count in
  Mutex.unlock lock;
  d

let push f =
  Mutex.lock lock;
  let cap = Array.length !buf in
  !buf.(!head) <- Some f;
  head := (!head + 1) mod cap;
  if !len < cap then incr len else incr dropped_count;
  Mutex.unlock lock

let sample () =
  let gc = Gc.quick_stat () in
  let f =
    {
      seq =
        (Mutex.lock lock;
         let s = !next_seq in
         incr next_seq;
         Mutex.unlock lock;
         s);
      ts_ns = Clock.now_ns ();
      counters = Metric.counters ();
      histograms = Metric.histograms ();
      gc_minor_words = gc.Gc.minor_words;
      gc_major_words = gc.Gc.major_words;
      gc_compactions = gc.Gc.compactions;
      gc_heap_words = gc.Gc.heap_words;
    }
  in
  push f;
  f

let frames () =
  Mutex.lock lock;
  let cap = Array.length !buf in
  let n = !len in
  let first = (!head - n + cap) mod cap in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match !buf.((first + i) mod cap) with
    | Some f -> out := f :: !out
    | None -> ()
  done;
  Mutex.unlock lock;
  !out

(* ---- the tick thread ---- *)

let default_interval_ms = 100

type sampler = { stop_flag : bool Atomic.t; thread : Thread.t }

let sampler_lock = Mutex.create ()
let current : sampler option ref = ref None

let start ?(interval_ms = default_interval_ms) () =
  let interval_s = float_of_int (max 1 interval_ms) /. 1000. in
  Mutex.lock sampler_lock;
  let started =
    match !current with
    | Some _ -> false
    | None ->
      let stop_flag = Atomic.make false in
      let thread =
        Thread.create
          (fun () ->
            while not (Atomic.get stop_flag) do
              ignore (sample ());
              Thread.delay interval_s
            done)
          ()
      in
      current := Some { stop_flag; thread };
      true
  in
  Mutex.unlock sampler_lock;
  started

let stop () =
  Mutex.lock sampler_lock;
  let s = !current in
  current := None;
  Mutex.unlock sampler_lock;
  match s with
  | None -> ()
  | Some { stop_flag; thread } ->
    Atomic.set stop_flag true;
    Thread.join thread;
    (* One final frame so the window queries always see the state at
       shutdown, however the tick landed. *)
    ignore (sample ())

let running () =
  Mutex.lock sampler_lock;
  let r = !current <> None in
  Mutex.unlock sampler_lock;
  r

(* ---- window queries ---- *)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let bounds = function
  | [] | [ _ ] -> None
  | first :: _ as l -> Some (first, List.nth l (List.length l - 1))

let rate name ~last fs =
  match bounds (last_n (max 2 last) fs) with
  | None -> None
  | Some (a, b) ->
    let v f = Option.value ~default:0 (List.assoc_opt name f.counters) in
    let dt_ns = b.ts_ns - a.ts_ns in
    if dt_ns <= 0 then None
    else Some (float_of_int (v b - v a) /. Clock.ns_to_s dt_ns)

let window_hist name ~last fs =
  match bounds (last_n (max 2 last) fs) with
  | None -> None
  | Some (a, b) -> (
    match (List.assoc_opt name b.histograms, List.assoc_opt name a.histograms) with
    | None, _ -> None
    | Some hb, None -> Some hb
    | Some hb, Some ha -> Some (Metric.sub_snapshot hb ha))

let window_percentiles name ~last fs =
  match window_hist name ~last fs with
  | None -> None
  | Some s when s.Metric.count = 0 -> None
  | Some s ->
    Some
      ( s.Metric.count,
        Metric.percentile s 0.50,
        Metric.percentile s 0.95,
        Metric.percentile s 0.99 )

(* ---- JSONL persistence ---- *)

let hist_json (s : Metric.histogram_snapshot) =
  let num n = Jsonx.Num (float_of_int n) in
  Jsonx.Obj
    [
      ("count", num s.Metric.count);
      ("sum", num s.Metric.sum);
      ("max", num s.Metric.max_value);
      ( "buckets",
        Jsonx.Arr
          (List.map
             (fun (le, cum) -> Jsonx.Arr [ num le; num cum ])
             s.Metric.buckets) );
    ]

let hist_of_json v =
  let int_field k =
    match Jsonx.member k v with Some (Jsonx.Num f) -> Some (int_of_float f) | _ -> None
  in
  match (int_field "count", int_field "sum", int_field "max", Jsonx.member "buckets" v) with
  | Some count, Some sum, Some max_value, Some (Jsonx.Arr bs) ->
    let buckets =
      List.filter_map
        (function
          | Jsonx.Arr [ Jsonx.Num le; Jsonx.Num cum ] ->
            Some (int_of_float le, int_of_float cum)
          | _ -> None)
        bs
    in
    Ok { Metric.count; sum; max_value; buckets }
  | _ -> Error "timeseries: malformed histogram"

let to_json f =
  let num n = Jsonx.Num (float_of_int n) in
  Jsonx.Obj
    [
      ("seq", num f.seq);
      ("ts_ns", num f.ts_ns);
      ("counters", Jsonx.Obj (List.map (fun (k, v) -> (k, num v)) f.counters));
      ("histograms", Jsonx.Obj (List.map (fun (k, s) -> (k, hist_json s)) f.histograms));
      ( "gc",
        Jsonx.Obj
          [
            ("minor_words", Jsonx.Num f.gc_minor_words);
            ("major_words", Jsonx.Num f.gc_major_words);
            ("compactions", num f.gc_compactions);
            ("heap_words", num f.gc_heap_words);
          ] );
    ]

let of_json v =
  let int_field k =
    match Jsonx.member k v with Some (Jsonx.Num f) -> Some (int_of_float f) | _ -> None
  in
  match (int_field "seq", int_field "ts_ns") with
  | Some seq, Some ts_ns ->
    let counters =
      match Jsonx.member "counters" v with
      | Some (Jsonx.Obj kvs) ->
        List.filter_map
          (function k, Jsonx.Num f -> Some (k, int_of_float f) | _ -> None)
          kvs
      | _ -> []
    in
    let histograms =
      match Jsonx.member "histograms" v with
      | Some (Jsonx.Obj kvs) ->
        List.filter_map
          (fun (k, hv) -> match hist_of_json hv with Ok s -> Some (k, s) | Error _ -> None)
          kvs
      | _ -> []
    in
    let gc_num k =
      match Jsonx.member "gc" v with
      | Some gc -> (
        match Jsonx.member k gc with Some (Jsonx.Num f) -> f | _ -> 0.)
      | None -> 0.
    in
    Ok
      {
        seq;
        ts_ns;
        counters;
        histograms;
        gc_minor_words = gc_num "minor_words";
        gc_major_words = gc_num "major_words";
        gc_compactions = int_of_float (gc_num "compactions");
        gc_heap_words = int_of_float (gc_num "heap_words");
      }
  | _ -> Error "timeseries: frame missing seq/ts_ns"

let parse_line line = Result.bind (Jsonx.parse line) of_json

let write_jsonl ?(append = false) path =
  let flags =
    (if append then [ Open_append ] else [ Open_trunc ]) @ [ Open_wronly; Open_creat ]
  in
  let oc = open_out_gen flags 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun f -> output_string oc (Jsonx.to_string (to_json f) ^ "\n"))
        (frames ()))

(* Same torn-tail discipline as {!Event.load_jsonl}: the sampler can
   die mid-line too, and one lost frame must not cost the history. *)
let load_jsonl path =
  if not (Sys.file_exists path) then Error (path ^ ": not found")
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc, None)
      | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else begin
          match parse_line line with
          | Ok f -> go (f :: acc) (lineno + 1) rest
          | Error e ->
            if List.for_all (fun l -> String.trim l = "") rest then
              Ok
                ( List.rev acc,
                  Some
                    (Printf.sprintf "%s:%d: truncated tail dropped (%s)" path
                       lineno e) )
            else Error (Printf.sprintf "%s:%d: %s" path lineno e)
        end
    in
    go [] 1 (List.rev !lines)
  end

(* ---- Prometheus gauge lines for the /metrics endpoint ---- *)

let prometheus_gauges fs =
  let b = Buffer.create 256 in
  let gauge name v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name v)
  in
  gauge "zkflow_timeseries_frames" (string_of_int (List.length fs));
  (match bounds fs with
  | Some (a, z) ->
    gauge "zkflow_timeseries_span_seconds"
      (Printf.sprintf "%.3f" (Clock.ns_to_s (z.ts_ns - a.ts_ns)))
  | None -> ());
  (match List.rev fs with
  | [] -> ()
  | last :: _ ->
    gauge "zkflow_timeseries_last_seq" (string_of_int last.seq);
    gauge "zkflow_gc_minor_words" (Printf.sprintf "%.0f" last.gc_minor_words);
    gauge "zkflow_gc_major_words" (Printf.sprintf "%.0f" last.gc_major_words);
    gauge "zkflow_gc_compactions" (string_of_int last.gc_compactions);
    gauge "zkflow_gc_heap_words" (string_of_int last.gc_heap_words));
  Buffer.contents b
