let enabled = Atomic.make false
let on () = Atomic.get enabled
let set b = Atomic.set enabled b
