(** Named counters and log2-bucketed histograms.

    Metrics are registered once (typically at module initialisation of
    the instrumented library) and recorded from any domain. Counters
    keep one cell per recording domain in domain-local storage, so the
    hot increment is an unshared [int ref] write — no atomic
    contention between pool workers hashing in parallel; readers sum
    the cells. Histograms are mutex-protected (their call sites are
    per-region / per-round, not per-element).

    Every recording entry point first branches on {!Control.on} and is
    a no-op (no allocation, no locking) while telemetry is disabled. *)

type counter

val counter : string -> counter
(** Get or create the counter registered under [name]. Counter and
    histogram names share one namespace by convention
    ([subsystem.metric], e.g. ["sha256.compressions"]). *)

val add : counter -> int -> unit
(** Add [n] (a no-op while telemetry is disabled). *)

val value : counter -> int
(** Sum over every domain's cell. Cells of live workers are read
    without synchronisation — exact once the pool is quiescent,
    a close lower bound while it runs. *)

type histogram

val histogram : string -> histogram
(** Get or create the histogram registered under [name]. Buckets are
    powers of two: bucket [i >= 1] counts observations [v] with
    [2^(i-1) <= v < 2^i]; bucket [0] counts [v <= 0]. *)

val observe : histogram -> int -> unit
(** Record one observation (a no-op while telemetry is disabled). *)

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
      (** [(le, n)]: [n] observations with value [<= le]; cumulative,
          ascending, only non-empty buckets plus their predecessors'
          totals folded in. *)
}

val snapshot : histogram -> histogram_snapshot

val snapshot_of_values : int list -> histogram_snapshot
(** Bucket a list of values through the same log2 scheme without
    registering a histogram (and regardless of the telemetry gate) —
    for offline consumers such as [zkflow monitor] replaying round
    latencies out of an event log. *)

val sub_snapshot : histogram_snapshot -> histogram_snapshot -> histogram_snapshot
(** [sub_snapshot newer older]: the window delta between two cumulative
    snapshots of the {e same} histogram — what was observed after
    [older] was taken. Bucket grids always align (they are fixed by the
    log2 scheme). The delta's [max_value] is the lifetime maximum (an
    upper bound on the window's true maximum), so percentiles over a
    window err high by at most one bucket, same as everywhere else. *)

val percentile : histogram_snapshot -> float -> int
(** [percentile s q] for [q] in [0..1] (e.g. [0.5], [0.95], [0.99]):
    the upper bound of the first bucket whose cumulative count reaches
    rank [ceil (q * count)], capped at the observed maximum. [0] when
    the histogram is empty. The estimate errs high by at most the
    bucket width (a factor of 2). *)

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val histograms : unit -> (string * histogram_snapshot) list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit
(** Zero every counter cell and histogram. Call only while no
    instrumented workload is running. Registrations persist. *)
