(** Exporters over the recorded telemetry.

    Two formats, matching the two consumers the round summaries have:
    - {!trace_json}: Chrome [trace_event] JSON (an array of complete
      ["ph":"X"] events) loadable in [chrome://tracing] or Perfetto;
    - {!prometheus}: a Prometheus text-format dump of every counter,
      histogram, and per-span total.

    {!stats_json} is the machine-readable combination used by
    [zkflow stats --json] and the bench artifacts. All string escaping
    goes through {!Zkflow_util.Jsonx}. *)

val trace_json : unit -> string
(** Every completed span as a Chrome trace event with keys [name],
    [cat], [ph], [ts], [dur], [pid], [tid] (and [args] when present).
    Timestamps are microseconds relative to the earliest span. *)

val prometheus : unit -> string
(** Text-format metrics dump. Metric names are sanitised
    ([sha256.compressions] → [zkflow_sha256_compressions]); spans
    appear as [zkflow_span_seconds_total{span="..."}] /
    [zkflow_span_count_total{span="..."}] pairs. *)

val prometheus_of :
  counters:(string * int) list ->
  histograms:(string * Metric.histogram_snapshot) list ->
  spans:(string * (int * int)) list ->
  string
(** Same rendering over explicit data instead of the live registry —
    what [zkflow watch] uses to serve a saved {!Timeseries} frame from
    a process that never ran the workload itself. *)

val stats_json : unit -> string
(** [{"counters":{...},"histograms":{...},"spans":{...}}] where each
    span entry carries [count] and [total_s]. *)
