module Jsonx = Zkflow_util.Jsonx

type t = {
  ts_ns : int;
  track : string;
  kind : string;
  router : int option;
  epoch : int option;
  round : int option;
  query : int option;
  attrs : (string * Jsonx.t) list;
}

(* Ring buffer: [buf.(head)] is the next write slot; [len] <= capacity.
   Oldest events are evicted (and counted) once the ring is full. *)
let lock = Mutex.create ()
let default_capacity = 65536
let buf = ref (Array.make default_capacity None)
let head = ref 0
let len = ref 0
let dropped_count = ref 0

let capacity () =
  Mutex.lock lock;
  let n = Array.length !buf in
  Mutex.unlock lock;
  n

let set_capacity n =
  let n = max 1 n in
  Mutex.lock lock;
  buf := Array.make n None;
  head := 0;
  len := 0;
  dropped_count := 0;
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  Array.fill !buf 0 (Array.length !buf) None;
  head := 0;
  len := 0;
  dropped_count := 0;
  Mutex.unlock lock

let push e =
  Mutex.lock lock;
  let cap = Array.length !buf in
  !buf.(!head) <- Some e;
  head := (!head + 1) mod cap;
  if !len < cap then incr len else incr dropped_count;
  Mutex.unlock lock

let emit ?router ?epoch ?round ?query ?(attrs = []) ~track kind =
  if Control.on () then
    push { ts_ns = Clock.now_ns (); track; kind; router; epoch; round; query; attrs }

let events () =
  Mutex.lock lock;
  let cap = Array.length !buf in
  let n = !len in
  let first = (!head - n + cap) mod cap in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match !buf.((first + i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  Mutex.unlock lock;
  !out

let dropped () =
  Mutex.lock lock;
  let d = !dropped_count in
  Mutex.unlock lock;
  d

(* ---- JSONL ---- *)

let to_json e =
  let num v = Jsonx.Num (float_of_int v) in
  let opt k v = Option.map (fun v -> (k, num v)) v in
  Jsonx.Obj
    (List.filter_map Fun.id
       [
         Some ("ts_ns", num e.ts_ns);
         Some ("track", Jsonx.Str e.track);
         Some ("kind", Jsonx.Str e.kind);
         opt "router" e.router;
         opt "epoch" e.epoch;
         opt "round" e.round;
         opt "query" e.query;
       ]
    @ e.attrs)

let of_json v =
  match v with
  | Jsonx.Obj fields ->
    let int_field k =
      match List.assoc_opt k fields with
      | Some (Jsonx.Num f) -> Some (int_of_float f)
      | _ -> None
    in
    let str_field k =
      match List.assoc_opt k fields with Some (Jsonx.Str s) -> Some s | _ -> None
    in
    (match (int_field "ts_ns", str_field "track", str_field "kind") with
    | Some ts_ns, Some track, Some kind ->
      let reserved =
        [ "ts_ns"; "track"; "kind"; "router"; "epoch"; "round"; "query" ]
      in
      Ok
        {
          ts_ns;
          track;
          kind;
          router = int_field "router";
          epoch = int_field "epoch";
          round = int_field "round";
          query = int_field "query";
          attrs = List.filter (fun (k, _) -> not (List.mem k reserved)) fields;
        }
    | None, _, _ -> Error "event: missing numeric \"ts_ns\""
    | _, None, _ -> Error "event: missing string \"track\""
    | _, _, None -> Error "event: missing string \"kind\"")
  | _ -> Error "event: not a JSON object"

let parse_line line = Result.bind (Jsonx.parse line) of_json

let flush write =
  let evts = events () in
  Mutex.lock lock;
  Array.fill !buf 0 (Array.length !buf) None;
  head := 0;
  len := 0;
  Mutex.unlock lock;
  List.iter (fun e -> write (Jsonx.to_string (to_json e) ^ "\n")) evts

let write_jsonl ?(append = false) path =
  let flags =
    (if append then [ Open_append ] else [ Open_trunc ])
    @ [ Open_wronly; Open_creat ]
  in
  let oc = open_out_gen flags 0o644 path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> flush (output_string oc))

let load_jsonl path =
  if not (Sys.file_exists path) then Error (path ^ ": not found")
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    (* A crash mid-flush leaves at most one torn line, and it is the
       final one — keep the longest decodable prefix and surface a
       note instead of failing the whole load. A bad line with intact
       events after it is corruption, not a torn tail, and still
       errors. *)
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc, None)
      | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else begin
          match parse_line line with
          | Ok e -> go (e :: acc) (lineno + 1) rest
          | Error e ->
            if List.for_all (fun l -> String.trim l = "") rest then
              Ok
                ( List.rev acc,
                  Some
                    (Printf.sprintf "%s:%d: truncated tail dropped (%s)" path
                       lineno e) )
            else Error (Printf.sprintf "%s:%d: %s" path lineno e)
        end
    in
    go [] 1 (List.rev !lines)
  end

let isolate f =
  Mutex.lock lock;
  let saved_buf = !buf
  and saved_head = !head
  and saved_len = !len
  and saved_dropped = !dropped_count in
  buf := Array.make (Array.length saved_buf) None;
  head := 0;
  len := 0;
  dropped_count := 0;
  Mutex.unlock lock;
  let restore () =
    Mutex.lock lock;
    buf := saved_buf;
    head := saved_head;
    len := saved_len;
    dropped_count := saved_dropped;
    Mutex.unlock lock
  in
  match f () with
  | v ->
    let captured = events () in
    restore ();
    (v, captured)
  | exception e ->
    restore ();
    raise e
