external now_ns : unit -> int = "zkflow_obs_now_ns" [@@noalloc]

let ns_to_s ns = float_of_int ns *. 1e-9
let ns_to_us ns = float_of_int ns *. 1e-3
