(** Top-level switchboard of the telemetry subsystem.

    Usage from an instrumented module:
    {[
      let c_hashes = Zkflow_obs.Metric.counter "merkle.nodes_hashed"

      let build ... =
        let t0 = Zkflow_obs.Span.start () in
        ...work...
        Zkflow_obs.Metric.add c_hashes n;
        Zkflow_obs.Span.finish "merkle.build" t0
    ]}

    and from a driver (CLI, bench, test):
    {[
      Zkflow_obs.Obs.reset ();
      Zkflow_obs.Obs.enable ();
      ...workload...
      Zkflow_obs.Obs.write_trace "out.json"
    ]}

    Everything recorded is observational: enabling telemetry never
    changes receipts, roots, or any other proof output (enforced by
    the differential suite in [test/test_obs.ml]). Disabled-path cost
    at every instrumentation site is a branch on one atomic flag —
    no allocation, no clock read. *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero all metrics, drop all recorded spans, all buffered events
    and all buffered time-series frames (registrations persist). Call
    between workloads being compared. *)

val with_enabled : (unit -> 'a) -> 'a
(** [with_enabled f]: reset, enable, run [f], disable (also on
    exception). The recorded data stays available for export after
    the call. *)

val write_trace : string -> unit
(** Write {!Export.trace_json} to a file. *)

val write_events : ?append:bool -> string -> unit
(** Flush the buffered {!Event} log to a JSONL file (and clear the
    buffer). The pipeline CLI appends each stage's events to one
    shared file so [zkflow monitor] can replay the whole run. *)

val span_totals_s : unit -> (string * (int * float)) list
(** Per-span-name [(count, total seconds)], sorted by name — the
    "phases" view the bench artifacts embed. *)
