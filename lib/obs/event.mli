(** The pipeline flight recorder: a causal log of structured events.

    Where {!Span} answers "where did the prover's seconds go inside
    one process", an event answers "what happened to proof round 3
    across the whole pipeline": routers exporting RLog windows, the
    bulletin board accepting (or rejecting) commitments, the prover
    service aggregating epochs, and the client verifier delivering
    verdicts. Every event carries the correlation keys of the paper's
    data flow — [router], [epoch], [round], [query] — so one grep on
    a round id over the JSONL file reconstructs the full story of a
    proof from packet generation to client acceptance.

    Events are ring-buffered in memory (oldest dropped beyond
    {!capacity}, with the drop count kept) and flushed to a sink on
    demand. Like every other recorder in [lib/obs], {!emit} is gated
    on {!Control.on}: while telemetry is disabled it does nothing and
    never changes what is proven (the differential suite in
    [test/test_obs.ml] enforces bit-identical receipts with the log
    on and off). Emission sites are cold paths — per window, per
    round, per verdict — never per record or per hash. *)

type t = {
  ts_ns : int;  (** monotonic timestamp ({!Clock.now_ns}) *)
  track : string;
      (** the pipeline actor: ["router.N"], ["board"], ["store"],
          ["prover"], ["verifier"], ["gen"] *)
  kind : string;
      (** what happened, namespaced: ["board.publish"],
          ["prover.round.done"], ["verifier.reject"], … *)
  router : int option;
  epoch : int option;
  round : int option;
  query : int option;
  attrs : (string * Zkflow_util.Jsonx.t) list;
      (** free-form payload (counts, durations, digests, causes) *)
}

val emit :
  ?router:int ->
  ?epoch:int ->
  ?round:int ->
  ?query:int ->
  ?attrs:(string * Zkflow_util.Jsonx.t) list ->
  track:string ->
  string ->
  unit
(** [emit ~track kind] records one event with the current monotonic
    timestamp. A no-op while telemetry is disabled. *)

val events : unit -> t list
(** Buffered events, oldest first. *)

val dropped : unit -> int
(** Events evicted from the ring since the last {!reset}. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (drops everything buffered; min capacity 1). *)

val reset : unit -> unit
(** Drop all buffered events and zero the drop counter. *)

(** {2 JSONL} *)

val to_json : t -> Zkflow_util.Jsonx.t
(** One event as a flat JSON object: [ts_ns]/[track]/[kind], the
    correlation keys that are present, then the attrs. *)

val of_json : Zkflow_util.Jsonx.t -> (t, string) result
(** Inverse of {!to_json}: requires [ts_ns]/[track]/[kind]; unknown
    keys become attrs. *)

val parse_line : string -> (t, string) result

val flush : (string -> unit) -> unit
(** Sink API: drain the buffer oldest-first, handing each event to
    the writer as one JSONL line (newline included), then clear the
    buffer. The drop counter is preserved. *)

val write_jsonl : ?append:bool -> string -> unit
(** Flush the buffer to a file as JSONL ([append] defaults to
    [false]: truncate). *)

val load_jsonl : string -> (t list * string option, string) result
(** Read a JSONL event log back, skipping blank lines. A truncated or
    corrupt {e final} line — what a crash mid-flush leaves behind — is
    tolerated: the longest decodable prefix is returned together with
    a [truncated_tail] note describing what was dropped. A bad line
    with intact events after it is real corruption and still fails.
    Errors carry the 1-based line number. *)

val isolate : (unit -> 'a) -> 'a * t list
(** [isolate f] runs [f] against a fresh, empty ring and returns its
    result together with every event recorded during the call; the
    previous ring contents (and drop counter) are restored afterwards,
    also on exception. Used by the chaos harness to flight-record the
    uninterrupted twin without polluting the chaos run's log. *)
