module Jsonx = Zkflow_util.Jsonx

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s:%d" (Jsonx.quote k) v) args)
  ^ "}"

let trace_json () =
  let evts = Span.events () in
  let t0 = List.fold_left (fun acc e -> min acc e.Span.ts_ns) max_int evts in
  let event e =
    let base =
      Printf.sprintf
        {|{"name":%s,"cat":"zkflow","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d|}
        (Jsonx.quote e.Span.name)
        (Clock.ns_to_us (e.Span.ts_ns - t0))
        (Clock.ns_to_us e.Span.dur_ns)
        e.Span.tid
    in
    match e.Span.args with
    | [] -> base ^ "}"
    | args -> base ^ ",\"args\":" ^ args_json args ^ "}"
  in
  "[\n" ^ String.concat ",\n" (List.map event evts) ^ "\n]"

(* Prometheus metric names: [a-zA-Z0-9_:]; everything else becomes an
   underscore and the zkflow_ prefix namespaces us. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prometheus_of ~counters ~histograms ~spans =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = "zkflow_" ^ sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    counters;
  List.iter
    (fun (name, (s : Metric.histogram_snapshot)) ->
      let n = "zkflow_" ^ sanitize name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      List.iter
        (fun (le, cum) ->
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le cum))
        s.Metric.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n s.Metric.count);
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n s.Metric.sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n s.Metric.count);
      (* Summary-style quantile estimates so a scrape sees tail
         latency directly, not just raw bucket counts. *)
      List.iter
        (fun q ->
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"%g\"} %d\n" n q
               (Metric.percentile s q)))
        [ 0.5; 0.95; 0.99 ])
    histograms;
  if spans <> [] then begin
    Buffer.add_string b "# TYPE zkflow_span_seconds_total counter\n";
    List.iter
      (fun (name, (_, total_ns)) ->
        Buffer.add_string b
          (Printf.sprintf "zkflow_span_seconds_total{span=\"%s\"} %.6f\n"
             (sanitize name) (Clock.ns_to_s total_ns)))
      spans;
    Buffer.add_string b "# TYPE zkflow_span_count_total counter\n";
    List.iter
      (fun (name, (count, _)) ->
        Buffer.add_string b
          (Printf.sprintf "zkflow_span_count_total{span=\"%s\"} %d\n"
             (sanitize name) count))
      spans
  end;
  Buffer.contents b

let prometheus () =
  prometheus_of ~counters:(Metric.counters ()) ~histograms:(Metric.histograms ())
    ~spans:(Span.totals ())

let stats_json () =
  let counters =
    String.concat ","
      (List.map
         (fun (name, v) -> Printf.sprintf "%s:%d" (Jsonx.quote name) v)
         (Metric.counters ()))
  in
  let histograms =
    String.concat ","
      (List.map
         (fun (name, (s : Metric.histogram_snapshot)) ->
           Printf.sprintf
             "%s:{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"buckets\":[%s]}"
             (Jsonx.quote name) s.Metric.count s.Metric.sum s.Metric.max_value
             (Metric.percentile s 0.5) (Metric.percentile s 0.95)
             (Metric.percentile s 0.99)
             (String.concat ","
                (List.map
                   (fun (le, cum) -> Printf.sprintf "[%d,%d]" le cum)
                   s.Metric.buckets)))
         (Metric.histograms ()))
  in
  let spans =
    String.concat ","
      (List.map
         (fun (name, (count, total_ns)) ->
           Printf.sprintf "%s:{\"count\":%d,\"total_s\":%.6f}" (Jsonx.quote name)
             count (Clock.ns_to_s total_ns))
         (Span.totals ()))
  in
  Printf.sprintf {|{"counters":{%s},"histograms":{%s},"spans":{%s}}|} counters
    histograms spans
