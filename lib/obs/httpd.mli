(** Minimal embedded HTTP/1.0 server over Unix sockets — no
    dependencies, by design: it runs {e inside} the prover process to
    expose the live telemetry plane ([/metrics], [/healthz], [/slo])
    and the daemon query front-end while a long run is underway.

    Protocol surface on purpose: GET only, [Connection: close], the
    response fully buffered (the bodies are a few KB of metrics text
    or JSON). One accept thread, one short-lived thread per
    connection; requests never touch proof state except through the
    handler given to {!start}. SIGPIPE is ignored on startup so a
    scraper disconnecting mid-response cannot kill the prover.

    Robustness: concurrent connections are capped ({!start}'s
    [max_conns]) — excess connections get an immediate JSON 503
    instead of an unbounded thread pile-up — and each connection has a
    read deadline ([read_timeout_s]) so a stalled client (slowloris)
    cannot pin a handler thread forever: a timed-out request gets a
    408 and the socket is closed. *)

type response = { status : int; content_type : string; body : string }

type request = { path : string; params : (string * string) list }
(** A parsed request target: [path] is the part before ['?'];
    [params] are the query parameters in order of appearance,
    percent-decoded (['+'] decodes to space). *)

type handler = request -> response option
(** Called with the parsed request. [None] yields a JSON 404.
    Exceptions become a JSON 500; they never propagate to the
    server. *)

type t

val request_of_target : string -> request
(** Parse a raw request target ("/query?src=10.0.0.1&op=sum") into a
    {!request}. Exposed for probes and tests. *)

val param : request -> string -> string option
(** First value of a query parameter, if present. *)

val start :
  ?host:string ->
  ?max_conns:int ->
  ?read_timeout_s:float ->
  port:int ->
  handler ->
  (t, string) result
(** Bind [host] (default loopback [127.0.0.1]) on [port] — [0] picks
    an ephemeral port, which {!port} reports — and serve in background
    threads until {!stop}. At most [max_conns] (default 64) handler
    threads run at once; connections beyond that are answered with an
    immediate 503 and closed. A connection that has not delivered its
    request headers within [read_timeout_s] seconds (default 10; [0.]
    disables the deadline) is answered with a 408 and closed. *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val stop : t -> unit
(** Close the listening socket and join the accept thread. In-flight
    connection threads finish on their own. *)
