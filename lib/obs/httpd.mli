(** Minimal embedded HTTP/1.0 server over Unix sockets — no
    dependencies, by design: it runs {e inside} the prover process to
    expose the live telemetry plane ([/metrics], [/healthz], [/slo])
    while a long [prove]/[chaos] run is underway.

    Protocol surface on purpose: GET only, [Connection: close], the
    response fully buffered (the bodies are a few KB of metrics text
    or JSON). One accept thread, one short-lived thread per
    connection; requests never touch proof state except through the
    handler given to {!start}. SIGPIPE is ignored on startup so a
    scraper disconnecting mid-response cannot kill the prover. *)

type response = { status : int; content_type : string; body : string }

type handler = string -> response option
(** Called with the request path (query string stripped). [None]
    yields a JSON 404. Exceptions become a JSON 500; they never
    propagate to the server. *)

type t

val start : ?host:string -> port:int -> handler -> (t, string) result
(** Bind [host] (default loopback [127.0.0.1]) on [port] — [0] picks
    an ephemeral port, which {!port} reports — and serve in background
    threads until {!stop}. *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val stop : t -> unit
(** Close the listening socket and join the accept thread. In-flight
    connection threads finish on their own. *)
