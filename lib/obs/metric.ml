type counter = {
  c_name : string;
  c_lock : Mutex.t;            (* guards [cells] *)
  cells : int ref list ref;    (* one per domain that ever recorded *)
  key : int ref Domain.DLS.key;
}

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  buckets : int array;         (* index = bit length of the value *)
  mutable count : int;
  mutable sum : int;
  mutable max_value : int;
}

type histogram_snapshot = {
  count : int;
  sum : int;
  max_value : int;
  buckets : (int * int) list;
}

(* Registry. Metrics are created at module-init time (single domain)
   or lazily from tests; the lock makes the latter safe too. *)
let registry_lock = Mutex.create ()
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters_tbl name with
    | Some c -> c
    | None ->
      let c_lock = Mutex.create () in
      let cells = ref [] in
      (* The DLS initialiser runs in whichever domain first records;
         it registers that domain's cell so readers can sum it. *)
      let key =
        Domain.DLS.new_key (fun () ->
            let cell = ref 0 in
            Mutex.lock c_lock;
            cells := cell :: !cells;
            Mutex.unlock c_lock;
            cell)
      in
      let c = { c_name = name; c_lock; cells; key } in
      Hashtbl.add counters_tbl name c;
      c
  in
  Mutex.unlock registry_lock;
  c

let add c n = if Control.on () then begin
    let cell = Domain.DLS.get c.key in
    cell := !cell + n
  end

let value c =
  Mutex.lock c.c_lock;
  let v = List.fold_left (fun acc cell -> acc + !cell) 0 !(c.cells) in
  Mutex.unlock c.c_lock;
  v

let bucket_index v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min 62 (bits v 0)
  end

let histogram name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt histograms_tbl name with
    | Some h -> h
    | None ->
      let h =
        {
          h_name = name;
          h_lock = Mutex.create ();
          buckets = Array.make 63 0;
          count = 0;
          sum = 0;
          max_value = min_int;
        }
      in
      Hashtbl.add histograms_tbl name h;
      h
  in
  Mutex.unlock registry_lock;
  h

let observe h v = if Control.on () then begin
    Mutex.lock h.h_lock;
    h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v > h.max_value then h.max_value <- v;
    Mutex.unlock h.h_lock
  end

let snapshot_of_buckets ~count ~sum ~max_value buckets_arr =
  let last_used = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then last_used := i) buckets_arr;
  let cum = ref 0 in
  let buckets = ref [] in
  for i = 0 to !last_used do
    cum := !cum + buckets_arr.(i);
    (* le bound of bucket i: largest value with bit length i. *)
    let le = if i = 0 then 0 else (1 lsl i) - 1 in
    buckets := (le, !cum) :: !buckets
  done;
  {
    count;
    sum;
    max_value = (if count = 0 then 0 else max_value);
    buckets = List.rev !buckets;
  }

let snapshot h =
  Mutex.lock h.h_lock;
  let s =
    snapshot_of_buckets ~count:h.count ~sum:h.sum ~max_value:h.max_value h.buckets
  in
  Mutex.unlock h.h_lock;
  s

(* Pure variant for consumers that already hold the values (the round
   summaries a health report replays, for instance) and want the same
   log2-bucket percentile estimates without touching the registry or
   the telemetry gate. *)
let snapshot_of_values vs =
  let buckets = Array.make 63 0 in
  let count = ref 0 and sum = ref 0 and max_value = ref min_int in
  List.iter
    (fun v ->
      let i = bucket_index v in
      buckets.(i) <- buckets.(i) + 1;
      incr count;
      sum := !sum + v;
      if v > !max_value then max_value := v)
    vs;
  snapshot_of_buckets ~count:!count ~sum:!sum ~max_value:!max_value buckets

(* Window delta between two cumulative snapshots of the same
   histogram: [sub_snapshot newer older]. Bucket [le] bounds come from
   one fixed grid (the bit length of the value), so the older list is
   always compatible with a prefix of the newer one; a bucket the older
   snapshot never reached subtracts zero. *)
let sub_snapshot (a : histogram_snapshot) (b : histogram_snapshot) =
  let cum_at le =
    (* b's cumulative count at bound [le]: the last entry <= le. *)
    let rec go best = function
      | [] -> best
      | (le', cum) :: rest -> if le' <= le then go cum rest else best
    in
    go 0 b.buckets
  in
  let count = max 0 (a.count - b.count) in
  {
    count;
    sum = max 0 (a.sum - b.sum);
    (* The true window maximum is unknowable from cumulative state;
       the lifetime maximum is a safe upper bound (and what percentile
       caps against). *)
    max_value = (if count = 0 then 0 else a.max_value);
    buckets =
      List.filter_map
        (fun (le, cum) ->
          let d = cum - cum_at le in
          if d < 0 then None else Some (le, min d count))
        a.buckets;
  }

let percentile (s : histogram_snapshot) q =
  if s.count = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int s.count))) in
    let rec find = function
      | [] -> s.max_value
      | (le, cum) :: rest -> if cum >= rank then le else find rest
    in
    (* A bucket's [le] is an upper bound; the true maximum is a
       tighter one for the top bucket. *)
    min (find s.buckets) s.max_value
  end

let sorted_by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let counters () =
  Mutex.lock registry_lock;
  let l = Hashtbl.fold (fun name c acc -> (name, c) :: acc) counters_tbl [] in
  Mutex.unlock registry_lock;
  sorted_by_name (List.map (fun (name, c) -> (name, value c)) l)

let histograms () =
  Mutex.lock registry_lock;
  let l = Hashtbl.fold (fun name h acc -> (name, h) :: acc) histograms_tbl [] in
  Mutex.unlock registry_lock;
  sorted_by_name (List.map (fun (name, h) -> (name, snapshot h)) l)

let reset_all () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ c ->
      Mutex.lock c.c_lock;
      List.iter (fun cell -> cell := 0) !(c.cells);
      Mutex.unlock c.c_lock)
    counters_tbl;
  Hashtbl.iter
    (fun _ h ->
      Mutex.lock h.h_lock;
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.count <- 0;
      h.sum <- 0;
      h.max_value <- min_int;
      Mutex.unlock h.h_lock)
    histograms_tbl;
  Mutex.unlock registry_lock
