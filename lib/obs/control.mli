(** The global telemetry switch.

    Lives below {!Metric} and {!Span} so instrumented modules (and the
    recorders themselves) can branch on it without a dependency cycle.
    When the switch is off every instrumentation site reduces to a
    branch on this flag: no allocation, no clock read, no locking —
    the differential tests in [test_obs.ml] rely on the disabled path
    being observationally inert. *)

val on : unit -> bool
(** True when telemetry is being recorded. Reads one [Atomic.t]; safe
    from any domain. *)

val set : bool -> unit
(** Flip the switch. Flipping mid-workload is allowed (spans opened
    while enabled still close; sites started while disabled stay
    silent) but metrics recorded across the flip are partial. *)
