(* Minimal embedded HTTP/1.0 server — just enough protocol for a
   Prometheus scrape or a curl: GET only, Connection: close, one
   handler thread per connection. No dependencies beyond unix +
   threads, by design: this runs inside the prover. *)

type response = { status : int; content_type : string; body : string }

type handler = string -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  accept_thread : Thread.t;
}

let reason_of = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let respond fd { status; content_type; body } =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status (reason_of status) content_type (String.length body) body)

let not_found path =
  {
    status = 404;
    content_type = "application/json";
    body = Printf.sprintf {|{"error":"not found","path":%s}|} (Zkflow_util.Jsonx.quote path);
  }

(* Read up to the end of the request headers (CRLFCRLF); we only need
   the request line, the rest is drained and ignored. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 16384 then None
    else
      let seen = Buffer.contents buf in
      let done_ =
        let rec find i =
          i + 3 < String.length seen
          && ((seen.[i] = '\r' && seen.[i + 1] = '\n' && seen.[i + 2] = '\r'
               && seen.[i + 3] = '\n')
             || find (i + 1))
        in
        find 0
        || (* tolerate bare-LF clients *)
        (let rec find2 i =
           i + 1 < String.length seen
           && ((seen.[i] = '\n' && seen.[i + 1] = '\n') || find2 (i + 1))
         in
         find2 0)
      in
      if done_ then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let handle_conn handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | None -> ()
      | Some req ->
        let line =
          match String.index_opt req '\n' with
          | Some i -> String.trim (String.sub req 0 i)
          | None -> String.trim req
        in
        let resp =
          match String.split_on_char ' ' line with
          | meth :: _ when meth <> "GET" ->
            {
              status = 405;
              content_type = "application/json";
              body = {|{"error":"method not allowed"}|};
            }
          | _ :: target :: _ ->
            (* Strip any query string: the endpoints take none. *)
            let path =
              match String.index_opt target '?' with
              | Some i -> String.sub target 0 i
              | None -> target
            in
            (try Option.value ~default:(not_found path) (handler path)
             with e ->
               {
                 status = 500;
                 content_type = "application/json";
                 body =
                   Printf.sprintf {|{"error":"handler raised","detail":%s}|}
                     (Zkflow_util.Jsonx.quote (Printexc.to_string e));
               })
          | _ -> not_found "/"
        in
        (try respond fd resp with Unix.Unix_error _ -> ()))

let start ?(host = "127.0.0.1") ~port handler =
  (* A peer closing mid-write must not kill the prover. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let addr = Unix.inet_addr_of_string host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    (try Unix.bind sock (Unix.ADDR_INET (addr, port))
     with e ->
       Unix.close sock;
       raise e);
    Unix.listen sock 16;
    let port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (sock, port)
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "listen %s:%d: %s" host port (Unix.error_message err))
  | exception Failure _ -> Error (Printf.sprintf "listen: bad host %S" host)
  | sock, port ->
    let stopping = Atomic.make false in
    let accept_thread =
      Thread.create
        (fun () ->
          let rec loop () =
            match Unix.accept sock with
            | fd, _ ->
              ignore (Thread.create (fun () -> handle_conn handler fd) ());
              loop ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            | exception Unix.Unix_error _ ->
              (* The listening socket was closed under us: shutdown. *)
              if not (Atomic.get stopping) then () else ()
          in
          loop ())
        ()
    in
    Ok { sock; port; stopping; accept_thread }

let port t = t.port

let stop t =
  Atomic.set t.stopping true;
  (* shutdown before close: a close alone does not wake a thread
     blocked in accept(2) on Linux, and the join would hang *)
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread
