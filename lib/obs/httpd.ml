(* Minimal embedded HTTP/1.0 server — just enough protocol for a
   Prometheus scrape or a curl: GET only, Connection: close, one
   handler thread per connection. No dependencies beyond unix +
   threads, by design: this runs inside the prover. Connections are
   capped (503 past the cap) and carry a read deadline (408 on a
   stalled client) so a scrape storm or a slowloris cannot pile up
   unbounded threads. *)

type response = { status : int; content_type : string; body : string }

type request = { path : string; params : (string * string) list }

type handler = request -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  conns : int Atomic.t;
  accept_thread : Thread.t;
}

let reason_of = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let percent_decode s =
  let n = String.length s in
  let hex = function
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> -1
  in
  let b = Buffer.create n in
  let rec go i =
    if i < n then (
      (match s.[i] with
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | '%' when i + 2 < n && hex s.[i + 1] >= 0 && hex s.[i + 2] >= 0 ->
        Buffer.add_char b (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
        go (i + 3)
      | c ->
        Buffer.add_char b c;
        go (i + 1)))
  in
  go 0;
  Buffer.contents b

let request_of_target target =
  match String.index_opt target '?' with
  | None -> { path = target; params = [] }
  | Some i ->
    let path = String.sub target 0 i in
    let qs = String.sub target (i + 1) (String.length target - i - 1) in
    let params =
      String.split_on_char '&' qs
      |> List.filter (fun kv -> kv <> "")
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | None -> (percent_decode kv, "")
             | Some j ->
               ( percent_decode (String.sub kv 0 j),
                 percent_decode
                   (String.sub kv (j + 1) (String.length kv - j - 1)) ))
    in
    { path; params }

let param req name = List.assoc_opt name req.params

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let respond fd { status; content_type; body } =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status (reason_of status) content_type (String.length body) body)

let not_found path =
  {
    status = 404;
    content_type = "application/json";
    body = Printf.sprintf {|{"error":"not found","path":%s}|} (Zkflow_util.Jsonx.quote path);
  }

let timeout_response =
  {
    status = 408;
    content_type = "application/json";
    body = {|{"error":"request timeout"}|};
  }

let saturated_response =
  {
    status = 503;
    content_type = "application/json";
    body = {|{"error":"server saturated"}|};
  }

exception Read_deadline

(* Read up to the end of the request headers (CRLFCRLF); we only need
   the request line, the rest is drained and ignored. Raises
   {!Read_deadline} if the socket's SO_RCVTIMEO expires mid-read. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 16384 then None
    else
      let seen = Buffer.contents buf in
      let done_ =
        let rec find i =
          i + 3 < String.length seen
          && ((seen.[i] = '\r' && seen.[i + 1] = '\n' && seen.[i + 2] = '\r'
               && seen.[i + 3] = '\n')
             || find (i + 1))
        in
        find 0
        || (* tolerate bare-LF clients *)
        (let rec find2 i =
           i + 1 < String.length seen
           && ((seen.[i] = '\n' && seen.[i + 1] = '\n') || find2 (i + 1))
         in
         find2 0)
      in
      if done_ then Some seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* SO_RCVTIMEO expired: the client stalled mid-request. *)
          raise Read_deadline
  in
  go ()

let handle_conn handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | exception Read_deadline ->
        (try respond fd timeout_response with Unix.Unix_error _ -> ())
      | None -> ()
      | Some req ->
        let line =
          match String.index_opt req '\n' with
          | Some i -> String.trim (String.sub req 0 i)
          | None -> String.trim req
        in
        let resp =
          match String.split_on_char ' ' line with
          | meth :: _ when meth <> "GET" ->
            {
              status = 405;
              content_type = "application/json";
              body = {|{"error":"method not allowed"}|};
            }
          | _ :: target :: _ ->
            let request = request_of_target target in
            (try Option.value ~default:(not_found request.path) (handler request)
             with e ->
               {
                 status = 500;
                 content_type = "application/json";
                 body =
                   Printf.sprintf {|{"error":"handler raised","detail":%s}|}
                     (Zkflow_util.Jsonx.quote (Printexc.to_string e));
               })
          | _ -> not_found "/"
        in
        (try respond fd resp with Unix.Unix_error _ -> ()))

let start ?(host = "127.0.0.1") ?(max_conns = 64) ?(read_timeout_s = 10.) ~port
    handler =
  (* A peer closing mid-write must not kill the prover. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let addr = Unix.inet_addr_of_string host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    (try Unix.bind sock (Unix.ADDR_INET (addr, port))
     with e ->
       Unix.close sock;
       raise e);
    Unix.listen sock 16;
    let port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (sock, port)
  with
  | exception Unix.Unix_error (err, _, _) ->
    Error
      (Printf.sprintf "listen %s:%d: %s" host port (Unix.error_message err))
  | exception Failure _ -> Error (Printf.sprintf "listen: bad host %S" host)
  | sock, port ->
    let stopping = Atomic.make false in
    let conns = Atomic.make 0 in
    let accept_thread =
      Thread.create
        (fun () ->
          let rec loop () =
            match Unix.accept sock with
            | fd, _ ->
              if Atomic.fetch_and_add conns 1 >= max_conns then (
                (* Past the cap: shed the connection right here in the
                   accept thread — never spawn an unbounded thread.
                   Lingering close: drain whatever request bytes are in
                   flight (briefly — 100 ms cap) before closing, else
                   the close turns into an RST and the client never
                   sees the 503. *)
                Atomic.decr conns;
                (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.1
                 with Unix.Unix_error _ -> ());
                (try respond fd saturated_response with Unix.Unix_error _ -> ());
                (try Unix.shutdown fd Unix.SHUTDOWN_SEND
                 with Unix.Unix_error _ -> ());
                (let b = Bytes.create 512 in
                 let rec drain () =
                   match Unix.read fd b 0 (Bytes.length b) with
                   | 0 -> ()
                   | _ -> drain ()
                   | exception Unix.Unix_error _ -> ()
                 in
                 drain ());
                (try Unix.close fd with Unix.Unix_error _ -> ()))
              else (
                if read_timeout_s > 0. then (
                  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout_s
                  with Unix.Unix_error _ -> ());
                ignore
                  (Thread.create
                     (fun () ->
                       Fun.protect
                         ~finally:(fun () -> Atomic.decr conns)
                         (fun () -> handle_conn handler fd))
                     ()));
              loop ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            | exception Unix.Unix_error _ ->
              (* The listening socket was closed under us: shutdown. *)
              if not (Atomic.get stopping) then () else ()
          in
          loop ())
        ()
    in
    Ok { sock; port; stopping; conns; accept_thread }

let port t = t.port

let stop t =
  Atomic.set t.stopping true;
  (* shutdown before close: a close alone does not wake a thread
     blocked in accept(2) on Linux, and the join would hang *)
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread
