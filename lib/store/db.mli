(** The shared telemetry store — the role PostgreSQL plays in the
    paper's testbed: every simulated router writes its records here,
    partitioned by (router, epoch) so the commitment and aggregation
    layers can fetch exactly one integrity window at a time.

    The store is honest-by-default but {i untrusted}: {!tamper} mutates
    history exactly like a malicious operator would, and nothing here
    prevents it — detection comes from the published commitments. *)

type t

val create : ?wal_path:string -> epoch:Epoch.policy -> unit -> t
(** In-memory store; with [wal_path], appends are also journaled and
    {!recover} can rebuild the store from disk. *)

val epoch_policy : t -> Epoch.policy

val insert : t -> Zkflow_netflow.Record.t -> unit
(** Files the record under its router id and the epoch of its
    [last_ts]. *)

val insert_batch : t -> Zkflow_netflow.Record.t list -> unit

val window : t -> router_id:int -> epoch:int -> Zkflow_netflow.Record.t array
(** All records of one router's integrity window, in insertion order
    ([||] when empty). *)

val routers : t -> int list
(** Router ids present, ascending. *)

val epochs : t -> int list
(** Epochs present (any router), ascending. *)

val routers_for : t -> epoch:int -> int list
(** Router ids with a window at [epoch], ascending — the set a
    degraded-mode aggregation round measures its coverage against. *)

val record_count : t -> int

val tamper :
  t -> router_id:int -> epoch:int -> pos:int ->
  (Zkflow_netflow.Record.t -> Zkflow_netflow.Record.t) ->
  (unit, string) result
(** Adversary hook: rewrites the [pos]-th record of a window in place
    (Figure 3's post-commitment modification). *)

val recover : wal_path:string -> epoch:Epoch.policy -> (t, string) result
(** Rebuilds a store from its WAL. *)

val sync : t -> unit
(** Flushes the WAL, if any. *)
