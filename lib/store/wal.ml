module Fault = Zkflow_fault.Fault

type t = { path : string; oc : out_channel }

let open_log path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { path; oc }

let append t row =
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length row));
  output_bytes t.oc header;
  output_bytes t.oc row

let sync t =
  flush t.oc;
  try Unix.fsync (Unix.descr_of_out_channel t.oc) with
  | Unix.Unix_error _ | Sys_error _ -> ()

let close t = close_out t.oc

(* Closing the raw descriptor under the channel discards its buffer:
   unsynced appends vanish, exactly like a crash. Later flush attempts
   on the dead channel (e.g. the stdlib's at-exit flush_all) fail
   silently. *)
let abandon t =
  try Unix.close (Unix.descr_of_out_channel t.oc) with
  | Unix.Unix_error _ | Sys_error _ -> ()

let replay path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let size = in_channel_length ic in
    let rec go acc pos =
      if pos + 4 > size then List.rev acc
      else begin
        let header = Bytes.create 4 in
        really_input ic header 0 4;
        let len = Int32.to_int (Bytes.get_int32_be header 0) in
        if len < 0 || pos + 4 + len > size then List.rev acc (* torn tail *)
        else begin
          let row = Bytes.create len in
          really_input ic row 0 len;
          go (row :: acc) (pos + 4 + len)
        end
      end
    in
    match go [] 0 with
    | rows ->
      close_in ic;
      Ok rows
    | exception e ->
      close_in_noerr ic;
      Error (Printexc.to_string e)
  end

let write_file_atomic ?(fsync = true) path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_bytes oc data;
  flush oc;
  if fsync then (
    try Unix.fsync (Unix.descr_of_out_channel oc) with
    | Unix.Unix_error _ | Sys_error _ -> ());
  close_out oc;
  Fault.crashpoint "atomic.pre_rename";
  Sys.rename tmp path

let rewrite path rows =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length row));
      Buffer.add_bytes buf header;
      Buffer.add_bytes buf row)
    rows;
  write_file_atomic path (Buffer.to_bytes buf)
