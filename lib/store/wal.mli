(** File-backed write-ahead log: length-prefixed rows, replayable at
    startup. Gives {!Db} optional durability, standing in for the
    paper's PostgreSQL persistence, and backs the prover's per-round
    checkpoint journal. *)

type t

val open_log : string -> t
(** Opens (creating if needed) for appending. *)

val append : t -> bytes -> unit
val sync : t -> unit
(** Flush buffered rows and [fsync] the descriptor (best-effort on
    filesystems without fsync). A row is durable only after [sync]. *)

val close : t -> unit

val abandon : t -> unit
(** Simulate a crash: close the file descriptor {e without} flushing,
    so rows appended since the last {!sync} are lost exactly as they
    would be when the process dies. Chaos/test support — a production
    shutdown wants {!close}. *)

val replay : string -> (bytes list, string) result
(** Reads every intact row; a torn tail (partial final row) is treated
    as a crash artifact and dropped, not an error. Missing file ⇒
    [Ok []]. *)

val rewrite : string -> bytes list -> unit
(** Atomically replace the log at [path] with exactly [rows]
    (write-temp-then-rename): recovery uses this to discard a corrupt
    suffix so later appends land after a clean prefix. *)

val write_file_atomic : ?fsync:bool -> string -> bytes -> unit
(** Crash-consistent whole-file write: write [path ^ ".tmp"], flush
    (+[fsync] unless disabled), then [Sys.rename] over [path] — a
    crash at any instant leaves either the old file or the new one,
    never a truncated hybrid. Passes the ["atomic.pre_rename"]
    crash site between the flush and the rename. *)
