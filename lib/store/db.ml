module Record = Zkflow_netflow.Record

type t = {
  epoch : Epoch.policy;
  windows : (int * int, Table.t) Hashtbl.t; (* (router, epoch) -> rows *)
  wal : Wal.t option;
}

let create ?wal_path ~epoch () =
  { epoch; windows = Hashtbl.create 64; wal = Option.map Wal.open_log wal_path }

let epoch_policy t = t.epoch

let table t ~router_id ~epoch =
  match Hashtbl.find_opt t.windows (router_id, epoch) with
  | Some tbl -> tbl
  | None ->
    let tbl = Table.create ~name:(Printf.sprintf "rlogs.r%d.e%d" router_id epoch) in
    Hashtbl.replace t.windows (router_id, epoch) tbl;
    tbl

let insert t record =
  Zkflow_fault.Fault.crashpoint "store.insert";
  let epoch = Epoch.of_ts t.epoch record.Record.last_ts in
  let row = Codec.record_to_row record in
  ignore (Table.append (table t ~router_id:record.Record.router_id ~epoch) row);
  Option.iter (fun w -> Wal.append w row) t.wal

let insert_batch t records = List.iter (insert t) records

let window t ~router_id ~epoch =
  let records =
    match Hashtbl.find_opt t.windows (router_id, epoch) with
    | None -> [||]
    | Some tbl ->
      Array.init (Table.length tbl) (fun i ->
          match Table.get tbl i with
          | Some row -> (
            match Codec.record_of_row row with
            | Ok r -> r
            | Error e -> failwith ("Db.window: corrupt row: " ^ e))
          | None -> assert false)
  in
  Zkflow_obs.Event.emit ~router:router_id ~epoch ~track:"store" "store.window"
    ~attrs:[ ("records", Zkflow_util.Jsonx.Num (float_of_int (Array.length records))) ];
  records

let routers t =
  Hashtbl.fold (fun (r, _) _ acc -> r :: acc) t.windows []
  |> List.sort_uniq Int.compare

let routers_for t ~epoch =
  Hashtbl.fold (fun (r, e) _ acc -> if e = epoch then r :: acc else acc) t.windows []
  |> List.sort_uniq Int.compare

let epochs t =
  Hashtbl.fold (fun (_, e) _ acc -> e :: acc) t.windows []
  |> List.sort_uniq Int.compare

let record_count t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.length tbl) t.windows 0

let tamper t ~router_id ~epoch ~pos f =
  match Hashtbl.find_opt t.windows (router_id, epoch) with
  | None -> Error "tamper: no such window"
  | Some tbl -> (
    match Table.get tbl pos with
    | None -> Error "tamper: position out of range"
    | Some row -> (
      match Codec.record_of_row row with
      | Error e -> Error e
      | Ok r ->
        Table.unsafe_overwrite tbl pos (Codec.record_to_row (f r));
        Ok ()))

let recover ~wal_path ~epoch =
  match Wal.replay wal_path with
  | Error e -> Error e
  | Ok rows ->
    let t = { epoch; windows = Hashtbl.create 64; wal = None } in
    let rec go = function
      | [] -> Ok t
      | row :: rest -> (
        match Codec.record_of_row row with
        | Error e -> Error ("recover: " ^ e)
        | Ok r ->
          let e = Epoch.of_ts t.epoch r.Record.last_ts in
          ignore (Table.append (table t ~router_id:r.Record.router_id ~epoch:e) row);
          go rest)
    in
    go rows

let sync t =
  Zkflow_fault.Fault.crashpoint "store.sync";
  Option.iter Wal.sync t.wal;
  if Zkflow_obs.Control.on () then
    Zkflow_obs.Event.emit ~track:"store" "store.sync"
      ~attrs:[ ("records", Zkflow_util.Jsonx.Num (float_of_int (record_count t))) ]
