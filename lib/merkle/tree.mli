(** Dense binary Merkle trees over 32-byte digests.

    The tree over [n] leaves is padded to the next power of two with a
    distinguished empty-leaf digest, so roots are well-defined for any
    [n ≥ 0]. Leaves are hashed with a leaf-domain tag before entering
    the tree, preventing leaf/node confusion attacks. This is the
    authenticated structure over CLog entries from Section 4.1 of the
    paper. *)

type t
(** An immutable Merkle tree retaining all levels (O(n) storage). *)

val next_pow2 : int -> int
(** Smallest power of two ≥ [max 1 n]. Raises [Invalid_argument] for
    [n > max_int / 2], where the doubling would overflow. *)

val leaf_hash : bytes -> Zkflow_hash.Digest32.t
(** [leaf_hash data] is SHA-256 of ["zkflow.lf.v1" ‖ data] (the 12-byte tag is word-aligned so zkVM guests can reproduce it). *)

val empty_leaf : Zkflow_hash.Digest32.t
(** The digest used for padding positions beyond the last real leaf. *)

val of_leaves : bytes array -> t
(** [of_leaves data] builds the tree over [Array.map leaf_hash data]. *)

val hash_leaves : bytes array -> Zkflow_hash.Digest32.t array
(** [hash_leaves data] is [Array.map leaf_hash data], hashed in
    parallel chunks — the leaf-hashing half of {!of_leaves}, exposed so
    callers that commit to a permutation of the same leaves can reuse
    the digests instead of re-hashing. *)

val of_leaf_hashes : Zkflow_hash.Digest32.t array -> t
(** Builds the tree over already-hashed leaves (e.g. recomputed inside
    the zkVM guest). *)

val root : t -> Zkflow_hash.Digest32.t
(** The Merkle root; the root of the empty tree is
    [Digest32.zero]-independent but fixed. *)

val size : t -> int
(** Number of real (unpadded) leaves. *)

val depth : t -> int
(** Height of the padded tree; 0 for trees of ≤ 1 leaf. *)

val leaf : t -> int -> Zkflow_hash.Digest32.t
(** [leaf t i] is the (hashed) leaf at index [i]. Raises
    [Invalid_argument] when out of range. *)

val prove : t -> int -> Proof.t
(** [prove t i] is the inclusion proof for leaf [i]. *)

val node : t -> level:int -> int -> Zkflow_hash.Digest32.t
(** [node t ~level i] is the digest at position [i] of the given level
    of the padded tree (level 0 = leaves, level [depth t] = root).
    Raises [Invalid_argument] when out of range. *)

val root_of_leaf_hashes : Zkflow_hash.Digest32.t array -> Zkflow_hash.Digest32.t
(** [root_of_leaf_hashes hs] computes only the root, without retaining
    the tree. Matches [root (of_leaf_hashes hs)]. *)

val to_snapshot : t -> bytes
(** Serialize every node of the tree (leaf count plus the flat level
    buffer) so a restore is a copy, not a rebuild. The format carries
    no integrity protection of its own — wrap it in a checksummed
    container (checkpoint rows do). *)

val of_snapshot : bytes -> (t, string) result
(** Rebuild a tree from {!to_snapshot} output. Fails on truncation or
    a buffer whose length does not match its declared leaf count. *)

(** {2 Unsafe buffer access}

    For {!Incremental}, which maintains the same flat-buffer layout in
    place. *)

val unsafe_buffer : t -> bytes
(** The underlying level buffer, without copying. Callers must never
    mutate it — trees are shared. *)

val unsafe_of_buffer : size:int -> bytes -> t
(** Adopt [buf] (no copy) as the level buffer of a tree over [size]
    leaves. The caller warrants the interior slots are coherent and
    relinquishes ownership — the buffer must not be mutated afterwards.
    Raises [Invalid_argument] when the length does not match [size]. *)
