module D = Zkflow_hash.Digest32
module Pool = Zkflow_parallel.Pool
module Obs = Zkflow_obs

(* Interior + leaf hashes; [sha256.compressions] counts blocks, this
   counts Merkle nodes, so the ratio exposes padding overhead. *)
let m_nodes = Obs.Metric.counter "merkle.nodes_hashed"

(* All levels live in one flat buffer of 32-byte slots: the padded leaf
   level first, then each parent level, ending with the root. For a
   padded size p that is 2p − 1 slots; keeping digests unboxed matters
   because the proof layer builds trees over millions of trace rows. *)
type t = {
  buf : Bytes.t;
  level_off : int array; (* slot offset of each level; length depth+1 *)
  size : int;            (* real (unpadded) leaf count *)
  depth : int;
}

let leaf_domain = Bytes.of_string "zkflow.lf.v1"

let leaf_hash data =
  D.of_bytes (Zkflow_hash.Sha256.digest_concat [ leaf_domain; data ])

let empty_leaf = D.hash_string "zkflow.empty-leaf"

let next_pow2 n =
  if n > max_int / 2 then
    (* doubling past max_int/2 wraps negative and loops forever *)
    invalid_arg "Tree.next_pow2: leaf count exceeds max_int / 2";
  let rec go k = if k >= n then k else go (k * 2) in
  if n <= 1 then 1 else go 1

let log2 p =
  let rec go k v = if v = 1 then k else go (k + 1) (v / 2) in
  go 0 p

let level_offsets padded depth =
  let level_off = Array.make (depth + 1) 0 in
  let off = ref 0 and width = ref padded in
  for level = 0 to depth do
    level_off.(level) <- !off;
    off := !off + !width;
    width := !width / 2
  done;
  level_off

(* Hash parent slots [lo, hi) of one level: read 64 child bytes at
   [src], write 32 parent bytes at [dst]. Each chunk owns a mutable
   SHA-256 ctx and reuses it across its hashes — contexts must never
   be shared between workers. *)
let hash_range buf ~src ~dst lo hi =
  let ctx = Zkflow_hash.Sha256.init () in
  for i = lo to hi - 1 do
    Zkflow_hash.Sha256.reset ctx;
    Zkflow_hash.Sha256.update_sub ctx buf ~pos:(32 * (src + (2 * i))) ~len:64;
    let h = Zkflow_hash.Sha256.finalize ctx in
    Bytes.blit h 0 buf (32 * (dst + i)) 32
  done;
  Obs.Metric.add m_nodes (hi - lo)

(* Workers write disjoint 32-byte parent slots, so a level can be
   hashed in parallel chunks. Small top levels fall under the chunk
   floor and run sequentially through the same code path. *)
let build_levels buf level_off depth =
  (* Parents hash the 64 contiguous bytes of their two children. *)
  for level = 0 to depth - 1 do
    let src = level_off.(level) and dst = level_off.(level + 1) in
    let width = level_off.(level + 1) - level_off.(level) in
    Pool.parallel_for ~min_chunk:1024 (width / 2) (hash_range buf ~src ~dst)
  done

let of_leaf_hashes hs =
  let t0 = Obs.Span.start () in
  let n = Array.length hs in
  let padded = next_pow2 n in
  let depth = log2 padded in
  let level_off = level_offsets padded depth in
  let buf = Bytes.create (32 * ((2 * padded) - 1)) in
  for i = 0 to padded - 1 do
    let d = if i < n then hs.(i) else empty_leaf in
    Bytes.blit (D.unsafe_to_bytes d) 0 buf (32 * i) 32
  done;
  build_levels buf level_off depth;
  if t0 <> 0 then Obs.Span.finish "merkle.build" ~args:[ ("leaves", n) ] t0;
  { buf; level_off; size = n; depth }

let hash_leaves data =
  let n = Array.length data in
  if n = 0 then [||]
  else begin
    let hs = Array.make n empty_leaf in
    (* Same bytes as [leaf_hash]: domain tag then payload, one reused
       ctx per chunk. *)
    Pool.parallel_for ~min_chunk:512 n (fun lo hi ->
        let ctx = Zkflow_hash.Sha256.init () in
        for i = lo to hi - 1 do
          Zkflow_hash.Sha256.reset ctx;
          Zkflow_hash.Sha256.update ctx leaf_domain;
          Zkflow_hash.Sha256.update ctx data.(i);
          hs.(i) <- D.of_bytes (Zkflow_hash.Sha256.finalize ctx)
        done;
        Obs.Metric.add m_nodes (hi - lo));
    hs
  end

let of_leaves data = of_leaf_hashes (hash_leaves data)

let read_slot t slot = D.of_bytes (Bytes.sub t.buf (32 * slot) 32)
let root t = read_slot t t.level_off.(t.depth)
let size t = t.size
let depth t = t.depth

let node t ~level i =
  if level < 0 || level > t.depth then invalid_arg "Tree.node: level out of range";
  let width = 1 lsl (t.depth - level) in
  if i < 0 || i >= width then invalid_arg "Tree.node: index out of range";
  read_slot t (t.level_off.(level) + i)

let leaf t i =
  if i < 0 || i >= t.size then invalid_arg "Tree.leaf: index out of range";
  read_slot t i

let prove t i =
  if i < 0 || i >= max 1 t.size then invalid_arg "Tree.prove: index out of range";
  let siblings = Array.make t.depth empty_leaf in
  let idx = ref i in
  for level = 0 to t.depth - 1 do
    siblings.(level) <- read_slot t (t.level_off.(level) + (!idx lxor 1));
    idx := !idx lsr 1
  done;
  { Proof.index = i; siblings }

(* ---- node snapshots ----

   The whole flat buffer, varint-size-prefixed. Interior hashes are
   persisted verbatim so a restore is a memcpy, not a rebuild; the
   consumer (checkpoint rows) already guards the bytes with a
   checksum, so the only validation needed here is structural. *)

let to_snapshot t =
  let buf = Buffer.create (Bytes.length t.buf + 8) in
  Zkflow_util.Varint.write buf t.size;
  Buffer.add_bytes buf t.buf;
  Buffer.to_bytes buf

let unsafe_buffer t = t.buf

let unsafe_of_buffer ~size buf =
  if size < 0 then invalid_arg "Tree.unsafe_of_buffer: negative size";
  let padded = next_pow2 size in
  let depth = log2 padded in
  if Bytes.length buf <> 32 * ((2 * padded) - 1) then
    invalid_arg "Tree.unsafe_of_buffer: buffer does not match size";
  { buf; level_off = level_offsets padded depth; size; depth }

let of_snapshot b =
  match Zkflow_util.Varint.read b 0 with
  | exception _ -> Error "tree snapshot: truncated size"
  | size, off ->
    if size < 0 || size > max_int / 2 then Error "tree snapshot: implausible size"
    else begin
      let padded = next_pow2 size in
      let expect = 32 * ((2 * padded) - 1) in
      if Bytes.length b - off <> expect then Error "tree snapshot: length mismatch"
      else Ok (unsafe_of_buffer ~size (Bytes.sub b off expect))
    end

let root_of_leaf_hashes hs =
  let t0 = Obs.Span.start () in
  let n = Array.length hs in
  let padded = next_pow2 n in
  let buf = Bytes.create (32 * padded) in
  for i = 0 to padded - 1 do
    let d = if i < n then hs.(i) else empty_leaf in
    Bytes.blit (D.unsafe_to_bytes d) 0 buf (32 * i) 32
  done;
  (* Ping-pong between two buffers: in-place halving would let one
     chunk overwrite parent slots another chunk still reads as
     children. The hash inputs are identical either way. *)
  let src = ref buf and dst = ref (Bytes.create (32 * (padded / 2))) in
  let width = ref padded in
  while !width > 1 do
    let s = !src and d = !dst in
    Pool.parallel_for ~min_chunk:1024 (!width / 2) (fun lo hi ->
        let ctx = Zkflow_hash.Sha256.init () in
        for i = lo to hi - 1 do
          Zkflow_hash.Sha256.reset ctx;
          Zkflow_hash.Sha256.update_sub ctx s ~pos:(64 * i) ~len:64;
          let h = Zkflow_hash.Sha256.finalize ctx in
          Bytes.blit h 0 d (32 * i) 32
        done;
        Obs.Metric.add m_nodes (hi - lo));
    src := d;
    dst := s;
    width := !width / 2
  done;
  if t0 <> 0 then Obs.Span.finish "merkle.root" ~args:[ ("leaves", n) ] t0;
  D.of_bytes (Bytes.sub !src 0 32)
