(** Incremental maintenance of a dense Merkle tree.

    A mutable node store over the same flat-buffer layout as {!Tree}:
    all interior hashes persist between batches, leaf updates and
    appends mark their positions dirty, and {!commit} re-hashes only
    the merged dirty root-paths — a batch of [k] updates over [n]
    leaves costs O(k·log n) hashes instead of the O(n) full rebuild.
    Sibling dirty paths merge: the frontier at each level is the
    deduplicated parent image of the level below, so shared ancestors
    are hashed once per batch.

    Buffers are shared with committed trees copy-on-write: {!of_tree}
    adopts a tree's buffer without copying, the first mutation copies,
    and {!commit} freezes the current buffer into an immutable
    {!Tree.t} (subsequent mutations copy again). Committed trees are
    therefore never mutated, and roots are bit-identical to a
    from-scratch {!Tree.of_leaf_hashes} build over the same leaves.

    Instrumented under [lib/obs]: each flush records a
    ["merkle.incr_update"] span and advances the
    ["merkle.nodes_rehashed"] / ["merkle.nodes_reused"] counters. *)

type t

val create : unit -> t
(** An empty store (size 0). *)

val of_tree : Tree.t -> t
(** Adopt an existing tree's nodes (no copy until the first
    mutation). *)

val size : t -> int
(** Current (unpadded) leaf count. *)

val set_leaf : t -> int -> Zkflow_hash.Digest32.t -> unit
(** [set_leaf t i d] replaces the leaf digest at [i] and marks its
    path dirty; writing the digest already present is a no-op. Raises
    [Invalid_argument] when [i] is out of range. *)

val append : t -> Zkflow_hash.Digest32.t -> unit
(** Append a leaf at index [size t], doubling the padded width when
    full (the old tree becomes the left subtree; the right half is
    filled with precomputed empty-subtree digests). *)

val commit : t -> Tree.t
(** Flush the dirty paths and freeze the store into an immutable tree
    sharing the buffer. The store remains usable; the next mutation
    copies. *)

val root : t -> Zkflow_hash.Digest32.t
(** Flush and return the current root without freezing a tree. *)

type stats = { rehashed : int; reused : int }

val last_stats : t -> stats
(** Node economics of the most recent flush: interior nodes re-hashed
    vs nodes (interior and leaves) carried over unchanged. *)
