module D = Zkflow_hash.Digest32
module Pool = Zkflow_parallel.Pool
module Obs = Zkflow_obs

(* Shares the global node count with Tree so the sha256.compressions /
   merkle.nodes_hashed ratio stays meaningful, and splits the
   incremental economics into its own pair: nodes actually re-hashed
   by a flush vs interior nodes and leaves carried over unchanged. *)
let m_nodes = Obs.Metric.counter "merkle.nodes_hashed"
let m_rehashed = Obs.Metric.counter "merkle.nodes_rehashed"
let m_reused = Obs.Metric.counter "merkle.nodes_reused"

type stats = { rehashed : int; reused : int }

(* Same flat layout as [Tree]: all levels in one buffer of 32-byte
   slots, leaf level first. The store mutates slots in place and keeps
   a dirty set of leaf indices; [commit] re-hashes only the merged
   root-paths of the dirty leaves, then hands the buffer to an
   immutable [Tree.t]. Buffers are shared copy-on-write: adopting a
   tree ([of_tree]) or committing one marks the buffer shared, and the
   next mutation copies — so committed trees are never mutated and an
   update-free round costs no copy at all. *)
type t = {
  mutable buf : Bytes.t;
  mutable level_off : int array;
  mutable padded : int;
  mutable depth : int;
  mutable size : int;
  mutable shared : bool;
  dirty : (int, unit) Hashtbl.t;
  mutable last : stats;
}

let log2 p =
  let rec go k v = if v = 1 then k else go (k + 1) (v / 2) in
  go 0 p

let level_offsets padded depth =
  let level_off = Array.make (depth + 1) 0 in
  let off = ref 0 and width = ref padded in
  for level = 0 to depth do
    level_off.(level) <- !off;
    off := !off + !width;
    width := !width / 2
  done;
  level_off

(* empty_sub.(l): root of a height-l subtree whose leaves are all the
   padding digest — what the right half of every level holds after a
   growth doubling. *)
let empty_sub =
  lazy
    (let a = Array.make 63 Tree.empty_leaf in
     for l = 1 to 62 do
       a.(l) <- D.combine a.(l - 1) a.(l - 1)
     done;
     a)

let of_tree tree =
  let size = Tree.size tree in
  let padded = Tree.next_pow2 size in
  let depth = log2 padded in
  {
    buf = Tree.unsafe_buffer tree;
    level_off = level_offsets padded depth;
    padded;
    depth;
    size;
    shared = true;
    dirty = Hashtbl.create 64;
    last = { rehashed = 0; reused = 0 };
  }

let create () = of_tree (Tree.of_leaf_hashes [||])
let size t = t.size
let last_stats t = t.last

let ensure_owned t =
  if t.shared then begin
    t.buf <- Bytes.copy t.buf;
    t.shared <- false
  end

let set_slot t slot d = Bytes.blit (D.unsafe_to_bytes d) 0 t.buf (32 * slot) 32
let read_slot t slot = D.of_bytes (Bytes.sub t.buf (32 * slot) 32)

let set_leaf t i d =
  if i < 0 || i >= t.size then invalid_arg "Incremental.set_leaf: index out of range";
  if not (D.equal (read_slot t i) d) then begin
    ensure_owned t;
    set_slot t i d;
    Hashtbl.replace t.dirty i ()
  end

(* Double the padded width: each old level becomes the left half of
   the corresponding new level, the right halves are the precomputed
   empty-subtree defaults, and the new root slot combines the two —
   every slot stays coherent even before the next flush. The append
   that triggered the growth lands in the right half, so its dirty
   path re-hashes the new top as a matter of course. *)
let grow t =
  let padded' = t.padded * 2 in
  let depth' = t.depth + 1 in
  let off' = level_offsets padded' depth' in
  let buf' = Bytes.create (32 * ((2 * padded') - 1)) in
  let defaults = Lazy.force empty_sub in
  for level = 0 to t.depth do
    let w = t.padded lsr level in
    Bytes.blit t.buf (32 * t.level_off.(level)) buf' (32 * off'.(level)) (32 * w);
    let d = D.unsafe_to_bytes defaults.(level) in
    for j = w to (2 * w) - 1 do
      Bytes.blit d 0 buf' (32 * (off'.(level) + j)) 32
    done
  done;
  let old_root = read_slot t t.level_off.(t.depth) in
  Bytes.blit
    (D.unsafe_to_bytes (D.combine old_root defaults.(t.depth)))
    0 buf'
    (32 * off'.(depth'))
    32;
  t.buf <- buf';
  t.level_off <- off';
  t.padded <- padded';
  t.depth <- depth';
  t.shared <- false

let append t d =
  if t.size = t.padded then grow t else ensure_owned t;
  set_slot t t.size d;
  Hashtbl.replace t.dirty t.size ();
  t.size <- t.size + 1

(* Re-hash the merged dirty root-paths, bottom-up: the frontier at
   level l+1 is the deduplicated [i lsr 1] image of the frontier at
   level l (sorted, so siblings are adjacent and collapse into one
   parent — the merge rule that makes a batch of k updates cost
   O(k·log n) instead of k separate log-n walks). Each level's parents
   occupy disjoint 32-byte slots, so the pool hashes them in chunks. *)
let flush t =
  if Hashtbl.length t.dirty > 0 then begin
    ensure_owned t;
    let t0 = Obs.Span.start () in
    let touched = Hashtbl.length t.dirty in
    let frontier = Array.make touched 0 in
    let k = ref 0 in
    Hashtbl.iter
      (fun i () ->
        frontier.(!k) <- i;
        incr k)
      t.dirty;
    Array.sort Int.compare frontier;
    let buf = t.buf in
    let rehashed = ref 0 in
    let cur = ref frontier in
    for level = 0 to t.depth - 1 do
      let prev = !cur in
      let m = Array.length prev in
      let parents = Array.make m 0 in
      let np = ref 0 in
      for j = 0 to m - 1 do
        let p = prev.(j) lsr 1 in
        if !np = 0 || parents.(!np - 1) <> p then begin
          parents.(!np) <- p;
          incr np
        end
      done;
      let parents = if !np = m then parents else Array.sub parents 0 !np in
      let src = t.level_off.(level) and dst = t.level_off.(level + 1) in
      Pool.parallel_for ~min_chunk:1024 !np (fun lo hi ->
          let ctx = Zkflow_hash.Sha256.init () in
          for j = lo to hi - 1 do
            let p = parents.(j) in
            Zkflow_hash.Sha256.reset ctx;
            Zkflow_hash.Sha256.update_sub ctx buf ~pos:(32 * (src + (2 * p))) ~len:64;
            Bytes.blit (Zkflow_hash.Sha256.finalize ctx) 0 buf (32 * (dst + p)) 32
          done;
          Obs.Metric.add m_nodes (hi - lo));
      rehashed := !rehashed + !np;
      cur := parents
    done;
    Hashtbl.reset t.dirty;
    let reused = max 0 (t.padded - 1 - !rehashed) + max 0 (t.size - touched) in
    t.last <- { rehashed = !rehashed; reused };
    Obs.Metric.add m_rehashed !rehashed;
    Obs.Metric.add m_reused reused;
    if t0 <> 0 then
      Obs.Span.finish "merkle.incr_update"
        ~args:[ ("leaves", t.size); ("dirty", touched); ("rehashed", !rehashed) ]
        t0
  end

let root t =
  flush t;
  read_slot t t.level_off.(t.depth)

let commit t =
  flush t;
  t.shared <- true;
  Tree.unsafe_of_buffer ~size:t.size t.buf
