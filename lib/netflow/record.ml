type metrics = { packets : int; bytes : int; hop_count : int; losses : int }

type t = {
  key : Flowkey.t;
  metrics : metrics;
  first_ts : int;
  last_ts : int;
  router_id : int;
}

let mask32 = 0xffffffff

let make ~key ?(first_ts = 0) ?(last_ts = 0) ?(router_id = 0) metrics =
  let check name v =
    if v < 0 || v > mask32 then
      invalid_arg (Printf.sprintf "Record.make: %s out of range" name)
  in
  check "packets" metrics.packets;
  check "bytes" metrics.bytes;
  check "hop_count" metrics.hop_count;
  check "losses" metrics.losses;
  { key; metrics; first_ts; last_ts; router_id }

let zero_metrics = { packets = 0; bytes = 0; hop_count = 0; losses = 0 }

let add_metrics a b =
  {
    packets = (a.packets + b.packets) land mask32;
    bytes = (a.bytes + b.bytes) land mask32;
    hop_count = (a.hop_count + b.hop_count) land mask32;
    losses = (a.losses + b.losses) land mask32;
  }

let word_size = 8

let to_words t =
  Array.append (Flowkey.to_words t.key)
    [| t.metrics.packets; t.metrics.bytes; t.metrics.hop_count; t.metrics.losses |]

let metrics_of_words w =
  if Array.length w <> 4 then Error "record: need 4 metric words"
  else if Array.exists (fun x -> x < 0 || x > mask32) w then
    Error "record: metric out of range"
  else Ok { packets = w.(0); bytes = w.(1); hop_count = w.(2); losses = w.(3) }

let of_words ?(router_id = 0) w =
  if Array.length w <> word_size then Error "record: need 8 words"
  else
    match Flowkey.of_words (Array.sub w 0 4) with
    | Error e -> Error e
    | Ok key -> (
      match metrics_of_words (Array.sub w 4 4) with
      | Error e -> Error e
      | Ok metrics -> Ok { key; metrics; first_ts = 0; last_ts = 0; router_id })

let to_bytes t =
  let ws = to_words t in
  let b = Bytes.create (4 * word_size) in
  Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) ws;
  b

let array_to_words records =
  let n = Array.length records in
  let out = Array.make (word_size * n) 0 in
  Array.iteri
    (fun i r -> Array.blit (to_words r) 0 out (word_size * i) word_size)
    records;
  out

let pp ppf t =
  Format.fprintf ppf "%a pkts=%d bytes=%d hops=%d loss=%d [r%d %d–%dms]"
    Flowkey.pp t.key t.metrics.packets t.metrics.bytes t.metrics.hop_count
    t.metrics.losses t.router_id t.first_ts t.last_ts
