module Rng = Zkflow_util.Rng

type profile = {
  flow_count : int;
  zipf_s : float;
  src_prefix : Ipaddr.t;
  src_bits : int;
  dst_prefix : Ipaddr.t;
  dst_bits : int;
  mean_packet_size : int;
}

let default_profile =
  {
    flow_count = 1000;
    zipf_s = 1.1;
    src_prefix = Ipaddr.of_octets 10 0 0 0;
    src_bits = 8;
    dst_prefix = Ipaddr.of_octets 203 0 113 0;
    dst_bits = 24;
    mean_packet_size = 800;
  }

let flows rng profile =
  let seen = Hashtbl.create profile.flow_count in
  let rec fresh () =
    let proto = if Rng.bool rng then 6 (* TCP *) else 17 (* UDP *) in
    let key =
      Flowkey.make
        ~src_ip:(Ipaddr.random_in_subnet rng ~prefix:profile.src_prefix ~bits:profile.src_bits)
        ~dst_ip:(Ipaddr.random_in_subnet rng ~prefix:profile.dst_prefix ~bits:profile.dst_bits)
        ~src_port:(1024 + Rng.int rng (65536 - 1024))
        ~dst_port:(if Rng.bool rng then 443 else 80)
        ~proto
    in
    if Hashtbl.mem seen key then fresh ()
    else begin
      Hashtbl.replace seen key ();
      key
    end
  in
  Array.init profile.flow_count (fun _ -> fresh ())

let packet_size rng profile =
  let m = profile.mean_packet_size in
  max 64 (m / 2 + Rng.int rng (max 1 m))

let packets rng profile ~flows:flow_arr ~rate_pps ~duration_ms =
  if Array.length flow_arr = 0 then invalid_arg "Gen.packets: no flows";
  if rate_pps <= 0.0 then invalid_arg "Gen.packets: rate must be positive";
  let rec go acc t_ms =
    if t_ms >= float_of_int duration_ms then List.rev acc
    else begin
      let key = flow_arr.(Rng.zipf rng ~n:(Array.length flow_arr) ~s:profile.zipf_s - 1) in
      let p = Packet.make ~key ~size:(packet_size rng profile) ~ts:(int_of_float t_ms) in
      let gap_s = Rng.exponential rng rate_pps in
      go (p :: acc) (t_ms +. (gap_s *. 1000.0))
    end
  in
  let out = go [] 0.0 in
  Zkflow_obs.Event.emit ~track:"gen" "gen.packets"
    ~attrs:
      [
        ("count", Zkflow_util.Jsonx.Num (float_of_int (List.length out)));
        ("flows", Zkflow_util.Jsonx.Num (float_of_int (Array.length flow_arr)));
        ("duration_ms", Zkflow_util.Jsonx.Num (float_of_int duration_ms));
      ];
  out

let records rng profile ~router_id ~count =
  let keys =
    flows rng { profile with flow_count = max count profile.flow_count }
  in
  Array.init count (fun i ->
      let packets = 1 + Rng.int rng 10_000 in
      let mean = profile.mean_packet_size in
      Record.make ~key:keys.(i) ~first_ts:0
        ~last_ts:(Rng.int rng 5_000)
        ~router_id
        {
          Record.packets;
          bytes = packets * (mean / 2 + Rng.int rng (max 1 mean)) land 0xffffffff;
          hop_count = packets;
          losses = Rng.int rng (1 + (packets / 100));
        })
