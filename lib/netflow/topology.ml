type t = { routers : Router.t array; route : Flowkey.t -> int list }

let routed configs ~route =
  if configs = [] then invalid_arg "Topology: no routers";
  { routers = Array.of_list (List.map Router.create configs); route }

let linear configs =
  let all = List.mapi (fun i _ -> i) configs in
  routed configs ~route:(fun _ -> all)

let router_count t = Array.length t.routers
let router_ids t = Array.map Router.id t.routers

let inject t ~rng ~loss_rate (p : Packet.t) =
  if Array.length loss_rate <> Array.length t.routers then
    invalid_arg "Topology.inject: loss_rate arity";
  let rec walk = function
    | [] -> ()
    | idx :: rest ->
      if idx < 0 || idx >= Array.length t.routers then
        invalid_arg "Topology.inject: route index out of range";
      let r = t.routers.(idx) in
      if Zkflow_util.Rng.float rng 1.0 < loss_rate.(idx) then Router.drop r p
      else begin
        Router.observe r p;
        walk rest
      end
  in
  walk (t.route p.Packet.key)

(* Every RLog export is a flight-recorder event on that router's
   track: the origin hop of the round a verifier later accepts. *)
let export_event kind (router_id, records) =
  Zkflow_obs.Event.emit ~router:router_id
    ~track:(Printf.sprintf "router.%d" router_id)
    kind
    ~attrs:[ ("records", Zkflow_util.Jsonx.Num (float_of_int (List.length records))) ];
  (router_id, records)

let expire t ~now =
  Array.to_list
    (Array.map
       (fun r -> export_event "router.expire" (Router.id r, Router.expire r ~now))
       t.routers)

let flush t ~now =
  Array.to_list
    (Array.map
       (fun r -> export_event "router.export" (Router.id r, Router.flush r ~now))
       t.routers)
