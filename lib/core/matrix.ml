module D = Zkflow_hash.Digest32
module Gen = Zkflow_netflow.Gen
module Export = Zkflow_netflow.Export
module Receipt = Zkflow_zkproof.Receipt
module Params = Zkflow_zkproof.Params
module Wrap = Zkflow_zkproof.Wrap
module Pool = Zkflow_parallel.Pool
module Obs = Zkflow_obs.Obs
module Jsonx = Zkflow_util.Jsonx

type backend = Receipt | Wrap

let backend_name = function Receipt -> "receipt" | Wrap -> "wrap"

type scale = { records : int; routers : int; jobs : int }

type grid = {
  backends : backend list;
  queries : int list;
  scales : scale list;
}

(* The CI grid (quick) keeps every cell under a couple of seconds of
   proving so the whole matrix fits in a smoke job; the full grid is
   the one EXPERIMENTS.md quotes. Both satisfy the report's coverage
   floor: 2 backends × >= 3 queries settings × >= 3 scales. *)
let default_grid ~quick =
  {
    backends = [ Receipt; Wrap ];
    queries = (if quick then [ 8; 16; 48 ] else [ 8; 16; 48; 96 ]);
    scales =
      (if quick then
         [
           { records = 24; routers = 2; jobs = 1 };
           { records = 48; routers = 2; jobs = 2 };
           { records = 96; routers = 4; jobs = 2 };
         ]
       else
         [
           { records = 100; routers = 2; jobs = 1 };
           { records = 200; routers = 4; jobs = 2 };
           { records = 400; routers = 4; jobs = 4 };
         ]);
  }

type cell = {
  backend : backend;
  queries : int;
  scale : scale;
  cycles : int;
  exec_s : float;
  prove_s : float;
  verify_s : float;
  proof_bytes : int;
  journal_bytes : int;
  receipt_bytes : int;
  soundness_bits : float;
  phases : (string * (int * float)) list;
  pool : Pool.stats;
}

exception Fail of string

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* One proving run per (queries, scale): the wrap backend is derived
   from the same inner receipt a deployment would wrap, paying its
   wrap cost (which re-verifies the receipt — the recursion-circuit
   analogue) on top of the shared proving time. *)
let run_pair ~agg_program ~vkey ~backends scale q =
  Pool.set_jobs scale.jobs;
  Gc.compact ();
  Zkflow_zkproof.Prove.clear_commit_cache ();
  (* The workload is a function of the scale alone — every queries
     setting at a given scale proves the identical records, so the
     sweep isolates the parameter, not the data. *)
  let rng =
    Zkflow_util.Rng.create
      (Int64.of_int (0x3a70 + (scale.records * 131) + (scale.routers * 7)))
  in
  let per_router = max 1 (scale.records / scale.routers) in
  let batches =
    List.init scale.routers (fun r ->
        let records =
          Gen.records rng Gen.default_profile ~router_id:r ~count:per_router
        in
        (Export.batch_hash records, records))
  in
  let params = Params.make ~queries:q in
  Obs.reset ();
  Obs.enable ();
  let finish () = Obs.disable () in
  match
    Fun.protect ~finally:finish (fun () ->
        let round =
          match Aggregate.prove_round ~params ~prev:Clog.empty batches with
          | Ok r -> r
          | Error e -> raise (Fail ("matrix: prove_round: " ^ e))
        in
        let (), verify_s =
          time (fun () ->
              match
                Zkflow_zkproof.Verify.verify ~program:agg_program
                  round.Aggregate.receipt
              with
              | Ok () -> ()
              | Error e -> raise (Fail ("matrix: verify: " ^ e)))
        in
        let wrapped, wrap_s =
          time (fun () ->
              match
                Wrap.wrap vkey ~program:agg_program round.Aggregate.receipt
              with
              | Ok w -> w
              | Error e -> raise (Fail ("matrix: wrap: " ^ e)))
        in
        let wrap_ok, wrap_verify_s = time (fun () -> Wrap.verify vkey wrapped) in
        if not wrap_ok then raise (Fail "matrix: wrap verification failed");
        (round, verify_s, wrapped, wrap_s, wrap_verify_s))
  with
  | round, verify_s, wrapped, wrap_s, wrap_verify_s ->
    let phases = Obs.span_totals_s () and pool = Pool.stats () in
    let receipt = round.Aggregate.receipt in
    (* The wrap cannot add soundness: it re-verifies the spot-check
       argument and then MACs the claim, so its assurance toward the
       designated verifier is the inner argument's bits (and it gives
       up public verifiability — recorded in the report notes). *)
    let bits = Params.soundness_bits params in
    let cell backend =
      match backend with
      | Receipt ->
        {
          backend;
          queries = q;
          scale;
          cycles = round.Aggregate.cycles;
          exec_s = round.Aggregate.execute_s;
          prove_s = round.Aggregate.prove_s;
          verify_s;
          proof_bytes = Receipt.seal_size receipt;
          journal_bytes = Receipt.journal_size receipt;
          receipt_bytes = Receipt.size receipt;
          soundness_bits = bits;
          phases;
          pool;
        }
      | Wrap ->
        {
          backend;
          queries = q;
          scale;
          cycles = round.Aggregate.cycles;
          exec_s = round.Aggregate.execute_s;
          prove_s = round.Aggregate.prove_s +. wrap_s;
          verify_s = wrap_verify_s;
          proof_bytes = Bytes.length wrapped.Wrap.seal256;
          journal_bytes = Receipt.journal_size receipt;
          receipt_bytes = Bytes.length (Wrap.encode wrapped);
          soundness_bits = bits;
          phases;
          pool;
        }
    in
    List.map cell backends

let run ?(log = fun (_ : string) -> ()) grid =
  let saved_jobs = Pool.jobs () in
  let agg_program = Lazy.force Guests.aggregation_program in
  let vkey = Wrap.setup ~seed:(Bytes.of_string "matrix-setup") in
  match
    Fun.protect
      ~finally:(fun () -> Pool.set_jobs saved_jobs)
      (fun () ->
        List.concat_map
          (fun scale ->
            List.concat_map
              (fun q ->
                let cells =
                  run_pair ~agg_program ~vkey ~backends:grid.backends scale q
                in
                List.iter
                  (fun c ->
                    log
                      (Printf.sprintf
                         "%-7s queries=%-3d records=%-4d routers=%d jobs=%d  \
                          prove %6.2fs  verify %7.2fms  proof %7dB  %5.2f bits"
                         (backend_name c.backend) c.queries c.scale.records
                         c.scale.routers c.scale.jobs c.prove_s
                         (1000. *. c.verify_s) c.proof_bytes c.soundness_bits))
                  cells;
                cells)
              grid.queries)
          grid.scales)
  with
  | cells -> Ok cells
  | exception Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Artifact serialization                                              *)
(* ------------------------------------------------------------------ *)

let phases_json phases =
  Jsonx.Obj
    (List.map
       (fun (name, (count, total_s)) ->
         ( name,
           Jsonx.Obj
             [
               ("count", Jsonx.Num (float_of_int count));
               ("total_s", Jsonx.Num total_s);
             ] ))
       phases)

let pool_json (s : Pool.stats) =
  let num v = Jsonx.Num (float_of_int v) in
  Jsonx.Obj
    [
      ("jobs", num s.Pool.jobs);
      ("regions", num s.Pool.regions);
      ("tasks", num s.Pool.tasks);
      ("busy_ns", num s.Pool.busy_ns);
      ("region_wall_ns", num s.Pool.region_wall_ns);
      ("submit_wait_ns", num s.Pool.submit_wait_ns);
      ("seq_regions", num s.Pool.seq_regions);
      ("nested_seq", num s.Pool.nested_seq);
      ("spawned_domains", num s.Pool.spawned_domains);
      ("utilization", Jsonx.Num (Pool.utilization s));
    ]

(* Where this artifact came from: cross-commit and cross-machine
   comparisons are legitimate but must be legible, so every artifact
   carries enough provenance for bench-diff (and a reader of the
   report header) to flag them. Failures degrade to "unknown" — a
   tarball export without .git still benches. *)
let env_provenance () =
  let read_cmd cmd =
    try
      let ic = Unix.open_process_in cmd in
      let line = try Some (input_line ic) with End_of_file -> None in
      let consume () = try while true do ignore (input_line ic) done with End_of_file -> () in
      consume ();
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some l -> Some (String.trim l)
      | _ -> None
    with _ -> None
  in
  let commit =
    Option.value ~default:"unknown"
      (read_cmd "git rev-parse --short HEAD 2>/dev/null")
  in
  let dirty =
    (* `git status --porcelain` prints nothing on a clean tree, so a
       first line means dirty; a failed git means unknown -> false. *)
    read_cmd "git status --porcelain 2>/dev/null" <> None
  in
  let hostname = try Unix.gethostname () with _ -> "unknown" in
  [
    ("git_commit", Jsonx.Str commit);
    ("git_dirty", Jsonx.Bool dirty);
    ("hostname", Jsonx.Str hostname);
  ]

let schema = "zkflow-bench-matrix/v1"

let cell_json c =
  Jsonx.Obj
    [
      ("backend", Jsonx.Str (backend_name c.backend));
      ("queries", Jsonx.Num (float_of_int c.queries));
      ("records", Jsonx.Num (float_of_int c.scale.records));
      ("routers", Jsonx.Num (float_of_int c.scale.routers));
      ("jobs", Jsonx.Num (float_of_int c.scale.jobs));
      ("agg_cycles", Jsonx.Num (float_of_int c.cycles));
      ("exec_s", Jsonx.Num c.exec_s);
      ("prove_s", Jsonx.Num c.prove_s);
      ("verify_s", Jsonx.Num c.verify_s);
      ("proof_bytes", Jsonx.Num (float_of_int c.proof_bytes));
      ("journal_bytes", Jsonx.Num (float_of_int c.journal_bytes));
      ("receipt_bytes", Jsonx.Num (float_of_int c.receipt_bytes));
      ("soundness_bits", Jsonx.Num c.soundness_bits);
      ("phases", phases_json c.phases);
      ("pool", pool_json c.pool);
    ]

let to_json ~env cells =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str schema);
      ("env", env);
      ("rows", Jsonx.Arr (List.map cell_json cells));
    ]

(* ------------------------------------------------------------------ *)
(* Report: parse an artifact back                                      *)
(* ------------------------------------------------------------------ *)

type row = {
  key : string;
  r_backend : string;
  r_queries : int;
  r_records : int;
  r_routers : int;
  r_jobs : int;
  r_cycles : float;
  r_exec_s : float;
  r_prove_s : float;
  r_verify_s : float;
  r_proof_bytes : float;
  r_journal_bytes : float;
  r_receipt_bytes : float;
  r_soundness_bits : float;
  r_phases : (string * float) list;
}

let ( let* ) = Result.bind

let parse_row i row =
  let num name =
    match Jsonx.member name row with
    | Some (Jsonx.Num f) -> Ok f
    | _ -> Error (Printf.sprintf "row %d: missing numeric field %S" i name)
  in
  let str name =
    match Jsonx.member name row with
    | Some (Jsonx.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "row %d: missing string field %S" i name)
  in
  let* r_backend = str "backend" in
  let* queries = num "queries" in
  let* records = num "records" in
  let* routers = num "routers" in
  let* jobs = num "jobs" in
  let* r_cycles = num "agg_cycles" in
  let* r_exec_s = num "exec_s" in
  let* r_prove_s = num "prove_s" in
  let* r_verify_s = num "verify_s" in
  let* r_proof_bytes = num "proof_bytes" in
  let* r_journal_bytes = num "journal_bytes" in
  let* r_receipt_bytes = num "receipt_bytes" in
  let* r_soundness_bits = num "soundness_bits" in
  let r_phases =
    match Jsonx.member "phases" row with
    | Some (Jsonx.Obj members) ->
      List.filter_map
        (fun (name, v) ->
          match Jsonx.member "total_s" v with
          | Some (Jsonx.Num s) -> Some (name, s)
          | _ -> None)
        members
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    | _ -> []
  in
  let key = Option.value ~default:(Printf.sprintf "row %d" i) (Bench_diff.row_key row) in
  Ok
    {
      key;
      r_backend;
      r_queries = int_of_float queries;
      r_records = int_of_float records;
      r_routers = int_of_float routers;
      r_jobs = int_of_float jobs;
      r_cycles;
      r_exec_s;
      r_prove_s;
      r_verify_s;
      r_proof_bytes;
      r_journal_bytes;
      r_receipt_bytes;
      r_soundness_bits;
      r_phases;
    }

let rows_of_artifact doc =
  match Jsonx.member "rows" doc with
  | Some (Jsonx.Arr rows) ->
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | r :: rest ->
        let* row = parse_row i r in
        go (i + 1) (row :: acc) rest
    in
    let* parsed = go 0 [] rows in
    if parsed = [] then Error "artifact has an empty \"rows\" array"
    else Ok parsed
  | _ -> Error "no \"rows\" array — not a BENCH_matrix.json artifact"

(* ------------------------------------------------------------------ *)
(* Pareto frontier                                                     *)
(* ------------------------------------------------------------------ *)

let dominates a b =
  a.r_prove_s <= b.r_prove_s
  && a.r_proof_bytes <= b.r_proof_bytes
  && a.r_soundness_bits >= b.r_soundness_bits
  && (a.r_prove_s < b.r_prove_s
      || a.r_proof_bytes < b.r_proof_bytes
      || a.r_soundness_bits > b.r_soundness_bits)

let frontier rows =
  List.map
    (fun r -> (r, not (List.exists (fun r' -> dominates r' r) rows)))
    rows

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let env_summary doc =
  match Jsonx.member "env" doc with
  | Some env ->
    let field name =
      match Jsonx.member name env with
      | Some (Jsonx.Str s) -> Some (Printf.sprintf "%s=%s" name s)
      | Some (Jsonx.Bool b) -> Some (Printf.sprintf "%s=%b" name b)
      | Some (Jsonx.Num f) -> Some (Printf.sprintf "%s=%g" name f)
      | _ -> None
    in
    List.filter_map field
      [ "git_commit"; "git_dirty"; "hostname"; "zkflow_jobs"; "ncores"; "quick" ]
    |> String.concat " "
  | None -> "(no env block)"

let uniq l = List.sort_uniq compare l

let axis_counts rows =
  ( List.length (uniq (List.map (fun r -> r.r_backend) rows)),
    List.length (uniq (List.map (fun r -> r.r_queries) rows)),
    List.length
      (uniq (List.map (fun r -> (r.r_records, r.r_routers, r.r_jobs)) rows)) )

let report_markdown doc =
  let* rows = rows_of_artifact doc in
  let marked = frontier rows in
  let n_backends, n_queries, n_scales = axis_counts rows in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# zkflow proof-backend benchmark matrix";
  line "";
  line "One aggregation round per cell across %d backend(s) × %d queries \
        setting(s) × %d scale(s) — %d cells. Generated by `zkflow report` \
        from `BENCH_matrix.json` (`dune exec bench/main.exe -- matrix`)."
    n_backends n_queries n_scales (List.length rows);
  line "";
  line "- environment: `%s`" (env_summary doc);
  line "- soundness bits use the 5%%-corruption convention of DESIGN.md §5 \
        (`Params.soundness_bits`); the `wrap` backend re-verifies the inner \
        receipt, so it inherits the inner argument's bits and trades public \
        verifiability for its constant 256-byte seal.";
  line "";
  line "## Matrix";
  line "";
  line "| backend | queries | records | routers | jobs | cycles | prove (s) \
        | verify (ms) | proof (B) | journal (B) | receipt (B) | soundness \
        (bits) | frontier |";
  line "|---|---|---|---|---|---|---|---|---|---|---|---|---|";
  List.iter
    (fun (r, on) ->
      line "| %s | %d | %d | %d | %d | %.0f | %.3f | %.3f | %.0f | %.0f | %.0f | %.2f | %s |"
        r.r_backend r.r_queries r.r_records r.r_routers r.r_jobs r.r_cycles
        r.r_prove_s (1000. *. r.r_verify_s) r.r_proof_bytes r.r_journal_bytes
        r.r_receipt_bytes r.r_soundness_bits
        (if on then "✓" else ""))
    marked;
  line "";
  line "## Pareto frontier (prove time × proof bytes × soundness bits)";
  line "";
  let front = List.filter_map (fun (r, on) -> if on then Some r else None) marked in
  let dominated = List.length rows - List.length front in
  line "A cell is on the frontier when no other cell proves at least as \
        fast, with at-most-as-many proof bytes, at at-least-as-many \
        soundness bits — and strictly better on one axis. %d of %d cells \
        are dominated."
    dominated (List.length rows);
  line "";
  line "| backend | queries | records | routers | jobs | prove (s) | proof (B) | soundness (bits) |";
  line "|---|---|---|---|---|---|---|---|";
  List.iter
    (fun r ->
      line "| %s | %d | %d | %d | %d | %.3f | %.0f | %.2f |" r.r_backend
        r.r_queries r.r_records r.r_routers r.r_jobs r.r_prove_s
        r.r_proof_bytes r.r_soundness_bits)
    (List.sort (fun a b -> Float.compare a.r_prove_s b.r_prove_s) front);
  line "";
  line "## Where the proving seconds go";
  line "";
  line "Top spans per cell (`Zkflow_obs` snapshot embedded in the artifact):";
  line "";
  List.iter
    (fun r ->
      let top =
        List.filteri (fun i _ -> i < 4) r.r_phases
        |> List.map (fun (name, s) -> Printf.sprintf "%s %.3fs" name s)
      in
      if top <> [] then line "- `%s`: %s" r.key (String.concat ", " top))
    rows;
  line "";
  line "## Reading the frontier";
  line "";
  line "- More `queries` buys soundness bits linearly in seal bytes and \
        verify time — the spot-check cost axis.";
  line "- `wrap` pays the inner proving cost plus a re-verify, then ships \
        256 bytes: it dominates on proof size, never on prove time.";
  line "- Scales grow prove time with records; verification must stay \
        flat. A future perf PR moves cells left (faster) without dropping \
        bits — `zkflow bench-diff` gates every cell by its full \
        configuration key.";
  Ok (Buffer.contents buf)

let report_json doc =
  let* rows = rows_of_artifact doc in
  let marked = frontier rows in
  let n_backends, n_queries, n_scales = axis_counts rows in
  let row_json (r, on) =
    Jsonx.Obj
      [
        ("key", Jsonx.Str r.key);
        ("backend", Jsonx.Str r.r_backend);
        ("queries", Jsonx.Num (float_of_int r.r_queries));
        ("records", Jsonx.Num (float_of_int r.r_records));
        ("routers", Jsonx.Num (float_of_int r.r_routers));
        ("jobs", Jsonx.Num (float_of_int r.r_jobs));
        ("prove_s", Jsonx.Num r.r_prove_s);
        ("verify_s", Jsonx.Num r.r_verify_s);
        ("proof_bytes", Jsonx.Num r.r_proof_bytes);
        ("journal_bytes", Jsonx.Num r.r_journal_bytes);
        ("receipt_bytes", Jsonx.Num r.r_receipt_bytes);
        ("soundness_bits", Jsonx.Num r.r_soundness_bits);
        ("frontier", Jsonx.Bool on);
      ]
  in
  let front =
    List.filter_map (fun (r, on) -> if on then Some r else None) marked
    |> List.sort (fun a b -> Float.compare a.r_prove_s b.r_prove_s)
  in
  Ok
    (Jsonx.Obj
       [
         ("schema", Jsonx.Str "zkflow-matrix-report/v1");
         ( "env",
           match Jsonx.member "env" doc with Some e -> e | None -> Jsonx.Null );
         ("backends", Jsonx.Num (float_of_int n_backends));
         ("queries_settings", Jsonx.Num (float_of_int n_queries));
         ("scales", Jsonx.Num (float_of_int n_scales));
         ("cells", Jsonx.Num (float_of_int (List.length rows)));
         ("rows", Jsonx.Arr (List.map row_json marked));
         ( "frontier",
           Jsonx.Arr (List.map (fun r -> Jsonx.Str r.key) front) );
       ])
