(** The service provider's prover (Figure 1, left half).

    Owns the operator-side state: reads integrity windows from the
    shared {!Zkflow_store.Db}, checks them against the public
    {!Zkflow_commitlog.Board}, runs aggregation rounds (off-path — this
    is a plain value the operator can host anywhere), and answers
    queries against the latest committed CLog.

    The prover is {e crash-consistent}: with {!with_checkpoints}
    enabled, every completed round is journaled to a checksummed
    {!Zkflow_store.Wal} row before it is visible in memory, and
    {!resume} rebuilds the service from that journal after a crash —
    replaying intact rounds and re-proving (deterministically,
    bit-identically) whatever the crash destroyed. It is also
    {e degraded-mode capable}: {!aggregate_available} rounds proceed
    over the routers whose commitments are actually on the board,
    recording every absentee in the gap journal, and {!heal} folds
    late arrivals in afterwards. *)

type t

val create :
  ?proof_params:Zkflow_zkproof.Params.t ->
  db:Zkflow_store.Db.t ->
  board:Zkflow_commitlog.Board.t ->
  unit ->
  t

val clog : t -> Clog.t
(** Current aggregated state (starts empty). *)

val proof_params : t -> Zkflow_zkproof.Params.t
(** The spot-check parameters every round of this service proves
    under — [zkflow stats] derives its soundness-bits line from
    this. *)

val rounds : t -> Aggregate.round list
(** Completed rounds, oldest first. *)

val latest_root : t -> Zkflow_hash.Digest32.t

(* ---- publication ---- *)

type publish_report = {
  published : Zkflow_commitlog.Commitment.t list;
      (** fresh publications, router order *)
  skipped : int list;
      (** routers whose [(router, epoch)] pair was already on the
          board — re-running after a mid-epoch crash is a no-op for
          them, not a board rejection *)
}

val publish_epoch : t -> epoch:int -> (publish_report, string) result
(** The router-side duty, modelled here for convenience: publish every
    router's window-[epoch] commitment to the board. Idempotent —
    pairs already published are skipped and reported, so a publisher
    that crashed halfway through an epoch can simply run again. *)

(* ---- aggregation ---- *)

val aggregate_epoch : t -> epoch:int -> (Aggregate.round, string) result
(** One Algorithm 1 round over epoch [epoch], strict mode: windows are
    read from the store, their {e published} commitments from the
    board, and it is an error if any router in the store never
    published. On success the service state advances (and, with
    checkpointing on, the round is journaled first). *)

type gap = {
  router_id : int;
  epoch : int;
  detected_round : int;         (** round index that first noticed it *)
  healed_round : int option;    (** heal round that folded it in, if any *)
}
(** One missing [(router, epoch)] publication, named in the journal the
    moment a degraded round proceeds without it. An open gap ([None])
    is an explicit, monitorable statement of what the aggregate does
    {e not} cover — never silent loss. *)

type coverage = {
  epoch : int;
  routers : int list;  (** routers actually aggregated, ascending *)
  degraded : bool;     (** some expected router was absent *)
  heal : bool;         (** catch-up round folding in late arrivals *)
}
(** What one round covered — parallel to {!rounds}, oldest first. *)

type outcome =
  | Complete of Aggregate.round   (** every expected router covered *)
  | Degraded of Aggregate.round * gap list
      (** round proceeded over a subset; the new gaps are named *)
  | Skipped of gap list
      (** no router had published at all — no round, gaps recorded *)

val aggregate_available : t -> epoch:int -> (outcome, string) result
(** Degraded-mode round: aggregate whichever of the epoch's routers
    (per {!Zkflow_store.Db.routers_for}) have a commitment on the
    board, and journal a {!gap} for each that does not. Late routers
    therefore stall {e nothing} — their records are folded in by
    {!heal} once they finally publish. *)

val heal : t -> (Aggregate.round list, string) result
(** One catch-up round per epoch (ascending) for every open gap whose
    commitment has since appeared on the board; each folded-in gap is
    marked with its heal round. Gaps still missing stay open. *)

val heal_pending : t -> bool
(** Some open gap is healable right now. *)

val note_gap : t -> router_id:int -> epoch:int -> bool
(** Journal an open gap for a late-arriving export: the round for
    [epoch] already ran without [router_id] (so no gap was recorded at
    round time) and its records only reached the store afterwards.
    Emits [prover.gap.open]; {!heal} folds the pair in once its
    commitment is on the board. Returns [false] (and does nothing) if
    the pair is already in the journal. The entry becomes durable with
    the next checkpoint row; detection is idempotent across a crash. *)

val gaps : t -> gap list
(** The full gap journal, oldest first (healed entries included). *)

val open_gaps : t -> (int * int) list
(** Unhealed [(router, epoch)] pairs, oldest first. *)

val coverage : t -> coverage list
(** Per-round coverage, oldest first, aligned with {!rounds}. *)

val covered_epochs : t -> int list
(** Epochs with a non-heal round, ascending. *)

val queue_depth : t -> int
(** Store epochs not yet covered by a round — the service's backlog. *)

(* ---- crash consistency ---- *)

val with_checkpoints : t -> path:string -> unit
(** Journal every completed round to a checksummed WAL row at [path]
    (before the round becomes visible in memory). *)

val checkpoint_path : t -> string option

val abandon : t -> unit
(** Drop the checkpoint WAL's buffered, unsynced writes on the floor —
    exactly what a crash does. Test/chaos harness hook. *)

val resume :
  ?proof_params:Zkflow_zkproof.Params.t ->
  db:Zkflow_store.Db.t ->
  board:Zkflow_commitlog.Board.t ->
  path:string ->
  unit ->
  (t * int, string) result
(** Rebuild a service from its checkpoint journal: replay the WAL
    (torn tails already dropped by {!Zkflow_store.Wal.replay}), keep
    the longest prefix of rows whose checksum and decode pass, compact
    the file to that prefix when anything was dropped, and reopen for
    appending. Returns the service and the number of restored rounds
    (0 for a missing file — a fresh, checkpointing service). The
    dropped suffix is simply re-proved: aggregation is deterministic,
    so the re-proved rounds are bit-identical to the lost ones. *)

(* ---- summaries ---- *)

type round_summary = {
  index : int;       (** 0-based round number *)
  entries : int;     (** CLog length after the round *)
  root : string;     (** post-round CLog root, hex *)
  cycles : int;      (** guest cycles *)
  execute_s : float; (** guest execution wall time (0 when restored) *)
  prove_s : float;   (** proving wall time (0 when restored) *)
  restored : bool;   (** round came from {!load}/{!resume}, not proved here *)
}

val summaries : t -> round_summary list
(** Per-round digest of the service history, oldest first — the
    backing data of [zkflow stats]. *)

val summary_json : t -> string
(** {!summaries} plus the current root/length, per-round coverage, and
    the gap journal as one JSON object (keys [entries], [root],
    [rounds], [gaps], [open_gaps]). *)

val query : t -> Guests.query_params -> (Query.result_row, string) result
(** Prove a query against the latest CLog. *)

val prove_custom :
  ?proof_params:Zkflow_zkproof.Params.t ->
  ?subject:string ->
  Zkflow_zkvm.Program.t ->
  input:int array ->
  (Zkflow_zkproof.Receipt.t * Zkflow_zkvm.Machine.result, string) result
(** Prove an arbitrary guest (e.g. a compiled Zirc query) behind the
    same static-analysis gate as the built-in guests: a program with
    [Error]-severity findings (see {!Zkflow_analysis.check}) is
    refused before any proving work, unless [ZKFLOW_NO_ANALYZE=1] is
    set in the environment. Every proving entry point of this module
    ({!aggregate_epoch}, {!query}, {!query_at}) runs the same gate. *)

val save : t -> bytes
(** Serialize the service state (CLog entries plus every round's
    receipt, post-round entries and coverage, plus the gap journal) so
    an operator can stop and resume across process restarts without
    re-proving history. *)

val load :
  ?proof_params:Zkflow_zkproof.Params.t ->
  db:Zkflow_store.Db.t ->
  board:Zkflow_commitlog.Board.t ->
  bytes ->
  (t, string) result
(** Inverse of {!save}; restored rounds carry
    [Aggregate.restored = true] and their wall-clock timings read 0,
    so reporting never mistakes a deserialized round for one proved in
    this process. Still reads the pre-gap v1 format (empty coverage
    and gap journal). Fails on malformed bytes or receipts. *)

type disclosure = {
  indices : int list;                 (** CLog positions, ascending *)
  entries : Clog.entry list;          (** the disclosed entries, aligned *)
  proof : Zkflow_merkle.Multiproof.t; (** batched inclusion proof *)
}
(** Selective disclosure: with the client's consent (e.g. a legal
    order covering specific flows), the operator reveals exactly those
    CLog entries, authenticated against the already-verified root —
    and provably nothing else is needed to check them. *)

val disclose :
  t -> keys:Zkflow_netflow.Flowkey.t list -> (disclosure, string) result
(** Build a disclosure for the given flows against the latest CLog.
    Fails if any key is absent (use a query with an exact-match
    predicate to prove absence-of-traffic instead). *)

val query_flows :
  t ->
  metric:Guests.metric ->
  Zkflow_netflow.Flowkey.t list ->
  (Query.flows_result, string) result
(** Answer a multi-flow metric readout against the latest CLog with one
    batched Merkle multiproof (see {!Query.prove_flows}) — the batched
    replacement for issuing one inclusion proof per flow. *)

val query_at : t -> round:int -> Guests.query_params -> (Query.result_row, string) result
(** Prove a query against the historical CLog state after round
    [round] (0-based). Every past root stays pinned by its aggregation
    receipt, so clients can audit any earlier integrity window — the
    retrospective/interval-query use the paper's related work
    motivates. *)
