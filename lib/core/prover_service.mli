(** The service provider's prover (Figure 1, left half).

    Owns the operator-side state: reads integrity windows from the
    shared {!Zkflow_store.Db}, checks them against the public
    {!Zkflow_commitlog.Board}, runs aggregation rounds (off-path — this
    is a plain value the operator can host anywhere), and answers
    queries against the latest committed CLog. *)

type t

val create :
  ?proof_params:Zkflow_zkproof.Params.t ->
  db:Zkflow_store.Db.t ->
  board:Zkflow_commitlog.Board.t ->
  unit ->
  t

val clog : t -> Clog.t
(** Current aggregated state (starts empty). *)

val rounds : t -> Aggregate.round list
(** Completed rounds, oldest first. *)

val latest_root : t -> Zkflow_hash.Digest32.t

val publish_epoch : t -> epoch:int -> (Zkflow_commitlog.Commitment.t list, string) result
(** The router-side duty, modelled here for convenience: publish every
    router's window-[epoch] commitment to the board. Fails if any
    router already published that epoch. *)

val aggregate_epoch : t -> epoch:int -> (Aggregate.round, string) result
(** One Algorithm 1 round over epoch [epoch]: windows are read from the
    store, their {e published} commitments from the board (it is an
    error if a window was never published), and the guest re-derives
    and checks everything. On success the service state advances. *)

type round_summary = {
  index : int;       (** 0-based round number *)
  entries : int;     (** CLog length after the round *)
  root : string;     (** post-round CLog root, hex *)
  cycles : int;      (** guest cycles *)
  execute_s : float; (** guest execution wall time (0 when restored) *)
  prove_s : float;   (** proving wall time (0 when restored) *)
  restored : bool;   (** round came from {!load}, not proved here *)
}

val summaries : t -> round_summary list
(** Per-round digest of the service history, oldest first — the
    backing data of [zkflow stats]. *)

val summary_json : t -> string
(** {!summaries} plus the current root/length as one JSON object
    (keys [entries], [root], [rounds]). *)

val query : t -> Guests.query_params -> (Query.result_row, string) result
(** Prove a query against the latest CLog. *)

val prove_custom :
  ?proof_params:Zkflow_zkproof.Params.t ->
  ?subject:string ->
  Zkflow_zkvm.Program.t ->
  input:int array ->
  (Zkflow_zkproof.Receipt.t * Zkflow_zkvm.Machine.result, string) result
(** Prove an arbitrary guest (e.g. a compiled Zirc query) behind the
    same static-analysis gate as the built-in guests: a program with
    [Error]-severity findings (see {!Zkflow_analysis.check}) is
    refused before any proving work, unless [ZKFLOW_NO_ANALYZE=1] is
    set in the environment. Every proving entry point of this module
    ({!aggregate_epoch}, {!query}, {!query_at}) runs the same gate. *)

val save : t -> bytes
(** Serialize the service state (CLog entries plus every round's
    receipt and post-round entries) so an operator can stop and resume
    across process restarts without re-proving history. *)

val load :
  ?proof_params:Zkflow_zkproof.Params.t ->
  db:Zkflow_store.Db.t ->
  board:Zkflow_commitlog.Board.t ->
  bytes ->
  (t, string) result
(** Inverse of {!save}; restored rounds carry
    [Aggregate.restored = true] and their wall-clock timings read 0,
    so reporting never mistakes a deserialized round for one proved in
    this process. Fails on malformed bytes or receipts. *)

type disclosure = {
  indices : int list;                 (** CLog positions, ascending *)
  entries : Clog.entry list;          (** the disclosed entries, aligned *)
  proof : Zkflow_merkle.Multiproof.t; (** batched inclusion proof *)
}
(** Selective disclosure: with the client's consent (e.g. a legal
    order covering specific flows), the operator reveals exactly those
    CLog entries, authenticated against the already-verified root —
    and provably nothing else is needed to check them. *)

val disclose :
  t -> keys:Zkflow_netflow.Flowkey.t list -> (disclosure, string) result
(** Build a disclosure for the given flows against the latest CLog.
    Fails if any key is absent (use a query with an exact-match
    predicate to prove absence-of-traffic instead). *)

val query_at : t -> round:int -> Guests.query_params -> (Query.result_row, string) result
(** Prove a query against the historical CLog state after round
    [round] (0-based). Every past root stays pinned by its aggregation
    receipt, so clients can audit any earlier integrity window — the
    retrospective/interval-query use the paper's related work
    motivates. *)
