(** Regression detection over the bench JSON artifacts.

    [zkflow bench-diff OLD.json NEW.json] parses two artifacts written
    by the bench binary ([BENCH_fig4.json], [BENCH_table1.json],
    [BENCH_par.json]), matches their rows by identity key ([records]
    and/or [jobs]), and compares every shared numeric field:

    - [*_s] wall-clock fields and per-phase [phases.<name>.total_s]
      totals regress when the new value exceeds the old by more than
      [threshold] (relative), with a [min_s] absolute floor so
      microsecond noise on tiny phases never fails a build;
    - [*_cycles] and [*_bytes] fields are deterministic outputs and
      use the ratio test with no floor — any drift beyond [threshold]
      is flagged.

    Pool-utilization stats are skipped (machine-load dependent). Rows
    or fields present on one side only are reported as notes, not
    regressions. *)

type change = {
  key : string;  (** row identity, e.g. ["records=1000"] or ["jobs=4"] *)
  field : string;  (** e.g. ["agg_prove_s"], ["phases.merkle.total_s"] *)
  old_v : float;
  new_v : float;
  ratio : float;  (** [new_v /. old_v] *)
}

type report = {
  compared : int;  (** numeric field pairs compared *)
  regressions : change list;
  improvements : change list;  (** moved beyond [threshold] in the good direction *)
  notes : string list;  (** rows/fields present on only one side *)
}

val diff :
  ?threshold:float ->
  ?min_s:float ->
  old_json:Zkflow_util.Jsonx.t ->
  new_json:Zkflow_util.Jsonx.t ->
  unit ->
  (report, string) result
(** Compare two bench artifacts. [threshold] defaults to [0.25] (25%
    relative), [min_s] to [0.05] seconds. [Error] only when an
    artifact has no recognizable [rows]/[sweep] array. *)

val ok : report -> bool
(** [true] iff no regressions. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Zkflow_util.Jsonx.t
