(** Regression detection over the bench JSON artifacts.

    [zkflow bench-diff OLD.json NEW.json] parses two artifacts written
    by the bench binary ([BENCH_fig4.json], [BENCH_table1.json],
    [BENCH_par.json], [BENCH_matrix.json]), matches their rows by the
    full configuration key — every sweep axis the row carries:
    [backend], [queries], [records], [routers], [jobs] — and compares
    every shared numeric field:

    - [*_s] wall-clock fields and per-phase [phases.<name>.total_s]
      totals regress when the new value exceeds the old by more than
      [threshold] (relative), with a [min_s] absolute floor so
      microsecond noise on tiny phases never fails a build;
    - [*_cycles] and [*_bytes] fields are deterministic outputs and
      use the ratio test with no floor — any drift beyond [threshold]
      is flagged;
    - [*_bits] fields (soundness) flip the direction: fewer bits in
      NEW is the regression, more is the improvement.

    Pool-utilization stats are skipped (machine-load dependent). Rows
    or fields present on one side only are reported as notes, not
    regressions — so a grid change (a new matrix cell, a dropped
    queries setting) reads as coverage drift, never as a false
    perf regression. The artifacts' [env] provenance blocks are also
    cross-checked: differing git commits or hostnames, a dirty
    working tree, or mismatched quick-mode flags each add a note
    naming the cross-commit / cross-machine caveat. *)

val row_key : Zkflow_util.Jsonx.t -> string option
(** The full configuration key of one artifact row, e.g.
    ["records=1000"], ["jobs=4"], or
    ["backend=wrap queries=16 records=96 routers=4 jobs=2"]. [None]
    when the row carries no known axis. {!Matrix} reuses this for its
    report labels so the report and the diff name cells identically. *)

type change = {
  key : string;  (** row identity, as {!row_key} prints it *)
  field : string;  (** e.g. ["agg_prove_s"], ["phases.merkle.total_s"] *)
  old_v : float;
  new_v : float;
  ratio : float;  (** [new_v /. old_v] *)
}

type report = {
  compared : int;  (** numeric field pairs compared *)
  regressions : change list;
  improvements : change list;  (** moved beyond [threshold] in the good direction *)
  notes : string list;  (** rows/fields present on only one side *)
}

val diff :
  ?threshold:float ->
  ?min_s:float ->
  old_json:Zkflow_util.Jsonx.t ->
  new_json:Zkflow_util.Jsonx.t ->
  unit ->
  (report, string) result
(** Compare two bench artifacts. [threshold] defaults to [0.25] (25%
    relative), [min_s] to [0.05] seconds. [Error] only when an
    artifact has no recognizable [rows]/[sweep] array. *)

val ok : report -> bool
(** [true] iff no regressions. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Zkflow_util.Jsonx.t
