module D = Zkflow_hash.Digest32
module Machine = Zkflow_zkvm.Machine
module Record = Zkflow_netflow.Record
module Flowkey = Zkflow_netflow.Flowkey

type result_row = {
  receipt : Zkflow_zkproof.Receipt.t;
  journal : Guests.query_journal;
  cycles : int;
  execute_s : float;
  prove_s : float;
}

let ( let* ) = Result.bind
let mask32 = 0xffffffff

let metric_value (m : Record.metrics) = function
  | Guests.Packets -> m.Record.packets
  | Guests.Bytes -> m.Record.bytes
  | Guests.Hops -> m.Record.hop_count
  | Guests.Losses -> m.Record.losses

let entry_matches (p : Guests.predicate) (e : Clog.entry) =
  let w = Clog.entry_words e in
  let ok field idx = match field with None -> true | Some v -> w.(idx) = v in
  ok p.Guests.src_ip 0 && ok p.Guests.dst_ip 1 && ok p.Guests.ports 2
  && ok p.Guests.proto 3

let reference clog (params : Guests.query_params) =
  let init = match params.Guests.op with Guests.Min -> mask32 | _ -> 0 in
  Array.fold_left
    (fun (acc, matches) e ->
      if entry_matches params.Guests.predicate e then begin
        let v = metric_value e.Clog.metrics params.Guests.metric in
        let acc =
          match params.Guests.op with
          | Guests.Sum -> (acc + v) land mask32
          | Guests.Count -> acc + 1
          | Guests.Max -> max acc v
          | Guests.Min -> min acc v
        in
        (acc, matches + 1)
      end
      else (acc, matches))
    (init, 0) (Clog.entries clog)

let guest_failure = function
  | 1 -> "query guest: Merkle root mismatch"
  | 5 -> "query guest: malformed parameters"
  | n -> Printf.sprintf "query guest: unexpected exit code %d" n

let execute ~clog params =
  let input = Guests.query_input ~clog params in
  let program = Lazy.force Guests.query_program in
  match Machine.run ~trace:true program ~input with
  | exception Machine.Trap { reason; cycle; pc } ->
    Error (Printf.sprintf "query guest trapped at cycle %d pc %d: %s" cycle pc reason)
  | run when run.Machine.exit_code <> 0 -> Error (guest_failure run.Machine.exit_code)
  | run -> Ok run

let now () = Unix.gettimeofday ()

(* Correlation ids for query events: monotone per process, threaded by
   callers into the verifier so a rejected query verdict can be joined
   back to the proving attempt in the flight-recorder log. *)
let query_counter = Atomic.make 0
let fresh_query_id () = Atomic.fetch_and_add query_counter 1

let prove_inner ?params:proof_params ~clog params =
  let t_q = Zkflow_obs.Span.start () in
  let t0 = now () in
  let* run = execute ~clog params in
  let t1 = now () in
  let program = Lazy.force Guests.query_program in
  let* receipt = Zkflow_zkproof.Prove.prove_result ?params:proof_params program run in
  let t2 = now () in
  if t_q <> 0 then
    Zkflow_obs.Span.finish "query.prove" ~args:[ ("cycles", run.Machine.cycles) ] t_q;
  let* journal = Guests.parse_query_journal run.Machine.journal in
  let* () =
    if D.equal journal.Guests.root (Clog.root clog) then Ok ()
    else Error "query: journal root diverges from host state"
  in
  let* () =
    if Guests.params_equal journal.Guests.params params then Ok ()
    else Error "query: journal params diverge"
  in
  let expected_result, expected_matches = reference clog params in
  let* () =
    if journal.Guests.result = expected_result && journal.Guests.matches = expected_matches
    then Ok ()
    else Error "query: guest result diverges from host reference"
  in
  Ok
    {
      receipt;
      journal;
      cycles = run.Machine.cycles;
      execute_s = t1 -. t0;
      prove_s = t2 -. t1;
    }

let prove ?params ~clog query_params =
  let qid = fresh_query_id () in
  match prove_inner ?params ~clog query_params with
  | Error e ->
    Zkflow_obs.Event.emit ~query:qid ~track:"prover" "prover.query.error"
      ~attrs:[ ("detail", Zkflow_util.Jsonx.Str e) ];
    Error e
  | Ok row ->
    Zkflow_obs.Event.emit ~query:qid ~track:"prover" "prover.query.done"
      ~attrs:
        [
          ("cycles", Zkflow_util.Jsonx.Num (float_of_int row.cycles));
          ("result", Zkflow_util.Jsonx.Num (float_of_int row.journal.Guests.result));
          ("matches", Zkflow_util.Jsonx.Num (float_of_int row.journal.Guests.matches));
        ];
    Ok row

(* ---- batched multi-flow queries ---- *)

type flow_row = { index : int; entry : Clog.entry; value : int }

type flows_result = {
  root : D.t;
  metric : Guests.metric;
  rows : flow_row list;
  total : int;
  proof : Zkflow_merkle.Multiproof.t;
}

let prove_flows ~clog ~metric keys =
  if keys = [] then Error "query flows: no keys given"
  else begin
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | key :: rest -> (
        match Clog.find clog key with
        | Some (i, e) -> collect ((i, e) :: acc) rest
        | None ->
          Error
            (Format.asprintf "query flows: flow %a not in the CLog" Flowkey.pp key))
    in
    let* found = collect [] keys in
    let sorted = List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b) found in
    let* () =
      if List.compare_lengths sorted found = 0 then Ok ()
      else Error "query flows: duplicate keys"
    in
    (* One multiproof over the merged index set: helper digests shared
       between flows are carried once, instead of one full root path
       per flow. *)
    let proof = Zkflow_merkle.Multiproof.prove (Clog.tree clog) (List.map fst sorted) in
    let rows =
      List.map
        (fun (i, e) -> { index = i; entry = e; value = metric_value e.Clog.metrics metric })
        sorted
    in
    let total = List.fold_left (fun acc r -> (acc + r.value) land mask32) 0 rows in
    Ok { root = Clog.root clog; metric; rows; total; proof }
  end

let sum_hops_between ~src ~dst =
  {
    Guests.predicate = { Guests.match_any with Guests.src_ip = Some src; dst_ip = Some dst };
    op = Guests.Sum;
    metric = Guests.Hops;
  }

let loss_of_flow key =
  let w = Flowkey.to_words key in
  {
    Guests.predicate =
      { Guests.src_ip = Some w.(0); dst_ip = Some w.(1); ports = Some w.(2); proto = Some w.(3) };
    op = Guests.Sum;
    metric = Guests.Losses;
  }

let flow_count =
  { Guests.predicate = Guests.match_any; op = Guests.Count; metric = Guests.Packets }
