(** The client-side verifier (Figure 1, right half).

    A client holds only public material — the two guest image IDs, the
    commitment {!Zkflow_commitlog.Board}, and the receipts the operator
    hands over. It never sees RLogs or CLogs. Verification checks, per
    Section 4.2:

    + every aggregation receipt is cryptographically valid and runs the
      pinned aggregation guest;
    + the rounds chain: round k's [prev_root] equals round k−1's
      [new_root], starting from the empty root;
    + every router digest a round consumed equals the commitment that
      router published on the board for that epoch;
    + a query receipt is valid, runs the pinned query guest, and its
      journal root equals the latest aggregated root — then its result
      can be trusted. *)

type verified_chain = {
  final_root : Zkflow_hash.Digest32.t;
  round_count : int;
}

val verify_round :
  ?expected_prev:Zkflow_hash.Digest32.t ->
  ?round:int ->
  ?routers:int list ->
  board:Zkflow_commitlog.Board.t ->
  epoch:int ->
  Zkflow_zkproof.Receipt.t ->
  (Guests.agg_journal, string) result
(** Verify one aggregation receipt: proof validity, image ID, board
    cross-check for [epoch], and (when given) the [expected_prev]
    linkage. [?routers] is the router subset a degraded round claims
    to cover (default: every router on the board) — the claim is
    checked digest by digest against the board, so it can only name
    routers that really published. Each verdict is also a
    flight-recorder event on the [verifier] track —
    ["verifier.round.accept"], or ["verifier.reject"] naming the
    failing check ([proof], [journal], [chain], [router_set],
    [board_lookup], [digest_match], [arity]). [?round] is the chain
    index carried on those events. *)

val verify_chain :
  board:Zkflow_commitlog.Board.t ->
  (int * Zkflow_zkproof.Receipt.t) list ->
  (verified_chain, string) result
(** Verify a whole history of [(epoch, receipt)] rounds, oldest first,
    threading the root linkage from the empty CLog. *)

type covered_round = {
  epoch : int;
  routers : int list;   (** the (claimed) covered subset, ascending *)
  degraded : bool;
  heal : bool;
  receipt : Zkflow_zkproof.Receipt.t;
}
(** One round of a possibly-degraded history, as handed over by the
    operator: the receipt plus its coverage claim
    (cf. {!Prover_service.coverage}). *)

type coverage_report = {
  final_root : Zkflow_hash.Digest32.t;
  round_count : int;
  complete : bool;  (** no open gaps — the board is fully covered *)
}

val verify_coverage :
  board:Zkflow_commitlog.Board.t ->
  gaps:(int * int) list ->
  covered_round list ->
  (coverage_report, string) result
(** Verify a degraded history end to end from public data: each round
    against its claimed router subset (chained from the empty root),
    no [(router, epoch)] pair covered twice, no pair claimed both
    covered and an open gap — and, the safety core, {e no silent
    loss}: every commitment on the board is either covered by some
    round or explicitly named in [gaps] (the open entries of the
    prover's gap journal). A history that drops a pair without
    declaring it is rejected (check [coverage.silent_loss]; the other
    new checks are [coverage.duplicate] and [coverage.gap_covered]).
    [complete] is true when [gaps] is empty: verified {e and} whole.
    An accepted history emits ["verifier.coverage.accept"]. *)

val verify_query :
  ?query:int ->
  expected_root:Zkflow_hash.Digest32.t ->
  Zkflow_zkproof.Receipt.t ->
  (Guests.query_journal, string) result
(** Verify a query receipt against the aggregated root the client just
    established via {!verify_chain}. Returns the journal, whose
    [result]/[matches] are then trustworthy. Emits
    ["verifier.query.accept"] or ["verifier.reject"] (checks
    [query.proof], [query.journal], [query.root]); [?query] is the
    correlation id carried on those events. *)

val verify_disclosure :
  expected_root:Zkflow_hash.Digest32.t ->
  Prover_service.disclosure ->
  (Clog.entry list, string) result
(** Check a selective disclosure against the aggregated root the client
    already verified: the batched Merkle proof must authenticate
    exactly the claimed entries at the claimed positions. Returns the
    now-trustworthy entries. *)

val verify_flows :
  ?query:int ->
  expected_root:Zkflow_hash.Digest32.t ->
  Query.flows_result ->
  (Query.flow_row list, string) result
(** Check a batched multi-flow readout against the root the client
    already verified: the single {!Zkflow_merkle.Multiproof} must
    authenticate every claimed entry at its claimed position, every
    per-flow [value] must equal the metric of its authenticated entry,
    and [total] must be their 32-bit wrapped sum. Returns the
    now-trustworthy rows. Emits ["verifier.flows.accept"] or
    ["verifier.reject"] (checks [flows.root], [flows.rows],
    [flows.indices], [flows.proof], [flows.values], [flows.total]). *)

val check_sla :
  ?query:int ->
  expected_root:Zkflow_hash.Digest32.t ->
  Zkflow_zkproof.Receipt.t ->
  predicate:(result:int -> matches:int -> bool) ->
  (bool, string) result
(** Convenience for SLA-style audits: verify, then evaluate a client-
    chosen predicate over the attested result. *)
