(** The client-side verifier (Figure 1, right half).

    A client holds only public material — the two guest image IDs, the
    commitment {!Zkflow_commitlog.Board}, and the receipts the operator
    hands over. It never sees RLogs or CLogs. Verification checks, per
    Section 4.2:

    + every aggregation receipt is cryptographically valid and runs the
      pinned aggregation guest;
    + the rounds chain: round k's [prev_root] equals round k−1's
      [new_root], starting from the empty root;
    + every router digest a round consumed equals the commitment that
      router published on the board for that epoch;
    + a query receipt is valid, runs the pinned query guest, and its
      journal root equals the latest aggregated root — then its result
      can be trusted. *)

type verified_chain = {
  final_root : Zkflow_hash.Digest32.t;
  round_count : int;
}

val verify_round :
  ?expected_prev:Zkflow_hash.Digest32.t ->
  ?round:int ->
  board:Zkflow_commitlog.Board.t ->
  epoch:int ->
  Zkflow_zkproof.Receipt.t ->
  (Guests.agg_journal, string) result
(** Verify one aggregation receipt: proof validity, image ID, board
    cross-check for [epoch], and (when given) the [expected_prev]
    linkage. Each verdict is also a flight-recorder event on the
    [verifier] track — ["verifier.round.accept"], or
    ["verifier.reject"] naming the failing check ([proof], [journal],
    [chain], [router_set], [board_lookup], [digest_match], [arity]).
    [?round] is the chain index carried on those events. *)

val verify_chain :
  board:Zkflow_commitlog.Board.t ->
  (int * Zkflow_zkproof.Receipt.t) list ->
  (verified_chain, string) result
(** Verify a whole history of [(epoch, receipt)] rounds, oldest first,
    threading the root linkage from the empty CLog. *)

val verify_query :
  ?query:int ->
  expected_root:Zkflow_hash.Digest32.t ->
  Zkflow_zkproof.Receipt.t ->
  (Guests.query_journal, string) result
(** Verify a query receipt against the aggregated root the client just
    established via {!verify_chain}. Returns the journal, whose
    [result]/[matches] are then trustworthy. Emits
    ["verifier.query.accept"] or ["verifier.reject"] (checks
    [query.proof], [query.journal], [query.root]); [?query] is the
    correlation id carried on those events. *)

val verify_disclosure :
  expected_root:Zkflow_hash.Digest32.t ->
  Prover_service.disclosure ->
  (Clog.entry list, string) result
(** Check a selective disclosure against the aggregated root the client
    already verified: the batched Merkle proof must authenticate
    exactly the claimed entries at the claimed positions. Returns the
    now-trustworthy entries. *)

val check_sla :
  ?query:int ->
  expected_root:Zkflow_hash.Digest32.t ->
  Zkflow_zkproof.Receipt.t ->
  predicate:(result:int -> matches:int -> bool) ->
  (bool, string) result
(** Convenience for SLA-style audits: verify, then evaluate a client-
    chosen predicate over the attested result. *)
