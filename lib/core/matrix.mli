(** Proof-backend benchmark matrix (DESIGN.md §14).

    One fixed workload — a single aggregation round over freshly
    generated router batches — run across a configuration grid:

    - {b backend}: the full spot-check receipt (publicly verifiable,
      size grows with queries · log cycles) vs. the designated-verifier
      256-byte wrap (Table 1's constant "Proof" column);
    - {b proof parameters}: the {!Zkflow_zkproof.Params.queries}
      spot-check sweep (further axes — LDE blowup, hash variant — slot
      into the same row schema when those knobs land);
    - {b scale}: records × routers × Domain-pool jobs.

    Every cell carries prove/verify wall time, the per-phase span
    breakdown ({!Zkflow_obs}), proof/journal/receipt bytes and the
    computed soundness bits, so any two configurations — and any two
    PRs, via [zkflow bench-diff] — are comparable on the
    cost/soundness frontier. The report half of this module renders a
    [BENCH_matrix.json] artifact into markdown or JSON, including the
    Pareto frontier: cells not dominated on
    (prove time, proof bytes, soundness bits). *)

type backend = Receipt | Wrap

val backend_name : backend -> string
(** ["receipt"] / ["wrap"] — the [backend] field of a matrix row. *)

type scale = { records : int; routers : int; jobs : int }

type grid = {
  backends : backend list;
  queries : int list;
  scales : scale list;
}

val default_grid : quick:bool -> grid
(** Quick mode: 2 backends × 3 queries settings × 3 scales (the CI
    grid); full mode widens the queries sweep and the scales. *)

type cell = {
  backend : backend;
  queries : int;
  scale : scale;
  cycles : int;
  exec_s : float;
  prove_s : float;   (** wrap cells: inner prove + wrap (which re-verifies) *)
  verify_s : float;  (** full receipt check, or the O(1) MAC check *)
  proof_bytes : int; (** encoded seal, or the constant 256-byte wrap seal *)
  journal_bytes : int;
  receipt_bytes : int; (** full encoded artifact a verifier receives *)
  soundness_bits : float;
  phases : (string * (int * float)) list; (** span name -> count, total s *)
  pool : Zkflow_parallel.Pool.stats;
}

val run : ?log:(string -> unit) -> grid -> (cell list, string) result
(** Run the whole grid. One proving run per (queries, scale) pair —
    the wrap backend reuses the inner receipt, as a deployment would,
    and pays its wrap cost on top. The commit cache is cleared before
    every pair so each cell's prove time is the cold cost. Restores
    the Domain-pool job count afterwards. *)

val to_json : env:Zkflow_util.Jsonx.t -> cell list -> Zkflow_util.Jsonx.t
(** The [BENCH_matrix.json] artifact: [{"schema"; "env"; "rows"}] with
    one row per cell, keyed for {!Bench_diff} by its full
    configuration (backend + queries + records + routers + jobs). *)

val phases_json : (string * (int * float)) list -> Zkflow_util.Jsonx.t
(** Serialize an {!Zkflow_obs.Obs.span_totals_s} snapshot the way
    every bench artifact embeds it ([name -> {count; total_s}]). *)

val pool_json : Zkflow_parallel.Pool.stats -> Zkflow_util.Jsonx.t
(** Serialize Domain-pool stats for an artifact row. *)

val env_provenance : unit -> (string * Zkflow_util.Jsonx.t) list
(** Provenance fields every bench artifact's [env] block embeds:
    [git_commit] (short hash, ["unknown"] outside a repo),
    [git_dirty], and [hostname] — what {!Bench_diff.diff} checks
    before comparing two artifacts (EXPERIMENTS.md, provenance). *)

(** {2 Reports}

    The report side works from the parsed artifact, not from live
    cells, so [zkflow report] renders any committed or CI-produced
    [BENCH_matrix.json] and tests can assert frontier membership on
    hand-built fixtures. *)

type row = {
  key : string;  (** full configuration key, as {!Bench_diff} prints it *)
  r_backend : string;
  r_queries : int;
  r_records : int;
  r_routers : int;
  r_jobs : int;
  r_cycles : float;
  r_exec_s : float;
  r_prove_s : float;
  r_verify_s : float;
  r_proof_bytes : float;
  r_journal_bytes : float;
  r_receipt_bytes : float;
  r_soundness_bits : float;
  r_phases : (string * float) list; (** span name -> total s, largest first *)
}

val rows_of_artifact : Zkflow_util.Jsonx.t -> (row list, string) result
(** Parse a [BENCH_matrix.json] document. [Error _] when the document
    has no [rows] array or a row lacks one of the configuration axes
    or measured fields. *)

val dominates : row -> row -> bool
(** [dominates a b]: [a] is no worse than [b] on all three frontier
    objectives — prove time (lower), proof bytes (lower), soundness
    bits (higher) — and strictly better on at least one. *)

val frontier : row list -> (row * bool) list
(** Pareto-frontier membership per row, input order preserved: [true]
    iff no other row dominates it. *)

val report_markdown : Zkflow_util.Jsonx.t -> (string, string) result
(** Render the artifact as the generated [REPORT.md]: provenance
    header, the full matrix table with frontier marks, the frontier
    table sorted by prove time, and the per-cell phase breakdown. *)

val report_json : Zkflow_util.Jsonx.t -> (Zkflow_util.Jsonx.t, string) result
(** Machine-readable report: rows with a [frontier] flag plus the
    frontier keys, for dashboards and tests. *)
