(** Health/SLO reports replayed from the flight-recorder event log.

    [zkflow monitor] feeds the JSONL event log (and, when available,
    the saved prover-service state) through {!build} and prints the
    resulting {!report}: per-router commitment lag and missed-epoch
    gaps, aggregation-round latency percentiles, verifier rejection
    counts by failing check, and the prover-service backlog over time.
    Everything is derived offline from recorded events — building a
    report never touches the live telemetry gate. *)

(** Latency distribution summary, in nanoseconds, computed from log2
    histogram buckets (so percentiles are upper bounds, like the
    Prometheus exporter's quantile lines). *)
type latency = { count : int; p50_ns : int; p95_ns : int; p99_ns : int; max_ns : int }

(** Round-latency trend from a saved metric time-series: the p95 of
    the newer half of the frame history against the older half, so one
    [monitor --json] artifact answers "is the prover slowing down"
    without a second run to diff against. *)
type trend = {
  trend_metric : string;  (** histogram the trend is over *)
  last_count : int;  (** observations in the newer half-window *)
  last_p95_ns : int;
  prev_count : int;
  prev_p95_ns : int;
  trend_ratio : float option;
      (** [last_p95 / prev_p95]; [None] when either half is empty *)
}

type router_health = {
  router_id : int;
  publishes : int;  (** fresh board publications seen on this router's track *)
  last_epoch : int option;  (** newest epoch this router committed to *)
  lag : int;
      (** epochs behind the newest epoch any router committed; 0 means
          the router is current. *)
  missed : int list;
      (** board epochs at or before [last_epoch] the router never
          published — gaps inside its own history. *)
}

type gap_status = {
  gap_router : int;
  gap_epoch : int;
  opened_round : int;        (** round that first proceeded without it *)
  healed_round : int option; (** heal round that folded it in, if any *)
}
(** One coverage gap replayed from ["prover.gap.open"] /
    ["prover.gap.heal"] events. *)

type report = {
  events : int;  (** total events replayed *)
  epochs : int list;  (** distinct epochs with at least one fresh publication *)
  routers : router_health list;
  board_rejects : (string * int) list;  (** board rejection reason -> count *)
  rounds_started : int;
  rounds_done : int;
  rounds_error : int;
  rounds_skipped : int;  (** degraded rounds with nothing to aggregate *)
  degraded_rounds : int; (** rounds that proceeded with missing routers *)
  heal_rounds : int;     (** catch-up rounds folding in late arrivals *)
  round_latency : latency option;
      (** wall time from [prover.round.start] to [prover.round.done],
          matched by round index *)
  prove_latency : latency option;  (** the proving phase alone, from [prove_ns] *)
  queue_depth : (int * int) list;
      (** (round index, service backlog at round start), in order *)
  max_queue_depth : int;
  queries_done : int;
  queries_error : int;
  verifier_accepts : int;  (** accept verdicts of any kind *)
  verifier_rejects : (string * int) list;  (** failing check -> count *)
  gaps : gap_status list;  (** every gap ever opened, in open order *)
  open_gap_count : int;
  stale_gap_count : int;
      (** open gaps that have stayed open for more than [gap_grace]
          rounds — the [--strict] failure condition *)
  gap_grace : int;  (** the grace window this report was built with *)
  crashes : int;  (** injected ["fault.crash"] events *)
  resumes : int;  (** ["prover.resume"] recoveries *)
  retries : int;  (** ["fault.retry"] backoff attempts *)
  fault_events : (string * int) list;  (** injected fault kind -> count *)
  ingest_accepted : int;  (** daemon windows admitted *)
  ingest_shed : int;  (** windows rejected-newest at a full queue *)
  ingest_duplicates : int;  (** repeat [(router, epoch)] submissions *)
  drains : int;  (** completed graceful drains *)
  breaker_opens : int;  (** circuit-breaker open transitions *)
  watchdog_trips : int;  (** healthy -> unhealthy /healthz transitions *)
  service_rounds : int option;  (** from the saved service state, when given *)
  service_entries : int option;
  service_root : string option;
  round_trend : trend option;
      (** from the saved time-series, when frames were given *)
}

val trend_of_frames :
  ?metric:string -> Zkflow_obs.Timeseries.frame list -> trend option
(** Half-vs-half p95 comparison over a frame history ([metric]
    defaults to ["prover.round_ns"]). [None] with fewer than 3 frames
    or when neither half saw an observation. *)

val build :
  ?service:Prover_service.t ->
  ?frames:Zkflow_obs.Timeseries.frame list ->
  ?gap_grace:int ->
  Zkflow_obs.Event.t list ->
  report
(** Replay a recorded event list into a health report. [?service] adds
    the persisted prover-service view (round count, CLog size, root)
    for cross-checking against what the log claims happened.
    [?frames] adds the saved metric time-series, enabling
    [round_trend]. [?gap_grace] (default 0) is how many rounds a
    coverage gap may stay open before it counts as stale. *)

val healthy : report -> bool
(** No rejections anywhere, no round or query errors, every router
    current ([lag = 0]) with no missed epochs, and no open gap stale
    past the grace window. Injected-fault counts and degraded/heal
    rounds do {e not} degrade health — they are the chaos and the
    intended reaction to it; health judges whether the reaction
    worked. *)

val pp : Format.formatter -> report -> unit
(** Human-readable report: router table, latency percentiles,
    rejection counts, backlog summary. *)

val to_json : report -> Zkflow_util.Jsonx.t
