(** Combined logs (CLogs): the aggregated, Merkle-committed per-flow
    dataset of Section 4.

    A CLog state is an ordered array of entries — flow key plus
    aggregated metrics — whose order is {i insertion order across
    rounds}: entries survive at their index and new flows append. That
    stable order is what lets round k's guest verify round k−1's Merkle
    root by rebuilding the same tree. *)

type entry = { key : Zkflow_netflow.Flowkey.t; metrics : Zkflow_netflow.Record.metrics }

val entry_words : entry -> int array
(** 8 words, identical to {!Zkflow_netflow.Record.to_words} on the
    committed fields. *)

val entry_of_words : int array -> (entry, string) result

val entry_bytes : entry -> bytes
(** 32 bytes (the Merkle leaf preimage). *)

val leaf_digest : entry -> Zkflow_hash.Digest32.t
(** [Zkflow_merkle.Tree.leaf_hash] of {!entry_bytes}. *)

type t
(** An immutable CLog state. *)

val empty : t
val entries : t -> entry array
val length : t -> int

val of_entries : entry array -> (t, string) result
(** Fails on duplicate flow keys. *)

val of_entries_with_snapshot : entry array -> snapshot:bytes -> (t, string) result
(** Like {!of_entries}, but adopt a persisted
    {!Zkflow_merkle.Tree.to_snapshot} of the tree instead of lazily
    rebuilding it — the restore path of checkpoint rows. Fails on
    duplicate keys, a malformed snapshot, or a snapshot whose leaf
    count differs from the entries. The snapshot's node hashes are
    trusted; callers must integrity-protect the bytes (checkpoint rows
    are checksummed). *)

val root : t -> Zkflow_hash.Digest32.t
(** Merkle root over the entries in order (empty-tree root for
    {!empty}). *)

val tree : t -> Zkflow_merkle.Tree.t
(** The full tree, for inclusion proofs about individual flows. *)

val tree_snapshot : t -> bytes
(** {!Zkflow_merkle.Tree.to_snapshot} of {!tree} — the compact node
    snapshot persisted by checkpoint rows. Forces the tree. *)

val find : t -> Zkflow_netflow.Flowkey.t -> (int * entry) option
(** Index and entry for a flow key. *)

val words : t -> int array
(** All entries as the flat guest word stream. *)

val apply_batch : t -> Zkflow_netflow.Record.t array -> t
(** The host-side reference aggregation (sum policy): fold a batch of
    RLog records in order — existing flows accumulate, new flows
    append. The guest must compute exactly this. The result's Merkle
    tree is maintained incrementally from this state's tree (dirty
    leaves only; see {!Zkflow_merkle.Incremental}) — bit-identical to
    the from-scratch build, O(k·log n) instead of O(n) per batch. *)

val apply_batch_rebuild : t -> Zkflow_netflow.Record.t array -> t
(** Same aggregation, but the result's tree is rebuilt from scratch on
    first use. The reference arm of the differential tests and the
    [incr] bench ablation; roots must match {!apply_batch} exactly. *)

val empty_root : Zkflow_hash.Digest32.t
(** Root of the empty CLog. *)
