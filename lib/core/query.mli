(** Verifiable queries over the committed CLog state (Section 4.2).

    A query is compiled to guest parameters, executed inside the zkVM
    against the Merkle-authenticated entries, and returns a receipt
    whose journal carries the root it ran against, the exact query, the
    result and the match count — everything a client needs, with no
    entry data exposed. *)

type result_row = {
  receipt : Zkflow_zkproof.Receipt.t;
  journal : Guests.query_journal;
  cycles : int;
  execute_s : float;
  prove_s : float;
}

val reference : Clog.t -> Guests.query_params -> int * int
(** Host-side evaluation [(result, matches)] — the value the guest must
    reproduce; used for cross-checks and tests. *)

val execute :
  clog:Clog.t -> Guests.query_params ->
  (Zkflow_zkvm.Machine.result, string) result
(** Guest run without proving. *)

val prove :
  ?params:Zkflow_zkproof.Params.t ->
  clog:Clog.t ->
  Guests.query_params ->
  (result_row, string) result
(** Execute, prove, parse and cross-check against {!reference}. *)

(** {2 Batched multi-flow queries}

    A client auditing [k] specific flows used to pay for [k] separate
    query proofs (or [k] single-leaf inclusion proofs). A flows query
    instead answers all of them against one root with a single batched
    {!Zkflow_merkle.Multiproof}: shared helper digests along the merged
    root-paths are carried once, so proof size is sublinear in [k]. *)

type flow_row = {
  index : int;        (** CLog position *)
  entry : Clog.entry; (** the flow's committed entry *)
  value : int;        (** the requested metric of that entry *)
}

type flows_result = {
  root : Zkflow_hash.Digest32.t;  (** the CLog root answered against *)
  metric : Guests.metric;
  rows : flow_row list;           (** ascending by [index] *)
  total : int;                    (** 32-bit wrapped sum of [value]s *)
  proof : Zkflow_merkle.Multiproof.t;
      (** one batched inclusion proof covering every row *)
}

val prove_flows :
  clog:Clog.t ->
  metric:Guests.metric ->
  Zkflow_netflow.Flowkey.t list ->
  (flows_result, string) result
(** Answer a per-flow metric readout for each given key with one
    batched proof. Fails on an empty key list, a duplicate key, or a
    key absent from the CLog (prove absence with an exact-match
    {!prove} query instead). Verified client-side by
    {!Verifier_client.verify_flows}. *)

(** Convenience constructors for common audit queries. *)

val sum_hops_between :
  src:Zkflow_netflow.Ipaddr.t -> dst:Zkflow_netflow.Ipaddr.t -> Guests.query_params
(** The paper's example: SELECT SUM(hop_count) WHERE src_ip = … AND
    dst_ip = …. *)

val loss_of_flow : Zkflow_netflow.Flowkey.t -> Guests.query_params
(** Total losses for one exact 5-tuple. *)

val flow_count : Guests.query_params
(** COUNT over all flows. *)
