module Db = Zkflow_store.Db
module Epoch = Zkflow_store.Epoch
module Board = Zkflow_commitlog.Board
module Gen = Zkflow_netflow.Gen
module Topology = Zkflow_netflow.Topology
module Rng = Zkflow_util.Rng
module Jsonx = Zkflow_util.Jsonx
module Fault = Zkflow_fault.Fault
module Event = Zkflow_obs.Event
module Obs = Zkflow_obs.Obs
module D = Zkflow_hash.Digest32

type config = {
  routers : int;
  flows : int;
  rate_pps : float;
  duration_ms : int;
  loss_rate : float;
  queries : int;
  max_restarts : int;
}

let default_config =
  {
    routers = 3;
    flows = 8;
    rate_pps = 30.;
    duration_ms = 11_000;
    loss_rate = 0.;
    queries = 8;
    max_restarts = 40;
  }

type status = Complete | Degraded

type report = {
  plan : Fault.plan;
  status : status;
  packets : int;
  records : int;
  epochs : int;
  rounds : int;
  heal_rounds : int;
  crashes : int;
  resumes : int;
  restored_rounds : int;
  open_gaps : (int * int) list;
  final_root : string;
  twin_root : string;
  safety_ok : bool;
  liveness_ok : bool;
  slo_expected : string list;
  slo_fired : string list;
  slo_ok : bool;
  twin_slo_fired : string list;
  twin_slo_ok : bool;
}

let ( let* ) = Result.bind

(* ---- deterministic traffic ---- *)

let simulate ~cfg ~seed ~wal_path =
  let db =
    Db.create ~wal_path ~epoch:(Epoch.make ~interval_ms:5000) ()
  in
  let rng = Rng.create (Int64.of_int seed) in
  let profile = { Gen.default_profile with Gen.flow_count = cfg.flows } in
  let flow_keys = Gen.flows rng profile in
  let packets =
    Gen.packets rng profile ~flows:flow_keys ~rate_pps:cfg.rate_pps
      ~duration_ms:cfg.duration_ms
  in
  (* Short active timeout: flows export mid-run, so the traffic spreads
     over several epochs — the fault grid (drops/delays at epoch > 0)
     needs real windows to hit. *)
  let topology =
    Topology.linear
      (List.init cfg.routers (fun id ->
           {
             Zkflow_netflow.Router.id;
             active_timeout_ms = 3_000;
             inactive_timeout_ms = 1_500;
             sampling_interval = 1;
           }))
  in
  let losses = Array.make cfg.routers cfg.loss_rate in
  let records = ref 0 in
  let drain exports =
    List.iter
      (fun (_, recs) ->
        List.iter
          (fun r ->
            incr records;
            Db.insert db r)
          recs)
      exports
  in
  (* Pump the timeout clock while injecting: without periodic expiry
     every flow would sit in the cache until the final flush and the
     whole run would collapse into one epoch. *)
  let tick_ms = 1_000 in
  let next_tick = ref tick_ms in
  List.iter
    (fun (p : Zkflow_netflow.Packet.t) ->
      while p.Zkflow_netflow.Packet.ts >= !next_tick do
        drain (Topology.expire topology ~now:!next_tick);
        next_tick := !next_tick + tick_ms
      done;
      Topology.inject topology ~rng ~loss_rate:losses p)
    packets;
  drain (Topology.flush topology ~now:cfg.duration_ms);
  Db.sync db;
  (db, List.length packets, !records)

(* ---- publication phase ----

   Routers publish epoch by epoch, router by router, with the plan's
   data faults applied:

   - a Drop never publishes (and never will — the export was lost);
   - a Delay holds the publication back until the heal phase, and —
     because the board enforces monotone epochs per router — every
     later epoch of the same router queues behind it;
   - a Duplicate publishes twice and the board must reject the copy.

   The walk is idempotent (already-published pairs are skipped), so
   the crash-retry loop can simply run it again after a crash at the
   "board.publish" site; [emitted] keeps fault events from being
   recorded twice across such retries. *)

let blocked plan ~router ~epoch =
  let rec go e = e <= epoch && (Fault.delayed plan ~router ~epoch:e || go (e + 1)) in
  go 0

let emit_once emitted ~kind ~router ~epoch =
  if not (Hashtbl.mem emitted (kind, router, epoch)) then begin
    Hashtbl.replace emitted (kind, router, epoch) ();
    Event.emit ~router ~epoch ~track:"fault" kind
  end

let publish_pair board db ~router_id ~epoch =
  let records = Db.window db ~router_id ~epoch in
  Board.publish board records ~router_id ~epoch

let attempt_duplicate emitted board db ~plan ~emit ~router_id ~epoch =
  if Fault.duplicated plan ~router:router_id ~epoch
     && not (Hashtbl.mem emitted ("fault.duplicate.done", router_id, epoch))
  then begin
    if emit then emit_once emitted ~kind:"fault.duplicate" ~router:router_id ~epoch;
    match publish_pair board db ~router_id ~epoch with
    | Ok _ ->
      Error
        (Printf.sprintf
           "chaos: board accepted a duplicate publication (router %d epoch %d)"
           router_id epoch)
    | Error _ ->
      (* The reject is the correct reaction; remember it happened so a
         crash-retry does not provoke (and count) it twice. *)
      Hashtbl.replace emitted ("fault.duplicate.done", router_id, epoch) ();
      Ok ()
  end
  else Ok ()

let publish_prompt emitted board db ~plan ~emit =
  let epochs = Db.epochs db in
  let rec per_epoch = function
    | [] -> Ok ()
    | epoch :: rest ->
      let rec per_router = function
        | [] -> per_epoch rest
        | router_id :: rs ->
          if Board.lookup board ~router_id ~epoch <> None then per_router rs
          else if Fault.dropped plan ~router:router_id ~epoch then begin
            if emit then emit_once emitted ~kind:"fault.drop" ~router:router_id ~epoch;
            per_router rs
          end
          else if blocked plan ~router:router_id ~epoch then begin
            if emit && Fault.delayed plan ~router:router_id ~epoch then
              emit_once emitted ~kind:"fault.delay" ~router:router_id ~epoch;
            per_router rs
          end
          else
            let* _ = publish_pair board db ~router_id ~epoch in
            let* () = attempt_duplicate emitted board db ~plan ~emit ~router_id ~epoch in
            per_router rs
      in
      per_router (Db.routers_for db ~epoch)
  in
  per_epoch epochs

(* Deliver everything the delay faults held back, per router in epoch
   order (the board insists). Also idempotent. *)
let publish_held emitted board db ~plan ~emit =
  let epochs = Db.epochs db in
  let rec per_epoch = function
    | [] -> Ok ()
    | epoch :: rest ->
      let rec per_router = function
        | [] -> per_epoch rest
        | router_id :: rs ->
          if
            Board.lookup board ~router_id ~epoch <> None
            || Fault.dropped plan ~router:router_id ~epoch
            || not (blocked plan ~router:router_id ~epoch)
          then per_router rs
          else
            let* _ = publish_pair board db ~router_id ~epoch in
            let* () = attempt_duplicate emitted board db ~plan ~emit ~router_id ~epoch in
            per_router rs
      in
      per_router (Db.routers_for db ~epoch)
  in
  per_epoch epochs

(* ---- aggregation phase (shared by twin and chaos runs) ---- *)

let aggregate_uncovered service db =
  let covered = Prover_service.covered_epochs service in
  let rec go = function
    | [] -> Ok ()
    | epoch :: rest ->
      if List.mem epoch covered then go rest
      else
        let* _ = Prover_service.aggregate_available service ~epoch in
        go rest
  in
  go (Db.epochs db)

(* ---- the uninterrupted twin ----

   Same records, same data faults (they shape {e what} is available to
   aggregate), but no crashes, no storage corruption: the clean-room
   control run. Safety's acid test is that the chaos run's final CLog
   root is bit-identical to this one. When the flight recorder is on,
   the twin records into an isolated ring ({!Event.isolate}) — its
   events feed the "clean runs don't trip the SLOs" assertion without
   ever polluting the chaos run's log. *)
let twin_root ~cfg ~plan db =
  let body () =
    let emitted = Hashtbl.create 16 in
    let board = Board.create () in
    let service =
      Prover_service.create
        ~proof_params:(Zkflow_zkproof.Params.make ~queries:cfg.queries)
        ~db ~board ()
    in
    let* () = publish_prompt emitted board db ~plan ~emit:false in
    let* () = aggregate_uncovered service db in
    let* () = publish_held emitted board db ~plan ~emit:false in
    let* _ = Prover_service.heal service in
    Ok (Prover_service.latest_root service)
  in
  if Obs.on () then begin
    let result, twin_events = Event.isolate body in
    Result.map (fun root -> (root, twin_events)) result
  end
  else Result.map (fun root -> (root, [])) (body ())

(* ---- storage corruption while the prover is down ---- *)

let apply_storage_fault ~seed ~serial path = function
  | Fault.Torn_write { target = "checkpoint"; drop_bytes } ->
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      let keep = max 0 (size - drop_bytes) in
      let data = really_input_string ic keep in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      Event.emit ~track:"fault" "fault.torn_write"
        ~attrs:
          [
            ("target", Jsonx.Str "checkpoint");
            ("bytes", Jsonx.Num (float_of_int (size - keep)));
          ]
    end
  | Fault.Bit_flip { target = "checkpoint" } ->
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      let data = Bytes.create size in
      really_input ic data 0 size;
      close_in ic;
      if size > 0 then begin
        let rng = Rng.create (Int64.of_int (0xf11b + seed + (131 * serial))) in
        let byte = Rng.int rng size and bit = Rng.int rng 8 in
        Bytes.set data byte
          (Char.chr (Char.code (Bytes.get data byte) lxor (1 lsl bit)));
        let oc = open_out_bin path in
        output_bytes oc data;
        close_out oc;
        Event.emit ~track:"fault" "fault.bit_flip"
          ~attrs:
            [
              ("target", Jsonx.Str "checkpoint");
              ("byte", Jsonx.Num (float_of_int byte));
              ("bit", Jsonx.Num (float_of_int bit));
            ]
      end
    end
  | _ -> ()

(* ---- the chaos run ---- *)

exception Recovery_failed of string

let run ?dir ?(config = default_config) ~plan () =
  let cfg = config in
  let dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      d
    | None ->
      let d = Filename.temp_file "zkflow-chaos" "" in
      Sys.remove d;
      Sys.mkdir d 0o755;
      d
  in
  let ckpt_path = Filename.concat dir "checkpoints.wal" in
  if Sys.file_exists ckpt_path then Sys.remove ckpt_path;
  let db, packets, records =
    simulate ~cfg ~seed:plan.Fault.seed ~wal_path:(Filename.concat dir "rlogs.wal")
  in
  let proof_params = Zkflow_zkproof.Params.make ~queries:cfg.queries in
  (* Control run first, before any fault is armed. *)
  let* twin, twin_events = twin_root ~cfg ~plan db in
  (* Now the chaos. *)
  Fault.install plan;
  let emitted = Hashtbl.create 16 in
  let board = Board.create () in
  let crashes = ref 0 and resumes = ref 0 and restored = ref 0 in
  let service = ref (Prover_service.create ~proof_params ~db ~board ()) in
  Prover_service.with_checkpoints !service ~path:ckpt_path;
  let storage_queue = ref (Fault.storage_faults plan) in
  let serial = ref 0 in
  (* Kill/restart loop: a Fault.Crash anywhere inside [step] plays the
     process dying — the in-memory service is abandoned (its unsynced
     checkpoint buffer lost), at most one pending storage fault
     corrupts the checkpoint file "while the process is down", and
     resume rebuilds a fresh service from disk. [step] bodies are
     idempotent against the recovered state, so re-running them picks
     up exactly where the synced history ends. Resume itself runs
     inside the protection: a crash site armed inside recovery (e.g.
     "atomic.pre_rename" during compaction) triggers another
     restart. *)
  let rec step name f =
    match f !service with
    | result -> result
    | exception Fault.Crash _site ->
      incr crashes;
      if !crashes > cfg.max_restarts then
        Error (Printf.sprintf "chaos: %s: exceeded %d restarts" name cfg.max_restarts)
      else begin
        Prover_service.abandon !service;
        (match !storage_queue with
        | [] -> ()
        | fault :: rest ->
          storage_queue := rest;
          incr serial;
          apply_storage_fault ~seed:plan.Fault.seed ~serial:!serial ckpt_path fault);
        (match
           try
             Prover_service.resume ~proof_params ~db ~board ~path:ckpt_path ()
           with Fault.Crash _ ->
             (* Died again during recovery; count it and go around. *)
             Error "crashed during resume"
         with
        | Ok (s, n) ->
          incr resumes;
          restored := n;
          service := s
        | Error e ->
          if e <> "crashed during resume" then raise (Recovery_failed e)
          else incr crashes);
        step name f
      end
  in
  let result =
    try
      let* () = step "publish" (fun _ -> publish_prompt emitted board db ~plan ~emit:true) in
      let* () = step "aggregate" (fun s -> aggregate_uncovered s db) in
      let* () = step "deliver" (fun _ -> publish_held emitted board db ~plan ~emit:true) in
      let* _ = step "heal" (fun s -> Prover_service.heal s) in
      Ok ()
    with Recovery_failed e -> Error ("chaos: resume failed: " ^ e)
  in
  Fault.clear ();
  let* () = result in
  let service = !service in
  (* Verification: every receipt must verify against its claimed
     coverage from public data only, the history must be honest about
     its holes (no silent loss), and the final root must be
     bit-identical to the uninterrupted twin's. *)
  let covered_rounds =
    List.map2
      (fun (cov : Prover_service.coverage) (round : Aggregate.round) ->
        {
          Verifier_client.epoch = cov.Prover_service.epoch;
          routers = cov.Prover_service.routers;
          degraded = cov.Prover_service.degraded;
          heal = cov.Prover_service.heal;
          receipt = round.Aggregate.receipt;
        })
      (Prover_service.coverage service)
      (Prover_service.rounds service)
  in
  let open_gaps = Prover_service.open_gaps service in
  let verified =
    Verifier_client.verify_coverage ~board ~gaps:open_gaps covered_rounds
  in
  let final = Prover_service.latest_root service in
  let safety_ok = Result.is_ok verified && D.equal final twin in
  (* Liveness: the run ended with every window either verified or
     explicitly degraded — an open gap is legitimate only for an
     export the plan destroyed (a Drop); anything else still missing
     means the pipeline lost data it was given. *)
  let liveness_ok =
    Result.is_ok verified
    && List.for_all
         (fun (router, epoch) -> Fault.dropped plan ~router ~epoch)
         open_gaps
  in
  let coverage = Prover_service.coverage service in
  (* SLO cross-check: every injected fault must trip the objective
     watching the surface it wounds (drops/delays -> coverage,
     duplicates -> board-integrity, crashes -> prover-restarts), while
     the uninterrupted twin may only fire what its shared data faults
     legitimately cause — never the crash/restart objectives, and
     nothing at all under a fault-free plan. Both lists are derived
     from recorded events, so with the flight recorder off they are
     empty and the check is vacuous. *)
  let chaos_events = Event.events () in
  let slo_expected = Slo.expected_for chaos_events in
  let slo_fired = Slo.firing_names (Slo.evaluate chaos_events) in
  let slo_ok = List.for_all (fun n -> List.mem n slo_fired) slo_expected in
  let twin_slo_fired = Slo.firing_names (Slo.evaluate twin_events) in
  let twin_allowed =
    List.filter (fun n -> n = "coverage" || n = "board-integrity") slo_expected
  in
  let twin_slo_ok =
    List.for_all (fun n -> List.mem n twin_allowed) twin_slo_fired
  in
  (* Leave artifacts behind for `zkflow stats` / `monitor`: the public
     board and the saved service state, both written atomically. *)
  Zkflow_store.Wal.write_file_atomic
    (Filename.concat dir "board.txt")
    (Bytes.of_string (Board.export board));
  Zkflow_store.Wal.write_file_atomic
    (Filename.concat dir "service.bin")
    (Prover_service.save service);
  Ok
    {
      plan;
      status = (if open_gaps = [] then Complete else Degraded);
      packets;
      records;
      epochs = List.length (Db.epochs db);
      rounds = List.length coverage;
      heal_rounds =
        List.length
          (List.filter (fun (c : Prover_service.coverage) -> c.Prover_service.heal) coverage);
      crashes = !crashes;
      resumes = !resumes;
      restored_rounds = !restored;
      open_gaps;
      final_root = D.to_hex final;
      twin_root = D.to_hex twin;
      safety_ok;
      liveness_ok;
      slo_expected;
      slo_fired;
      slo_ok;
      twin_slo_fired;
      twin_slo_ok;
    }

(* ---- reporting ---- *)

let status_string = function Complete -> "complete" | Degraded -> "degraded"

let to_json r =
  let num n = Jsonx.Num (float_of_int n) in
  Jsonx.Obj
    [
      ("plan", Fault.plan_to_json r.plan);
      ("status", Jsonx.Str (status_string r.status));
      ("packets", num r.packets);
      ("records", num r.records);
      ("epochs", num r.epochs);
      ("rounds", num r.rounds);
      ("heal_rounds", num r.heal_rounds);
      ("crashes", num r.crashes);
      ("resumes", num r.resumes);
      ("restored_rounds", num r.restored_rounds);
      ( "open_gaps",
        Jsonx.Arr
          (List.map
             (fun (router, epoch) ->
               Jsonx.Obj [ ("router", num router); ("epoch", num epoch) ])
             r.open_gaps) );
      ("final_root", Jsonx.Str r.final_root);
      ("twin_root", Jsonx.Str r.twin_root);
      ("safety_ok", Jsonx.Bool r.safety_ok);
      ("liveness_ok", Jsonx.Bool r.liveness_ok);
      ("slo_expected", Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.slo_expected));
      ("slo_fired", Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.slo_fired));
      ("slo_ok", Jsonx.Bool r.slo_ok);
      ( "twin_slo_fired",
        Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.twin_slo_fired) );
      ("twin_slo_ok", Jsonx.Bool r.twin_slo_ok);
    ]

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "chaos plan %S (seed %d): %d fault(s)@," r.plan.Fault.name
    r.plan.Fault.seed
    (List.length r.plan.Fault.faults);
  Format.fprintf fmt "traffic: %d packets -> %d records over %d epoch(s)@," r.packets
    r.records r.epochs;
  Format.fprintf fmt "prover: %d round(s) (%d heal), %d crash(es), %d resume(s), %d restored@,"
    r.rounds r.heal_rounds r.crashes r.resumes r.restored_rounds;
  (match r.open_gaps with
  | [] -> Format.fprintf fmt "gaps: none open@,"
  | gs ->
    Format.fprintf fmt "gaps: %d open (%s)@," (List.length gs)
      (String.concat ", "
         (List.map (fun (router, ep) -> Printf.sprintf "r%d/e%d" router ep) gs)));
  Format.fprintf fmt "final root: %s@," (String.sub r.final_root 0 16);
  Format.fprintf fmt "twin root:  %s@," (String.sub r.twin_root 0 16);
  (if r.slo_expected <> [] || r.slo_fired <> [] || r.twin_slo_fired <> [] then
     let names = function [] -> "none" | l -> String.concat "," l in
     Format.fprintf fmt
       "slo: expected [%s] fired [%s] -> %s; twin fired [%s] -> %s@,"
       (names r.slo_expected) (names r.slo_fired)
       (if r.slo_ok then "OK" else "MISSED")
       (names r.twin_slo_fired)
       (if r.twin_slo_ok then "OK" else "SPURIOUS"));
  Format.fprintf fmt "safety: %s, liveness: %s -> %s@]"
    (if r.safety_ok then "OK" else "VIOLATED")
    (if r.liveness_ok then "OK" else "VIOLATED")
    (status_string r.status)
