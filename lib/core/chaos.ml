module Db = Zkflow_store.Db
module Epoch = Zkflow_store.Epoch
module Board = Zkflow_commitlog.Board
module Gen = Zkflow_netflow.Gen
module Topology = Zkflow_netflow.Topology
module Rng = Zkflow_util.Rng
module Jsonx = Zkflow_util.Jsonx
module Fault = Zkflow_fault.Fault
module Event = Zkflow_obs.Event
module Obs = Zkflow_obs.Obs
module D = Zkflow_hash.Digest32

type config = {
  routers : int;
  flows : int;
  rate_pps : float;
  duration_ms : int;
  loss_rate : float;
  queries : int;
  max_restarts : int;
}

let default_config =
  {
    routers = 3;
    flows = 8;
    rate_pps = 30.;
    duration_ms = 11_000;
    loss_rate = 0.;
    queries = 8;
    max_restarts = 40;
  }

type status = Complete | Degraded

type report = {
  plan : Fault.plan;
  status : status;
  packets : int;
  records : int;
  epochs : int;
  rounds : int;
  heal_rounds : int;
  crashes : int;
  resumes : int;
  restored_rounds : int;
  open_gaps : (int * int) list;
  final_root : string;
  twin_root : string;
  safety_ok : bool;
  liveness_ok : bool;
  slo_expected : string list;
  slo_fired : string list;
  slo_ok : bool;
  twin_slo_fired : string list;
  twin_slo_ok : bool;
}

let ( let* ) = Result.bind

(* ---- deterministic traffic ---- *)

let simulate ~cfg ~seed ~wal_path =
  let db =
    Db.create ~wal_path ~epoch:(Epoch.make ~interval_ms:5000) ()
  in
  let rng = Rng.create (Int64.of_int seed) in
  let profile = { Gen.default_profile with Gen.flow_count = cfg.flows } in
  let flow_keys = Gen.flows rng profile in
  let packets =
    Gen.packets rng profile ~flows:flow_keys ~rate_pps:cfg.rate_pps
      ~duration_ms:cfg.duration_ms
  in
  (* Short active timeout: flows export mid-run, so the traffic spreads
     over several epochs — the fault grid (drops/delays at epoch > 0)
     needs real windows to hit. *)
  let topology =
    Topology.linear
      (List.init cfg.routers (fun id ->
           {
             Zkflow_netflow.Router.id;
             active_timeout_ms = 3_000;
             inactive_timeout_ms = 1_500;
             sampling_interval = 1;
           }))
  in
  let losses = Array.make cfg.routers cfg.loss_rate in
  let records = ref 0 in
  let drain exports =
    List.iter
      (fun (_, recs) ->
        List.iter
          (fun r ->
            incr records;
            Db.insert db r)
          recs)
      exports
  in
  (* Pump the timeout clock while injecting: without periodic expiry
     every flow would sit in the cache until the final flush and the
     whole run would collapse into one epoch. *)
  let tick_ms = 1_000 in
  let next_tick = ref tick_ms in
  List.iter
    (fun (p : Zkflow_netflow.Packet.t) ->
      while p.Zkflow_netflow.Packet.ts >= !next_tick do
        drain (Topology.expire topology ~now:!next_tick);
        next_tick := !next_tick + tick_ms
      done;
      Topology.inject topology ~rng ~loss_rate:losses p)
    packets;
  drain (Topology.flush topology ~now:cfg.duration_ms);
  Db.sync db;
  (db, List.length packets, !records)

(* ---- publication phase ----

   Routers publish epoch by epoch, router by router, with the plan's
   data faults applied:

   - a Drop never publishes (and never will — the export was lost);
   - a Delay holds the publication back until the heal phase, and —
     because the board enforces monotone epochs per router — every
     later epoch of the same router queues behind it;
   - a Duplicate publishes twice and the board must reject the copy.

   The walk is idempotent (already-published pairs are skipped), so
   the crash-retry loop can simply run it again after a crash at the
   "board.publish" site; [emitted] keeps fault events from being
   recorded twice across such retries. *)

let blocked plan ~router ~epoch =
  let rec go e = e <= epoch && (Fault.delayed plan ~router ~epoch:e || go (e + 1)) in
  go 0

let emit_once emitted ~kind ~router ~epoch =
  if not (Hashtbl.mem emitted (kind, router, epoch)) then begin
    Hashtbl.replace emitted (kind, router, epoch) ();
    Event.emit ~router ~epoch ~track:"fault" kind
  end

let publish_pair board db ~router_id ~epoch =
  let records = Db.window db ~router_id ~epoch in
  Board.publish board records ~router_id ~epoch

let attempt_duplicate emitted board db ~plan ~emit ~router_id ~epoch =
  if Fault.duplicated plan ~router:router_id ~epoch
     && not (Hashtbl.mem emitted ("fault.duplicate.done", router_id, epoch))
  then begin
    if emit then emit_once emitted ~kind:"fault.duplicate" ~router:router_id ~epoch;
    match publish_pair board db ~router_id ~epoch with
    | Ok _ ->
      Error
        (Printf.sprintf
           "chaos: board accepted a duplicate publication (router %d epoch %d)"
           router_id epoch)
    | Error _ ->
      (* The reject is the correct reaction; remember it happened so a
         crash-retry does not provoke (and count) it twice. *)
      Hashtbl.replace emitted ("fault.duplicate.done", router_id, epoch) ();
      Ok ()
  end
  else Ok ()

let publish_prompt emitted board db ~plan ~emit =
  let epochs = Db.epochs db in
  let rec per_epoch = function
    | [] -> Ok ()
    | epoch :: rest ->
      let rec per_router = function
        | [] -> per_epoch rest
        | router_id :: rs ->
          if Board.lookup board ~router_id ~epoch <> None then per_router rs
          else if Fault.dropped plan ~router:router_id ~epoch then begin
            if emit then emit_once emitted ~kind:"fault.drop" ~router:router_id ~epoch;
            per_router rs
          end
          else if blocked plan ~router:router_id ~epoch then begin
            if emit && Fault.delayed plan ~router:router_id ~epoch then
              emit_once emitted ~kind:"fault.delay" ~router:router_id ~epoch;
            per_router rs
          end
          else
            let* _ = publish_pair board db ~router_id ~epoch in
            let* () = attempt_duplicate emitted board db ~plan ~emit ~router_id ~epoch in
            per_router rs
      in
      per_router (Db.routers_for db ~epoch)
  in
  per_epoch epochs

(* Deliver everything the delay faults held back, per router in epoch
   order (the board insists). Also idempotent. *)
let publish_held emitted board db ~plan ~emit =
  let epochs = Db.epochs db in
  let rec per_epoch = function
    | [] -> Ok ()
    | epoch :: rest ->
      let rec per_router = function
        | [] -> per_epoch rest
        | router_id :: rs ->
          if
            Board.lookup board ~router_id ~epoch <> None
            || Fault.dropped plan ~router:router_id ~epoch
            || not (blocked plan ~router:router_id ~epoch)
          then per_router rs
          else
            let* _ = publish_pair board db ~router_id ~epoch in
            let* () = attempt_duplicate emitted board db ~plan ~emit ~router_id ~epoch in
            per_router rs
      in
      per_router (Db.routers_for db ~epoch)
  in
  per_epoch epochs

(* ---- aggregation phase (shared by twin and chaos runs) ---- *)

let aggregate_uncovered service db =
  let covered = Prover_service.covered_epochs service in
  let rec go = function
    | [] -> Ok ()
    | epoch :: rest ->
      if List.mem epoch covered then go rest
      else
        let* _ = Prover_service.aggregate_available service ~epoch in
        go rest
  in
  go (Db.epochs db)

(* ---- the uninterrupted twin ----

   Same records, same data faults (they shape {e what} is available to
   aggregate), but no crashes, no storage corruption: the clean-room
   control run. Safety's acid test is that the chaos run's final CLog
   root is bit-identical to this one. When the flight recorder is on,
   the twin records into an isolated ring ({!Event.isolate}) — its
   events feed the "clean runs don't trip the SLOs" assertion without
   ever polluting the chaos run's log. *)
let twin_root ~cfg ~plan db =
  let body () =
    let emitted = Hashtbl.create 16 in
    let board = Board.create () in
    let service =
      Prover_service.create
        ~proof_params:(Zkflow_zkproof.Params.make ~queries:cfg.queries)
        ~db ~board ()
    in
    let* () = publish_prompt emitted board db ~plan ~emit:false in
    let* () = aggregate_uncovered service db in
    let* () = publish_held emitted board db ~plan ~emit:false in
    let* _ = Prover_service.heal service in
    Ok (Prover_service.latest_root service)
  in
  if Obs.on () then begin
    let result, twin_events = Event.isolate body in
    Result.map (fun root -> (root, twin_events)) result
  end
  else Result.map (fun root -> (root, [])) (body ())

(* ---- storage corruption while the prover is down ---- *)

let apply_storage_fault ~seed ~serial path = function
  | Fault.Torn_write { target = "checkpoint"; drop_bytes } ->
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      let keep = max 0 (size - drop_bytes) in
      let data = really_input_string ic keep in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      Event.emit ~track:"fault" "fault.torn_write"
        ~attrs:
          [
            ("target", Jsonx.Str "checkpoint");
            ("bytes", Jsonx.Num (float_of_int (size - keep)));
          ]
    end
  | Fault.Bit_flip { target = "checkpoint" } ->
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      let data = Bytes.create size in
      really_input ic data 0 size;
      close_in ic;
      if size > 0 then begin
        let rng = Rng.create (Int64.of_int (0xf11b + seed + (131 * serial))) in
        let byte = Rng.int rng size and bit = Rng.int rng 8 in
        Bytes.set data byte
          (Char.chr (Char.code (Bytes.get data byte) lxor (1 lsl bit)));
        let oc = open_out_bin path in
        output_bytes oc data;
        close_out oc;
        Event.emit ~track:"fault" "fault.bit_flip"
          ~attrs:
            [
              ("target", Jsonx.Str "checkpoint");
              ("byte", Jsonx.Num (float_of_int byte));
              ("bit", Jsonx.Num (float_of_int bit));
            ]
      end
    end
  | _ -> ()

(* ---- the chaos run ---- *)

exception Recovery_failed of string

let run ?dir ?(config = default_config) ~plan () =
  let cfg = config in
  let dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      d
    | None ->
      let d = Filename.temp_file "zkflow-chaos" "" in
      Sys.remove d;
      Sys.mkdir d 0o755;
      d
  in
  let ckpt_path = Filename.concat dir "checkpoints.wal" in
  if Sys.file_exists ckpt_path then Sys.remove ckpt_path;
  let db, packets, records =
    simulate ~cfg ~seed:plan.Fault.seed ~wal_path:(Filename.concat dir "rlogs.wal")
  in
  let proof_params = Zkflow_zkproof.Params.make ~queries:cfg.queries in
  (* Control run first, before any fault is armed. *)
  let* twin, twin_events = twin_root ~cfg ~plan db in
  (* Now the chaos. *)
  Fault.install plan;
  let emitted = Hashtbl.create 16 in
  let board = Board.create () in
  let crashes = ref 0 and resumes = ref 0 and restored = ref 0 in
  let service = ref (Prover_service.create ~proof_params ~db ~board ()) in
  Prover_service.with_checkpoints !service ~path:ckpt_path;
  let storage_queue = ref (Fault.storage_faults plan) in
  let serial = ref 0 in
  (* Kill/restart loop: a Fault.Crash anywhere inside [step] plays the
     process dying — the in-memory service is abandoned (its unsynced
     checkpoint buffer lost), at most one pending storage fault
     corrupts the checkpoint file "while the process is down", and
     resume rebuilds a fresh service from disk. [step] bodies are
     idempotent against the recovered state, so re-running them picks
     up exactly where the synced history ends. Resume itself runs
     inside the protection: a crash site armed inside recovery (e.g.
     "atomic.pre_rename" during compaction) triggers another
     restart. *)
  let rec step name f =
    match f !service with
    | result -> result
    | exception Fault.Crash _site ->
      incr crashes;
      if !crashes > cfg.max_restarts then
        Error (Printf.sprintf "chaos: %s: exceeded %d restarts" name cfg.max_restarts)
      else begin
        Prover_service.abandon !service;
        (match !storage_queue with
        | [] -> ()
        | fault :: rest ->
          storage_queue := rest;
          incr serial;
          apply_storage_fault ~seed:plan.Fault.seed ~serial:!serial ckpt_path fault);
        (match
           try
             Prover_service.resume ~proof_params ~db ~board ~path:ckpt_path ()
           with Fault.Crash _ ->
             (* Died again during recovery; count it and go around. *)
             Error "crashed during resume"
         with
        | Ok (s, n) ->
          incr resumes;
          restored := n;
          service := s
        | Error e ->
          if e <> "crashed during resume" then raise (Recovery_failed e)
          else incr crashes);
        step name f
      end
  in
  let result =
    try
      let* () = step "publish" (fun _ -> publish_prompt emitted board db ~plan ~emit:true) in
      let* () = step "aggregate" (fun s -> aggregate_uncovered s db) in
      let* () = step "deliver" (fun _ -> publish_held emitted board db ~plan ~emit:true) in
      let* _ = step "heal" (fun s -> Prover_service.heal s) in
      Ok ()
    with Recovery_failed e -> Error ("chaos: resume failed: " ^ e)
  in
  Fault.clear ();
  let* () = result in
  let service = !service in
  (* Verification: every receipt must verify against its claimed
     coverage from public data only, the history must be honest about
     its holes (no silent loss), and the final root must be
     bit-identical to the uninterrupted twin's. *)
  let covered_rounds =
    List.map2
      (fun (cov : Prover_service.coverage) (round : Aggregate.round) ->
        {
          Verifier_client.epoch = cov.Prover_service.epoch;
          routers = cov.Prover_service.routers;
          degraded = cov.Prover_service.degraded;
          heal = cov.Prover_service.heal;
          receipt = round.Aggregate.receipt;
        })
      (Prover_service.coverage service)
      (Prover_service.rounds service)
  in
  let open_gaps = Prover_service.open_gaps service in
  let verified =
    Verifier_client.verify_coverage ~board ~gaps:open_gaps covered_rounds
  in
  let final = Prover_service.latest_root service in
  let safety_ok = Result.is_ok verified && D.equal final twin in
  (* Liveness: the run ended with every window either verified or
     explicitly degraded — an open gap is legitimate only for an
     export the plan destroyed (a Drop); anything else still missing
     means the pipeline lost data it was given. *)
  let liveness_ok =
    Result.is_ok verified
    && List.for_all
         (fun (router, epoch) -> Fault.dropped plan ~router ~epoch)
         open_gaps
  in
  let coverage = Prover_service.coverage service in
  (* SLO cross-check: every injected fault must trip the objective
     watching the surface it wounds (drops/delays -> coverage,
     duplicates -> board-integrity, crashes -> prover-restarts), while
     the uninterrupted twin may only fire what its shared data faults
     legitimately cause — never the crash/restart objectives, and
     nothing at all under a fault-free plan. Both lists are derived
     from recorded events, so with the flight recorder off they are
     empty and the check is vacuous. *)
  let chaos_events = Event.events () in
  let slo_expected = Slo.expected_for chaos_events in
  let slo_fired = Slo.firing_names (Slo.evaluate chaos_events) in
  let slo_ok = List.for_all (fun n -> List.mem n slo_fired) slo_expected in
  let twin_slo_fired = Slo.firing_names (Slo.evaluate twin_events) in
  let twin_allowed =
    List.filter (fun n -> n = "coverage" || n = "board-integrity") slo_expected
  in
  let twin_slo_ok =
    List.for_all (fun n -> List.mem n twin_allowed) twin_slo_fired
  in
  (* Leave artifacts behind for `zkflow stats` / `monitor`: the public
     board and the saved service state, both written atomically. *)
  Zkflow_store.Wal.write_file_atomic
    (Filename.concat dir "board.txt")
    (Bytes.of_string (Board.export board));
  Zkflow_store.Wal.write_file_atomic
    (Filename.concat dir "service.bin")
    (Prover_service.save service);
  Ok
    {
      plan;
      status = (if open_gaps = [] then Complete else Degraded);
      packets;
      records;
      epochs = List.length (Db.epochs db);
      rounds = List.length coverage;
      heal_rounds =
        List.length
          (List.filter (fun (c : Prover_service.coverage) -> c.Prover_service.heal) coverage);
      crashes = !crashes;
      resumes = !resumes;
      restored_rounds = !restored;
      open_gaps;
      final_root = D.to_hex final;
      twin_root = D.to_hex twin;
      safety_ok;
      liveness_ok;
      slo_expected;
      slo_fired;
      slo_ok;
      twin_slo_fired;
      twin_slo_ok;
    }

(* ---- daemon-mode chaos ----

   The same twin-run discipline, but the pipeline under test is the
   resident {!Daemon} instead of the batch step sequence. The daemon
   runs with [publish = false]: the harness plays the routers against
   the board exactly as the batch run does (same [publish_prompt] /
   [publish_held] / [attempt_duplicate] walks), so every data fault
   keeps its batch semantics — a Drop is a publication destroyed, a
   Delay is one held to the heal phase, a Duplicate is a board-level
   reject — and the roots stay comparable to the {e batch} twin over
   the same records.

   Kills come from two directions: crash sites inside the worker
   thread surface as [`Crashed] from {!Daemon.await_idle}, and crash
   sites on harness-driven board walks (["board.publish"]) raise in
   the harness thread, which then kills the parked daemon to model the
   whole process dying. Either way recovery is the same supervised
   path a real [zkflow serve] restart takes: at most one queued
   storage fault corrupts the checkpoint WAL "while the process is
   down", then {!Daemon.restart} resumes from disk (recursing on a
   crash inside recovery itself). Every per-epoch step is idempotent
   against recovered state — re-submitted windows come back
   [Duplicate], republished pairs are skipped — so the schedule simply
   re-runs after each death. *)

type daemon_report = {
  base : report;
  submitted : int;      (** window exports the harness offered *)
  accepted : int;       (** admitted by the bounded queue *)
  shed : int;           (** rejected-newest (flood phase) *)
  duplicates : int;     (** re-offered windows turned away *)
  drains : int;
  breaker_opens : int;
  flood_windows : int;  (** 0 when the plan has no [Flood] *)
  flood_shed : int;
  flood_ok : bool;      (** sheds exactly [windows - capacity], and the
                            flood daemon's own coverage verifies *)
}

exception Daemon_wedged of string

let run_daemon ?dir ?(config = default_config) ~plan () =
  let cfg = config in
  let dir =
    match dir with
    | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      d
    | None ->
      let d = Filename.temp_file "zkflow-chaos" "" in
      Sys.remove d;
      Sys.mkdir d 0o755;
      d
  in
  let ckpt_path = Filename.concat dir "checkpoints.wal" in
  if Sys.file_exists ckpt_path then Sys.remove ckpt_path;
  let db_sim, packets, records =
    simulate ~cfg ~seed:plan.Fault.seed ~wal_path:(Filename.concat dir "rlogs.wal")
  in
  let proof_params = Zkflow_zkproof.Params.make ~queries:cfg.queries in
  (* The control run is the *batch* twin over the same records: the
     daemon must not only survive its kills, it must attest the exact
     history the non-resident pipeline would have. *)
  let* twin, twin_events = twin_root ~cfg ~plan db_sim in
  let dcfg =
    {
      Daemon.default_config with
      Daemon.publish = false;
      retry_sleep = (fun (_ : float) -> ());
    }
  in
  let db = Db.create ~epoch:(Epoch.make ~interval_ms:5000) () in
  let board = Board.create () in
  let* d = Daemon.create ~config:dcfg ~proof_params ~db ~board ~ckpt_path () in
  let d, _ = d in
  Fault.install plan;
  let emitted = Hashtbl.create 16 in
  let crashes = ref 0 and resumes = ref 0 and restored = ref 0 in
  let submitted = ref 0 in
  let storage_queue = ref (Fault.storage_faults plan) in
  let serial = ref 0 in
  let budget_ok () = !crashes <= cfg.max_restarts in
  (* Recovery after a death: one storage fault while "down", then a
     supervised restart — looping when recovery itself is killed. *)
  let rec recover () =
    if not (budget_ok ()) then
      Error (Printf.sprintf "chaos: exceeded %d restarts" cfg.max_restarts)
    else begin
      (match !storage_queue with
      | [] -> ()
      | fault :: rest ->
        storage_queue := rest;
        incr serial;
        apply_storage_fault ~seed:plan.Fault.seed ~serial:!serial ckpt_path fault);
      match Daemon.restart d with
      | Ok n ->
        incr resumes;
        restored := n;
        Ok ()
      | Error "crashed during resume" ->
        incr crashes;
        recover ()
      | Error e -> Error ("chaos: resume failed: " ^ e)
    end
  in
  (* A worker death shows up as [`Crashed]; rethrow it as the same
     {!Fault.Crash} a harness-side site raises so [step] handles both
     identically ({!Daemon.kill} on an already-crashed daemon is a
     no-op join). *)
  let settle () =
    match Daemon.await_idle d with
    | `Idle -> ()
    | `Crashed site -> raise (Fault.Crash site)
  in
  let offer ~router_id ~epoch =
    let recs = Array.to_list (Db.window db_sim ~router_id ~epoch) in
    incr submitted;
    match Daemon.submit_wait d ~router_id ~epoch recs with
    | Daemon.Accepted | Daemon.Duplicate -> ()
    | Daemon.Shed -> raise (Daemon_wedged "submit_wait shed a window")
    | Daemon.Closed -> (
      match Daemon.crashed d with
      | Some site -> raise (Fault.Crash site)
      | None -> raise (Daemon_wedged "intake closed under a running harness"))
  in
  let rec step name f =
    match f () with
    | Ok v -> Ok v
    | Error e -> Error e
    | exception Fault.Crash site ->
      incr crashes;
      if not (budget_ok ()) then
        Error (Printf.sprintf "chaos: %s: exceeded %d restarts" name cfg.max_restarts)
      else begin
        Daemon.kill d ~site;
        let* () = recover () in
        step name f
      end
  in
  (* Per-epoch schedule: ingest the epoch's windows, publish on the
     routers' behalf, close the epoch, let the worker prove it. *)
  let epoch_step epoch () =
    List.iter (fun router_id -> offer ~router_id ~epoch) (Db.routers_for db_sim ~epoch);
    settle ();
    let* () = publish_prompt emitted board db_sim ~plan ~emit:true in
    Daemon.advance d ~epoch;
    settle ();
    Ok ()
  in
  let rec drain_loop () =
    match Daemon.drain d with
    | Ok () -> Ok ()
    | Error e -> (
      match Daemon.crashed d with
      | None -> Error e
      | Some _ ->
        incr crashes;
        if not (budget_ok ()) then
          Error (Printf.sprintf "chaos: drain: exceeded %d restarts" cfg.max_restarts)
        else
          let* () = recover () in
          drain_loop ())
  in
  let result =
    try
      let rec epochs_loop = function
        | [] -> Ok ()
        | epoch :: rest ->
          let* () = step "epoch" (epoch_step epoch) in
          epochs_loop rest
      in
      let* () = epochs_loop (Db.epochs db_sim) in
      (* Deliver what the delays held back, then drain: the heal
         rounds happen inside the drain — which is exactly where the
         kill-during-drain plans aim. *)
      let* () = step "deliver" (fun () -> publish_held emitted board db_sim ~plan ~emit:true) in
      drain_loop ()
    with Daemon_wedged e -> Error ("chaos: " ^ e)
  in
  Fault.clear ();
  let main_counters = Daemon.counters d in
  (* ---- flood phase: overload burst against a parked throwaway
     daemon (its own store/board/WAL — accepted flood windows must
     never leak into the twin-compared history above) ---- *)
  let* flood_windows, flood_shed, flood_ok =
    match (result, Fault.flood plan) with
    | Error _, _ | _, None -> Ok (0, 0, true)
    | Ok (), Some (windows, capacity) ->
      Event.emit ~track:"fault" "fault.flood"
        ~attrs:
          [
            ("windows", Jsonx.Num (float_of_int windows));
            ("capacity", Jsonx.Num (float_of_int capacity));
          ];
      let fdb = Db.create ~epoch:(Epoch.make ~interval_ms:5000) () in
      let fboard = Board.create () in
      let fckpt = Filename.concat dir "flood-checkpoints.wal" in
      if Sys.file_exists fckpt then Sys.remove fckpt;
      let fcfg = { dcfg with Daemon.publish = true; queue_capacity = capacity } in
      let* fd =
        Daemon.create ~config:fcfg ~proof_params ~paused:true ~db:fdb ~board:fboard
          ~ckpt_path:fckpt ()
      in
      let fd, _ = fd in
      let rng = Rng.create (Int64.of_int (0xf100d + plan.Fault.seed)) in
      let shed = ref 0 in
      (* One window per epoch, all at a parked worker: admission is a
         pure queue race, so exactly [windows - capacity] must shed. *)
      for i = 0 to windows - 1 do
        let recs =
          Gen.records rng Gen.default_profile ~router_id:0 ~count:2
          |> Array.to_list
          |> List.map (fun (r : Zkflow_netflow.Record.t) ->
                 Zkflow_netflow.Record.make ~key:r.Zkflow_netflow.Record.key
                   ~first_ts:(i * 5000)
                   ~last_ts:((i * 5000) + 100)
                   ~router_id:0 r.Zkflow_netflow.Record.metrics)
        in
        match Daemon.submit fd ~router_id:0 ~epoch:i recs with
        | Daemon.Accepted -> ()
        | Daemon.Shed -> incr shed
        | Daemon.Duplicate | Daemon.Closed ->
          incr shed (* impossible here; count it so flood_ok fails loudly *)
      done;
      Daemon.unpause fd;
      Daemon.advance fd ~epoch:(windows - 1);
      let flood_result = Daemon.drain fd in
      let fservice = Daemon.service fd in
      let fcovered =
        List.map2
          (fun (cov : Prover_service.coverage) (round : Aggregate.round) ->
            {
              Verifier_client.epoch = cov.Prover_service.epoch;
              routers = cov.Prover_service.routers;
              degraded = cov.Prover_service.degraded;
              heal = cov.Prover_service.heal;
              receipt = round.Aggregate.receipt;
            })
          (Prover_service.coverage fservice)
          (Prover_service.rounds fservice)
      in
      let fverified =
        Verifier_client.verify_coverage ~board:fboard
          ~gaps:(Prover_service.open_gaps fservice)
          fcovered
      in
      Daemon.stop fd;
      let ok =
        Result.is_ok flood_result
        && Result.is_ok fverified
        && !shed = max 0 (windows - capacity)
      in
      Ok (windows, !shed, ok)
  in
  let* () =
    match result with
    | Ok () -> Ok ()
    | Error e ->
      Daemon.stop d;
      Error e
  in
  let service = Daemon.service d in
  let covered_rounds =
    List.map2
      (fun (cov : Prover_service.coverage) (round : Aggregate.round) ->
        {
          Verifier_client.epoch = cov.Prover_service.epoch;
          routers = cov.Prover_service.routers;
          degraded = cov.Prover_service.degraded;
          heal = cov.Prover_service.heal;
          receipt = round.Aggregate.receipt;
        })
      (Prover_service.coverage service)
      (Prover_service.rounds service)
  in
  let open_gaps = Prover_service.open_gaps service in
  let verified =
    Verifier_client.verify_coverage ~board ~gaps:open_gaps covered_rounds
  in
  let final = Prover_service.latest_root service in
  let safety_ok = Result.is_ok verified && D.equal final twin in
  let liveness_ok =
    Result.is_ok verified
    && List.for_all
         (fun (router, epoch) -> Fault.dropped plan ~router ~epoch)
         open_gaps
  in
  let coverage = Prover_service.coverage service in
  let chaos_events = Event.events () in
  let slo_expected = Slo.expected_for chaos_events in
  let slo_fired = Slo.firing_names (Slo.evaluate chaos_events) in
  let slo_ok = List.for_all (fun n -> List.mem n slo_fired) slo_expected in
  let twin_slo_fired = Slo.firing_names (Slo.evaluate twin_events) in
  let twin_allowed =
    List.filter (fun n -> n = "coverage" || n = "board-integrity") slo_expected
  in
  let twin_slo_ok =
    List.for_all (fun n -> List.mem n twin_allowed) twin_slo_fired
  in
  Zkflow_store.Wal.write_file_atomic
    (Filename.concat dir "board.txt")
    (Bytes.of_string (Board.export board));
  Zkflow_store.Wal.write_file_atomic
    (Filename.concat dir "service.bin")
    (Prover_service.save service);
  Daemon.stop d;
  Ok
    {
      base =
        {
          plan;
          status = (if open_gaps = [] then Complete else Degraded);
          packets;
          records;
          epochs = List.length (Db.epochs db_sim);
          rounds = List.length coverage;
          heal_rounds =
            List.length
              (List.filter
                 (fun (c : Prover_service.coverage) -> c.Prover_service.heal)
                 coverage);
          crashes = !crashes;
          resumes = !resumes;
          restored_rounds = !restored;
          open_gaps;
          final_root = D.to_hex final;
          twin_root = D.to_hex twin;
          safety_ok;
          liveness_ok;
          slo_expected;
          slo_fired;
          slo_ok;
          twin_slo_fired;
          twin_slo_ok;
        };
      submitted = !submitted;
      accepted = main_counters.Daemon.accepted;
      shed = main_counters.Daemon.shed + flood_shed;
      duplicates = main_counters.Daemon.duplicates;
      drains = main_counters.Daemon.drains;
      breaker_opens = main_counters.Daemon.breaker_opens;
      flood_windows;
      flood_shed;
      flood_ok;
    }

(* ---- reporting ---- *)

let status_string = function Complete -> "complete" | Degraded -> "degraded"

let to_json r =
  let num n = Jsonx.Num (float_of_int n) in
  Jsonx.Obj
    [
      ("plan", Fault.plan_to_json r.plan);
      ("status", Jsonx.Str (status_string r.status));
      ("packets", num r.packets);
      ("records", num r.records);
      ("epochs", num r.epochs);
      ("rounds", num r.rounds);
      ("heal_rounds", num r.heal_rounds);
      ("crashes", num r.crashes);
      ("resumes", num r.resumes);
      ("restored_rounds", num r.restored_rounds);
      ( "open_gaps",
        Jsonx.Arr
          (List.map
             (fun (router, epoch) ->
               Jsonx.Obj [ ("router", num router); ("epoch", num epoch) ])
             r.open_gaps) );
      ("final_root", Jsonx.Str r.final_root);
      ("twin_root", Jsonx.Str r.twin_root);
      ("safety_ok", Jsonx.Bool r.safety_ok);
      ("liveness_ok", Jsonx.Bool r.liveness_ok);
      ("slo_expected", Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.slo_expected));
      ("slo_fired", Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.slo_fired));
      ("slo_ok", Jsonx.Bool r.slo_ok);
      ( "twin_slo_fired",
        Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.twin_slo_fired) );
      ("twin_slo_ok", Jsonx.Bool r.twin_slo_ok);
    ]

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "chaos plan %S (seed %d): %d fault(s)@," r.plan.Fault.name
    r.plan.Fault.seed
    (List.length r.plan.Fault.faults);
  Format.fprintf fmt "traffic: %d packets -> %d records over %d epoch(s)@," r.packets
    r.records r.epochs;
  Format.fprintf fmt "prover: %d round(s) (%d heal), %d crash(es), %d resume(s), %d restored@,"
    r.rounds r.heal_rounds r.crashes r.resumes r.restored_rounds;
  (match r.open_gaps with
  | [] -> Format.fprintf fmt "gaps: none open@,"
  | gs ->
    Format.fprintf fmt "gaps: %d open (%s)@," (List.length gs)
      (String.concat ", "
         (List.map (fun (router, ep) -> Printf.sprintf "r%d/e%d" router ep) gs)));
  Format.fprintf fmt "final root: %s@," (String.sub r.final_root 0 16);
  Format.fprintf fmt "twin root:  %s@," (String.sub r.twin_root 0 16);
  (if r.slo_expected <> [] || r.slo_fired <> [] || r.twin_slo_fired <> [] then
     let names = function [] -> "none" | l -> String.concat "," l in
     Format.fprintf fmt
       "slo: expected [%s] fired [%s] -> %s; twin fired [%s] -> %s@,"
       (names r.slo_expected) (names r.slo_fired)
       (if r.slo_ok then "OK" else "MISSED")
       (names r.twin_slo_fired)
       (if r.twin_slo_ok then "OK" else "SPURIOUS"));
  Format.fprintf fmt "safety: %s, liveness: %s -> %s@]"
    (if r.safety_ok then "OK" else "VIOLATED")
    (if r.liveness_ok then "OK" else "VIOLATED")
    (status_string r.status)

let daemon_to_json r =
  let num n = Jsonx.Num (float_of_int n) in
  match to_json r.base with
  | Jsonx.Obj fields ->
    Jsonx.Obj
      (("mode", Jsonx.Str "daemon")
       :: fields
      @ [
          ( "daemon",
            Jsonx.Obj
              [
                ("submitted", num r.submitted);
                ("accepted", num r.accepted);
                ("shed", num r.shed);
                ("duplicates", num r.duplicates);
                ("drains", num r.drains);
                ("breaker_opens", num r.breaker_opens);
                ("flood_windows", num r.flood_windows);
                ("flood_shed", num r.flood_shed);
                ("flood_ok", Jsonx.Bool r.flood_ok);
              ] );
        ])
  | v -> v

let pp_daemon fmt r =
  Format.fprintf fmt "@[<v>%a@," pp r.base;
  Format.fprintf fmt "daemon: %d window(s) offered, %d accepted, %d shed, %d duplicate(s)@,"
    r.submitted r.accepted r.shed r.duplicates;
  Format.fprintf fmt "daemon: %d drain(s), breaker opened %d time(s)@," r.drains
    r.breaker_opens;
  if r.flood_windows > 0 then
    Format.fprintf fmt "flood: %d window(s) -> %d shed -> %s@," r.flood_windows
      r.flood_shed
      (if r.flood_ok then "OK" else "VIOLATED")
  else Format.fprintf fmt "flood: (no flood in plan)@,";
  Format.fprintf fmt "@]"
