module Event = Zkflow_obs.Event
module Jsonx = Zkflow_util.Jsonx

type window = {
  w_name : string;
  long_s : float;
  short_s : float;
  burn_threshold : float;
}

type spec = {
  slo_name : string;
  good : string list;
  bad : string list;
  target : float;
  windows : window list;
}

type window_eval = {
  window : window;
  long_burn : float;
  short_burn : float;
  w_firing : bool;
}

type cause = {
  cause_kind : string;
  cause_router : int option;
  cause_epoch : int option;
  cause_round : int option;
}

type alert = {
  spec : spec;
  good_count : int;
  bad_count : int;
  window_evals : window_eval list;
  firing : bool;
  causes : cause list;
}

(* SRE-canonical multi-window multi-burn-rate pairs: the fast pair
   (1 h long, 5 m short) catches a budget burning 14.4x too fast —
   i.e. the whole 30-day budget inside ~2 days — within minutes; the
   slow pair (6 h long, 30 m short) catches a 6x slow bleed. The short
   window is the de-bounce: both windows must burn, so an alert stops
   firing minutes after the cause does. *)
let default_windows =
  [
    { w_name = "fast"; long_s = 3600.; short_s = 300.; burn_threshold = 14.4 };
    { w_name = "slow"; long_s = 21600.; short_s = 1800.; burn_threshold = 6.0 };
  ]

(* Glob match on event kinds: '*' crosses any substring, so
   "verifier.*.accept" covers every per-check accept kind. The first
   segment is anchored at the start, the last at the end, the middle
   ones must appear in order in between. *)
let kind_matches pattern kind =
  match String.split_on_char '*' pattern with
  | [ exact ] -> exact = kind
  | segs ->
    let klen = String.length kind in
    let rec go first idx = function
      | [] -> true
      | [ seg ] ->
        let sl = String.length seg in
        klen - sl >= idx
        && String.sub kind (klen - sl) sl = seg
        && (not first || sl = klen)
      | seg :: rest ->
        let sl = String.length seg in
        if first then
          klen >= sl && String.sub kind 0 sl = seg && go false sl rest
        else begin
          let rec find j =
            if j + sl > klen then None
            else if String.sub kind j sl = seg then Some (j + sl)
            else find (j + 1)
          in
          match find idx with None -> false | Some j -> go false j rest
        end
    in
    go true 0 segs

let matches_any patterns kind = List.exists (fun p -> kind_matches p kind) patterns

(* The default objectives ladder one spec onto each failure surface
   the flight recorder distinguishes; all judge symptoms (what the
   pipeline did), never the injected-fault markers themselves, so they
   hold for production logs that contain no "fault.*" events at all. *)
let default_specs =
  [
    {
      slo_name = "coverage";
      good = [ "board.publish" ];
      bad = [ "prover.gap.open" ];
      target = 0.999;
      windows = default_windows;
    };
    {
      slo_name = "board-integrity";
      good = [ "board.publish" ];
      bad = [ "board.reject" ];
      target = 0.999;
      windows = default_windows;
    };
    {
      slo_name = "prover-errors";
      good = [ "prover.round.done"; "prover.query.done" ];
      bad = [ "prover.round.error"; "prover.query.error" ];
      target = 0.999;
      windows = default_windows;
    };
    {
      slo_name = "prover-restarts";
      good = [ "prover.round.done" ];
      bad = [ "prover.resume" ];
      target = 0.999;
      windows = default_windows;
    };
    {
      slo_name = "verifier-acceptance";
      good = [ "verifier.*.accept" ];
      bad = [ "verifier.reject" ];
      target = 0.999;
      windows = default_windows;
    };
    {
      slo_name = "ingest-admission";
      good = [ "daemon.ingest.accept" ];
      bad = [ "daemon.ingest.shed"; "daemon.ingest.duplicate" ];
      target = 0.999;
      windows = default_windows;
    };
  ]

(* ---- evaluation ---- *)

let count_in events ~from_ns ~to_ns patterns =
  List.fold_left
    (fun acc (e : Event.t) ->
      if e.Event.ts_ns >= from_ns && e.Event.ts_ns <= to_ns
         && matches_any patterns e.Event.kind
      then acc + 1
      else acc)
    0 events

(* burn = bad_fraction / error_budget. With target 0.999 the budget is
   0.001: one bad event per thousand good ones is burn 1.0 (exactly
   sustainable); a 10% bad fraction is burn 100. No traffic in the
   window means nothing burned. *)
let burn_rate ~target ~good ~bad =
  let total = good + bad in
  if total = 0 then 0.
  else
    let bad_fraction = float_of_int bad /. float_of_int total in
    let budget = 1. -. target in
    if budget <= 0. then if bad > 0 then infinity else 0.
    else bad_fraction /. budget

let eval_window ~now_ns ~start_ns events spec w =
  (* Short runs have less history than the window asks for; clamping
     to the log's own span keeps burn rates meaningful (the fraction
     is over what actually happened) instead of silently empty. *)
  let window_from span_s =
    max start_ns (now_ns - int_of_float (span_s *. 1e9))
  in
  let rate span_s =
    let from_ns = window_from span_s in
    let good = count_in events ~from_ns ~to_ns:now_ns spec.good in
    let bad = count_in events ~from_ns ~to_ns:now_ns spec.bad in
    burn_rate ~target:spec.target ~good ~bad
  in
  let long_burn = rate w.long_s in
  let short_burn = rate w.short_s in
  {
    window = w;
    long_burn;
    short_burn;
    w_firing = long_burn >= w.burn_threshold && short_burn >= w.burn_threshold;
  }

let causes_of events spec =
  let all =
    List.filter_map
      (fun (e : Event.t) ->
        if matches_any spec.bad e.Event.kind then
          Some
            {
              cause_kind = e.Event.kind;
              cause_router = e.Event.router;
              cause_epoch = e.Event.epoch;
              cause_round = e.Event.round;
            }
        else None)
      events
  in
  (* Keep the first few: enough to name the culprits, bounded output. *)
  List.filteri (fun i _ -> i < 8) all

let eval_spec ~now_ns ~start_ns events spec =
  let window_evals = List.map (eval_window ~now_ns ~start_ns events spec) spec.windows in
  let firing = List.exists (fun we -> we.w_firing) window_evals in
  {
    spec;
    good_count = count_in events ~from_ns:start_ns ~to_ns:now_ns spec.good;
    bad_count = count_in events ~from_ns:start_ns ~to_ns:now_ns spec.bad;
    window_evals;
    firing;
    causes = (if firing then causes_of events spec else []);
  }

let evaluate ?(specs = default_specs) events =
  let now_ns =
    List.fold_left (fun acc (e : Event.t) -> max acc e.Event.ts_ns) 0 events
  in
  let start_ns =
    List.fold_left (fun acc (e : Event.t) -> min acc e.Event.ts_ns) now_ns events
  in
  List.map (eval_spec ~now_ns ~start_ns events) specs

let firing alerts = List.filter (fun a -> a.firing) alerts
let firing_names alerts = List.map (fun a -> a.spec.slo_name) (firing alerts)

(* ---- what a chaos plan should trip ----

   Injected data faults map onto the objective that watches the
   surface they wound: destroyed/stalled exports open coverage gaps,
   duplicates provoke board rejects, crashes force prover resumes.
   Derived from the fault events the run actually emitted (not the
   plan), so a fault that never hit a live window is not expected to
   fire anything. *)
let expected_for events =
  let expected =
    List.filter_map
      (fun (e : Event.t) ->
        match e.Event.kind with
        | "fault.drop" | "fault.delay" -> Some "coverage"
        | "fault.duplicate" -> Some "board-integrity"
        | "fault.crash" -> Some "prover-restarts"
        | "fault.flood" -> Some "ingest-admission"
        | _ -> None)
      events
  in
  List.sort_uniq String.compare expected

(* ---- parsing specs from JSON ---- *)

let num_field k v =
  match Jsonx.member k v with Some (Jsonx.Num f) -> Some f | _ -> None

let str_list_field k v =
  match Jsonx.member k v with
  | Some (Jsonx.Arr l) ->
    Some (List.filter_map (function Jsonx.Str s -> Some s | _ -> None) l)
  | _ -> None

let window_of_json v =
  match
    (Jsonx.member "name" v, num_field "long_s" v, num_field "short_s" v, num_field "burn" v)
  with
  | Some (Jsonx.Str w_name), Some long_s, Some short_s, Some burn_threshold ->
    Ok { w_name; long_s; short_s; burn_threshold }
  | _ -> Error "slo: window needs name, long_s, short_s, burn"

let spec_of_json v =
  match (Jsonx.member "name" v, str_list_field "good" v, str_list_field "bad" v) with
  | Some (Jsonx.Str slo_name), Some good, Some bad ->
    let target = Option.value ~default:0.999 (num_field "target" v) in
    if target <= 0. || target >= 1. then
      Error (Printf.sprintf "slo: %s: target must be in (0,1)" slo_name)
    else
      let windows =
        match Jsonx.member "windows" v with
        | Some (Jsonx.Arr ws) ->
          List.fold_left
            (fun acc w ->
              match (acc, window_of_json w) with
              | Ok ws, Ok w -> Ok (w :: ws)
              | (Error _ as e), _ -> e
              | _, (Error _ as e) -> e)
            (Ok []) ws
          |> Result.map List.rev
        | None -> Ok default_windows
        | Some _ -> Error "slo: windows must be an array"
      in
      Result.map
        (fun windows -> { slo_name; good; bad; target; windows })
        windows
  | _ -> Error "slo: spec needs string name and good/bad kind arrays"

let load_specs path =
  if not (Sys.file_exists path) then Error (path ^ ": not found")
  else begin
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Jsonx.parse text with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok (Jsonx.Arr specs) ->
      List.fold_left
        (fun acc v ->
          match (acc, spec_of_json v) with
          | Ok ss, Ok s -> Ok (s :: ss)
          | (Error _ as e), _ -> e
          | _, Error e -> Error (Printf.sprintf "%s: %s" path e))
        (Ok []) specs
      |> Result.map List.rev
    | Ok _ -> Error (path ^ ": expected a JSON array of SLO specs")
  end

(* ---- rendering ---- *)

let cause_json c =
  let opt k v = Option.map (fun n -> (k, Jsonx.Num (float_of_int n))) v in
  Jsonx.Obj
    (("kind", Jsonx.Str c.cause_kind)
    :: List.filter_map Fun.id
         [ opt "router" c.cause_router; opt "epoch" c.cause_epoch; opt "round" c.cause_round ])

let alert_json a =
  let num n = Jsonx.Num n in
  Jsonx.Obj
    [
      ("name", Jsonx.Str a.spec.slo_name);
      ("target", num a.spec.target);
      ("good", num (float_of_int a.good_count));
      ("bad", num (float_of_int a.bad_count));
      ( "windows",
        Jsonx.Arr
          (List.map
             (fun we ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.Str we.window.w_name);
                   ("long_s", num we.window.long_s);
                   ("short_s", num we.window.short_s);
                   ("threshold", num we.window.burn_threshold);
                   ("long_burn", num we.long_burn);
                   ("short_burn", num we.short_burn);
                   ("firing", Jsonx.Bool we.w_firing);
                 ])
             a.window_evals) );
      ("firing", Jsonx.Bool a.firing);
      ("causes", Jsonx.Arr (List.map cause_json a.causes));
    ]

let to_json alerts =
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "zkflow-slo/v1");
      ("alerts", Jsonx.Arr (List.map alert_json alerts));
      ("firing", Jsonx.Arr (List.map (fun n -> Jsonx.Str n) (firing_names alerts)));
      ("ok", Jsonx.Bool (firing alerts = []));
    ]

let pp fmt alerts =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun a ->
      Format.fprintf fmt "%-20s target %.4f  good %d  bad %d  %s@," a.spec.slo_name
        a.spec.target a.good_count a.bad_count
        (if a.firing then "FIRING" else "ok");
      List.iter
        (fun we ->
          Format.fprintf fmt "  %-6s burn long %.1f / short %.1f (threshold %.1f)%s@,"
            we.window.w_name we.long_burn we.short_burn we.window.burn_threshold
            (if we.w_firing then "  <- firing" else ""))
        a.window_evals;
      List.iter
        (fun c ->
          Format.fprintf fmt "  cause: %s%s%s%s@," c.cause_kind
            (match c.cause_router with Some r -> Printf.sprintf " router=%d" r | None -> "")
            (match c.cause_epoch with Some e -> Printf.sprintf " epoch=%d" e | None -> "")
            (match c.cause_round with Some r -> Printf.sprintf " round=%d" r | None -> ""))
        a.causes)
    alerts;
  Format.fprintf fmt "slo: %s@]"
    (match firing_names alerts with
    | [] -> "all objectives met"
    | names -> "FIRING: " ^ String.concat ", " names)
