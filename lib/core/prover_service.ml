module Db = Zkflow_store.Db
module Wal = Zkflow_store.Wal
module Board = Zkflow_commitlog.Board
module Commitment = Zkflow_commitlog.Commitment
module Obs = Zkflow_obs
module Jsonx = Zkflow_util.Jsonx
module Rng = Zkflow_util.Rng
module Fault = Zkflow_fault.Fault
module D = Zkflow_hash.Digest32

type gap = {
  router_id : int;
  epoch : int;
  detected_round : int;
  healed_round : int option;
}

type coverage = { epoch : int; routers : int list; degraded : bool; heal : bool }

type outcome =
  | Complete of Aggregate.round
  | Degraded of Aggregate.round * gap list
  | Skipped of gap list

type checkpointer = { path : string; mutable wal : Wal.t }

type t = {
  proof_params : Zkflow_zkproof.Params.t;
  db : Db.t;
  board : Board.t;
  retry_rng : Rng.t;
  mutable clog : Clog.t;
  mutable rounds_rev : Aggregate.round list;
  mutable coverage_rev : coverage list;
  mutable gaps : gap list; (* oldest first *)
  mutable ckpt : checkpointer option;
}

let create ?(proof_params = Zkflow_zkproof.Params.default) ~db ~board () =
  {
    proof_params;
    db;
    board;
    retry_rng = Rng.create 0xbac0ffL;
    clog = Clog.empty;
    rounds_rev = [];
    coverage_rev = [];
    gaps = [];
    ckpt = None;
  }

let clog t = t.clog
let proof_params t = t.proof_params
let rounds t = List.rev t.rounds_rev
let coverage t = List.rev t.coverage_rev
let latest_root t = Clog.root t.clog
let gaps t = t.gaps

let open_gaps t =
  List.filter_map
    (fun (g : gap) -> if g.healed_round = None then Some (g.router_id, g.epoch) else None)
    t.gaps

let covered_epochs t =
  List.filter_map (fun c -> if c.heal then None else Some c.epoch) (coverage t)
  |> List.sort_uniq Int.compare

let ( let* ) = Result.bind

(* Pre-prove gate: every proving path runs the static analyzer over the
   guest first and refuses to spend cycles on a defective program, or
   on one whose proven cycle bound exceeds what the machine would ever
   execute (override with ZKFLOW_NO_ANALYZE=1). Reports are memoized
   per image ID, so the per-round cost after the first call is one
   hash lookup. *)
let gate ~subject program =
  Zkflow_analysis.gate ~subject
    ~budget:Zkflow_zkvm.Machine.default_max_cycles program

let prove_custom ?(proof_params = Zkflow_zkproof.Params.default)
    ?(subject = "custom guest") program ~input =
  let* () = gate ~subject program in
  Zkflow_zkproof.Prove.prove ~params:proof_params program ~input

type publish_report = { published : Commitment.t list; skipped : int list }

(* Idempotent: a partially-published epoch (the process died after
   some routers' publications landed) re-runs cleanly — pairs already
   on the board are skipped and reported, never re-attempted, so the
   board's reject path is reserved for genuine protocol violations. *)
let publish_epoch t ~epoch =
  let rec go pub skipped = function
    | [] -> Ok { published = List.rev pub; skipped = List.rev skipped }
    | router_id :: rest -> (
      match Board.lookup t.board ~router_id ~epoch with
      | Some _ -> go pub (router_id :: skipped) rest
      | None ->
        let records = Db.window t.db ~router_id ~epoch in
        let* c = Board.publish t.board records ~router_id ~epoch in
        go (c :: pub) skipped rest)
  in
  go [] [] (Db.routers t.db)

(* Epochs the routers have materialized but the service has not yet
   aggregated — the service's backlog, reported on every round event
   so a health report can plot queue depth over time. *)
let queue_depth t =
  max 0 (List.length (Db.epochs t.db) - List.length (covered_epochs t))

(* ---- checkpoint rows ----

   One WAL row per aggregation round: coverage metadata, the receipt,
   the post-round CLog entries, the guest cycle count, a snapshot of
   the gap journal, and (since v2) a compact snapshot of the CLog's
   Merkle node store, all behind a SHA-256 checksum so recovery can
   tell a bit-flipped row from an honest one. A torn tail (partial
   row) is already dropped by Wal.replay; a corrupt row drops itself
   and everything after it, and the dropped suffix is re-proved. The
   node snapshot keeps resume incremental: without it, the restored
   CLog would silently fall back to a full O(n) tree rebuild, and
   every round after the restart would re-pay it. *)

module Wire = Zkflow_util.Wire

let ckpt_magic = "zkflow.ckpt.v2"
let ckpt_magic_v1 = "zkflow.ckpt.v1"

let w_entries w clog =
  Wire.w_array w
    (fun (e : Clog.entry) ->
      Array.iter (fun word -> Wire.w_int w word) (Clog.entry_words e))
    (Clog.entries clog)

let r_entry_array r =
  Wire.r_array r (fun () ->
      let words = Array.init 8 (fun _ -> Wire.r_int r) in
      match Clog.entry_of_words words with
      | Ok e -> e
      | Error msg -> raise (Wire.Decode msg))

let r_entries r =
  match Clog.of_entries (r_entry_array r) with
  | Ok clog -> clog
  | Error msg -> raise (Wire.Decode msg)

let w_coverage w (c : coverage) =
  Wire.w_int w c.epoch;
  Wire.w_list w (fun r -> Wire.w_int w r) c.routers;
  Wire.w_bool w c.degraded;
  Wire.w_bool w c.heal

let r_coverage r =
  let epoch = Wire.r_int r in
  let routers = Wire.r_list r (fun () -> Wire.r_int r) in
  let degraded = Wire.r_bool r in
  let heal = Wire.r_bool r in
  { epoch; routers; degraded; heal }

let w_gap w (g : gap) =
  Wire.w_int w g.router_id;
  Wire.w_int w g.epoch;
  Wire.w_int w g.detected_round;
  match g.healed_round with
  | None -> Wire.w_bool w false
  | Some ix ->
    Wire.w_bool w true;
    Wire.w_int w ix

let r_gap r =
  let router_id = Wire.r_int r in
  let epoch = Wire.r_int r in
  let detected_round = Wire.r_int r in
  let healed_round = if Wire.r_bool r then Some (Wire.r_int r) else None in
  { router_id; epoch; detected_round; healed_round }

let restore_round receipt_bytes round_clog cycles =
  let receipt =
    match Zkflow_zkproof.Receipt.decode receipt_bytes with
    | Ok receipt -> receipt
    | Error msg -> raise (Wire.Decode msg)
  in
  let journal =
    match
      Guests.parse_aggregation_journal
        receipt.Zkflow_zkproof.Receipt.claim.Zkflow_zkproof.Receipt.journal
    with
    | Ok j -> j
    | Error msg -> raise (Wire.Decode msg)
  in
  {
    Aggregate.receipt;
    journal;
    clog = round_clog;
    cycles;
    execute_s = 0.;
    prove_s = 0.;
    restored = true;
  }

let encode_ckpt_row ~cov ~gaps (round : Aggregate.round) =
  let w = Wire.writer () in
  Wire.w_string w ckpt_magic;
  w_coverage w cov;
  Wire.w_bytes w (Zkflow_zkproof.Receipt.encode round.Aggregate.receipt);
  w_entries w round.Aggregate.clog;
  Wire.w_int w round.Aggregate.cycles;
  Wire.w_list w (w_gap w) gaps;
  (* v2: the post-round Merkle node store, verbatim. The row checksum
     below covers it, so the restore can adopt the nodes without
     re-hashing a single leaf. *)
  Wire.w_bytes w (Clog.tree_snapshot round.Aggregate.clog);
  let payload = Wire.contents w in
  Bytes.cat (D.to_bytes (D.hash_bytes payload)) payload

let decode_ckpt_row row =
  if Bytes.length row < 32 then Error "checkpoint row: too short"
  else begin
    let digest = Bytes.sub row 0 32 in
    let payload = Bytes.sub row 32 (Bytes.length row - 32) in
    if not (D.equal (D.of_bytes digest) (D.hash_bytes payload)) then
      Error "checkpoint row: checksum mismatch"
    else
      Wire.decode payload (fun r ->
          let magic = Wire.r_string r in
          if magic <> ckpt_magic && magic <> ckpt_magic_v1 then
            raise (Wire.Decode "checkpoint row: bad magic");
          let cov = r_coverage r in
          let receipt_bytes = Wire.r_bytes r in
          let entries = r_entry_array r in
          let cycles = Wire.r_int r in
          let gaps = Wire.r_list r (fun () -> r_gap r) in
          let round_clog =
            if magic = ckpt_magic then
              (* v2: adopt the persisted node store — no rebuild. *)
              match Clog.of_entries_with_snapshot entries ~snapshot:(Wire.r_bytes r) with
              | Ok clog -> clog
              | Error msg -> raise (Wire.Decode msg)
            else
              (* v1 rows predate node snapshots; the restored CLog
                 rebuilds its tree lazily (cold resume). *)
              match Clog.of_entries entries with
              | Ok clog -> clog
              | Error msg -> raise (Wire.Decode msg)
          in
          (cov, restore_round receipt_bytes round_clog cycles, gaps))
  end

let with_checkpoints t ~path = t.ckpt <- Some { path; wal = Wal.open_log path }

let checkpoint_path t = Option.map (fun c -> c.path) t.ckpt

let abandon t =
  match t.ckpt with
  | None -> ()
  | Some c -> Wal.abandon c.wal

let checkpoint_append t ~cov ~gaps round =
  match t.ckpt with
  | None -> ()
  | Some c ->
    Wal.append c.wal (encode_ckpt_row ~cov ~gaps round);
    Fault.crashpoint "ckpt.pre_sync";
    Wal.sync c.wal;
    Fault.crashpoint "ckpt.post_sync"

(* ---- aggregation rounds ---- *)

(* Transient store/board read failures (network blips between the
   off-path prover and the shared store) retry on a bounded, seeded
   exponential backoff instead of failing the round. *)
let fetch_commitment t ~router_id ~epoch =
  Fault.Retry.with_backoff ~rng:t.retry_rng
    ~label:(Printf.sprintf "fetch r%d/e%d" router_id epoch)
    (fun () ->
      let* () = Fault.failpoint "agg.fetch" in
      Ok (Board.lookup t.board ~router_id ~epoch))

let gap_known t ~router_id ~epoch =
  List.exists (fun (g : gap) -> g.router_id = router_id && g.epoch = epoch) t.gaps

(* A late-arriving export: the round for [epoch] already ran without
   [router_id] (its records were not in the store at round time, so no
   gap was recorded), and the records only showed up afterwards. The
   daemon calls this to put the pair into the gap journal so the heal
   machinery picks it up once its commitment is on the board. The gap
   reaches durable state with the next checkpoint row; until then a
   crash loses it, but detection is idempotent — the records are in
   the store, so the caller re-detects it after resume. *)
let note_gap t ~router_id ~epoch =
  if gap_known t ~router_id ~epoch then false
  else begin
    let round_ix = List.length t.rounds_rev in
    t.gaps <-
      t.gaps @ [ { router_id; epoch; detected_round = round_ix; healed_round = None } ];
    Obs.Event.emit ~router:router_id ~epoch ~round:round_ix ~track:"prover"
      "prover.gap.open";
    true
  end

(* The shared tail of every aggregation entry point: prove the round
   over [batches], checkpoint it together with its coverage record and
   the updated gap journal, then advance the in-memory state. Crash
   sites bracket the checkpoint write; recovery re-proves anything
   that did not reach a synced row, and determinism guarantees the
   re-proved round is bit-identical.

   A heal round marks its gaps healed {e inside its own checkpoint
   row}: if the marking were deferred to the next row, a crash right
   after the heal round would resume with the gaps still open and
   re-heal them — aggregating the same records twice. *)
let prove_and_commit t ~epoch ~routers ~absent ~heal batches =
  let round_ix = List.length t.rounds_rev in
  Fault.crashpoint "agg.pre_prove";
  let t_agg = Obs.Span.start () in
  let round = Aggregate.prove_round ~params:t.proof_params ~prev:t.clog batches in
  if t_agg <> 0 then
    Obs.Span.finish "round.aggregate" ~args:[ ("epoch", epoch) ] t_agg;
  let* round = round in
  let cov = { epoch; routers; degraded = absent <> []; heal } in
  let base_gaps =
    if not heal then t.gaps
    else
      List.map
        (fun (g : gap) ->
          if g.healed_round = None && g.epoch = epoch && List.mem g.router_id routers
          then { g with healed_round = Some round_ix }
          else g)
        t.gaps
  in
  let new_gaps =
    List.filter_map
      (fun router_id ->
        if gap_known t ~router_id ~epoch then None
        else Some { router_id; epoch; detected_round = round_ix; healed_round = None })
      absent
  in
  let gaps' = base_gaps @ new_gaps in
  Fault.crashpoint "agg.pre_checkpoint";
  checkpoint_append t ~cov ~gaps:gaps' round;
  Fault.crashpoint "agg.post_checkpoint";
  t.clog <- round.Aggregate.clog;
  t.rounds_rev <- round :: t.rounds_rev;
  t.coverage_rev <- cov :: t.coverage_rev;
  t.gaps <- gaps';
  List.iter
    (fun (g : gap) ->
      Obs.Event.emit ~router:g.router_id ~epoch ~round:round_ix ~track:"prover"
        "prover.gap.open")
    new_gaps;
  Ok (round, new_gaps)

(* The per-round latency histograms the time-series sampler snapshots:
   these are what turn "each round took N ns" into a queryable history
   ([monitor]'s round-latency trend, the /metrics window percentiles). *)
let h_round_ns = Obs.Metric.histogram "prover.round_ns"
let h_prove_ns = Obs.Metric.histogram "prover.prove_ns"

let round_done_event t ~epoch ~round_ix ~covered ~missing ~heal
    (round : Aggregate.round) =
  let prove_ns = int_of_float (Float.round (round.Aggregate.prove_s *. 1e9)) in
  let execute_ns = int_of_float (Float.round (round.Aggregate.execute_s *. 1e9)) in
  Obs.Metric.observe h_round_ns (prove_ns + execute_ns);
  Obs.Metric.observe h_prove_ns prove_ns;
  Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.done"
    ~attrs:
      [
        ("cycles", Jsonx.Num (float_of_int round.Aggregate.cycles));
        ("entries", Jsonx.Num (float_of_int (Clog.length round.Aggregate.clog)));
        ("prove_ns", Jsonx.Num (Float.round (round.Aggregate.prove_s *. 1e9)));
        ("execute_ns", Jsonx.Num (Float.round (round.Aggregate.execute_s *. 1e9)));
        ("queue_depth", Jsonx.Num (float_of_int (queue_depth t)));
        ("covered", Jsonx.Num (float_of_int covered));
        ("missing", Jsonx.Num (float_of_int missing));
        ("heal", Jsonx.Num (if heal then 1. else 0.));
      ]

let fetch_batches t ~epoch routers =
  let t_fetch = Obs.Span.start () in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | router_id :: rest -> (
      let* c = fetch_commitment t ~router_id ~epoch in
      match c with
      | None ->
        Error
          (Printf.sprintf
             "aggregate: router %d has no published commitment for epoch %d"
             router_id epoch)
      | Some c ->
        let records = Db.window t.db ~router_id ~epoch in
        collect ((c.Commitment.batch, records) :: acc) rest)
  in
  let batches = collect [] routers in
  if t_fetch <> 0 then Obs.Span.finish "round.fetch" t_fetch;
  batches

let gate_aggregation () =
  let t_gate = Obs.Span.start () in
  let gated =
    gate ~subject:"aggregation guest" (Lazy.force Guests.aggregation_program)
  in
  if t_gate <> 0 then Obs.Span.finish "round.gate" t_gate;
  gated

(* Strict mode: every router known to the store must have published —
   the pre-chaos contract, still the right default for `zkflow prove`
   over a fully-simulated state directory. *)
let aggregate_epoch t ~epoch =
  let round_ix = List.length t.rounds_rev in
  Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.start"
    ~attrs:[ ("queue_depth", Jsonx.Num (float_of_int (queue_depth t))) ];
  let result =
    let routers = Db.routers t.db in
    let* batches = fetch_batches t ~epoch routers in
    let* () = gate_aggregation () in
    let* round, _ = prove_and_commit t ~epoch ~routers ~absent:[] ~heal:false batches in
    Ok round
  in
  match result with
  | Error e ->
    Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.error"
      ~attrs:[ ("detail", Jsonx.Str e) ];
    Error e
  | Ok round ->
    round_done_event t ~epoch ~round_ix
      ~covered:(List.length (Db.routers t.db))
      ~missing:0 ~heal:false round;
    Ok round

(* Degraded mode: the round proceeds over the routers whose commitment
   is actually on the board; everyone else becomes a named entry in
   the gap journal, to be folded in by a later heal round. The service
   keeps making progress while a router lags — the paper's off-path
   decoupling taken seriously. *)
let aggregate_available t ~epoch =
  let round_ix = List.length t.rounds_rev in
  Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.start"
    ~attrs:[ ("queue_depth", Jsonx.Num (float_of_int (queue_depth t))) ];
  let expected = Db.routers_for t.db ~epoch in
  let result =
    let rec split present absent = function
      | [] -> Ok (List.rev present, List.rev absent)
      | router_id :: rest ->
        let* c = fetch_commitment t ~router_id ~epoch in
        (match c with
        | Some _ -> split (router_id :: present) absent rest
        | None -> split present (router_id :: absent) rest)
    in
    let* present, absent = split [] [] expected in
    match present with
    | [] ->
      let new_gaps =
        List.filter_map
          (fun router_id ->
            if gap_known t ~router_id ~epoch then None
            else
              Some { router_id; epoch; detected_round = round_ix; healed_round = None })
          absent
      in
      t.gaps <- t.gaps @ new_gaps;
      List.iter
        (fun (g : gap) ->
          Obs.Event.emit ~router:g.router_id ~epoch ~round:round_ix ~track:"prover"
            "prover.gap.open")
        new_gaps;
      Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.skipped"
        ~attrs:[ ("missing", Jsonx.Num (float_of_int (List.length absent))) ];
      Ok (Skipped new_gaps)
    | _ ->
      let* batches = fetch_batches t ~epoch present in
      let* () = gate_aggregation () in
      let* round, new_gaps =
        prove_and_commit t ~epoch ~routers:present ~absent ~heal:false batches
      in
      round_done_event t ~epoch ~round_ix ~covered:(List.length present)
        ~missing:(List.length absent) ~heal:false round;
      if absent = [] then Ok (Complete round) else Ok (Degraded (round, new_gaps))
  in
  match result with
  | Error e ->
    Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.error"
      ~attrs:[ ("detail", Jsonx.Str e) ];
    Error e
  | ok -> ok

(* Heal: fold every straggler whose commitment has since appeared on
   the board into a catch-up round (one per epoch, ascending), and
   mark its gap healed. Gaps whose commitment is still missing stay
   open — `zkflow monitor --strict` keeps shouting about them. *)
let heal t =
  let healable =
    List.filter
      (fun (g : gap) ->
        g.healed_round = None
        && Board.lookup t.board ~router_id:g.router_id ~epoch:g.epoch <> None)
      t.gaps
  in
  let epochs =
    List.sort_uniq Int.compare (List.map (fun (g : gap) -> g.epoch) healable)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | epoch :: rest ->
      let routers =
        List.filter_map
          (fun (g : gap) -> if g.epoch = epoch then Some g.router_id else None)
          healable
        |> List.sort_uniq Int.compare
      in
      let round_ix = List.length t.rounds_rev in
      Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.start"
        ~attrs:[ ("queue_depth", Jsonx.Num (float_of_int (queue_depth t))) ];
      let result =
        let* batches = fetch_batches t ~epoch routers in
        let* () = gate_aggregation () in
        let* round, _ =
          prove_and_commit t ~epoch ~routers ~absent:[] ~heal:true batches
        in
        Ok round
      in
      (match result with
      | Error e ->
        Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.error"
          ~attrs:[ ("detail", Jsonx.Str e) ];
        Error e
      | Ok round ->
        List.iter
          (fun router_id ->
            Obs.Event.emit ~router:router_id ~epoch ~round:round_ix ~track:"prover"
              "prover.gap.heal")
          routers;
        round_done_event t ~epoch ~round_ix ~covered:(List.length routers)
          ~missing:0 ~heal:true round;
        go (round :: acc) rest)
  in
  go [] epochs

let heal_pending t =
  List.exists
    (fun (g : gap) ->
      g.healed_round = None
      && Board.lookup t.board ~router_id:g.router_id ~epoch:g.epoch <> None)
    t.gaps

(* ---- disclosure ---- *)

type disclosure = {
  indices : int list;
  entries : Clog.entry list;
  proof : Zkflow_merkle.Multiproof.t;
}

let disclose t ~keys =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | key :: rest -> (
      match Clog.find t.clog key with
      | Some (i, e) -> collect ((i, e) :: acc) rest
      | None ->
        Error
          (Format.asprintf "disclose: flow %a not in the CLog"
             Zkflow_netflow.Flowkey.pp key))
  in
  let* found = collect [] keys in
  match found with
  | [] -> Error "disclose: no keys given"
  | _ ->
    let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) found in
    let indices = List.map fst sorted in
    let entries = List.map snd sorted in
    let proof = Zkflow_merkle.Multiproof.prove (Clog.tree t.clog) indices in
    Ok { indices; entries; proof }

let query_flows t ~metric keys = Query.prove_flows ~clog:t.clog ~metric keys

(* ---- persistence ---- *)

let service_magic = "zkflow.service.v2"

let save t =
  (* A v1-loaded service has rounds but no coverage records; pad with
     neutral full-coverage entries so re-saving it round-trips. *)
  let rec pair rounds covs =
    match (rounds, covs) with
    | [], _ -> []
    | r :: rs, c :: cs -> (r, c) :: pair rs cs
    | r :: rs, [] ->
      (r, { epoch = 0; routers = []; degraded = false; heal = false })
      :: pair rs []
  in
  let w = Wire.writer () in
  Wire.w_string w service_magic;
  w_entries w t.clog;
  Wire.w_list w
    (fun ((round : Aggregate.round), cov) ->
      Wire.w_bytes w (Zkflow_zkproof.Receipt.encode round.Aggregate.receipt);
      w_entries w round.Aggregate.clog;
      Wire.w_int w round.Aggregate.cycles;
      w_coverage w cov)
    (pair (rounds t) (coverage t));
  Wire.w_list w (w_gap w) t.gaps;
  Wire.contents w

let load ?proof_params ~db ~board bytes =
  Wire.decode bytes (fun r ->
      let magic = Wire.r_string r in
      let v1 = magic = "zkflow.service.v1" in
      if (not v1) && magic <> service_magic then
        raise (Wire.Decode "service state: bad magic");
      let clog = r_entries r in
      let rounds_cov =
        Wire.r_list r (fun () ->
            let receipt_bytes = Wire.r_bytes r in
            let round_clog = r_entries r in
            let cycles = Wire.r_int r in
            let cov = if v1 then None else Some (r_coverage r) in
            (restore_round receipt_bytes round_clog cycles, cov))
      in
      let gaps = if v1 then [] else Wire.r_list r (fun () -> r_gap r) in
      let t = create ?proof_params ~db ~board () in
      t.clog <- clog;
      t.rounds_rev <- List.rev_map fst rounds_cov;
      t.coverage_rev <- List.rev (List.filter_map snd rounds_cov);
      t.gaps <- gaps;
      t)

(* v1 files interleave receipt/entries/cycles without coverage — keep
   decoding them so a pre-chaos service.bin still loads (its coverage
   list is simply empty). The saver always writes v2. *)

(* ---- crash recovery ---- *)

(* Rebuild a service from its checkpoint journal: replay the WAL (torn
   tail already dropped), keep the longest prefix of rows that pass
   their checksum and decode, and — when anything was dropped —
   compact the file down to that prefix so future appends land after
   clean data. The dropped suffix is simply re-proved: aggregation is
   deterministic, so the re-proved rounds are bit-identical to the
   ones the crash destroyed. *)
let resume ?proof_params ~db ~board ~path () =
  (* A cold start (no journal yet) is not a restart: the
     ["prover.resume"] event — what the prover-restarts SLO counts —
     is only emitted when there was a previous session's journal to
     resume over. *)
  let journal_existed = Sys.file_exists path in
  match Wal.replay path with
  | Error e -> Error ("resume: " ^ e)
  | Ok rows ->
    let file_size =
      if not (Sys.file_exists path) then 0
      else begin
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        close_in ic;
        n
      end
    in
    let rec scan good kept_bytes dropped = function
      | [] -> (List.rev good, kept_bytes, dropped)
      | row :: rest -> (
        match decode_ckpt_row row with
        | Ok decoded ->
          scan ((decoded, row) :: good) (kept_bytes + 4 + Bytes.length row) dropped rest
        | Error _ -> (List.rev good, kept_bytes, dropped + 1 + List.length rest))
    in
    let good, kept_bytes, dropped_rows = scan [] 0 0 rows in
    if kept_bytes < file_size then
      Wal.rewrite path (List.map snd good);
    let t = create ?proof_params ~db ~board () in
    List.iter
      (fun ((cov, round, gaps), _) ->
        t.clog <- round.Aggregate.clog;
        t.rounds_rev <- round :: t.rounds_rev;
        t.coverage_rev <- cov :: t.coverage_rev;
        t.gaps <- gaps)
      good;
    with_checkpoints t ~path;
    let restored = List.length good in
    if journal_existed then
      Obs.Event.emit ~track:"prover" "prover.resume"
        ~attrs:
          [
            ("restored_rounds", Jsonx.Num (float_of_int restored));
            ("dropped_rows", Jsonx.Num (float_of_int dropped_rows));
            ("open_gaps", Jsonx.Num (float_of_int (List.length (open_gaps t))));
          ];
    Ok (t, restored)

(* ---- round summaries ---- *)

type round_summary = {
  index : int;
  entries : int;
  root : string;
  cycles : int;
  execute_s : float;
  prove_s : float;
  restored : bool;
}

let summarize_round i (r : Aggregate.round) =
  {
    index = i;
    entries = Clog.length r.Aggregate.clog;
    root = Zkflow_hash.Digest32.to_hex (Clog.root r.Aggregate.clog);
    cycles = r.Aggregate.cycles;
    execute_s = r.Aggregate.execute_s;
    prove_s = r.Aggregate.prove_s;
    restored = r.Aggregate.restored;
  }

let summaries t = List.mapi summarize_round (rounds t)

let gap_json (g : gap) =
  Jsonx.Obj
    [
      ("router", Jsonx.Num (float_of_int g.router_id));
      ("epoch", Jsonx.Num (float_of_int g.epoch));
      ("detected_round", Jsonx.Num (float_of_int g.detected_round));
      ( "healed_round",
        match g.healed_round with
        | Some ix -> Jsonx.Num (float_of_int ix)
        | None -> Jsonx.Null );
    ]

let summary_json t =
  let covs = coverage t in
  let cov_at i = List.nth_opt covs i in
  let round_obj i s =
    let base =
      [
        ("index", Jsonx.Num (float_of_int s.index));
        ("entries", Jsonx.Num (float_of_int s.entries));
        ("root", Jsonx.Str s.root);
        ("cycles", Jsonx.Num (float_of_int s.cycles));
        ("execute_s", Jsonx.Num s.execute_s);
        ("prove_s", Jsonx.Num s.prove_s);
        ("restored", Jsonx.Bool s.restored);
      ]
    in
    let cov_fields =
      match cov_at i with
      | None -> []
      | Some c ->
        [
          ("epoch", Jsonx.Num (float_of_int c.epoch));
          ("routers", Jsonx.Arr (List.map (fun r -> Jsonx.Num (float_of_int r)) c.routers));
          ("degraded", Jsonx.Bool c.degraded);
          ("heal", Jsonx.Bool c.heal);
        ]
    in
    Jsonx.Obj (base @ cov_fields)
  in
  let cycle_percentiles =
    match List.map (fun s -> s.cycles) (summaries t) with
    | [] -> Jsonx.Null
    | cycles ->
      let snap = Obs.Metric.snapshot_of_values cycles in
      let p q = float_of_int (Obs.Metric.percentile snap q) in
      Jsonx.Obj
        [
          ("p50", Jsonx.Num (p 0.50));
          ("p95", Jsonx.Num (p 0.95));
          ("p99", Jsonx.Num (p 0.99));
          ("max", Jsonx.Num (float_of_int snap.Obs.Metric.max_value));
        ]
  in
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("entries", Jsonx.Num (float_of_int (Clog.length t.clog)));
         ("root", Jsonx.Str (Zkflow_hash.Digest32.to_hex (Clog.root t.clog)));
         ( "proof_params",
           Jsonx.Obj
             [
               ( "queries",
                 Jsonx.Num
                   (float_of_int t.proof_params.Zkflow_zkproof.Params.queries) );
               ( "soundness_bits",
                 Jsonx.Num (Zkflow_zkproof.Params.soundness_bits t.proof_params)
               );
             ] );
         ("rounds", Jsonx.Arr (List.mapi round_obj (summaries t)));
         ("round_cycles", cycle_percentiles);
         ("gaps", Jsonx.Arr (List.map gap_json t.gaps));
         ( "open_gaps",
           Jsonx.Num (float_of_int (List.length (open_gaps t))) );
       ])

let query t params =
  let* () = gate ~subject:"query guest" (Lazy.force Guests.query_program) in
  Query.prove ~params:t.proof_params ~clog:t.clog params

let query_at t ~round params =
  let rounds = List.rev t.rounds_rev in
  match List.nth_opt rounds round with
  | None -> Error (Printf.sprintf "query_at: no round %d (have %d)" round (List.length rounds))
  | Some r ->
    let* () = gate ~subject:"query guest" (Lazy.force Guests.query_program) in
    Query.prove ~params:t.proof_params ~clog:r.Aggregate.clog params
