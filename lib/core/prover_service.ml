module Db = Zkflow_store.Db
module Board = Zkflow_commitlog.Board
module Commitment = Zkflow_commitlog.Commitment
module Obs = Zkflow_obs
module Jsonx = Zkflow_util.Jsonx

type t = {
  proof_params : Zkflow_zkproof.Params.t;
  db : Db.t;
  board : Board.t;
  mutable clog : Clog.t;
  mutable rounds_rev : Aggregate.round list;
}

let create ?(proof_params = Zkflow_zkproof.Params.default) ~db ~board () =
  { proof_params; db; board; clog = Clog.empty; rounds_rev = [] }

let clog t = t.clog
let rounds t = List.rev t.rounds_rev
let latest_root t = Clog.root t.clog

let ( let* ) = Result.bind

(* Pre-prove gate: every proving path runs the static analyzer over the
   guest first and refuses to spend cycles on a defective program
   (override with ZKFLOW_NO_ANALYZE=1). Reports are memoized per image
   ID, so the per-round cost after the first call is one hash lookup. *)
let gate ~subject program = Zkflow_analysis.gate ~subject program

let prove_custom ?(proof_params = Zkflow_zkproof.Params.default)
    ?(subject = "custom guest") program ~input =
  let* () = gate ~subject program in
  Zkflow_zkproof.Prove.prove ~params:proof_params program ~input

let publish_epoch t ~epoch =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | router_id :: rest ->
      let records = Db.window t.db ~router_id ~epoch in
      let* c = Board.publish t.board records ~router_id ~epoch in
      go (c :: acc) rest
  in
  go [] (Db.routers t.db)

(* Epochs the routers have materialized but the service has not yet
   aggregated — the service's backlog, reported on every round event
   so a health report can plot queue depth over time. *)
let queue_depth t = max 0 (List.length (Db.epochs t.db) - List.length t.rounds_rev)

let aggregate_epoch_inner t ~epoch ~round_ix =
  ignore round_ix;
  let t_fetch = Obs.Span.start () in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | router_id :: rest -> (
      match Board.lookup t.board ~router_id ~epoch with
      | None ->
        Error
          (Printf.sprintf
             "aggregate: router %d has no published commitment for epoch %d"
             router_id epoch)
      | Some c ->
        let records = Db.window t.db ~router_id ~epoch in
        collect ((c.Commitment.batch, records) :: acc) rest)
  in
  let batches = collect [] (Db.routers t.db) in
  if t_fetch <> 0 then Obs.Span.finish "round.fetch" t_fetch;
  let* batches = batches in
  let t_gate = Obs.Span.start () in
  let gated =
    gate ~subject:"aggregation guest" (Lazy.force Guests.aggregation_program)
  in
  if t_gate <> 0 then Obs.Span.finish "round.gate" t_gate;
  let* () = gated in
  let t_agg = Obs.Span.start () in
  let round =
    Aggregate.prove_round ~params:t.proof_params ~prev:t.clog batches
  in
  if t_agg <> 0 then Obs.Span.finish "round.aggregate" ~args:[ ("epoch", epoch) ] t_agg;
  let* round = round in
  t.clog <- round.Aggregate.clog;
  t.rounds_rev <- round :: t.rounds_rev;
  Ok round

let aggregate_epoch t ~epoch =
  let round_ix = List.length t.rounds_rev in
  Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.start"
    ~attrs:[ ("queue_depth", Jsonx.Num (float_of_int (queue_depth t))) ];
  match aggregate_epoch_inner t ~epoch ~round_ix with
  | Error e ->
    Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.error"
      ~attrs:[ ("detail", Jsonx.Str e) ];
    Error e
  | Ok round ->
    Obs.Event.emit ~epoch ~round:round_ix ~track:"prover" "prover.round.done"
      ~attrs:
        [
          ("cycles", Jsonx.Num (float_of_int round.Aggregate.cycles));
          ("entries", Jsonx.Num (float_of_int (Clog.length round.Aggregate.clog)));
          ("prove_ns", Jsonx.Num (Float.round (round.Aggregate.prove_s *. 1e9)));
          ("execute_ns", Jsonx.Num (Float.round (round.Aggregate.execute_s *. 1e9)));
          ("queue_depth", Jsonx.Num (float_of_int (queue_depth t)));
        ];
    Ok round

type disclosure = {
  indices : int list;
  entries : Clog.entry list;
  proof : Zkflow_merkle.Multiproof.t;
}

let disclose t ~keys =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | key :: rest -> (
      match Clog.find t.clog key with
      | Some (i, e) -> collect ((i, e) :: acc) rest
      | None ->
        Error
          (Format.asprintf "disclose: flow %a not in the CLog"
             Zkflow_netflow.Flowkey.pp key))
  in
  let* found = collect [] keys in
  match found with
  | [] -> Error "disclose: no keys given"
  | _ ->
    let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) found in
    let indices = List.map fst sorted in
    let entries = List.map snd sorted in
    let proof = Zkflow_merkle.Multiproof.prove (Clog.tree t.clog) indices in
    Ok { indices; entries; proof }

(* ---- persistence ---- *)

module Wire = Zkflow_util.Wire

let w_entries w clog =
  Wire.w_array w
    (fun (e : Clog.entry) ->
      Array.iter (fun word -> Wire.w_int w word) (Clog.entry_words e))
    (Clog.entries clog)

let r_entries r =
  let entries =
    Wire.r_array r (fun () ->
        let words = Array.init 8 (fun _ -> Wire.r_int r) in
        match Clog.entry_of_words words with
        | Ok e -> e
        | Error msg -> raise (Wire.Decode msg))
  in
  match Clog.of_entries entries with
  | Ok clog -> clog
  | Error msg -> raise (Wire.Decode msg)

let save t =
  let w = Wire.writer () in
  Wire.w_string w "zkflow.service.v1";
  w_entries w t.clog;
  Wire.w_list w
    (fun (round : Aggregate.round) ->
      Wire.w_bytes w (Zkflow_zkproof.Receipt.encode round.Aggregate.receipt);
      w_entries w round.Aggregate.clog;
      Wire.w_int w round.Aggregate.cycles)
    (List.rev t.rounds_rev);
  Wire.contents w

let load ?proof_params ~db ~board bytes =
  Wire.decode bytes (fun r ->
      let magic = Wire.r_string r in
      if magic <> "zkflow.service.v1" then raise (Wire.Decode "service state: bad magic");
      let clog = r_entries r in
      let rounds =
        Wire.r_list r (fun () ->
            let receipt_bytes = Wire.r_bytes r in
            let receipt =
              match Zkflow_zkproof.Receipt.decode receipt_bytes with
              | Ok receipt -> receipt
              | Error msg -> raise (Wire.Decode msg)
            in
            let round_clog = r_entries r in
            let cycles = Wire.r_int r in
            let journal =
              match
                Guests.parse_aggregation_journal
                  receipt.Zkflow_zkproof.Receipt.claim.Zkflow_zkproof.Receipt.journal
              with
              | Ok j -> j
              | Error msg -> raise (Wire.Decode msg)
            in
            {
              Aggregate.receipt;
              journal;
              clog = round_clog;
              cycles;
              execute_s = 0.;
              prove_s = 0.;
              restored = true;
            })
      in
      let t = create ?proof_params ~db ~board () in
      t.clog <- clog;
      t.rounds_rev <- List.rev rounds;
      t)

(* ---- round summaries ---- *)

type round_summary = {
  index : int;
  entries : int;
  root : string;
  cycles : int;
  execute_s : float;
  prove_s : float;
  restored : bool;
}

let summarize_round i (r : Aggregate.round) =
  {
    index = i;
    entries = Clog.length r.Aggregate.clog;
    root = Zkflow_hash.Digest32.to_hex (Clog.root r.Aggregate.clog);
    cycles = r.Aggregate.cycles;
    execute_s = r.Aggregate.execute_s;
    prove_s = r.Aggregate.prove_s;
    restored = r.Aggregate.restored;
  }

let summaries t = List.mapi summarize_round (rounds t)

let summary_json t =
  let round_obj s =
    Jsonx.Obj
      [
        ("index", Jsonx.Num (float_of_int s.index));
        ("entries", Jsonx.Num (float_of_int s.entries));
        ("root", Jsonx.Str s.root);
        ("cycles", Jsonx.Num (float_of_int s.cycles));
        ("execute_s", Jsonx.Num s.execute_s);
        ("prove_s", Jsonx.Num s.prove_s);
        ("restored", Jsonx.Bool s.restored);
      ]
  in
  let cycle_percentiles =
    match List.map (fun s -> s.cycles) (summaries t) with
    | [] -> Jsonx.Null
    | cycles ->
      let snap = Obs.Metric.snapshot_of_values cycles in
      let p q = float_of_int (Obs.Metric.percentile snap q) in
      Jsonx.Obj
        [
          ("p50", Jsonx.Num (p 0.50));
          ("p95", Jsonx.Num (p 0.95));
          ("p99", Jsonx.Num (p 0.99));
          ("max", Jsonx.Num (float_of_int snap.Obs.Metric.max_value));
        ]
  in
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("entries", Jsonx.Num (float_of_int (Clog.length t.clog)));
         ("root", Jsonx.Str (Zkflow_hash.Digest32.to_hex (Clog.root t.clog)));
         ("rounds", Jsonx.Arr (List.map round_obj (summaries t)));
         ("round_cycles", cycle_percentiles);
       ])

let query t params =
  let* () = gate ~subject:"query guest" (Lazy.force Guests.query_program) in
  Query.prove ~params:t.proof_params ~clog:t.clog params

let query_at t ~round params =
  let rounds = List.rev t.rounds_rev in
  match List.nth_opt rounds round with
  | None -> Error (Printf.sprintf "query_at: no round %d (have %d)" round (List.length rounds))
  | Some r ->
    let* () = gate ~subject:"query guest" (Lazy.force Guests.query_program) in
    Query.prove ~params:t.proof_params ~clog:r.Aggregate.clog params
