module Event = Zkflow_obs.Event
module Metric = Zkflow_obs.Metric
module Timeseries = Zkflow_obs.Timeseries
module Jsonx = Zkflow_util.Jsonx

type latency = { count : int; p50_ns : int; p95_ns : int; p99_ns : int; max_ns : int }

type trend = {
  trend_metric : string;
  last_count : int;
  last_p95_ns : int;
  prev_count : int;
  prev_p95_ns : int;
  trend_ratio : float option;
}

type router_health = {
  router_id : int;
  publishes : int;
  last_epoch : int option;
  lag : int;
  missed : int list;
}

type gap_status = {
  gap_router : int;
  gap_epoch : int;
  opened_round : int;
  healed_round : int option;
}

type report = {
  events : int;
  epochs : int list;
  routers : router_health list;
  board_rejects : (string * int) list;
  rounds_started : int;
  rounds_done : int;
  rounds_error : int;
  rounds_skipped : int;
  degraded_rounds : int;
  heal_rounds : int;
  round_latency : latency option;
  prove_latency : latency option;
  queue_depth : (int * int) list;
  max_queue_depth : int;
  queries_done : int;
  queries_error : int;
  verifier_accepts : int;
  verifier_rejects : (string * int) list;
  gaps : gap_status list;
  open_gap_count : int;
  stale_gap_count : int;
  gap_grace : int;
  crashes : int;
  resumes : int;
  retries : int;
  fault_events : (string * int) list;
  ingest_accepted : int;
  ingest_shed : int;
  ingest_duplicates : int;
  drains : int;
  breaker_opens : int;
  watchdog_trips : int;
  service_rounds : int option;
  service_entries : int option;
  service_root : string option;
  round_trend : trend option;
}

(* Trend over a saved time-series: split the frame history in half and
   compare the p95 of the metric's activity in the newer half against
   the older half. Frames hold cumulative snapshots, so each half's
   activity is the bucket-wise delta of its boundary frames. *)
let trend_of_frames ?(metric = "prover.round_ns") frames =
  let n = List.length frames in
  if n < 3 then None
  else begin
    let arr = Array.of_list frames in
    let empty = { Metric.count = 0; sum = 0; max_value = 0; buckets = [] } in
    let hist f =
      Option.value ~default:empty
        (List.assoc_opt metric f.Timeseries.histograms)
    in
    let mid = n / 2 in
    let prev = Metric.sub_snapshot (hist arr.(mid)) (hist arr.(0)) in
    let last = Metric.sub_snapshot (hist arr.(n - 1)) (hist arr.(mid)) in
    if prev.Metric.count = 0 && last.Metric.count = 0 then None
    else begin
      let last_p95_ns = Metric.percentile last 0.95 in
      let prev_p95_ns = Metric.percentile prev 0.95 in
      Some
        {
          trend_metric = metric;
          last_count = last.Metric.count;
          last_p95_ns;
          prev_count = prev.Metric.count;
          prev_p95_ns;
          trend_ratio =
            (if prev.Metric.count = 0 || last.Metric.count = 0 || prev_p95_ns = 0
             then None
             else Some (float_of_int last_p95_ns /. float_of_int prev_p95_ns));
        }
    end
  end

let attr_num name (e : Event.t) =
  match List.assoc_opt name e.Event.attrs with
  | Some (Jsonx.Num f) -> Some (int_of_float f)
  | _ -> None

let attr_str name (e : Event.t) =
  match List.assoc_opt name e.Event.attrs with
  | Some (Jsonx.Str s) -> Some s
  | _ -> None

let bump table key = Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key))

let counts_sorted table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let latency_of_values = function
  | [] -> None
  | values ->
    let s = Metric.snapshot_of_values values in
    Some
      {
        count = s.Metric.count;
        p50_ns = Metric.percentile s 0.50;
        p95_ns = Metric.percentile s 0.95;
        p99_ns = Metric.percentile s 0.99;
        max_ns = s.Metric.max_value;
      }

let build ?service ?frames ?(gap_grace = 0) events =
  (* Fresh publications only — board replays are recorded under a
     different kind precisely so re-importing board.txt on every CLI
     invocation does not look like router liveness. *)
  let publishes = Hashtbl.create 16 in
  (* router -> epoch list, newest first *)
  let board_rejects = Hashtbl.create 8 in
  let verifier_rejects = Hashtbl.create 8 in
  let verifier_accepts = ref 0 in
  let rounds_started = ref 0 and rounds_done = ref 0 and rounds_error = ref 0 in
  let queries_done = ref 0 and queries_error = ref 0 in
  let round_start = Hashtbl.create 8 in
  (* round ix -> start ts *)
  let round_deltas = ref [] and prove_ns = ref [] in
  let queue_rev = ref [] in
  let rounds_skipped = ref 0 and degraded_rounds = ref 0 and heal_rounds = ref 0 in
  (* (router, epoch) -> gap_status; the first open wins, a heal marks it *)
  let gap_table : (int * int, gap_status) Hashtbl.t = Hashtbl.create 8 in
  let gap_order = ref [] in
  let crashes = ref 0 and resumes = ref 0 and retries = ref 0 in
  let fault_events = Hashtbl.create 8 in
  let ingest_accepted = ref 0 and ingest_shed = ref 0 in
  let ingest_duplicates = ref 0 in
  let drains = ref 0 and breaker_opens = ref 0 and watchdog_trips = ref 0 in
  let max_round = ref (-1) in
  let note_round (e : Event.t) =
    match e.Event.round with
    | Some ix -> max_round := max !max_round ix
    | None -> ()
  in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | "board.publish" -> (
        match (e.Event.router, e.Event.epoch) with
        | Some r, Some ep ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt publishes r) in
          Hashtbl.replace publishes r (ep :: prev)
        | _ -> ())
      | "board.reject" ->
        bump board_rejects (Option.value ~default:"unknown" (attr_str "reason" e))
      | "prover.round.start" ->
        incr rounds_started;
        note_round e;
        (match e.Event.round with
        | Some ix ->
          Hashtbl.replace round_start ix e.Event.ts_ns;
          (match attr_num "queue_depth" e with
          | Some d -> queue_rev := (ix, d) :: !queue_rev
          | None -> ())
        | None -> ())
      | "prover.round.done" ->
        incr rounds_done;
        note_round e;
        (match e.Event.round with
        | Some ix -> (
          match Hashtbl.find_opt round_start ix with
          | Some t0 when e.Event.ts_ns >= t0 ->
            round_deltas := (e.Event.ts_ns - t0) :: !round_deltas
          | _ -> ())
        | None -> ());
        (match attr_num "prove_ns" e with
        | Some ns -> prove_ns := ns :: !prove_ns
        | None -> ());
        (match attr_num "missing" e with
        | Some m when m > 0 -> incr degraded_rounds
        | _ -> ());
        (match attr_num "heal" e with
        | Some 1 -> incr heal_rounds
        | _ -> ())
      | "prover.round.error" -> incr rounds_error
      | "prover.round.skipped" -> incr rounds_skipped
      | "prover.gap.open" -> (
        note_round e;
        match (e.Event.router, e.Event.epoch) with
        | Some r, Some ep ->
          if not (Hashtbl.mem gap_table (r, ep)) then begin
            Hashtbl.replace gap_table (r, ep)
              {
                gap_router = r;
                gap_epoch = ep;
                opened_round = Option.value ~default:0 e.Event.round;
                healed_round = None;
              };
            gap_order := (r, ep) :: !gap_order
          end
        | _ -> ())
      | "prover.gap.heal" -> (
        note_round e;
        match (e.Event.router, e.Event.epoch) with
        | Some r, Some ep -> (
          match Hashtbl.find_opt gap_table (r, ep) with
          | Some g when g.healed_round = None ->
            Hashtbl.replace gap_table (r, ep) { g with healed_round = e.Event.round }
          | _ -> ())
        | _ -> ())
      | "prover.resume" -> incr resumes
      | "prover.query.done" -> incr queries_done
      | "prover.query.error" -> incr queries_error
      | "verifier.reject" ->
        bump verifier_rejects (Option.value ~default:"unknown" (attr_str "check" e))
      | "fault.crash" ->
        incr crashes;
        bump fault_events "fault.crash"
      | "fault.retry" ->
        incr retries;
        bump fault_events "fault.retry"
      (* daemon lifecycle: explicit cases, or the fault.* catch-all
         below would never see them and they'd vanish silently *)
      | "daemon.ingest.accept" -> incr ingest_accepted
      | "daemon.ingest.shed" -> incr ingest_shed
      | "daemon.ingest.duplicate" -> incr ingest_duplicates
      | "daemon.drain.done" -> incr drains
      | "daemon.breaker.open" -> incr breaker_opens
      | "daemon.watchdog.trip" -> incr watchdog_trips
      | k when String.length k > 9 && String.sub k 0 9 = "verifier."
               && Filename.check_suffix k ".accept" -> incr verifier_accepts
      | k when String.length k > 6 && String.sub k 0 6 = "fault." ->
        bump fault_events k
      | _ -> ())
    events;
  let epochs =
    Hashtbl.fold (fun _ eps acc -> eps @ acc) publishes [] |> List.sort_uniq Int.compare
  in
  let routers =
    Hashtbl.fold
      (fun router_id eps acc ->
        let mine = List.sort_uniq Int.compare eps in
        let last_epoch = match List.rev mine with [] -> None | ep :: _ -> Some ep in
        let lag =
          match last_epoch with
          | None -> List.length epochs
          | Some last -> List.length (List.filter (fun ep -> ep > last) epochs)
        in
        let missed =
          match last_epoch with
          | None -> []
          | Some last ->
            List.filter (fun ep -> ep <= last && not (List.mem ep mine)) epochs
        in
        { router_id; publishes = List.length eps; last_epoch; lag; missed } :: acc)
      publishes []
    |> List.sort (fun a b -> Int.compare a.router_id b.router_id)
  in
  let queue_depth = List.rev !queue_rev in
  let gaps =
    List.rev_map (fun key -> Hashtbl.find gap_table key) !gap_order
  in
  let open_gaps = List.filter (fun g -> g.healed_round = None) gaps in
  let stale_gaps =
    (* A gap is stale once it has stayed open for more than [gap_grace]
       subsequent rounds — with the default grace of 0, any open gap. *)
    List.filter (fun g -> !max_round - g.opened_round >= gap_grace) open_gaps
  in
  {
    events = List.length events;
    epochs;
    routers;
    board_rejects = counts_sorted board_rejects;
    rounds_started = !rounds_started;
    rounds_done = !rounds_done;
    rounds_error = !rounds_error;
    rounds_skipped = !rounds_skipped;
    degraded_rounds = !degraded_rounds;
    heal_rounds = !heal_rounds;
    round_latency = latency_of_values !round_deltas;
    prove_latency = latency_of_values !prove_ns;
    queue_depth;
    max_queue_depth = List.fold_left (fun acc (_, d) -> max acc d) 0 queue_depth;
    queries_done = !queries_done;
    queries_error = !queries_error;
    verifier_accepts = !verifier_accepts;
    verifier_rejects = counts_sorted verifier_rejects;
    gaps;
    open_gap_count = List.length open_gaps;
    stale_gap_count = List.length stale_gaps;
    gap_grace;
    crashes = !crashes;
    resumes = !resumes;
    retries = !retries;
    fault_events = counts_sorted fault_events;
    ingest_accepted = !ingest_accepted;
    ingest_shed = !ingest_shed;
    ingest_duplicates = !ingest_duplicates;
    drains = !drains;
    breaker_opens = !breaker_opens;
    watchdog_trips = !watchdog_trips;
    service_rounds = Option.map (fun s -> List.length (Prover_service.rounds s)) service;
    service_entries = Option.map (fun s -> Clog.length (Prover_service.clog s)) service;
    service_root =
      Option.map
        (fun s -> Zkflow_hash.Digest32.to_hex (Prover_service.latest_root s))
        service;
    round_trend = Option.bind frames (fun fs -> trend_of_frames fs);
  }

(* Injected-fault counts (the chaos, track "fault") never degrade
   health by themselves — health judges the pipeline's {e reaction}:
   no rejects, no errors, no router behind, and no gap left open past
   the grace window. Degraded and heal rounds are the intended
   reaction, so they do not count against health either. *)
let healthy r =
  r.board_rejects = [] && r.verifier_rejects = [] && r.rounds_error = 0
  && r.queries_error = 0 && r.stale_gap_count = 0
  && List.for_all (fun h -> h.lag = 0 && h.missed = []) r.routers

let ms ns = float_of_int ns /. 1e6

let pp_latency fmt name = function
  | None -> Format.fprintf fmt "  %-14s (no samples)@," name
  | Some l ->
    Format.fprintf fmt "  %-14s n=%d  p50<=%.2fms  p95<=%.2fms  p99<=%.2fms  max=%.2fms@,"
      name l.count (ms l.p50_ns) (ms l.p95_ns) (ms l.p99_ns) (ms l.max_ns)

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "flight recorder: %d events, %d epoch(s) with publications@,"
    r.events (List.length r.epochs);
  (match (r.service_rounds, r.service_entries, r.service_root) with
  | Some n, Some entries, Some root ->
    Format.fprintf fmt "service state:  %d round(s), %d CLog entries, root %s@," n
      entries (String.sub root 0 (min 16 (String.length root)))
  | _ -> ());
  Format.fprintf fmt "@,routers:@,";
  if r.routers = [] then Format.fprintf fmt "  (no publications recorded)@,"
  else begin
    Format.fprintf fmt "  %8s %10s %10s %6s %s@," "router" "publishes" "last_epoch"
      "lag" "missed";
    List.iter
      (fun h ->
        Format.fprintf fmt "  %8d %10d %10s %6d %s@," h.router_id h.publishes
          (match h.last_epoch with Some ep -> string_of_int ep | None -> "-")
          h.lag
          (match h.missed with
          | [] -> "-"
          | m -> String.concat "," (List.map string_of_int m)))
      r.routers
  end;
  Format.fprintf fmt "@,prover:@,";
  Format.fprintf fmt "  rounds: %d started, %d done, %d error; queue depth max %d@,"
    r.rounds_started r.rounds_done r.rounds_error r.max_queue_depth;
  if r.degraded_rounds + r.heal_rounds + r.rounds_skipped > 0 then
    Format.fprintf fmt "  degraded: %d round(s), %d heal round(s), %d skipped@,"
      r.degraded_rounds r.heal_rounds r.rounds_skipped;
  if r.crashes + r.resumes > 0 then
    Format.fprintf fmt "  crashes: %d injected, %d resume(s), %d retry(ies)@,"
      r.crashes r.resumes r.retries;
  if r.ingest_accepted + r.ingest_shed + r.ingest_duplicates + r.drains > 0 then begin
    Format.fprintf fmt
      "  daemon ingest: %d accepted, %d shed, %d duplicate(s); %d drain(s)@,"
      r.ingest_accepted r.ingest_shed r.ingest_duplicates r.drains;
    if r.breaker_opens + r.watchdog_trips > 0 then
      Format.fprintf fmt "  daemon faults: breaker opened %d time(s), watchdog tripped %d time(s)@,"
        r.breaker_opens r.watchdog_trips
  end;
  pp_latency fmt "round wall" r.round_latency;
  pp_latency fmt "prove phase" r.prove_latency;
  (match r.round_trend with
  | None -> ()
  | Some t ->
    Format.fprintf fmt "  %-14s last p95<=%.2fms (n=%d) vs prev p95<=%.2fms (n=%d)%s@,"
      "round trend" (ms t.last_p95_ns) t.last_count (ms t.prev_p95_ns) t.prev_count
      (match t.trend_ratio with
      | Some ratio -> Printf.sprintf "  ratio %.2fx" ratio
      | None -> ""));
  Format.fprintf fmt "  queries: %d done, %d error@," r.queries_done r.queries_error;
  if r.gaps <> [] then begin
    Format.fprintf fmt "@,gaps (%d open, %d stale past grace %d):@,"
      r.open_gap_count r.stale_gap_count r.gap_grace;
    List.iter
      (fun g ->
        Format.fprintf fmt "  router %d epoch %d: opened round %d, %s@," g.gap_router
          g.gap_epoch g.opened_round
          (match g.healed_round with
          | Some ix -> Printf.sprintf "healed round %d" ix
          | None -> "OPEN"))
      r.gaps
  end;
  if r.fault_events <> [] then begin
    Format.fprintf fmt "@,injected faults:@,";
    List.iter
      (fun (kind, n) -> Format.fprintf fmt "  %s: %d@," kind n)
      r.fault_events
  end;
  Format.fprintf fmt "@,verifier:@,";
  Format.fprintf fmt "  accepts: %d@," r.verifier_accepts;
  if r.verifier_rejects = [] then Format.fprintf fmt "  rejects: none@,"
  else
    List.iter
      (fun (check, n) -> Format.fprintf fmt "  rejects[%s]: %d@," check n)
      r.verifier_rejects;
  if r.board_rejects <> [] then
    List.iter
      (fun (reason, n) -> Format.fprintf fmt "  board rejects[%s]: %d@," reason n)
      r.board_rejects;
  Format.fprintf fmt "@,health: %s@]" (if healthy r then "OK" else "DEGRADED")

let latency_json = function
  | None -> Jsonx.Null
  | Some l ->
    Jsonx.Obj
      [
        ("count", Jsonx.Num (float_of_int l.count));
        ("p50_ns", Jsonx.Num (float_of_int l.p50_ns));
        ("p95_ns", Jsonx.Num (float_of_int l.p95_ns));
        ("p99_ns", Jsonx.Num (float_of_int l.p99_ns));
        ("max_ns", Jsonx.Num (float_of_int l.max_ns));
      ]

let counts_json pairs =
  Jsonx.Obj (List.map (fun (k, n) -> (k, Jsonx.Num (float_of_int n))) pairs)

let to_json r =
  let num n = Jsonx.Num (float_of_int n) in
  let opt_num = function Some n -> num n | None -> Jsonx.Null in
  Jsonx.Obj
    [
      ("events", num r.events);
      ("epochs", Jsonx.Arr (List.map num r.epochs));
      ( "routers",
        Jsonx.Arr
          (List.map
             (fun h ->
               Jsonx.Obj
                 [
                   ("router", num h.router_id);
                   ("publishes", num h.publishes);
                   ("last_epoch", opt_num h.last_epoch);
                   ("lag", num h.lag);
                   ("missed", Jsonx.Arr (List.map num h.missed));
                 ])
             r.routers) );
      ("board_rejects", counts_json r.board_rejects);
      ( "rounds",
        Jsonx.Obj
          [
            ("started", num r.rounds_started);
            ("done", num r.rounds_done);
            ("error", num r.rounds_error);
          ] );
      ("round_latency", latency_json r.round_latency);
      ("prove_latency", latency_json r.prove_latency);
      ( "round_latency_trend",
        match r.round_trend with
        | None -> Jsonx.Null
        | Some t ->
          Jsonx.Obj
            [
              ("metric", Jsonx.Str t.trend_metric);
              ("last_count", num t.last_count);
              ("last_p95_ns", num t.last_p95_ns);
              ("prev_count", num t.prev_count);
              ("prev_p95_ns", num t.prev_p95_ns);
              ( "ratio",
                match t.trend_ratio with
                | Some ratio -> Jsonx.Num ratio
                | None -> Jsonx.Null );
            ] );
      ( "queue_depth",
        Jsonx.Arr
          (List.map
             (fun (ix, d) -> Jsonx.Obj [ ("round", num ix); ("depth", num d) ])
             r.queue_depth) );
      ("max_queue_depth", num r.max_queue_depth);
      ( "queries",
        Jsonx.Obj [ ("done", num r.queries_done); ("error", num r.queries_error) ] );
      ("verifier_accepts", num r.verifier_accepts);
      ("verifier_rejects", counts_json r.verifier_rejects);
      ( "degraded",
        Jsonx.Obj
          [
            ("rounds", num r.degraded_rounds);
            ("heal_rounds", num r.heal_rounds);
            ("skipped", num r.rounds_skipped);
          ] );
      ( "gaps",
        Jsonx.Arr
          (List.map
             (fun g ->
               Jsonx.Obj
                 [
                   ("router", num g.gap_router);
                   ("epoch", num g.gap_epoch);
                   ("opened_round", num g.opened_round);
                   ("healed_round", opt_num g.healed_round);
                 ])
             r.gaps) );
      ("open_gaps", num r.open_gap_count);
      ("stale_gaps", num r.stale_gap_count);
      ("gap_grace", num r.gap_grace);
      ( "chaos",
        Jsonx.Obj
          [
            ("crashes", num r.crashes);
            ("resumes", num r.resumes);
            ("retries", num r.retries);
            ("fault_events", counts_json r.fault_events);
          ] );
      ( "daemon",
        Jsonx.Obj
          [
            ("ingest_accepted", num r.ingest_accepted);
            ("ingest_shed", num r.ingest_shed);
            ("ingest_duplicates", num r.ingest_duplicates);
            ("drains", num r.drains);
            ("breaker_opens", num r.breaker_opens);
            ("watchdog_trips", num r.watchdog_trips);
          ] );
      ("service_rounds", opt_num r.service_rounds);
      ("service_entries", opt_num r.service_entries);
      ( "service_root",
        match r.service_root with Some s -> Jsonx.Str s | None -> Jsonx.Null );
      ("healthy", Jsonx.Bool (healthy r));
    ]
