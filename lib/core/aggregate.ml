module D = Zkflow_hash.Digest32
module Machine = Zkflow_zkvm.Machine
module Prove = Zkflow_zkproof.Prove
module Receipt = Zkflow_zkproof.Receipt
module Obs = Zkflow_obs

type round = {
  receipt : Receipt.t;
  journal : Guests.agg_journal;
  clog : Clog.t;
  cycles : int;
  execute_s : float;
  prove_s : float;
  restored : bool;
}

let ( let* ) = Result.bind

let guest_failure code =
  match code with
  | 1 -> "aggregation guest: previous Merkle root mismatch"
  | 2 -> "aggregation guest: router commitment mismatch (tampered or wrong RLogs)"
  | 3 -> "aggregation guest: CLog capacity exceeded"
  | 4 -> "aggregation guest: duplicate key in previous CLog"
  | n -> Printf.sprintf "aggregation guest: unexpected exit code %d" n

let execute ~prev batches =
  let t0 = Obs.Span.start () in
  let finish r =
    if t0 <> 0 then Obs.Span.finish "agg.execute" t0;
    r
  in
  let input = Guests.aggregation_input ~prev ~batches in
  let program = Lazy.force Guests.aggregation_program in
  finish @@
  match Machine.run ~trace:true program ~input with
  | exception Machine.Trap { reason; cycle; pc } ->
    Error (Printf.sprintf "aggregation guest trapped at cycle %d pc %d: %s" cycle pc reason)
  | run when run.Machine.exit_code <> 0 -> Error (guest_failure run.Machine.exit_code)
  | run -> Ok run

(* The guest must agree with the host reference on every output; a
   divergence is a correctness bug in one of the two, so fail loudly. *)
let cross_check ~prev ~batches (journal : Guests.agg_journal) =
  let expected =
    Clog.apply_batch prev (Array.concat (List.map snd batches))
  in
  let* () =
    if D.equal journal.Guests.prev_root (Clog.root prev) then Ok ()
    else Error "aggregation: journal prev_root diverges from host state"
  in
  let* () =
    if journal.Guests.entry_count = Clog.length expected then Ok ()
    else Error "aggregation: guest entry count diverges from host reference"
  in
  let* () =
    if D.equal journal.Guests.new_root (Clog.root expected) then Ok ()
    else Error "aggregation: guest Merkle root diverges from host reference"
  in
  let host_leaves = Array.map Clog.leaf_digest (Clog.entries expected) in
  let* () =
    if
      Array.length host_leaves = Array.length journal.Guests.leaf_digests
      && Array.for_all2 D.equal host_leaves journal.Guests.leaf_digests
    then Ok ()
    else Error "aggregation: guest leaf digests diverge from host reference"
  in
  Ok expected

let now () = Unix.gettimeofday ()

let prove_round ?params ~prev batches =
  let t_round = Obs.Span.start () in
  let t0 = now () in
  let* run = execute ~prev batches in
  let t1 = now () in
  let program = Lazy.force Guests.aggregation_program in
  let t_prove = Obs.Span.start () in
  let* receipt = Prove.prove_result ?params program run in
  if t_prove <> 0 then Obs.Span.finish "agg.prove" ~args:[ ("cycles", run.Machine.cycles) ] t_prove;
  let t2 = now () in
  let t_check = Obs.Span.start () in
  let* journal = Guests.parse_aggregation_journal run.Machine.journal in
  let* clog = cross_check ~prev ~batches journal in
  if t_check <> 0 then Obs.Span.finish "agg.check" t_check;
  if t_round <> 0 then Obs.Span.finish "agg.round" t_round;
  Ok
    {
      receipt;
      journal;
      clog;
      cycles = run.Machine.cycles;
      execute_s = t1 -. t0;
      prove_s = t2 -. t1;
      restored = false;
    }

let prove_partitioned ?params ~prev ~partitions batches =
  if partitions <= 0 then invalid_arg "Aggregate.prove_partitioned: partitions";
  (* Contiguous chunks: record order — and hence CLog entry order and
     the final Merkle root — matches the monolithic round exactly. *)
  let n = List.length batches in
  let per = max 1 ((n + partitions - 1) / partitions) in
  let groups =
    List.mapi (fun i b -> (i / per, b)) batches
    |> List.fold_left
         (fun acc (g, b) ->
           match acc with
           | (g', group) :: rest when g' = g -> (g', b :: group) :: rest
           | _ -> (g, [ b ]) :: acc)
         []
    |> List.rev_map (fun (_, group) -> List.rev group)
  in
  let rec go prev acc = function
    | [] -> Ok (List.rev acc)
    | group :: rest ->
      let* round = prove_round ?params ~prev group in
      go round.clog (round :: acc) rest
  in
  go prev [] groups

let shard_records ~shards records =
  if shards <= 0 then invalid_arg "Aggregate.shard_records: shards";
  let groups = Array.make shards [] in
  Array.iter
    (fun (r : Zkflow_netflow.Record.t) ->
      let h =
        Bytes.get_int64_le
          (D.unsafe_to_bytes (Zkflow_netflow.Flowkey.hash r.Zkflow_netflow.Record.key))
          0
      in
      let s = Int64.to_int h land max_int mod shards in
      groups.(s) <- r :: groups.(s))
    records;
  Array.map (fun l -> Array.of_list (List.rev l)) groups

let prove_sharded ?params ~prev_shards ~shards records =
  if Array.length prev_shards <> shards then
    invalid_arg "Aggregate.prove_sharded: prev_shards arity";
  let groups = shard_records ~shards records in
  (* Shards share no state, so they prove concurrently on the Domain
     pool. Force the shared lazies first: concurrent first-forcing of
     a lazy is not domain-safe in OCaml 5. *)
  ignore (Lazy.force Guests.aggregation_program);
  Array.iter (fun prev -> ignore (Clog.root prev)) prev_shards;
  let results =
    Zkflow_parallel.Pool.init_array ~min_chunk:1 shards (fun i ->
        let batch = groups.(i) in
        let digest = Zkflow_netflow.Export.batch_hash batch in
        prove_round ?params ~prev:prev_shards.(i) [ (digest, batch) ])
  in
  (* Keep shard order in the output; on failure report the lowest
     failing shard, as the sequential loop did. *)
  let rec collect i acc =
    if i = shards then Ok (Array.of_list (List.rev acc))
    else
      match results.(i) with
      | Ok round -> collect (i + 1) (round :: acc)
      | Error e -> Error e
  in
  collect 0 []
