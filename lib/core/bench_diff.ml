module Jsonx = Zkflow_util.Jsonx

type change = {
  key : string;
  field : string;
  old_v : float;
  new_v : float;
  ratio : float;
}

type report = {
  compared : int;
  regressions : change list;
  improvements : change list;
  notes : string list;
}

let rows_of json =
  match Jsonx.member "rows" json with
  | Some (Jsonx.Arr rows) -> Ok rows
  | _ -> (
    match Jsonx.member "sweep" json with
    | Some (Jsonx.Arr rows) -> Ok rows
    | _ -> Error "bench-diff: no \"rows\" or \"sweep\" array in artifact")

(* Row identity: the full configuration key — every sweep axis the
   bench binary writes. A fig4 row is keyed by record count alone, a
   parallel-sweep row by job count, a matrix row by backend + proof
   parameters + scale. Matching on the whole configuration means a
   grid change (say, a new queries setting) produces one-side notes,
   never a false regression from comparing unlike cells. *)
let row_key row =
  let num name =
    match Jsonx.member name row with
    | Some (Jsonx.Num f) -> Some (Printf.sprintf "%s=%d" name (int_of_float f))
    | _ -> None
  in
  let str name =
    match Jsonx.member name row with
    | Some (Jsonx.Str s) -> Some (Printf.sprintf "%s=%s" name s)
    | _ -> None
  in
  match
    List.filter_map Fun.id
      [ str "backend"; num "queries"; num "records"; num "routers"; num "jobs" ]
  with
  | [] -> None
  | parts -> Some (String.concat " " parts)

let has_suffix s suf = Filename.check_suffix s suf

(* Flatten one row into comparable numeric fields. Key axes and pool
   stats are excluded: the former are identity, the latter depend on
   machine load, not on the code under test. *)
let numeric_fields row =
  match row with
  | Jsonx.Obj members ->
    List.concat_map
      (fun (name, v) ->
        match (name, v) with
        | ("records" | "jobs" | "backend" | "queries" | "routers" | "pool"), _ ->
          []
        | "phases", Jsonx.Obj phases ->
          let fields =
            List.filter_map
              (fun (phase, pv) ->
                match Jsonx.member "total_s" pv with
                | Some (Jsonx.Num f) ->
                  Some (Printf.sprintf "phases.%s.total_s" phase, f)
                | _ -> None)
              phases
          in
          (* Tree-maintenance time is one budget regardless of which
             path spent it: an artifact from before the incremental
             tree bills everything to merkle.build, a current one
             splits it with merkle.incr_update. Synthesize the family
             total so the gate compares like with like across that
             split (and catches an incremental path that got slower
             than the rebuild it replaced). *)
          let build_family =
            List.fold_left
              (fun acc (name, v) ->
                if
                  name = "phases.merkle.build.total_s"
                  || name = "phases.merkle.incr_update.total_s"
                then acc +. v
                else acc)
              0. fields
          in
          if
            List.exists
              (fun (name, _) ->
                name = "phases.merkle.build.total_s"
                || name = "phases.merkle.incr_update.total_s")
              fields
          then ("phases.merkle.build_family.total_s", build_family) :: fields
          else fields
        | _, Jsonx.Num f -> [ (name, f) ]
        | _ -> [])
      members
  | _ -> []

(* Provenance sanity of the comparison itself: the env blocks record
   where each artifact came from (EXPERIMENTS.md's provenance note).
   Comparing across commits, machines or quick/full modes is often
   intentional — baseline vs candidate is by construction
   cross-commit — so mismatches are surfaced as notes for the reader,
   never synthesized into regressions. *)
let env_notes ~old_json ~new_json =
  match (Jsonx.member "env" old_json, Jsonx.member "env" new_json) with
  | Some o, Some n ->
    let str k j =
      match Jsonx.member k j with Some (Jsonx.Str s) -> Some s | _ -> None
    in
    let mismatch k label acc =
      match (str k o, str k n) with
      | Some a, Some b when a <> b ->
        Printf.sprintf "env: %s differs (%s vs %s) — %s comparison" k a b label
        :: acc
      | _ -> acc
    in
    let dirty j side acc =
      if Jsonx.member "git_dirty" j = Some (Jsonx.Bool true) then
        Printf.sprintf "env: %s artifact was produced from a dirty tree" side
        :: acc
      else acc
    in
    let quick acc =
      match (Jsonx.member "quick" o, Jsonx.member "quick" n) with
      | Some (Jsonx.Bool a), Some (Jsonx.Bool b) when a <> b ->
        "env: quick-mode flag differs — sweeps cover different grids" :: acc
      | _ -> acc
    in
    [] |> mismatch "git_commit" "cross-commit"
    |> mismatch "hostname" "cross-machine"
    |> dirty o "OLD" |> dirty n "NEW" |> quick |> List.rev
  | _ -> []

let diff ?(threshold = 0.25) ?(min_s = 0.05) ~old_json ~new_json () =
  match (rows_of old_json, rows_of new_json) with
  | Error e, _ | _, Error e -> Error e
  | Ok old_rows, Ok new_rows ->
    let keyed rows =
      List.filter_map (fun r -> Option.map (fun k -> (k, r)) (row_key r)) rows
    in
    let old_k = keyed old_rows and new_k = keyed new_rows in
    let compared = ref 0 in
    let regressions = ref [] and improvements = ref [] in
    let notes = ref (List.rev (env_notes ~old_json ~new_json)) in
    List.iter
      (fun (key, old_row) ->
        match List.assoc_opt key new_k with
        | None -> notes := Printf.sprintf "row [%s] missing in NEW" key :: !notes
        | Some new_row ->
          let new_fields = numeric_fields new_row in
          List.iter
            (fun (field, old_v) ->
              match List.assoc_opt field new_fields with
              | None ->
                notes :=
                  Printf.sprintf "field %s of row [%s] missing in NEW" field key
                  :: !notes
              | Some new_v ->
                let timing = has_suffix field "_s" in
                (* [_bits] fields (soundness) are better when larger, so
                   the regression direction flips: losing bits regresses,
                   gaining them improves. Deterministic like cycle and
                   byte counts — no noise floor. *)
                let inverted = has_suffix field "_bits" in
                let counted =
                  timing || inverted || has_suffix field "_cycles"
                  || has_suffix field "_bytes"
                in
                if counted then begin
                  incr compared;
                  let ratio = if old_v = 0. then (if new_v = 0. then 1. else infinity) else new_v /. old_v in
                  let above_floor = (not timing) || old_v >= min_s || new_v >= min_s in
                  let change = { key; field; old_v; new_v; ratio } in
                  let worse =
                    if inverted then ratio < 1. /. (1. +. threshold)
                    else ratio > 1. +. threshold
                  in
                  let better =
                    if inverted then ratio > 1. +. threshold
                    else ratio < 1. /. (1. +. threshold)
                  in
                  if above_floor && worse then
                    regressions := change :: !regressions
                  else if above_floor && better then
                    improvements := change :: !improvements
                end)
            (numeric_fields old_row))
      old_k;
    List.iter
      (fun (key, _) ->
        if not (List.mem_assoc key old_k) then
          notes := Printf.sprintf "row [%s] only in NEW" key :: !notes)
      new_k;
    Ok
      {
        compared = !compared;
        regressions = List.rev !regressions;
        improvements = List.rev !improvements;
        notes = List.rev !notes;
      }

let ok r = r.regressions = []

let pp_change fmt c =
  Format.fprintf fmt "  [%s] %s: %g -> %g (%.2fx)@," c.key c.field c.old_v c.new_v
    c.ratio

let pp fmt r =
  Format.fprintf fmt "@[<v>bench-diff: %d field(s) compared@," r.compared;
  if r.regressions = [] then Format.fprintf fmt "regressions: none@,"
  else begin
    Format.fprintf fmt "regressions: %d@," (List.length r.regressions);
    List.iter (pp_change fmt) r.regressions
  end;
  if r.improvements <> [] then begin
    Format.fprintf fmt "improvements: %d@," (List.length r.improvements);
    List.iter (pp_change fmt) r.improvements
  end;
  List.iter (fun n -> Format.fprintf fmt "note: %s@," n) r.notes;
  Format.fprintf fmt "verdict: %s@]" (if ok r then "OK" else "REGRESSED")

let change_json c =
  Jsonx.Obj
    [
      ("row", Jsonx.Str c.key);
      ("field", Jsonx.Str c.field);
      ("old", Jsonx.Num c.old_v);
      ("new", Jsonx.Num c.new_v);
      ("ratio", Jsonx.Num c.ratio);
    ]

let to_json r =
  Jsonx.Obj
    [
      ("compared", Jsonx.Num (float_of_int r.compared));
      ("regressions", Jsonx.Arr (List.map change_json r.regressions));
      ("improvements", Jsonx.Arr (List.map change_json r.improvements));
      ("notes", Jsonx.Arr (List.map (fun n -> Jsonx.Str n) r.notes));
      ("ok", Jsonx.Bool (ok r));
    ]
