module Flowkey = Zkflow_netflow.Flowkey
module Record = Zkflow_netflow.Record
module Tree = Zkflow_merkle.Tree
module D = Zkflow_hash.Digest32

type entry = { key : Flowkey.t; metrics : Record.metrics }

let entry_words e =
  Array.append (Flowkey.to_words e.key)
    [|
      e.metrics.Record.packets; e.metrics.Record.bytes;
      e.metrics.Record.hop_count; e.metrics.Record.losses;
    |]

let entry_of_words w =
  if Array.length w <> 8 then Error "clog entry: need 8 words"
  else
    match Flowkey.of_words (Array.sub w 0 4) with
    | Error e -> Error e
    | Ok key -> (
      match Record.metrics_of_words (Array.sub w 4 4) with
      | Error e -> Error e
      | Ok metrics -> Ok { key; metrics })

let entry_bytes e =
  let ws = entry_words e in
  let b = Bytes.create 32 in
  Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) ws;
  b

let leaf_digest e = Tree.leaf_hash (entry_bytes e)

type t = {
  entries : entry array;
  index : (Flowkey.t, int) Hashtbl.t;
  lazy_tree : Tree.t Lazy.t;
}

let scratch_tree entries =
  Tree.of_leaves (Zkflow_parallel.Pool.map_array ~min_chunk:2048 entry_bytes entries)

let build entries =
  let index = Hashtbl.create (max 16 (Array.length entries)) in
  Array.iteri (fun i e -> Hashtbl.replace index e.key i) entries;
  { entries; index; lazy_tree = lazy (scratch_tree entries) }

let empty = build [||]
let entries t = Array.copy t.entries
let length t = Array.length t.entries

let of_entries es =
  let t = build (Array.copy es) in
  (* Index insertion already deduplicates keys, so the duplicate check
     is a size comparison — no sorted key list per call. *)
  if Hashtbl.length t.index <> Array.length es then Error "clog: duplicate flow keys"
  else Ok t

let of_entries_with_snapshot es ~snapshot =
  match Zkflow_merkle.Tree.of_snapshot snapshot with
  | Error e -> Error ("clog: " ^ e)
  | Ok tr ->
    if Tree.size tr <> Array.length es then
      Error "clog: snapshot leaf count does not match entries"
    else begin
      let es = Array.copy es in
      let index = Hashtbl.create (max 16 (Array.length es)) in
      Array.iteri (fun i e -> Hashtbl.replace index e.key i) es;
      if Hashtbl.length index <> Array.length es then
        Error "clog: duplicate flow keys"
      else Ok { entries = es; index; lazy_tree = Lazy.from_val tr }
    end

let tree t = Lazy.force t.lazy_tree
let root t = Tree.root (tree t)
let tree_snapshot t = Tree.to_snapshot (tree t)

let find t key =
  Option.map (fun i -> (i, t.entries.(i))) (Hashtbl.find_opt t.index key)

let words t =
  let n = Array.length t.entries in
  let out = Array.make (8 * n) 0 in
  Array.iteri
    (fun i e ->
      let w = entry_words e in
      Array.blit w 0 out (8 * i) 8)
    t.entries;
  out

(* The shared fold of a record batch into the entry array: existing
   flows accumulate in place, new flows append. Returns the final
   entries, the key index of the result (the fold already built it —
   no rebuild), and the set of pre-existing indices whose metrics
   changed, which is exactly the dirty-leaf set of the Merkle tree. *)
let merge_batch t records =
  let old_n = Array.length t.entries in
  let table = Hashtbl.copy t.index in
  let metrics = Hashtbl.create (old_n + Array.length records) in
  Array.iteri (fun i e -> Hashtbl.replace metrics i e.metrics) t.entries;
  let touched = Hashtbl.create 32 in
  let new_keys_rev = ref [] in
  let n = ref old_n in
  Array.iter
    (fun (r : Record.t) ->
      match Hashtbl.find_opt table r.Record.key with
      | Some i ->
        Hashtbl.replace metrics i
          (Record.add_metrics (Hashtbl.find metrics i) r.Record.metrics);
        if i < old_n then Hashtbl.replace touched i ()
      | None ->
        Hashtbl.replace table r.Record.key !n;
        Hashtbl.replace metrics !n r.Record.metrics;
        new_keys_rev := r.Record.key :: !new_keys_rev;
        incr n)
    records;
  let new_keys = Array.of_list (List.rev !new_keys_rev) in
  let final =
    Array.init !n (fun i ->
        let key =
          if i < old_n then t.entries.(i).key else new_keys.(i - old_n)
        in
        { key; metrics = Hashtbl.find metrics i })
  in
  (final, table, touched)

let apply_batch t records =
  let final, table, touched = merge_batch t records in
  let old_n = Array.length t.entries in
  let prev_tree = t.lazy_tree in
  let lazy_tree =
    (* A cold state (nothing carried over) rebuilds with the parallel
       leaf-hashing path; a warm one adopts the previous round's tree
       and re-hashes only the dirty root-paths. Both produce the same
       bits — the differential tests pin that. *)
    if old_n = 0 then lazy (scratch_tree final)
    else
      lazy
        begin
          let inc = Zkflow_merkle.Incremental.of_tree (Lazy.force prev_tree) in
          Hashtbl.iter
            (fun i () -> Zkflow_merkle.Incremental.set_leaf inc i (leaf_digest final.(i)))
            touched;
          for i = old_n to Array.length final - 1 do
            Zkflow_merkle.Incremental.append inc (leaf_digest final.(i))
          done;
          Zkflow_merkle.Incremental.commit inc
        end
  in
  { entries = final; index = table; lazy_tree }

let apply_batch_rebuild t records =
  let final, table, _ = merge_batch t records in
  { entries = final; index = table; lazy_tree = lazy (scratch_tree final) }

let empty_root = root empty
