module Flowkey = Zkflow_netflow.Flowkey
module Record = Zkflow_netflow.Record
module Tree = Zkflow_merkle.Tree
module D = Zkflow_hash.Digest32

type entry = { key : Flowkey.t; metrics : Record.metrics }

let entry_words e =
  Array.append (Flowkey.to_words e.key)
    [|
      e.metrics.Record.packets; e.metrics.Record.bytes;
      e.metrics.Record.hop_count; e.metrics.Record.losses;
    |]

let entry_of_words w =
  if Array.length w <> 8 then Error "clog entry: need 8 words"
  else
    match Flowkey.of_words (Array.sub w 0 4) with
    | Error e -> Error e
    | Ok key -> (
      match Record.metrics_of_words (Array.sub w 4 4) with
      | Error e -> Error e
      | Ok metrics -> Ok { key; metrics })

let entry_bytes e =
  let ws = entry_words e in
  let b = Bytes.create 32 in
  Array.iteri (fun i w -> Bytes.set_int32_be b (4 * i) (Int32.of_int w)) ws;
  b

let leaf_digest e = Tree.leaf_hash (entry_bytes e)

type t = {
  entries : entry array;
  index : (Flowkey.t, int) Hashtbl.t;
  lazy_tree : Tree.t Lazy.t;
}

let build entries =
  let index = Hashtbl.create (max 16 (Array.length entries)) in
  Array.iteri (fun i e -> Hashtbl.replace index e.key i) entries;
  {
    entries;
    index;
    lazy_tree =
      lazy (Tree.of_leaves (Zkflow_parallel.Pool.map_array ~min_chunk:2048 entry_bytes entries));
  }

let empty = build [||]
let entries t = Array.copy t.entries
let length t = Array.length t.entries

let of_entries es =
  let keys = Array.to_list es |> List.map (fun e -> e.key) in
  if List.length (List.sort_uniq Flowkey.compare keys) <> Array.length es then
    Error "clog: duplicate flow keys"
  else Ok (build (Array.copy es))

let tree t = Lazy.force t.lazy_tree
let root t = Tree.root (tree t)

let find t key =
  Option.map (fun i -> (i, t.entries.(i))) (Hashtbl.find_opt t.index key)

let words t =
  Array.concat (List.map entry_words (Array.to_list t.entries))

let apply_batch t records =
  let table = Hashtbl.copy t.index in
  let metrics = Hashtbl.create (Array.length t.entries + Array.length records) in
  Array.iteri (fun i e -> Hashtbl.replace metrics i e.metrics) t.entries;
  let new_keys_rev = ref [] in
  let n = ref (Array.length t.entries) in
  Array.iter
    (fun (r : Record.t) ->
      match Hashtbl.find_opt table r.Record.key with
      | Some i ->
        Hashtbl.replace metrics i
          (Record.add_metrics (Hashtbl.find metrics i) r.Record.metrics)
      | None ->
        Hashtbl.replace table r.Record.key !n;
        Hashtbl.replace metrics !n r.Record.metrics;
        new_keys_rev := r.Record.key :: !new_keys_rev;
        incr n)
    records;
  let new_keys = Array.of_list (List.rev !new_keys_rev) in
  let final =
    Array.init !n (fun i ->
        let key =
          if i < Array.length t.entries then t.entries.(i).key
          else new_keys.(i - Array.length t.entries)
        in
        { key; metrics = Hashtbl.find metrics i })
  in
  build final

let empty_root = root empty
