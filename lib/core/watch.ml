(* The live telemetry plane: routes the embedded HTTP server's three
   endpoints over either the in-process registries (a running prove)
   or saved run artifacts (a finished one). *)

module Event = Zkflow_obs.Event
module Timeseries = Zkflow_obs.Timeseries
module Export = Zkflow_obs.Export
module Httpd = Zkflow_obs.Httpd
module Jsonx = Zkflow_util.Jsonx

type source = {
  label : string;
  events : unit -> (Event.t list, string) result;
  frames : unit -> (Timeseries.frame list, string) result;
  metrics_text : unit -> string;
}

let live_source () =
  {
    label = "live";
    events = (fun () -> Ok (Event.events ()));
    frames = (fun () -> Ok (Timeseries.frames ()));
    metrics_text =
      (fun () ->
        Export.prometheus ()
        ^ Timeseries.prometheus_gauges (Timeseries.frames ()));
  }

let artifact_source ~events_path ?timeseries_path () =
  let load_frames () =
    match timeseries_path with
    | None -> Ok []
    | Some p -> Result.map fst (Timeseries.load_jsonl p)
  in
  {
    label = "artifact";
    events =
      (fun () ->
        match events_path with
        | None -> Ok []
        | Some p -> Result.map fst (Event.load_jsonl p));
    frames = load_frames;
    metrics_text =
      (fun () ->
        let frames = match load_frames () with Ok fs -> fs | Error _ -> [] in
        let registry =
          match List.rev frames with
          | [] -> ""
          | last :: _ ->
              Export.prometheus_of ~counters:last.Timeseries.counters
                ~histograms:last.Timeseries.histograms ~spans:[]
        in
        registry ^ Timeseries.prometheus_gauges frames);
  }

let json status body : Httpd.response =
  { status; content_type = "application/json"; body = Jsonx.to_string body }

let unavailable err =
  json 503 (Jsonx.Obj [ ("error", Jsonx.Str err) ])

let healthz ?(gap_grace = 0) source =
  match source.events () with
  | Error e -> unavailable e
  | Ok events ->
      let frames =
        match source.frames () with Ok fs -> fs | Error _ -> []
      in
      let report = Monitor.build ~frames ~gap_grace events in
      json 200
        (Jsonx.Obj
           [
             ("schema", Jsonx.Str "zkflow-healthz/v1");
             ("source", Jsonx.Str source.label);
             ("healthy", Jsonx.Bool (Monitor.healthy report));
             ("report", Monitor.to_json report);
           ])

let slo ?specs source =
  match source.events () with
  | Error e -> unavailable e
  | Ok events -> json 200 (Slo.to_json (Slo.evaluate ?specs events))

let index : Httpd.response =
  json 200
    (Jsonx.Obj
       [
         ("schema", Jsonx.Str "zkflow-watch/v1");
         ( "endpoints",
           Jsonx.Arr
             [ Jsonx.Str "/metrics"; Jsonx.Str "/healthz"; Jsonx.Str "/slo" ]
         );
       ])

let handler ?specs ?gap_grace source : Httpd.handler =
 fun req ->
  match req.Httpd.path with
  | "/" -> Some index
  | "/metrics" ->
      Some
        {
          status = 200;
          content_type = "text/plain; version=0.0.4";
          body = source.metrics_text ();
        }
  | "/healthz" -> Some (healthz ?gap_grace source)
  | "/slo" -> Some (slo ?specs source)
  | _ -> None

let probe (h : Httpd.handler) target : Httpd.response =
  let req = Httpd.request_of_target target in
  match h req with
  | Some r -> r
  | None ->
      json 404
        (Jsonx.Obj
           [ ("error", Jsonx.Str "not found"); ("path", Jsonx.Str req.path) ])
