(* The resident telemetry service behind [zkflow serve].

   Concurrency model: ONE worker thread owns every piece of mutable
   pipeline state — the record store, the prover service, the board.
   Exporters (the replay loop, the chaos harness) only touch the
   bounded ingest queue under [m]; HTTP query threads only read an
   immutable CLog snapshot behind [prove_m]. OCaml's Hashtbl-based
   store is not thread-safe, and the CLog root depends on round
   *order*, so funnelling all mutation through one thread is both the
   safety and the determinism story: given the same submissions and
   watermarks, the round schedule — and therefore the root — is
   bit-identical across runs and across crash/resume. *)

module Db = Zkflow_store.Db
module Board = Zkflow_commitlog.Board
module Record = Zkflow_netflow.Record
module Flowkey = Zkflow_netflow.Flowkey
module Ipaddr = Zkflow_netflow.Ipaddr
module Fault = Zkflow_fault.Fault
module Obs = Zkflow_obs
module Httpd = Zkflow_obs.Httpd
module Jsonx = Zkflow_util.Jsonx
module Rng = Zkflow_util.Rng
module D = Zkflow_hash.Digest32

let ( let* ) = Result.bind

type config = {
  queue_capacity : int;
  publish : bool;
  retry_attempts : int;
  retry_base_ms : float;
  retry_max_ms : float;
  retry_sleep : float -> unit;
  breaker_threshold : int;
  breaker_cooldown : int;
  watchdog_max_queue : int;
  watchdog_max_round_s : float;
  watchdog_interval_ms : int;
  gap_grace : int;
}

let default_config =
  {
    queue_capacity = 64;
    publish = true;
    retry_attempts = 5;
    retry_base_ms = 1.;
    retry_max_ms = 50.;
    retry_sleep = Thread.delay;
    breaker_threshold = 3;
    breaker_cooldown = 4;
    watchdog_max_queue = 48;
    watchdog_max_round_s = 30.;
    watchdog_interval_ms = 0;
    gap_grace = 1;
  }

type submit_result = Accepted | Shed | Duplicate | Closed

type item = { router_id : int; epoch : int; records : Record.t list }

type breaker = Closed_b | Open_b of int | Half_open_b

type lifecycle = Running | Draining

type t = {
  config : config;
  proof_params : Zkflow_zkproof.Params.t;
  db : Db.t;
  board : Board.t;
  ckpt_path : string;
  retry_rng : Rng.t;
  m : Mutex.t;
  cv : Condition.t; (* work arrived / space freed / lifecycle change *)
  idle_cv : Condition.t; (* worker went idle or crashed *)
  queue : item Queue.t;
  seen : (int * int, unit) Hashtbl.t; (* accepted (router, epoch) windows *)
  unpublishable : (int * int, unit) Hashtbl.t; (* board rejected; don't retry *)
  pub_high : (int, int) Hashtbl.t; (* per-router highest epoch on the board *)
  mutable service : Prover_service.t;
  mutable lifecycle : lifecycle;
  mutable watermark : int;
  mutable gen : int; (* bumped by submit/advance/drain *)
  mutable done_gen : int; (* last gen fully processed by the worker *)
  mutable busy : bool;
  mutable paused : bool;
  mutable stopping : bool;
  mutable crashed : string option;
  mutable worker : Thread.t option;
  mutable watchdog : Thread.t option;
  mutable breaker : breaker;
  mutable edge_failures : int;
  mutable accepted : int;
  mutable shed : int;
  mutable duplicates : int;
  mutable max_depth : int;
  mutable rounds_done : int;
  mutable heal_rounds : int;
  mutable drains : int;
  mutable drained : bool;
  mutable breaker_opens : int;
  mutable last_round_s : float option;
  mutable last_healthy : bool;
  (* query memo: (root hex | encoded query) -> proved row. Guarded by
     [memo_m]; proving itself is serialized behind [prove_m]. *)
  memo_m : Mutex.t;
  prove_m : Mutex.t;
  memo : (string, Query.result_row) Hashtbl.t;
  flows_memo : (string, Query.flows_result) Hashtbl.t;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let c_accepted = Obs.Metric.counter "daemon.ingest.accepted"
let c_shed = Obs.Metric.counter "daemon.ingest.shed"
let c_duplicate = Obs.Metric.counter "daemon.ingest.duplicate"
let c_breaker_open = Obs.Metric.counter "daemon.breaker.opens"
let c_memo_hit = Obs.Metric.counter "daemon.query.memo_hits"
let c_memo_miss = Obs.Metric.counter "daemon.query.memo_misses"

let num n = Jsonx.Num (float_of_int n)

let emit ?router ?epoch kind attrs =
  Obs.Event.emit ?router ?epoch ~track:"daemon" kind ~attrs

(* ---- ingest ---- *)

let depth_locked t = Queue.length t.queue

let submit_locked t ~router_id ~epoch records =
  if t.stopping || t.crashed <> None || t.lifecycle = Draining then Closed
  else if Hashtbl.mem t.seen (router_id, epoch) then begin
    t.duplicates <- t.duplicates + 1;
    Obs.Metric.add c_duplicate 1;
    emit ~router:router_id ~epoch "daemon.ingest.duplicate" [];
    Duplicate
  end
  else if depth_locked t >= t.config.queue_capacity then begin
    t.shed <- t.shed + 1;
    Obs.Metric.add c_shed 1;
    emit ~router:router_id ~epoch "daemon.ingest.shed"
      [ ("reason", Jsonx.Str "queue-full"); ("depth", num (depth_locked t)) ];
    Shed
  end
  else begin
    Queue.push { router_id; epoch; records } t.queue;
    Hashtbl.replace t.seen (router_id, epoch) ();
    t.accepted <- t.accepted + 1;
    Obs.Metric.add c_accepted 1;
    t.max_depth <- max t.max_depth (depth_locked t);
    emit ~router:router_id ~epoch "daemon.ingest.accept"
      [ ("records", num (List.length records)); ("depth", num (depth_locked t)) ];
    t.gen <- t.gen + 1;
    Condition.broadcast t.cv;
    Accepted
  end

let submit t ~router_id ~epoch records =
  Mutex.lock t.m;
  let r = submit_locked t ~router_id ~epoch records in
  Mutex.unlock t.m;
  r

let submit_wait t ~router_id ~epoch records =
  Mutex.lock t.m;
  let rec go () =
    if
      t.stopping || t.crashed <> None || t.lifecycle = Draining
      || Hashtbl.mem t.seen (router_id, epoch)
      || depth_locked t < t.config.queue_capacity
    then submit_locked t ~router_id ~epoch records
    else begin
      Condition.wait t.cv t.m;
      go ()
    end
  in
  let r = go () in
  Mutex.unlock t.m;
  r

(* Also the harness's "poke": even when the watermark does not move,
   the gen bump schedules one more worker pass — needed after the
   board changed under a [publish:false] daemon (heal candidates). *)
let advance t ~epoch =
  Mutex.lock t.m;
  if epoch > t.watermark then t.watermark <- epoch;
  t.gen <- t.gen + 1;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

(* ---- circuit breaker ---- *)

let breaker_allows t =
  match t.breaker with Closed_b | Half_open_b -> true | Open_b _ -> false

let breaker_open t ~edge =
  t.breaker <- Open_b t.config.breaker_cooldown;
  t.breaker_opens <- t.breaker_opens + 1;
  Obs.Metric.add c_breaker_open 1;
  emit "daemon.breaker.open"
    [ ("edge", Jsonx.Str edge); ("cooldown_passes", num t.config.breaker_cooldown) ]

let edge_failed t ~edge err =
  t.edge_failures <- t.edge_failures + 1;
  emit "daemon.edge.exhausted" [ ("edge", Jsonx.Str edge); ("error", Jsonx.Str err) ];
  match t.breaker with
  | Half_open_b -> breaker_open t ~edge
  | Closed_b when t.edge_failures >= t.config.breaker_threshold ->
    breaker_open t ~edge
  | _ -> ()

let edge_ok t =
  (match t.breaker with
  | Half_open_b ->
    t.breaker <- Closed_b;
    emit "daemon.breaker.close" []
  | _ -> ());
  t.edge_failures <- 0

let breaker_tick t =
  match t.breaker with
  | Open_b n when n <= 1 -> t.breaker <- Half_open_b
  | Open_b n -> t.breaker <- Open_b (n - 1)
  | _ -> ()

let retry_edge t ~label f =
  Fault.Retry.with_backoff ~max_attempts:t.config.retry_attempts
    ~base_ms:t.config.retry_base_ms ~max_ms:t.config.retry_max_ms
    ~sleep:t.config.retry_sleep ~rng:t.retry_rng ~label f

(* ---- health / watchdog ---- *)

type health = { healthy : bool; reasons : string list }

let health_snapshot t =
  Mutex.lock t.m;
  let depth = depth_locked t in
  let crashed = t.crashed in
  let breaker = t.breaker in
  let last_round = t.last_round_s in
  Mutex.unlock t.m;
  let reasons = ref [] in
  let add r = reasons := r :: !reasons in
  (match crashed with
  | Some site -> add (Printf.sprintf "crashed at %s" site)
  | None -> ());
  if depth > t.config.watchdog_max_queue then
    add
      (Printf.sprintf "queue depth %d > %d" depth t.config.watchdog_max_queue);
  (match last_round with
  | Some s when s > t.config.watchdog_max_round_s ->
    add
      (Printf.sprintf "round latency %.3fs > %.3fs" s
         t.config.watchdog_max_round_s)
  | _ -> ());
  (match breaker with
  | Open_b _ -> add "circuit breaker open"
  | _ -> ());
  (* monitor --strict over the live event ring: lag, gap-grace,
     rejects — the same verdict `zkflow monitor --strict` would give
     on this run's log. *)
  let report =
    Monitor.build
      ~frames:(Obs.Timeseries.frames ())
      ~gap_grace:t.config.gap_grace (Obs.Event.events ())
  in
  if not (Monitor.healthy report) then add "monitor strict checks failed";
  { healthy = !reasons = []; reasons = List.rev !reasons }

let watchdog_check t =
  let h = health_snapshot t in
  Mutex.lock t.m;
  let was = t.last_healthy in
  t.last_healthy <- h.healthy;
  Mutex.unlock t.m;
  if was && not h.healthy then
    emit "daemon.watchdog.trip"
      [ ("reasons", Jsonx.Arr (List.map (fun r -> Jsonx.Str r) h.reasons)) ];
  h

let health t = health_snapshot t

(* ---- the worker pass ---- *)

(* Pop the whole queue; waiters blocked on a full queue get space. *)
let take_items t =
  Mutex.lock t.m;
  let rec go acc =
    if Queue.is_empty t.queue then List.rev acc else go (Queue.pop t.queue :: acc)
  in
  let items = go [] in
  if items <> [] then Condition.broadcast t.cv;
  Mutex.unlock t.m;
  items

let ingest_pass t =
  match take_items t with
  | [] -> ()
  | items -> (
    (* One retried WAL-append edge per batch. The failpoint sits
       before the inserts so a retry never double-inserts. If even the
       retry budget is exhausted the batch is shed — journalled loss,
       never a wedged queue — and the windows become submittable
       again. *)
    match
      retry_edge t ~label:"daemon.ingest" (fun () ->
          Fault.failpoint "daemon.ingest")
    with
    | Error err ->
      Mutex.lock t.m;
      List.iter
        (fun it ->
          Hashtbl.remove t.seen (it.router_id, it.epoch);
          t.shed <- t.shed + 1;
          Obs.Metric.add c_shed 1;
          emit ~router:it.router_id ~epoch:it.epoch "daemon.ingest.shed"
            [ ("reason", Jsonx.Str "io-exhausted") ])
        items;
      edge_failed t ~edge:"ingest" err;
      Mutex.unlock t.m
    | Ok () ->
      List.iter
        (fun it -> List.iter (fun r -> Db.insert t.db r) it.records)
        items;
      Db.sync t.db;
      Mutex.lock t.m;
      edge_ok t;
      Mutex.unlock t.m)

(* Publish ingested windows on the routers' behalf (serve mode). The
   board enforces per-router monotone epochs, so walk epochs
   ascending; a pair the board rejects is remembered and never
   retried (its round will journal the gap instead of wedging). *)
let publish_pass t ~watermark =
  if t.config.publish then
    let epochs =
      List.filter (fun e -> e <= watermark) (List.sort compare (Db.epochs t.db))
    in
    List.iter
      (fun epoch ->
        List.iter
          (fun router_id ->
            let key = (router_id, epoch) in
            if not (Hashtbl.mem t.unpublishable key) then
              match Board.lookup t.board ~router_id ~epoch with
              | Some _ ->
                if
                  match Hashtbl.find_opt t.pub_high router_id with
                  | Some hi -> epoch > hi
                  | None -> true
                then Hashtbl.replace t.pub_high router_id epoch
              | None ->
                let monotone =
                  match Hashtbl.find_opt t.pub_high router_id with
                  | Some hi -> epoch > hi
                  | None -> true
                in
                if monotone && breaker_allows t then begin
                  let window = Db.window t.db ~router_id ~epoch in
                  match
                    retry_edge t
                      ~label:(Printf.sprintf "daemon.publish r%d/e%d" router_id epoch)
                      (fun () ->
                        let* () = Fault.failpoint "daemon.publish" in
                        Result.map ignore
                          (Board.publish t.board window ~router_id ~epoch))
                  with
                  | Ok () ->
                    Mutex.lock t.m;
                    edge_ok t;
                    Mutex.unlock t.m;
                    Hashtbl.replace t.pub_high router_id epoch
                  | Error err ->
                    Mutex.lock t.m;
                    edge_failed t ~edge:"publish" err;
                    Mutex.unlock t.m;
                    (* A plain board rejection is permanent: retrying
                       forever would wedge. Exhausted transient
                       failures stay retryable (the breaker paces
                       them). *)
                    if not (Fault.armed ()) then
                      Hashtbl.replace t.unpublishable key ()
                end)
          (Db.routers_for t.db ~epoch))
      epochs

(* Late-arriving exports: the round for an epoch already ran, and only
   now did some router's records show up. Put the pair in the gap
   journal so heal folds it in once its commitment is published. *)
let late_gap_pass t ~watermark =
  let coverage = Prover_service.coverage t.service in
  let covered = Prover_service.covered_epochs t.service in
  List.iter
    (fun epoch ->
      if epoch <= watermark then begin
        let covered_routers =
          List.concat_map
            (fun (c : Prover_service.coverage) ->
              if c.epoch = epoch then c.routers else [])
            coverage
        in
        List.iter
          (fun router_id ->
            if not (List.mem router_id covered_routers) then
              ignore (Prover_service.note_gap t.service ~router_id ~epoch))
          (Db.routers_for t.db ~epoch)
      end)
    covered

let round_wall (round : Aggregate.round) =
  round.Aggregate.execute_s +. round.Aggregate.prove_s

(* Prove closed, not-yet-attempted epochs ascending. "Attempted"
   means covered by a round OR present in the gap journal: a fully
   skipped epoch (nobody published) must be completed by heal rounds,
   not by a late full round — re-running aggregate_available after
   the commitments appear would cover the same records twice. *)
let rounds_pass t ~watermark =
  let covered = Prover_service.covered_epochs t.service in
  let gap_epochs =
    List.map (fun (g : Prover_service.gap) -> g.epoch) (Prover_service.gaps t.service)
  in
  let attempted e = List.mem e covered || List.mem e gap_epochs in
  List.iter
    (fun epoch ->
      if epoch <= watermark && not (attempted epoch) then begin
        Mutex.lock t.prove_m;
        let outcome =
          Fun.protect
            ~finally:(fun () -> Mutex.unlock t.prove_m)
            (fun () -> Prover_service.aggregate_available t.service ~epoch)
        in
        match outcome with
        | Ok (Prover_service.Complete round)
        | Ok (Prover_service.Degraded (round, _)) ->
          Mutex.lock t.m;
          t.rounds_done <- t.rounds_done + 1;
          t.last_round_s <- Some (round_wall round);
          Mutex.unlock t.m
        | Ok (Prover_service.Skipped _) -> ()
        | Error err ->
          Mutex.lock t.m;
          edge_failed t ~edge:"round" err;
          Mutex.unlock t.m;
          emit ~epoch "daemon.round.error" [ ("error", Jsonx.Str err) ]
      end)
    (List.sort compare (Db.epochs t.db))

let heal_pass t =
  if Prover_service.heal_pending t.service then begin
    Mutex.lock t.prove_m;
    let outcome =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.prove_m)
        (fun () -> Prover_service.heal t.service)
    in
    match outcome with
    | Ok rounds ->
      Mutex.lock t.m;
      t.heal_rounds <- t.heal_rounds + List.length rounds;
      (match List.rev rounds with
      | last :: _ -> t.last_round_s <- Some (round_wall last)
      | [] -> ());
      Mutex.unlock t.m
    | Error err ->
      Mutex.lock t.m;
      edge_failed t ~edge:"heal" err;
      Mutex.unlock t.m;
      emit "daemon.heal.error" [ ("error", Jsonx.Str err) ]
  end

let pass t =
  let watermark =
    Mutex.lock t.m;
    let w = t.watermark in
    Mutex.unlock t.m;
    w
  in
  ingest_pass t;
  publish_pass t ~watermark;
  late_gap_pass t ~watermark;
  rounds_pass t ~watermark;
  heal_pass t;
  Mutex.lock t.m;
  breaker_tick t;
  Mutex.unlock t.m;
  ignore (watchdog_check t)

(* ---- worker / watchdog threads ---- *)

let worker_loop t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    while
      (not t.stopping) && t.crashed = None
      && (t.paused || (Queue.is_empty t.queue && t.done_gen = t.gen))
    do
      t.busy <- false;
      Condition.broadcast t.idle_cv;
      Condition.wait t.cv t.m
    done;
    if t.stopping || t.crashed <> None then begin
      t.busy <- false;
      Condition.broadcast t.idle_cv;
      Mutex.unlock t.m;
      continue := false
    end
    else begin
      t.busy <- true;
      let g = t.gen in
      Mutex.unlock t.m;
      match pass t with
      | () ->
        Mutex.lock t.m;
        t.done_gen <- max t.done_gen g;
        Mutex.unlock t.m
      | exception Fault.Crash site ->
        (* The simulated SIGKILL: everything volatile is gone. The
           checkpoint WAL's unsynced tail is abandoned (exactly what a
           real crash does to it) and the queue is dropped. *)
        Mutex.lock t.m;
        t.crashed <- Some site;
        Queue.clear t.queue;
        (try Prover_service.abandon t.service with _ -> ());
        t.busy <- false;
        Condition.broadcast t.idle_cv;
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        continue := false
    end
  done

let watchdog_loop t =
  let period = float_of_int t.config.watchdog_interval_ms /. 1000. in
  let rec go () =
    if not t.stopping then begin
      Thread.delay period;
      if not t.stopping then begin
        ignore (watchdog_check t);
        go ()
      end
    end
  in
  go ()

let derive_seen t =
  Hashtbl.reset t.seen;
  List.iter
    (fun epoch ->
      List.iter
        (fun router_id -> Hashtbl.replace t.seen (router_id, epoch) ())
        (Db.routers_for t.db ~epoch))
    (Db.epochs t.db)

let create ?(config = default_config) ?proof_params ?(seed = 0x5e17e) ?(paused = false)
    ~db ~board ~ckpt_path () =
  match Prover_service.resume ?proof_params ~db ~board ~path:ckpt_path () with
  | exception Fault.Crash site -> Error ("crashed during resume at " ^ site)
  | Error e -> Error e
  | Ok (service, restored) ->
    let t =
      {
        config;
        proof_params = Prover_service.proof_params service;
        db;
        board;
        ckpt_path;
        retry_rng = Rng.create (Int64.of_int (0xdae0 + seed));
        m = Mutex.create ();
        cv = Condition.create ();
        idle_cv = Condition.create ();
        queue = Queue.create ();
        seen = Hashtbl.create 64;
        unpublishable = Hashtbl.create 8;
        pub_high = Hashtbl.create 8;
        service;
        lifecycle = Running;
        watermark = -1;
        gen = 0;
        done_gen = 0;
        busy = false;
        paused;
        stopping = false;
        crashed = None;
        worker = None;
        watchdog = None;
        breaker = Closed_b;
        edge_failures = 0;
        accepted = 0;
        shed = 0;
        duplicates = 0;
        max_depth = 0;
        rounds_done = 0;
        heal_rounds = 0;
        drains = 0;
        drained = false;
        breaker_opens = 0;
        last_round_s = None;
        last_healthy = true;
        memo_m = Mutex.create ();
        prove_m = Mutex.create ();
        memo = Hashtbl.create 32;
        flows_memo = Hashtbl.create 8;
        memo_hits = 0;
        memo_misses = 0;
      }
    in
    derive_seen t;
    t.worker <- Some (Thread.create worker_loop t);
    if config.watchdog_interval_ms > 0 then
      t.watchdog <- Some (Thread.create watchdog_loop t);
    emit "daemon.start" [ ("restored_rounds", num restored) ];
    Ok (t, restored)

let unpause t =
  Mutex.lock t.m;
  t.paused <- false;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let idle_locked t =
  (not t.busy) && Queue.is_empty t.queue && t.done_gen = t.gen

let await_idle t =
  Mutex.lock t.m;
  while t.crashed = None && not (idle_locked t) do
    Condition.wait t.idle_cv t.m
  done;
  let r = match t.crashed with Some site -> `Crashed site | None -> `Idle in
  Mutex.unlock t.m;
  r

let crashed t =
  Mutex.lock t.m;
  let c = t.crashed in
  Mutex.unlock t.m;
  c

let kill t ~site =
  Mutex.lock t.m;
  if t.crashed = None then begin
    t.crashed <- Some site;
    Queue.clear t.queue;
    (try Prover_service.abandon t.service with _ -> ());
    Condition.broadcast t.cv;
    Condition.broadcast t.idle_cv
  end;
  Mutex.unlock t.m;
  match t.worker with Some th -> Thread.join th | None -> ()

let restart t =
  Mutex.lock t.m;
  match t.crashed with
  | None ->
    Mutex.unlock t.m;
    Error "daemon: restart without a crash"
  | Some _ ->
    let old = t.worker in
    t.worker <- None;
    Mutex.unlock t.m;
    (match old with Some th -> Thread.join th | None -> ());
    (match
       Prover_service.resume ~proof_params:t.proof_params ~db:t.db
         ~board:t.board ~path:t.ckpt_path ()
     with
    | exception Fault.Crash site ->
      Mutex.lock t.m;
      t.crashed <- Some site;
      Mutex.unlock t.m;
      Error "crashed during resume"
    | Error e -> Error e
    | Ok (service, restored) ->
      Mutex.lock t.m;
      t.service <- service;
      t.crashed <- None;
      t.busy <- false;
      t.edge_failures <- 0;
      t.breaker <- Closed_b;
      Queue.clear t.queue;
      derive_seen t;
      t.gen <- t.gen + 1;
      (* memoized proofs answer old roots fine, but drop them: the
         resumed service may extend the log past them immediately *)
      t.worker <- Some (Thread.create worker_loop t);
      Mutex.unlock t.m;
      emit "daemon.restart" [ ("restored_rounds", num restored) ];
      Ok restored)

let drain t =
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    Error "daemon: stopped"
  end
  else begin
    if t.lifecycle <> Draining then emit "daemon.drain.start" [];
    t.lifecycle <- Draining;
    t.watermark <- max_int;
    t.paused <- false;
    t.gen <- t.gen + 1;
    Condition.broadcast t.cv;
    while t.crashed = None && not (idle_locked t) do
      Condition.wait t.idle_cv t.m
    done;
    let r =
      match t.crashed with
      | Some site -> Error (Printf.sprintf "crashed at %s during drain" site)
      | None ->
        if not t.drained then begin
          t.drained <- true;
          t.drains <- t.drains + 1;
          emit "daemon.drain.done"
            [ ("rounds", num t.rounds_done); ("heal_rounds", num t.heal_rounds) ]
        end;
        Ok ()
    in
    Mutex.unlock t.m;
    r
  end

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  (match t.worker with Some th -> Thread.join th | None -> ());
  t.worker <- None;
  match t.watchdog with
  | Some th ->
    Thread.join th;
    t.watchdog <- None
  | None -> ()

(* ---- introspection ---- *)

let service t = t.service

let root_hex t = D.to_hex (Clog.root (Prover_service.clog t.service))

type counters = {
  accepted : int;
  shed : int;
  duplicates : int;
  queue_depth : int;
  max_depth : int;
  rounds : int;
  heal_rounds : int;
  drains : int;
  breaker_opens : int;
  memo_hits : int;
  memo_misses : int;
  breaker : string;
}

let counters t =
  Mutex.lock t.m;
  let c =
    {
      accepted = t.accepted;
      shed = t.shed;
      duplicates = t.duplicates;
      queue_depth = depth_locked t;
      max_depth = t.max_depth;
      rounds = t.rounds_done;
      heal_rounds = t.heal_rounds;
      drains = t.drains;
      breaker_opens = t.breaker_opens;
      memo_hits = t.memo_hits;
      memo_misses = t.memo_misses;
      breaker =
        (match t.breaker with
        | Closed_b -> "closed"
        | Open_b _ -> "open"
        | Half_open_b -> "half-open");
    }
  in
  Mutex.unlock t.m;
  c

(* ---- memoized query front-end ---- *)

let memo_cap = 256

let encode_predicate (p : Guests.predicate) =
  let ip = function None -> "*" | Some v -> Ipaddr.to_string v in
  let int_f = function None -> "*" | Some v -> string_of_int v in
  String.concat "/"
    [ ip p.src_ip; ip p.dst_ip; int_f p.ports; int_f p.proto ]

let encode_op = function
  | Guests.Sum -> "sum"
  | Guests.Count -> "count"
  | Guests.Max -> "max"
  | Guests.Min -> "min"

let encode_metric = function
  | Guests.Packets -> "packets"
  | Guests.Bytes -> "bytes"
  | Guests.Hops -> "hops"
  | Guests.Losses -> "losses"

let encode_params (p : Guests.query_params) =
  String.concat "/"
    [ encode_predicate p.predicate; encode_op p.op; encode_metric p.metric ]

let memo_note_hit t =
  Mutex.lock t.memo_m;
  t.memo_hits <- t.memo_hits + 1;
  Mutex.unlock t.memo_m;
  Obs.Metric.add c_memo_hit 1

let memo_note_miss t =
  Mutex.lock t.memo_m;
  t.memo_misses <- t.memo_misses + 1;
  Mutex.unlock t.memo_m;
  Obs.Metric.add c_memo_miss 1

let memo_find tbl t key =
  Mutex.lock t.memo_m;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock t.memo_m;
  r

let memo_add tbl t key v =
  Mutex.lock t.memo_m;
  if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
  Hashtbl.replace tbl key v;
  Mutex.unlock t.memo_m

(* Prove against a CLog *snapshot* (the field read is atomic enough:
   the worker replaces the whole service value only on restart, and a
   CLog is persistent) — so the memo key's root always matches the
   root the proof answers, even if a round lands mid-prove. *)
let snapshot_clog t =
  Mutex.lock t.m;
  let clog = Prover_service.clog t.service in
  Mutex.unlock t.m;
  clog

let query t params =
  let clog = snapshot_clog t in
  let key = D.to_hex (Clog.root clog) ^ "|q|" ^ encode_params params in
  match memo_find t.memo t key with
  | Some row ->
    memo_note_hit t;
    Ok (row, true)
  | None ->
    Mutex.lock t.prove_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.prove_m)
      (fun () ->
        match memo_find t.memo t key with
        | Some row ->
          memo_note_hit t;
          Ok (row, true)
        | None ->
          memo_note_miss t;
          let* row = Query.prove ~params:t.proof_params ~clog params in
          memo_add t.memo t key row;
          Ok (row, false))

let query_flows t ~metric keys =
  let clog = snapshot_clog t in
  let key =
    D.to_hex (Clog.root clog)
    ^ "|f|" ^ encode_metric metric ^ "|"
    ^ String.concat ","
        (List.map
           (fun (k : Flowkey.t) ->
             Printf.sprintf "%s:%s:%d:%d:%d" (Ipaddr.to_string k.src_ip)
               (Ipaddr.to_string k.dst_ip) k.src_port k.dst_port k.proto)
           keys)
  in
  match memo_find t.flows_memo t key with
  | Some fr ->
    memo_note_hit t;
    Ok (fr, true)
  | None ->
    Mutex.lock t.prove_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.prove_m)
      (fun () ->
        match memo_find t.flows_memo t key with
        | Some fr ->
          memo_note_hit t;
          Ok (fr, true)
        | None ->
          memo_note_miss t;
          let* fr = Query.prove_flows ~clog ~metric keys in
          memo_add t.flows_memo t key fr;
          Ok (fr, false))

(* ---- HTTP plane ---- *)

let json status body : Httpd.response =
  { status; content_type = "application/json"; body = Jsonx.to_string body }

let bad_request msg =
  json 400 (Jsonx.Obj [ ("error", Jsonx.Str msg) ])

let parse_metric = function
  | "packets" -> Ok Guests.Packets
  | "bytes" -> Ok Guests.Bytes
  | "hops" -> Ok Guests.Hops
  | "losses" -> Ok Guests.Losses
  | s -> Error (Printf.sprintf "unknown metric %S" s)

let parse_op = function
  | "sum" -> Ok Guests.Sum
  | "count" -> Ok Guests.Count
  | "max" -> Ok Guests.Max
  | "min" -> Ok Guests.Min
  | s -> Error (Printf.sprintf "unknown op %S" s)

let parse_query_request req =
  let opt name parse =
    match Httpd.param req name with
    | None | Some "" -> Ok None
    | Some s -> Result.map Option.some (parse s)
  in
  let int_param s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "not an integer: %S" s)
  in
  let* src_ip = opt "src" Ipaddr.of_string in
  let* dst_ip = opt "dst" Ipaddr.of_string in
  let* ports = opt "ports" int_param in
  let* proto = opt "proto" int_param in
  let* op = parse_op (Option.value ~default:"sum" (Httpd.param req "op")) in
  let* metric =
    parse_metric (Option.value ~default:"packets" (Httpd.param req "metric"))
  in
  Ok { Guests.predicate = { src_ip; dst_ip; ports; proto }; op; metric }

let flowkey_of_string s =
  match String.split_on_char ':' s with
  | [ src; dst; sp; dp; pr ] -> (
    let* src_ip = Ipaddr.of_string src in
    let* dst_ip = Ipaddr.of_string dst in
    match (int_of_string_opt sp, int_of_string_opt dp, int_of_string_opt pr) with
    | Some src_port, Some dst_port, Some proto -> (
      try Ok (Flowkey.make ~src_ip ~dst_ip ~src_port ~dst_port ~proto)
      with Invalid_argument m -> Error m)
    | _ -> Error (Printf.sprintf "bad flow key %S" s))
  | _ -> Error (Printf.sprintf "bad flow key %S (want src:dst:sport:dport:proto)" s)

let parse_flow_keys t req =
  match (Httpd.param req "keys", Httpd.param req "first") with
  | Some keys, _ ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest ->
        let* k = flowkey_of_string s in
        go (k :: acc) rest
    in
    go [] (String.split_on_char ',' keys)
  | None, Some n -> (
    match int_of_string_opt n with
    | Some n when n > 0 ->
      let entries = Clog.entries (snapshot_clog t) in
      let n = min n (Array.length entries) in
      Ok (List.init n (fun i -> entries.(i).Clog.key))
    | _ -> Error "first: want a positive integer")
  | None, None -> Error "missing keys= or first="

let status_json t =
  let c = counters t in
  let svc = t.service in
  Jsonx.Obj
    [
      ("schema", Jsonx.Str "zkflow-daemon-status/v1");
      ("root", Jsonx.Str (root_hex t));
      ("entries", num (Clog.length (Prover_service.clog svc)));
      ("rounds", num (List.length (Prover_service.rounds svc)));
      ("open_gaps", num (List.length (Prover_service.open_gaps svc)));
      ("queue_depth", num c.queue_depth);
      ("max_depth", num c.max_depth);
      ("accepted", num c.accepted);
      ("shed", num c.shed);
      ("duplicates", num c.duplicates);
      ("heal_rounds", num c.heal_rounds);
      ("drains", num c.drains);
      ("breaker", Jsonx.Str c.breaker);
      ("breaker_opens", num c.breaker_opens);
      ( "memo",
        Jsonx.Obj [ ("hits", num c.memo_hits); ("misses", num c.memo_misses) ] );
      ( "crashed",
        match crashed t with
        | Some site -> Jsonx.Str site
        | None -> Jsonx.Bool false );
    ]

let index_response =
  json 200
    (Jsonx.Obj
       [
         ("schema", Jsonx.Str "zkflow-serve/v1");
         ( "endpoints",
           Jsonx.Arr
             (List.map
                (fun s -> Jsonx.Str s)
                [ "/status"; "/healthz"; "/metrics"; "/slo"; "/query"; "/flows" ])
         );
       ])

let handler ?specs t : Httpd.handler =
  let base = Watch.handler ?specs ~gap_grace:t.config.gap_grace (Watch.live_source ()) in
  fun req ->
    match req.Httpd.path with
    | "/" -> Some index_response
    | "/status" -> Some (json 200 (status_json t))
    | "/healthz" ->
      let h = health t in
      Some
        (json
           (if h.healthy then 200 else 503)
           (Jsonx.Obj
              [
                ("schema", Jsonx.Str "zkflow-daemon-healthz/v1");
                ("healthy", Jsonx.Bool h.healthy);
                ( "reasons",
                  Jsonx.Arr (List.map (fun r -> Jsonx.Str r) h.reasons) );
              ]))
    | "/query" -> (
      match parse_query_request req with
      | Error msg -> Some (bad_request msg)
      | Ok params -> (
        match query t params with
        | Error msg -> Some (json 500 (Jsonx.Obj [ ("error", Jsonx.Str msg) ]))
        | Ok (row, cached) ->
          let j = row.Query.journal in
          Some
            (json 200
               (Jsonx.Obj
                  [
                    ("schema", Jsonx.Str "zkflow-daemon-query/v1");
                    ("root", Jsonx.Str (D.to_hex j.Guests.root));
                    ("result", num j.Guests.result);
                    ("matches", num j.Guests.matches);
                    ("op", Jsonx.Str (encode_op params.Guests.op));
                    ("metric", Jsonx.Str (encode_metric params.Guests.metric));
                    ("cached", Jsonx.Bool cached);
                    ("cycles", num row.Query.cycles);
                  ]))))
    | "/flows" -> (
      match parse_flow_keys t req with
      | Error msg -> Some (bad_request msg)
      | Ok [] -> Some (bad_request "no flow keys")
      | Ok keys -> (
        match
          let* metric =
            parse_metric
              (Option.value ~default:"bytes" (Httpd.param req "metric"))
          in
          query_flows t ~metric keys
        with
        | Error msg -> Some (json 500 (Jsonx.Obj [ ("error", Jsonx.Str msg) ]))
        | Ok (fr, cached) ->
          Some
            (json 200
               (Jsonx.Obj
                  [
                    ("schema", Jsonx.Str "zkflow-daemon-flows/v1");
                    ("root", Jsonx.Str (D.to_hex fr.Query.root));
                    ("metric", Jsonx.Str (encode_metric fr.Query.metric));
                    ("count", num (List.length fr.Query.rows));
                    ("total", num fr.Query.total);
                    ("cached", Jsonx.Bool cached);
                    ( "rows",
                      Jsonx.Arr
                        (List.map
                           (fun (r : Query.flow_row) ->
                             Jsonx.Obj
                               [ ("index", num r.index); ("value", num r.value) ])
                           fr.Query.rows) );
                  ]))))
    | _ -> base req
