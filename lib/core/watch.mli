(** The live telemetry plane behind [zkflow watch] and the
    [--listen PORT] flag on [prove]/[chaos]: one {!Zkflow_obs.Httpd.handler}
    serving [/metrics] (Prometheus text), [/healthz] (a full
    {!Monitor} report with a top-level healthy verdict) and [/slo]
    (burn-rate alerts, {!Slo.to_json} schema).

    The same handler serves two {!source}s: {!live_source} reads the
    in-process registries — counters, the time-series ring, the event
    ring — so scraping a running prove sees the run as it happens;
    {!artifact_source} re-reads saved run artifacts (the event log and
    the time-series JSONL) on every request, so [zkflow watch --dir]
    over a finished run serves current file contents without a
    restart. *)

type source = {
  label : string;  (** ["live"] or ["artifact"], echoed in [/healthz] *)
  events : unit -> (Zkflow_obs.Event.t list, string) result;
  frames : unit -> (Zkflow_obs.Timeseries.frame list, string) result;
  metrics_text : unit -> string;  (** Prometheus exposition body *)
}

val live_source : unit -> source
(** In-process registries: {!Zkflow_obs.Event.events},
    {!Zkflow_obs.Timeseries.frames}, {!Zkflow_obs.Export.prometheus}
    plus the time-series gauges. *)

val artifact_source :
  events_path:string option -> ?timeseries_path:string -> unit -> source
(** Saved artifacts, re-read per request. A missing [events_path]
    serves empty logs; an unreadable file surfaces as a 503 on the
    endpoints that need it. [/metrics] is rebuilt from the {e last}
    saved frame's cumulative registry snapshot. *)

val handler :
  ?specs:Slo.spec list -> ?gap_grace:int -> source -> Zkflow_obs.Httpd.handler
(** Route [/], [/metrics], [/healthz] and [/slo]; anything else is
    [None] (the server's 404). [specs] are the SLOs evaluated by
    [/slo] (default {!Slo.default_specs}); [gap_grace] is forwarded to
    {!Monitor.build} for [/healthz]. *)

val probe : Zkflow_obs.Httpd.handler -> string -> Zkflow_obs.Httpd.response
(** Invoke a handler directly — no socket — on a raw request target
    (query string allowed), resolving [None] to the same JSON 404 the
    server would send. Backs [zkflow watch --probe], which lets tests
    and CI validate endpoint schemas without binding a port. *)
