(** Service-level objectives over the flight-recorder event log,
    evaluated with multi-window burn-rate alerting (SRE-style).

    A {!spec} is data: a named objective saying "of the events matching
    [good] + [bad], at least [target] must be good", with the [bad]
    fraction judged against the error budget [1 - target] over paired
    long/short windows. The {e burn rate} is
    [bad_fraction / (1 - target)] — 1.0 means the budget is being spent
    exactly as provisioned, 14.4 means the whole budget would be gone
    in 1/14.4 of the SLO period. An alert fires only when {e both} the
    long and the short window of a pair burn past the pair's threshold:
    the long window gives significance, the short one makes the alert
    stop firing soon after the cause does.

    Kinds are matched with ['*'] globs ([verifier.*.accept]), and every
    firing alert carries the causal keys (router/epoch/round) of the
    bad events behind it — the same correlation keys the flight
    recorder indexes, so an alert names the exact export that opened
    the gap.

    Windows are clamped to the log's own span: a 40-second chaos run
    evaluates its "1 h" window over those 40 seconds, so one dropped
    export among a handful of publishes still registers as a massive
    burn, while a clean run burns 0 in every window. *)

type window = {
  w_name : string;
  long_s : float;
  short_s : float;
  burn_threshold : float;  (** fires when both windows burn >= this *)
}

type spec = {
  slo_name : string;
  good : string list;  (** event-kind globs counted as success *)
  bad : string list;   (** event-kind globs counted against the budget *)
  target : float;      (** in (0,1), e.g. 0.999 *)
  windows : window list;
}

type window_eval = {
  window : window;
  long_burn : float;
  short_burn : float;
  w_firing : bool;
}

type cause = {
  cause_kind : string;
  cause_router : int option;
  cause_epoch : int option;
  cause_round : int option;
}

type alert = {
  spec : spec;
  good_count : int;  (** over the whole log *)
  bad_count : int;
  window_evals : window_eval list;
  firing : bool;  (** some window pair fired *)
  causes : cause list;  (** first few bad events, with causal keys *)
}

val default_windows : window list
(** fast (1 h / 5 m, threshold 14.4) + slow (6 h / 30 m, threshold 6). *)

val default_specs : spec list
(** One objective per failure surface the recorder distinguishes:
    [coverage] (gap opens vs publishes), [board-integrity] (rejects),
    [prover-errors], [prover-restarts] (resumes),
    [verifier-acceptance], and [ingest-admission] (daemon shed /
    duplicate windows vs accepted). All target 0.999 over
    {!default_windows}. *)

val kind_matches : string -> string -> bool
(** [kind_matches pattern kind]: glob match, ['*'] spans any
    substring. *)

val evaluate : ?specs:spec list -> Zkflow_obs.Event.t list -> alert list
(** Evaluate every spec against the log, anchored at the newest event's
    timestamp. [specs] defaults to {!default_specs}. *)

val firing : alert list -> alert list
val firing_names : alert list -> string list

val expected_for : Zkflow_obs.Event.t list -> string list
(** The default-spec names a run's {e injected} faults should trip,
    derived from the ["fault.*"] marker events actually emitted:
    drops/delays -> [coverage], duplicates -> [board-integrity],
    crashes -> [prover-restarts], floods -> [ingest-admission].
    Sorted, deduplicated. The chaos harness asserts
    [expected_for log] is a subset of what fired. *)

val load_specs : string -> (spec list, string) result
(** Parse a JSON array of specs:
    [{"name":..,"good":[..],"bad":[..],"target":0.999,
      "windows":[{"name":..,"long_s":..,"short_s":..,"burn":..}]}]
    ([target] and [windows] optional, defaulting as above). *)

val to_json : alert list -> Zkflow_util.Jsonx.t
(** The [/slo] endpoint schema: [{"schema":"zkflow-slo/v1",
    "alerts":[..],"firing":[names],"ok":bool}]. *)

val pp : Format.formatter -> alert list -> unit
