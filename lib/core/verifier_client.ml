module D = Zkflow_hash.Digest32
module Receipt = Zkflow_zkproof.Receipt
module Verify = Zkflow_zkproof.Verify
module Board = Zkflow_commitlog.Board
module Commitment = Zkflow_commitlog.Commitment
module Event = Zkflow_obs.Event
module Jsonx = Zkflow_util.Jsonx

type verified_chain = { final_root : D.t; round_count : int }

let ( let* ) = Result.bind

(* Every verdict — accept or reject — is a flight-recorder event on
   the verifier track, and a rejection names the check that failed so
   a health report can count rejections by cause. *)
let reject ?router ?epoch ?round ?query ~check detail =
  Event.emit ?router ?epoch ?round ?query ~track:"verifier" "verifier.reject"
    ~attrs:[ ("check", Jsonx.Str check); ("detail", Jsonx.Str detail) ];
  Error detail

let checked ?router ?epoch ?round ?query ~check = function
  | Ok _ as ok -> ok
  | Error detail -> reject ?router ?epoch ?round ?query ~check detail

let verify_round ?expected_prev ?round ?routers ~board ~epoch receipt =
  let check name r = checked ?round ~epoch ~check:name r in
  let program = Lazy.force Guests.aggregation_program in
  let* () = check "proof" (Verify.verify ~program receipt) in
  let* journal =
    check "journal"
      (Guests.parse_aggregation_journal receipt.Receipt.claim.Receipt.journal)
  in
  let* () =
    check "chain"
      (match expected_prev with
      | None -> Ok ()
      | Some root ->
        if D.equal root journal.Guests.prev_root then Ok ()
        else Error "client: aggregation round does not chain from expected root")
  in
  (* Every router digest the guest consumed must be a commitment that
     was actually published for this epoch. A degraded round claims a
     subset via [?routers]; the claim is still checked digest by
     digest, so it can only name routers that really published. *)
  let published =
    match routers with Some rs -> rs | None -> Board.routers board
  in
  let* () =
    check "router_set"
      (if List.length published <> List.length journal.Guests.router_digests then
         Error "client: round covers a different router set than claimed"
       else Ok ())
  in
  let rec check_routers routers digests =
    match (routers, digests) with
    | [], [] -> Ok ()
    | router_id :: rs, digest :: ds -> (
      match Board.lookup board ~router_id ~epoch with
      | None ->
        reject ?round ~router:router_id ~epoch ~check:"board_lookup"
          (Printf.sprintf "client: router %d published nothing for epoch %d"
             router_id epoch)
      | Some c ->
        if D.equal c.Commitment.batch digest then check_routers rs ds
        else
          reject ?round ~router:router_id ~epoch ~check:"digest_match"
            (Printf.sprintf "client: router %d digest differs from the board"
               router_id))
    | _ -> reject ?round ~epoch ~check:"arity" "client: router digest arity mismatch"
  in
  let* () = check_routers published journal.Guests.router_digests in
  Event.emit ?round ~epoch ~track:"verifier" "verifier.round.accept"
    ~attrs:[ ("new_root", Jsonx.Str (D.short journal.Guests.new_root)) ];
  Ok journal

let verify_chain ~board rounds =
  let rec go prev count = function
    | [] ->
      Event.emit ~track:"verifier" "verifier.chain.accept"
        ~attrs:
          [
            ("rounds", Jsonx.Num (float_of_int count));
            ("final_root", Jsonx.Str (D.short prev));
          ];
      Ok { final_root = prev; round_count = count }
    | (epoch, receipt) :: rest ->
      let* journal = verify_round ~expected_prev:prev ~round:count ~board ~epoch receipt in
      go journal.Guests.new_root (count + 1) rest
  in
  go Clog.empty_root 0 rounds

(* ---- degraded-history verification ---- *)

type covered_round = {
  epoch : int;
  routers : int list;
  degraded : bool;
  heal : bool;
  receipt : Receipt.t;
}

type coverage_report = {
  final_root : D.t;
  round_count : int;
  complete : bool;
}

(* The degraded-mode counterpart of [verify_chain]: the operator hands
   over, per round, {e which} (router, epoch) pairs it covered, plus
   the gap journal's open entries. The client then enforces, from
   public data alone, that the history is honest about its own holes:

   - each round verifies against its claimed subset (so a claim can
     only name really-published commitments, in the claimed order);
   - no (router, epoch) pair is aggregated twice across rounds
     (a heal round must not double-count a pair a degraded round
     already folded in);
   - every pair on the board is either covered by some round or
     explicitly named as an open gap — a pair that is neither is
     {e silent loss}, and the whole history is rejected;
   - an "open gap" that some round did cover is an inconsistent claim
     and is likewise rejected.

   [complete] is true when there are no open gaps: the aggregate
   covers everything the board promised. *)
let verify_coverage ~board ~gaps rounds =
  let covered = Hashtbl.create 64 in
  let rec go prev count = function
    | [] -> Ok (prev, count)
    | r :: rest ->
      let* journal =
        verify_round ~expected_prev:prev ~round:count ~routers:r.routers ~board
          ~epoch:r.epoch r.receipt
      in
      let* () =
        let rec claim = function
          | [] -> Ok ()
          | router_id :: rs ->
            if Hashtbl.mem covered (router_id, r.epoch) then
              reject ~round:count ~router:router_id ~epoch:r.epoch
                ~check:"coverage.duplicate"
                (Printf.sprintf
                   "client: router %d epoch %d aggregated by two rounds"
                   router_id r.epoch)
            else begin
              Hashtbl.replace covered (router_id, r.epoch) ();
              claim rs
            end
        in
        claim r.routers
      in
      go journal.Guests.new_root (count + 1) rest
  in
  let* final_root, round_count = go Clog.empty_root 0 rounds in
  let* () =
    let rec check_gaps = function
      | [] -> Ok ()
      | (router_id, epoch) :: rest ->
        if Hashtbl.mem covered (router_id, epoch) then
          reject ~router:router_id ~epoch ~check:"coverage.gap_covered"
            (Printf.sprintf
               "client: router %d epoch %d claimed as an open gap but covered"
               router_id epoch)
        else check_gaps rest
    in
    check_gaps gaps
  in
  let* () =
    let rec check_board = function
      | [] -> Ok ()
      | router_id :: rest ->
        let rec check_commitments = function
          | [] -> check_board rest
          | (c : Commitment.t) :: cs ->
            let epoch = c.Commitment.epoch in
            if
              Hashtbl.mem covered (router_id, epoch)
              || List.mem (router_id, epoch) gaps
            then check_commitments cs
            else
              reject ~router:router_id ~epoch ~check:"coverage.silent_loss"
                (Printf.sprintf
                   "client: router %d epoch %d on the board but neither \
                    covered nor declared a gap"
                   router_id epoch)
        in
        check_commitments (Board.commitments board ~router_id)
    in
    check_board (Board.routers board)
  in
  let complete = gaps = [] in
  Event.emit ~track:"verifier" "verifier.coverage.accept"
    ~attrs:
      [
        ("rounds", Jsonx.Num (float_of_int round_count));
        ("covered", Jsonx.Num (float_of_int (Hashtbl.length covered)));
        ("open_gaps", Jsonx.Num (float_of_int (List.length gaps)));
        ("final_root", Jsonx.Str (D.short final_root));
      ];
  Ok { final_root; round_count; complete }

let verify_query ?query ~expected_root receipt =
  let check name r = checked ?query ~check:name r in
  let program = Lazy.force Guests.query_program in
  let* () = check "query.proof" (Verify.verify ~program receipt) in
  let* journal =
    check "query.journal"
      (Guests.parse_query_journal receipt.Receipt.claim.Receipt.journal)
  in
  let* () =
    check "query.root"
      (if D.equal journal.Guests.root expected_root then Ok ()
       else Error "client: query ran against a different CLog root")
  in
  Event.emit ?query ~track:"verifier" "verifier.query.accept"
    ~attrs:
      [
        ("result", Jsonx.Num (float_of_int journal.Guests.result));
        ("matches", Jsonx.Num (float_of_int journal.Guests.matches));
      ];
  Ok journal

let verify_disclosure ~expected_root (d : Prover_service.disclosure) =
  let check name r = checked ~check:name r in
  let* () =
    check "disclosure.arity"
      (if List.length d.Prover_service.indices = List.length d.Prover_service.entries
       then Ok ()
       else Error "client: disclosure arity mismatch")
  in
  let* () =
    check "disclosure.indices"
      (if d.Prover_service.indices
          = Zkflow_merkle.Multiproof.indices d.Prover_service.proof
       then Ok ()
       else Error "client: disclosure indices do not match the proof")
  in
  let leaf_hashes =
    Array.of_list (List.map Clog.leaf_digest d.Prover_service.entries)
  in
  let* () =
    check "disclosure.proof"
      (if
         Zkflow_merkle.Multiproof.verify ~root:expected_root d.Prover_service.proof
           leaf_hashes
       then Ok ()
       else Error "client: disclosure does not authenticate against the CLog root")
  in
  Event.emit ~track:"verifier" "verifier.disclosure.accept"
    ~attrs:
      [ ("entries", Jsonx.Num (float_of_int (List.length d.Prover_service.entries))) ];
  Ok d.Prover_service.entries

let verify_flows ?query ~expected_root (f : Query.flows_result) =
  let check name r = checked ?query ~check:name r in
  let mask32 = 0xffffffff in
  let* () =
    check "flows.root"
      (if D.equal f.Query.root expected_root then Ok ()
       else Error "client: flows answered against a different CLog root")
  in
  let* () =
    check "flows.rows"
      (if f.Query.rows <> [] then Ok () else Error "client: flows result is empty")
  in
  let* () =
    check "flows.indices"
      (if
         List.map (fun r -> r.Query.index) f.Query.rows
         = Zkflow_merkle.Multiproof.indices f.Query.proof
       then Ok ()
       else Error "client: flows indices do not match the proof")
  in
  (* One proof authenticates every entry; the values and the total are
     then recomputed from the authenticated entries, never trusted. *)
  let leaf_hashes =
    Array.of_list (List.map (fun r -> Clog.leaf_digest r.Query.entry) f.Query.rows)
  in
  let* () =
    check "flows.proof"
      (if Zkflow_merkle.Multiproof.verify ~root:expected_root f.Query.proof leaf_hashes
       then Ok ()
       else Error "client: flows proof does not authenticate against the CLog root")
  in
  let metric_of (m : Zkflow_netflow.Record.metrics) =
    match f.Query.metric with
    | Guests.Packets -> m.Zkflow_netflow.Record.packets
    | Guests.Bytes -> m.Zkflow_netflow.Record.bytes
    | Guests.Hops -> m.Zkflow_netflow.Record.hop_count
    | Guests.Losses -> m.Zkflow_netflow.Record.losses
  in
  let* () =
    check "flows.values"
      (if
         List.for_all
           (fun r -> r.Query.value = metric_of r.Query.entry.Clog.metrics)
           f.Query.rows
       then Ok ()
       else Error "client: a flow value does not match its committed entry")
  in
  let* () =
    check "flows.total"
      (let sum =
         List.fold_left (fun acc r -> (acc + r.Query.value) land mask32) 0 f.Query.rows
       in
       if sum = f.Query.total then Ok ()
       else Error "client: flows total does not match the rows")
  in
  Event.emit ?query ~track:"verifier" "verifier.flows.accept"
    ~attrs:
      [
        ("flows", Jsonx.Num (float_of_int (List.length f.Query.rows)));
        ("total", Jsonx.Num (float_of_int f.Query.total));
        ( "helpers",
          Jsonx.Num (float_of_int (Zkflow_merkle.Multiproof.helper_count f.Query.proof)) );
      ];
  Ok f.Query.rows

let check_sla ?query ~expected_root receipt ~predicate =
  let* journal = verify_query ?query ~expected_root receipt in
  Ok (predicate ~result:journal.Guests.result ~matches:journal.Guests.matches)
