module F = Zkflow_field.Babybear

type commitment = F.t

(* 16 limbs per entry: hi/lo 16-bit halves of the 8 entry words. *)
let limbs_of_clog clog =
  let entries = Clog.entries clog in
  let out = Array.make (16 * Array.length entries) F.zero in
  Array.iteri
    (fun i e ->
      let w = Clog.entry_words e in
      for j = 0 to 7 do
        out.((16 * i) + (2 * j)) <- F.of_int (w.(j) lsr 16);
        out.((16 * i) + (2 * j) + 1) <- F.of_int (w.(j) land 0xffff)
      done)
    entries;
  out

let commit clog = Zkflow_stark.Airs.absorb_chain_commit ~limbs:(limbs_of_clog clog)

let prove ?queries clog =
  let limbs = limbs_of_clog clog in
  let claim = Zkflow_stark.Airs.absorb_chain_commit ~limbs in
  let air = Zkflow_stark.Airs.absorb_chain ~limbs ~claim in
  match
    Zkflow_stark.Stark.prove ?queries air (Zkflow_stark.Airs.absorb_chain_trace ~limbs)
  with
  | Ok proof -> Ok (claim, proof)
  | Error e -> Error e

let verify ?queries clog ~claim proof =
  let limbs = limbs_of_clog clog in
  Zkflow_stark.Stark.verify ?queries (Zkflow_stark.Airs.absorb_chain ~limbs ~claim) proof

let verify_limbs ?queries ~limbs ~claim proof =
  Zkflow_stark.Stark.verify ?queries (Zkflow_stark.Airs.absorb_chain ~limbs ~claim) proof
