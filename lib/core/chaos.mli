(** Deterministic chaos harness: one seeded fault plan, one full
    simulate → publish → prove → kill/resume → verify cycle, two
    verdicts.

    The harness runs the same deterministic traffic twice. First the
    {e twin}: data faults only (drops, delays, duplicates — they shape
    what is available to aggregate), no crashes, no corruption, its
    flight-recorder events captured in isolation ({!Zkflow_obs.Event.isolate})
    so they never pollute the chaos run's log. Then the {e chaos run}: same data faults plus the
    plan's armed crash sites, flaky reads and storage corruption, with
    the prover checkpointing to [dir/checkpoints.wal] and a
    kill/restart loop playing the process dying at every armed site.

    Two properties are asserted, and reported per run:

    - {b safety} — every receipt verifies against its claimed coverage
      ({!Verifier_client.verify_coverage}), and the chaos run's final
      CLog root is {e bit-identical} to the twin's: crashes, retries
      and recoveries changed nothing about the attested history.
    - {b liveness} — the run ends with every integrity window either
      verified or {e explicitly} degraded: any gap still open names an
      export the plan destroyed (a [Drop]); silent loss of data the
      pipeline was given fails the run. *)

type config = {
  routers : int;
  flows : int;
  rate_pps : float;
  duration_ms : int;
  loss_rate : float;
  queries : int;       (** FRI queries — proof-size/speed knob *)
  max_restarts : int;  (** kill/resume budget before giving up *)
}

val default_config : config
(** 3 routers, ~11 s of traffic across 3 epochs, fast proof params,
    up to 40 restarts. *)

type status = Complete | Degraded

type report = {
  plan : Zkflow_fault.Fault.plan;
  status : status;            (** [Degraded] iff gaps remain open *)
  packets : int;
  records : int;
  epochs : int;
  rounds : int;               (** aggregation rounds, heal included *)
  heal_rounds : int;
  crashes : int;              (** injected kills (including re-kills during recovery) *)
  resumes : int;              (** successful checkpoint recoveries *)
  restored_rounds : int;      (** rounds replayed from disk by the last resume *)
  open_gaps : (int * int) list;  (** unhealed (router, epoch) pairs *)
  final_root : string;        (** chaos run's final CLog root, hex *)
  twin_root : string;         (** uninterrupted twin's root, hex *)
  safety_ok : bool;
  liveness_ok : bool;
  slo_expected : string list;
      (** SLO names the plan's injected faults should trip
          ({!Slo.expected_for} over the chaos run's log) *)
  slo_fired : string list;   (** SLOs that actually fired on the chaos run *)
  slo_ok : bool;             (** [slo_expected] is a subset of [slo_fired] *)
  twin_slo_fired : string list;
      (** SLOs firing on the twin — it shares the plan's data faults,
          so [coverage] / [board-integrity] may legitimately fire *)
  twin_slo_ok : bool;
      (** the twin fired nothing beyond its shared data-fault SLOs —
          in particular never [prover-restarts] *)
}

val run :
  ?dir:string ->
  ?config:config ->
  plan:Zkflow_fault.Fault.plan ->
  unit ->
  (report, string) result
(** Execute one chaos cycle. [?dir] (default: a fresh temp directory)
    receives [rlogs.wal] and [checkpoints.wal]; an existing
    [checkpoints.wal] there is removed first so every run starts
    cold. [Error _] means the harness itself could not complete (e.g.
    the restart budget was exhausted, or the board accepted a
    duplicate) — fault-induced degradation is {e not} an error, it is
    a [Degraded] report. *)

val status_string : status -> string
val to_json : report -> Zkflow_util.Jsonx.t
val pp : Format.formatter -> report -> unit

(** {2 Daemon-mode chaos}

    The same twin-run discipline aimed at the resident {!Daemon}: the
    daemon runs with publication off while the harness plays the
    routers against the board with the batch walks, so every data
    fault keeps its batch semantics and the final root stays
    comparable to the {e batch} twin over the same records. Worker
    deaths (crash sites inside rounds/checkpoints) and harness-side
    deaths (["board.publish"]) both go through the supervised
    {!Daemon.restart} path, with storage faults corrupting the
    checkpoint WAL between death and resume. A [Flood] entry in the
    plan adds an overload burst against a parked throwaway daemon
    with a tiny queue: everything past capacity must shed explicitly
    ([daemon.ingest.shed]), and the shed count is exact. *)

type daemon_report = {
  base : report;        (** twin/safety/liveness/SLO verdicts, as {!run} *)
  submitted : int;      (** window exports the harness offered *)
  accepted : int;       (** admitted by the bounded queue *)
  shed : int;           (** rejected-newest (flood phase included) *)
  duplicates : int;     (** re-offered windows turned away *)
  drains : int;
  breaker_opens : int;
  flood_windows : int;  (** 0 when the plan has no [Flood] *)
  flood_shed : int;
  flood_ok : bool;
      (** exactly [windows - capacity] shed, and the flood daemon's
          own coverage verifies *)
}

val run_daemon :
  ?dir:string ->
  ?config:config ->
  plan:Zkflow_fault.Fault.plan ->
  unit ->
  (daemon_report, string) result
(** One daemon-mode chaos cycle: simulate → batch twin → resident
    daemon under the plan's kills/corruption → flood burst (if
    planned) → verify. Same artifact layout as {!run}. *)

val daemon_to_json : daemon_report -> Zkflow_util.Jsonx.t
val pp_daemon : Format.formatter -> daemon_report -> unit
