(** Host-side driver for the aggregation rounds of Algorithm 1.

    Each round takes the previous CLog state and one integrity window's
    record batches (with their published commitments), runs the
    aggregation guest under the prover, and returns the new state plus
    the receipt. The host keeps a mirror of the CLog (it is the
    operator's own data) and cross-checks the guest's journal against
    it — any divergence is a bug, never silently accepted. *)

type round = {
  receipt : Zkflow_zkproof.Receipt.t;
  journal : Guests.agg_journal;
  clog : Clog.t;          (** post-round state *)
  cycles : int;           (** guest cycles (the zkVM cost driver) *)
  execute_s : float;      (** guest execution wall time *)
  prove_s : float;        (** proof generation wall time *)
  restored : bool;        (** [true] when deserialized by
                              {!Prover_service.load} rather than proved
                              in this process (timings read 0) *)
}

val execute :
  prev:Clog.t ->
  (Zkflow_hash.Digest32.t * Zkflow_netflow.Record.t array) list ->
  (Zkflow_zkvm.Machine.result, string) result
(** Run the guest without proving (bench separation; also how a
    prover pre-checks a window before paying for proving). *)

val prove_round :
  ?params:Zkflow_zkproof.Params.t ->
  prev:Clog.t ->
  (Zkflow_hash.Digest32.t * Zkflow_netflow.Record.t array) list ->
  (round, string) result
(** Full round: execute, prove, parse and cross-check the journal.
    Fails when a batch does not match its claimed commitment (guest
    exit 2 — the Figure 3 tampering case), when capacity is exceeded,
    or when proving fails. *)

val prove_partitioned :
  ?params:Zkflow_zkproof.Params.t ->
  prev:Clog.t ->
  partitions:int ->
  (Zkflow_hash.Digest32.t * Zkflow_netflow.Record.t array) list ->
  (round list, string) result
(** Section 7 "proof parallelization" ablation: split the window's
    batches into [partitions] groups and prove them as a chain of
    smaller rounds. The final CLog equals the unpartitioned result;
    with [p] workers the wall-clock would be the per-part maximum
    plus chaining, instead of one monolithic proof. *)

val shard_records :
  shards:int ->
  Zkflow_netflow.Record.t array ->
  Zkflow_netflow.Record.t array array
(** Partition records by flow-key hash into [shards] disjoint groups
    (records of one flow always land in the same shard). *)

val prove_sharded :
  ?params:Zkflow_zkproof.Params.t ->
  prev_shards:Clog.t array ->
  shards:int ->
  Zkflow_netflow.Record.t array ->
  (round array, string) result
(** The paper's "partition by flow ID" parallelization: each shard is
    an {e independent} CLog with its own chain of rounds, so the
    [shards] proofs have no data dependency — on [p] machines the
    wall-clock is the slowest shard, not the sum. Queries fan out over
    the shard roots and sum (all our aggregation ops distribute).
    [prev_shards] must have length [shards] (use
    [Array.make shards Clog.empty] for the first window). Each shard
    batch is committed and checked like a router batch. *)
