(** The resident telemetry service behind [zkflow serve]: a
    crash-tolerant daemon that ingests router exports continuously,
    proves rounds off-path, heals gaps, and answers proof-backed
    queries over the embedded HTTP plane.

    {b Architecture.} One worker thread owns all mutable pipeline
    state (the record store, the prover service, the board): exports
    enter through a {e bounded} ingest queue and everything downstream
    is single-threaded, so no lock discipline is needed around the
    store or the Merkle state. HTTP query threads never touch the
    pipeline — they prove against an immutable CLog snapshot, behind a
    proving lock and a memo table.

    {b Shedding policy (reject-newest).} [submit] never blocks and
    never buffers beyond [queue_capacity]: when the queue is full the
    {e new} export is rejected with {!Shed}, a [daemon.ingest.shed]
    event and a Prometheus counter. [submit_wait] is the backpressure
    variant: it blocks the exporter until there is room. Each
    [(router, epoch)] window is accepted at most once ({!Duplicate}
    on a repeat), so a retrying exporter cannot double-ingest.

    {b I/O edges.} Ingest ([daemon.ingest] failpoint) and board
    publication ([daemon.publish] failpoint, when [publish] is on)
    run under {!Zkflow_fault.Fault.Retry.with_backoff} with seeded
    full jitter. Edges that exhaust their retry budget feed a circuit
    breaker: past [breaker_threshold] consecutive exhaustions the
    breaker opens ([daemon.breaker.open]), publication is skipped —
    rounds proceed in the PR-5 degraded/gap-journal mode instead of
    wedging — and after [breaker_cooldown] worker passes the breaker
    half-opens and probes again ([daemon.breaker.close] on success).

    {b Lifecycle.} [Running → Draining → Stopped], with [Crashed] as
    an off-path state: a {!Zkflow_fault.Fault.Crash} anywhere in the
    worker abandons the checkpoint WAL's unsynced tail and parks the
    daemon; {!restart} re-runs {!Prover_service.resume} (emitting
    [prover.resume]) and re-proves bit-identically. {!drain} is the
    SIGTERM path: stop intake, finish everything in flight (including
    heal rounds), then return — the caller flushes artifacts and
    exits 0. *)

type config = {
  queue_capacity : int;  (** bounded ingest queue, in windows *)
  publish : bool;
      (** daemon publishes ingested windows to the board on the
          routers' behalf (on for [zkflow serve]; the chaos harness
          turns it off and drives the board itself) *)
  retry_attempts : int;  (** per-I/O-edge retry budget *)
  retry_base_ms : float;
  retry_max_ms : float;
  retry_sleep : float -> unit;
      (** how to spend the jittered backoff (seconds);
          [Thread.delay] in production, a no-op in deterministic
          harnesses *)
  breaker_threshold : int;
      (** consecutive exhausted edges before the breaker opens *)
  breaker_cooldown : int;
      (** worker passes the breaker stays open before half-opening *)
  watchdog_max_queue : int;  (** /healthz trips above this depth *)
  watchdog_max_round_s : float;
      (** /healthz trips when the last round took longer *)
  watchdog_interval_ms : int;
      (** watchdog thread period; [0] disables the thread (health is
          still checked at the end of every worker pass) *)
  gap_grace : int;  (** forwarded to {!Monitor.build} for /healthz *)
}

val default_config : config
(** capacity 64, publish on, 5 attempts (base 1 ms, cap 50 ms,
    [Thread.delay]), breaker 3/4, watchdog depth 48 / 30 s / thread
    off, gap_grace 1. *)

type t

type submit_result =
  | Accepted
  | Shed  (** queue full — reject-newest, [daemon.ingest.shed] *)
  | Duplicate  (** this [(router, epoch)] window was already accepted *)
  | Closed  (** intake closed: draining, stopped, or crashed *)

val create :
  ?config:config ->
  ?proof_params:Zkflow_zkproof.Params.t ->
  ?seed:int ->
  ?paused:bool ->
  db:Zkflow_store.Db.t ->
  board:Zkflow_commitlog.Board.t ->
  ckpt_path:string ->
  unit ->
  (t * int, string) result
(** Start the daemon: resume the prover from the checkpoint WAL at
    [ckpt_path] (0 restored rounds for a fresh file), derive the
    already-ingested [(router, epoch)] set from [db], and spawn the
    worker (parked if [paused] — {!unpause} releases it; the chaos
    flood phase uses this to fill the queue deterministically).
    [seed] drives the retry jitter. Raises nothing on a crashpoint
    armed during resume: that surfaces as [Error]. *)

val submit :
  t -> router_id:int -> epoch:int -> Zkflow_netflow.Record.t list -> submit_result
(** Non-blocking ingest of one router's window export. *)

val submit_wait :
  t -> router_id:int -> epoch:int -> Zkflow_netflow.Record.t list -> submit_result
(** Blocking ingest: waits while the queue is full (backpressure)
    instead of shedding. Still returns immediately with {!Duplicate}
    or {!Closed} when no amount of waiting would help. *)

val advance : t -> epoch:int -> unit
(** Raise the ingest watermark: epochs [<= epoch] are closed and the
    worker may prove them. The watermark only moves forward, but the
    call always schedules one more worker pass — harnesses use a
    same-epoch [advance] as a poke after changing the board under a
    [publish:false] daemon. *)

val await_idle : t -> [ `Idle | `Crashed of string ]
(** Block until the worker has nothing left to do under the current
    watermark (queue empty, rounds proved, heals done) — or until it
    crashed, returning the crash site. *)

val crashed : t -> string option

val kill : t -> site:string -> unit
(** Harness hook: park the daemon as if the process died at [site]
    right now — abandon unsynced checkpoint writes, discard the
    queue, stop the worker. Call only while the worker is idle. *)

val restart : t -> (int, string) result
(** Supervised recovery from {!kill} or a worker crash: re-run
    {!Prover_service.resume} on the checkpoint WAL (re-proving the
    lost tail bit-identically, [prover.resume] event), re-derive the
    ingested set from the store, and spawn a fresh worker. Returns
    the restored round count. [Error "crashed during resume"] means a
    crashpoint fired inside recovery itself — the caller may restart
    again. *)

val drain : t -> (unit, string) result
(** Graceful shutdown of the pipeline (the SIGTERM path): close
    intake, move the watermark past every epoch, and wait for the
    worker to finish all ingest, rounds and heals. [Error] reports a
    crash mid-drain; after {!restart}, calling [drain] again resumes
    the drain. Emits [daemon.drain.start] / [daemon.drain.done]. *)

val stop : t -> unit
(** Join the worker and watchdog threads. The daemon is unusable
    afterwards. *)

val unpause : t -> unit

val service : t -> Prover_service.t
(** The underlying prover service (read-only use expected). *)

val root_hex : t -> string
(** Current CLog root, hex. *)

type counters = {
  accepted : int;
  shed : int;
  duplicates : int;
  queue_depth : int;
  max_depth : int;  (** high-water mark; never exceeds capacity *)
  rounds : int;
  heal_rounds : int;
  drains : int;
  breaker_opens : int;
  memo_hits : int;
  memo_misses : int;
  breaker : string;  (** ["closed"], ["open"] or ["half-open"] *)
}

val counters : t -> counters

type health = { healthy : bool; reasons : string list }

val health : t -> health
(** The /healthz verdict, [monitor --strict] semantics included: a
    crash, a queue depth or round latency past the watchdog SLO, an
    open breaker, or an unhealthy {!Monitor.build} report over the
    live event ring each contribute a named reason. The first
    healthy→unhealthy transition emits [daemon.watchdog.trip]. *)

val query :
  t -> Guests.query_params -> (Query.result_row * bool, string) result
(** Prove (or serve memoized — the [bool] is [true] on a cache hit) a
    query against the current CLog. Memo keyed by
    [(Merkle root, query)]; proofs for superseded roots are evicted.
    Heavy proving is serialized behind one lock. *)

val query_flows :
  t ->
  metric:Guests.metric ->
  Zkflow_netflow.Flowkey.t list ->
  (Query.flows_result * bool, string) result
(** Multi-flow readout through the batched multiproof, memoized like
    {!query}. *)

val handler : ?specs:Slo.spec list -> t -> Zkflow_obs.Httpd.handler
(** The daemon's HTTP plane: [/], [/status], [/healthz] (200/503 per
    {!health}), [/query?src=&dst=&ports=&proto=&op=&metric=],
    [/flows?metric=&keys=src:dst:sp:dp:proto,...|first=N], plus
    [/metrics] and [/slo] from the live {!Watch} source. *)
