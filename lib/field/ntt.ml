module F = Babybear

(* A size-n transform performs (n/2)·log2 n butterflies; counting them
   in bulk per call keeps the inner loop untouched. *)
let m_transforms = Zkflow_obs.Metric.counter "ntt.transforms"
let m_butterflies = Zkflow_obs.Metric.counter "ntt.butterflies"

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  if not (is_pow2 n) then invalid_arg "Ntt.log2: not a power of two";
  let rec go k n = if n = 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let bit_reverse_permute a =
  let n = Array.length a in
  let bits = log2 n in
  for i = 0 to n - 1 do
    (* Reverse the low [bits] bits of i. *)
    let j = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then j := !j lor (1 lsl (bits - 1 - b))
    done;
    if i < !j then begin
      let tmp = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- tmp
    end
  done

(* Iterative Cooley–Tukey, decimation in time. [root] must have order
   exactly [Array.length a]. *)
let transform root a =
  let n = Array.length a in
  if n = 1 then ()
  else begin
    if Zkflow_obs.Control.on () then begin
      Zkflow_obs.Metric.add m_transforms 1;
      Zkflow_obs.Metric.add m_butterflies (n / 2 * log2 n)
    end;
    bit_reverse_permute a;
    let len = ref 2 in
    while !len <= n do
      let w_len = F.pow root (n / !len) in
      let half = !len / 2 in
      let i = ref 0 in
      while !i < n do
        let w = ref F.one in
        for j = 0 to half - 1 do
          let u = a.(!i + j) and v = F.mul a.(!i + j + half) !w in
          a.(!i + j) <- F.add u v;
          a.(!i + j + half) <- F.sub u v;
          w := F.mul !w w_len
        done;
        i := !i + !len
      done;
      len := !len lsl 1
    done
  end

let forward coeffs =
  let n = Array.length coeffs in
  if not (is_pow2 n) then invalid_arg "Ntt.forward: size not a power of two";
  let a = Array.copy coeffs in
  transform (F.root_of_unity (log2 n)) a;
  a

let inverse evals =
  let n = Array.length evals in
  if not (is_pow2 n) then invalid_arg "Ntt.inverse: size not a power of two";
  let a = Array.copy evals in
  transform (F.inv (F.root_of_unity (log2 n))) a;
  let n_inv = F.inv (F.of_int n) in
  Array.map (fun x -> F.mul x n_inv) a

let scale_coeffs coeffs shift =
  (* p(shift · x) has coefficients c_i · shift^i. *)
  let acc = ref F.one in
  Array.map
    (fun c ->
      let r = F.mul c !acc in
      acc := F.mul !acc shift;
      r)
    coeffs

let forward_coset ~shift coeffs = forward (scale_coeffs coeffs shift)

let inverse_coset ~shift evals =
  scale_coeffs (inverse evals) (F.inv shift)
