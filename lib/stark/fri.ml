module F = Zkflow_field.Babybear
module Fp2 = Zkflow_field.Fp2
module Domain = Zkflow_field.Domain
module Tree = Zkflow_merkle.Tree
module Proof = Zkflow_merkle.Proof
module T = Zkflow_hash.Transcript
module D = Zkflow_hash.Digest32
module Pool = Zkflow_parallel.Pool
module Obs = Zkflow_obs

let m_fold_rounds = Obs.Metric.counter "fri.fold_rounds"

type query_step = {
  pos : Fp2.t;
  neg : Fp2.t;
  pos_path : Proof.t;
  neg_path : Proof.t;
}

type query = { index : int; steps : query_step array }

type proof = {
  layer_roots : D.t array;
  final : Fp2.t array;
  queries : query array;
}

let final_size = 16

let challenge_fp2 transcript ~label =
  Fp2.of_digest_prefix (D.unsafe_to_bytes (T.challenge_digest transcript ~label))

(* Evaluate the one folding step at position i of a layer of [size]
   values over the coset shift·⟨ω⟩. *)
let fold_pair ~zeta ~inv2 ~x_inv pos neg =
  let even = Fp2.mul_base (Fp2.add pos neg) inv2 in
  let odd = Fp2.mul_base (Fp2.mul zeta (Fp2.sub pos neg)) (F.mul inv2 x_inv) in
  Fp2.add even odd

let absorb_final transcript final =
  Array.iteri
    (fun i v ->
      T.absorb_bytes transcript ~label:(Printf.sprintf "fri.final.%d" i) (Fp2.to_bytes v))
    final

(* Lagrange interpolation over base-field abscissae with Fp2 values;
   returns coefficients (length = #points). O(k²), used only on the
   final layer. *)
let interpolate_fp2 xs ys =
  let k = Array.length xs in
  let coeffs = Array.make k Fp2.zero in
  for i = 0 to k - 1 do
    (* basis_i(x) = Π_{j≠i} (x − x_j) / (x_i − x_j), built as base-field
       coefficient vector then scaled by y_i / denom. *)
    let basis = Array.make k F.zero in
    basis.(0) <- F.one;
    let deg = ref 0 in
    let denom = ref F.one in
    for j = 0 to k - 1 do
      if j <> i then begin
        denom := F.mul !denom (F.sub xs.(i) xs.(j));
        (* multiply basis by (x − x_j) *)
        for d = !deg + 1 downto 1 do
          basis.(d) <- F.sub basis.(d - 1) (F.mul xs.(j) basis.(d))
        done;
        basis.(0) <- F.mul (F.neg xs.(j)) basis.(0);
        incr deg
      end
    done;
    let scale = Fp2.mul_base ys.(i) (F.inv !denom) in
    for d = 0 to k - 1 do
      coeffs.(d) <- Fp2.add coeffs.(d) (Fp2.mul_base scale basis.(d))
    done
  done;
  coeffs

let domain_elements ~shift ~log_size =
  Domain.elements (Domain.coset ~log_size ~shift)

let layer_count m0 =
  let rec go m acc = if m <= final_size then acc else go (m / 2) (acc + 1) in
  go m0 0

(* The degree bound after l folds: each fold halves (rounding up). *)
let bound_after degree_bound l =
  let rec go b l = if l = 0 then b else go ((b + 1) / 2) (l - 1) in
  max 1 (go degree_bound l)

let prove ~transcript ~domain ~degree_bound ~queries values =
  let m0 = domain.Domain.size in
  if Array.length values <> m0 then invalid_arg "Fri.prove: size mismatch";
  if m0 <= final_size then invalid_arg "Fri.prove: domain too small";
  if degree_bound <= 0 || degree_bound > m0 then invalid_arg "Fri.prove: bad degree bound";
  let layers = ref [] in
  let v = ref values and shift = ref domain.Domain.shift and size = ref m0 in
  let log = ref domain.Domain.log_size in
  while !size > final_size do
    let t_fold = Obs.Span.start () in
    let leaves = Pool.map_array ~min_chunk:2048 Fp2.to_bytes !v in
    let tree = Tree.of_leaves leaves in
    T.absorb_digest transcript ~label:"fri.layer" (Tree.root tree);
    let zeta = challenge_fp2 transcript ~label:"fri.zeta" in
    let half = !size / 2 in
    let xs = domain_elements ~shift:!shift ~log_size:!log in
    let x_invs = F.batch_inv (Array.sub xs 0 half) in
    let inv2 = F.inv 2 in
    let cur = !v in
    let folded =
      Pool.init_array ~min_chunk:2048 half (fun i ->
          fold_pair ~zeta ~inv2 ~x_inv:x_invs.(i) cur.(i) cur.(i + half))
    in
    layers := (tree, !v) :: !layers;
    v := folded;
    shift := F.mul !shift !shift;
    if t_fold <> 0 then begin
      Obs.Metric.add m_fold_rounds 1;
      Obs.Span.finish "fri.fold" ~args:[ ("size", !size) ] t_fold
    end;
    size := half;
    log := !log - 1
  done;
  let final = !v in
  absorb_final transcript final;
  let layer_list = List.rev !layers in
  let idx = T.challenge_ints transcript ~label:"fri.query" ~bound:(m0 / 2) ~count:queries in
  let queries =
    Array.map
      (fun i0 ->
        let steps =
          List.mapi
            (fun _l (tree, vals) ->
              let m = Array.length vals in
              let i = i0 mod (m / 2) in
              {
                pos = vals.(i);
                neg = vals.(i + (m / 2));
                pos_path = Tree.prove tree i;
                neg_path = Tree.prove tree (i + (m / 2));
              })
            layer_list
        in
        { index = i0; steps = Array.of_list steps })
      idx
  in
  {
    layer_roots = Array.of_list (List.map (fun (t, _) -> Tree.root t) layer_list);
    final;
    queries;
  }

let layer0_root proof =
  if Array.length proof.layer_roots = 0 then invalid_arg "Fri.layer0_root: no layers";
  proof.layer_roots.(0)

let query_layer0 q =
  if Array.length q.steps = 0 then invalid_arg "Fri.query_layer0: no steps";
  let s = q.steps.(0) in
  ((s.pos_path.Proof.index, s.pos), (s.neg_path.Proof.index, s.neg))

let ( let* ) = Result.bind

let verify ~transcript ~domain ~degree_bound ~queries proof =
  let m0 = domain.Domain.size in
  if m0 <= final_size then Error "fri: domain too small"
  else begin
    let expected_layers = layer_count m0 in
    if Array.length proof.layer_roots <> expected_layers then
      Error "fri: wrong layer count"
    else begin
      (* Re-derive challenges in the prover's order. *)
      let zetas =
        Array.map
          (fun root ->
            T.absorb_digest transcript ~label:"fri.layer" root;
            challenge_fp2 transcript ~label:"fri.zeta")
          proof.layer_roots
      in
      absorb_final transcript proof.final;
      let idx =
        T.challenge_ints transcript ~label:"fri.query" ~bound:(m0 / 2) ~count:queries
      in
      if Array.length proof.queries <> queries then Error "fri: wrong query count"
      else begin
        (* Final layer degree check. *)
        let final_m = m0 lsr expected_layers in
        if Array.length proof.final <> final_m then Error "fri: final layer size"
        else begin
          let final_shift = ref domain.Domain.shift in
          for _ = 1 to expected_layers do
            final_shift := F.mul !final_shift !final_shift
          done;
          let final_log = domain.Domain.log_size - expected_layers in
          let xs_final = domain_elements ~shift:!final_shift ~log_size:final_log in
          let coeffs = interpolate_fp2 xs_final proof.final in
          let fbound = bound_after degree_bound expected_layers in
          let degree_ok = ref true in
          Array.iteri
            (fun d c -> if d >= fbound && not (Fp2.equal c Fp2.zero) then degree_ok := false)
            coeffs;
          if not !degree_ok then Error "fri: final layer exceeds degree bound"
          else begin
            (* Per-query folding walk. *)
            let inv2 = F.inv 2 in
            let rec check_queries k =
              if k = Array.length proof.queries then Ok ()
              else begin
                let q = proof.queries.(k) in
                let* () =
                  if q.index <> idx.(k) then Error "fri: unsampled query index" else Ok ()
                in
                if Array.length q.steps <> expected_layers then
                  Error "fri: query step count"
                else begin
                  let rec walk l m shift log carried =
                    if l = expected_layers then begin
                      (* carried must equal the final layer at this position *)
                      let i = q.index mod m in
                      match carried with
                      | Some v when Fp2.equal v proof.final.(i) -> Ok ()
                      | Some _ -> Error "fri: final layer mismatch"
                      | None -> Error "fri: empty walk"
                    end
                    else begin
                      let s = q.steps.(l) in
                      let half = m / 2 in
                      let i = q.index mod half in
                      let* () =
                        if
                          s.pos_path.Proof.index = i
                          && s.neg_path.Proof.index = i + half
                          && Proof.verify_data ~root:proof.layer_roots.(l)
                               (Fp2.to_bytes s.pos) s.pos_path
                          && Proof.verify_data ~root:proof.layer_roots.(l)
                               (Fp2.to_bytes s.neg) s.neg_path
                        then Ok ()
                        else Error "fri: bad layer opening"
                      in
                      (* The previous fold landed at position q.index mod m,
                         which is the pos cell when < half, else the neg. *)
                      let* () =
                        match carried with
                        | None -> Ok ()
                        | Some v ->
                          let expect = if q.index mod m < half then s.pos else s.neg in
                          if Fp2.equal v expect then Ok ()
                          else Error "fri: fold chain broken"
                      in
                      let x = F.mul shift (F.pow (F.root_of_unity log) i) in
                      let folded =
                        fold_pair ~zeta:zetas.(l) ~inv2 ~x_inv:(F.inv x) s.pos s.neg
                      in
                      walk (l + 1) half (F.mul shift shift) (log - 1) (Some folded)
                    end
                  in
                  let* () =
                    walk 0 m0 domain.Domain.shift domain.Domain.log_size None
                  in
                  check_queries (k + 1)
                end
              end
            in
            check_queries 0
          end
        end
      end
    end
  end
