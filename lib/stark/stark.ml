module F = Zkflow_field.Babybear
module Fp2 = Zkflow_field.Fp2
module Ntt = Zkflow_field.Ntt
module Domain = Zkflow_field.Domain
module Tree = Zkflow_merkle.Tree
module MProof = Zkflow_merkle.Proof
module T = Zkflow_hash.Transcript
module D = Zkflow_hash.Digest32
module Pool = Zkflow_parallel.Pool
module Obs = Zkflow_obs

type trace_opening = { index : int; leaf : bytes; path : MProof.t }

type proof = {
  trace_length : int;
  blowup : int;
  trace_root : D.t;
  fri : Fri.proof;
  trace_openings : trace_opening array array;
}

let default_queries = 30

let ( let* ) = Result.bind

let next_pow2 n =
  let rec go k = if k >= n then k else go (2 * k) in
  go 1

let blowup_for air = max 4 (next_pow2 (air.Air.transition_degree + 1))

let degree_bound air ~n =
  let d = air.Air.transition_degree in
  next_pow2 (max ((d - 1) * (n - 1)) (n - 1) + 1)

let leaf_of_row width values i =
  let b = Bytes.create (4 * width) in
  Array.iteri
    (fun c col -> Bytes.set_int32_le b (4 * c) (Int32.of_int col.(i)))
    values;
  ignore width;
  b

let row_of_leaf width b =
  if Bytes.length b <> 4 * width then Error "stark: bad trace leaf width"
  else begin
    let row = Array.make width F.zero in
    let ok = ref true in
    for c = 0 to width - 1 do
      let v = Int32.to_int (Bytes.get_int32_le b (4 * c)) in
      if v < 0 || v >= F.p then ok := false else row.(c) <- v
    done;
    if !ok then Ok row else Error "stark: non-canonical trace value"
  end

let absorb_statement transcript air ~n ~blowup ~queries =
  T.absorb_bytes transcript ~label:"air.name" (Bytes.of_string air.Air.name);
  T.absorb_int transcript ~label:"air.width" air.Air.width;
  T.absorb_int transcript ~label:"air.degree" air.Air.transition_degree;
  T.absorb_int transcript ~label:"n" n;
  T.absorb_int transcript ~label:"blowup" blowup;
  T.absorb_int transcript ~label:"queries" queries;
  List.iter
    (fun (row, col, v) ->
      T.absorb_int transcript ~label:"bd.row" row;
      T.absorb_int transcript ~label:"bd.col" col;
      T.absorb_int transcript ~label:"bd.val" v)
    (Air.resolve_boundary air ~trace_length:n);
  List.iter
    (fun (col, values) ->
      T.absorb_int transcript ~label:"pub.col" col;
      let buf = Buffer.create (4 * Array.length values) in
      Array.iter (fun v -> Buffer.add_int32_be buf (Int32.of_int v)) values;
      T.absorb_bytes transcript ~label:"pub.values" (Buffer.to_bytes buf))
    air.Air.public_columns

let challenge_fp2 transcript ~label =
  Fp2.of_digest_prefix (D.unsafe_to_bytes (T.challenge_digest transcript ~label))

let draw_randomizers transcript air =
  let gammas =
    Array.init air.Air.constraint_count (fun j ->
        challenge_fp2 transcript ~label:(Printf.sprintf "gamma.%d" j))
  in
  let deltas =
    Array.init
      (List.length air.Air.boundary)
      (fun b -> challenge_fp2 transcript ~label:(Printf.sprintf "delta.%d" b))
  in
  (gammas, deltas)

(* Composition value at one LDE point, given the trace rows at x and
   g·x. Shared between prover (all points) and verifier (queried
   points). *)
let composition_at air ~gammas ~deltas ~boundary ~omega ~n ~x row row_next =
  let cs = air.Air.transition row row_next in
  (* Z_transition(x) = (x^n − 1) / (x − ω^{n−1}) *)
  let h_last = F.pow omega (n - 1) in
  let zt = F.div (F.sub (F.pow x n) F.one) (F.sub x h_last) in
  let zt_inv = F.inv zt in
  let acc = ref Fp2.zero in
  Array.iteri
    (fun j c -> acc := Fp2.add !acc (Fp2.mul_base gammas.(j) (F.mul c zt_inv)))
    cs;
  List.iteri
    (fun b (r, c, v) ->
      let quotient = F.div (F.sub row.(c) v) (F.sub x (F.pow omega r)) in
      acc := Fp2.add !acc (Fp2.mul_base deltas.(b) quotient))
    boundary;
  !acc

let prove ?(queries = default_queries) air trace =
  let n = Array.length trace in
  if n < 8 || n land (n - 1) <> 0 then
    Error "stark: trace length must be a power of two >= 8"
  else begin
    let* () = Air.check_trace air trace in
    let t_prove = Obs.Span.start () in
    let blowup = blowup_for air in
    let m = blowup * n in
    let lde = Domain.coset ~log_size:(Ntt.log2 m) ~shift:F.generator in
    let omega = F.root_of_unity (Ntt.log2 n) in
    (* Interpolate columns over the trace subgroup, extend to the LDE
       coset. *)
    let t_lde = Obs.Span.start () in
    let values =
      (* Columns extend independently; each NTT works on its own copy. *)
      Pool.init_array ~min_chunk:1 air.Air.width (fun c ->
          let col = Array.init n (fun i -> trace.(i).(c)) in
          let coeffs = Ntt.inverse col in
          let padded = Array.append coeffs (Array.make (m - n) F.zero) in
          Ntt.forward_coset ~shift:F.generator padded)
    in
    if t_lde <> 0 then
      Obs.Span.finish "stark.lde" ~args:[ ("columns", air.Air.width); ("m", m) ] t_lde;
    let t_commit = Obs.Span.start () in
    let leaves = Pool.init_array ~min_chunk:1024 m (leaf_of_row air.Air.width values) in
    let tree = Tree.of_leaves leaves in
    if t_commit <> 0 then Obs.Span.finish "stark.commit" ~args:[ ("rows", m) ] t_commit;
    let transcript = T.create ~domain:"zkflow.stark.v1" in
    absorb_statement transcript air ~n ~blowup ~queries;
    T.absorb_digest transcript ~label:"trace_root" (Tree.root tree);
    let gammas, deltas = draw_randomizers transcript air in
    let boundary = Air.resolve_boundary air ~trace_length:n in
    let lde_elements = Domain.elements lde in
    let t_comp = Obs.Span.start () in
    let comp =
      Pool.init_array ~min_chunk:256 m (fun i ->
          let row = Array.init air.Air.width (fun c -> values.(c).(i)) in
          let next = Array.init air.Air.width (fun c -> values.(c).((i + blowup) mod m)) in
          composition_at air ~gammas ~deltas ~boundary ~omega ~n
            ~x:lde_elements.(i) row next)
    in
    if t_comp <> 0 then Obs.Span.finish "stark.composition" ~args:[ ("rows", m) ] t_comp;
    let dbound = degree_bound air ~n in
    let t_fri = Obs.Span.start () in
    let fri = Fri.prove ~transcript ~domain:lde ~degree_bound:dbound ~queries comp in
    if t_fri <> 0 then Obs.Span.finish "stark.fri" t_fri;
    (* Trace openings for each query's two composition points. *)
    let t_open = Obs.Span.start () in
    let open_at i = { index = i; leaf = leaves.(i); path = Tree.prove tree i } in
    let trace_openings =
      Array.map
        (fun (q : Fri.query) ->
          let i0 = q.Fri.index in
          let half = m / 2 in
          [|
            open_at i0;
            open_at ((i0 + blowup) mod m);
            open_at (i0 + half);
            open_at ((i0 + half + blowup) mod m);
          |])
        fri.Fri.queries
    in
    if t_open <> 0 then Obs.Span.finish "stark.openings" t_open;
    if t_prove <> 0 then Obs.Span.finish "stark.prove" ~args:[ ("n", n) ] t_prove;
    Ok { trace_length = n; blowup; trace_root = Tree.root tree; fri; trace_openings }
  end

let verify ?(queries = default_queries) air proof =
  let n = proof.trace_length in
  let* () =
    if n < 8 || n land (n - 1) <> 0 then Error "stark: bad trace length" else Ok ()
  in
  let* () =
    if proof.blowup <> blowup_for air then Error "stark: wrong blowup" else Ok ()
  in
  let m = proof.blowup * n in
  let lde = Domain.coset ~log_size:(Ntt.log2 m) ~shift:F.generator in
  let omega = F.root_of_unity (Ntt.log2 n) in
  let transcript = T.create ~domain:"zkflow.stark.v1" in
  absorb_statement transcript air ~n ~blowup:proof.blowup ~queries;
  T.absorb_digest transcript ~label:"trace_root" proof.trace_root;
  let gammas, deltas = draw_randomizers transcript air in
  let boundary = Air.resolve_boundary air ~trace_length:n in
  let dbound = degree_bound air ~n in
  let* () = Fri.verify ~transcript ~domain:lde ~degree_bound:dbound ~queries proof.fri in
  let* () =
    if Array.length proof.trace_openings = Array.length proof.fri.Fri.queries then Ok ()
    else Error "stark: opening count mismatch"
  in
  (* Consistency: the committed composition (FRI layer 0) must equal the
     value recomputed from the opened trace rows at both query points. *)
  let check_opening (o : trace_opening) expect_index =
    if o.index <> expect_index then Error "stark: opening index"
    else if o.path.MProof.index <> o.index then Error "stark: path index"
    else if not (MProof.verify_data ~root:proof.trace_root o.leaf o.path) then
      Error "stark: trace opening does not authenticate"
    else row_of_leaf air.Air.width o.leaf
  in
  let lde_element i = Domain.element lde i in
  (* Public columns: interpolate once; the committed column must agree
     at every opened point (Schwartz–Zippel over the FRI queries). *)
  let* public_coeffs =
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | (col, values) :: rest ->
        if col < 0 || col >= air.Air.width then Error "stark: public column index"
        else if Array.length values <> n then Error "stark: public column length"
        else build ((col, Ntt.inverse values) :: acc) rest
    in
    build [] air.Air.public_columns
  in
  let check_public_columns row x =
    List.for_all
      (fun (col, coeffs) ->
        let acc = ref F.zero in
        for i = Array.length coeffs - 1 downto 0 do
          acc := F.add (F.mul !acc x) coeffs.(i)
        done;
        F.equal row.(col) !acc)
      public_coeffs
  in
  let rec go k =
    if k = Array.length proof.fri.Fri.queries then Ok ()
    else begin
      let q = proof.fri.Fri.queries.(k) in
      let os = proof.trace_openings.(k) in
      let* () = if Array.length os = 4 then Ok () else Error "stark: need 4 openings" in
      let i0 = q.Fri.index in
      let half = m / 2 in
      let* row_pos = check_opening os.(0) i0 in
      let* row_pos_next = check_opening os.(1) ((i0 + proof.blowup) mod m) in
      let* row_neg = check_opening os.(2) (i0 + half) in
      let* row_neg_next = check_opening os.(3) ((i0 + half + proof.blowup) mod m) in
      let (pi, pos_v), (ni, neg_v) = Fri.query_layer0 q in
      let* () =
        if pi = i0 && ni = i0 + half then Ok () else Error "stark: fri index mismatch"
      in
      let c_pos =
        composition_at air ~gammas ~deltas ~boundary ~omega ~n ~x:(lde_element i0)
          row_pos row_pos_next
      in
      let c_neg =
        composition_at air ~gammas ~deltas ~boundary ~omega ~n
          ~x:(lde_element (i0 + half)) row_neg row_neg_next
      in
      let* () =
        if Fp2.equal c_pos pos_v then Ok ()
        else Error "stark: composition mismatch at query point"
      in
      let* () =
        if Fp2.equal c_neg neg_v then Ok ()
        else Error "stark: composition mismatch at mirrored point"
      in
      let* () =
        if
          check_public_columns row_pos (lde_element i0)
          && check_public_columns row_pos_next (lde_element ((i0 + proof.blowup) mod m))
          && check_public_columns row_neg (lde_element (i0 + half))
          && check_public_columns row_neg_next
               (lde_element ((i0 + half + proof.blowup) mod m))
        then Ok ()
        else Error "stark: committed column deviates from public input"
      in
      go (k + 1)
    end
  in
  go 0

let opening_size (o : trace_opening) =
  Bytes.length o.leaf + (32 * Array.length o.path.MProof.siblings) + 8

let proof_size_bytes p =
  let fri_size =
    (32 * Array.length p.fri.Fri.layer_roots)
    + (8 * Array.length p.fri.Fri.final)
    + Array.fold_left
        (fun acc (q : Fri.query) ->
          acc
          + Array.fold_left
              (fun acc (s : Fri.query_step) ->
                acc + 16
                + (32 * Array.length s.Fri.pos_path.MProof.siblings)
                + (32 * Array.length s.Fri.neg_path.MProof.siblings))
              8 q.Fri.steps)
        0 p.fri.Fri.queries
  in
  32 + 16 + fri_size
  + Array.fold_left
      (fun acc os -> Array.fold_left (fun a o -> a + opening_size o) acc os)
      0 p.trace_openings
