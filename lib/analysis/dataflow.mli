(** A generic forward worklist solver over a {!Cfg}.

    [solve cfg ~entry ~join ~equal ~transfer] seeds every live function
    entry block with [entry entry_pc], iterates the per-instruction
    [transfer] to a fixpoint over the function-local edges, and returns
    the abstract state at the {e entry} of each basic block ([None] for
    blocks the solver never reached — exactly the CFG-unreachable
    ones). [join] must be monotone and [transfer] monotone in its state
    argument, otherwise termination is not guaranteed. *)

val solve :
  Cfg.t ->
  entry:(int -> 's) ->
  join:('s -> 's -> 's) ->
  equal:('s -> 's -> bool) ->
  transfer:(pc:int -> Zkflow_zkvm.Isa.t -> 's -> 's) ->
  's option array
