(** A forward worklist solver over a {!Cfg}, with optional path
    sensitivity and widening.

    [solve cfg ~entry ~join ~equal ~transfer] seeds every live function
    entry block with [entry entry_pc], iterates the per-instruction
    [transfer] to a fixpoint over the function-local edges, and returns
    the abstract state at the {e entry} of each basic block ([None] for
    blocks the solver never reached).

    [?refine ~pc instr ~taken s] narrows a branch's out-state along its
    taken / fall-through edge; returning [None] marks the edge
    infeasible (no propagation). It is only consulted when the two
    edges lead to distinct blocks.

    [?widen old joined] replaces plain join at loop-header blocks
    (targets of DFS back edges); required for termination on domains of
    unbounded height such as {!Interval}. After the ascending fixpoint
    one descending sweep re-applies the transfer relation (a single
    narrowing iteration — sound, since any descending application of a
    monotone functional from a post-fixpoint stays above the least
    fixpoint). *)

val solve :
  ?refine:(pc:int -> Zkflow_zkvm.Isa.t -> taken:bool -> 's -> 's option) ->
  ?widen:('s -> 's -> 's) ->
  entry:(int -> 's) ->
  join:('s -> 's -> 's) ->
  equal:('s -> 's -> bool) ->
  transfer:(pc:int -> Zkflow_zkvm.Isa.t -> 's -> 's) ->
  Cfg.t ->
  's option array
