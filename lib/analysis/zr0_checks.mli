(** Static checks over ZR0 instruction streams.

    [analyze] builds the {!Cfg}, runs a forward abstract interpretation
    (may-uninitialized registers × the {!Interval} domain, with
    branch-edge refinement, widening at loop headers and one narrowing
    sweep) plus the graph passes, and returns one {!Finding.report}:

    - {b wellformed}: register fields in [0, 31] (short-circuits the
      rest when violated, since nothing downstream is meaningful);
    - {b uninit}: read of a register no path has written (the ABI entry
      state defines only x0); errors;
    - {b membounds}: [Lw]/[Sw]/sha accesses whose address interval lies
      {e entirely} outside guest RAM ([0, 2^28)) or whose sha length
      always exceeds the 2^24-word cap; errors. Accesses merely not
      {e proven} in-range are not findings but clear [proven_safe];
    - {b ecall}: resolved call numbers checked against {!Ecall}
      (argument registers initialized, number known); an unknown number
      is a warning, an always-invalid one an error;
    - {b control}: branch/jump targets outside the program and paths
      that fall off the end without a terminating ecall; errors;
    - {b unreachable}: code no path reaches (adjacent dead blocks are
      collapsed into one finding); warnings;
    - the {b cycle bound}: a sound per-function upper bound.
      [Bounded n] when the body is acyclic (longest path) or every loop
      is a reducible natural loop with a proven trip count (constant
      step against an invariant limit, no wraparound); else
      [Unbounded headers]. The differential fuzzer asserts the bound
      dominates the interpreter's observed cycle count. *)

type value = { may_uninit : bool; v : Interval.t }
type state = value array

val entry_state : unit -> state
(** ABI entry: x0 = 0 and defined, every other register uninitialized. *)

val helper_entry_state : unit -> state
(** Function entry for callees: every register defined but unknown. *)

val reg_itv : state -> int -> Interval.t

val transfer :
  emit:(Finding.t -> unit) -> pc:int -> Zkflow_zkvm.Isa.t -> state -> state
(** One-instruction abstract step; exposed for tests and the taint
    pass (which runs in lockstep with the value state). *)

val refine :
  pc:int -> Zkflow_zkvm.Isa.t -> taken:bool -> state -> state option
(** Branch-edge refinement used by the solver; exposed for lockstep
    passes. *)

val solve : Cfg.t -> state option array
(** The configured {!Dataflow.solve} (entry states, refinement,
    widening); exposed so other passes analyze with identical
    precision. *)

val analyze : ?subject:string -> Zkflow_zkvm.Isa.t array -> Finding.report
