(** Static checks over ZR0 instruction streams.

    [analyze] builds the {!Cfg}, runs a combined forward dataflow
    (may-uninitialized registers + constant propagation, joined over
    paths) and the graph passes, and returns one {!Finding.report}:

    - {b wellformed}: register fields in [0, 31] (short-circuits the
      rest when violated, since nothing downstream is meaningful);
    - {b uninit}: read of a register no path has written (the ABI entry
      state defines only x0); errors;
    - {b membounds}: [Lw]/[Sw]/sha addresses that constant-propagate to
      a value outside guest RAM ([0, 2^28)); unknown addresses are top
      and not reported; errors;
    - {b ecall}: resolved call numbers checked against the host-call
      protocol (argument registers initialized, number known); an
      unknown number is a warning, an invalid constant one an error;
    - {b control}: branch/jump targets outside the program and paths
      that fall off the end without a terminating ecall; errors;
    - {b unreachable}: code no path reaches (adjacent dead blocks are
      collapsed into one finding); warnings;
    - the {b cycle budget}: [Bounded n] on an acyclic reachable CFG
      (longest path, counting SHA compression rows when the length is
      a known constant), else [Unbounded headers]. Informational — the
      built-in guests iterate over their input, so any data-dependent
      loop reports unbounded. *)

type const = Top | Cst of int
type value = { may_uninit : bool; const : const }
type state = value array

val entry_state : unit -> state
(** ABI entry: x0 = 0 and defined, every other register uninitialized. *)

val helper_entry_state : unit -> state
(** Function entry for callees: every register defined but unknown. *)

val transfer :
  emit:(Finding.t -> unit) -> pc:int -> Zkflow_zkvm.Isa.t -> state -> state
(** One-instruction abstract step; exposed for tests. *)

val analyze : ?subject:string -> Zkflow_zkvm.Isa.t array -> Finding.report
