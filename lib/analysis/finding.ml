type severity = Error | Warning

type loc =
  | Pc of int                          (* ZR0 instruction index *)
  | Src of { line : int; col : int }   (* Zirc source position *)
  | Stmt of int list                   (* Zirc statement path (no source) *)
  | Nowhere

type t = {
  severity : severity;
  pass : string;
  loc : loc;
  message : string;
}

type cycle_bound =
  | Bounded of int
  | Unbounded of int list  (* pcs of the offending loop headers *)

type report = {
  subject : string;
  instrs : int;
  blocks : int;
  findings : t list;
  cycle_bound : cycle_bound;
  func_bounds : (int * cycle_bound) list;  (* (entry pc, bound) per function *)
  proven_safe : bool;
    (* every memory access, sha range and ecall number proven in-range
       and no indirect jumps: with zero errors, the only traps left are
       input exhaustion and the cycle limit *)
}

let error ?(loc = Nowhere) ~pass fmt =
  Format.kasprintf (fun message -> { severity = Error; pass; loc; message }) fmt

let warning ?(loc = Nowhere) ~pass fmt =
  Format.kasprintf (fun message -> { severity = Warning; pass; loc; message }) fmt

(* Canonical finding order: position (source locations first, then
   instruction indices, then location-free), then pass, severity and
   message. Every consumer — text, JSON, SARIF, the CI baseline — sees
   the same stable order, and exact duplicates (e.g. the same defect
   reported via two merged paths) collapse to one. *)
let loc_rank = function
  | Src { line; col } -> (0, line, col)
  | Stmt path -> (1, (match path with p :: _ -> p | [] -> 0), List.length path)
  | Pc pc -> (2, pc, 0)
  | Nowhere -> (3, 0, 0)

let compare_finding a b =
  let c = compare (loc_rank a.loc) (loc_rank b.loc) in
  if c <> 0 then c
  else
    let c = String.compare a.pass b.pass in
    if c <> 0 then c
    else
      let c = compare a.severity b.severity in
      if c <> 0 then c else String.compare a.message b.message

let normalize findings =
  let rec dedupe = function
    | a :: b :: rest when a = b -> dedupe (b :: rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe (List.sort compare_finding findings)

let errors report = List.filter (fun f -> f.severity = Error) report.findings
let warnings report = List.filter (fun f -> f.severity = Warning) report.findings
let ok report = errors report = []

let severity_name = function Error -> "error" | Warning -> "warning"

let loc_string = function
  | Pc pc -> Printf.sprintf "pc %d" pc
  | Src { line; col } -> Printf.sprintf "%d:%d" line col
  | Stmt path -> Printf.sprintf "stmt %s" (String.concat "." (List.map string_of_int path))
  | Nowhere -> "-"

let pp_finding ppf f =
  Format.fprintf ppf "%s [%s] %s: %s" (severity_name f.severity) f.pass
    (loc_string f.loc) f.message

let pp_cycle_bound ppf = function
  | Bounded n -> Format.fprintf ppf "<= %d cycles" n
  | Unbounded [] -> Format.fprintf ppf "unbounded"
  | Unbounded headers ->
    Format.fprintf ppf "unbounded (loop headers at pc %s)"
      (String.concat ", " (List.map string_of_int headers))

let pp_report ppf r =
  Format.fprintf ppf "== %s ==@." r.subject;
  Format.fprintf ppf "  %d instruction(s), %d basic block(s); static cycle bound: %a@."
    r.instrs r.blocks pp_cycle_bound r.cycle_bound;
  List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) r.findings;
  Format.fprintf ppf "  %d error(s), %d warning(s)@."
    (List.length (errors r)) (List.length (warnings r))

(* JSON emission for `zkflow lint --json`; escaping is the shared
   Zkflow_util.Jsonx helper so every machine-readable output in the
   tree escapes identically. *)
let json_escape = Zkflow_util.Jsonx.escape

let finding_json f =
  Printf.sprintf {|{"severity":"%s","pass":"%s","loc":"%s","message":"%s"}|}
    (severity_name f.severity) (json_escape f.pass)
    (json_escape (loc_string f.loc)) (json_escape f.message)

let cycle_bound_json = function
  | Bounded n -> Printf.sprintf {|{"kind":"bounded","cycles":%d}|} n
  | Unbounded headers ->
    Printf.sprintf {|{"kind":"unbounded","loop_headers":[%s]}|}
      (String.concat "," (List.map string_of_int headers))

let report_json r =
  let funcs =
    List.map
      (fun (entry, b) -> Printf.sprintf {|{"entry":%d,"bound":%s}|} entry (cycle_bound_json b))
      r.func_bounds
  in
  Printf.sprintf
    {|{"subject":"%s","instrs":%d,"blocks":%d,"errors":%d,"warnings":%d,"proven_safe":%b,"cycle_bound":%s,"func_bounds":[%s],"findings":[%s]}|}
    (json_escape r.subject) r.instrs r.blocks
    (List.length (errors r)) (List.length (warnings r)) r.proven_safe
    (cycle_bound_json r.cycle_bound)
    (String.concat "," funcs)
    (String.concat "," (List.map finding_json r.findings))

let reports_json rs =
  Printf.sprintf {|{"reports":[%s]}|} (String.concat "," (List.map report_json rs))

(* ---- SARIF 2.1.0 ----

   One run per invocation; each report's subject becomes the artifact
   URI. ZR0 program counters have no source region, so they ride in the
   message and a logical location instead. Shared by `zkflow lint
   --sarif` and `zkflow audit --sarif`, and uploaded by the CI audit
   job. *)

let sarif_level = function Error -> "error" | Warning -> "warning"

let sarif_result subject f =
  let region =
    match f.loc with
    | Src { line; col } ->
      Printf.sprintf {|,"region":{"startLine":%d,"startColumn":%d}|} line col
    | _ -> ""
  in
  let logical =
    match f.loc with
    | Src _ -> ""
    | loc ->
      Printf.sprintf {|,"logicalLocations":[{"name":"%s"}]|} (json_escape (loc_string loc))
  in
  Printf.sprintf
    {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"}%s}%s}]}|}
    (json_escape f.pass) (sarif_level f.severity)
    (json_escape (Printf.sprintf "[%s] %s" (loc_string f.loc) f.message))
    (json_escape subject) region logical

let sarif_json reports =
  let rules =
    List.concat_map (fun r -> List.map (fun f -> f.pass) r.findings) reports
    |> List.sort_uniq String.compare
    |> List.map (fun p -> Printf.sprintf {|{"id":"%s"}|} (json_escape p))
  in
  let results =
    List.concat_map (fun r -> List.map (sarif_result r.subject) r.findings) reports
  in
  Printf.sprintf
    {|{"version":"2.1.0","$schema":"https://json.schemastore.org/sarif-2.1.0.json","runs":[{"tool":{"driver":{"name":"zkflow-audit","informationUri":"https://example.org/zkflow","rules":[%s]}},"results":[%s]}]}|}
    (String.concat "," rules)
    (String.concat "," results)
