type severity = Error | Warning

type loc =
  | Pc of int                          (* ZR0 instruction index *)
  | Src of { line : int; col : int }   (* Zirc source position *)
  | Stmt of int list                   (* Zirc statement path (no source) *)
  | Nowhere

type t = {
  severity : severity;
  pass : string;
  loc : loc;
  message : string;
}

type cycle_bound =
  | Bounded of int
  | Unbounded of int list  (* pcs of the offending loop headers *)

type report = {
  subject : string;
  instrs : int;
  blocks : int;
  findings : t list;
  cycle_bound : cycle_bound;
}

let error ?(loc = Nowhere) ~pass fmt =
  Format.kasprintf (fun message -> { severity = Error; pass; loc; message }) fmt

let warning ?(loc = Nowhere) ~pass fmt =
  Format.kasprintf (fun message -> { severity = Warning; pass; loc; message }) fmt

let errors report = List.filter (fun f -> f.severity = Error) report.findings
let warnings report = List.filter (fun f -> f.severity = Warning) report.findings
let ok report = errors report = []

let severity_name = function Error -> "error" | Warning -> "warning"

let loc_string = function
  | Pc pc -> Printf.sprintf "pc %d" pc
  | Src { line; col } -> Printf.sprintf "%d:%d" line col
  | Stmt path -> Printf.sprintf "stmt %s" (String.concat "." (List.map string_of_int path))
  | Nowhere -> "-"

let pp_finding ppf f =
  Format.fprintf ppf "%s [%s] %s: %s" (severity_name f.severity) f.pass
    (loc_string f.loc) f.message

let pp_cycle_bound ppf = function
  | Bounded n -> Format.fprintf ppf "<= %d cycles" n
  | Unbounded [] -> Format.fprintf ppf "unbounded"
  | Unbounded headers ->
    Format.fprintf ppf "unbounded (loop headers at pc %s)"
      (String.concat ", " (List.map string_of_int headers))

let pp_report ppf r =
  Format.fprintf ppf "== %s ==@." r.subject;
  Format.fprintf ppf "  %d instruction(s), %d basic block(s); static cycle bound: %a@."
    r.instrs r.blocks pp_cycle_bound r.cycle_bound;
  List.iter (fun f -> Format.fprintf ppf "  %a@." pp_finding f) r.findings;
  Format.fprintf ppf "  %d error(s), %d warning(s)@."
    (List.length (errors r)) (List.length (warnings r))

(* JSON emission for `zkflow lint --json`; escaping is the shared
   Zkflow_util.Jsonx helper so every machine-readable output in the
   tree escapes identically. *)
let json_escape = Zkflow_util.Jsonx.escape

let finding_json f =
  Printf.sprintf {|{"severity":"%s","pass":"%s","loc":"%s","message":"%s"}|}
    (severity_name f.severity) (json_escape f.pass)
    (json_escape (loc_string f.loc)) (json_escape f.message)

let report_json r =
  let bound =
    match r.cycle_bound with
    | Bounded n -> Printf.sprintf {|{"kind":"bounded","cycles":%d}|} n
    | Unbounded headers ->
      Printf.sprintf {|{"kind":"unbounded","loop_headers":[%s]}|}
        (String.concat "," (List.map string_of_int headers))
  in
  Printf.sprintf
    {|{"subject":"%s","instrs":%d,"blocks":%d,"errors":%d,"warnings":%d,"cycle_bound":%s,"findings":[%s]}|}
    (json_escape r.subject) r.instrs r.blocks
    (List.length (errors r)) (List.length (warnings r)) bound
    (String.concat "," (List.map finding_json r.findings))
