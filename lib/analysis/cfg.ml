module Isa = Zkflow_zkvm.Isa

type block = {
  id : int;
  first : int;
  last : int;
  succs : int list;  (* block ids *)
}

type t = {
  program : Isa.t array;
  blocks : block array;
  block_of_pc : int array;
  reachable : bool array;
  entries : int list;
  calls : (int * int) list;
  escapes : (int * int) list;
}

(* A halt is the [li a0, 0; ecall] idiom every code path in the
   assembler and the Zirc compiler emits. Recognising it syntactically
   keeps the CFG precise without needing the dataflow result; an ecall
   whose call number is set any other way conservatively keeps its
   fall-through edge. *)
let is_terminal_halt program pc =
  match program.(pc) with
  | Isa.Ecall -> pc > 0 && program.(pc - 1) = Isa.Lui (10, 0)
  | _ -> false

let is_call = function
  | Isa.Jal (rd, _) | Isa.Jalr (rd, _, _) -> rd <> 0
  | _ -> false

(* Function-local successors. ZR0 code only materialises code addresses
   through link registers, so a linking [Jal]/[Jalr] is a call (control
   comes back to pc+1) and [Jalr x0] is a return (exits the function);
   callees are analysed as their own functions. Arithmetic on a return
   address escapes this model and is out of scope (DESIGN.md §8). *)
let raw_succs program pc =
  match program.(pc) with
  | Isa.Branch (_, _, _, tgt) -> [ tgt; pc + 1 ]
  | Isa.Jal (0, tgt) -> [ tgt ]
  | Isa.Jal (_, _) -> [ pc + 1 ]        (* call: resumes after return *)
  | Isa.Jalr (0, _, _) -> []            (* return *)
  | Isa.Jalr (_, _, _) -> [ pc + 1 ]    (* indirect call *)
  | Isa.Ecall -> if is_terminal_halt program pc then [] else [ pc + 1 ]
  | _ -> [ pc + 1 ]

let build program =
  let n = Array.length program in
  if n = 0 then invalid_arg "Cfg.build: empty program";
  let succs_of_pc = Array.init n (fun pc -> raw_succs program pc) in
  (* Edges leaving [0, n) are defects (the machine traps on fetch);
     keep them aside and clip the graph to in-range pcs. *)
  let escapes = ref [] in
  let in_range =
    Array.map (fun succs -> List.filter (fun t -> t >= 0 && t < n) succs) succs_of_pc
  in
  Array.iteri
    (fun pc succs ->
      List.iter
        (fun t -> if t < 0 || t >= n then escapes := (pc, t) :: !escapes)
        succs)
    succs_of_pc;
  (* A call's target is not a successor edge (control resumes at pc+1),
     so an out-of-range callee must be caught here or it would vanish
     from the graph entirely — while the machine traps on fetch. *)
  Array.iteri
    (fun pc instr ->
      match instr with
      | Isa.Jal (rd, tgt) when rd <> 0 && (tgt < 0 || tgt >= n) ->
        escapes := (pc, tgt) :: !escapes
      | _ -> ())
    program;
  (* Leaders: the program entry, every pc after a control-flow
     instruction, every in-range control target, every callee entry. *)
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc instr ->
      let ends_block =
        match instr with
        | Isa.Branch _ | Isa.Jal _ | Isa.Jalr _ | Isa.Ecall -> true
        | _ -> false
      in
      if ends_block then begin
        if pc + 1 < n then leader.(pc + 1) <- true;
        List.iter (fun t -> leader.(t) <- true) in_range.(pc)
      end;
      match instr with
      | Isa.Jal (rd, tgt) when rd <> 0 && tgt >= 0 && tgt < n -> leader.(tgt) <- true
      | _ -> ())
    program;
  let block_of_pc = Array.make n 0 in
  let firsts = ref [] in
  for pc = n - 1 downto 0 do
    if leader.(pc) then firsts := pc :: !firsts
  done;
  let firsts = Array.of_list !firsts in
  let nb = Array.length firsts in
  let blocks =
    Array.init nb (fun id ->
        let first = firsts.(id) in
        let last = if id + 1 < nb then firsts.(id + 1) - 1 else n - 1 in
        for pc = first to last do
          block_of_pc.(pc) <- id
        done;
        { id; first; last; succs = [] })
  in
  let blocks =
    Array.map
      (fun b ->
        let succs =
          List.sort_uniq Int.compare
            (List.map (fun t -> block_of_pc.(t)) in_range.(b.last))
        in
        { b with succs })
      blocks
  in
  (* Reachability from the entry, following local edges and discovering
     callees: a reachable linking jump makes its target a live function
     entry analysed from its own entry block. *)
  let reachable = Array.make nb false in
  let entries = ref [ 0 ] in
  let calls = ref [] in
  let rec dfs id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      let last = blocks.(id).last in
      (match program.(last) with
       | Isa.Jal (rd, tgt) when rd <> 0 && tgt >= 0 && tgt < n ->
         calls := (last, tgt) :: !calls;
         if not (List.mem tgt !entries) then entries := tgt :: !entries;
         dfs block_of_pc.(tgt)
       | _ -> ());
      List.iter dfs blocks.(id).succs
    end
  in
  dfs 0;
  {
    program;
    blocks;
    block_of_pc;
    reachable;
    entries = List.rev !entries;
    calls = List.rev !calls;
    escapes = List.rev !escapes;
  }

let succs_of_pc t pc =
  List.filter
    (fun s -> s >= 0 && s < Array.length t.program)
    (raw_succs t.program pc)

let reachable_pc t pc = t.reachable.(t.block_of_pc.(pc))

(* Back edges over the local (intra-function) graph, searched from
   every live entry. Dominance is not needed for the conservative loop
   report: any reachable cycle makes the bound infinite. *)
let back_edge_headers t =
  let nb = Array.length t.blocks in
  let color = Array.make nb 0 in
  (* 0 white, 1 grey, 2 black *)
  let headers = ref [] in
  let rec dfs id =
    color.(id) <- 1;
    List.iter
      (fun s ->
        if color.(s) = 1 then headers := t.blocks.(s).first :: !headers
        else if color.(s) = 0 then dfs s)
      t.blocks.(id).succs;
    color.(id) <- 2
  in
  List.iter
    (fun entry ->
      let id = t.block_of_pc.(entry) in
      if color.(id) = 0 then dfs id)
    t.entries;
  List.sort_uniq Int.compare !headers

(* Entry pcs on a call-graph cycle (recursion ⇒ no static bound). *)
let recursive_entries t =
  let callees_of entry =
    (* blocks of this function: local DFS from its entry *)
    let nb = Array.length t.blocks in
    let seen = Array.make nb false in
    let callees = ref [] in
    let rec dfs id =
      if not seen.(id) then begin
        seen.(id) <- true;
        (match t.program.(t.blocks.(id).last) with
         | Isa.Jal (rd, tgt) when rd <> 0 && tgt >= 0 && tgt < Array.length t.program
           -> callees := tgt :: !callees
         | _ -> ());
        List.iter dfs t.blocks.(id).succs
      end
    in
    dfs t.block_of_pc.(entry);
    !callees
  in
  let edges = List.map (fun e -> (e, callees_of e)) t.entries in
  let color = Hashtbl.create 8 in
  let bad = ref [] in
  let rec dfs e =
    match Hashtbl.find_opt color e with
    | Some 1 -> bad := e :: !bad
    | Some _ -> ()
    | None ->
      Hashtbl.replace color e 1;
      List.iter dfs (try List.assoc e edges with Not_found -> []);
      Hashtbl.replace color e 2
  in
  List.iter dfs t.entries;
  List.sort_uniq Int.compare !bad

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "block %d: pc %d..%d -> [%s]%s%s@." b.id b.first b.last
        (String.concat "," (List.map string_of_int b.succs))
        (if List.mem b.first t.entries then " (entry)" else "")
        (if t.reachable.(b.id) then "" else " (unreachable)"))
    t.blocks
