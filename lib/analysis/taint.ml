(* Information-flow (taint) analysis for untrusted telemetry inputs.

   Threat model (PAPER.md): router exports arrive as the guest's
   private input and are *untrusted* until the guest authenticates them
   against a commitment the verifier pins (the CLog root). Data that
   reaches the receipt's journal without passing such a validation is a
   lie-by-construction hazard: the receipt proves only that *some*
   input produced the output.

   Lattice: Clean ⊑ Checked ⊑ Tainted.
   - sources: the input ecalls ([read_word]/[input_avail] in Zirc,
     ecall 1/5 in ZR0) produce Tainted;
   - validation: traversing a comparison laundering Tainted → Checked
     on both outcomes — branching on untrusted data is exactly what
     "the guest validated it" looks like at this level (a wrong
     predicate is out of scope, as for any taint system). For the
     Merkle idiom, [cmp8] over a region launders the region and,
     transitively, every region it was derived from ([leaf_hashes] /
     [merkle_root] / [sha] record provenance): checking the root
     authenticates the entries it was hashed from;
   - sinks: journal commits ([commit]/[commit_words], ecall 2) and
     memory address operands. A Tainted value at a sink is an error
     finding (pass "taint-journal" / "taint-addr"). The prover gate
     does NOT run this pass — `zkflow audit` does, so operators can
     adopt it without changing what proves.

   The Zirc pass is the authoritative one for compiled programs (the
   ZR0 pass is intraprocedural and models calls as returning Checked,
   so flows through the guestlib runtime are deliberately out of its
   scope); `zkflow audit` runs the Zirc pass on sources and the ZR0
   pass on raw assembly. A statement under a [//@ trusted] pragma has
   its sources demoted to Checked and its sink findings suppressed
   (counted, for the obs counters). *)

module Isa = Zkflow_zkvm.Isa
module Ecall = Zkflow_zkvm.Ecall
module Zirc = Zkflow_lang.Zirc

type level = Clean | Checked | Tainted

let join_level a b =
  match (a, b) with
  | Tainted, _ | _, Tainted -> Tainted
  | Checked, _ | _, Checked -> Checked
  | Clean, Clean -> Clean

let launder = function Tainted -> Checked | l -> l
let level_name = function Clean -> "clean" | Checked -> "checked" | Tainted -> "tainted"

(* ==== Zirc AST pass ==== *)

module SM = Map.Make (String)
module IM = Map.Make (Int)

(* A memory region, keyed by the constant base address of the statement
   that wrote it. [deps] is provenance: bases this region was derived
   from (hashing is collision-resistant, so validating a derived digest
   authenticates its preimage region too). *)
type region = { taint : level; deps : int list }

type zstate = {
  vars : (level * int option) SM.t;  (* taint, known base address *)
  regions : region IM.t;
  halted : bool;
}

let zinit = { vars = SM.empty; regions = IM.empty; halted = false }

let join_var (l1, b1) (l2, b2) =
  (join_level l1 l2, if b1 = b2 then b1 else None)

let join_region r1 r2 =
  { taint = join_level r1.taint r2.taint; deps = List.sort_uniq Int.compare (r1.deps @ r2.deps) }

let join_zstate a b =
  if a.halted then { b with halted = false }
  else if b.halted then { a with halted = false }
  else
    {
      vars = SM.union (fun _ v1 v2 -> Some (join_var v1 v2)) a.vars b.vars;
      regions = IM.union (fun _ r1 r2 -> Some (join_region r1 r2)) a.regions b.regions;
      halted = false;
    }

let equal_zstate (a : zstate) b =
  a.halted = b.halted && SM.equal ( = ) a.vars b.vars && IM.equal ( = ) a.regions b.regions

let region_taint st base =
  match IM.find_opt base st.regions with Some r -> r.taint | None -> Clean

(* All regions reachable through provenance from [base]. *)
let dep_closure st base =
  let rec go seen = function
    | [] -> seen
    | b :: rest ->
      if List.mem b seen then go seen rest
      else
        let deps = match IM.find_opt b st.regions with Some r -> r.deps | None -> [] in
        go (b :: seen) (deps @ rest)
  in
  go [] [ base ]

let launder_region st base =
  List.fold_left
    (fun st b ->
      match IM.find_opt b st.regions with
      | Some r -> { st with regions = IM.add b { r with taint = launder r.taint } st.regions }
      | None -> st)
    st (dep_closure st base)

(* Evaluate an expression to (taint, known base address). [~trusted]
   demotes sources to Checked. Also flags Tainted memory-address
   operands (the address sink) via [emit]. *)
let rec eval ~emit ~loc ~trusted st (e : Zirc.expr) =
  match e with
  | Zirc.Int v -> (Clean, Some (v land 0xffffffff))
  | Zirc.Var x -> (
    match SM.find_opt x st.vars with Some v -> v | None -> (Clean, None))
  | Zirc.Read_word | Zirc.Input_avail ->
    ((if trusted then Checked else Tainted), None)
  | Zirc.Load a ->
    let base = addr_operand ~emit ~loc ~trusted ~what:"load" st a in
    let t =
      match base with
      | Some b -> region_taint st b
      | None ->
        (* unknown address: any region could be read *)
        IM.fold (fun _ r acc -> join_level acc r.taint) st.regions Clean
    in
    (t, None)
  | Zirc.Bin (op, a, b) ->
    let ta, ba = eval ~emit ~loc ~trusted st a in
    let tb, _ = eval ~emit ~loc ~trusted st b in
    let base =
      (* address arithmetic: base + anything stays within the region
         (coarse, but regions are statement-granular anyway) *)
      match (op, ba) with Zirc.Add, Some _ -> ba | _ -> None
    in
    (join_level ta tb, base)
  | Zirc.Cmp8 (a, b) ->
    (* both operands are addresses of 8-word digests *)
    let ba = addr_operand ~emit ~loc ~trusted ~what:"cmp8" st a in
    let bb = addr_operand ~emit ~loc ~trusted ~what:"cmp8" st b in
    let rt = function Some b -> region_taint st b | None -> Clean in
    (join_level (rt ba) (rt bb), None)

(* An expression used as a memory address: evaluate it, flag it if
   Tainted, and return its base. *)
and addr_operand ~emit ~loc ~trusted ~what st e =
  let t, base = eval ~emit ~loc ~trusted st e in
  if t = Tainted then
    emit
      (Finding.error ~loc ~pass:"taint-addr"
         "untrusted input used as %s address without validation" what);
  base

(* Validation: any comparison in a branch condition launders its
   operands' variables; [cmp8] additionally launders the compared
   regions and their provenance closure. *)
let rec launder_cond st (e : Zirc.expr) =
  let quiet st e = eval ~emit:(fun _ -> ()) ~loc:Finding.Nowhere ~trusted:false st e in
  match e with
  | Zirc.Int _ | Zirc.Var _ | Zirc.Read_word | Zirc.Input_avail -> st
  | Zirc.Load a -> launder_cond st a
  | Zirc.Bin (op, a, b) ->
    let st = launder_cond (launder_cond st a) b in
    let is_cmp =
      match op with
      | Zirc.Eq | Zirc.Neq | Zirc.Lt | Zirc.Le | Zirc.Gt | Zirc.Ge | Zirc.Slt -> true
      | _ -> false
    in
    if not is_cmp then st
    else
      let rec launder_vars st (e : Zirc.expr) =
        match e with
        | Zirc.Var x -> (
          match SM.find_opt x st.vars with
          | Some (t, base) -> { st with vars = SM.add x (launder t, base) st.vars }
          | None -> st)
        | Zirc.Bin (_, a, b) -> launder_vars (launder_vars st a) b
        | Zirc.Load a -> launder_vars st a
        | _ -> st
      in
      launder_vars (launder_vars st a) b
  | Zirc.Cmp8 (a, b) ->
    let st =
      match snd (quiet st a) with Some base -> launder_region st base | None -> st
    in
    (match snd (quiet st b) with Some base -> launder_region st base | None -> st)

let set_region st base r = { st with regions = IM.add base r st.regions }

let taint_all st t =
  {
    st with
    regions = IM.map (fun r -> { r with taint = join_level r.taint t }) st.regions;
  }

(* One statement. [emit'] is the possibly-suppressed emitter for this
   statement ([//@ trusted]); nested blocks inherit suppression. *)
let rec exec_stmt ~emit ~suppressed (a : Zirc_lint.astmt) st =
  if st.halted then st
  else begin
    let loc = a.Zirc_lint.loc in
    let trusted = a.Zirc_lint.trusted in
    let emit' f =
      if trusted then incr suppressed
      else emit f
    in
    let ev e = eval ~emit:emit' ~loc ~trusted st e in
    let addr ~what e = addr_operand ~emit:emit' ~loc ~trusted ~what st e in
    match a.Zirc_lint.s with
    | Zirc.Let (x, e) | Zirc.Set (x, e) ->
      let v = ev e in
      { st with vars = SM.add x v st.vars }
    | Zirc.Store (ae, ve) ->
      let t, _ = ev ve in
      let base = addr ~what:"store" ae in
      (match base with
       | Some b ->
         let r =
           match IM.find_opt b st.regions with
           | Some r -> { r with taint = join_level r.taint t }
           | None -> { taint = t; deps = [] }
         in
         set_region st b r
       | None -> taint_all st t)
    | Zirc.If (c, _, _) ->
      ignore (ev c);
      let st = launder_cond st c in
      let st_t =
        exec_block ~emit ~suppressed (List.nth a.Zirc_lint.sub 0) st
      and st_e =
        exec_block ~emit ~suppressed (List.nth a.Zirc_lint.sub 1) st
      in
      if st_t.halted && st_e.halted then { st with halted = true }
      else join_zstate st_t st_e
    | Zirc.While (c, _) ->
      let body = List.nth a.Zirc_lint.sub 0 in
      (* silent fixpoint over the loop-entry state (finite lattice,
         finitely many variable/region keys), then one emitting pass *)
      let silent _ = () in
      let rec fix x =
        let at_cond = launder_cond x c in
        let after = exec_block ~emit:silent ~suppressed:(ref 0) body at_cond in
        let x' = if after.halted then x else join_zstate x after in
        if equal_zstate x' x then x else fix x'
      in
      let x = fix st in
      ignore (eval ~emit:emit' ~loc ~trusted x c);
      let at_cond = launder_cond x c in
      ignore (exec_block ~emit ~suppressed body at_cond);
      (* exit state: the condition was traversed (laundering applies),
         the body may have run any number of times *)
      at_cond
    | Zirc.Commit e ->
      let t, _ = ev e in
      if t = Tainted then
        emit'
          (Finding.error ~loc ~pass:"taint-journal"
             "untrusted input flows to the journal without validation (commit)");
      st
    | Zirc.Commit_words { src; count } ->
      ignore (ev count);
      let base = addr ~what:"commit_words source" src in
      let t = match base with Some b -> region_taint st b | None ->
        IM.fold (fun _ r acc -> join_level acc r.taint) st.regions Clean
      in
      if t = Tainted then
        emit'
          (Finding.error ~loc ~pass:"taint-journal"
             "untrusted region flows to the journal without validation (commit_words)");
      st
    | Zirc.Read_words { dst; count } ->
      ignore (ev count);
      let base = addr ~what:"read_words destination" dst in
      let t = if trusted then Checked else Tainted in
      (match base with
       | Some b -> set_region st b { taint = t; deps = [] }
       | None -> taint_all st t)
    | Zirc.Sha { src; words; dst } ->
      ignore (ev words);
      let sbase = addr ~what:"sha source" src in
      let dbase = addr ~what:"sha destination" dst in
      let t = match sbase with Some b -> region_taint st b | None -> Tainted in
      (match dbase with
       | Some b ->
         set_region st b { taint = t; deps = (match sbase with Some s -> [ s ] | None -> []) }
       | None -> taint_all st t)
    | Zirc.Leaf_hashes { entries; count; out; scratch } ->
      ignore (ev count);
      let ebase = addr ~what:"leaf_hashes entries" entries in
      let obase = addr ~what:"leaf_hashes output" out in
      let sbase = addr ~what:"leaf_hashes scratch" scratch in
      let t = match ebase with Some b -> region_taint st b | None -> Tainted in
      let deps = match ebase with Some e -> [ e ] | None -> [] in
      let st =
        match obase with
        | Some b -> set_region st b { taint = t; deps }
        | None -> taint_all st t
      in
      (match sbase with
       | Some b -> set_region st b { taint = t; deps }
       | None -> st)
    | Zirc.Merkle_root { leaves; count } ->
      ignore (ev count);
      (* in-place reduction: taint and provenance of the buffer keep *)
      ignore (addr ~what:"merkle_root buffer" leaves);
      st
    | Zirc.Halt e ->
      ignore (ev e);
      { st with halted = true }
    | Zirc.Debug e ->
      ignore (ev e);
      st
  end

and exec_block ~emit ~suppressed astmts st =
  List.fold_left (fun st a -> exec_stmt ~emit ~suppressed a st) st astmts

let check_zirc ?positions (prog : Zirc.program) =
  let ast = Zirc_lint.annotate_block [] prog positions in
  let findings = ref [] in
  let suppressed = ref 0 in
  let emit f = findings := f :: !findings in
  ignore (exec_block ~emit ~suppressed ast zinit);
  (Finding.normalize !findings, !suppressed)

(* ==== ZR0 pass ====

   Runs after {!Zr0_checks.solve}; the per-pc value states resolve
   ecall numbers. Registers carry a taint level; all of guest RAM is
   one summary cell (raw assembly has no statement-granular regions).
   Intraprocedural: calls return Checked in every clobbered register,
   so only flows *within* a function body are tracked — the Zirc pass
   is the authoritative one for compiled programs. *)

type ztaint = { regs : level array; mem : level }

let jt a b =
  { regs = Array.init 32 (fun i -> join_level a.regs.(i) b.regs.(i));
    mem = join_level a.mem b.mem }

let taint_entry main =
  { regs = Array.make 32 (if main then Clean else Checked);
    mem = (if main then Clean else Checked) }

(* Value state at each pc, from the block-entry fixpoint. *)
let per_pc_values (cfg : Cfg.t) block_in =
  let n = Array.length cfg.Cfg.program in
  let vals = Array.make n None in
  Array.iteri
    (fun id (b : Cfg.block) ->
      match block_in.(id) with
      | None -> ()
      | Some st ->
        let st = ref st in
        for pc = b.Cfg.first to b.Cfg.last do
          vals.(pc) <- Some !st;
          st := Zr0_checks.transfer ~emit:(fun _ -> ()) ~pc cfg.Cfg.program.(pc) !st
        done)
    cfg.Cfg.blocks;
  vals

let zr0_step ~emit ~pc ~vals instr (t : ztaint) =
  let t = { t with regs = Array.copy t.regs } in
  let lv r = if r = 0 then Clean else t.regs.(r) in
  let set r l = if r <> 0 then t.regs.(r) <- l in
  let addr_sink ~what r =
    if lv r = Tainted then
      emit
        (Finding.error ~loc:(Finding.Pc pc) ~pass:"taint-addr"
           "untrusted input used as %s address without validation" what)
  in
  match (instr : Isa.t) with
  | Alu (_, rd, rs1, rs2) ->
    set rd (join_level (lv rs1) (lv rs2));
    t
  | Alui (_, rd, rs1, _) ->
    set rd (lv rs1);
    t
  | Lui (rd, _) ->
    set rd Clean;
    t
  | Lw (rd, rs1, _) ->
    addr_sink ~what:"load" rs1;
    set rd t.mem;
    t
  | Sw (rs2, rs1, _) ->
    addr_sink ~what:"store" rs1;
    { t with mem = join_level t.mem (lv rs2) }
  | Branch (_, rs1, rs2, _) ->
    (* validation: branching on a value launders it on both outcomes *)
    set rs1 (launder (lv rs1));
    set rs2 (launder (lv rs2));
    t
  | Jal (0, _) -> t
  | Jal (_, _) | Jalr (_, _, _) ->
    (* call (or indirect transfer): intraprocedural summary *)
    for r = 1 to 31 do
      t.regs.(r) <- Checked
    done;
    t
  | Ecall ->
    let num =
      match vals with
      | Some vs -> Interval.is_const (Zr0_checks.reg_itv vs 10)
      | None -> None
    in
    (match Option.bind num Ecall.of_number with
     | Some c ->
       if Ecall.writes_journal c && lv 11 = Tainted then
         emit
           (Finding.error ~loc:(Finding.Pc pc) ~pass:"taint-journal"
              "untrusted input flows to the journal without validation (ecall %d, a1 is %s)"
              (Ecall.number c) (level_name (lv 11)));
       if c = Ecall.Sha then begin
         addr_sink ~what:"sha source" 11;
         addr_sink ~what:"sha destination" 13
       end;
       List.iter (fun r -> set r (if Ecall.reads_input c then Tainted else Clean))
         (Ecall.result_regs c);
       t
     | None ->
       (* unresolved call number: assume the worst about results *)
       set 10 Tainted;
       t)

let reg_ok r = match r with Some r when r < 0 || r > 31 -> false | _ -> true

let check_zr0 instrs =
  let malformed =
    Array.exists
      (fun instr ->
        let r1, r2, rd = Isa.registers_used instr in
        not (reg_ok r1 && reg_ok r2 && reg_ok rd))
      instrs
  in
  if malformed || Array.length instrs = 0 then []
  else begin
    let cfg = Cfg.build instrs in
    let block_in = Zr0_checks.solve cfg in
    let vals = per_pc_values cfg block_in in
    let taint_in =
      Dataflow.solve
        ~entry:(fun pc -> taint_entry (pc = 0))
        ~join:jt
        ~equal:(fun a b -> a.regs = b.regs && a.mem = b.mem)
        ~transfer:(fun ~pc instr t ->
          zr0_step ~emit:(fun _ -> ()) ~pc ~vals:vals.(pc) instr t)
        cfg
    in
    let findings = ref [] in
    let emit f = findings := f :: !findings in
    Array.iteri
      (fun id (b : Cfg.block) ->
        match taint_in.(id) with
        | None -> ()
        | Some t ->
          let t = ref t in
          for pc = b.Cfg.first to b.Cfg.last do
            t := zr0_step ~emit ~pc ~vals:vals.(pc) cfg.Cfg.program.(pc) !t
          done)
      cfg.Cfg.blocks;
    Finding.normalize !findings
  end
