module Finding = Finding
module Cfg = Cfg
module Dataflow = Dataflow
module Interval = Interval
module Zr0_checks = Zr0_checks
module Zirc_lint = Zirc_lint
module Taint = Taint
module Program = Zkflow_zkvm.Program
module Obs = Zkflow_obs

let c_findings = Obs.Metric.counter "analysis.findings"
let c_errors = Obs.Metric.counter "analysis.errors"
let c_trusted = Obs.Metric.counter "analysis.trusted_suppressed"

let record_pass name f =
  let t0 = Obs.Span.start () in
  let r = f () in
  Obs.Span.finish ("analysis." ^ name) t0;
  r

let record_report (r : Finding.report) =
  Obs.Metric.add c_findings (List.length r.Finding.findings);
  Obs.Metric.add c_errors (List.length (Finding.errors r));
  r

let check ?subject (program : Program.t) =
  record_report
    (record_pass "zr0" (fun () ->
         Zr0_checks.analyze ?subject (Program.instrs program)))

let check_instrs ?subject instrs =
  record_report
    (record_pass "zr0" (fun () -> Zr0_checks.analyze ?subject instrs))

let check_zirc ?(subject = "zirc program") ?positions prog =
  let lint = record_pass "lint" (fun () -> Zirc_lint.lint ?positions prog) in
  record_report
    (match Zkflow_lang.Zirc.compile prog with
    | Error msg ->
      {
        Finding.subject;
        instrs = 0;
        blocks = 0;
        findings = lint @ [ Finding.error ~pass:"compile" "%s" msg ];
        cycle_bound = Finding.Unbounded [];
        func_bounds = [];
        proven_safe = false;
      }
    | Ok program ->
      let r =
        record_pass "zr0" (fun () ->
            Zr0_checks.analyze ~subject (Program.instrs program))
      in
      { r with Finding.findings = lint @ r.Finding.findings })

(* ------------------------------------------------------------------ *)
(* Audit: the full pipeline (value analysis + taint), surfaced by
   [zkflow audit]. Kept separate from [check]/[gate] so adopting the
   audit cannot change which guests prove. *)

let audit ?subject (instrs : Zkflow_zkvm.Isa.t array) =
  let r =
    record_pass "zr0" (fun () -> Zr0_checks.analyze ?subject instrs)
  in
  let taint = record_pass "taint-zr0" (fun () -> Taint.check_zr0 instrs) in
  record_report
    {
      r with
      Finding.findings = Finding.normalize (r.Finding.findings @ taint);
    }

let audit_zirc ?(subject = "zirc program") ?positions prog =
  let lint = record_pass "lint" (fun () -> Zirc_lint.lint ?positions prog) in
  let taint, suppressed =
    record_pass "taint-zirc" (fun () -> Taint.check_zirc ?positions prog)
  in
  Obs.Metric.add c_trusted suppressed;
  record_report
    (match Zkflow_lang.Zirc.compile prog with
    | Error msg ->
      {
        Finding.subject;
        instrs = 0;
        blocks = 0;
        findings =
          Finding.normalize
            (lint @ taint @ [ Finding.error ~pass:"compile" "%s" msg ]);
        cycle_bound = Finding.Unbounded [];
        func_bounds = [];
        proven_safe = false;
      }
    | Ok program ->
      let r =
        record_pass "zr0" (fun () ->
            Zr0_checks.analyze ~subject (Program.instrs program))
      in
      (* The compiler lowers [halt] mid-block, leaving structurally
         dead ZR0 tails that are not source defects; the source-level
         [zirc-unreachable] lint covers real ones. *)
      let zr0_findings =
        List.filter
          (fun (f : Finding.t) -> f.Finding.pass <> "unreachable")
          r.Finding.findings
      in
      {
        r with
        Finding.findings = Finding.normalize (lint @ taint @ zr0_findings);
      })

let disabled () =
  match Sys.getenv_opt "ZKFLOW_NO_ANALYZE" with
  | Some "" | None -> false
  | Some _ -> true

(* One analysis per image ID per process: the built-in guests are
   proven repeatedly (per shard, per epoch), and the analysis is pure
   in the instruction stream. *)
let cache : (string, Finding.report) Hashtbl.t = Hashtbl.create 8

let report_for ?subject program =
  let key = Zkflow_hash.Digest32.to_hex (Program.image_id program) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r = check ?subject program in
    Hashtbl.add cache key r;
    r

let gate ?subject ?(budget = Zkflow_zkvm.Machine.default_max_cycles) program =
  if disabled () then Ok ()
  else begin
    let r = report_for ?subject program in
    match Finding.errors r with
    | [] -> (
      match r.Finding.cycle_bound with
      | Finding.Bounded n when n > budget ->
        Error
          (Format.asprintf
             "refusing to prove %s: static analysis proved a cycle bound of %d, above the %d-cycle budget (set ZKFLOW_NO_ANALYZE=1 to override)"
             r.Finding.subject n budget)
      | _ -> Ok ())
    | errs ->
      Error
        (Format.asprintf
           "refusing to prove %s: static analysis found %d defect(s) (set ZKFLOW_NO_ANALYZE=1 to override)@\n%a"
           r.Finding.subject (List.length errs)
           (Format.pp_print_list Finding.pp_finding)
           errs)
  end
