module Finding = Finding
module Cfg = Cfg
module Dataflow = Dataflow
module Zr0_checks = Zr0_checks
module Zirc_lint = Zirc_lint
module Program = Zkflow_zkvm.Program

let check ?subject (program : Program.t) =
  Zr0_checks.analyze ?subject (Program.instrs program)

let check_instrs = Zr0_checks.analyze

let check_zirc ?(subject = "zirc program") ?positions prog =
  let lint = Zirc_lint.lint ?positions prog in
  match Zkflow_lang.Zirc.compile prog with
  | Error msg ->
    {
      Finding.subject;
      instrs = 0;
      blocks = 0;
      findings = lint @ [ Finding.error ~pass:"compile" "%s" msg ];
      cycle_bound = Finding.Unbounded [];
    }
  | Ok program ->
    let r = check ~subject program in
    { r with Finding.findings = lint @ r.Finding.findings }

let disabled () =
  match Sys.getenv_opt "ZKFLOW_NO_ANALYZE" with
  | Some "" | None -> false
  | Some _ -> true

(* One analysis per image ID per process: the built-in guests are
   proven repeatedly (per shard, per epoch), and the analysis is pure
   in the instruction stream. *)
let cache : (string, Finding.report) Hashtbl.t = Hashtbl.create 8

let report_for ?subject program =
  let key = Zkflow_hash.Digest32.to_hex (Program.image_id program) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r = check ?subject program in
    Hashtbl.add cache key r;
    r

let gate ?subject program =
  if disabled () then Ok ()
  else begin
    let r = report_for ?subject program in
    match Finding.errors r with
    | [] -> Ok ()
    | errs ->
      Error
        (Format.asprintf
           "refusing to prove %s: static analysis found %d defect(s) (set ZKFLOW_NO_ANALYZE=1 to override)@\n%a"
           r.Finding.subject (List.length errs)
           (Format.pp_print_list Finding.pp_finding)
           errs)
  end
