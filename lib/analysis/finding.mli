(** Analyzer findings and per-program reports.

    A {e finding} is one defect or advisory located in a guest program;
    a {e report} is everything one analyzer run learned about one
    program. [Error]-severity findings gate proving (see
    {!Zkflow_analysis.gate}); [Warning]s are advisory only, so the two
    built-in guests lint clean by construction. *)

type severity = Error | Warning

type loc =
  | Pc of int                          (** ZR0 instruction index *)
  | Src of { line : int; col : int }   (** Zirc source position *)
  | Stmt of int list                   (** Zirc statement path, outermost first *)
  | Nowhere

type t = {
  severity : severity;
  pass : string;     (** which check produced it, e.g. "uninit" *)
  loc : loc;
  message : string;
}

type cycle_bound =
  | Bounded of int          (** proven upper bound on guest cycles *)
  | Unbounded of int list   (** reachable loops; pcs of their headers *)

type report = {
  subject : string;
  instrs : int;
  blocks : int;
  findings : t list;
  cycle_bound : cycle_bound;
  func_bounds : (int * cycle_bound) list;
      (** (entry pc, proven bound) for every live function *)
  proven_safe : bool;
      (** all memory/sha accesses and ecall numbers proven in-range and
          no indirect jumps: together with zero errors, the only traps
          the machine can raise are input exhaustion and the cycle
          limit (the property the differential fuzzer checks) *)
}

val error :
  ?loc:loc -> pass:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?loc:loc -> pass:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val compare_finding : t -> t -> int
(** Canonical order: location (source first, then pc, then none), then
    pass, severity, message. *)

val normalize : t list -> t list
(** Sort into canonical order and drop exact duplicates; every surface
    (text, JSON, SARIF, CI baseline) emits findings in this order. *)

val errors : report -> t list
val warnings : report -> t list

val ok : report -> bool
(** No [Error]-severity findings ([Warning]s allowed). *)

val severity_name : severity -> string
val loc_string : loc -> string
val pp_finding : Format.formatter -> t -> unit
val pp_cycle_bound : Format.formatter -> cycle_bound -> unit

val pp_report : Format.formatter -> report -> unit
(** The human-readable block [zkflow lint] prints. *)

val report_json : report -> string
(** One JSON object per report; dependency-free encoder. *)

val reports_json : report list -> string
(** [{"reports":[...]}] — the `--json` envelope shared by lint and
    audit. *)

val sarif_json : report list -> string
(** SARIF 2.1.0 log (one run; subjects as artifact URIs) for
    `zkflow lint --sarif` / `zkflow audit --sarif` and the CI audit
    job's artifact upload. *)
