(** Analyzer findings and per-program reports.

    A {e finding} is one defect or advisory located in a guest program;
    a {e report} is everything one analyzer run learned about one
    program. [Error]-severity findings gate proving (see
    {!Zkflow_analysis.gate}); [Warning]s are advisory only, so the two
    built-in guests lint clean by construction. *)

type severity = Error | Warning

type loc =
  | Pc of int                          (** ZR0 instruction index *)
  | Src of { line : int; col : int }   (** Zirc source position *)
  | Stmt of int list                   (** Zirc statement path, outermost first *)
  | Nowhere

type t = {
  severity : severity;
  pass : string;     (** which check produced it, e.g. "uninit" *)
  loc : loc;
  message : string;
}

type cycle_bound =
  | Bounded of int          (** proven upper bound on guest cycles *)
  | Unbounded of int list   (** reachable loops; pcs of their headers *)

type report = {
  subject : string;
  instrs : int;
  blocks : int;
  findings : t list;
  cycle_bound : cycle_bound;
}

val error :
  ?loc:loc -> pass:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?loc:loc -> pass:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val errors : report -> t list
val warnings : report -> t list

val ok : report -> bool
(** No [Error]-severity findings ([Warning]s allowed). *)

val severity_name : severity -> string
val loc_string : loc -> string
val pp_finding : Format.formatter -> t -> unit
val pp_cycle_bound : Format.formatter -> cycle_bound -> unit

val pp_report : Format.formatter -> report -> unit
(** The human-readable block [zkflow lint] prints. *)

val report_json : report -> string
(** One JSON object per report; dependency-free encoder. *)
