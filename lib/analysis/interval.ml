module Isa = Zkflow_zkvm.Isa

let mask32 = 0xffffffff
let w32 = 0x100000000
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* An abstract unsigned 32-bit value: an interval [lo, hi] (no
   wrap-around representation — a wrapped set widens to the full range)
   refined by a power-of-two congruence x ≡ residue (mod modulus).

   [modulus] = 0 encodes an exact value ([residue]); [modulus] = 1 is
   the trivial congruence. Moduli are kept to powers of two dividing
   2^32 so the congruence survives the machine's mod-2^32 wrap-around:
   masking subtracts a multiple of 2^32, which every power-of-two
   modulus divides. That is exactly the stride shape word-indexed
   telemetry loads produce (base + i*8). *)
type t = { lo : int; hi : int; modulus : int; residue : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Stand-in modulus for "exact" when doing gcd arithmetic. *)
let mstand m = if m = 0 then w32 else m

let pow2_part m = if m = 0 then 0 else m land -m

(* Congruence from raw (modulus, residue); modulus may be any
   non-negative int, residue any int. *)
let cong_make m r =
  let m = pow2_part m in
  if m = 0 || m >= w32 then (0, ((r mod w32) + w32) mod w32 land mask32)
  else if m <= 1 then (1, 0)
  else (m, ((r mod m) + m) mod m)

let cong_join (m1, r1) (m2, r2) =
  let d = abs (r1 - r2) in
  cong_make (gcd (gcd (mstand m1) (mstand m2)) d) r1

(* None = contradictory. Power-of-two moduli are totally ordered by
   divisibility, so the meet keeps the larger modulus after checking
   compatibility against the smaller one. *)
let cong_meet (m1, r1) (m2, r2) =
  let (ml, rl), (ms, rs) =
    if mstand m1 >= mstand m2 then ((m1, r1), (m2, r2)) else ((m2, r2), (m1, r1))
  in
  if ms = 0 then if rl = rs then Some (ml, rl) else None
  else if ms = 1 then Some (ml, rl)
  else if rl mod ms = rs then Some (ml, rl)
  else None

let mulcap a b = if a = 0 || b = 0 then 0 else if a > w32 / b then w32 else a * b

let cong_add (m1, r1) (m2, r2) = cong_make (gcd (mstand m1) (mstand m2)) (r1 + r2)
let cong_sub (m1, r1) (m2, r2) = cong_make (gcd (mstand m1) (mstand m2)) (r1 - r2)

let cong_mul (m1, r1) (m2, r2) =
  let m =
    gcd
      (mulcap (mstand m1) (mstand m2))
      (gcd (mulcap (mstand m1) (if r2 = 0 then w32 else r2))
         (mulcap (mstand m2) (if r1 = 0 then w32 else r1)))
  in
  cong_make m (r1 * r2)


(* [norm] re-establishes the invariants (bounds within the congruence,
   exactness for singletons); [None] means the set is empty. *)
let norm lo hi m r =
  let lo = max 0 lo and hi = min mask32 hi in
  if lo > hi then None
  else
    let m, r = cong_make m r in
    if m = 0 then if r >= lo && r <= hi then Some { lo = r; hi = r; modulus = 0; residue = r } else None
    else
      let lo = if m > 1 then lo + (((r - lo) mod m) + m) mod m else lo in
      let hi = if m > 1 then hi - (((hi - r) mod m) + m) mod m else hi in
      if lo > hi then None
      else if lo = hi then Some { lo; hi; modulus = 0; residue = lo }
      else Some { lo; hi; modulus = m; residue = r }

let top = { lo = 0; hi = mask32; modulus = 1; residue = 0 }

let make lo hi m r = match norm lo hi m r with Some v -> v | None -> top

let const c =
  let c = c land mask32 in
  { lo = c; hi = c; modulus = 0; residue = c }

let range lo hi = make lo hi 1 0
let is_const v = if v.lo = v.hi then Some v.lo else None
let contains v x = x >= v.lo && x <= v.hi && (v.modulus = 0 && x = v.residue
                                             || v.modulus = 1
                                             || (v.modulus > 1 && x mod v.modulus = v.residue))
let equal (a : t) (b : t) = a = b

let join a b =
  let m, r = cong_join (a.modulus, a.residue) (b.modulus, b.residue) in
  make (min a.lo b.lo) (max a.hi b.hi) m r

let meet a b =
  match cong_meet (a.modulus, a.residue) (b.modulus, b.residue) with
  | None -> None
  | Some (m, r) -> norm (max a.lo b.lo) (min a.hi b.hi) m r

(* Widening thresholds: the constants the checks care about (RAM limit,
   the Zirc locals/spill region, small loop bounds, power-of-two
   boundaries). Jumping to the next threshold instead of straight to
   the full range keeps membounds decidable at loop heads while
   guaranteeing termination: chains through this finite set are short. *)
let thresholds =
  [|
    0; 1; 2; 4; 8; 16; 31; 32; 33; 64; 100; 128; 255; 256; 1024; 4096; 65535;
    65536; 0x100000; 0x200000; 0x400000; 0x7fffff; 0x800000; 0x820000;
    0x1000000; 0xfffffff; 0x10000000; 0x3fffffff; 0x40000000; 0x7fffffff;
    0x80000000; 0xffffffff;
  |]

let threshold_below x =
  let best = ref 0 in
  Array.iter (fun t -> if t <= x && t > !best then best := t) thresholds;
  !best

let threshold_above x =
  let best = ref mask32 in
  Array.iter (fun t -> if t >= x && t < !best then best := t) thresholds;
  !best

(* [widen old nw] where [nw] already includes the join with [old]. *)
let widen old nw =
  let lo = if nw.lo >= old.lo then old.lo else threshold_below nw.lo in
  let hi = if nw.hi <= old.hi then old.hi else threshold_above nw.hi in
  make lo hi nw.modulus nw.residue

(* Reference ALU semantics (Machine.alu_eval, bit for bit). *)
let alu_eval op a b =
  match (op : Isa.alu) with
  | ADD -> (a + b) land mask32
  | SUB -> (a - b) land mask32
  | MUL -> Int64.to_int (Int64.logand (Int64.mul (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL)
  | AND -> a land b
  | OR -> a lor b
  | XOR -> a lxor b
  | SLL -> (a lsl (b land 31)) land mask32
  | SRL -> a lsr (b land 31)
  | SRA -> (signed a asr (b land 31)) land mask32
  | SLT -> if signed a < signed b then 1 else 0
  | SLTU -> if a < b then 1 else 0
  | DIVU -> if b = 0 then mask32 else a / b
  | REMU -> if b = 0 then a else a mod b

(* Smallest 2^k - 1 covering x. *)
let up2 x =
  let r = ref 1 in
  while !r - 1 < x do
    r := !r * 2
  done;
  !r - 1

let bool01 = { lo = 0; hi = 1; modulus = 1; residue = 0 }

let add a b =
  let lo = a.lo + b.lo and hi = a.hi + b.hi in
  let cm, cr = cong_add (a.modulus, a.residue) (b.modulus, b.residue) in
  if hi <= mask32 then make lo hi cm cr
  else if lo > mask32 then make (lo - w32) (hi - w32) cm cr
  else make 0 mask32 cm cr

let sub a b =
  let lo = a.lo - b.hi and hi = a.hi - b.lo in
  let cm, cr = cong_sub (a.modulus, a.residue) (b.modulus, b.residue) in
  if lo >= 0 then make lo hi cm cr
  else if hi < 0 then make (lo + w32) (hi + w32) cm cr
  else make 0 mask32 cm cr

let mul a b =
  let cm, cr = cong_mul (a.modulus, a.residue) (b.modulus, b.residue) in
  if b.hi = 0 || a.hi <= mask32 / b.hi then make (a.lo * b.lo) (a.hi * b.hi) cm cr
  else make 0 mask32 cm cr

let sll a b =
  match is_const b with
  | Some s ->
    let s = s land 31 in
    mul a (const (1 lsl s))
  | None -> top

let srl a b =
  match is_const b with
  | Some s ->
    let s = s land 31 in
    if s = 0 then a else range (a.lo lsr s) (a.hi lsr s)
  | None -> range 0 a.hi

let sra a b =
  if a.hi < 0x80000000 then srl a b
  else match is_const b with Some s when s land 31 = 0 -> a | _ -> top

let sltu a b =
  if a.hi < b.lo then const 1 else if a.lo >= b.hi then const 0 else bool01

let slt a b = if a.hi < 0x80000000 && b.hi < 0x80000000 then sltu a b else bool01

let divu a b =
  match is_const b with
  | Some 0 -> const mask32
  | _ ->
    if b.lo >= 1 then range (a.lo / b.hi) (a.hi / b.lo)
    else (* divisor may be 0, pulling the result up to 2^32-1 *) top

let remu a b =
  match is_const b with
  | Some 0 -> a
  | _ ->
    if b.lo >= 1 then if a.hi < b.lo then a else range 0 (b.hi - 1)
    else range 0 (max a.hi (if b.hi > 0 then b.hi - 1 else 0))

let and_ a b = range 0 (min a.hi b.hi)
let or_ a b = range (max a.lo b.lo) (up2 (max a.hi b.hi))
let xor a b = range 0 (up2 (max a.hi b.hi))

let alu op a b =
  match (is_const a, is_const b) with
  | Some x, Some y -> const (alu_eval op x y)
  | _ -> (
    match (op : Isa.alu) with
    | ADD -> add a b
    | SUB -> sub a b
    | MUL -> mul a b
    | AND -> and_ a b
    | OR -> or_ a b
    | XOR -> xor a b
    | SLL -> sll a b
    | SRL -> srl a b
    | SRA -> sra a b
    | SLT -> slt a b
    | SLTU -> sltu a b
    | DIVU -> divu a b
    | REMU -> remu a b)

(* ---- branch refinement ---- *)

let clamp v ~lo ~hi = norm (max v.lo lo) (min v.hi hi) v.modulus v.residue

let both a b = match (a, b) with Some a, Some b -> Some (a, b) | _ -> None

(* a < b (unsigned). *)
let refine_ltu a b =
  if b.hi = 0 || a.lo = mask32 then None
  else both (clamp a ~lo:0 ~hi:(b.hi - 1)) (clamp b ~lo:(a.lo + 1) ~hi:mask32)

(* a >= b (unsigned). *)
let refine_geu a b =
  both (clamp a ~lo:b.lo ~hi:mask32) (clamp b ~lo:0 ~hi:a.hi)

let refine_eq a b = match meet a b with None -> None | Some m -> Some (m, m)

let chip v c =
  if v.lo = c && v.hi = c then None
  else if v.lo = c then clamp v ~lo:(c + 1) ~hi:mask32
  else if v.hi = c then clamp v ~lo:0 ~hi:(c - 1)
  else Some v

let refine_ne a b =
  match (is_const a, is_const b) with
  | Some x, Some y when x = y -> None
  | _, Some c -> ( match chip a c with None -> None | Some a -> Some (a, b))
  | Some c, _ -> ( match chip b c with None -> None | Some b -> Some (a, b))
  | None, None -> Some (a, b)

let in_signed_range v = v.hi < 0x80000000

(* Refine [(a, b)] under "branch [op] on (a, b) evaluated to [taken]".
   [None] means the edge is infeasible. Signed comparisons only refine
   when both operands provably avoid the sign bit, where they coincide
   with the unsigned ones. *)
let refine_branch op ~taken a b =
  match ((op : Isa.branch), taken) with
  | BEQ, true | BNE, false -> refine_eq a b
  | BEQ, false | BNE, true -> refine_ne a b
  | BLTU, true | BGEU, false -> refine_ltu a b
  | BLTU, false | BGEU, true -> refine_geu a b
  | (BLT | BGE), _ when not (in_signed_range a && in_signed_range b) -> Some (a, b)
  | BLT, true | BGE, false -> refine_ltu a b
  | BLT, false | BGE, true -> refine_geu a b

let pp ppf v =
  if v.lo = v.hi then Format.fprintf ppf "0x%x" v.lo
  else begin
    Format.fprintf ppf "[0x%x, 0x%x]" v.lo v.hi;
    if v.modulus > 1 then Format.fprintf ppf " (≡%d mod %d)" v.residue v.modulus
  end
