(** Static analysis for ZR0 guest programs and Zirc sources.

    The analyzer proves simple safety facts about a guest {e before}
    any cycles are spent proving its execution: no read of a register
    no path initialises, no statically-out-of-range memory access, no
    fall-off-the-end or wild control transfer, host calls that follow
    the ecall protocol — plus advisory warnings (unreachable code,
    statically-unknown ecall numbers) and a static cycle budget.
    DESIGN.md §8 records the lattice and conservatism choices. *)

module Finding = Finding
module Cfg = Cfg
module Dataflow = Dataflow
module Zr0_checks = Zr0_checks
module Zirc_lint = Zirc_lint

val check : ?subject:string -> Zkflow_zkvm.Program.t -> Finding.report
(** Analyze an assembled guest. *)

val check_instrs : ?subject:string -> Zkflow_zkvm.Isa.t array -> Finding.report

val check_zirc :
  ?subject:string ->
  ?positions:Zkflow_lang.Zirc_parse.stmt_pos list ->
  Zkflow_lang.Zirc.program ->
  Finding.report
(** {!Zirc_lint} on the AST, then — when the program compiles — the ZR0
    analysis of the lowered code, merged into one report. A compile
    failure becomes a ["compile"] error finding. *)

val gate : ?subject:string -> Zkflow_zkvm.Program.t -> (unit, string) result
(** Pre-prove gate used by {!Zkflow_core.Prover_service}: [Ok ()] when
    the guest has no [Error]-severity findings, otherwise a printable
    refusal. Reports are memoized per image ID. Setting
    [ZKFLOW_NO_ANALYZE=1] in the environment skips the gate (checked at
    call time, so tests can toggle it). *)
