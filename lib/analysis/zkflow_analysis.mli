(** Static analysis for ZR0 guest programs and Zirc sources.

    The analyzer proves simple safety facts about a guest {e before}
    any cycles are spent proving its execution: no read of a register
    no path initialises, no statically-out-of-range memory access, no
    fall-off-the-end or wild control transfer, host calls that follow
    the ecall protocol — plus advisory warnings (unreachable code,
    statically-unknown ecall numbers) and {e proven} per-function cycle
    bounds from the interval domain. [zkflow audit] layers the
    {!Taint} information-flow pass on top. DESIGN.md §8 and §13 record
    the lattices and conservatism choices.

    Every pass records a wall-time span ([analysis.lint],
    [analysis.zr0], [analysis.taint-zirc], [analysis.taint-zr0]) and
    finding counters ([analysis.findings], [analysis.errors],
    [analysis.trusted_suppressed]) through {!Zkflow_obs}. *)

module Finding = Finding
module Cfg = Cfg
module Dataflow = Dataflow
module Interval = Interval
module Zr0_checks = Zr0_checks
module Zirc_lint = Zirc_lint
module Taint = Taint

val check : ?subject:string -> Zkflow_zkvm.Program.t -> Finding.report
(** Analyze an assembled guest (value analysis only — what the prover
    gate runs). *)

val check_instrs : ?subject:string -> Zkflow_zkvm.Isa.t array -> Finding.report

val check_zirc :
  ?subject:string ->
  ?positions:Zkflow_lang.Zirc_parse.stmt_pos list ->
  Zkflow_lang.Zirc.program ->
  Finding.report
(** {!Zirc_lint} on the AST, then — when the program compiles — the ZR0
    analysis of the lowered code, merged into one report. A compile
    failure becomes a ["compile"] error finding. *)

val audit : ?subject:string -> Zkflow_zkvm.Isa.t array -> Finding.report
(** The full audit of a raw ZR0 guest: value analysis plus the
    assembly-level taint pass, findings merged, deduplicated and
    position-sorted. *)

val audit_zirc :
  ?subject:string ->
  ?positions:Zkflow_lang.Zirc_parse.stmt_pos list ->
  Zkflow_lang.Zirc.program ->
  Finding.report
(** The full audit of a Zirc source: lint, source-level taint, and the
    ZR0 value analysis of the lowered code. ZR0 ["unreachable"]
    findings are dropped for Zirc subjects (the compiler's lowering of
    [halt] leaves structurally dead tails; the [zirc-unreachable] lint
    covers source-level dead code). *)

val gate :
  ?subject:string ->
  ?budget:int ->
  Zkflow_zkvm.Program.t ->
  (unit, string) result
(** Pre-prove gate used by {!Zkflow_core.Prover_service}: [Ok ()] when
    the guest has no [Error]-severity findings {e and} its proven cycle
    bound (when one exists) is within [budget] (default
    {!Zkflow_zkvm.Machine.default_max_cycles}); otherwise a printable
    refusal. Unbounded guests pass the budget check — the machine's own
    cycle limit still backstops them at run time. Reports are memoized
    per image ID. Setting [ZKFLOW_NO_ANALYZE=1] in the environment
    skips the gate (checked at call time, so tests can toggle it). *)
