module Isa = Zkflow_zkvm.Isa
module Trace = Zkflow_zkvm.Trace
module Ecall = Zkflow_zkvm.Ecall

let mask32 = 0xffffffff
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* ---- abstract register state ----

   Per register: a may-be-uninitialized flag (forward may-analysis,
   seeded from the ABI entry state: only x0 is defined on entry) and an
   {!Interval} value (interval + power-of-two congruence) used for
   address arithmetic, ecall-number resolution and loop trip counts.
   Singleton intervals reproduce the old constant lattice bit-for-bit
   ({!Interval.alu} delegates to the concrete semantics on singletons),
   so everything the flat analyzer proved is still proven. *)

type value = { may_uninit : bool; v : Interval.t }
type state = value array

let v_init_top = { may_uninit = false; v = Interval.top }
let v_uninit = { may_uninit = true; v = Interval.top }
let v_itv v = { may_uninit = false; v }
let v_cst c = v_itv (Interval.const c)

let join_value a b =
  { may_uninit = a.may_uninit || b.may_uninit; v = Interval.join a.v b.v }

let join_state a b = Array.init 32 (fun i -> join_value a.(i) b.(i))

let widen_state (old : state) (nw : state) =
  Array.init 32 (fun i ->
      { may_uninit = nw.(i).may_uninit; v = Interval.widen old.(i).v nw.(i).v })

let equal_state (a : state) b = Array.for_all2 (fun x y -> x = y) a b

let entry_state () =
  let st = Array.make 32 v_uninit in
  st.(0) <- v_cst 0;
  st

(* Helper functions are entered with every register defined but
   unknown: callers are checked to pass initialised arguments at the
   call site, and assuming less would re-flag every callee body. *)
let helper_entry_state () =
  let st = Array.make 32 v_init_top in
  st.(0) <- v_cst 0;
  st

let reg_itv (st : state) r = st.(r).v

(* [emit] is a no-op during the fixpoint and collects findings in the
   final reporting walk, so each defect is reported exactly once;
   [note] likewise collects unproven-safety facts: [`Mem] = a memory
   access that may leave RAM, [`Ecall] = an unresolved call number,
   [`Jalr] = an indirect jump (the control model assumes, not proves,
   that return addresses are intact). *)
let step ~emit ~note ~pc instr (st : state) =
  let st = Array.copy st in
  let read ?(what = "") r =
    if r <> 0 && st.(r).may_uninit then
      emit
        (Finding.error ~loc:(Finding.Pc pc) ~pass:"uninit"
           "read of possibly-uninitialized register %s%s" (Isa.reg_name r) what)
  in
  let write r v = if r <> 0 then st.(r) <- v in
  let itv r = st.(r).v in
  let addr_of base imm = Interval.alu Isa.ADD (itv base) (Interval.const imm) in
  let oob ~op (a : Interval.t) =
    match Interval.is_const a with
    | Some addr ->
      emit
        (Finding.error ~loc:(Finding.Pc pc) ~pass:"membounds"
           "%s to word address 0x%x is outside guest RAM (limit 0x%x)" op addr
           Trace.ram_limit)
    | None ->
      emit
        (Finding.error ~loc:(Finding.Pc pc) ~pass:"membounds"
           "%s to word address in [0x%x, 0x%x] is always outside guest RAM (limit 0x%x)"
           op a.Interval.lo a.Interval.hi Trace.ram_limit)
  in
  let check_mem ~op base imm =
    let a = addr_of base imm in
    if a.Interval.lo >= Trace.ram_limit then oob ~op a
    else if a.Interval.hi >= Trace.ram_limit then note `Mem
  in
  (match instr with
   | Isa.Alu (op, rd, rs1, rs2) ->
     read rs1;
     read rs2;
     write rd (v_itv (Interval.alu op (itv rs1) (itv rs2)))
   | Isa.Alui (op, rd, rs1, imm) ->
     read rs1;
     write rd (v_itv (Interval.alu op (itv rs1) (Interval.const imm)))
   | Isa.Lui (rd, imm) -> write rd (v_cst imm)
   | Isa.Lw (rd, rs1, imm) ->
     read ~what:" (load base)" rs1;
     check_mem ~op:"load" rs1 imm;
     (* guest RAM is zero-initialised, so a loaded word is defined *)
     write rd v_init_top
   | Isa.Sw (rs2, rs1, imm) ->
     read ~what:" (store base)" rs1;
     read ~what:" (store value)" rs2;
     check_mem ~op:"store" rs1 imm
   | Isa.Branch (_, rs1, rs2, _) ->
     read rs1;
     read rs2
   | Isa.Jal (0, _) -> ()
   | Isa.Jal (_, _) ->
     (* a call: the callee may leave anything in any register, but
        everything is defined on return (conservative summary) *)
     for r = 1 to 31 do
       st.(r) <- v_init_top
     done
   | Isa.Jalr (rd, rs1, _) ->
     read ~what:(if rd = 0 then " (return address)" else " (indirect call target)") rs1;
     note `Jalr;
     if rd <> 0 then
       for r = 1 to 31 do
         st.(r) <- v_init_top
       done
   | Isa.Ecall ->
     read ~what:" (ecall number a0)" 10;
     (match Interval.is_const (itv 10) with
      | Some n -> (
        match Ecall.of_number n with
        | None ->
          emit
            (Finding.error ~loc:(Finding.Pc pc) ~pass:"ecall"
               "unknown ecall number %d (the machine traps here)" n)
        | Some Ecall.Halt -> read ~what:" (halt exit code)" 11
        | Some (Ecall.Read_word | Ecall.Input_avail) -> write 10 v_init_top
        | Some (Ecall.Commit | Ecall.Debug) -> read ~what:" (ecall argument)" 11
        | Some Ecall.Sha ->
          read ~what:" (sha src)" 11;
          read ~what:" (sha length)" 12;
          read ~what:" (sha dst)" 13;
          let src = itv 11 and len = itv 12 and dst = itv 13 in
          let cap = 1 lsl 24 in
          if len.Interval.lo > cap then
            emit
              (Finding.error ~loc:(Finding.Pc pc) ~pass:"membounds"
                 "sha length is at least %d words, above the 2^24-word cap (the machine traps)"
                 len.Interval.lo)
          else if len.Interval.hi > cap then note `Mem;
          if src.Interval.lo + min len.Interval.lo cap > Trace.ram_limit then
            oob ~op:"sha source" src
          else if src.Interval.hi + min len.Interval.hi cap > Trace.ram_limit then
            note `Mem;
          if dst.Interval.lo + 8 > Trace.ram_limit then oob ~op:"sha destination" dst
          else if dst.Interval.hi + 8 > Trace.ram_limit then note `Mem)
      | None ->
        let n = itv 10 in
        if n.Interval.lo > 5 then
          emit
            (Finding.error ~loc:(Finding.Pc pc) ~pass:"ecall"
               "ecall number in a0 is at least %d — always invalid (the machine traps here)"
               n.Interval.lo)
        else begin
          emit
            (Finding.warning ~loc:(Finding.Pc pc) ~pass:"ecall"
               "ecall number in a0 is not statically known; protocol not checked");
          note `Ecall
        end;
        write 10 v_init_top));
  st

let transfer ~emit ~pc instr st = step ~emit ~note:(fun _ -> ()) ~pc instr st

(* Branch-edge refinement for the solver: intersect both operands with
   the taken / fall-through condition; an empty intersection marks the
   edge infeasible. *)
let refine ~pc:_ instr ~taken (st : state) =
  match instr with
  | Isa.Branch (op, rs1, rs2, _) -> (
    match Interval.refine_branch op ~taken st.(rs1).v st.(rs2).v with
    | None -> None
    | Some (a, b) ->
      let st = Array.copy st in
      if rs1 <> 0 then st.(rs1) <- { st.(rs1) with v = a };
      if rs2 <> 0 && rs2 <> rs1 then st.(rs2) <- { st.(rs2) with v = b };
      Some st)
  | _ -> Some st

let solve cfg =
  Dataflow.solve cfg ~refine ~widen:widen_state
    ~entry:(fun pc -> if pc = 0 then entry_state () else helper_entry_state ())
    ~join:join_state ~equal:equal_state
    ~transfer:(transfer ~emit:(fun _ -> ()))

(* ---- well-formedness: register fields must name real registers ----

   A malformed index would make the interpreter (and this analysis)
   fault on array access, so this runs first and short-circuits. *)
let wellformed instrs =
  let findings = ref [] in
  Array.iteri
    (fun pc instr ->
      let r1, r2, rd = Isa.registers_used instr in
      List.iter
        (function
          | Some r when r < 0 || r > 31 ->
            findings :=
              Finding.error ~loc:(Finding.Pc pc) ~pass:"wellformed"
                "register index %d out of range 0..31" r
              :: !findings
          | _ -> ())
        [ r1; r2; rd ])
    instrs;
  List.rev !findings

(* ---- graph passes ---- *)

let escape_findings (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.program in
  List.filter_map
    (fun (pc, tgt) ->
      if not (Cfg.reachable_pc cfg pc) then None
      else if tgt = pc + 1 then
        (* a fall-through (or call-return) edge past the end *)
        Some
          (Finding.error ~loc:(Finding.Pc pc) ~pass:"control"
             "execution can fall off the end of the program (no terminating ecall on this path)")
      else
        Some
          (Finding.error ~loc:(Finding.Pc pc) ~pass:"control"
             "control transfer to pc %d, outside the program [0, %d)" tgt n))
    cfg.Cfg.escapes

let unreachable_findings (cfg : Cfg.t) =
  (* Collapse runs of adjacent unreachable blocks into one finding so a
     dead helper function reports once, not once per block. *)
  let blocks = cfg.Cfg.blocks in
  let findings = ref [] in
  let i = ref 0 in
  let nb = Array.length blocks in
  while !i < nb do
    if cfg.Cfg.reachable.(!i) then incr i
    else begin
      let first = blocks.(!i).Cfg.first in
      let j = ref !i in
      while !j + 1 < nb && not cfg.Cfg.reachable.(!j + 1) do
        incr j
      done;
      let last = blocks.(!j).Cfg.last in
      findings :=
        Finding.warning ~loc:(Finding.Pc first) ~pass:"unreachable"
          "unreachable code: pc %d..%d (%d instruction(s)) can never execute" first
          last (last - first + 1)
        :: !findings;
      i := !j + 1
    end
  done;
  List.rev !findings

(* ---- proven cycle bounds ----

   Per function: an acyclic body is bounded by its longest
   entry-to-exit path. A body with loops is bounded by
   Σ_b weight(b) · Π_{loops L ∋ b} (trip(L) + 1) when every loop is a
   single-entry (reducible) natural loop whose trip count the interval
   state proves: the loop must advance exactly one induction register
   by a constant step, compare it against a loop-invariant limit with a
   known interval, and the arithmetic must provably not wrap. Calls add
   the callee's bound; SHA ecalls add their worst-case compression
   rows. Any loop this cannot bound — every data-dependent loop over
   router exports — makes the enclosing call chain [Unbounded], which
   is the honest answer. Unlike the PR-2 budget this is a sound upper
   bound: the differential fuzzer asserts bound ≥ observed cycles. *)

let sat_cap = 1 lsl 60
let sat_add a b = if a >= sat_cap - b then sat_cap else a + b
let sat_mul a b = if a = 0 || b = 0 then 0 else if a > sat_cap / b then sat_cap else a * b
let trip_cap = 1 lsl 31

exception Unbounded_exn of int list (* offending loop-header / entry pcs *)

(* Registers an instruction may write (clobber model must match
   [step]). *)
let writes_of instr =
  match (instr : Isa.t) with
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Lui (rd, _) | Lw (rd, _, _) -> [ rd ]
  | Sw _ | Branch _ | Jal (0, _) | Jalr (0, _, _) -> []
  | Jal (_, _) | Jalr (_, _, _) -> List.init 31 (fun i -> i + 1)
  | Ecall -> [ 10 ]

type canon_rel = Lt | Le | Gt | Ge | Ne

(* Trip-count inference for one loop. [iv]/[lv] are the induction
   register's and limit's intervals at the loop's preheader; [s] the
   signed step. Returns a bound on back-edge traversals per entry. *)
let trips ~signed_cmp rel iv lv s =
  let open Interval in
  if signed_cmp && not (iv.hi < 0x80000000 && lv.hi < 0x80000000) then None
  else
    let t =
      if s > 0 then
        match rel with
        | Lt when lv.hi - 1 + s <= mask32 ->
          Some (if lv.hi <= iv.lo then 0 else (lv.hi - iv.lo + s - 1) / s)
        | Le when lv.hi + s <= mask32 ->
          Some (if lv.hi < iv.lo then 0 else ((lv.hi - iv.lo) / s) + 1)
        | Ne -> (
          match is_const lv with
          | Some k
            when iv.hi <= k
                 && (iv.modulus = 0 || iv.modulus mod s = 0)
                 && (k - iv.residue) mod s = 0 ->
            Some ((k - iv.lo) / s)
          | _ -> None)
        | _ -> None
      else
        let d = -s in
        match rel with
        | Gt when signed_cmp || lv.lo + 1 >= d ->
          Some (if iv.hi <= lv.lo then 0 else (iv.hi - lv.lo + d - 1) / d)
        | Ge when signed_cmp || lv.lo >= d ->
          Some (if iv.hi < lv.lo then 0 else ((iv.hi - lv.lo) / d) + 1)
        | Ne -> (
          match is_const lv with
          | Some k
            when iv.lo >= k
                 && (iv.modulus = 0 || iv.modulus mod d = 0)
                 && (iv.residue - k) mod d = 0 ->
            Some ((iv.hi - k) / d)
          | _ -> None)
        | _ -> None
    in
    match t with Some t when t <= trip_cap -> Some t | _ -> None

let cycle_bound (cfg : Cfg.t) (block_in : state option array) =
  let n = Array.length cfg.Cfg.program in
  let nb = Array.length cfg.Cfg.blocks in
  let recursive = Cfg.recursive_entries cfg in
  let func_memo : (int, Finding.cycle_bound) Hashtbl.t = Hashtbl.create 8 in
  (* out-state of a block (re-walk from its in-state) *)
  let out_state id =
    match block_in.(id) with
    | None -> None
    | Some st ->
      let b = cfg.Cfg.blocks.(id) in
      let st = ref st in
      for pc = b.Cfg.first to b.Cfg.last do
        st := transfer ~emit:(fun _ -> ()) ~pc cfg.Cfg.program.(pc) !st
      done;
      Some !st
  in
  let rec func_bound entry =
    match Hashtbl.find_opt func_memo entry with
    | Some b -> b
    | None ->
      (* seed the memo so recursion cannot loop even if the recursion
         check missed something exotic *)
      Hashtbl.replace func_memo entry (Finding.Unbounded [ entry ]);
      let b =
        try Finding.Bounded (func_bound_exn entry)
        with Unbounded_exn hs -> Finding.Unbounded hs
      in
      Hashtbl.replace func_memo entry b;
      b
  and func_bound_exn entry =
    if List.mem entry recursive then raise (Unbounded_exn [ entry ]);
    let entry_id = cfg.Cfg.block_of_pc.(entry) in
    (* function membership + back edges via one DFS *)
    let member = Array.make nb false in
    let color = Array.make nb 0 in
    let back = ref [] in
    let rec dfs id =
      member.(id) <- true;
      color.(id) <- 1;
      List.iter
        (fun s ->
          if color.(s) = 1 then back := (id, s) :: !back
          else if color.(s) = 0 then dfs s)
        cfg.Cfg.blocks.(id).Cfg.succs;
      color.(id) <- 2
    in
    dfs entry_id;
    let preds = Array.make nb [] in
    Array.iteri
      (fun id b ->
        if member.(id) then
          List.iter (fun s -> if member.(s) then preds.(s) <- id :: preds.(s)) b.Cfg.succs)
      cfg.Cfg.blocks;
    let block_weight id =
      match block_in.(id) with
      | None -> 0
      | Some st ->
        let b = cfg.Cfg.blocks.(id) in
        let st = ref st in
        let w = ref 0 in
        for pc = b.Cfg.first to b.Cfg.last do
          let instr = cfg.Cfg.program.(pc) in
          let iw =
            match instr with
            | Isa.Ecall ->
              let num = reg_itv !st 10 and len = reg_itv !st 12 in
              if Interval.contains num 3 then
                1 + Trace.sha_block_count (min len.Interval.hi (1 lsl 24))
              else 1
            | Isa.Jal (rd, tgt) when rd <> 0 && tgt >= 0 && tgt < n -> (
              match func_bound tgt with
              | Finding.Bounded cb -> sat_add 1 cb
              | Finding.Unbounded hs -> raise (Unbounded_exn hs))
            | _ -> 1
          in
          w := sat_add !w iw;
          st := transfer ~emit:(fun _ -> ()) ~pc instr !st
        done;
        !w
    in
    if !back = [] then begin
      (* acyclic: longest entry-to-exit path *)
      let memo = Array.make nb (-1) in
      let rec longest id =
        if memo.(id) >= 0 then memo.(id)
        else begin
          memo.(id) <- 0;
          let best =
            List.fold_left (fun acc s -> max acc (longest s)) 0 cfg.Cfg.blocks.(id).Cfg.succs
          in
          memo.(id) <- sat_add (block_weight id) best;
          memo.(id)
        end
      in
      let b = longest entry_id in
      if b >= sat_cap then raise (Unbounded_exn [ entry ]);
      b
    end
    else begin
      (* group back edges by header; natural-loop members by reverse
         reachability from the latches, not crossing the header *)
      let headers = List.sort_uniq Int.compare (List.map snd !back) in
      let header_pc h = cfg.Cfg.blocks.(h).Cfg.first in
      let fail h = raise (Unbounded_exn [ header_pc h ]) in
      let loops =
        List.map
          (fun h ->
            let latches = List.filter_map (fun (u, h') -> if h' = h then Some u else None) !back in
            let in_loop = Array.make nb false in
            in_loop.(h) <- true;
            let rec up id =
              if not in_loop.(id) then begin
                in_loop.(id) <- true;
                List.iter up preds.(id)
              end
            in
            List.iter (fun u -> if u <> h then up u) latches;
            (h, latches, in_loop))
          headers
      in
      (* reducibility: every loop entered only through its header *)
      List.iter
        (fun (h, _, in_loop) ->
          Array.iteri
            (fun id inl ->
              if inl && id <> h then
                List.iter
                  (fun p -> if not in_loop.(p) then fail h)
                  (List.filter (fun p -> member.(p)) preds.(id)))
            in_loop)
        loops;
      (* proper nesting: pairwise disjoint or contained *)
      List.iteri
        (fun i (h1, _, l1) ->
          List.iteri
            (fun j (_, _, l2) ->
              if j > i then begin
                let inter = ref false and d12 = ref false and d21 = ref false in
                Array.iteri
                  (fun id _ ->
                    let a = l1.(id) and b = l2.(id) in
                    if a && b then inter := true;
                    if a && not b then d12 := true;
                    if b && not a then d21 := true)
                  l1;
                if !inter && !d12 && !d21 then fail h1
              end)
            loops)
        loops;
      (* trip bound per loop *)
      let trip_of (h, latches, in_loop) =
        let candidates =
          (h :: (match latches with [ u ] -> [ u ] | _ -> []))
          |> List.filter (fun id ->
                 match cfg.Cfg.program.(cfg.Cfg.blocks.(id).Cfg.last) with
                 | Isa.Branch _ -> true
                 | _ -> false)
        in
        (* preheader state: join of out-states of member-external preds
           of the header (the states establishing the induction init) *)
        let pre =
          List.fold_left
            (fun acc p ->
              if in_loop.(p) then acc
              else
                match out_state p with
                | None -> acc
                | Some st -> ( match acc with None -> Some st | Some a -> Some (join_state a st)))
            None preds.(h)
        in
        match pre with
        | None -> None
        | Some pre ->
          let writes = Hashtbl.create 8 in
          Array.iteri
            (fun id inl ->
              if inl then
                let b = cfg.Cfg.blocks.(id) in
                for pc = b.Cfg.first to b.Cfg.last do
                  List.iter
                    (fun r ->
                      Hashtbl.replace writes r
                        (1 + Option.value (Hashtbl.find_opt writes r) ~default:0
                        + if List.length (writes_of cfg.Cfg.program.(pc)) > 1 then 1 else 0))
                    (writes_of cfg.Cfg.program.(pc))
                done)
            in_loop;
          let wcount r = Option.value (Hashtbl.find_opt writes r) ~default:0 in
          (* the unique Alui(ADD, r, r, imm) if r is written exactly once *)
          let induction_step r =
            if r = 0 || wcount r <> 1 then None
            else begin
              let step = ref None in
              Array.iteri
                (fun id inl ->
                  if inl then
                    let b = cfg.Cfg.blocks.(id) in
                    for pc = b.Cfg.first to b.Cfg.last do
                      match cfg.Cfg.program.(pc) with
                      | Isa.Alui (Isa.ADD, rd, rs1, imm) when rd = r && rs1 = r ->
                        step := Some (signed (imm land mask32))
                      | _ -> ()
                    done)
                in_loop;
              match !step with Some s when s <> 0 -> Some s | _ -> None
            end
          in
          let try_candidate id =
            let last = cfg.Cfg.blocks.(id).Cfg.last in
            match cfg.Cfg.program.(last) with
            | Isa.Branch (op, rs1, rs2, tgt) ->
              let memb pc = pc >= 0 && pc < n && in_loop.(cfg.Cfg.block_of_pc.(pc)) in
              let taken_in = memb tgt and fall_in = memb (last + 1) in
              if taken_in = fall_in then None
              else begin
                let continue_on_taken = taken_in in
                (* continue predicate: op if continuing on taken, else
                   its negation *)
                let cop =
                  if continue_on_taken then op
                  else
                    match op with
                    | Isa.BEQ -> Isa.BNE
                    | Isa.BNE -> Isa.BEQ
                    | Isa.BLT -> Isa.BGE
                    | Isa.BGE -> Isa.BLT
                    | Isa.BLTU -> Isa.BGEU
                    | Isa.BGEU -> Isa.BLTU
                in
                let signed_cmp = match cop with Isa.BLT | Isa.BGE -> true | _ -> false in
                let attempt ind lim rel =
                  match induction_step ind with
                  | Some s when wcount lim = 0 ->
                    trips ~signed_cmp rel (reg_itv pre ind) (reg_itv pre lim) s
                  | _ -> None
                in
                match cop with
                | Isa.BEQ -> None
                | Isa.BNE -> (
                  match attempt rs1 rs2 Ne with
                  | Some t -> Some t
                  | None -> attempt rs2 rs1 Ne)
                | Isa.BLT | Isa.BLTU -> (
                  (* continue while rs1 < rs2 *)
                  match attempt rs1 rs2 Lt with
                  | Some t -> Some t
                  | None -> attempt rs2 rs1 Gt)
                | Isa.BGE | Isa.BGEU -> (
                  (* continue while rs1 >= rs2 *)
                  match attempt rs1 rs2 Ge with
                  | Some t -> Some t
                  | None -> attempt rs2 rs1 Le)
              end
            | _ -> None
          in
          List.filter_map try_candidate candidates
          |> function
          | [] -> None
          | ts -> Some (List.fold_left min max_int ts)
      in
      let loop_trips =
        List.map
          (fun ((h, _, _) as l) ->
            match trip_of l with Some t -> (l, t) | None -> fail h)
          loops
      in
      let total = ref 0 in
      Array.iteri
        (fun id inl ->
          if inl then begin
            let mult =
              List.fold_left
                (fun acc ((_, _, in_loop), t) ->
                  if in_loop.(id) then sat_mul acc (sat_add t 1) else acc)
                1 loop_trips
            in
            total := sat_add !total (sat_mul mult (block_weight id))
          end)
        member;
      if !total >= sat_cap then raise (Unbounded_exn (List.map header_pc headers));
      !total
    end
  in
  let func_bounds = List.map (fun e -> (e, func_bound e)) cfg.Cfg.entries in
  let overall =
    match List.assoc_opt 0 func_bounds with
    | Some b -> b
    | None -> func_bound 0
  in
  (overall, func_bounds)

let analyze ?(subject = "program") instrs =
  let n = Array.length instrs in
  match wellformed instrs with
  | _ :: _ as bad ->
    {
      Finding.subject;
      instrs = n;
      blocks = 0;
      findings = Finding.normalize bad;
      cycle_bound = Finding.Unbounded [];
      func_bounds = [];
      proven_safe = false;
    }
  | [] ->
    let cfg = Cfg.build instrs in
    let block_in = solve cfg in
    let findings = ref [] in
    let emit f = findings := f :: !findings in
    let unproven_mem = ref false
    and unproven_ecall = ref false
    and has_jalr = ref false in
    let note = function
      | `Mem -> unproven_mem := true
      | `Ecall -> unproven_ecall := true
      | `Jalr -> has_jalr := true
    in
    (* reporting walk: each reachable block once, from its fixed entry
       state *)
    Array.iteri
      (fun id b ->
        match block_in.(id) with
        | None -> ()
        | Some st ->
          let st = ref st in
          for pc = b.Cfg.first to b.Cfg.last do
            st := step ~emit ~note ~pc cfg.Cfg.program.(pc) !st
          done)
      cfg.Cfg.blocks;
    let findings =
      Finding.normalize
        (escape_findings cfg @ unreachable_findings cfg @ List.rev !findings)
    in
    let overall, func_bounds = cycle_bound cfg block_in in
    let proven_safe =
      (not !unproven_mem) && (not !unproven_ecall) && (not !has_jalr)
      && cfg.Cfg.escapes = []
      && not (List.exists (fun f -> f.Finding.severity = Finding.Error) findings)
    in
    {
      Finding.subject;
      instrs = n;
      blocks = Array.length cfg.Cfg.blocks;
      findings;
      cycle_bound = overall;
      func_bounds;
      proven_safe;
    }
