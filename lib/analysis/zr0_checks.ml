module Isa = Zkflow_zkvm.Isa
module Trace = Zkflow_zkvm.Trace

let mask32 = 0xffffffff
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* Mirrors Machine.alu_eval so constant propagation agrees with the
   interpreter bit-for-bit (DIVU/REMU follow RISC-V M: x/0 = 2^32 − 1,
   x mod 0 = x). *)
let alu_eval op a b =
  match (op : Isa.alu) with
  | ADD -> (a + b) land mask32
  | SUB -> (a - b) land mask32
  | MUL -> Int64.to_int (Int64.logand (Int64.mul (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL)
  | AND -> a land b
  | OR -> a lor b
  | XOR -> a lxor b
  | SLL -> (a lsl (b land 31)) land mask32
  | SRL -> a lsr (b land 31)
  | SRA -> (signed a asr (b land 31)) land mask32
  | SLT -> if signed a < signed b then 1 else 0
  | SLTU -> if a < b then 1 else 0
  | DIVU -> if b = 0 then mask32 else a / b
  | REMU -> if b = 0 then a else a mod b

(* ---- abstract register state ----

   Per register: a may-be-uninitialized flag (forward may-analysis,
   seeded from the ABI entry state: only x0 is defined on entry) and a
   constant lattice (Cst c ⊑ Top) used for address arithmetic and for
   resolving ecall numbers. *)

type const = Top | Cst of int
type value = { may_uninit : bool; const : const }
type state = value array

let v_init_top = { may_uninit = false; const = Top }
let v_uninit = { may_uninit = true; const = Top }
let v_cst c = { may_uninit = false; const = Cst (c land mask32) }

let join_const a b =
  match (a, b) with
  | Cst x, Cst y when x = y -> Cst x
  | _ -> Top

let join_value a b =
  { may_uninit = a.may_uninit || b.may_uninit; const = join_const a.const b.const }

let join_state a b = Array.init 32 (fun i -> join_value a.(i) b.(i))
let equal_state (a : state) b = Array.for_all2 (fun x y -> x = y) a b

let entry_state () =
  let st = Array.make 32 v_uninit in
  st.(0) <- v_cst 0;
  st

(* Helper functions are entered with every register defined but
   unknown: callers are checked to pass initialised arguments at the
   call site, and assuming less would re-flag every callee body. *)
let helper_entry_state () =
  let st = Array.make 32 v_init_top in
  st.(0) <- v_cst 0;
  st

(* [emit] is a no-op during the fixpoint and collects findings in the
   final reporting walk, so each defect is reported exactly once. *)
let transfer ~emit ~pc instr (st : state) =
  let st = Array.copy st in
  let read ?(what = "") r =
    if r <> 0 && st.(r).may_uninit then
      emit
        (Finding.error ~loc:(Finding.Pc pc) ~pass:"uninit"
           "read of possibly-uninitialized register %s%s" (Isa.reg_name r) what)
  in
  let write r v = if r <> 0 then st.(r) <- v in
  let cst r = match st.(r).const with Cst c -> Some c | Top -> None in
  let check_addr ~op base imm =
    match cst base with
    | None -> ()
    | Some b ->
      let addr = (b + imm) land mask32 in
      if addr >= Trace.ram_limit then
        emit
          (Finding.error ~loc:(Finding.Pc pc) ~pass:"membounds"
             "%s to word address 0x%x is outside guest RAM (limit 0x%x)" op addr
             Trace.ram_limit)
  in
  (match instr with
   | Isa.Alu (op, rd, rs1, rs2) ->
     read rs1;
     read rs2;
     let v =
       match (cst rs1, cst rs2) with
       | Some a, Some b -> v_cst (alu_eval op a b)
       | _ -> v_init_top
     in
     write rd v
   | Isa.Alui (op, rd, rs1, imm) ->
     read rs1;
     let v =
       match cst rs1 with
       | Some a -> v_cst (alu_eval op a (imm land mask32))
       | None -> v_init_top
     in
     write rd v
   | Isa.Lui (rd, imm) -> write rd (v_cst imm)
   | Isa.Lw (rd, rs1, imm) ->
     read ~what:" (load base)" rs1;
     check_addr ~op:"load" rs1 imm;
     (* guest RAM is zero-initialised, so a loaded word is defined *)
     write rd v_init_top
   | Isa.Sw (rs2, rs1, imm) ->
     read ~what:" (store base)" rs1;
     read ~what:" (store value)" rs2;
     check_addr ~op:"store" rs1 imm
   | Isa.Branch (_, rs1, rs2, _) ->
     read rs1;
     read rs2
   | Isa.Jal (0, _) -> ()
   | Isa.Jal (_, _) ->
     (* a call: the callee may leave anything in any register, but
        everything is defined on return (conservative summary) *)
     for r = 1 to 31 do
       st.(r) <- v_init_top
     done
   | Isa.Jalr (rd, rs1, _) ->
     read ~what:(if rd = 0 then " (return address)" else " (indirect call target)") rs1;
     if rd <> 0 then
       for r = 1 to 31 do
         st.(r) <- v_init_top
       done
   | Isa.Ecall ->
     read ~what:" (ecall number a0)" 10;
     (match cst 10 with
      | Some 0 -> read ~what:" (halt exit code)" 11
      | Some 1 | Some 5 -> write 10 v_init_top
      | Some 2 | Some 4 -> read ~what:" (ecall argument)" 11
      | Some 3 ->
        read ~what:" (sha src)" 11;
        read ~what:" (sha length)" 12;
        read ~what:" (sha dst)" 13;
        check_addr ~op:"sha source" 11 0;
        check_addr ~op:"sha destination" 13 0
      | Some n ->
        emit
          (Finding.error ~loc:(Finding.Pc pc) ~pass:"ecall"
             "unknown ecall number %d (the machine traps here)" n)
      | None ->
        emit
          (Finding.warning ~loc:(Finding.Pc pc) ~pass:"ecall"
             "ecall number in a0 is not statically known; protocol not checked");
        write 10 v_init_top));
  st

(* ---- well-formedness: register fields must name real registers ----

   A malformed index would make the interpreter (and this analysis)
   fault on array access, so this runs first and short-circuits. *)
let wellformed instrs =
  let findings = ref [] in
  Array.iteri
    (fun pc instr ->
      let r1, r2, rd = Isa.registers_used instr in
      List.iter
        (function
          | Some r when r < 0 || r > 31 ->
            findings :=
              Finding.error ~loc:(Finding.Pc pc) ~pass:"wellformed"
                "register index %d out of range 0..31" r
              :: !findings
          | _ -> ())
        [ r1; r2; rd ])
    instrs;
  List.rev !findings

(* ---- graph passes ---- *)

let escape_findings (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.program in
  List.filter_map
    (fun (pc, tgt) ->
      if not (Cfg.reachable_pc cfg pc) then None
      else if tgt = pc + 1 then
        (* a fall-through (or call-return) edge past the end *)
        Some
          (Finding.error ~loc:(Finding.Pc pc) ~pass:"control"
             "execution can fall off the end of the program (no terminating ecall on this path)")
      else
        Some
          (Finding.error ~loc:(Finding.Pc pc) ~pass:"control"
             "control transfer to pc %d, outside the program [0, %d)" tgt n))
    cfg.Cfg.escapes

let unreachable_findings (cfg : Cfg.t) =
  (* Collapse runs of adjacent unreachable blocks into one finding so a
     dead helper function reports once, not once per block. *)
  let blocks = cfg.Cfg.blocks in
  let findings = ref [] in
  let i = ref 0 in
  let nb = Array.length blocks in
  while !i < nb do
    if cfg.Cfg.reachable.(!i) then incr i
    else begin
      let first = blocks.(!i).Cfg.first in
      let j = ref !i in
      while !j + 1 < nb && not cfg.Cfg.reachable.(!j + 1) do
        incr j
      done;
      let last = blocks.(!j).Cfg.last in
      findings :=
        Finding.warning ~loc:(Finding.Pc first) ~pass:"unreachable"
          "unreachable code: pc %d..%d (%d instruction(s)) can never execute" first
          last (last - first + 1)
        :: !findings;
      i := !j + 1
    end
  done;
  List.rev !findings

(* Static cycle budget: with any reachable loop the bound is infinite
   (reported with the loop headers); on an acyclic reachable CFG it is
   the longest entry-to-exit path, one cycle per instruction plus the
   extra SHA compression rows when the length argument is a known
   constant. *)
let cycle_bound (cfg : Cfg.t) (block_in : state option array) =
  match (Cfg.back_edge_headers cfg, Cfg.recursive_entries cfg) with
  | ((_ :: _ as headers), _ | [], (_ :: _ as headers)) -> Finding.Unbounded headers
  | [], [] ->
    (* Acyclic everywhere: the bound is the longest entry-to-exit path
       of the main function, with each call weighted by its callee's
       bound (the call graph is a DAG here, so this terminates). One
       cycle per instruction, plus the SHA compression rows when the
       length register is a known constant at the ecall — an unknown
       length counts 1, so the estimate is best-effort, not a sound
       upper bound (DESIGN.md §8). *)
    let n = Array.length cfg.Cfg.program in
    let nb = Array.length cfg.Cfg.blocks in
    let func_memo = Hashtbl.create 8 in
    let rec func_bound entry =
      match Hashtbl.find_opt func_memo entry with
      | Some b -> b
      | None ->
        let memo = Array.make nb (-1) in
        let rec longest id =
          if memo.(id) >= 0 then memo.(id)
          else begin
            memo.(id) <- 0;
            let best =
              List.fold_left
                (fun acc s -> max acc (longest s))
                0 cfg.Cfg.blocks.(id).Cfg.succs
            in
            memo.(id) <- block_weight id + best;
            memo.(id)
          end
        and block_weight id =
          let b = cfg.Cfg.blocks.(id) in
          match block_in.(id) with
          | None -> 0
          | Some st ->
            let st = ref st in
            let w = ref 0 in
            for pc = b.Cfg.first to b.Cfg.last do
              let instr = cfg.Cfg.program.(pc) in
              let iw =
                match instr with
                | Isa.Ecall ->
                  (match ((!st).(10).const, (!st).(12).const) with
                   | Cst 3, Cst words when words >= 0 && words <= 1 lsl 24 ->
                     1 + Trace.sha_block_count words
                   | _ -> 1)
                | Isa.Jal (rd, tgt) when rd <> 0 && tgt >= 0 && tgt < n ->
                  1 + func_bound tgt
                | _ -> 1
              in
              w := !w + iw;
              st := transfer ~emit:(fun _ -> ()) ~pc instr !st
            done;
            !w
        in
        let b = longest cfg.Cfg.block_of_pc.(entry) in
        Hashtbl.add func_memo entry b;
        b
    in
    Finding.Bounded (func_bound 0)

let finding_pc (f : Finding.t) =
  match f.Finding.loc with Finding.Pc pc -> pc | _ -> max_int

let analyze ?(subject = "program") instrs =
  let n = Array.length instrs in
  match wellformed instrs with
  | _ :: _ as bad ->
    {
      Finding.subject;
      instrs = n;
      blocks = 0;
      findings = bad;
      cycle_bound = Finding.Unbounded [];
    }
  | [] ->
    let cfg = Cfg.build instrs in
    let block_in =
      Dataflow.solve cfg
        ~entry:(fun pc -> if pc = 0 then entry_state () else helper_entry_state ())
        ~join:join_state ~equal:equal_state
        ~transfer:(transfer ~emit:(fun _ -> ()))
    in
    let findings = ref [] in
    let emit f = findings := f :: !findings in
    (* reporting walk: each reachable block once, from its fixed entry
       state *)
    Array.iteri
      (fun id b ->
        match block_in.(id) with
        | None -> ()
        | Some st ->
          let st = ref st in
          for pc = b.Cfg.first to b.Cfg.last do
            st := transfer ~emit ~pc cfg.Cfg.program.(pc) !st
          done)
      cfg.Cfg.blocks;
    let findings =
      escape_findings cfg @ unreachable_findings cfg @ List.rev !findings
    in
    let findings =
      List.stable_sort (fun a b -> Int.compare (finding_pc a) (finding_pc b)) findings
    in
    {
      Finding.subject;
      instrs = n;
      blocks = Array.length cfg.Cfg.blocks;
      findings;
      cycle_bound = cycle_bound cfg block_in;
    }
