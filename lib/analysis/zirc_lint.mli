(** Source-level lint over the {!Zkflow_lang.Zirc} AST, run before
    lowering so findings point at the surface program.

    Checks (pass names in brackets):

    - [zirc-depth] {e error}: a statement whose expressions need more
      than the compiler's 7-register pool (mirrors the depth discipline
      of [compile_expr]: left operand at the current depth, right one
      deeper, builtin arguments at their argument index);
    - [zirc-scope] {e error}: use or assignment of an undeclared local,
      and duplicate [let] declarations (the compiler rejects both);
    - [zirc-assign] {e error}: a read of a local that is not definitely
      assigned on every path reaching it ([If] joins by intersection, a
      [While] body may run zero times). Locals are zero-initialised so
      this is well-defined — and almost always a bug;
    - [zirc-membounds] {e error}: constant-folded addresses outside
      guest RAM, or writes landing in the compiler's local/spill region
      [[0x800000, 0x820000)];
    - [zirc-divzero] {e warning}: division or remainder by a literal 0;
    - [zirc-dead] {e warning}: a [Set] whose value no later statement
      reads (backward liveness, with a fixpoint over [While] bodies),
      and a [let] whose variable is never read anywhere;
    - [zirc-unreachable] {e warning}: a statement below an
      unconditional [halt] (one finding per trailing run). *)

val max_expr_depth : int

val need : Zkflow_lang.Zirc.expr -> int
(** Registers the compiler will use to evaluate this expression. *)

type astmt = {
  s : Zkflow_lang.Zirc.stmt;
  loc : Finding.loc;
  trusted : bool;  (** [//@ trusted] pragma on the statement *)
  sub : astmt list list;
}
(** A statement annotated with its location (and nested blocks in the
    AST's shape); shared with the {!Taint} pass so both locate
    findings identically. *)

val annotate_block :
  int list ->
  Zkflow_lang.Zirc.program ->
  Zkflow_lang.Zirc_parse.stmt_pos list option ->
  astmt list
(** [annotate_block [] prog positions]: pair each statement with its
    source position ([Src]) or structural path fallback ([Stmt]). *)

val lint :
  ?positions:Zkflow_lang.Zirc_parse.stmt_pos list ->
  Zkflow_lang.Zirc.program ->
  Finding.t list
(** Findings are located at [Src] positions when [positions] (from
    {!Zkflow_lang.Zirc_parse.parse_positioned}) is given, else at
    structural [Stmt] paths. *)
