module Zirc = Zkflow_lang.Zirc
module Zirc_parse = Zkflow_lang.Zirc_parse
module Trace = Zkflow_zkvm.Trace

let mask32 = 0xffffffff
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* The compiler's expression register pool is t0..t6. *)
let max_expr_depth = 7

(* ---- structural depth: mirrors Zirc.compile_expr's depth discipline
   (operand 1 at the current depth, operand 2 one deeper; builtin call
   arguments at their argument index). *)

let rec need (e : Zirc.expr) =
  match e with
  | Int _ | Var _ | Read_word | Input_avail -> 1
  | Load a -> need a
  | Bin (_, a, b) | Cmp8 (a, b) -> max (need a) (1 + need b)

let args_need args = List.fold_left max 1 (List.mapi (fun i e -> i + need e) args)

let stmt_need (s : Zirc.stmt) =
  match s with
  | Let (_, e) | Set (_, e) | Commit e | Halt e | Debug e -> need e
  | If (c, _, _) | While (c, _) -> need c
  | Store (a, v) -> args_need [ a; v ]
  | Sha { src; words; dst } -> args_need [ src; words; dst ]
  | Read_words { dst; count } -> args_need [ dst; count ]
  | Commit_words { src; count } -> args_need [ src; count ]
  | Leaf_hashes { entries; count; out; scratch } ->
    args_need [ entries; count; out; scratch ]
  | Merkle_root { leaves; count } -> args_need [ leaves; count ]

(* ---- constant folding (32-bit wrap-around, matching the interpreter) *)

let eval_bin (op : Zirc.binop) a b =
  match op with
  | Add -> (a + b) land mask32
  | Sub -> (a - b) land mask32
  | Mul ->
    Int64.to_int (Int64.logand (Int64.mul (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL)
  | Divu -> if b = 0 then mask32 else a / b
  | Remu -> if b = 0 then a else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> (a lsl (b land 31)) land mask32
  | Shr -> a lsr (b land 31)
  | Eq -> if a = b then 1 else 0
  | Neq -> if a <> b then 1 else 0
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Slt -> if signed a < signed b then 1 else 0

let rec const_of (e : Zirc.expr) =
  match e with
  | Int v -> Some (v land mask32)
  | Bin (op, a, b) -> (
    match (const_of a, const_of b) with
    | Some a, Some b -> Some (eval_bin op a b)
    | _ -> None)
  | _ -> None

(* ---- statements annotated with their source position (from
   {!Zirc_parse.parse_positioned}) or a structural path fallback *)

type astmt = {
  s : Zirc.stmt;
  loc : Finding.loc;
  trusted : bool;  (* //@ trusted pragma on the statement *)
  sub : astmt list list;
}

let rec annotate rpath i (s : Zirc.stmt) (p : Zirc_parse.stmt_pos option) =
  let rpath = i :: rpath in
  let loc =
    match p with
    | Some { Zirc_parse.pos = { line; col }; _ } -> Finding.Src { line; col }
    | None -> Finding.Stmt (List.rev rpath)
  in
  let trusted = match p with Some sp -> sp.Zirc_parse.trusted | None -> false in
  let subp j =
    match p with None -> None | Some sp -> List.nth_opt sp.Zirc_parse.sub j
  in
  let ablock j blk = annotate_block rpath blk (subp j) in
  let sub =
    match s with
    | Zirc.If (_, t, e) -> [ ablock 0 t; ablock 1 e ]
    | Zirc.While (_, b) -> [ ablock 0 b ]
    | _ -> []
  in
  { s; loc; trusted; sub }

and annotate_block rpath blk poss =
  List.mapi
    (fun i s ->
      let p = match poss with None -> None | Some l -> List.nth_opt l i in
      annotate rpath i s p)
    blk

(* ---- scope and definite assignment (forward) ----

   [declared] follows the compiler, which registers every [Let] it
   lowers in program order (both branches of an [If]); [assigned] is
   the definitely-assigned set: an [If] contributes the intersection of
   its branches, a [While] body contributes nothing (it may run zero
   times). Locals live in zero-initialised memory, so a read before
   assignment is well-defined — and almost certainly a bug. *)

module S = Set.Make (String)

type fstate = { declared : S.t; assigned : S.t }

let reserved_lo = Zirc.locals_base
let reserved_hi = Zirc.locals_base + 0x20000

let check_write_addr ~emit ~loc what a =
  match const_of a with
  | Some v when v >= Trace.ram_limit ->
    emit
      (Finding.error ~loc ~pass:"zirc-membounds"
         "%s word address 0x%x is outside guest RAM (limit 0x%x)" what v
         Trace.ram_limit)
  | Some v when v >= reserved_lo && v < reserved_hi ->
    emit
      (Finding.error ~loc ~pass:"zirc-membounds"
         "%s word address 0x%x falls in the compiler's local/spill region [0x%x, 0x%x)"
         what v reserved_lo reserved_hi)
  | _ -> ()

let rec check_expr ~emit ~loc st (e : Zirc.expr) =
  match e with
  | Int _ | Read_word | Input_avail -> ()
  | Var x ->
    if not (S.mem x st.declared) then
      emit
        (Finding.error ~loc ~pass:"zirc-scope" "use of undeclared variable %S" x)
    else if not (S.mem x st.assigned) then
      emit
        (Finding.error ~loc ~pass:"zirc-assign"
           "variable %S may be read before it is assigned on some path" x)
  | Load a ->
    (match const_of a with
     | Some v when v >= Trace.ram_limit ->
       emit
         (Finding.error ~loc ~pass:"zirc-membounds"
            "load from word address 0x%x is outside guest RAM (limit 0x%x)" v
            Trace.ram_limit)
     | _ -> ());
    check_expr ~emit ~loc st a
  | Bin (op, a, b) ->
    (match (op, b) with
     | (Divu | Remu), Zirc.Int 0 ->
       emit
         (Finding.warning ~loc ~pass:"zirc-divzero"
            "division/remainder by constant zero (x/0 = 2^32-1, x%%0 = x)")
     | _ -> ());
    check_expr ~emit ~loc st a;
    check_expr ~emit ~loc st b
  | Cmp8 (a, b) ->
    check_expr ~emit ~loc st a;
    check_expr ~emit ~loc st b

let rec fwd_block ~emit st l = List.fold_left (fwd_stmt ~emit) st l

and fwd_stmt ~emit st a =
  let loc = a.loc in
  let dn = stmt_need a.s in
  if dn > max_expr_depth then
    emit
      (Finding.error ~loc ~pass:"zirc-depth"
         "expression needs %d registers; the compiler's pool has %d (bind subexpressions to locals)"
         dn max_expr_depth);
  let ck e = check_expr ~emit ~loc st e in
  match a.s with
  | Zirc.Let (x, e) ->
    ck e;
    if S.mem x st.declared then
      emit
        (Finding.error ~loc ~pass:"zirc-scope"
           "duplicate declaration of %S (shadowing is not supported)" x);
    { declared = S.add x st.declared; assigned = S.add x st.assigned }
  | Set (x, e) ->
    ck e;
    if not (S.mem x st.declared) then
      emit
        (Finding.error ~loc ~pass:"zirc-scope"
           "assignment to undeclared variable %S (declare it with let)" x);
    { declared = S.add x st.declared; assigned = S.add x st.assigned }
  | Store (addr, v) ->
    ck addr;
    ck v;
    check_write_addr ~emit ~loc "store to" addr;
    st
  | If (c, _, _) ->
    ck c;
    let st_t = fwd_block ~emit st (List.nth a.sub 0) in
    let st_e = fwd_block ~emit { st with declared = st_t.declared } (List.nth a.sub 1) in
    {
      declared = st_e.declared;
      assigned = S.union st.assigned (S.inter st_t.assigned st_e.assigned);
    }
  | While (c, _) ->
    ck c;
    let st_b = fwd_block ~emit st (List.nth a.sub 0) in
    { declared = st_b.declared; assigned = st.assigned }
  | Commit e | Halt e | Debug e ->
    ck e;
    st
  | Sha { src; words; dst } ->
    ck src;
    ck words;
    ck dst;
    check_write_addr ~emit ~loc "sha destination" dst;
    st
  | Read_words { dst; count } ->
    ck dst;
    ck count;
    check_write_addr ~emit ~loc "read_words destination" dst;
    st
  | Commit_words { src; count } ->
    ck src;
    ck count;
    st
  | Leaf_hashes { entries; count; out; scratch } ->
    ck entries;
    ck count;
    ck out;
    ck scratch;
    check_write_addr ~emit ~loc "leaf_hashes output" out;
    check_write_addr ~emit ~loc "leaf_hashes scratch" scratch;
    st
  | Merkle_root { leaves; count } ->
    ck leaves;
    ck count;
    check_write_addr ~emit ~loc "merkle_root buffer" leaves;
    st

(* ---- dead stores (backward liveness) ----

   A [Set] whose value no later statement can read is dead. [Let] is
   exempt here — [let x = 0; ...; x = e] is the declare-then-assign
   idiom — and instead gets a whole-program "never read" warning. *)

let rec expr_vars acc (e : Zirc.expr) =
  match e with
  | Int _ | Read_word | Input_avail -> acc
  | Var x -> S.add x acc
  | Load a -> expr_vars acc a
  | Bin (_, a, b) | Cmp8 (a, b) -> expr_vars (expr_vars acc a) b

let stmt_reads (s : Zirc.stmt) =
  let es =
    match s with
    | Zirc.Let (_, e) | Set (_, e) | Commit e | Halt e | Debug e -> [ e ]
    | Store (a, v) -> [ a; v ]
    | If (c, _, _) | While (c, _) -> [ c ]
    | Sha { src; words; dst } -> [ src; words; dst ]
    | Read_words { dst; count } -> [ dst; count ]
    | Commit_words { src; count } -> [ src; count ]
    | Leaf_hashes { entries; count; out; scratch } -> [ entries; count; out; scratch ]
    | Merkle_root { leaves; count } -> [ leaves; count ]
  in
  List.fold_left expr_vars S.empty es

let rec live_block ~emit astmts after =
  List.fold_right (fun a acc -> live_stmt ~emit a acc) astmts after

and live_stmt ~emit a after =
  let reads = stmt_reads a.s in
  match a.s with
  | Zirc.Set (x, _) ->
    if not (S.mem x after) then
      emit
        (Finding.warning ~loc:a.loc ~pass:"zirc-dead"
           "dead store: the value assigned to %S here is never read" x);
    S.union reads (S.remove x after)
  | Let (x, _) -> S.union reads (S.remove x after)
  | If (_, _, _) ->
    let lt = live_block ~emit (List.nth a.sub 0) after in
    let le = live_block ~emit (List.nth a.sub 1) after in
    S.union reads (S.union lt le)
  | While (_, _) ->
    let body = List.nth a.sub 0 in
    let base = S.union reads after in
    (* fixpoint over the loop-carried live set, then one emitting pass *)
    let rec fix l =
      let l' = S.union base (live_block ~emit:(fun _ -> ()) body l) in
      if S.equal l' l then l else fix l'
    in
    let l = fix base in
    ignore (live_block ~emit body l);
    l
  | _ -> S.union reads after

let rec all_reads acc a =
  let acc = S.union acc (stmt_reads a.s) in
  List.fold_left (List.fold_left all_reads) acc a.sub

(* ---- code after an unconditional halt (source-level dead code) ----

   The compiled ZR0 also reports this ("unreachable"), but pointing at
   the surface statement is far more useful — and for compiled Zirc the
   audit drops the ZR0-level duplicates (the appended runtime produces
   spurious ones). One finding per trailing run. *)

let rec halts_block astmts = List.exists halts_stmt astmts

and halts_stmt a =
  match a.s with
  | Zirc.Halt _ -> true
  | Zirc.If (_, _, _) ->
    halts_block (List.nth a.sub 0) && halts_block (List.nth a.sub 1)
  | _ -> false

let rec check_after_halt ~emit astmts =
  let rec scan = function
    | prev :: (next :: _ as rest) ->
      if halts_stmt prev then
        emit
          (Finding.warning ~loc:next.loc ~pass:"zirc-unreachable"
             "statement can never execute: every path above has halted")
      else scan rest
    | _ -> ()
  in
  scan astmts;
  List.iter (fun a -> List.iter (check_after_halt ~emit) a.sub) astmts

let lint ?positions (prog : Zirc.program) =
  let ast = annotate_block [] prog positions in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  ignore (fwd_block ~emit { declared = S.empty; assigned = S.empty } ast);
  ignore (live_block ~emit ast S.empty);
  check_after_halt ~emit ast;
  let reads = List.fold_left all_reads S.empty ast in
  let rec warn_unused a =
    (match a.s with
     | Zirc.Let (x, _) when not (S.mem x reads) ->
       emit (Finding.warning ~loc:a.loc ~pass:"zirc-dead" "local %S is never read" x)
     | _ -> ());
    List.iter (List.iter warn_unused) a.sub
  in
  List.iter warn_unused ast;
  Finding.normalize !findings
